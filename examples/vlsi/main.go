// VLSI: netlist navigation in both directions over the same n:m
// association — cell→pin→net ("which signals does u7 touch?") and
// net→pin→cell ("which cells load sig3?") — the symmetric traversal the
// paper demands for engineering structures.
package main

import (
	"fmt"
	"log"

	"prima"
	"prima/internal/workload/vlsigen"
)

func main() {
	db, err := prima.Open(prima.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(vlsigen.SchemaDDL); err != nil {
		log.Fatal(err)
	}
	if _, err := vlsigen.Build(db.Engine(), 40, 4, 12, 1); err != nil {
		log.Fatal(err)
	}

	// Forward: a cell with its pins and their nets.
	res, err := db.ExecOne(`SELECT ALL FROM cell-pin-net WHERE name = 'u7'`)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Molecules[0]
	fmt.Printf("cell u7 drives/loads %d net(s) through %d pin(s):\n",
		len(m.AtomsOf("net")), len(m.AtomsOf("pin")))
	for _, n := range m.AtomsOf("net") {
		sig, _ := n.Atom.Value("signal")
		fmt.Printf("  net %s\n", sig)
	}

	// Inverse: the same association from the net side.
	res, err = db.ExecOne(`SELECT ALL FROM net-pin-cell WHERE signal = 'sig3'`)
	if err != nil {
		log.Fatal(err)
	}
	m = res.Molecules[0]
	fmt.Printf("net sig3 fans out to %d cell(s):\n", len(m.AtomsOf("cell")))
	for _, c := range m.AtomsOf("cell") {
		name, _ := c.Atom.Value("name")
		kind, _ := c.Atom.Value("kind")
		fmt.Printf("  cell %s (%s)\n", name, kind)
	}

	// A quantified design-rule query: nets loading at least 6 pins.
	res, err = db.ExecOne(`SELECT ALL FROM net-pin WHERE EXISTS_AT_LEAST (6) pin: pin.pos >= 0`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d net(s) with fanout >= 6 (check drive strength!)\n", len(res.Molecules))

	// Intra-query parallelism over the molecule set.
	mols, err := db.QueryParallel(`SELECT ALL FROM cell-pin-net`, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel sweep assembled %d cell molecules\n", len(mols))
}
