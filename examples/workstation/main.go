// Workstation: the workstation–host coupling of §4. A PRIMA server hosts
// the database; the client checks whole molecules out into a local object
// buffer with one round trip, works on them locally, and checks the
// modifications back in at commit time.
package main

import (
	"fmt"
	"log"

	"prima"
	"prima/internal/wire"
	"prima/internal/workload/brepgen"
)

func main() {
	// Host side.
	db, err := prima.Open(prima.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		log.Fatal(err)
	}
	if _, err := brepgen.BuildScene(db.Engine(), 3); err != nil {
		log.Fatal(err)
	}
	srv, err := wire.Serve(db, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("PRIMA server on", srv.Addr())

	// Workstation side.
	client, err := wire.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Checkout: the whole brep molecule in ONE round trip.
	mols, err := client.Checkout(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checked out %d molecule(s), %d atoms, in %d round trip(s)\n",
		len(mols), len(mols[0].Atoms), client.RoundTrips())

	// Local engineering work: scale every face, without any communication.
	staged := 0
	for _, a := range mols[0].Atoms {
		if a.Type != "face" {
			continue
		}
		if err := client.StageModify("face", a.Addr, "square_dim", "42.0"); err != nil {
			log.Fatal(err)
		}
		staged++
	}
	fmt.Printf("staged %d local modification(s); round trips still %d\n",
		staged, client.RoundTrips())

	// Checkin: one batch, one round trip.
	resp, err := client.Checkin()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkin applied %d modification(s); total round trips %d\n",
		resp.Count, client.RoundTrips())

	// Verify on the host.
	res, err := db.ExecOne(`SELECT ALL FROM face WHERE square_dim = 42.0`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host sees %d modified face(s)\n", len(res.Molecules))
}
