// GIS: map handling with a multidimensional (grid) access path. A region
// query over site coordinates runs through the n-dimensional access-path
// scan with per-key start/stop conditions (§3.2).
package main

import (
	"fmt"
	"log"

	"prima"
	"prima/internal/access/atom"
	"prima/internal/access/mdindex"
	"prima/internal/workload/mapgen"
)

func main() {
	db, err := prima.Open(prima.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(mapgen.SchemaDDL); err != nil {
		log.Fatal(err)
	}
	if _, err := mapgen.Build(db.Engine(), 2, 5, 40, 7); err != nil {
		log.Fatal(err)
	}

	// LDL: a two-dimensional grid access path over site coordinates.
	if _, err := db.Exec(`CREATE ACCESS PATH site_xy ON site (x, y) USING GRID`); err != nil {
		log.Fatal(err)
	}

	// Region query through the access system's n-dimensional scan: sites
	// in the box [25,75]×[25,75], x ascending, y descending.
	lo, hi := atom.Real(25), atom.Real(75)
	n := 0
	err = db.System().AccessPathScan("site_xy",
		[]mdindex.Range{{Start: &lo, Stop: &hi}, {Start: &lo, Stop: &hi, Desc: true}},
		func(keys []atom.Value, a prima.LogicalAddr) bool {
			n++
			return true
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid access path: %d site(s) in the query box\n", n)

	// Molecule view: whole map sheets with populous regions.
	res, err := db.ExecOne(`
	  SELECT map, region, (site := SELECT name, pop FROM site WHERE pop > 50000)
	  FROM map-region-site
	  WHERE scale = 25000`)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range res.Molecules {
		big := 0
		for _, s := range m.AtomsOf("site") {
			if !s.Hidden {
				big++
			}
		}
		name, _ := m.Root.Atom.Value("name")
		fmt.Printf("map %s: %d region(s), %d populous site(s)\n",
			name, len(m.AtomsOf("region")), big)
	}

	// Horizontal access with a quantifier: regions where every site is
	// small.
	res, err = db.ExecOne(`SELECT ALL FROM region-site WHERE FOR_ALL site: site.pop < 90000`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d region(s) without any large city\n", len(res.Molecules))
}
