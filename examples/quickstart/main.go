// Quickstart: define a schema with a symmetric n:m association, insert
// atoms, connect them, and retrieve dynamically defined molecules.
package main

import (
	"fmt"
	"log"

	"prima"
)

func main() {
	db, err := prima.Open(prima.Config{}) // in-memory; set Dir for persistence
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A document/author schema: the n:m association is one pair of
	// SET_OF(REF_TO) attributes; PRIMA maintains both directions.
	if _, err := db.Exec(`
	  CREATE ATOM_TYPE doc
	    ( doc_id  : IDENTIFIER,
	      title   : CHAR_VAR,
	      year    : INTEGER,
	      authors : SET_OF (REF_TO (author.docs)) );
	  CREATE ATOM_TYPE author
	    ( author_id : IDENTIFIER,
	      name      : CHAR_VAR,
	      docs      : SET_OF (REF_TO (doc.authors)) );
	`); err != nil {
		log.Fatal(err)
	}

	res, err := db.Exec(`INSERT INTO author (name) VALUES ('Härder'), ('Mitschang')`)
	if err != nil {
		log.Fatal(err)
	}
	h, m := res[0].Inserted[0], res[0].Inserted[1]

	res, err = db.Exec(`INSERT INTO doc (title, year) VALUES ('PRIMA', 1987), ('MAD model', 1987)`)
	if err != nil {
		log.Fatal(err)
	}
	prima1987, mad := res[0].Inserted[0], res[0].Inserted[1]

	// Connect either side; the back-reference appears automatically.
	for _, stmt := range []string{
		fmt.Sprintf("CONNECT @%d.%d TO @%d.%d VIA authors", prima1987.Type(), prima1987.Seq(), h.Type(), h.Seq()),
		fmt.Sprintf("CONNECT @%d.%d TO @%d.%d VIA docs", m.Type(), m.Seq(), prima1987.Type(), prima1987.Seq()),
		fmt.Sprintf("CONNECT @%d.%d TO @%d.%d VIA authors", mad.Type(), mad.Seq(), m.Type(), m.Seq()),
	} {
		if _, err := db.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}

	// Vertical access: the doc-author molecule is defined in the query.
	fmt.Println("== docs with their authors ==")
	cur, err := db.Query(`SELECT ALL FROM doc-author WHERE year = 1987`)
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()
	for {
		mol, err := cur.Next()
		if err != nil {
			log.Fatal(err)
		}
		if mol == nil {
			break
		}
		fmt.Print(mol)
	}

	// Symmetric traversal: the same association read from the other end.
	fmt.Println("== authors with their docs (inverse direction) ==")
	res2, err := db.ExecOne(`SELECT ALL FROM author-doc WHERE name = 'Mitschang'`)
	if err != nil {
		log.Fatal(err)
	}
	for _, mol := range res2.Molecules {
		fmt.Print(mol)
	}

	fmt.Println("stats:", db.Stats())
}
