// Solids: the paper's running example. Builds the Fig. 2.3 BREP schema,
// populates cube solids and a recursive assembly, and runs the four
// hand-picked queries of Table 2.1 (a-d), plus the LDL tuning that makes
// them fast (access path + atom cluster).
package main

import (
	"fmt"
	"log"

	"prima"
	"prima/internal/workload/brepgen"
)

func main() {
	db, err := prima.Open(prima.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		log.Fatal(err)
	}
	if _, err := brepgen.BuildScene(db.Engine(), 5); err != nil {
		log.Fatal(err)
	}
	// A recursive assembly rooted at solid 4711 (depth 2, branching 3).
	if _, _, err := brepgen.BuildAssembly(db.Engine(), 4711, 2, 3); err != nil {
		log.Fatal(err)
	}

	// LDL: transparent performance enhancements (§2.3).
	if _, err := db.Exec(`
	  CREATE ACCESS PATH brep_no_idx ON brep (brep_no) USING BTREE;
	  CREATE ATOM_CLUSTER brep_cluster ON brep-face-edge-point;
	`); err != nil {
		log.Fatal(err)
	}

	run := func(label, q string) *prima.Result {
		res, err := db.ExecOne(q)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("== Table 2.1%s: %d molecule(s)\n", label, len(res.Molecules))
		return res
	}

	// (a) vertical access to network molecules.
	res := run("a", `SELECT ALL FROM brep-face-edge-point WHERE brep_no = 3`)
	fmt.Print(res.Molecules[0])

	// (b) vertical access to recursive molecules with seed qualification.
	res = run("b", `SELECT ALL FROM piece_list WHERE piece_list(0).solid_no = 4711`)
	fmt.Printf("assembly of %d solids, depth %d\n",
		len(res.Molecules[0].AtomsOf("solid")), res.Molecules[0].MaxLevel())

	// (c) horizontal access with unqualified projection.
	res = run("c", `SELECT solid_no, description FROM solid WHERE sub = EMPTY`)
	fmt.Printf("%d primitive solids (no subparts)\n", len(res.Molecules))

	// (d) tree-structured FROM, quantified restriction, qualified projection.
	run("d", `
	  SELECT edge, (point,
	         face := SELECT face_id, square_dim
	                 FROM face
	                 WHERE square_dim > 10.0)
	  FROM brep-edge-(face, point)
	  WHERE brep_no = 3
	  AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0`)

	fmt.Println("stats:", db.Stats())
}
