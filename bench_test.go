package prima

// One testing.B benchmark per paper artifact (tables and figures) plus the
// ablations; `go test -bench=. -benchmem` regenerates every series. The
// narrative sweep variants with I/O accounting live in cmd/primabench;
// EXPERIMENTS.md records both.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prima/internal/access"
	"prima/internal/access/atom"
	"prima/internal/access/mdindex"
	"prima/internal/baseline"
	"prima/internal/catalog"
	"prima/internal/workload/brepgen"
	"prima/internal/workload/mapgen"
	"prima/internal/workload/vlsigen"
)

func benchScene(b *testing.B, n int, ldl string) *DB {
	b.Helper()
	db, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		b.Fatal(err)
	}
	if _, err := brepgen.BuildScene(db.Engine(), n); err != nil {
		b.Fatal(err)
	}
	if ldl != "" {
		if _, err := db.Exec(ldl); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkFig21_Modeling measures record counts of the three modeling
// approaches (the benchmark reports records-per-object as metrics).
func BenchmarkFig21_Modeling(b *testing.B) {
	for _, model := range []struct {
		name string
		fn   func(int) (baseline.Metrics, error)
	}{
		{"hierarchic", baseline.Hierarchical},
		{"network", baseline.Network},
		{"mad", baseline.MAD},
	} {
		b.Run(model.name, func(b *testing.B) {
			var m baseline.Metrics
			var err error
			for i := 0; i < b.N; i++ {
				m, err = model.fn(2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.Records)/2, "records/object")
			b.ReportMetric(float64(m.MovePointWrites), "move-writes")
		})
	}
}

// BenchmarkFig22_Associations measures connect+auto-back-reference for the
// three relationship types of Fig. 2.2.
func BenchmarkFig22_Associations(b *testing.B) {
	for _, kind := range []struct{ name, attr string }{
		{"1to1", "one"}, {"1toN", "many"}, {"NtoM", "links"},
	} {
		b.Run(kind.name, func(b *testing.B) {
			sys, err := access.Open(access.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			at, _ := catalog.NewAtomType("a", []catalog.Attribute{
				{Name: "id", Type: catalog.SpecIdent()},
				{Name: "one", Type: catalog.SpecRef("b", "one")},
				{Name: "many", Type: catalog.SpecSetOf(catalog.SpecRef("b", "owner"), 0, -1)},
				{Name: "links", Type: catalog.SpecSetOf(catalog.SpecRef("b", "links"), 0, -1)},
			}, nil)
			bt, _ := catalog.NewAtomType("b", []catalog.Attribute{
				{Name: "id", Type: catalog.SpecIdent()},
				{Name: "one", Type: catalog.SpecRef("a", "one")},
				{Name: "owner", Type: catalog.SpecRef("a", "many")},
				{Name: "links", Type: catalog.SpecSetOf(catalog.SpecRef("a", "links"), 0, -1)},
			}, nil)
			sys.Schema().AddAtomType(at)
			sys.Schema().AddAtomType(bt)
			if err := sys.Schema().ResolveAssociations(); err != nil {
				b.Fatal(err)
			}
			as := make([]LogicalAddr, b.N)
			bs := make([]LogicalAddr, b.N)
			for i := 0; i < b.N; i++ {
				as[i], _ = sys.Insert("a", nil)
				bs[i], _ = sys.Insert("b", nil)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Connect(as[i], kind.attr, bs[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig23_DDLCompile parses and installs the Fig. 2.3 schema.
func BenchmarkFig23_DDLCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db, err := Open(Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

// BenchmarkTable21a: vertical access to network molecules, by root access.
func BenchmarkTable21a(b *testing.B) {
	for _, tc := range []struct{ name, ldl string }{
		{"atomscan", ""},
		{"accesspath", `CREATE ACCESS PATH bno ON brep (brep_no) USING BTREE`},
		{"cluster", `CREATE ATOM_CLUSTER cl ON brep-face-edge-point`},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db := benchScene(b, 50, tc.ldl)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := fmt.Sprintf(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = %d`, i%50+1)
				res, err := db.ExecOne(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Molecules) != 1 {
					b.Fatal("lost molecule")
				}
			}
		})
	}
}

// BenchmarkTable21b: recursive molecules over growing assemblies.
func BenchmarkTable21b(b *testing.B) {
	for _, depth := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			db, err := Open(Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
				b.Fatal(err)
			}
			if _, _, err := brepgen.BuildAssembly(db.Engine(), 4711, depth, 2); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.ExecOne(`SELECT ALL FROM piece_list WHERE piece_list(0).solid_no = 4711`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable21c: horizontal access with projection and EMPTY predicate.
func BenchmarkTable21c(b *testing.B) {
	db, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		b.Fatal(err)
	}
	if _, _, err := brepgen.BuildAssembly(db.Engine(), 1000, 6, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecOne(`SELECT solid_no, description FROM solid WHERE sub = EMPTY`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable21d: branching FROM, quantifier, qualified projection.
func BenchmarkTable21d(b *testing.B) {
	db := benchScene(b, 20, "")
	q := `
	  SELECT edge, (point,
	         face := SELECT face_id, square_dim FROM face WHERE square_dim > 10.0)
	  FROM brep-edge-(face, point)
	  WHERE brep_no = 7 AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecOne(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig31_LayerOps measures one operation at each layer interface.
func BenchmarkFig31_LayerOps(b *testing.B) {
	db := benchScene(b, 20, "")
	sys := db.System()
	addrs, _ := sys.ScanAddrs("edge")

	b.Run("access_atom_get", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Get(addrs[i%len(addrs)], nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("data_molecule_query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := fmt.Sprintf(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = %d`, i%20+1)
			if _, err := db.ExecOne(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig32_ClusterVsNoCluster: molecule construction with and without
// the atom cluster (the I/O-count version runs in cmd/primabench).
func BenchmarkFig32_ClusterVsNoCluster(b *testing.B) {
	for _, tc := range []struct{ name, ldl string }{
		{"no_cluster", ""},
		{"cluster", `CREATE ATOM_CLUSTER cl ON brep-face-edge-point`},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db := benchScene(b, 50, tc.ldl)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := fmt.Sprintf(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = %d`, i%50+1)
				if _, err := db.ExecOne(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSortScanModes (A2): sorted reads with and without a sort order.
func BenchmarkSortScanModes(b *testing.B) {
	setup := func(b *testing.B, ldl bool) *DB {
		db, err := Open(Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
			b.Fatal(err)
		}
		sys := db.System()
		for i := 0; i < 2000; i++ {
			if _, err := sys.Insert("solid", map[string]atom.Value{
				"solid_no": atom.Int(int64((i * 7919) % 100000)),
			}); err != nil {
				b.Fatal(err)
			}
		}
		if ldl {
			if err := sys.CreateSortOrder(&catalog.SortOrderDef{Name: "so", AtomType: "solid", Attrs: []string{"solid_no"}}); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	b.Run("explicit_sort", func(b *testing.B) {
		db := setup(b, false)
		sys := db.System()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			if err := sys.SortedTypeScan("solid", []string{"solid_no"}, false, nil, func(*access.Atom) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sort_order", func(b *testing.B) {
		db := setup(b, true)
		sys := db.System()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			if err := sys.SortScan("so", nil, nil, nil, func(*access.Atom) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPartitionProjection (A3): projected reads with and without a
// covering partition.
func BenchmarkPartitionProjection(b *testing.B) {
	for _, part := range []bool{false, true} {
		name := "primary"
		if part {
			name = "partition"
		}
		b.Run(name, func(b *testing.B) {
			db, err := Open(Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
				b.Fatal(err)
			}
			sys := db.System()
			var addrs []LogicalAddr
			wide := make([]byte, 400)
			for i := range wide {
				wide[i] = 'x'
			}
			for i := 0; i < 1000; i++ {
				a, err := sys.Insert("solid", map[string]atom.Value{
					"solid_no":    atom.Int(int64(i)),
					"description": atom.Str(string(wide)),
				})
				if err != nil {
					b.Fatal(err)
				}
				addrs = append(addrs, a)
			}
			if part {
				if err := sys.CreatePartition(&catalog.PartitionDef{Name: "p", AtomType: "solid", Attrs: []string{"solid_no"}}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Get(addrs[i%len(addrs)], []string{"solid_no"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeferredUpdate (A4): update cost with redundancy under deferred
// propagation, against propagation drains.
func BenchmarkDeferredUpdate(b *testing.B) {
	db, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		b.Fatal(err)
	}
	sys := db.System()
	var addrs []LogicalAddr
	for i := 0; i < 1000; i++ {
		a, err := sys.Insert("solid", map[string]atom.Value{"solid_no": atom.Int(int64(i))})
		if err != nil {
			b.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if err := sys.CreateSortOrder(&catalog.SortOrderDef{Name: "so", AtomType: "solid", Attrs: []string{"solid_no"}}); err != nil {
		b.Fatal(err)
	}
	if err := sys.CreatePartition(&catalog.PartitionDef{Name: "p", AtomType: "solid", Attrs: []string{"description"}}); err != nil {
		b.Fatal(err)
	}
	b.Run("update_deferred", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := sys.Update(addrs[i%len(addrs)], map[string]atom.Value{"description": atom.Str(fmt.Sprintf("v%d", i))}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("propagate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := sys.Update(addrs[i%len(addrs)], map[string]atom.Value{"description": atom.Str(fmt.Sprintf("w%d", i))}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := sys.PropagateDeferred(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchParallelMaterialization is the multi-level molecule scan shared by
// BenchmarkParallelMaterialization and the CI bench gate.
func benchParallelMaterialization(b *testing.B, workers int) {
	db := benchScene(b, 64, "")
	db.Engine().SetAssemblyWorkers(workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := db.Query(`SELECT ALL FROM brep-face-edge-point`)
		if err != nil {
			b.Fatal(err)
		}
		mols, err := cur.Collect()
		cur.Close()
		if err != nil {
			b.Fatal(err)
		}
		if len(mols) != 64 {
			b.Fatal("lost molecules")
		}
	}
}

// BenchmarkParallelMaterialization pits the streaming, parallel molecule
// materialization pipeline against the serial cursor on a multi-level
// molecule scan — the acceptance benchmark of the pipeline refactor: on a
// multi-core host the parallel cursor should deliver the same molecule set
// at a multiple of the serial rate (speedup requires multiple CPUs; see
// EXPERIMENTS.md).
func BenchmarkParallelMaterialization(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchParallelMaterialization(b, 1) })
	b.Run("parallel8", func(b *testing.B) { benchParallelMaterialization(b, 8) })
}

// benchSnapshotScanUnderDML runs the molecule scan while a writer goroutine
// continuously mutates the scanned atoms and churns unrelated ones: every
// cursor reads at its open epoch, so the molecule count must hold exactly.
func benchSnapshotScanUnderDML(b *testing.B, workers int) {
	db := benchScene(b, 64, "")
	db.Engine().SetAssemblyWorkers(workers)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			script := fmt.Sprintf(
				`MODIFY face SET square_dim = %d.5 WHERE square_dim > 0.0;
				 INSERT INTO solid (solid_no) VALUES (%d);
				 DELETE FROM solid WHERE solid_no = %d`,
				i%100, 100000+i, 100000+i)
			if _, err := db.Exec(script); err != nil {
				select {
				case errc <- err:
				default:
				}
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := db.Query(`SELECT ALL FROM brep-face-edge-point`)
		if err != nil {
			b.Fatal(err)
		}
		mols, err := cur.Collect()
		cur.Close()
		if err != nil {
			b.Fatal(err)
		}
		if len(mols) != 64 {
			b.Fatalf("scan under DML delivered %d molecules, want 64", len(mols))
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		b.Fatalf("concurrent DML: %v", err)
	default:
	}
}

// BenchmarkSnapshotScanUnderDML is the acceptance benchmark of snapshot-
// isolated cursors: parallel assembly keeps its read-ahead win while mixed
// DELETE/MODIFY/INSERT traffic runs against the scanned set, because
// snapshots make the interleaving safe — no result drift, no torn molecules
// (speedup requires multiple CPUs; see EXPERIMENTS.md).
func BenchmarkSnapshotScanUnderDML(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchSnapshotScanUnderDML(b, 1) })
	b.Run("parallel8", func(b *testing.B) { benchSnapshotScanUnderDML(b, 8) })
}

// BenchmarkSemanticParallelism (A5): worker sweep over a molecule-set query
// (speedup requires multiple CPUs; see EXPERIMENTS.md).
func BenchmarkSemanticParallelism(b *testing.B) {
	db := benchScene(b, 32, `CREATE ATOM_CLUSTER cl ON brep-face-edge-point`)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mols, err := db.QueryParallel(`SELECT ALL FROM brep-face-edge-point`, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(mols) != 32 {
					b.Fatal("lost molecules")
				}
			}
		})
	}
}

// BenchmarkNestedTxThroughput (A7): inserts under autocommit, commit, abort.
func BenchmarkNestedTxThroughput(b *testing.B) {
	db, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		b.Fatal(err)
	}
	b.Run("autocommit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.ExecOne(fmt.Sprintf(`INSERT INTO solid (solid_no) VALUES (%d)`, i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tx_commit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tx := db.Begin()
			if _, err := tx.Exec(fmt.Sprintf(`INSERT INTO solid (solid_no) VALUES (%d)`, 1000000+i)); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tx_abort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tx := db.Begin()
			if _, err := tx.Exec(fmt.Sprintf(`INSERT INTO solid (solid_no) VALUES (%d)`, 2000000+i)); err != nil {
				b.Fatal(err)
			}
			if err := tx.Abort(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSelectivePredicate measures the compiled predicate pipeline
// against the legacy interpreted/unpushed baseline on a brepgen workload
// (both modes in one run). "low" is a low-selectivity WHERE (few molecules
// qualify): the range access path prunes roots before assembly and the
// pushed edge conjunct prunes survivors mid-assembly. "high" qualifies
// nearly everything, so it isolates the compiled-evaluation win.
func BenchmarkSelectivePredicate(b *testing.B) {
	const n = 128
	for _, sel := range []struct{ name, where string }{
		{"low", `brep_no <= 6 AND edge.length > 4.5`},
		{"high", fmt.Sprintf(`brep_no <= %d AND edge.length > 0.5`, n)},
	} {
		for _, mode := range []struct {
			name string
			on   bool
		}{
			{"interpreted", false},
			{"compiled", true},
		} {
			b.Run(sel.name+"/"+mode.name, func(b *testing.B) {
				db := benchScene(b, n, `CREATE ACCESS PATH bno ON brep (brep_no) USING BTREE`)
				db.Engine().SetPredicateCompilation(mode.on)
				db.Engine().SetPushdown(mode.on)
				q := `SELECT ALL FROM brep-face-edge-point WHERE ` + sel.where
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.ExecOne(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchRepeatedCheckout is the repeated-checkout hot loop shared by
// BenchmarkRepeatedCheckout and the CI allocation gate: the same design
// objects are checked out over and over (the dominant CAD/FEA access
// pattern), cycling over the scene so the whole working set stays live.
// atomCache <= 0 disables the decoded-atom cache (the baseline).
func benchRepeatedCheckout(b *testing.B, atomCache int) {
	const n = 32
	db := benchScene(b, n, "")
	db.System().SetAtomCacheSize(atomCache)
	queries := make([]string, n)
	for i := range queries {
		queries[i] = fmt.Sprintf(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = %d`, i+1)
	}
	// Warm plan cache and (when enabled) atom cache.
	for _, q := range queries {
		if _, err := db.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(queries[i%n])
		if err != nil {
			b.Fatal(err)
		}
		if len(res[0].Molecules) != 1 {
			b.Fatal("lost molecule")
		}
	}
}

// BenchmarkRepeatedCheckout measures warm repeated molecule checkout with
// the decoded-atom cache disabled vs. enabled — the acceptance benchmark of
// the cache: a hit serves assembly without page fixes or codec runs, so the
// enabled path must deliver both a wall-clock and an allocs/op win.
func BenchmarkRepeatedCheckout(b *testing.B) {
	b.Run("cache_off", func(b *testing.B) { benchRepeatedCheckout(b, 0) })
	b.Run("cache_on", func(b *testing.B) { benchRepeatedCheckout(b, 1<<16) })
}

// BenchmarkPlanCache measures repeated-statement execution with and without
// the plan cache: hits skip parsing and planning entirely and go straight to
// cursor execution.
func BenchmarkPlanCache(b *testing.B) {
	q := `SELECT brep_no FROM brep
	      WHERE brep_no = 7 AND (hull <> EMPTY OR brep_no > 100)`
	for _, tc := range []struct {
		name string
		size int
	}{
		{"cache_off", 0},
		{"cache_on", 128},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db := benchScene(b, 8, `CREATE ACCESS PATH bno ON brep (brep_no) USING BTREE`)
			db.Engine().SetPlanCacheSize(tc.size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVLSITraversal exercises symmetric n:m traversal on a netlist.
func BenchmarkVLSITraversal(b *testing.B) {
	db, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(vlsigen.SchemaDDL); err != nil {
		b.Fatal(err)
	}
	if _, err := vlsigen.Build(db.Engine(), 100, 4, 30, 1); err != nil {
		b.Fatal(err)
	}
	b.Run("cell_to_net", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := fmt.Sprintf(`SELECT ALL FROM cell-pin-net WHERE name = 'u%d'`, i%100)
			if _, err := db.ExecOne(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("net_to_cell", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := fmt.Sprintf(`SELECT ALL FROM net-pin-cell WHERE signal = 'sig%d'`, i%30)
			if _, err := db.ExecOne(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGISRegionQuery exercises the grid access path.
func BenchmarkGISRegionQuery(b *testing.B) {
	db, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(mapgen.SchemaDDL); err != nil {
		b.Fatal(err)
	}
	if _, err := mapgen.Build(db.Engine(), 2, 5, 100, 7); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(`CREATE ACCESS PATH xy ON site (x, y) USING GRID`); err != nil {
		b.Fatal(err)
	}
	lo, hi := atom.Real(25), atom.Real(75)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := db.System().AccessPathScan("xy",
			[]mdindex.Range{{Start: &lo, Stop: &hi}, {Start: &lo, Stop: &hi}},
			func([]atom.Value, LogicalAddr) bool { n++; return true })
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchGroupCommit drives concurrent single-insert transactions through a
// WAL-enabled database and reports how many fsyncs each durable commit cost:
// group commit lets simultaneous committers share one log flush, so with many
// committers the ratio falls well below one.
func benchGroupCommit(b *testing.B, committers int) {
	db, err := Open(Config{Dir: b.TempDir(), WAL: true, GroupCommitMaxWait: 500 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		b.Fatal(err)
	}
	before, ok := db.System().WALStats()
	if !ok {
		b.Fatal("WAL not enabled")
	}
	var next int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i > int64(b.N) {
					return
				}
				tx := db.Begin()
				if _, err := tx.Exec(fmt.Sprintf(`INSERT INTO solid (solid_no) VALUES (%d)`, i)); err != nil {
					b.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	after, _ := db.System().WALStats()
	if commits := after.Commits - before.Commits; commits > 0 {
		b.ReportMetric(float64(after.Syncs-before.Syncs)/float64(commits), "fsyncs/commit")
	}
}

// BenchmarkGroupCommit: durable commit throughput as committers scale — the
// acceptance benchmark of group commit (fsyncs/commit is the headline metric).
func BenchmarkGroupCommit(b *testing.B) {
	for _, committers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("committers%d", committers), func(b *testing.B) {
			benchGroupCommit(b, committers)
		})
	}
}

// TestGroupCommitFsyncAmortization is the group-commit acceptance test: 16
// concurrent committers must share log flushes heavily enough that a durable
// commit costs less than half an fsync on average.
func TestGroupCommitFsyncAmortization(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir(), WAL: true, GroupCommitMaxWait: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		t.Fatal(err)
	}
	before, ok := db.System().WALStats()
	if !ok {
		t.Fatal("WAL not enabled")
	}
	const committers, each = 16, 25
	var wg sync.WaitGroup
	errc := make(chan error, committers)
	for g := 0; g < committers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tx := db.Begin()
				if _, err := tx.Exec(fmt.Sprintf(`INSERT INTO solid (solid_no) VALUES (%d)`, g*each+i)); err != nil {
					errc <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	after, _ := db.System().WALStats()
	commits := after.Commits - before.Commits
	syncs := after.Syncs - before.Syncs
	if commits != committers*each {
		t.Fatalf("%d commits recorded, want %d", commits, committers*each)
	}
	ratio := float64(syncs) / float64(commits)
	t.Logf("%d commits in %d batches, %d log syncs: %.3f fsyncs/commit",
		commits, after.Batches-before.Batches, syncs, ratio)
	if ratio >= 0.5 {
		t.Fatalf("fsyncs/commit = %.3f, want < 0.5 (group commit not amortizing)", ratio)
	}
}
