module prima

go 1.24
