// Command primacli is an interactive MQL shell for a PRIMA database.
//
// Usage:
//
//	primacli [-dir path] [-e "statements"] [-max-molecules n]
//
// Without -e it reads statements from stdin (terminated by ';'), executes
// them, and prints results. With -dir the database persists; otherwise it is
// in-memory for the session.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"prima"
)

func main() {
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	exec := flag.String("e", "", "execute these statements and exit")
	maxMol := flag.Int("max-molecules", 20, "molecules printed per SELECT")
	flag.Parse()

	db, err := prima.Open(prima.Config{Dir: *dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "primacli:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *exec != "" {
		if err := run(db, *exec, *maxMol); err != nil {
			fmt.Fprintln(os.Stderr, "primacli:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("PRIMA — Molecule Query Language shell (end statements with ';', Ctrl-D to quit)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "mql> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "...> "
			continue
		}
		src := buf.String()
		buf.Reset()
		prompt = "mql> "
		if err := run(db, src, *maxMol); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

func run(db *prima.DB, src string, maxMol int) error {
	results, err := db.Exec(src)
	for _, r := range results {
		printResult(r, maxMol)
	}
	return err
}

func printResult(r *prima.Result, maxMol int) {
	switch r.Kind {
	case "molecules":
		fmt.Printf("%d molecule(s)\n", len(r.Molecules))
		for i, m := range r.Molecules {
			if i >= maxMol {
				fmt.Printf("... %d more\n", len(r.Molecules)-maxMol)
				break
			}
			fmt.Print(m)
		}
	case "inserted":
		ids := make([]string, len(r.Inserted))
		for i, a := range r.Inserted {
			ids[i] = a.String()
		}
		fmt.Printf("inserted %s\n", strings.Join(ids, ", "))
	case "count":
		fmt.Println(r.Message)
	default:
		if r.Message != "" {
			fmt.Println(r.Message)
		}
	}
}
