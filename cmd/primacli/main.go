// Command primacli is an interactive MQL shell for a PRIMA database —
// embedded, or remote against a primad server.
//
// Usage:
//
//	primacli [-dir path | -remote host:port] [-e "statements"] [-max-molecules n]
//
// Without -e it reads statements from stdin (terminated by ';'), executes
// them, and prints results. With -dir the database persists; otherwise it is
// in-memory for the session. With -remote, statements run over the wire and
// the shell's retry/backoff behaviour is the client library's.
//
// The shell also understands meta-commands:
//
//	.stats             server health counters (shed/panic/rejection tallies)
//	                   alongside this client's retry and reconnect tally
//	.explain <query>   EXPLAIN ANALYZE the query: plan tree plus actual
//	                   per-stage timings and counters
//	.slow [n]          the server's retained slow-query traces, newest
//	                   first (default 5)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"prima"
	"prima/internal/obs"
	"prima/internal/wire"
)

// session abstracts where statements run: an embedded DB or a wire client.
type session interface {
	run(src string, maxMol int) error
	stats() error
	slow(n int) error
	close()
}

func main() {
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	remote := flag.String("remote", "", "primad address to connect to (overrides -dir)")
	exec := flag.String("e", "", "execute these statements and exit")
	maxMol := flag.Int("max-molecules", 20, "molecules printed per SELECT")
	flag.Parse()

	var (
		s   session
		err error
	)
	if *remote != "" {
		s, err = dialRemote(*remote)
	} else {
		s, err = openLocal(*dir)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "primacli:", err)
		os.Exit(1)
	}
	defer s.close()

	if *exec != "" {
		if err := s.run(*exec, *maxMol); err != nil {
			fmt.Fprintln(os.Stderr, "primacli:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("PRIMA — Molecule Query Language shell (end statements with ';'; '.stats', '.explain <query>', '.slow [n]'; Ctrl-D to quit)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "mql> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		if buf.Len() == 0 && strings.HasPrefix(strings.TrimSpace(line), ".") {
			if err := metaCommand(s, strings.TrimSpace(line), *maxMol); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "...> "
			continue
		}
		src := buf.String()
		buf.Reset()
		prompt = "mql> "
		if err := s.run(src, *maxMol); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

// metaCommand runs one dot-command line.
func metaCommand(s session, line string, maxMol int) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case ".stats":
		return s.stats()
	case ".explain":
		if rest == "" {
			return fmt.Errorf(".explain expects a SELECT statement")
		}
		// EXPLAIN ANALYZE runs the query; its result prints the plan tree
		// plus the actual per-stage breakdown.
		return s.run("EXPLAIN ANALYZE "+strings.TrimSuffix(rest, ";")+";", maxMol)
	case ".slow":
		n := 5
		if rest != "" {
			v, err := strconv.Atoi(rest)
			if err != nil || v <= 0 {
				return fmt.Errorf(".slow expects a positive count, got %q", rest)
			}
			n = v
		}
		return s.slow(n)
	default:
		return fmt.Errorf("unknown meta-command %s (.stats, .explain <query>, .slow [n])", cmd)
	}
}

// printTraces renders retained slow-query traces.
func printTraces(traces []*obs.TraceSnapshot) {
	if len(traces) == 0 {
		fmt.Println("no slow queries retained (is a slow-query threshold set?)")
		return
	}
	for i, t := range traces {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.String())
	}
}

// ---- embedded session ----

type localSession struct{ db *prima.DB }

func openLocal(dir string) (session, error) {
	db, err := prima.Open(prima.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	return &localSession{db: db}, nil
}

func (s *localSession) close() { s.db.Close() }

func (s *localSession) run(src string, maxMol int) error {
	results, err := s.db.Exec(src)
	for _, r := range results {
		printResult(r, maxMol)
	}
	return err
}

func (s *localSession) stats() error {
	fmt.Print(s.db.Stats())
	return nil
}

func (s *localSession) slow(n int) error {
	traces := s.db.Tracer().Slow()
	if len(traces) > n {
		traces = traces[:n]
	}
	printTraces(traces)
	return nil
}

// ---- remote session ----

type remoteSession struct{ c *wire.Client }

func dialRemote(addr string) (session, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &remoteSession{c: c}, nil
}

func (s *remoteSession) close() { s.c.Close() }

func (s *remoteSession) run(src string, maxMol int) error {
	resp, err := s.c.Exec(src)
	if err != nil {
		return err
	}
	printResponse(resp, maxMol)
	return nil
}

// stats prints the server's health counters next to this client's own
// retry tally.
func (s *remoteSession) stats() error {
	sj, err := s.c.Stats()
	if err != nil {
		return err
	}
	retries, reconnects := s.c.Retries()
	fmt.Printf("client: %d round trips, %d retries, %d reconnects\n",
		s.c.RoundTrips(), retries, reconnects)
	fmt.Printf("server: %d requests, %d shed, %d panics recovered\n",
		sj.WireRequests, sj.WireShed, sj.WirePanics)
	fmt.Printf("conns:  %d active, %d total, %d rejected, %d in flight\n",
		sj.WireConnsActive, sj.WireConnsTotal, sj.WireConnsRejected, sj.WireInFlight)
	fmt.Printf("cache:  atom %d/%d hits/misses, buffer %d/%d, plans %d/%d\n",
		sj.AtomCacheHits, sj.AtomCacheMisses, sj.BufferHits, sj.BufferMisses,
		sj.PlanCacheHits, sj.PlanCacheMisses)
	if sj.WALEnabled {
		fmt.Printf("wal:    %d appends, %d commits, %d syncs, %d checkpoints\n",
			sj.WALAppends, sj.WALCommits, sj.WALSyncs, sj.WALCheckpoints)
	}
	return nil
}

func (s *remoteSession) slow(n int) error {
	traces, err := s.c.Slow(n)
	if err != nil {
		return err
	}
	printTraces(traces)
	return nil
}

// printResponse renders a wire response in the same shape as printResult.
func printResponse(r *wire.Response, maxMol int) {
	switch {
	case len(r.Molecules) > 0:
		fmt.Printf("%d molecule(s)\n", len(r.Molecules))
		for i, m := range r.Molecules {
			if i >= maxMol {
				fmt.Printf("... %d more\n", len(r.Molecules)-maxMol)
				break
			}
			printMolecule(m)
		}
	case len(r.Inserted) > 0:
		ids := make([]string, len(r.Inserted))
		for i, a := range r.Inserted {
			ids[i] = fmt.Sprintf("@%d", a)
		}
		fmt.Printf("inserted %s\n", strings.Join(ids, ", "))
	case r.Message != "":
		fmt.Println(r.Message)
	default:
		// An empty SELECT: no molecules, no message.
		fmt.Printf("%d molecule(s)\n", r.Count)
	}
}

func printMolecule(m wire.MoleculeJSON) {
	fmt.Printf("molecule @%d\n", m.Root)
	for _, a := range m.Atoms {
		fmt.Printf("  %s @%d %v\n", a.Type, a.Addr, a.Values)
	}
}

func printResult(r *prima.Result, maxMol int) {
	switch r.Kind {
	case "molecules":
		fmt.Printf("%d molecule(s)\n", len(r.Molecules))
		for i, m := range r.Molecules {
			if i >= maxMol {
				fmt.Printf("... %d more\n", len(r.Molecules)-maxMol)
				break
			}
			fmt.Print(m)
		}
	case "inserted":
		ids := make([]string, len(r.Inserted))
		for i, a := range r.Inserted {
			ids[i] = a.String()
		}
		fmt.Printf("inserted %s\n", strings.Join(ids, ", "))
	case "count":
		fmt.Println(r.Message)
	default:
		if r.Message != "" {
			fmt.Println(r.Message)
		}
	}
}
