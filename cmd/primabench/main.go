// Command primabench regenerates every table and figure of the paper's
// design discussion as a measured experiment (see EXPERIMENTS.md for the
// mapping and recorded outputs).
//
// Usage:
//
//	primabench [-exp id] [-scale n]
//
// Experiment ids: fig2.1 fig2.2 fig3.1 fig3.2 t2.1a t2.1b t2.1c t2.1d
// a1 a2 a3 a4 a5 a6 a7, or "all" (default).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prima"
	"prima/internal/access"
	"prima/internal/access/atom"
	"prima/internal/baseline"
	"prima/internal/catalog"
	"prima/internal/storage/buffer"
	"prima/internal/storage/device"
	"prima/internal/storage/page"
	"prima/internal/storage/segment"
	"prima/internal/wire"
	"prima/internal/workload/brepgen"
)

var scale = flag.Int("scale", 1, "workload scale multiplier")

func main() {
	exp := flag.String("exp", "all", "experiment id")
	flag.Parse()

	experiments := []struct {
		id  string
		fn  func() error
		doc string
	}{
		{"fig2.1", fig21, "modeling approaches to boundary representation"},
		{"fig2.2", fig22, "relationship types via symmetric association types"},
		{"fig3.1", fig31, "operations per second at each layer interface"},
		{"fig3.2", fig32, "atom cluster vs per-atom molecule construction"},
		{"t2.1a", t21a, "vertical access to network molecules"},
		{"t2.1b", t21b, "vertical access to recursive molecules"},
		{"t2.1c", t21c, "horizontal access with projection"},
		{"t2.1d", t21d, "branching molecule, quantifier, qualified projection"},
		{"a1", a1, "buffer: size-aware LRU vs static partitioning"},
		{"a2", a2, "sort scan with and without a sort order"},
		{"a3", a3, "projection via partition vs primary"},
		{"a4", a4, "deferred vs immediate redundancy maintenance"},
		{"a5", a5, "semantic parallelism speedup"},
		{"a6", a6, "checkout vs atom-at-a-time round trips"},
		{"a7", a7, "nested transaction overhead and selective rollback"},
	}
	ran := 0
	for _, e := range experiments {
		if *exp != "all" && *exp != e.id {
			continue
		}
		fmt.Printf("\n### %s — %s\n", e.id, e.doc)
		if err := e.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}

// newScene builds an engine with n cubes.
func newScene(n int) (*prima.DB, error) {
	db, err := prima.Open(prima.Config{})
	if err != nil {
		return nil, err
	}
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		return nil, err
	}
	if _, err := brepgen.BuildScene(db.Engine(), n); err != nil {
		return nil, err
	}
	return db, nil
}

func fig21() error {
	fmt.Println("objects | model        | records |   bytes | point copies | move-point writes | inverse traversal")
	for _, n := range []int{1, 4, 16} {
		n *= *scale
		ms, err := baseline.Compare(n)
		if err != nil {
			return err
		}
		for _, m := range ms {
			fmt.Printf("%7d | %-12s | %7d | %7d | %12d | %17d | %v\n",
				n, m.Model, m.Records, m.Bytes, m.PointCopies, m.MovePointWrites, m.InverseTraversal)
		}
	}
	return nil
}

func fig22() error {
	sys, err := access.Open(access.Config{})
	if err != nil {
		return err
	}
	defer sys.Close()
	// Three relationship types between A and B, each as an association.
	a, _ := catalog.NewAtomType("a", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "one", Type: catalog.SpecRef("b", "one")},                               // 1:1
		{Name: "many", Type: catalog.SpecSetOf(catalog.SpecRef("b", "owner"), 0, -1)},  // 1:n
		{Name: "links", Type: catalog.SpecSetOf(catalog.SpecRef("b", "links"), 0, -1)}, // n:m
	}, nil)
	b, _ := catalog.NewAtomType("b", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "one", Type: catalog.SpecRef("a", "one")},
		{Name: "owner", Type: catalog.SpecRef("a", "many")},
		{Name: "links", Type: catalog.SpecSetOf(catalog.SpecRef("a", "links"), 0, -1)},
	}, nil)
	if err := sys.Schema().AddAtomType(a); err != nil {
		return err
	}
	if err := sys.Schema().AddAtomType(b); err != nil {
		return err
	}
	if err := sys.Schema().ResolveAssociations(); err != nil {
		return err
	}
	const n = 2000
	var as, bs []prima.LogicalAddr
	for i := 0; i < n; i++ {
		x, err := sys.Insert("a", nil)
		if err != nil {
			return err
		}
		y, err := sys.Insert("b", nil)
		if err != nil {
			return err
		}
		as, bs = append(as, x), append(bs, y)
	}
	bench := func(label, attr string) error {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := sys.Connect(as[i], attr, bs[i]); err != nil {
				return err
			}
		}
		d := time.Since(start)
		fmt.Printf("%-4s connect+auto-backref: %8.0f ops/s\n", label, float64(n)/d.Seconds())
		return nil
	}
	if err := bench("1:1", "one"); err != nil {
		return err
	}
	if err := bench("1:n", "many"); err != nil {
		return err
	}
	return bench("n:m", "links")
}

func fig31() error {
	db, err := newScene(20 * *scale)
	if err != nil {
		return err
	}
	defer db.Close()
	sys := db.System()

	// Storage interface: page fixes.
	dev, _ := device.NewMem(device.B8K)
	seg, err := segment.Create(dev, 99, 1024)
	if err != nil {
		return err
	}
	pool := buffer.NewPool(buffer.NewSizeAwareLRU(1 << 20))
	pool.Register(seg)
	no, _ := seg.AllocatePage()
	h, err := pool.FixNew(segment.PageID{Seg: 99, No: no})
	if err != nil {
		return err
	}
	h.Page().Init(2, 99, no)
	h.Release()
	const pageOps = 200000
	start := time.Now()
	for i := 0; i < pageOps; i++ {
		h, err := pool.Fix(segment.PageID{Seg: 99, No: no})
		if err != nil {
			return err
		}
		h.Release()
	}
	fmt.Printf("storage system (page fix/unfix):  %10.0f ops/s\n", pageOps/time.Since(start).Seconds())

	// Access interface: atom reads.
	addrs, _ := sys.ScanAddrs("edge")
	const atomOps = 50000
	start = time.Now()
	for i := 0; i < atomOps; i++ {
		if _, err := sys.Get(addrs[i%len(addrs)], nil); err != nil {
			return err
		}
	}
	fmt.Printf("access system  (atom get):        %10.0f ops/s\n", atomOps/time.Since(start).Seconds())

	// Data interface: molecule materialization.
	const molOps = 400
	start = time.Now()
	for i := 0; i < molOps; i++ {
		q := fmt.Sprintf(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = %d`, i%(20**scale)+1)
		if _, err := db.ExecOne(q); err != nil {
			return err
		}
	}
	fmt.Printf("data system    (molecule query):  %10.0f ops/s (%d-atom molecules)\n",
		molOps/time.Since(start).Seconds(), brepgen.CubeAtoms)
	return nil
}

func fig32() error {
	n := 50 * *scale
	// A deliberately small buffer (8 frames of 8K): molecule construction
	// from scattered primary pages must re-read pages, while the atom
	// cluster moves each molecule with chained I/O.
	db, err := prima.Open(prima.Config{BufferBytes: 64 * 1024})
	if err != nil {
		return err
	}
	defer db.Close()
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		return err
	}
	if _, err := brepgen.BuildScene(db.Engine(), n); err != nil {
		return err
	}
	sys := db.System()

	measure := func(label string) error {
		sys.Files().ResetStats()
		sys.Pool().ResetStats()
		start := time.Now()
		for i := 1; i <= n; i++ {
			q := fmt.Sprintf(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = %d`, i)
			res, err := db.ExecOne(q)
			if err != nil {
				return err
			}
			if len(res.Molecules) != 1 || res.Molecules[0].Size() != brepgen.CubeAtoms {
				return fmt.Errorf("bad molecule result")
			}
		}
		d := time.Since(start)
		io := sys.Files().Stats()
		fmt.Printf("%-12s %8.2f ms total, %6.0f µs/molecule, seeks=%d blocks=%d (simulated disk: %v)\n",
			label, d.Seconds()*1000, d.Seconds()*1e6/float64(n), io.Seeks, io.BlocksTransferred(), io.Cost(device.B8K))
		return nil
	}
	if err := measure("no cluster"); err != nil {
		return err
	}
	if _, err := db.Exec(`CREATE ATOM_CLUSTER brep_cl ON brep-face-edge-point`); err != nil {
		return err
	}
	return measure("atom cluster")
}

func t21a() error {
	fmt.Println("solids | access    | µs/molecule")
	for _, n := range []int{10, 50, 200} {
		n *= *scale
		db, err := newScene(n)
		if err != nil {
			return err
		}
		run := func(label string) error {
			const reps = 200
			start := time.Now()
			for i := 0; i < reps; i++ {
				q := fmt.Sprintf(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = %d`, i%n+1)
				if _, err := db.ExecOne(q); err != nil {
					return err
				}
			}
			fmt.Printf("%6d | %-9s | %8.0f\n", n, label, time.Since(start).Seconds()*1e6/reps)
			return nil
		}
		if err := run("atomscan"); err != nil {
			return err
		}
		if _, err := db.Exec(`CREATE ACCESS PATH bno ON brep (brep_no) USING BTREE`); err != nil {
			return err
		}
		if err := run("accesspath"); err != nil {
			return err
		}
		db.Close()
	}
	return nil
}

func t21b() error {
	fmt.Println("depth | solids | µs/molecule-set")
	for _, depth := range []int{2, 4, 6, 8} {
		db, err := prima.Open(prima.Config{})
		if err != nil {
			return err
		}
		if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
			return err
		}
		_, count, err := brepgen.BuildAssembly(db.Engine(), 4711, depth, 2)
		if err != nil {
			return err
		}
		const reps = 50
		start := time.Now()
		for i := 0; i < reps; i++ {
			res, err := db.ExecOne(`SELECT ALL FROM piece_list WHERE piece_list(0).solid_no = 4711`)
			if err != nil {
				return err
			}
			if len(res.Molecules[0].AtomsOf("solid")) != count {
				return fmt.Errorf("lost solids")
			}
		}
		fmt.Printf("%5d | %6d | %8.0f\n", depth, count, time.Since(start).Seconds()*1e6/reps)
		db.Close()
	}
	return nil
}

func t21c() error {
	db, err := prima.Open(prima.Config{})
	if err != nil {
		return err
	}
	defer db.Close()
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		return err
	}
	// Assemblies give a mix of leaf/non-leaf solids.
	if _, _, err := brepgen.BuildAssembly(db.Engine(), 1000, 7, 2); err != nil {
		return err
	}
	const reps = 100
	start := time.Now()
	var leaves int
	for i := 0; i < reps; i++ {
		res, err := db.ExecOne(`SELECT solid_no, description FROM solid WHERE sub = EMPTY`)
		if err != nil {
			return err
		}
		leaves = len(res.Molecules)
	}
	fmt.Printf("horizontal scan over %d solids: %d primitive, %8.0f µs/scan\n",
		db.System().Count("solid"), leaves, time.Since(start).Seconds()*1e6/reps)
	return nil
}

func t21d() error {
	db, err := newScene(20 * *scale)
	if err != nil {
		return err
	}
	defer db.Close()
	q := `
	  SELECT edge, (point,
	         face := SELECT face_id, square_dim FROM face WHERE square_dim > 10.0)
	  FROM brep-edge-(face, point)
	  WHERE brep_no = 7 AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0`
	const reps = 300
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := db.ExecOne(q); err != nil {
			return err
		}
	}
	fmt.Printf("Table 2.1d query: %8.0f µs/execution\n", time.Since(start).Seconds()*1e6/reps)
	return nil
}

func a1() error {
	// Mixed page sizes, shifting reference pattern: phase 1 hits small
	// pages, phase 2 hits large ones. The static partitioning wastes the
	// other partition's budget in each phase.
	build := func(policy buffer.Policy) (float64, error) {
		devS, _ := device.NewMem(device.B512)
		segS, err := segment.Create(devS, 1, 4096)
		if err != nil {
			return 0, err
		}
		devL, _ := device.NewMem(device.B8K)
		segL, err := segment.Create(devL, 2, 4096)
		if err != nil {
			return 0, err
		}
		pool := buffer.NewPool(policy)
		pool.Register(segS)
		pool.Register(segL)
		var small, large []uint32
		buf := make([]byte, device.B512)
		for i := 0; i < 64; i++ {
			no, _ := segS.AllocatePage()
			pg := pageInit(buf, 1, no)
			segS.WritePage(no, pg)
			small = append(small, no)
		}
		bufL := make([]byte, device.B8K)
		for i := 0; i < 8; i++ {
			no, _ := segL.AllocatePage()
			pg := pageInit(bufL, 2, no)
			segL.WritePage(no, pg)
			large = append(large, no)
		}
		// Phase 1: small pages only; phase 2: large pages only.
		for phase := 0; phase < 2; phase++ {
			for rep := 0; rep < 200; rep++ {
				if phase == 0 {
					for _, no := range small[:32] {
						h, err := pool.Fix(segment.PageID{Seg: 1, No: no})
						if err != nil {
							return 0, err
						}
						h.Release()
					}
				} else {
					for _, no := range large[:4] {
						h, err := pool.Fix(segment.PageID{Seg: 2, No: no})
						if err != nil {
							return 0, err
						}
						h.Release()
					}
				}
			}
		}
		return pool.Stats().HitRatio(), nil
	}
	const budget = 40 * 1024
	r1, err := build(buffer.NewSizeAwareLRU(budget))
	if err != nil {
		return err
	}
	r2, err := build(buffer.NewPartitionedLRU(map[int]int64{device.B512: budget / 2, device.B8K: budget / 2}))
	if err != nil {
		return err
	}
	fmt.Printf("size-aware LRU (one pool):    hit ratio %.3f\n", r1)
	fmt.Printf("static partitioning:          hit ratio %.3f\n", r2)
	return nil
}

func pageInit(buf []byte, seg, no uint32) []byte {
	pg := page.Page(buf)
	pg.Init(page.TypeData, seg, no)
	pg.SealChecksum()
	return buf
}

func a2() error {
	db, err := newScene(0)
	if err != nil {
		return err
	}
	defer db.Close()
	sys := db.System()
	const n = 5000
	for i := 0; i < n; i++ {
		if _, err := sys.Insert("solid", map[string]atom.Value{
			"solid_no":    atom.Int(int64((i * 7919) % 100000)),
			"description": atom.Str("part"),
		}); err != nil {
			return err
		}
	}
	const reps = 20
	start := time.Now()
	for r := 0; r < reps; r++ {
		cnt := 0
		if err := sys.SortedTypeScan("solid", []string{"solid_no"}, false, nil, func(*access.Atom) bool {
			cnt++
			return true
		}); err != nil {
			return err
		}
	}
	explicit := time.Since(start) / reps

	if err := sys.CreateSortOrder(&catalog.SortOrderDef{Name: "so", AtomType: "solid", Attrs: []string{"solid_no"}}); err != nil {
		return err
	}
	start = time.Now()
	for r := 0; r < reps; r++ {
		cnt := 0
		if err := sys.SortScan("so", nil, nil, nil, func(*access.Atom) bool {
			cnt++
			return true
		}); err != nil {
			return err
		}
	}
	viaOrder := time.Since(start) / reps
	fmt.Printf("sorted read of %d atoms: explicit sort %v, via sort order %v (%.1fx)\n",
		n, explicit, viaOrder, float64(explicit)/float64(viaOrder))
	return nil
}

func a3() error {
	db, err := newScene(0)
	if err != nil {
		return err
	}
	defer db.Close()
	sys := db.System()
	const n = 3000
	for i := 0; i < n; i++ {
		if _, err := sys.Insert("solid", map[string]atom.Value{
			"solid_no":    atom.Int(int64(i)),
			"description": atom.Str("a rather long descriptive text that makes the atom wide enough for the partition to pay off when only the number is wanted ..."),
		}); err != nil {
			return err
		}
	}
	addrs, _ := sys.ScanAddrs("solid")
	read := func() (time.Duration, error) {
		start := time.Now()
		for _, a := range addrs {
			if _, err := sys.Get(a, []string{"solid_no"}); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	before, err := read()
	if err != nil {
		return err
	}
	if err := sys.CreatePartition(&catalog.PartitionDef{Name: "nums", AtomType: "solid", Attrs: []string{"solid_no"}}); err != nil {
		return err
	}
	after, err := read()
	if err != nil {
		return err
	}
	fmt.Printf("projected read of %d wide atoms: primary %v, partition %v (%.1fx)\n",
		n, before, after, float64(before)/float64(after))
	return nil
}

func a4() error {
	db, err := newScene(0)
	if err != nil {
		return err
	}
	defer db.Close()
	sys := db.System()
	const n = 2000
	var addrs []prima.LogicalAddr
	for i := 0; i < n; i++ {
		a, err := sys.Insert("solid", map[string]atom.Value{"solid_no": atom.Int(int64(i)), "description": atom.Str("x")})
		if err != nil {
			return err
		}
		addrs = append(addrs, a)
	}
	// Two redundant structures whose records must follow every update.
	if err := sys.CreateSortOrder(&catalog.SortOrderDef{Name: "so", AtomType: "solid", Attrs: []string{"solid_no"}}); err != nil {
		return err
	}
	if err := sys.CreatePartition(&catalog.PartitionDef{Name: "pt", AtomType: "solid", Attrs: []string{"description"}}); err != nil {
		return err
	}
	start := time.Now()
	for _, a := range addrs {
		if err := sys.Update(a, map[string]atom.Value{"description": atom.Str("updated")}); err != nil {
			return err
		}
	}
	updates := time.Since(start)
	pending := sys.PendingDeferred()
	start = time.Now()
	if err := sys.PropagateDeferred(); err != nil {
		return err
	}
	prop := time.Since(start)
	fmt.Printf("%d updates with redundancy 3: immediate %v (%.0f µs/op), %d deferred tasks propagated in %v\n",
		n, updates, updates.Seconds()*1e6/float64(n), pending, prop)
	return nil
}

func a5() error {
	db, err := newScene(64 * *scale)
	if err != nil {
		return err
	}
	defer db.Close()
	// Cluster-based assembly: the decomposed units read disjoint page
	// sequences and decode independently, the shape that exposes the
	// inherent parallelism of molecule-set operations.
	if _, err := db.Exec(`CREATE ATOM_CLUSTER cl ON brep-face-edge-point`); err != nil {
		return err
	}
	q := `SELECT ALL FROM brep-face-edge-point`
	base := time.Duration(0)
	fmt.Println("workers | ms/query | speedup")
	for _, w := range []int{1, 2, 4, 8} {
		const reps = 5
		start := time.Now()
		for i := 0; i < reps; i++ {
			mols, err := db.QueryParallel(q, w)
			if err != nil {
				return err
			}
			if len(mols) != 64**scale {
				return fmt.Errorf("lost molecules")
			}
		}
		d := time.Since(start) / reps
		if w == 1 {
			base = d
		}
		fmt.Printf("%7d | %8.2f | %5.2fx\n", w, d.Seconds()*1000, float64(base)/float64(d))
	}
	return nil
}

func a6() error {
	db, err := newScene(2)
	if err != nil {
		return err
	}
	defer db.Close()
	srv, err := wire.Serve(db, "")
	if err != nil {
		return err
	}
	defer srv.Close()

	c1, err := wire.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer c1.Close()
	mols, err := c1.Checkout(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1`)
	if err != nil {
		return err
	}
	c2, err := wire.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer c2.Close()
	for _, a := range mols[0].Atoms {
		if _, err := c2.FetchAtom(a.Addr); err != nil {
			return err
		}
	}
	fmt.Printf("molecule of %d atoms: checkout = %d round trip(s), atom-at-a-time = %d\n",
		len(mols[0].Atoms), c1.RoundTrips(), c2.RoundTrips())
	return nil
}

func a7() error {
	db, err := newScene(0)
	if err != nil {
		return err
	}
	defer db.Close()
	const n = 500
	// Autocommit baseline.
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := db.ExecOne(fmt.Sprintf(`INSERT INTO solid (solid_no) VALUES (%d)`, i)); err != nil {
			return err
		}
	}
	auto := time.Since(start)
	// Transactional inserts (commit).
	start = time.Now()
	for i := 0; i < n; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(fmt.Sprintf(`INSERT INTO solid (solid_no) VALUES (%d)`, n+i)); err != nil {
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	committed := time.Since(start)
	// Aborted transactions leave no trace.
	startCount := db.System().Count("solid")
	start = time.Now()
	for i := 0; i < n; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(fmt.Sprintf(`INSERT INTO solid (solid_no) VALUES (%d)`, 2*n+i)); err != nil {
			return err
		}
		if err := tx.Abort(); err != nil {
			return err
		}
	}
	aborted := time.Since(start)
	if db.System().Count("solid") != startCount {
		return fmt.Errorf("abort leaked atoms")
	}
	fmt.Printf("%d inserts: autocommit %v, tx+commit %v (%.2fx), tx+abort %v (all undone)\n",
		n, auto, committed, float64(committed)/float64(auto), aborted)
	return nil
}
