// Command primaload is PRIMA's closed-loop traffic harness. It drives N
// concurrent wire clients with a configurable checkout/checkin/query/insert
// mix against a primad server — a remote one via -addr, or an in-process
// server it starts itself — and reports client-side latency percentiles per
// op class plus the server's per-stage breakdown.
//
// Usage:
//
//	primaload [-addr host:port] [-dir path] [-no-wal]
//	          [-clients n] [-duration d] [-report d]
//	          [-w-insert n] [-w-query n] [-w-checkout n] [-w-checkin n]
//	          [-fault-latency-prob p] [-fault-latency d] [-fault-reset-prob p]
//	          [-seed n] [-slow-query d] [-csv path]
//
// The run fails (exit 1) if any acknowledged write is lost, or if the run
// recorded no latency at all — so it doubles as a CI smoke check.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prima/internal/load"
)

func main() {
	cfg := load.Config{Out: os.Stdout}
	flag.StringVar(&cfg.Addr, "addr", "", "primad address to drive (empty = start an in-process server)")
	flag.StringVar(&cfg.Dir, "dir", "", "database directory for the in-process server (empty = in-memory)")
	flag.BoolVar(&cfg.NoWAL, "no-wal", false, "disable the in-process server's write-ahead log")
	flag.IntVar(&cfg.Clients, "clients", 8, "number of concurrent closed-loop clients")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "how long to drive traffic")
	flag.DurationVar(&cfg.ReportEvery, "report", 5*time.Second, "periodic report interval (0 = none)")
	flag.IntVar(&cfg.InsertW, "w-insert", 40, "insert weight in the op mix")
	flag.IntVar(&cfg.QueryW, "w-query", 30, "query weight in the op mix")
	flag.IntVar(&cfg.CheckoutW, "w-checkout", 20, "checkout weight in the op mix")
	flag.IntVar(&cfg.CheckinW, "w-checkin", 10, "checkin (stage-modify + commit) weight in the op mix")
	flag.Float64Var(&cfg.FaultLatencyProb, "fault-latency-prob", 0, "probability of injected delay per conn I/O")
	flag.DurationVar(&cfg.FaultLatency, "fault-latency", 2*time.Millisecond, "injected delay duration")
	flag.Float64Var(&cfg.FaultResetProb, "fault-reset-prob", 0, "probability of injected connection reset per conn I/O")
	flag.Int64Var(&cfg.Seed, "seed", 1, "random seed for the op mix and fault schedule")
	flag.DurationVar(&cfg.SlowQuery, "slow-query", 0, "in-process server's slow-query threshold (0 = default 20ms, negative = off); worst op per class reports its server trace ID")
	csvPath := flag.String("csv", "", "write the merged client+server metrics snapshot as CSV to this file")
	flag.Parse()

	rep, err := load.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "primaload:", err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "primaload:", err)
			os.Exit(1)
		}
		if err := rep.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "primaload: csv:", err)
			os.Exit(1)
		}
		f.Close()
	}

	failed := false
	if rep.LostWrites > 0 {
		fmt.Fprintf(os.Stderr, "primaload: FAIL: %d acknowledged writes lost\n", rep.LostWrites)
		failed = true
	}
	if q := rep.MergedQuantiles(); q.Count == 0 || q.P99 <= 0 {
		fmt.Fprintln(os.Stderr, "primaload: FAIL: no latency recorded (empty p99)")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("primaload: OK")
}
