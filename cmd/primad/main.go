// Command primad serves a PRIMA database over TCP for workstation coupling
// (checkout/checkin through the set-oriented MAD interface).
//
// Usage:
//
//	primad [-addr host:port] [-dir path] [-wal] [-init script.mql]
//	       [-metrics-addr host:port]
//	       [-idle-timeout d] [-read-timeout d] [-write-timeout d]
//	       [-max-conns n] [-max-inflight n] [-queue-wait d] [-drain-timeout d]
//
// With -metrics-addr set, primad serves the full metrics snapshot over HTTP
// at /metrics: Prometheus text by default, ?format=csv for flat CSV,
// ?format=json for the structured MetricsSnapshot.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prima"
	"prima/internal/obs"
	"prima/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7487", "listen address")
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	wal := flag.Bool("wal", false, "enable the write-ahead log (durable commits, crash recovery at startup)")
	groupWait := flag.Duration("group-commit-wait", 0, "max time a commit waits to share an fsync (0 = default)")
	ckptBytes := flag.Int64("wal-checkpoint-bytes", 0, "log growth between automatic checkpoints (0 = default)")
	initScript := flag.String("init", "", "MQL script to execute at startup")
	idleTimeout := flag.Duration("idle-timeout", 0, "max silence between requests on a connection (0 = default 10m, negative = none)")
	readTimeout := flag.Duration("read-timeout", 0, "max time to finish a started request frame (0 = default 30s, negative = none)")
	writeTimeout := flag.Duration("write-timeout", 0, "max time per response write (0 = default 30s, negative = none)")
	maxConns := flag.Int("max-conns", 0, "concurrent connection cap (0 = default 1024, negative = unlimited)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent request cap (0 = default 64, negative = unlimited)")
	queueWait := flag.Duration("queue-wait", 0, "max wait for an in-flight slot before shedding (0 = default 1s, negative = shed immediately)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight requests at shutdown")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for the /metrics endpoint (empty = disabled)")
	flag.Parse()

	db, err := prima.Open(prima.Config{
		Dir:                *dir,
		WAL:                *wal,
		GroupCommitMaxWait: *groupWait,
		WALCheckpointBytes: *ckptBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "primad:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *initScript != "" {
		src, err := os.ReadFile(*initScript)
		if err != nil {
			fmt.Fprintln(os.Stderr, "primad:", err)
			os.Exit(1)
		}
		if _, err := db.Exec(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "primad: init:", err)
			os.Exit(1)
		}
	}

	srv, err := wire.ServeConfig(db, *addr, wire.ServerConfig{
		IdleTimeout:  *idleTimeout,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		MaxConns:     *maxConns,
		MaxInFlight:  *maxInFlight,
		QueueWait:    *queueWait,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "primad:", err)
		os.Exit(1)
	}
	fmt.Println("primad listening on", srv.Addr())

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(db.Metrics))
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "primad: metrics:", err)
			}
		}()
		defer msrv.Close()
		fmt.Println("primad metrics on", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("primad: draining (up to %v)\n", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "primad: drain timed out, connections closed hard:", err)
	} else {
		fmt.Println("primad: drained cleanly")
	}
}
