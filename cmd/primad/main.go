// Command primad serves a PRIMA database over TCP for workstation coupling
// (checkout/checkin through the set-oriented MAD interface).
//
// Usage:
//
//	primad [-addr host:port] [-dir path] [-wal] [-init script.mql]
//	       [-metrics-addr host:port]
//	       [-trace-sample n] [-slow-query d]
//	       [-idle-timeout d] [-read-timeout d] [-write-timeout d]
//	       [-max-conns n] [-max-inflight n] [-queue-wait d] [-drain-timeout d]
//
// With -metrics-addr set, primad serves an HTTP diagnostics mux:
//
//	/metrics       full metrics snapshot (Prometheus text; ?format=csv|json)
//	/debug/slow    retained slow-query traces, newest first (?format=json, ?n=K)
//	/debug/traces  head-sampled recent traces (?format=json, ?n=K)
//	/debug/pprof/  the standard Go profiler endpoints
//
// The tracing flags arm the endpoints: -trace-sample n keeps every nth
// request's span tree in the recent ring, -slow-query d retains every
// request at least d slow in the slow ring and logs one line per retained
// trace. Both default to off, in which case /debug/slow and /debug/traces
// serve empty sets and request handling pays a single nil check. Without
// -metrics-addr the HTTP mux (including pprof) is not served at all; the
// trace rings are still reachable over the wire protocol's slow op.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prima"
	"prima/internal/obs"
	"prima/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7487", "listen address")
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	wal := flag.Bool("wal", false, "enable the write-ahead log (durable commits, crash recovery at startup)")
	groupWait := flag.Duration("group-commit-wait", 0, "max time a commit waits to share an fsync (0 = default)")
	ckptBytes := flag.Int64("wal-checkpoint-bytes", 0, "log growth between automatic checkpoints (0 = default)")
	initScript := flag.String("init", "", "MQL script to execute at startup")
	idleTimeout := flag.Duration("idle-timeout", 0, "max silence between requests on a connection (0 = default 10m, negative = none)")
	readTimeout := flag.Duration("read-timeout", 0, "max time to finish a started request frame (0 = default 30s, negative = none)")
	writeTimeout := flag.Duration("write-timeout", 0, "max time per response write (0 = default 30s, negative = none)")
	maxConns := flag.Int("max-conns", 0, "concurrent connection cap (0 = default 1024, negative = unlimited)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent request cap (0 = default 64, negative = unlimited)")
	queueWait := flag.Duration("queue-wait", 0, "max wait for an in-flight slot before shedding (0 = default 1s, negative = shed immediately)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight requests at shutdown")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for the /metrics and /debug endpoints (empty = disabled)")
	traceSample := flag.Int("trace-sample", 0, "head-sample every nth request's trace into /debug/traces (0 = off, 1 = all)")
	slowQuery := flag.Duration("slow-query", 0, "retain and log traces of requests at least this slow (0 = off)")
	flag.Parse()

	db, err := prima.Open(prima.Config{
		Dir:                *dir,
		WAL:                *wal,
		GroupCommitMaxWait: *groupWait,
		WALCheckpointBytes: *ckptBytes,
		TraceSampleRate:    *traceSample,
		SlowQueryThreshold: *slowQuery,
		TraceLogf:          log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "primad:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *initScript != "" {
		src, err := os.ReadFile(*initScript)
		if err != nil {
			fmt.Fprintln(os.Stderr, "primad:", err)
			os.Exit(1)
		}
		if _, err := db.Exec(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "primad: init:", err)
			os.Exit(1)
		}
	}

	srv, err := wire.ServeConfig(db, *addr, wire.ServerConfig{
		IdleTimeout:  *idleTimeout,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		MaxConns:     *maxConns,
		MaxInFlight:  *maxInFlight,
		QueueWait:    *queueWait,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "primad:", err)
		os.Exit(1)
	}
	fmt.Println("primad listening on", srv.Addr())

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(db.Metrics))
		mux.Handle("/debug/slow", obs.TraceHandler(db.Tracer().Slow))
		mux.Handle("/debug/traces", obs.TraceHandler(db.Tracer().Recent))
		// net/http/pprof registers on DefaultServeMux as a side effect; a
		// custom mux needs the handlers mounted explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "primad: metrics:", err)
			}
		}()
		defer msrv.Close()
		fmt.Println("primad metrics on", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("primad: draining (up to %v)\n", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "primad: drain timed out, connections closed hard:", err)
	} else {
		fmt.Println("primad: drained cleanly")
	}
}
