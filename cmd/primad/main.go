// Command primad serves a PRIMA database over TCP for workstation coupling
// (checkout/checkin through the set-oriented MAD interface).
//
// Usage:
//
//	primad [-addr host:port] [-dir path] [-wal] [-init script.mql]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"prima"
	"prima/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7487", "listen address")
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	wal := flag.Bool("wal", false, "enable the write-ahead log (durable commits, crash recovery at startup)")
	groupWait := flag.Duration("group-commit-wait", 0, "max time a commit waits to share an fsync (0 = default)")
	ckptBytes := flag.Int64("wal-checkpoint-bytes", 0, "log growth between automatic checkpoints (0 = default)")
	initScript := flag.String("init", "", "MQL script to execute at startup")
	flag.Parse()

	db, err := prima.Open(prima.Config{
		Dir:                *dir,
		WAL:                *wal,
		GroupCommitMaxWait: *groupWait,
		WALCheckpointBytes: *ckptBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "primad:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *initScript != "" {
		src, err := os.ReadFile(*initScript)
		if err != nil {
			fmt.Fprintln(os.Stderr, "primad:", err)
			os.Exit(1)
		}
		if _, err := db.Exec(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "primad: init:", err)
			os.Exit(1)
		}
	}

	srv, err := wire.Serve(db, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "primad:", err)
		os.Exit(1)
	}
	fmt.Println("primad listening on", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("primad: shutting down")
	srv.Close()
}
