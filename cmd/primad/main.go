// Command primad serves a PRIMA database over TCP for workstation coupling
// (checkout/checkin through the set-oriented MAD interface).
//
// Usage:
//
//	primad [-addr host:port] [-dir path] [-init script.mql]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"prima"
	"prima/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7487", "listen address")
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	initScript := flag.String("init", "", "MQL script to execute at startup")
	flag.Parse()

	db, err := prima.Open(prima.Config{Dir: *dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "primad:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *initScript != "" {
		src, err := os.ReadFile(*initScript)
		if err != nil {
			fmt.Fprintln(os.Stderr, "primad:", err)
			os.Exit(1)
		}
		if _, err := db.Exec(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "primad: init:", err)
			os.Exit(1)
		}
	}

	srv, err := wire.Serve(db, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "primad:", err)
		os.Exit(1)
	}
	fmt.Println("primad listening on", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("primad: shutting down")
	srv.Close()
}
