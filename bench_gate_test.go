//go:build benchgate

package prima

// The CI bench gate: run with
//
//	go test -tags benchgate -run TestBenchGate .
//
// It re-runs the warm repeated-checkout, parallel-materialization and
// group-commit benchmarks and fails when allocs/op or ns/op regresses
// beyond the committed baseline (BENCH_baseline.json) times its headroom
// factor. The baseline file is shared with other packages' gates (e.g.
// internal/wire); this gate only enforces the keys registered below. When a
// PR legitimately changes a profile, re-measure with
//
//	go test -run=NONE -bench='BenchmarkRepeatedCheckout|BenchmarkParallelMaterialization|BenchmarkGroupCommit' -benchmem .
//
// and update the baseline in the same commit.

import (
	"testing"

	"prima/internal/benchgate"
)

// gatedBenchmarks maps baseline keys to the benchmark bodies they gate.
var gatedBenchmarks = map[string]func(b *testing.B){
	"BenchmarkRepeatedCheckout/cache_on":         func(b *testing.B) { benchRepeatedCheckout(b, 1<<16) },
	"BenchmarkParallelMaterialization/serial":    func(b *testing.B) { benchParallelMaterialization(b, 1) },
	"BenchmarkParallelMaterialization/parallel8": func(b *testing.B) { benchParallelMaterialization(b, 8) },
	// Wall-clock only: group-commit batching is timing-dependent, so
	// allocation counts are not stable enough to gate.
	"BenchmarkGroupCommit/committers16": func(b *testing.B) { benchGroupCommit(b, 16) },
}

func TestBenchGate(t *testing.T) {
	benchgate.Run(t, "BENCH_baseline.json", gatedBenchmarks)
}
