//go:build benchgate

package prima

// The CI allocation gate: run with
//
//	go test -tags benchgate -run TestRepeatedCheckoutAllocGate .
//
// It re-runs the warm repeated-checkout benchmark with the decoded-atom
// cache enabled and fails when allocs/op regresses beyond the committed
// baseline (BENCH_baseline.json) times its headroom factor. Allocation
// counts are deterministic across machines — unlike wall clock — which is
// what makes this gate CI-stable. When a PR legitimately changes the
// allocation profile, re-measure with `go test -run=NONE
// -bench=BenchmarkRepeatedCheckout -benchmem .` and update the baseline in
// the same commit.

import (
	"encoding/json"
	"os"
	"testing"
)

type benchBaseline struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	Headroom    float64 `json:"headroom"`
}

func TestRepeatedCheckoutAllocGate(t *testing.T) {
	data, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var baselines map[string]benchBaseline
	if err := json.Unmarshal(data, &baselines); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	base, ok := baselines["BenchmarkRepeatedCheckout/cache_on"]
	if !ok || base.AllocsPerOp <= 0 || base.Headroom < 1 {
		t.Fatalf("baseline missing or malformed: %+v", base)
	}

	res := testing.Benchmark(func(b *testing.B) { benchRepeatedCheckout(b, 1<<16) })
	got := float64(res.AllocsPerOp())
	limit := base.AllocsPerOp * base.Headroom
	t.Logf("warm repeated checkout: %.0f allocs/op (baseline %.0f, limit %.0f)", got, base.AllocsPerOp, limit)
	if got > limit {
		t.Fatalf("allocs/op regression: %.0f > limit %.0f (baseline %.0f x headroom %.2f) — "+
			"fix the regression or re-measure and update BENCH_baseline.json",
			got, limit, base.AllocsPerOp, base.Headroom)
	}
}
