//go:build benchgate

package prima

// The CI bench gate: run with
//
//	go test -tags benchgate -run TestBenchGate .
//
// It re-runs the warm repeated-checkout and the parallel-materialization
// benchmarks and fails when allocs/op or ns/op regresses beyond the
// committed baseline (BENCH_baseline.json) times its headroom factor.
// Allocation counts are deterministic across machines — unlike wall clock —
// so the allocs headroom is tight (1.25x); the ns/op entries exist to catch
// order-of-magnitude wall-clock cliffs and carry a wide CI-stability
// headroom (3x). When a PR legitimately changes a profile, re-measure with
//
//	go test -run=NONE -bench='BenchmarkRepeatedCheckout|BenchmarkParallelMaterialization' -benchmem .
//
// and update the baseline in the same commit.

import (
	"encoding/json"
	"os"
	"testing"
)

type benchBaseline struct {
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Headroom    float64 `json:"headroom,omitempty"` // allocs/op headroom factor
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	NsHeadroom  float64 `json:"ns_headroom,omitempty"`
}

// gatedBenchmarks maps baseline keys to the benchmark bodies they gate.
var gatedBenchmarks = map[string]func(b *testing.B){
	"BenchmarkRepeatedCheckout/cache_on":         func(b *testing.B) { benchRepeatedCheckout(b, 1<<16) },
	"BenchmarkParallelMaterialization/serial":    func(b *testing.B) { benchParallelMaterialization(b, 1) },
	"BenchmarkParallelMaterialization/parallel8": func(b *testing.B) { benchParallelMaterialization(b, 8) },
	// Wall-clock only: group-commit batching is timing-dependent, so
	// allocation counts are not stable enough to gate.
	"BenchmarkGroupCommit/committers16": func(b *testing.B) { benchGroupCommit(b, 16) },
}

func TestBenchGate(t *testing.T) {
	data, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var baselines map[string]benchBaseline
	if err := json.Unmarshal(data, &baselines); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	for name, base := range baselines {
		fn, ok := gatedBenchmarks[name]
		if !ok {
			t.Fatalf("baseline %q has no registered benchmark", name)
		}
		if base.AllocsPerOp <= 0 && base.NsPerOp <= 0 {
			t.Fatalf("baseline %q is empty: %+v", name, base)
		}
		res := testing.Benchmark(fn)
		if base.AllocsPerOp > 0 {
			if base.Headroom < 1 {
				t.Fatalf("baseline %q: allocs headroom %v < 1", name, base.Headroom)
			}
			got, limit := float64(res.AllocsPerOp()), base.AllocsPerOp*base.Headroom
			t.Logf("%s: %.0f allocs/op (baseline %.0f, limit %.0f)", name, got, base.AllocsPerOp, limit)
			if got > limit {
				t.Errorf("%s: allocs/op regression: %.0f > limit %.0f (baseline %.0f x headroom %.2f) — "+
					"fix the regression or re-measure and update BENCH_baseline.json",
					name, got, limit, base.AllocsPerOp, base.Headroom)
			}
		}
		if base.NsPerOp > 0 {
			if base.NsHeadroom < 1 {
				t.Fatalf("baseline %q: ns headroom %v < 1", name, base.NsHeadroom)
			}
			got, limit := float64(res.NsPerOp()), base.NsPerOp*base.NsHeadroom
			t.Logf("%s: %.0f ns/op (baseline %.0f, limit %.0f)", name, got, base.NsPerOp, limit)
			if got > limit {
				t.Errorf("%s: ns/op regression: %.0f > limit %.0f (baseline %.0f x headroom %.2f) — "+
					"fix the regression or re-measure and update BENCH_baseline.json",
					name, got, limit, base.NsPerOp, base.NsHeadroom)
			}
		}
	}
}
