package txn

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/catalog"
	"prima/internal/storage/device"
)

// crashCfg returns the access configuration the crash tests run under: a
// tiny buffer pool (so dirty pages hit the device before checkpoints),
// aggressive checkpointing and a short group-commit window.
func crashCfg(dir string, wrap func(string, device.Device) device.Device) access.Config {
	return access.Config{
		Dir:                dir,
		WAL:                true,
		PageSize:           1024,
		BufferBytes:        64 << 10,
		GroupCommitMaxWait: 100 * time.Microsecond,
		WALCheckpointBytes: 16 << 10,
		FileWrap:           wrap,
	}
}

// setupCrashDB creates a database directory holding just the schema, so
// every incarnation under test starts from the same durable base state.
func setupCrashDB(t *testing.T, dir string) {
	t.Helper()
	sys, err := access.Open(crashCfg(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	part, err := catalog.NewAtomType("part", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "no", Type: catalog.SpecInt()},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Schema().AddAtomType(part); err != nil {
		t.Fatal(err)
	}
	if err := sys.Schema().ResolveAssociations(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// crashRun executes the deterministic workload against a fresh copy of the
// base database with every device volatile and the given crash plan armed.
// It returns the committed model (addr -> expected "no" value), the set of
// every address the run ever allocated, and — when the crash fired inside a
// Commit call — that transaction's staged changes (which recovery may
// legitimately have preserved, atomically).
type crashOutcome struct {
	model    map[addr.LogicalAddr]int64 // acked-committed state
	ever     map[addr.LogicalAddr]bool  // every address allocated pre-crash
	inFlight map[addr.LogicalAddr]int64 // nil unless the crash hit a Commit; -1 = deleted
}

const crashTxns = 30

func crashRun(t *testing.T, dir string, plan *device.CrashPlan, seed int64) crashOutcome {
	t.Helper()
	wrap := func(name string, d device.Device) device.Device {
		fd := device.NewFault(d)
		fd.SetVolatile(true)
		fd.SetPlan(plan, strings.HasPrefix(name, "wal_"))
		return fd
	}
	out := crashOutcome{
		model: map[addr.LogicalAddr]int64{},
		ever:  map[addr.LogicalAddr]bool{},
	}
	sys, err := access.Open(crashCfg(dir, wrap))
	if err != nil {
		if plan.Crashed() {
			return out // crash during open-time recovery/checkpoint
		}
		t.Fatal(err)
	}
	defer sys.Close() // after a crash this fails; that is the point

	m := NewManager(sys)
	rng := rand.New(rand.NewSource(seed))
	var live []addr.LogicalAddr // committed live addresses, insertion order
	nextVal := int64(1)

	for i := 0; i < crashTxns; i++ {
		// Stage this transaction's intended effects: -1 marks a delete.
		staged := map[addr.LogicalAddr]int64{}
		var stagedLive []addr.LogicalAddr
		tx := m.Begin()
		nops := 1 + rng.Intn(3)
		doErr := tx.Do(func() error {
			for o := 0; o < nops; o++ {
				pool := append(append([]addr.LogicalAddr{}, live...), stagedLive...)
				k := rng.Intn(10)
				switch {
				case len(pool) == 0 || k < 5: // insert
					v := nextVal
					nextVal++
					a, err := sys.Insert("part", map[string]atom.Value{"no": atom.Int(v)})
					if err != nil {
						return err
					}
					out.ever[a] = true
					staged[a] = v
					stagedLive = append(stagedLive, a)
				case k < 8: // update
					a := pool[rng.Intn(len(pool))]
					if staged[a] == -1 {
						continue
					}
					v := nextVal
					nextVal++
					if err := sys.Update(a, map[string]atom.Value{"no": atom.Int(v)}); err != nil {
						return err
					}
					staged[a] = v
				default: // delete
					a := pool[rng.Intn(len(pool))]
					if staged[a] == -1 {
						continue
					}
					if err := sys.Delete(a); err != nil {
						return err
					}
					staged[a] = -1
				}
			}
			return nil
		})
		if doErr != nil {
			if plan.Crashed() {
				return out // crash mid-statement: the transaction is a loser
			}
			t.Fatalf("txn %d: %v", i, doErr)
		}
		if rng.Intn(10) == 0 {
			if err := tx.Abort(); err != nil {
				if plan.Crashed() {
					return out
				}
				t.Fatalf("txn %d abort: %v", i, err)
			}
			continue
		}
		if err := tx.Commit(); err != nil {
			if plan.Crashed() {
				// The commit record may or may not have reached the disk
				// (torn log write): recovery may keep this transaction, but
				// only atomically.
				out.inFlight = staged
				return out
			}
			t.Fatalf("txn %d commit: %v", i, err)
		}
		// Acked: fold the staged changes into the expected model.
		for a, v := range staged {
			if v == -1 {
				delete(out.model, a)
			} else {
				out.model[a] = v
			}
		}
		live = live[:0]
		for a := range out.model {
			live = append(live, a)
		}
		// Map iteration order is random; restore determinism for target picks.
		sortAddrs(live)
	}
	return out
}

func sortAddrs(as []addr.LogicalAddr) {
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j] < as[j-1]; j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}

// checkState verifies that the reopened system's state equals the model:
// every modeled address holds its expected value, every other address the
// run allocated is absent. It returns an error instead of failing so the
// caller can try the in-flight alternative.
func checkState(sys *access.System, out crashOutcome, model map[addr.LogicalAddr]int64) error {
	for a, v := range model {
		if !sys.Directory().Exists(a) {
			return fmt.Errorf("committed atom %v missing", a)
		}
		at, err := sys.Get(a, nil)
		if err != nil {
			return fmt.Errorf("committed atom %v unreadable: %w", a, err)
		}
		got, _ := at.Value("no")
		if got.I != v {
			return fmt.Errorf("atom %v: no = %d, want %d", a, got.I, v)
		}
	}
	for a := range out.ever {
		if _, expected := model[a]; expected {
			continue
		}
		if sys.Directory().Exists(a) {
			return fmt.Errorf("uncommitted/deleted atom %v present", a)
		}
	}
	return nil
}

// recoverAndVerify reopens the crashed database without fault injection,
// letting write-ahead-log recovery run, and checks the committed-prefix
// property; then proves the database is still writable.
func recoverAndVerify(t *testing.T, dir string, out crashOutcome, point string) {
	t.Helper()
	sys, err := access.Open(crashCfg(dir, nil))
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", point, err)
	}
	defer sys.Close()

	err = checkState(sys, out, out.model)
	if err != nil && out.inFlight != nil {
		// The in-flight commit's record may have survived (torn tail):
		// then its whole transaction must be present.
		withB := map[addr.LogicalAddr]int64{}
		for a, v := range out.model {
			withB[a] = v
		}
		for a, v := range out.inFlight {
			if v == -1 {
				delete(withB, a)
			} else {
				withB[a] = v
			}
		}
		if errB := checkState(sys, out, withB); errB == nil {
			err = nil
		}
	}
	if err != nil {
		t.Fatalf("%s: state after recovery: %v", point, err)
	}

	// The recovered database accepts new work.
	a, err := sys.Insert("part", map[string]atom.Value{"no": atom.Int(424242)})
	if err != nil {
		t.Fatalf("%s: insert after recovery: %v", point, err)
	}
	at, err := sys.Get(a, nil)
	if err != nil {
		t.Fatalf("%s: read-back after recovery: %v", point, err)
	}
	if v, _ := at.Value("no"); v.I != 424242 {
		t.Fatalf("%s: read-back = %d", point, v.I)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("%s: close after recovery: %v", point, err)
	}
}

// TestCrashRecoveryEveryPoint is the crash-recovery property test: it
// rehearses a random workload fault-free to count the durability points
// (device syncs and writes), then replays the same workload crashing at
// every sync and at sampled (torn) writes, reopening and verifying after
// each crash that exactly the acked-committed prefix survived and the
// database still works.
func TestCrashRecoveryEveryPoint(t *testing.T) {
	const seed = 7

	// Rehearsal: count the workload's crash points.
	base := t.TempDir()
	rehearsalDir := filepath.Join(base, "rehearsal")
	setupCrashDB(t, rehearsalDir)
	plan := device.NewCrashPlan() // never armed
	out := crashRun(t, rehearsalDir, plan, seed)
	writes, syncs := plan.Counts()
	if syncs < 5 || writes < 10 {
		t.Fatalf("rehearsal too quiet: %d writes, %d syncs", writes, syncs)
	}
	if len(out.model) == 0 {
		t.Fatal("rehearsal committed nothing")
	}
	recoverAndVerify(t, rehearsalDir, out, "rehearsal")

	syncStep, writeStep := 1, 7
	if testing.Short() {
		syncStep, writeStep = 4, 29
	}

	for k := 1; k <= syncs; k += syncStep {
		k := k
		t.Run(fmt.Sprintf("sync-%d", k), func(t *testing.T) {
			dir := filepath.Join(base, fmt.Sprintf("sync%d", k))
			setupCrashDB(t, dir)
			plan := device.NewCrashPlan()
			plan.CrashAtSync(k)
			out := crashRun(t, dir, plan, seed)
			recoverAndVerify(t, dir, out, fmt.Sprintf("crash at sync %d", k))
		})
	}

	rng := rand.New(rand.NewSource(seed))
	for j := 1; j <= writes; j += writeStep {
		j := j
		torn := rng.Intn(3 * 1024)
		t.Run(fmt.Sprintf("write-%d", j), func(t *testing.T) {
			dir := filepath.Join(base, fmt.Sprintf("write%d", j))
			setupCrashDB(t, dir)
			plan := device.NewCrashPlan()
			plan.CrashAtWrite(j, torn)
			out := crashRun(t, dir, plan, seed)
			recoverAndVerify(t, dir, out, fmt.Sprintf("crash at write %d (torn %d)", j, torn))
		})
	}
}
