// Package txn implements nested transactions, the concept PRIMA adopts "as
// a generic mechanism for all proposed uses" (§4, after Moss [Mo81]): units
// of work form a tree; a child's effects become part of its parent on
// commit, and aborting a child rolls back only its own sphere — the
// "selective in-transaction recovery" the paper calls for — while the
// parent continues.
//
// Writers acquire exclusive atom locks following Moss's rules: a
// transaction may lock an atom if every other holder is one of its
// ancestors; on commit the child's locks are inherited by the parent. Lock
// conflicts fail immediately (no-wait policy): the failed statement leaves
// partial effects that the caller removes by aborting, which is exactly
// what the undo log is for.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/obs"
)

// Errors returned by the transaction layer.
var (
	ErrDone         = errors.New("txn: transaction already finished")
	ErrChildActive  = errors.New("txn: child transactions still active")
	ErrLockConflict = errors.New("txn: lock conflict")
	ErrNotOwner     = errors.New("txn: operation outside transaction scope")
	// ErrPoisoned means a rollback failed partway: locks were released over
	// a possibly half-undone sphere, so the in-memory state can no longer be
	// trusted. New work is refused; reopen the database (whose write-ahead
	// log replays to a consistent state) to recover.
	ErrPoisoned = errors.New("txn: manager poisoned by failed rollback, reopen the database")
)

// opKind tags undo log entries.
type opKind uint8

const (
	opInsert opKind = iota
	opUpdate
	opDelete
)

// logEntry is one undoable mutation.
type logEntry struct {
	kind     opKind
	a        addr.LogicalAddr
	typeName string
	pre      []atom.Value // pre-image for update/delete
}

// Manager coordinates transactions over one access system.
type Manager struct {
	sys *access.System

	mu     sync.Mutex
	nextID uint64
	locks  map[addr.LogicalAddr]*Tx // exclusive holders
	// poisoned is set when an abort's undo failed partway (see ErrPoisoned).
	poisoned error
	// writer serializes mutating statements so the single system hook can
	// attribute mutations to the right transaction.
	writer  sync.Mutex
	current *Tx

	// commitNs observes top-level commit latency — lock release plus the
	// group-commit wait that dominates it when the WAL is on.
	commitNs *obs.Histogram
}

// NewManager creates a transaction manager and installs its hook. It also
// becomes the access system's transaction-id source, so write-ahead log
// records carry the top-level transaction they belong to.
func NewManager(sys *access.System) *Manager {
	m := &Manager{sys: sys, locks: map[addr.LogicalAddr]*Tx{}, commitNs: sys.Obs().Histogram("txn_commit_ns")}
	sys.SetHook((*managerHook)(m))
	sys.SetTxIDSource(func() uint64 {
		m.mu.Lock()
		cur := m.current
		m.mu.Unlock()
		if cur == nil {
			return 0
		}
		return cur.rootID()
	})
	return m
}

// Tx is one transaction (top-level or nested). Every transaction pins a
// snapshot at Begin: its reads resolve at that epoch, untouched by concurrent
// committers, and the snapshot advances only when the transaction's own
// writes land (read-your-writes) — snapshot isolation per sphere.
type Tx struct {
	m        *Manager
	id       uint64
	parent   *Tx
	children int
	done     bool
	dead     bool // Begin on a poisoned manager: every operation fails
	log      []logEntry
	locks    map[addr.LogicalAddr]bool // locks acquired by this tx itself
	snap     *access.Snapshot          // the tx's read view (guarded by m.mu)
}

// Begin starts a top-level transaction. On a poisoned manager the returned
// transaction is stillborn: every operation on it fails with ErrPoisoned.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.poisoned != nil {
		return &Tx{m: m, dead: true, done: true, locks: map[addr.LogicalAddr]bool{}}
	}
	m.nextID++
	return &Tx{m: m, id: m.nextID, locks: map[addr.LogicalAddr]bool{}, snap: m.sys.OpenSnapshot()}
}

// Begin starts a nested child transaction. The child opens at the current
// epoch, so it sees the parent's effects committed so far.
func (t *Tx) Begin() (*Tx, error) {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	if t.dead || t.m.poisoned != nil {
		return nil, ErrPoisoned
	}
	if t.done {
		return nil, ErrDone
	}
	t.m.nextID++
	t.children++
	return &Tx{m: t.m, id: t.m.nextID, parent: t, locks: map[addr.LogicalAddr]bool{}, snap: t.m.sys.OpenSnapshot()}, nil
}

// ID returns the transaction id.
func (t *Tx) ID() uint64 { return t.id }

// rootID returns the id of t's top-level ancestor — the scope write-ahead
// log records are attributed to (parents are immutable after Begin).
func (t *Tx) rootID() uint64 {
	cur := t
	for cur.parent != nil {
		cur = cur.parent
	}
	return cur.id
}

// Epoch returns the snapshot epoch the transaction currently reads at.
// Cursors opened on the transaction's behalf pin this epoch (OpenAt), so
// they share its frozen view.
func (t *Tx) Epoch() uint64 {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.snap.Epoch()
}

// refreshLocked advances t's read view to the current epoch; called with
// m.mu held after t's own sphere changed the database.
func (t *Tx) refreshLocked() {
	old := t.snap
	t.snap = t.m.sys.OpenSnapshot()
	old.Close()
}

// Do runs fn with this transaction bound as the mutation scope: every
// access-system write inside fn is locked for and logged to t.
func (t *Tx) Do(fn func() error) error {
	t.m.mu.Lock()
	if t.dead || t.m.poisoned != nil {
		t.m.mu.Unlock()
		return ErrPoisoned
	}
	if t.done {
		t.m.mu.Unlock()
		return ErrDone
	}
	before := len(t.log)
	t.m.mu.Unlock()

	t.m.writer.Lock()
	defer t.m.writer.Unlock()
	t.m.mu.Lock()
	t.m.current = t
	t.m.mu.Unlock()
	defer func() {
		t.m.mu.Lock()
		t.m.current = nil
		// Read-your-writes: a transaction that mutated atoms inside fn must
		// see its own effects on the next read, so its view advances to the
		// epoch its writes closed. Read-only spheres keep their frozen view.
		if len(t.log) > before && !t.done {
			t.refreshLocked()
		}
		t.m.mu.Unlock()
	}()
	return fn()
}

// isAncestorOf reports whether t is an ancestor of (or equal to) o.
func (t *Tx) isAncestorOf(o *Tx) bool {
	for cur := o; cur != nil; cur = cur.parent {
		if cur == t {
			return true
		}
	}
	return false
}

// lock acquires an exclusive atom lock for t (Moss rule: conflicting
// holders must be ancestors).
func (m *Manager) lock(t *Tx, a addr.LogicalAddr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	holder, held := m.locks[a]
	if !held || holder == t {
		m.locks[a] = t
		t.locks[a] = true
		return nil
	}
	if holder.isAncestorOf(t) {
		// Ancestor retains the lock; the child may use and re-own it.
		m.locks[a] = t
		t.locks[a] = true
		return nil
	}
	return fmt.Errorf("%w: atom %v held by transaction %d", ErrLockConflict, a, holder.id)
}

// Commit finishes t. A nested commit hands its undo log and locks to the
// parent (the parent's abort can still undo the child). A top-level commit
// releases all locks and — when the system runs a write-ahead log — blocks
// until its commit record is on stable storage (group commit), at which
// point the effects survive a crash. Without a log the effects live in
// memory and buffered pages only and become durable at the next checkpoint.
func (t *Tx) Commit() error {
	if t.parent == nil {
		defer t.m.commitNs.ObserveSince(time.Now())
	}
	t.m.mu.Lock()
	if t.dead {
		t.m.mu.Unlock()
		return ErrPoisoned
	}
	if t.done {
		t.m.mu.Unlock()
		return ErrDone
	}
	if t.children > 0 {
		t.m.mu.Unlock()
		return ErrChildActive
	}
	t.done = true
	t.snap.Close()
	if t.parent != nil {
		defer t.m.mu.Unlock()
		t.parent.children--
		childWrote := len(t.log) > 0
		// Log inheritance: parent abort undoes the child too.
		t.parent.log = append(t.parent.log, t.log...)
		// Lock inheritance (Moss).
		for a := range t.locks {
			if t.m.locks[a] == t {
				t.m.locks[a] = t.parent
			}
			t.parent.locks[a] = true
		}
		if childWrote {
			// The child's effects join the parent's sphere; the parent's
			// reads must see them from now on.
			t.parent.refreshLocked()
		}
		return nil
	}
	wrote := len(t.log) > 0
	t.m.mu.Unlock()
	var walErr error
	if wrote {
		// Group commit happens outside m.mu so concurrent committers batch
		// into one fsync — but still holding t's atom locks: were they
		// released first, a successor could overwrite this write set and
		// commit durably while a crash makes t a loser, whose undo would
		// then clobber the successor's committed state.
		walErr = t.m.sys.WALCommit(t.id)
	}
	t.m.mu.Lock()
	for a := range t.locks {
		if t.m.locks[a] == t {
			delete(t.m.locks, a)
		}
	}
	t.m.mu.Unlock()
	return walErr
}

// Abort undoes every mutation of t (and of its committed children) in
// reverse order and releases its locks. Parents and siblings are untouched.
//
// Every entry is undone even if some fail: stopping at the first error while
// still releasing the locks below would expose the skipped, still-applied
// mutations to other transactions as if committed. Entries that do fail
// leave the in-memory state inconsistent, so the manager is poisoned —
// further work is refused until the database is reopened (the write-ahead
// log, which also records the transaction as a loser, then rolls it back
// cleanly during recovery).
func (t *Tx) Abort() error {
	t.m.mu.Lock()
	if t.dead {
		t.m.mu.Unlock()
		return ErrPoisoned
	}
	if t.done {
		t.m.mu.Unlock()
		return ErrDone
	}
	if t.children > 0 {
		t.m.mu.Unlock()
		return ErrChildActive
	}
	t.done = true
	t.snap.Close()
	log := t.log
	t.m.mu.Unlock()

	// Undo without the hook observing (rollback must not lock or log-for-undo
	// itself), but with t bound as the current scope so the write-ahead log
	// attributes the rollback's own page writes to this transaction.
	t.m.writer.Lock()
	t.m.sys.SetHook(nil)
	t.m.mu.Lock()
	prev := t.m.current
	t.m.current = t
	t.m.mu.Unlock()
	var undoErrs []error
	for i := len(log) - 1; i >= 0; i-- {
		e := log[i]
		var err error
		switch e.kind {
		case opInsert:
			err = t.m.sys.RawDelete(e.a)
		case opUpdate:
			err = t.m.sys.RawOverwrite(e.a, e.pre)
		case opDelete:
			err = t.m.sys.RawResurrect(e.a, e.pre)
		}
		if err != nil {
			undoErrs = append(undoErrs, fmt.Errorf("txn: undo %v: %w", e.a, err))
		}
	}
	undoErr := errors.Join(undoErrs...)
	t.m.mu.Lock()
	t.m.current = prev
	t.m.mu.Unlock()
	t.m.sys.SetHook((*managerHook)(t.m))
	t.m.writer.Unlock()

	wrote := len(log) > 0
	t.m.mu.Lock()
	if t.parent != nil {
		t.parent.children--
	}
	for a := range t.locks {
		if t.m.locks[a] == t {
			if t.parent != nil && t.parent.locks[a] {
				t.m.locks[a] = t.parent
			} else {
				delete(t.m.locks, a)
			}
		}
	}
	if undoErr != nil && t.m.poisoned == nil {
		t.m.poisoned = undoErr
	}
	t.m.mu.Unlock()
	if undoErr != nil {
		return fmt.Errorf("txn: undo failed: %w", undoErr)
	}
	if t.parent == nil && wrote {
		// The rollback is complete in memory and fully compensated in the
		// log; the abort record just spares recovery the undo work. Losing
		// it is harmless, so it is appended without forcing a flush.
		return t.m.sys.WALAbort(t.id)
	}
	return nil
}

// managerHook adapts Manager to the access.Hook interface.
type managerHook Manager

func (h *managerHook) m() *Manager { return (*Manager)(h) }

// BeforeWrite locks the atom for the current transaction. Writes outside
// any transaction scope pass through unlocked (autocommit).
func (h *managerHook) BeforeWrite(a addr.LogicalAddr) error {
	m := h.m()
	m.mu.Lock()
	cur := m.current
	poisoned := m.poisoned
	m.mu.Unlock()
	if poisoned != nil {
		return ErrPoisoned
	}
	if cur == nil {
		// Autocommit write: it must not bypass existing locks.
		m.mu.Lock()
		holder, held := m.locks[a]
		m.mu.Unlock()
		if held {
			return fmt.Errorf("%w: atom %v held by transaction %d", ErrLockConflict, a, holder.id)
		}
		return nil
	}
	return m.lock(cur, a)
}

func (h *managerHook) DidInsert(a addr.LogicalAddr) {
	m := h.m()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.current != nil {
		m.current.log = append(m.current.log, logEntry{kind: opInsert, a: a})
	}
}

func (h *managerHook) DidUpdate(a addr.LogicalAddr, typeName string, old []atom.Value) {
	m := h.m()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.current != nil {
		pre := make([]atom.Value, len(old))
		for i, v := range old {
			pre[i] = v.Clone()
		}
		m.current.log = append(m.current.log, logEntry{kind: opUpdate, a: a, typeName: typeName, pre: pre})
	}
}

func (h *managerHook) DidDelete(a addr.LogicalAddr, typeName string, old []atom.Value) {
	m := h.m()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.current != nil {
		pre := make([]atom.Value, len(old))
		for i, v := range old {
			pre[i] = v.Clone()
		}
		m.current.log = append(m.current.log, logEntry{kind: opDelete, a: a, typeName: typeName, pre: pre})
	}
}
