package txn

import (
	"errors"
	"testing"

	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/catalog"
)

// newSys builds an in-memory access system with a parts/links schema (n:m).
func newSys(t testing.TB) *access.System {
	t.Helper()
	sys, err := access.Open(access.Config{})
	if err != nil {
		t.Fatal(err)
	}
	part, err := catalog.NewAtomType("part", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "no", Type: catalog.SpecInt()},
		{Name: "uses", Type: catalog.SpecSetOf(catalog.SpecRef("part", "used_by"), 0, catalog.VarCard)},
		{Name: "used_by", Type: catalog.SpecSetOf(catalog.SpecRef("part", "uses"), 0, catalog.VarCard)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Schema().AddAtomType(part); err != nil {
		t.Fatal(err)
	}
	if err := sys.Schema().ResolveAssociations(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAbortUndoesInsertUpdateDelete(t *testing.T) {
	sys := newSys(t)
	m := NewManager(sys)

	// Pre-existing atom.
	base, err := sys.Insert("part", map[string]atom.Value{"no": atom.Int(1)})
	if err != nil {
		t.Fatal(err)
	}

	tx := m.Begin()
	var inserted addr.LogicalAddr
	err = tx.Do(func() error {
		var err error
		if inserted, err = sys.Insert("part", map[string]atom.Value{"no": atom.Int(2)}); err != nil {
			return err
		}
		if err := sys.Update(base, map[string]atom.Value{"no": atom.Int(99)}); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	// Insert undone.
	if sys.Directory().Exists(inserted) {
		t.Fatal("aborted insert still exists")
	}
	// Update undone.
	at, err := sys.Get(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := at.Value("no"); v.I != 1 {
		t.Fatalf("no = %d after abort, want 1", v.I)
	}

	// Delete undo restores the atom under the same address.
	tx2 := m.Begin()
	err = tx2.Do(func() error { return sys.Delete(base) })
	if err != nil {
		t.Fatal(err)
	}
	if sys.Directory().Exists(base) {
		t.Fatal("delete not applied")
	}
	if err := tx2.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	at, err = sys.Get(base, nil)
	if err != nil {
		t.Fatalf("restored atom unreadable: %v", err)
	}
	if v, _ := at.Value("no"); v.I != 1 {
		t.Fatalf("restored no = %d", v.I)
	}
}

func TestAbortRestoresReferenceSymmetry(t *testing.T) {
	sys := newSys(t)
	m := NewManager(sys)
	a, _ := sys.Insert("part", map[string]atom.Value{"no": atom.Int(1)})
	b, _ := sys.Insert("part", map[string]atom.Value{"no": atom.Int(2)})
	if err := sys.Connect(a, "uses", b); err != nil {
		t.Fatal(err)
	}

	tx := m.Begin()
	// Delete b inside the transaction: a loses its reference.
	if err := tx.Do(func() error { return sys.Delete(b) }); err != nil {
		t.Fatal(err)
	}
	at, _ := sys.Get(a, nil)
	if v, _ := at.Value("uses"); v.ContainsRef(b) {
		t.Fatal("reference not removed by delete")
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	// Both the atom and the symmetric references are back.
	at, _ = sys.Get(a, nil)
	if v, _ := at.Value("uses"); !v.ContainsRef(b) {
		t.Fatal("forward reference not restored by abort")
	}
	bt, err := sys.Get(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := bt.Value("used_by"); !v.ContainsRef(a) {
		t.Fatal("back reference not restored by abort")
	}
}

func TestNestedCommitAndSelectiveAbort(t *testing.T) {
	sys := newSys(t)
	m := NewManager(sys)

	parent := m.Begin()
	var p1, p2 addr.LogicalAddr
	if err := parent.Do(func() error {
		var err error
		p1, err = sys.Insert("part", map[string]atom.Value{"no": atom.Int(10)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Child 1 commits: its effects stay.
	c1, err := parent.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Do(func() error {
		var err error
		p2, err = sys.Insert("part", map[string]atom.Value{"no": atom.Int(11)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}

	// Child 2 aborts: only its sphere rolls back.
	c2, err := parent.Begin()
	if err != nil {
		t.Fatal(err)
	}
	var p3 addr.LogicalAddr
	if err := c2.Do(func() error {
		var err error
		p3, err = sys.Insert("part", map[string]atom.Value{"no": atom.Int(12)})
		if err != nil {
			return err
		}
		return sys.Update(p1, map[string]atom.Value{"no": atom.Int(1000)})
	}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Abort(); err != nil {
		t.Fatal(err)
	}

	if sys.Directory().Exists(p3) {
		t.Fatal("aborted child's insert survived")
	}
	if !sys.Directory().Exists(p2) {
		t.Fatal("committed child's insert rolled back by sibling abort")
	}
	at, _ := sys.Get(p1, nil)
	if v, _ := at.Value("no"); v.I != 10 {
		t.Fatalf("child abort did not restore parent's atom: no=%d", v.I)
	}

	// Parent abort now also undoes the committed child (log inheritance).
	if err := parent.Abort(); err != nil {
		t.Fatal(err)
	}
	if sys.Directory().Exists(p1) || sys.Directory().Exists(p2) {
		t.Fatal("parent abort did not undo inherited child effects")
	}
}

func TestLockConflictBetweenTopLevel(t *testing.T) {
	sys := newSys(t)
	m := NewManager(sys)
	a, _ := sys.Insert("part", map[string]atom.Value{"no": atom.Int(1)})

	t1 := m.Begin()
	if err := t1.Do(func() error {
		return sys.Update(a, map[string]atom.Value{"no": atom.Int(2)})
	}); err != nil {
		t.Fatal(err)
	}

	// A sibling top-level transaction conflicts.
	t2 := m.Begin()
	err := t2.Do(func() error {
		return sys.Update(a, map[string]atom.Value{"no": atom.Int(3)})
	})
	if !errors.Is(err, ErrLockConflict) {
		t.Fatalf("conflicting write = %v, want ErrLockConflict", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}

	// Autocommit writes also respect the lock.
	if err := sys.Update(a, map[string]atom.Value{"no": atom.Int(4)}); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("autocommit bypassed lock: %v", err)
	}

	// After commit the atom is free again.
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Update(a, map[string]atom.Value{"no": atom.Int(5)}); err != nil {
		t.Fatalf("write after commit: %v", err)
	}
	at, _ := sys.Get(a, nil)
	if v, _ := at.Value("no"); v.I != 5 {
		t.Fatalf("no = %d", v.I)
	}
}

func TestChildMayUseParentLocks(t *testing.T) {
	sys := newSys(t)
	m := NewManager(sys)
	a, _ := sys.Insert("part", map[string]atom.Value{"no": atom.Int(1)})

	parent := m.Begin()
	if err := parent.Do(func() error {
		return sys.Update(a, map[string]atom.Value{"no": atom.Int(2)})
	}); err != nil {
		t.Fatal(err)
	}
	child, err := parent.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Moss: the child may acquire a lock its ancestor holds.
	if err := child.Do(func() error {
		return sys.Update(a, map[string]atom.Value{"no": atom.Int(3)})
	}); err != nil {
		t.Fatalf("child blocked by ancestor lock: %v", err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	at, _ := sys.Get(a, nil)
	if v, _ := at.Value("no"); v.I != 3 {
		t.Fatalf("no = %d", v.I)
	}
}

func TestLifecycleErrors(t *testing.T) {
	sys := newSys(t)
	m := NewManager(sys)

	tx := m.Begin()
	child, err := tx.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Parent cannot finish with active children.
	if err := tx.Commit(); !errors.Is(err, ErrChildActive) {
		t.Fatalf("commit with child = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrChildActive) {
		t.Fatalf("abort with child = %v", err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Double finish.
	if err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Fatalf("double commit = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrDone) {
		t.Fatalf("abort after commit = %v", err)
	}
	// Do on a finished transaction.
	if err := tx.Do(func() error { return nil }); !errors.Is(err, ErrDone) {
		t.Fatalf("Do after commit = %v", err)
	}
	// Begin on a finished transaction.
	if _, err := tx.Begin(); !errors.Is(err, ErrDone) {
		t.Fatalf("Begin after commit = %v", err)
	}
}

func TestAbortUndoesAllEntriesDespiteFailures(t *testing.T) {
	sys := newSys(t)
	m := NewManager(sys)

	base, err := sys.Insert("part", map[string]atom.Value{"no": atom.Int(1)})
	if err != nil {
		t.Fatal(err)
	}

	tx := m.Begin()
	var inserted addr.LogicalAddr
	err = tx.Do(func() error {
		var err error
		if inserted, err = sys.Insert("part", map[string]atom.Value{"no": atom.Int(2)}); err != nil {
			return err
		}
		return sys.Update(base, map[string]atom.Value{"no": atom.Int(99)})
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}

	// Inject an undoable-looking entry whose undo must fail: an update of an
	// address that does not exist. Undo runs in reverse order, so this entry
	// fails first — the real entries after it must still be undone.
	bogus := addr.New(base.Type(), 1<<40)
	tx.log = append(tx.log, logEntry{kind: opUpdate, a: bogus, typeName: "part"})

	if err := tx.Abort(); err == nil {
		t.Fatal("Abort succeeded despite an impossible undo entry")
	}

	// The failing entry did not stop the rest of the rollback.
	if sys.Directory().Exists(inserted) {
		t.Fatal("insert after the failing entry was not undone")
	}
	at, err := sys.Get(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := at.Value("no"); v.I != 1 {
		t.Fatalf("update after the failing entry not undone: no = %d", v.I)
	}

	// The manager is poisoned: all further work is refused.
	dead := m.Begin()
	if err := dead.Do(func() error { return nil }); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Do on stillborn tx = %v, want ErrPoisoned", err)
	}
	if err := dead.Commit(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Commit on stillborn tx = %v, want ErrPoisoned", err)
	}
	if err := dead.Abort(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Abort on stillborn tx = %v, want ErrPoisoned", err)
	}
	if _, err := dead.Begin(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("nested Begin on stillborn tx = %v, want ErrPoisoned", err)
	}
	// Autocommit writes are blocked too.
	if _, err := sys.Insert("part", map[string]atom.Value{"no": atom.Int(3)}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("autocommit insert on poisoned manager = %v, want ErrPoisoned", err)
	}
}
