package wire

import (
	"testing"
)

// TestStatsOp exercises the stats op end to end: the decoded-atom cache is
// visible over the wire, and a repeated checkout shows up as cache hits.
func TestStatsOp(t *testing.T) {
	_, srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.AtomCacheBudget <= 0 {
		t.Fatalf("atom cache budget = %d, want enabled by default", st.AtomCacheBudget)
	}

	const q = `SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2`
	for i := 0; i < 2; i++ {
		if _, err := c.Checkout(q); err != nil {
			t.Fatalf("checkout %d: %v", i, err)
		}
	}
	st2, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st2.AtomCacheHits <= st.AtomCacheHits {
		t.Fatalf("repeated checkout produced no atom cache hits (%d -> %d)", st.AtomCacheHits, st2.AtomCacheHits)
	}
	if st2.AtomCacheAtoms == 0 {
		t.Fatalf("no atoms cached after checkout: %+v", st2)
	}
}
