package wire

import (
	"strings"
	"testing"

	"prima"
	"prima/internal/workload/brepgen"
)

func startServer(t testing.TB) (*prima.DB, *Server) {
	t.Helper()
	db, err := prima.Open(prima.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := brepgen.BuildScene(db.Engine(), 3); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(db, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, srv
}

func TestPingExec(t *testing.T) {
	_, srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	resp, err := c.Exec(`INSERT INTO solid (solid_no, description) VALUES (99, 'remote')`)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if len(resp.Inserted) != 1 {
		t.Fatalf("Inserted = %v", resp.Inserted)
	}
	// Errors surface.
	if _, err := c.Exec(`SELECT ALL FROM ghost`); err == nil {
		t.Fatal("remote error not surfaced")
	}
}

func TestCheckoutObjectBufferCheckin(t *testing.T) {
	db, srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mols, err := c.Checkout(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2`)
	if err != nil {
		t.Fatalf("Checkout: %v", err)
	}
	if len(mols) != 1 || len(mols[0].Atoms) != brepgen.CubeAtoms {
		t.Fatalf("checkout = %d molecules / %d atoms", len(mols), len(mols[0].Atoms))
	}
	after := c.RoundTrips()
	if after != 1 {
		t.Fatalf("checkout cost %d round trips, want 1 (set-oriented)", after)
	}

	// All atoms are locally available without communication.
	for _, a := range mols[0].Atoms {
		if _, ok := c.Local(a.Addr); !ok {
			t.Fatalf("atom %d not in object buffer", a.Addr)
		}
	}
	if c.RoundTrips() != after {
		t.Fatal("local reads caused round trips")
	}

	// Stage a local change on a face atom and check it in.
	var face AtomJSON
	for _, a := range mols[0].Atoms {
		if a.Type == "face" {
			face = a
			break
		}
	}
	if err := c.StageModify("face", face.Addr, "square_dim", "123.5"); err != nil {
		t.Fatalf("StageModify: %v", err)
	}
	if len(c.Pending()) != 1 {
		t.Fatalf("pending = %v", c.Pending())
	}
	resp, err := c.Checkin()
	if err != nil {
		t.Fatalf("Checkin: %v", err)
	}
	if resp.Count != 1 {
		t.Fatalf("checkin modified %d atoms", resp.Count)
	}

	// The server sees the change.
	res, err := db.ExecOne(`SELECT ALL FROM face WHERE square_dim = 123.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Molecules) != 1 {
		t.Fatalf("server-side visibility: %d", len(res.Molecules))
	}

	// Checkin with nothing staged is a no-op without a round trip error.
	if _, err := c.Checkin(); err != nil {
		t.Fatalf("empty Checkin: %v", err)
	}
}

func TestSetOrientedVsAtomAtATime(t *testing.T) {
	_, srv := startServer(t)

	// Set-oriented: one round trip for the whole molecule.
	c1, _ := Dial(srv.Addr())
	defer c1.Close()
	mols, err := c1.Checkout(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1`)
	if err != nil {
		t.Fatal(err)
	}
	setTrips := c1.RoundTrips()

	// Atom-at-a-time: one round trip per atom.
	c2, _ := Dial(srv.Addr())
	defer c2.Close()
	for _, a := range mols[0].Atoms {
		if _, err := c2.FetchAtom(a.Addr); err != nil {
			t.Fatalf("FetchAtom: %v", err)
		}
	}
	chattyTrips := c2.RoundTrips()

	if setTrips != 1 || chattyTrips != brepgen.CubeAtoms {
		t.Fatalf("round trips: set=%d chatty=%d", setTrips, chattyTrips)
	}
	if chattyTrips < 20*setTrips {
		t.Fatalf("expected ≫ communication reduction, got %dx", chattyTrips/setTrips)
	}
}

func TestRenderValueLiterals(t *testing.T) {
	_, srv := startServer(t)
	c, _ := Dial(srv.Addr())
	defer c.Close()
	mols, err := c.Checkout(`SELECT ALL FROM solid WHERE solid_no = 1`)
	if err != nil {
		t.Fatal(err)
	}
	v := mols[0].Atoms[0].Values
	if v["solid_no"] != "1" {
		t.Fatalf("solid_no literal = %q", v["solid_no"])
	}
	if !strings.HasPrefix(v["description"], "'") {
		t.Fatalf("description literal = %q", v["description"])
	}
	if !strings.HasPrefix(v["brep"], "@") {
		t.Fatalf("brep ref literal = %q", v["brep"])
	}
}
