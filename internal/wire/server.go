package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prima"
	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/core"
	"prima/internal/obs"
)

// Resilience defaults; a ServerConfig field of 0 selects these, a negative
// value disables the knob entirely.
const (
	// DefaultIdleTimeout bounds how long a connection may sit between
	// requests. Design sessions are long-lived (§4: a workstation keeps
	// molecules checked out for hours), so the default is generous — it
	// exists to reclaim conns whose peer is gone, not to cut slow thinkers.
	DefaultIdleTimeout = 10 * time.Minute
	// DefaultReadTimeout bounds reading a request body once its frame
	// header arrived: a peer that starts a frame must finish it promptly.
	DefaultReadTimeout = 30 * time.Second
	// DefaultWriteTimeout bounds each response/stream-frame write; it is
	// what unpins cursors and snapshots when a streaming client dies.
	DefaultWriteTimeout = 30 * time.Second
	// DefaultMaxConns caps concurrently open connections.
	DefaultMaxConns = 1024
	// DefaultMaxInFlight caps concurrently executing requests.
	DefaultMaxInFlight = 64
	// DefaultQueueWait bounds how long an admitted connection's request
	// waits for an in-flight slot before being shed with a retryable error.
	DefaultQueueWait = time.Second
	// acceptRetryLimit bounds consecutive transient accept failures before
	// the accept loop gives up (a listener that fails this often is dead).
	acceptRetryLimit = 100
	// acceptBackoffMax caps the accept retry backoff.
	acceptBackoffMax = time.Second
)

// ServerConfig tunes the server's resilience behavior. The zero value
// selects the defaults above; negative values disable individual knobs
// (no timeout / no cap).
type ServerConfig struct {
	IdleTimeout  time.Duration // max silence between requests on a conn
	ReadTimeout  time.Duration // max time to finish a started request frame
	WriteTimeout time.Duration // max time per response/stream-frame write
	MaxConns     int           // concurrent connection cap
	MaxInFlight  int           // concurrent request cap
	QueueWait    time.Duration // max wait for an in-flight slot before shedding
}

func (c ServerConfig) withDefaults() ServerConfig {
	def := func(v *time.Duration, d time.Duration) {
		if *v == 0 {
			*v = d
		} else if *v < 0 {
			*v = 0
		}
	}
	def(&c.IdleTimeout, DefaultIdleTimeout)
	def(&c.ReadTimeout, DefaultReadTimeout)
	def(&c.WriteTimeout, DefaultWriteTimeout)
	if c.MaxConns == 0 {
		c.MaxConns = DefaultMaxConns
	} else if c.MaxConns < 0 {
		c.MaxConns = 0
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = DefaultMaxInFlight
	} else if c.MaxInFlight < 0 {
		c.MaxInFlight = 0
	}
	def(&c.QueueWait, DefaultQueueWait)
	return c
}

// srvConn is one accepted connection plus the state the drain protocol
// needs: a request is either being served (active) or the conn is idle
// between requests; a draining server closes idle conns immediately and
// lets active ones finish their current request.
type srvConn struct {
	net.Conn
	mu     sync.Mutex
	active bool
	doomed bool // close as soon as the conn is not serving a request
}

// beginRequest marks the conn active; it reports false when the conn was
// doomed while idle-reading, in which case the just-read request must be
// discarded unprocessed (the peer sees a closed conn, exactly as if the
// request had never arrived).
func (sc *srvConn) beginRequest() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.doomed {
		return false
	}
	sc.active = true
	return true
}

// endRequest marks the conn idle again; it reports false when the conn was
// doomed mid-request and the handler must exit.
func (sc *srvConn) endRequest() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.active = false
	return !sc.doomed
}

// drainClose dooms the conn: closed now if idle, after the in-flight
// request otherwise.
func (sc *srvConn) drainClose() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.doomed = true
	if !sc.active {
		sc.Conn.Close()
	}
}

// Server exposes a PRIMA database over TCP.
type Server struct {
	db  *prima.DB
	ln  net.Listener
	cfg ServerConfig

	mu       sync.Mutex
	closed   bool
	draining bool
	conns    map[*srvConn]struct{}
	wg       sync.WaitGroup // one count per live handler

	inflight chan struct{} // in-flight request semaphore (nil = unlimited)

	// Wire health counters (see StatsJSON).
	connsTotal    atomic.Uint64
	connsRejected atomic.Uint64
	requests      atomic.Uint64
	shed          atomic.Uint64
	streamAborts  atomic.Uint64
	panics        atomic.Uint64
	acceptRetries atomic.Uint64

	// opNs times each op's server-side handling (admission through response
	// written), keyed by op code. Built once in ServeListener.
	opNs map[string]*obs.Histogram
}

// Serve starts serving on the given address ("" picks an ephemeral port)
// with the default resilience configuration.
func Serve(db *prima.DB, address string) (*Server, error) {
	return ServeConfig(db, address, ServerConfig{})
}

// ServeConfig starts serving with explicit resilience knobs.
func ServeConfig(db *prima.DB, address string, cfg ServerConfig) (*Server, error) {
	if address == "" {
		address = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", address)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	return ServeListener(db, ln, cfg), nil
}

// ServeListener serves on an established listener — the injection point for
// fault-wrapped listeners (FaultPlan.Listen) and custom transports. The
// server owns the listener and closes it on shutdown.
func ServeListener(db *prima.DB, ln net.Listener, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{db: db, ln: ln, cfg: cfg, conns: map[*srvConn]struct{}{}}
	if cfg.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInFlight)
	}
	reg := db.System().Obs()
	s.opNs = map[string]*obs.Histogram{
		OpPing:     reg.Histogram("wire_ping_ns"),
		OpExec:     reg.Histogram("wire_exec_ns"),
		OpCheckout: reg.Histogram("wire_checkout_ns"),
		OpGetAtom:  reg.Histogram("wire_getatom_ns"),
		OpStats:    reg.Histogram("wire_stats_ns"),
		OpSlow:     reg.Histogram("wire_slow_ns"),
	}
	// Mirror the wire health counters into the database's registry so one
	// snapshot covers the whole stack. Registration replaces any previous
	// server's mirrors (last server wins) — fine for the one-server-per-DB
	// deployment primad runs, and harmless in tests that re-serve a DB.
	reg.GaugeFunc("wire_conns_active", func() float64 { return float64(s.ActiveConns()) })
	reg.GaugeFunc("wire_inflight", func() float64 { return float64(s.InFlight()) })
	reg.CounterFunc("wire_conns_total", s.connsTotal.Load)
	reg.CounterFunc("wire_conns_rejected", s.connsRejected.Load)
	reg.CounterFunc("wire_requests", s.requests.Load)
	reg.CounterFunc("wire_shed", s.shed.Load)
	reg.CounterFunc("wire_stream_aborts", s.streamAborts.Load)
	reg.CounterFunc("wire_panics", s.panics.Load)
	reg.CounterFunc("wire_accept_retries", s.acceptRetries.Load)
	go s.acceptLoop()
	return s
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ActiveConns returns the number of currently open connections.
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// InFlight returns the number of requests being served right now.
func (s *Server) InFlight() int {
	if s.inflight == nil {
		return -1
	}
	return len(s.inflight)
}

// Close stops the server immediately: the listener and every connection are
// closed, in-flight requests fail their writes, and Close returns only
// after the last handler has exited — no handler touches the DB after
// Close returns.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sc := range conns {
		sc.Conn.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: it stops accepting, closes idle
// connections, lets every in-flight request finish (a checkout stream runs
// to completion), and returns once all handlers exited. If ctx expires
// first, the remaining connections are closed hard and ctx's error is
// returned; Shutdown still waits for the handlers before returning, so the
// DB can be closed safely afterwards either way.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	conns := make([]*srvConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, sc := range conns {
		sc.drainClose()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for sc := range s.conns {
			sc.Conn.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return err
}

// acceptLoop accepts connections until the listener closes. Transient
// accept errors (EMFILE, injected faults) are retried with exponential
// backoff instead of killing the loop; only acceptRetryLimit consecutive
// failures — or a closed listener — end it.
func (s *Server) acceptLoop() {
	backoff := 5 * time.Millisecond
	fails := 0
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.closed || s.draining
			s.mu.Unlock()
			if stopped || errors.Is(err, net.ErrClosed) {
				return
			}
			fails++
			if fails > acceptRetryLimit {
				log.Printf("wire: accept failed %d times, giving up: %v", fails, err)
				return
			}
			s.acceptRetries.Add(1)
			time.Sleep(backoff)
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		fails, backoff = 0, 5*time.Millisecond
		s.admit(conn)
	}
}

// admit applies the connection cap and registers the conn. A rejected conn
// gets a retryable error response so a well-behaved client backs off
// instead of reconnect-hammering.
func (s *Server) admit(conn net.Conn) {
	sc := &srvConn{Conn: conn}
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
		s.mu.Unlock()
		s.connsRejected.Add(1)
		go func() {
			s.writeMsg(sc, &Response{Retryable: true,
				Error: fmt.Sprintf("connection cap (%d) reached", s.cfg.MaxConns)})
			conn.Close()
		}()
		return
	}
	s.conns[sc] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	s.connsTotal.Add(1)
	go s.handle(sc)
}

// handle serves one connection. A panic anywhere in request handling is
// recovered here: the conn dies, the server does not.
func (s *Server) handle(sc *srvConn) {
	defer s.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			log.Printf("wire: handler panic: %v", r)
		}
		sc.Conn.Close()
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
	}()
	for {
		var req Request
		if err := s.readRequest(sc, &req); err != nil {
			return // peer gone, idle-timed out, or mid-frame stall
		}
		if !sc.beginRequest() {
			return // doomed while idle: discard unprocessed
		}
		if !s.serveRequest(sc, &req) {
			return
		}
		if !sc.endRequest() {
			return // doomed mid-request: served, now close
		}
	}
}

// readRequest reads one request under the deadline regime: waiting for the
// frame header spends the idle budget, reading the body the (much shorter)
// read budget.
func (s *Server) readRequest(sc *srvConn, req *Request) error {
	if err := s.setReadDeadline(sc, s.cfg.IdleTimeout); err != nil {
		return err
	}
	n, err := readHeader(sc)
	if err != nil {
		return err
	}
	if err := s.setReadDeadline(sc, s.cfg.ReadTimeout); err != nil {
		return err
	}
	return readBody(sc, n, req)
}

func (s *Server) setReadDeadline(sc *srvConn, d time.Duration) error {
	if d <= 0 {
		return sc.Conn.SetReadDeadline(time.Time{})
	}
	return sc.Conn.SetReadDeadline(time.Now().Add(d))
}

// writeMsg writes one message under the write deadline.
func (s *Server) writeMsg(sc *srvConn, v interface{}) error {
	if s.cfg.WriteTimeout > 0 {
		if err := sc.Conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
			return err
		}
	}
	return WriteMsg(sc.Conn, v)
}

// serveRequest admits one request through the in-flight semaphore and
// serves it; it reports false when the connection is no longer usable.
// Ping, stats and slow bypass admission control: they are cheap and they are
// how an operator observes an overloaded server.
//
// Non-diagnostic requests run under a request trace when the DB's tracer is
// armed (sampling or a slow-query threshold): the trace ID rides back on the
// response so a client can correlate its worst latencies with the server's
// retained span trees. The trace finishes after the response (or the last
// stream frame) is written, so slow-query retention sees the full
// server-side duration including the write.
func (s *Server) serveRequest(sc *srvConn, req *Request) bool {
	diagnostic := req.Op == OpPing || req.Op == OpStats || req.Op == OpSlow
	if !diagnostic {
		if !s.acquireSlot() {
			s.shed.Add(1)
			return s.writeMsg(sc, &Response{Retryable: true,
				Error: fmt.Sprintf("shed: %d requests in flight, queue wait exceeded", len(s.inflight))}) == nil
		}
		defer func() { <-s.inflight }()
	}
	s.requests.Add(1)
	opStart := time.Now()
	var tr *obs.Trace
	if !diagnostic {
		tr = s.db.Tracer().Begin("wire:" + req.Op)
		tr.SetAttr("op", req.Op)
		if req.MQL != "" {
			tr.SetAttr("mql", req.MQL)
		}
	}
	var ok bool
	if req.Op == OpCheckout {
		ok = s.streamCheckout(sc, req, tr) == nil
	} else {
		resp := s.safeDispatch(req, tr)
		if resp.TraceID == "" {
			resp.TraceID = tr.ID()
		}
		ok = s.writeMsg(sc, resp) == nil
	}
	tr.Finish()
	s.opNs[req.Op].ObserveSince(opStart)
	return ok
}

// acquireSlot takes an in-flight slot, waiting at most QueueWait.
func (s *Server) acquireSlot() bool {
	if s.inflight == nil {
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
	}
	if s.cfg.QueueWait <= 0 {
		return false
	}
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.inflight <- struct{}{}:
		return true
	case <-t.C:
		return false
	}
}

// safeDispatch runs dispatch with panic recovery: a request that blows up
// answers with an error instead of tearing the connection (or server) down.
// Nothing has been written when dispatch panics, so the conn stays
// synchronized.
func (s *Server) safeDispatch(req *Request, tr *obs.Trace) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			log.Printf("wire: %s panic: %v", req.Op, r)
			resp = &Response{Error: fmt.Sprintf("internal error serving %s", req.Op)}
		}
	}()
	return s.dispatch(req, tr)
}

// streamChunk caps the number of molecules per checkout stream frame;
// frameBudget caps its payload bytes (molecule sizes are unbounded — CAD
// molecules can be huge — so chunking by count alone could overflow the
// wire's frame limit).
const (
	streamChunk = 32
	frameBudget = maxFrame / 2
)

// rawFrame is the server-side stream frame: molecules are pre-encoded
// exactly once and embedded verbatim, so size-aware packing never
// re-marshals payload. It is wire-identical to Response.
type rawFrame struct {
	OK        bool              `json:"ok"`
	Count     int               `json:"count,omitempty"`
	Molecules []json.RawMessage `json:"molecules,omitempty"`
	Epoch     uint64            `json:"epoch,omitempty"`
	More      bool              `json:"more,omitempty"`
	TraceID   string            `json:"traceId,omitempty"`
}

// streamCheckout runs a SELECT through a molecule cursor and streams the
// qualified molecules to the client in chunks, so the server never holds the
// whole result set: the cursor produces while earlier chunks are already on
// the wire. Frames close at streamChunk molecules or frameBudget bytes,
// whichever comes first. A single molecule too large for any frame aborts
// the stream with a terminal error frame (nothing follows it, so the
// connection stays synchronized). The returned error is non-nil only when
// the connection itself failed — including a slow or dead client tripping
// the write deadline, which is what guarantees the deferred cursor Close
// (and with it the MVCC snapshot release) instead of pinning versions for
// as long as the peer stays wedged. A panic mid-assembly propagates to
// handle's recover after the deferred Close runs; the conn is torn down
// since frames may already be on the wire.
func (s *Server) streamCheckout(sc *srvConn, req *Request, tr *obs.Trace) (err error) {
	cur, err := s.db.QueryTraced(req.MQL, tr)
	if err != nil {
		return s.writeMsg(sc, &Response{Error: err.Error()})
	}
	defer cur.Close()
	defer func() {
		if err != nil {
			s.streamAborts.Add(1)
		}
	}()
	count := 0
	var pending []json.RawMessage
	var pendingBytes int
	epoch := cur.Epoch()
	flush := func(more bool) error {
		f := &rawFrame{OK: true, Molecules: pending, Epoch: epoch, More: more}
		if !more {
			f.Count = count
			// The final frame names the trace: by now the whole result set
			// has been assembled and (almost entirely) written.
			f.TraceID = tr.ID()
		}
		err := s.writeMsg(sc, f)
		pending, pendingBytes = nil, 0
		return err
	}
	for {
		m, err := cur.Next()
		if err != nil {
			return s.writeMsg(sc, &Response{Error: err.Error()})
		}
		if m == nil {
			break
		}
		raw, err := json.Marshal(moleculeToJSON(m))
		if err != nil {
			return s.writeMsg(sc, &Response{Error: err.Error()})
		}
		if len(raw) > maxFrame-1024 {
			return s.writeMsg(sc, &Response{Error: fmt.Sprintf("%v: molecule %v encodes to %d bytes", ErrFrameTooBig, m.Root.Addr(), len(raw))})
		}
		if len(pending) > 0 && (len(pending) >= streamChunk || pendingBytes+len(raw) > frameBudget) {
			if err := flush(true); err != nil {
				return err
			}
		}
		pending = append(pending, raw)
		pendingBytes += len(raw)
		count++
	}
	return flush(false)
}

// statsFromSnapshot projects the flat StatsJSON view out of one registry
// snapshot — the single source both the legacy stats fields and the full
// metrics payload now share (wire fields are overridden per-server by the
// stats dispatch; WALCheckpointErr is not a numeric metric and is filled
// from the system directly).
func statsFromSnapshot(ms *obs.MetricsSnapshot) *StatsJSON {
	return &StatsJSON{
		AtomCacheHits:          ms.Counter("atom_cache_hits"),
		AtomCacheMisses:        ms.Counter("atom_cache_misses"),
		AtomCacheInvalidations: ms.Counter("atom_cache_invalidations"),
		AtomCacheEvictions:     ms.Counter("atom_cache_evictions"),
		AtomCacheAtoms:         int(ms.Gauge("atom_cache_atoms")),
		AtomCacheBudget:        int(ms.Gauge("atom_cache_budget")),
		BufferHits:             int64(ms.Counter("buffer_hits")),
		BufferMisses:           int64(ms.Counter("buffer_misses")),
		BufferEvictions:        int64(ms.Counter("buffer_evictions")),
		PlanCacheHits:          ms.Counter("plan_cache_hits"),
		PlanCacheMisses:        ms.Counter("plan_cache_misses"),
		PlanCacheSize:          int(ms.Gauge("plan_cache_size")),
		WALEnabled:             ms.Gauge("wal_enabled") != 0,
		WALAppends:             ms.Counter("wal_appends"),
		WALBytes:               ms.Counter("wal_bytes"),
		WALSyncs:               ms.Counter("wal_syncs"),
		WALCommits:             ms.Counter("wal_commits"),
		WALBatches:             ms.Counter("wal_batches"),
		WALCheckpoints:         ms.Counter("wal_checkpoints"),
		WALRecoveries:          ms.Counter("wal_recoveries"),
	}
}

// testHookDispatch, when non-nil, observes every dispatched request before
// execution; resilience tests use it to provoke handler panics.
var testHookDispatch func(*Request)

func (s *Server) dispatch(req *Request, tr *obs.Trace) *Response {
	if testHookDispatch != nil {
		testHookDispatch(req)
	}
	switch req.Op {
	case OpPing:
		return &Response{OK: true, Message: "pong"}
	case OpSlow:
		traces := s.db.Tracer().Slow()
		if req.N > 0 && len(traces) > req.N {
			traces = traces[:req.N]
		}
		return &Response{OK: true, Traces: traces, Count: len(traces)}
	case OpExec:
		results, err := s.db.ExecTraced(req.MQL, tr)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		resp := &Response{OK: true}
		for _, r := range results {
			resp.Count += r.Count
			for _, a := range r.Inserted {
				resp.Inserted = append(resp.Inserted, uint64(a))
			}
			resp.Molecules = append(resp.Molecules, moleculesToJSON(r.Molecules)...)
			if r.Message != "" {
				resp.Message = r.Message
			}
		}
		return resp
	case OpGetAtom:
		at, err := s.db.System().Get(addr.LogicalAddr(req.Addr), nil)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		aj := atomToJSON(at)
		return &Response{OK: true, Atom: &aj}
	case OpStats:
		ms := s.db.Metrics()
		sj := statsFromSnapshot(ms)
		// The wire fields come from this server's own counters, not the
		// registry mirrors — several servers can share one DB in tests, and
		// the stats response must describe the server that answered it.
		sj.WireConnsActive = s.ActiveConns()
		sj.WireConnsTotal = s.connsTotal.Load()
		sj.WireConnsRejected = s.connsRejected.Load()
		sj.WireInFlight = len(s.inflight)
		sj.WireRequests = s.requests.Load()
		sj.WireShed = s.shed.Load()
		sj.WireStreamAborts = s.streamAborts.Load()
		sj.WirePanics = s.panics.Load()
		sj.WireAcceptRetries = s.acceptRetries.Load()
		if cerr := s.db.System().WALCheckpointErr(); cerr != nil {
			sj.WALCheckpointErr = cerr.Error()
		}
		return &Response{OK: true, Message: s.db.Stats(), Stats: sj, Metrics: ms}
	default:
		return &Response{Error: "unknown op " + req.Op}
	}
}

func moleculesToJSON(mols []*core.Molecule) []MoleculeJSON {
	out := make([]MoleculeJSON, 0, len(mols))
	for _, m := range mols {
		out = append(out, moleculeToJSON(m))
	}
	return out
}

func moleculeToJSON(m *core.Molecule) MoleculeJSON {
	mj := MoleculeJSON{Root: uint64(m.Root.Addr())}
	for _, tn := range m.Type.AtomTypes() {
		for _, ma := range m.AtomsOf(tn) {
			if ma.Hidden {
				continue
			}
			mj.Atoms = append(mj.Atoms, atomToJSON(ma.Atom))
		}
	}
	return mj
}

func atomToJSON(at *access.Atom) AtomJSON {
	aj := AtomJSON{Addr: uint64(at.Addr), Type: at.Type.Name, Values: map[string]string{}}
	for i, a := range at.Type.Attrs {
		v := at.Values[i]
		if v.IsNull() {
			continue
		}
		aj.Values[a.Name] = renderValue(v)
	}
	return aj
}

// renderValue renders a value in MQL literal syntax (so clients can feed it
// back through checkin statements).
func renderValue(v atom.Value) string {
	switch v.K {
	case atom.KindInt:
		return strconv.FormatInt(v.I, 10)
	case atom.KindReal:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case atom.KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case atom.KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case atom.KindIdent, atom.KindRef:
		return fmt.Sprintf("@%d.%d", v.A.Type(), v.A.Seq())
	case atom.KindSet, atom.KindList, atom.KindRecord, atom.KindArray:
		parts := make([]string, len(v.E))
		for i, e := range v.E {
			parts[i] = renderValue(e)
		}
		open, close := "{", "}"
		switch v.K {
		case atom.KindList, atom.KindArray:
			open, close = "[", "]"
		case atom.KindRecord:
			open, close = "(", ")"
		}
		return open + strings.Join(parts, ", ") + close
	default:
		return "NULL"
	}
}
