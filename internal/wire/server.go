package wire

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"

	"prima"
	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/core"
)

// Server exposes a PRIMA database over TCP.
type Server struct {
	db *prima.DB
	ln net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

// Serve starts serving on the given address ("" picks an ephemeral port).
func Serve(db *prima.DB, address string) (*Server, error) {
	if address == "" {
		address = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", address)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	s := &Server{db: db, ln: ln, conns: map[net.Conn]bool{}}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return s.ln.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				log.Printf("wire: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var req Request
		if err := ReadMsg(conn, &req); err != nil {
			return // client went away
		}
		if req.Op == OpCheckout {
			if err := s.streamCheckout(conn, &req); err != nil {
				return
			}
			continue
		}
		resp := s.dispatch(&req)
		if err := WriteMsg(conn, resp); err != nil {
			return
		}
	}
}

// streamChunk caps the number of molecules per checkout stream frame;
// frameBudget caps its payload bytes (molecule sizes are unbounded — CAD
// molecules can be huge — so chunking by count alone could overflow the
// wire's frame limit).
const (
	streamChunk = 32
	frameBudget = maxFrame / 2
)

// rawFrame is the server-side stream frame: molecules are pre-encoded
// exactly once and embedded verbatim, so size-aware packing never
// re-marshals payload. It is wire-identical to Response.
type rawFrame struct {
	OK        bool              `json:"ok"`
	Count     int               `json:"count,omitempty"`
	Molecules []json.RawMessage `json:"molecules,omitempty"`
	Epoch     uint64            `json:"epoch,omitempty"`
	More      bool              `json:"more,omitempty"`
}

// streamCheckout runs a SELECT through a molecule cursor and streams the
// qualified molecules to the client in chunks, so the server never holds the
// whole result set: the cursor produces while earlier chunks are already on
// the wire. Frames close at streamChunk molecules or frameBudget bytes,
// whichever comes first. A single molecule too large for any frame aborts
// the stream with a terminal error frame (nothing follows it, so the
// connection stays synchronized). The returned error is non-nil only when
// the connection itself failed.
func (s *Server) streamCheckout(conn net.Conn, req *Request) error {
	cur, err := s.db.Query(req.MQL)
	if err != nil {
		return WriteMsg(conn, &Response{Error: err.Error()})
	}
	defer cur.Close()
	count := 0
	var pending []json.RawMessage
	var pendingBytes int
	epoch := cur.Epoch()
	flush := func(more bool) error {
		f := &rawFrame{OK: true, Molecules: pending, Epoch: epoch, More: more}
		if !more {
			f.Count = count
		}
		err := WriteMsg(conn, f)
		pending, pendingBytes = nil, 0
		return err
	}
	for {
		m, err := cur.Next()
		if err != nil {
			return WriteMsg(conn, &Response{Error: err.Error()})
		}
		if m == nil {
			break
		}
		raw, err := json.Marshal(moleculeToJSON(m))
		if err != nil {
			return WriteMsg(conn, &Response{Error: err.Error()})
		}
		if len(raw) > maxFrame-1024 {
			return WriteMsg(conn, &Response{Error: fmt.Sprintf("%v: molecule %v encodes to %d bytes", ErrFrameTooBig, m.Root.Addr(), len(raw))})
		}
		if len(pending) > 0 && (len(pending) >= streamChunk || pendingBytes+len(raw) > frameBudget) {
			if err := flush(true); err != nil {
				return err
			}
		}
		pending = append(pending, raw)
		pendingBytes += len(raw)
		count++
	}
	return flush(false)
}

func (s *Server) dispatch(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{OK: true, Message: "pong"}
	case OpExec:
		results, err := s.db.Exec(req.MQL)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		resp := &Response{OK: true}
		for _, r := range results {
			resp.Count += r.Count
			for _, a := range r.Inserted {
				resp.Inserted = append(resp.Inserted, uint64(a))
			}
			resp.Molecules = append(resp.Molecules, moleculesToJSON(r.Molecules)...)
			if r.Message != "" {
				resp.Message = r.Message
			}
		}
		return resp
	case OpGetAtom:
		at, err := s.db.System().Get(addr.LogicalAddr(req.Addr), nil)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		aj := atomToJSON(at)
		return &Response{OK: true, Atom: &aj}
	case OpStats:
		ac := s.db.System().AtomCacheStats()
		bs := s.db.System().Pool().Stats()
		ph, pm, ps := s.db.Engine().PlanCacheStats()
		sj := &StatsJSON{
			AtomCacheHits:          ac.Hits,
			AtomCacheMisses:        ac.Misses,
			AtomCacheInvalidations: ac.Invalidations,
			AtomCacheEvictions:     ac.Evictions,
			AtomCacheAtoms:         ac.Atoms,
			AtomCacheBudget:        ac.Budget,
			BufferHits:             bs.Hits,
			BufferMisses:           bs.Misses,
			BufferEvictions:        bs.Evictions,
			PlanCacheHits:          ph,
			PlanCacheMisses:        pm,
			PlanCacheSize:          ps,
		}
		if ws, ok := s.db.System().WALStats(); ok {
			sj.WALEnabled = true
			sj.WALAppends = ws.Appends
			sj.WALBytes = ws.Bytes
			sj.WALSyncs = ws.Syncs
			sj.WALCommits = ws.Commits
			sj.WALBatches = ws.Batches
			sj.WALCheckpoints = ws.Checkpoints
			sj.WALRecoveries = ws.Recoveries
			if cerr := s.db.System().WALCheckpointErr(); cerr != nil {
				sj.WALCheckpointErr = cerr.Error()
			}
		}
		return &Response{OK: true, Message: s.db.Stats(), Stats: sj}
	default:
		return &Response{Error: "unknown op " + req.Op}
	}
}

func moleculesToJSON(mols []*core.Molecule) []MoleculeJSON {
	out := make([]MoleculeJSON, 0, len(mols))
	for _, m := range mols {
		out = append(out, moleculeToJSON(m))
	}
	return out
}

func moleculeToJSON(m *core.Molecule) MoleculeJSON {
	mj := MoleculeJSON{Root: uint64(m.Root.Addr())}
	for _, tn := range m.Type.AtomTypes() {
		for _, ma := range m.AtomsOf(tn) {
			if ma.Hidden {
				continue
			}
			mj.Atoms = append(mj.Atoms, atomToJSON(ma.Atom))
		}
	}
	return mj
}

func atomToJSON(at *access.Atom) AtomJSON {
	aj := AtomJSON{Addr: uint64(at.Addr), Type: at.Type.Name, Values: map[string]string{}}
	for i, a := range at.Type.Attrs {
		v := at.Values[i]
		if v.IsNull() {
			continue
		}
		aj.Values[a.Name] = renderValue(v)
	}
	return aj
}

// renderValue renders a value in MQL literal syntax (so clients can feed it
// back through checkin statements).
func renderValue(v atom.Value) string {
	switch v.K {
	case atom.KindInt:
		return strconv.FormatInt(v.I, 10)
	case atom.KindReal:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case atom.KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case atom.KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case atom.KindIdent, atom.KindRef:
		return fmt.Sprintf("@%d.%d", v.A.Type(), v.A.Seq())
	case atom.KindSet, atom.KindList, atom.KindRecord, atom.KindArray:
		parts := make([]string, len(v.E))
		for i, e := range v.E {
			parts[i] = renderValue(e)
		}
		open, close := "{", "}"
		switch v.K {
		case atom.KindList, atom.KindArray:
			open, close = "[", "]"
		case atom.KindRecord:
			open, close = "(", ")"
		}
		return open + strings.Join(parts, ", ") + close
	default:
		return "NULL"
	}
}
