package wire

import (
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"

	"prima"
	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/core"
)

// Server exposes a PRIMA database over TCP.
type Server struct {
	db *prima.DB
	ln net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

// Serve starts serving on the given address ("" picks an ephemeral port).
func Serve(db *prima.DB, address string) (*Server, error) {
	if address == "" {
		address = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", address)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	s := &Server{db: db, ln: ln, conns: map[net.Conn]bool{}}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return s.ln.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				log.Printf("wire: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var req Request
		if err := ReadMsg(conn, &req); err != nil {
			return // client went away
		}
		resp := s.dispatch(&req)
		if err := WriteMsg(conn, resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{OK: true, Message: "pong"}
	case OpExec:
		results, err := s.db.Exec(req.MQL)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		resp := &Response{OK: true}
		for _, r := range results {
			resp.Count += r.Count
			for _, a := range r.Inserted {
				resp.Inserted = append(resp.Inserted, uint64(a))
			}
			resp.Molecules = append(resp.Molecules, moleculesToJSON(r.Molecules)...)
			if r.Message != "" {
				resp.Message = r.Message
			}
		}
		return resp
	case OpCheckout:
		res, err := s.db.ExecOne(req.MQL)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		if res.Kind != "molecules" {
			return &Response{Error: "checkout requires a SELECT"}
		}
		return &Response{OK: true, Count: len(res.Molecules), Molecules: moleculesToJSON(res.Molecules)}
	case OpGetAtom:
		at, err := s.db.System().Get(addr.LogicalAddr(req.Addr), nil)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		aj := atomToJSON(at)
		return &Response{OK: true, Atom: &aj}
	default:
		return &Response{Error: "unknown op " + req.Op}
	}
}

func moleculesToJSON(mols []*core.Molecule) []MoleculeJSON {
	out := make([]MoleculeJSON, 0, len(mols))
	for _, m := range mols {
		mj := MoleculeJSON{Root: uint64(m.Root.Addr())}
		for _, tn := range m.Type.AtomTypes() {
			for _, ma := range m.AtomsOf(tn) {
				if ma.Hidden {
					continue
				}
				mj.Atoms = append(mj.Atoms, atomToJSON(ma.Atom))
			}
		}
		out = append(out, mj)
	}
	return out
}

func atomToJSON(at *access.Atom) AtomJSON {
	aj := AtomJSON{Addr: uint64(at.Addr), Type: at.Type.Name, Values: map[string]string{}}
	for i, a := range at.Type.Attrs {
		v := at.Values[i]
		if v.IsNull() {
			continue
		}
		aj.Values[a.Name] = renderValue(v)
	}
	return aj
}

// renderValue renders a value in MQL literal syntax (so clients can feed it
// back through checkin statements).
func renderValue(v atom.Value) string {
	switch v.K {
	case atom.KindInt:
		return strconv.FormatInt(v.I, 10)
	case atom.KindReal:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case atom.KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case atom.KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case atom.KindIdent, atom.KindRef:
		return fmt.Sprintf("@%d.%d", v.A.Type(), v.A.Seq())
	case atom.KindSet, atom.KindList, atom.KindRecord, atom.KindArray:
		parts := make([]string, len(v.E))
		for i, e := range v.E {
			parts[i] = renderValue(e)
		}
		open, close := "{", "}"
		switch v.K {
		case atom.KindList, atom.KindArray:
			open, close = "[", "]"
		case atom.KindRecord:
			open, close = "(", ")"
		}
		return open + strings.Join(parts, ", ") + close
	default:
		return "NULL"
	}
}
