package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"prima"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/workload/brepgen"
)

// blobServer builds a database whose SELECT ALL FROM blob result is far
// larger than kernel socket buffers, so a checkout stream to a client that
// stops reading reliably blocks the server's write.
func blobServer(t *testing.T, atoms, payloadBytes int, cfg ServerConfig) (*prima.DB, *Server) {
	t.Helper()
	db, err := prima.Open(prima.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE ATOM_TYPE blob (id: IDENTIFIER, n: INTEGER, payload: CHAR_VAR)`); err != nil {
		t.Fatal(err)
	}
	wide := strings.Repeat("x", payloadBytes)
	for i := 0; i < atoms; i++ {
		if _, err := db.System().Insert("blob", map[string]atom.Value{
			"n": atom.Int(int64(i)), "payload": atom.Str(wide),
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := ServeConfig(db, "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, srv
}

// clampRecvBuffer pins the conn's receive buffer small and disables its
// autotuning (tcp_rmem can grow to tens of MB, silently swallowing a
// "too big to buffer" stream and making blocked-writer tests racy).
func clampRecvBuffer(t *testing.T, conn net.Conn) {
	t.Helper()
	if err := conn.(*net.TCPConn).SetReadBuffer(64 << 10); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMidStreamClientDeathReleasesResources kills a client in the middle of
// a large checkout stream and asserts the server releases everything the
// stream pinned: the cursor closes, the MVCC snapshot is reclaimed and no
// buffer-pool pins leak. Before the write-deadline/abort handling, the
// server goroutine stayed wedged in the write and the cursor pinned its
// snapshot epoch indefinitely.
func TestMidStreamClientDeathReleasesResources(t *testing.T) {
	// The write deadline is generous: a dead peer fails the blocked write
	// via connection reset, not the deadline (the stalled-peer variant
	// below is what exercises the deadline).
	db, srv := blobServer(t, 64, 256<<10, ServerConfig{WriteTimeout: 10 * time.Second})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	clampRecvBuffer(t, conn)
	if err := WriteMsg(conn, &Request{Op: OpCheckout, MQL: `SELECT ALL FROM blob`}); err != nil {
		t.Fatal(err)
	}
	// The ~8 MiB first frame cannot fit the clamped buffers, so the server
	// is demonstrably mid-stream, pinning its snapshot. Read one frame to
	// prove the stream is flowing, then die.
	waitFor(t, 5*time.Second, "stream to pin its snapshot", func() bool {
		return db.OpenSnapshots() > 0
	})
	var resp Response
	if err := ReadMsg(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.More {
		t.Fatalf("first frame: ok=%v more=%v", resp.OK, resp.More)
	}
	conn.Close()

	waitFor(t, 5*time.Second, "snapshot release after client death", func() bool {
		return db.OpenSnapshots() == 0
	})
	if pinned := db.System().Pool().Pinned(); pinned != 0 {
		t.Fatalf("buffer pool still holds %d pins after aborted stream", pinned)
	}

	// The abort is visible on the stats surface.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WireStreamAborts == 0 {
		t.Fatal("stream abort not counted")
	}
}

// TestStalledStreamClientTripsWriteDeadline is the wedged-not-dead variant:
// the client keeps the conn open but never reads, so only the write
// deadline can unpin the stream.
func TestStalledStreamClientTripsWriteDeadline(t *testing.T) {
	db, srv := blobServer(t, 64, 256<<10, ServerConfig{WriteTimeout: 300 * time.Millisecond})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMsg(conn, &Request{Op: OpCheckout, MQL: `SELECT ALL FROM blob`}); err != nil {
		t.Fatal(err)
	}
	// Never read. The 16 MiB stream cannot fit any socket buffer, so the
	// server blocks writing until its deadline fires.
	waitFor(t, 5*time.Second, "write deadline to abort the stalled stream", func() bool {
		return db.OpenSnapshots() == 0
	})
	if pinned := db.System().Pool().Pinned(); pinned != 0 {
		t.Fatalf("buffer pool still holds %d pins", pinned)
	}
}

// TestIdleTimeoutReclaimsSilentConns proves a conn that never speaks is
// closed at the idle deadline.
func TestIdleTimeoutReclaimsSilentConns(t *testing.T) {
	_, srv := startServerConfig(t, ServerConfig{IdleTimeout: 150 * time.Millisecond})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	var hdr [4]byte
	if _, err := conn.Read(hdr[:]); err == nil {
		t.Fatal("idle conn not closed")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("idle conn closed only after %v", elapsed)
	}
}

// TestReadDeadlineCutsStalledFrame proves a peer that starts a frame but
// never finishes it is cut off by the read deadline even though the idle
// budget is generous.
func TestReadDeadlineCutsStalledFrame(t *testing.T) {
	_, srv := startServerConfig(t, ServerConfig{
		IdleTimeout: time.Hour,
		ReadTimeout: 150 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame header promising 100 bytes that never arrive.
	if _, err := conn.Write([]byte{0, 0, 0, 100}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var b [1]byte
	if _, err := conn.Read(b[:]); err == nil {
		t.Fatal("stalled frame not cut off")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled frame cut only after %v (idle budget leaked into body read?)", elapsed)
	}
}

func startServerConfig(t testing.TB, cfg ServerConfig) (*prima.DB, *Server) {
	t.Helper()
	db, err := prima.Open(prima.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := brepgen.BuildScene(db.Engine(), 3); err != nil {
		t.Fatal(err)
	}
	srv, err := ServeConfig(db, "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, srv
}

// TestAdmissionControlSheds fills the single in-flight slot with a wedged
// stream, then asserts further work is shed with a retryable error while
// diagnostics (ping, stats) still get through — and that the slot's release
// makes the server serve again.
func TestAdmissionControlSheds(t *testing.T) {
	db, srv := blobServer(t, 64, 256<<10, ServerConfig{
		MaxInFlight:  1,
		QueueWait:    -1, // shed immediately
		WriteTimeout: -1, // the wedged stream stays wedged until we kill it
	})
	if _, err := db.Exec(`CREATE ATOM_TYPE note (id: IDENTIFIER, n: INTEGER)`); err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot: checkout, never read.
	hog, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMsg(hog, &Request{Op: OpCheckout, MQL: `SELECT ALL FROM blob`}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "hog to occupy the in-flight slot", func() bool {
		return srv.InFlight() == 1
	})

	c, err := DialConfig(srv.Addr(), ClientConfig{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec(`INSERT INTO note (n) VALUES (1)`)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded server answered %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, ErrRemote) {
		t.Fatal("ErrOverloaded must also match ErrRemote for legacy handling")
	}
	// Nothing executed.
	res, qerr := db.ExecOne(`SELECT ALL FROM note`)
	if qerr != nil {
		t.Fatal(qerr)
	}
	if len(res.Molecules) != 0 {
		t.Fatal("shed request executed anyway")
	}
	// Diagnostics bypass admission control.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping through overloaded server: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats through overloaded server: %v", err)
	}
	if st.WireShed == 0 || st.WireInFlight != 1 {
		t.Fatalf("shed=%d inflight=%d, want shed>0 inflight=1", st.WireShed, st.WireInFlight)
	}

	// Kill the hog; the slot frees and the same client (with retries now)
	// gets work through.
	hog.Close()
	retry, err := DialConfig(srv.Addr(), ClientConfig{MaxRetries: 20, BackoffBase: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer retry.Close()
	if _, err := retry.Exec(`INSERT INTO note (n) VALUES (2)`); err != nil {
		t.Fatalf("exec after slot release: %v", err)
	}
}

// TestConnCapRejectsRetryable proves the MaxConns cap turns extra conns
// away with a retryable error instead of stalling or silently dropping
// them.
func TestConnCapRejectsRetryable(t *testing.T) {
	_, srv := startServerConfig(t, ServerConfig{MaxConns: 1})
	keeper, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Close()
	if err := keeper.Ping(); err != nil { // ensures the conn is registered
		t.Fatal(err)
	}

	extra, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	var resp Response
	if err := ReadMsg(extra, &resp); err != nil {
		t.Fatalf("rejected conn got no response: %v", err)
	}
	if resp.OK || !resp.Retryable || !strings.Contains(resp.Error, "connection cap") {
		t.Fatalf("rejection response = %+v", resp)
	}
	st, err := keeper.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WireConnsRejected == 0 {
		t.Fatal("rejected conn not counted")
	}
	if st.WireConnsActive != 1 {
		t.Fatalf("active conns = %d, want 1", st.WireConnsActive)
	}
}

// TestAcceptLoopSurvivesTransientErrors injects transient accept failures
// (the EMFILE scenario that used to kill acceptLoop permanently) and
// proves the server keeps accepting afterwards.
func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	db, err := prima.Open(prima.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlan(7)
	srv := ServeListener(db, plan.Listen(ln), ServerConfig{})
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})

	plan.FailAccepts(3)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after transient accept failures: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WireAcceptRetries < 3 {
		t.Fatalf("accept retries = %d, want >= 3", st.WireAcceptRetries)
	}
}

// TestPanicRecovery makes a request handler panic and asserts the blast
// radius: the request answers with an error, the connection and server
// stay up, and the panic is counted.
func TestPanicRecovery(t *testing.T) {
	testHookDispatch = func(req *Request) {
		if req.Op == OpExec && req.MQL == "PANIC" {
			panic("injected request panic")
		}
	}
	defer func() { testHookDispatch = nil }()

	_, srv := startServerConfig(t, ServerConfig{})
	c, err := DialConfig(srv.Addr(), ClientConfig{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Exec("PANIC")
	if !errors.Is(err, ErrRemote) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("panicked request answered %v, want non-retryable remote error", err)
	}
	// Same connection still works — nothing was written before the panic.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after panic: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WirePanics != 1 {
		t.Fatalf("panics counted = %d, want 1", st.WirePanics)
	}
}

// TestCloseWaitsForHandlers hammers the server with concurrent traffic and
// closes it mid-flight: Close must return only after every handler exited
// (run under -race to verify the old conns-map race is gone).
func TestCloseWaitsForHandlers(t *testing.T) {
	_, srv := startServerConfig(t, ServerConfig{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialConfig(srv.Addr(), ClientConfig{MaxRetries: -1})
			if err != nil {
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.Ping(); err != nil {
					return
				}
				if _, err := c.Checkout(`SELECT ALL FROM solid WHERE solid_no = 1`); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := srv.ActiveConns(); n != 0 {
		t.Fatalf("Close returned with %d handlers still registered", n)
	}
	close(stop)
	wg.Wait()
}

// TestShutdownDrainsActiveStream starts a checkout stream, shuts the server
// down mid-stream and asserts graceful drain: the stream runs to
// completion, new conns are refused, Shutdown returns nil.
func TestShutdownDrainsActiveStream(t *testing.T) {
	db, srv := blobServer(t, 64, 256<<10, ServerConfig{})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	clampRecvBuffer(t, conn)
	if err := WriteMsg(conn, &Request{Op: OpCheckout, MQL: `SELECT ALL FROM blob`}); err != nil {
		t.Fatal(err)
	}
	var first Response
	if err := ReadMsg(conn, &first); err != nil {
		t.Fatal(err)
	}
	if !first.More {
		t.Fatal("stream finished in one frame; grow the payload")
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Give Shutdown time to start draining, then finish reading the stream.
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v while a stream was in flight", err)
	default:
	}
	total := len(first.Molecules)
	resp := first
	for resp.More {
		var next Response
		if err := ReadMsg(conn, &next); err != nil {
			t.Fatalf("stream cut during drain: %v", err)
		}
		if !next.OK {
			t.Fatalf("stream error during drain: %s", next.Error)
		}
		total += len(next.Molecules)
		resp = next
	}
	if total != 64 {
		t.Fatalf("drained stream delivered %d molecules, want 64", total)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown after drain: %v", err)
	}
	if db.OpenSnapshots() != 0 {
		t.Fatal("snapshot leaked through drain")
	}
	// The listener is gone.
	if c, err := net.DialTimeout("tcp", srv.Addr(), 200*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("server still accepting after Shutdown")
	}
}

// TestShutdownDeadlineForceCloses wedges a stream (client never reads) and
// gives Shutdown a short deadline: it must force-close the conn, report the
// deadline error, and still leave no snapshot behind.
func TestShutdownDeadlineForceCloses(t *testing.T) {
	db, srv := blobServer(t, 64, 256<<10, ServerConfig{WriteTimeout: -1})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMsg(conn, &Request{Op: OpCheckout, MQL: `SELECT ALL FROM blob`}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "stream to pin its snapshot", func() bool {
		return db.OpenSnapshots() > 0
	})

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v despite its deadline", elapsed)
	}
	// Handlers are gone (Shutdown waits even on the force path), so the
	// stream's snapshot is released.
	if db.OpenSnapshots() != 0 {
		t.Fatal("snapshot leaked through forced shutdown")
	}
}

// TestClientReconnectAndRetry cuts the client's conn deterministically and
// asserts: idempotent ops retry through a reconnect, non-idempotent ops
// surface the failure instead, and the counters record both.
func TestClientReconnectAndRetry(t *testing.T) {
	_, srv := startServerConfig(t, ServerConfig{})
	plan := NewFaultPlan(11)
	c, err := DialConfig(srv.Addr(), ClientConfig{
		BackoffBase: time.Millisecond,
		Dialer: func(address string) (net.Conn, error) {
			conn, err := net.Dial("tcp", address)
			if err != nil {
				return nil, err
			}
			return plan.Conn(conn), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Idempotent op: the reset is absorbed by reconnect + retry.
	plan.FailOps(1)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping through injected reset: %v", err)
	}
	retries, reconnects := c.Retries()
	if retries == 0 || reconnects == 0 {
		t.Fatalf("retries=%d reconnects=%d after injected reset, want both > 0", retries, reconnects)
	}

	// Non-idempotent op: the reset surfaces; the client must NOT blind-retry.
	plan.FailOps(1)
	trips := c.RoundTrips()
	_, err = c.Exec(`INSERT INTO solid (solid_no, description) VALUES (77, 'lost')`)
	if err == nil {
		t.Fatal("exec through a dead conn reported success")
	}
	if errors.Is(err, ErrRemote) {
		t.Fatalf("transport failure misclassified as remote error: %v", err)
	}
	if got := c.RoundTrips() - trips; got != 1 {
		t.Fatalf("non-idempotent op attempted %d times, want exactly 1", got)
	}

	// The next op transparently reconnects.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after failed exec: %v", err)
	}
	// And the checkout path retries too (stream reads are idempotent).
	plan.FailOps(1)
	mols, err := c.Checkout(`SELECT ALL FROM solid WHERE solid_no = 1`)
	if err != nil {
		t.Fatalf("checkout through injected reset: %v", err)
	}
	if len(mols) != 1 {
		t.Fatalf("checkout = %d molecules, want 1", len(mols))
	}
}

// TestStageModifyValidation covers the hardened staging path: unknown and
// mistyped atoms are refused loudly, and the staged statement renders the
// MODIFY target through the addr package instead of hand-rolled shifts.
func TestStageModifyValidation(t *testing.T) {
	_, srv := startServerConfig(t, ServerConfig{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.StageModify("face", 12345, "square_dim", "1.0"); err == nil {
		t.Fatal("staging an atom that was never checked out succeeded")
	}
	mols, err := c.Checkout(`SELECT ALL FROM solid WHERE solid_no = 1`)
	if err != nil {
		t.Fatal(err)
	}
	a := mols[0].Atoms[0]
	if err := c.StageModify("face", a.Addr, "square_dim", "1.0"); err == nil {
		t.Fatal("staging with the wrong atom type succeeded")
	}
	if err := c.StageModify("solid", a.Addr, "description", "'ok'"); err != nil {
		t.Fatalf("staging a buffered atom: %v", err)
	}
	la := addr.LogicalAddr(a.Addr)
	want := fmt.Sprintf("@%d.%d", la.Type(), la.Seq())
	if p := c.Pending(); len(p) != 1 || !strings.Contains(p[0], want) {
		t.Fatalf("staged statement %q does not target %s", p, want)
	}
	if resp, err := c.Checkin(); err != nil || resp.Count != 1 {
		t.Fatalf("checkin of validated staging: resp=%+v err=%v", resp, err)
	}
}

// TestShutdownIdempotent double-closes through both paths.
func TestShutdownIdempotent(t *testing.T) {
	_, srv := startServerConfig(t, ServerConfig{})
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
