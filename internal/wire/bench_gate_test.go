//go:build benchgate

package wire

// The wire-layer CI bench gate: run with
//
//	go test -tags benchgate -run TestBenchGate ./internal/wire/
//
// Shares BENCH_baseline.json at the repository root with the root package's
// gate; only the keys registered here are enforced by this gate. When a PR
// legitimately changes the wire profile, re-measure with
//
//	go test -run=NONE -bench=BenchmarkWireRoundTrip -benchmem ./internal/wire/
//
// and update the baseline in the same commit.

import (
	"testing"

	"prima/internal/benchgate"
)

var gatedBenchmarks = map[string]func(b *testing.B){
	"BenchmarkWireRoundTrip/ping": benchWirePing,
	// Wall-clock only: the insert path's allocation count varies with
	// B-tree splits and map growth as the table accretes across runs.
	"BenchmarkWireRoundTrip/exec_insert_wal": benchWireExecInsert,
	// The tracing-overhead gate: a SELECT round trip walks every
	// trace-instrumented path with tracing disabled.
	"BenchmarkWireRoundTrip/exec_select": benchWireExecSelect,
}

func TestBenchGate(t *testing.T) {
	benchgate.Run(t, "../../BENCH_baseline.json", gatedBenchmarks)
}
