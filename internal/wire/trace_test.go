package wire

import (
	"regexp"
	"strings"
	"testing"
	"time"

	"prima"
	"prima/internal/workload/brepgen"
)

// startTracedServer is startServer with the slow-query threshold armed so
// every request is traced (IDs on every response) and every request at least
// slow is retained in the slow ring.
func startTracedServer(t testing.TB, slow time.Duration) (*prima.DB, *Server) {
	t.Helper()
	db, err := prima.Open(prima.Config{SlowQueryThreshold: slow})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := brepgen.BuildScene(db.Engine(), 5); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(db, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, srv
}

// TestWireTraceIDAndSlowRing is the end-to-end tracing path: a traced exec
// returns a trace ID, and the same request is retrievable from the slow ring
// (wire slow op) with its full span tree — parse, plan and assemble spans
// with the read-path counters.
func TestWireTraceIDAndSlowRing(t *testing.T) {
	_, srv := startTracedServer(t, time.Nanosecond)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Exec(`SELECT ALL FROM brep-face-edge WHERE brep_no = 2`)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if resp.TraceID == "" {
		t.Fatal("traced exec returned no trace ID")
	}

	traces, err := c.Slow(0)
	if err != nil {
		t.Fatalf("Slow: %v", err)
	}
	var found bool
	for _, tr := range traces {
		if tr.ID != resp.TraceID {
			continue
		}
		found = true
		if tr.Root.Name != "wire:exec" {
			t.Fatalf("slow trace root = %q, want wire:exec span", tr.Root.Name)
		}
		if got := tr.Root.Attrs["mql"]; !strings.Contains(got, "brep-face-edge") {
			t.Errorf("trace mql attr = %q", got)
		}
		for _, span := range []string{"parse", "plan", "assemble"} {
			if tr.Find(span) == nil {
				t.Errorf("slow trace missing %q span:\n%s", span, tr.String())
			}
		}
		asm := tr.Find("assemble")
		if asm.Counters["molecules"] != 1 {
			t.Errorf("assemble molecules = %d, want 1", asm.Counters["molecules"])
		}
		if asm.Counters["atoms_decoded"] == 0 {
			t.Errorf("assemble decoded no atoms:\n%s", tr.String())
		}
	}
	if !found {
		t.Fatalf("trace %s not in slow ring (%d retained)", resp.TraceID, len(traces))
	}

	// The slow ring is bounded to n on request.
	if _, err := c.Exec(`SELECT ALL FROM solid`); err != nil {
		t.Fatal(err)
	}
	limited, err := c.Slow(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 1 {
		t.Fatalf("Slow(1) returned %d traces", len(limited))
	}
}

// TestWireCheckoutStreamTraceID checks the stream path: the trace ID rides
// on the final frame and the client surfaces it.
func TestWireCheckoutStreamTraceID(t *testing.T) {
	_, srv := startTracedServer(t, time.Nanosecond)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mols, traceID, err := c.CheckoutTraced(`SELECT ALL FROM brep-face-edge-point`)
	if err != nil {
		t.Fatalf("CheckoutTraced: %v", err)
	}
	if len(mols) != 5 {
		t.Fatalf("checkout returned %d molecules, want 5", len(mols))
	}
	if traceID == "" {
		t.Fatal("traced checkout returned no trace ID")
	}
	traces, err := c.Slow(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		if tr.ID == traceID {
			if tr.Find("assemble") == nil {
				t.Fatalf("checkout trace has no assemble span:\n%s", tr.String())
			}
			if got := tr.Find("assemble").Counters["molecules"]; got != 5 {
				t.Fatalf("checkout trace molecules = %d, want 5", got)
			}
			return
		}
	}
	t.Fatalf("checkout trace %s not retained", traceID)
}

// TestWireTracingDisabledNoTraceID: with every tracing knob off, responses
// carry no trace ID and the slow ring stays empty — the disabled cost is one
// nil check per instrumentation site.
func TestWireTracingDisabledNoTraceID(t *testing.T) {
	_, srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Exec(`SELECT ALL FROM solid`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != "" {
		t.Fatalf("untraced exec returned trace ID %q", resp.TraceID)
	}
	traces, err := c.Slow(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 0 {
		t.Fatalf("slow ring has %d traces with tracing off", len(traces))
	}
}

var stagesRe = regexp.MustCompile(`\(stages: ([^)]+)\)`)

// TestExplainAnalyzeStageSumVsWireLatency is the acceptance check: EXPLAIN
// ANALYZE on a three-level molecule query reports per-stage timings whose
// sum lands within 20% of the wire-observed latency. The response carries no
// molecule payload (just the rendered text), so client-observed latency is
// essentially the server's parse+plan+assemble work plus loopback overhead;
// scheduling noise is absorbed by retrying a few times.
func TestExplainAnalyzeStageSumVsWireLatency(t *testing.T) {
	db, err := prima.Open(prima.Config{SlowQueryThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		t.Fatal(err)
	}
	// A scene large enough that assembly dominates the round trip: with a
	// tiny result set, loopback and JSON overhead swamp the stage sum and
	// the 20% bound would measure the network, not the tracer.
	if _, err := brepgen.BuildScene(db.Engine(), 60); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(db, "")
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := `EXPLAIN ANALYZE SELECT ALL FROM brep-face-edge WHERE brep_no >= 1`
	var lastRatio float64
	for attempt := 0; attempt < 8; attempt++ {
		t0 := time.Now()
		resp, err := c.Exec(q)
		wall := time.Since(t0)
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
		m := stagesRe.FindStringSubmatch(resp.Message)
		if m == nil {
			t.Fatalf("no stages sum in EXPLAIN ANALYZE output:\n%s", resp.Message)
		}
		stages, err := time.ParseDuration(m[1])
		if err != nil {
			t.Fatalf("unparseable stages duration %q: %v", m[1], err)
		}
		lastRatio = float64(stages) / float64(wall)
		if lastRatio >= 0.8 && lastRatio <= 1.2 {
			return
		}
	}
	t.Fatalf("stage sum never within 20%% of wire latency (last ratio %.2f)", lastRatio)
}

// TestWireSlowOpIsDiagnostic: the slow op must bypass admission control so
// an operator can pull traces from a saturated server.
func TestWireSlowOpIsDiagnostic(t *testing.T) {
	db, err := prima.Open(prima.Config{SlowQueryThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeConfig(db, "", ServerConfig{MaxInFlight: 1, QueueWait: -1})
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	// Fill the single in-flight slot.
	srv.inflight <- struct{}{}
	defer func() { <-srv.inflight }()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Slow(0); err != nil {
		t.Fatalf("Slow during saturation: %v", err)
	}
}
