package wire

import (
	"testing"
)

// TestCheckoutUsesPlanCache asserts that repeated checkout streams of the
// same statement text are served from the engine's plan cache — the wire
// server stops re-parsing and re-planning repeated queries.
func TestCheckoutUsesPlanCache(t *testing.T) {
	db, srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const q = `SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2`
	h0, _, _ := db.Engine().PlanCacheStats()
	for i := 0; i < 3; i++ {
		mols, err := c.Checkout(q)
		if err != nil {
			t.Fatalf("checkout %d: %v", i, err)
		}
		if len(mols) != 1 {
			t.Fatalf("checkout %d: %d molecules, want 1", i, len(mols))
		}
	}
	h1, _, _ := db.Engine().PlanCacheStats()
	if h1-h0 < 2 {
		t.Fatalf("plan cache hits over 3 identical checkouts = %d, want >= 2", h1-h0)
	}

	// Exec'd single-SELECT scripts share the cache, too.
	if _, err := c.Exec(q); err != nil {
		t.Fatal(err)
	}
	h2, _, _ := db.Engine().PlanCacheStats()
	if h2 <= h1 {
		t.Fatalf("Exec of the cached statement did not hit the plan cache (hits %d -> %d)", h1, h2)
	}

	// DDL invalidates: the next checkout must re-plan, not reuse stale plans.
	if _, err := c.Exec(`CREATE ACCESS PATH bno ON brep (brep_no) USING BTREE`); err != nil {
		t.Fatal(err)
	}
	mols, err := c.Checkout(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(mols) != 1 {
		t.Fatalf("post-DDL checkout: %d molecules, want 1", len(mols))
	}
}
