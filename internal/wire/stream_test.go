package wire

import (
	"net"
	"strings"
	"testing"

	"prima"
	"prima/internal/access/atom"
	"prima/internal/workload/brepgen"
)

// bigServer starts a server whose scene holds more molecules than one
// stream frame carries.
func bigServer(t *testing.T, n int) *Server {
	t.Helper()
	db, err := prima.Open(prima.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := brepgen.BuildScene(db.Engine(), n); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(db, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv
}

// TestCheckoutStreamsInChunks speaks the raw protocol and verifies the
// server really chunks a large result set instead of buffering it whole.
func TestCheckoutStreamsInChunks(t *testing.T) {
	n := streamChunk + streamChunk/2 // forces at least two frames
	srv := bigServer(t, n)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMsg(conn, &Request{Op: OpCheckout, MQL: `SELECT ALL FROM brep-face-edge-point`}); err != nil {
		t.Fatal(err)
	}

	frames, total := 0, 0
	for {
		var resp Response
		if err := ReadMsg(conn, &resp); err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		frames++
		total += len(resp.Molecules)
		if !resp.OK {
			t.Fatalf("frame %d: remote error %s", frames, resp.Error)
		}
		if !resp.More {
			if resp.Count != n {
				t.Fatalf("final frame count = %d, want %d", resp.Count, n)
			}
			break
		}
		if len(resp.Molecules) != streamChunk {
			t.Fatalf("continuation frame carries %d molecules, want %d", len(resp.Molecules), streamChunk)
		}
	}
	if frames < 2 {
		t.Fatalf("result of %d molecules arrived in %d frame(s); expected a chunked stream", n, frames)
	}
	if total != n {
		t.Fatalf("stream delivered %d molecules, want %d", total, n)
	}
}

// TestOversizedChunkSplitsBySize builds molecules so large that a
// 32-molecule chunk would exceed the 16 MiB frame limit; the server's
// size-aware packing must close frames at the byte budget instead of
// tearing the connection down, and the client must still reassemble the
// full set.
func TestOversizedChunkSplitsBySize(t *testing.T) {
	db, err := prima.Open(prima.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE ATOM_TYPE blob (id: IDENTIFIER, n: INTEGER, payload: CHAR_VAR)`); err != nil {
		t.Fatal(err)
	}
	wide := strings.Repeat("x", 700<<10) // ~22 MiB of JSON per 32-molecule chunk
	for i := 0; i < streamChunk; i++ {
		if _, err := db.System().Insert("blob", map[string]atom.Value{
			"n": atom.Int(int64(i)), "payload": atom.Str(wide),
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := Serve(db, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mols, err := c.Checkout(`SELECT ALL FROM blob`)
	if err != nil {
		t.Fatalf("Checkout of oversized chunk: %v", err)
	}
	if len(mols) != streamChunk {
		t.Fatalf("reassembled %d molecules, want %d", len(mols), streamChunk)
	}
	if got := len(mols[streamChunk-1].Atoms[0].Values["payload"]); got < 700<<10 {
		t.Fatalf("last payload = %d bytes", got)
	}
	// The connection must still be usable.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after oversized stream: %v", err)
	}
}

// TestOversizedMoleculeAbortsStreamCleanly puts one molecule too large for
// any wire frame among normal ones: the stream must end with a terminal
// error frame and nothing after it, so the connection stays synchronized
// for subsequent requests.
func TestOversizedMoleculeAbortsStreamCleanly(t *testing.T) {
	db, err := prima.Open(prima.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE ATOM_TYPE blob (id: IDENTIFIER, n: INTEGER, payload: CHAR_VAR)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.System().Insert("blob", map[string]atom.Value{
		"n": atom.Int(0), "payload": atom.Str(strings.Repeat("x", 17<<20)),
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 6; i++ {
		if _, err := db.System().Insert("blob", map[string]atom.Value{"n": atom.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := Serve(db, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Checkout(`SELECT ALL FROM blob`); err == nil {
		t.Fatal("oversized molecule did not surface as a checkout error")
	}
	// No leftover frames on the socket: the next request must get its own
	// response, not a stale molecule frame.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after aborted stream: %v", err)
	}
	mols, err := c.Checkout(`SELECT n FROM blob WHERE n = 3`)
	if err != nil {
		t.Fatalf("Checkout after aborted stream: %v", err)
	}
	if len(mols) != 1 {
		t.Fatalf("follow-up checkout = %d molecules, want 1", len(mols))
	}
}

// TestClientReassemblesStream checks the client-facing contract: one logical
// round trip, complete result, populated object buffer.
func TestClientReassemblesStream(t *testing.T) {
	n := 2*streamChunk + 3
	srv := bigServer(t, n)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mols, err := c.Checkout(`SELECT ALL FROM brep-face-edge-point`)
	if err != nil {
		t.Fatalf("Checkout: %v", err)
	}
	if len(mols) != n {
		t.Fatalf("checkout = %d molecules, want %d", len(mols), n)
	}
	if c.RoundTrips() != 1 {
		t.Fatalf("round trips = %d, want 1", c.RoundTrips())
	}
	for _, a := range mols[n-1].Atoms {
		if _, ok := c.Local(a.Addr); !ok {
			t.Fatalf("atom %d of last molecule missing from object buffer", a.Addr)
		}
	}
	// Errors still surface on the same connection afterwards.
	if _, err := c.Checkout(`SELECT ALL FROM ghost`); err == nil {
		t.Fatal("remote error not surfaced")
	}
	// And the connection stays usable.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after error: %v", err)
	}
}
