package wire

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"prima"
	"prima/internal/workload/brepgen"
)

// TestChaosMixedTrafficUnderFaults is the wire layer's crash-recovery
// property test: N concurrent clients run mixed checkout/checkin/query
// traffic against a fault-injected server (random latency, mid-stream
// resets, partial writes) with admission control tight enough to shed.
// Invariants checked at the end:
//
//   - zero acknowledged-write loss: every INSERT/checkin the server
//     acknowledged is present in the database afterwards;
//   - idempotent operations never fail — retry + reconnect absorb every
//     injected fault;
//   - graceful drain: Shutdown completes within its deadline;
//   - zero leaks: no open snapshots, no buffer-pool pins, no handler
//     panics, and the goroutine count returns to its baseline.
//
// The FaultPlan seed is fixed, so a failure reproduces.
func TestChaosMixedTrafficUnderFaults(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	db, err := prima.Open(prima.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		t.Fatal(err)
	}
	const scene = 8
	if _, err := brepgen.BuildScene(db.Engine(), scene); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE ATOM_TYPE chaos (id: IDENTIFIER, n: INTEGER)`); err != nil {
		t.Fatal(err)
	}

	plan := NewFaultPlan(42)
	plan.SetLatency(0.2, 500*time.Microsecond)
	plan.SetPartialWrite(0.02)
	plan.SetReset(0.02)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeListener(db, plan.Listen(ln), ServerConfig{
		IdleTimeout:  5 * time.Second,
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		MaxConns:     64,
		MaxInFlight:  4,
		QueueWait:    100 * time.Millisecond,
	})
	defer srv.Close()

	const (
		clients = 6
		ops     = 30
	)
	ccfg := ClientConfig{
		MaxRetries:  12,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		OpTimeout:   3 * time.Second,
	}
	type outcome struct {
		acked       []int // acknowledged chaos-insert values
		maxAckedRev int   // highest acknowledged checkin revision (-1: none)
		execFails   int   // unacknowledged writes (tolerated, counted)
	}
	results := make([]outcome, clients)
	var wg sync.WaitGroup
	for id := 1; id <= clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res := outcome{maxAckedRev: -1}
			defer func() { results[id-1] = res }()
			c, err := DialConfig(srv.Addr(), ccfg)
			if err != nil {
				t.Errorf("client %d: dial: %v", id, err)
				return
			}
			defer c.Close()
			// Each client owns solid <id> for its checkins.
			if _, err := c.Checkout(fmt.Sprintf(`SELECT ALL FROM solid WHERE solid_no = %d`, id)); err != nil {
				t.Errorf("client %d: own-solid checkout: %v", id, err)
				return
			}
			var solidAddr uint64
			for a := range cBuffer(c) {
				solidAddr = a
			}
			for i := 0; i < ops; i++ {
				switch i % 5 {
				case 0:
					if err := c.Ping(); err != nil {
						t.Errorf("client %d op %d: ping: %v", id, i, err)
						return
					}
				case 1:
					if _, err := c.Stats(); err != nil {
						t.Errorf("client %d op %d: stats: %v", id, i, err)
						return
					}
				case 2:
					q := fmt.Sprintf(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = %d`, 1+i%scene)
					mols, err := c.Checkout(q)
					if err != nil {
						t.Errorf("client %d op %d: checkout: %v", id, i, err)
						return
					}
					if len(mols) != 1 || len(mols[0].Atoms) != brepgen.CubeAtoms {
						t.Errorf("client %d op %d: checkout = %d molecules", id, i, len(mols))
						return
					}
				case 3:
					n := id*1000 + i
					resp, err := c.Exec(fmt.Sprintf(`INSERT INTO chaos (n) VALUES (%d)`, n))
					if err == nil && resp.OK {
						res.acked = append(res.acked, n)
					} else {
						res.execFails++
					}
				case 4:
					lit := fmt.Sprintf("'c%dr%d'", id, i)
					if err := c.StageModify("solid", solidAddr, "description", lit); err != nil {
						t.Errorf("client %d op %d: stage: %v", id, i, err)
						return
					}
					resp, err := c.Checkin()
					if err == nil && resp.OK {
						res.maxAckedRev = i
					} else {
						res.execFails++
					}
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesce the faults and pull the server's health counters.
	plan.SetLatency(0, 0)
	plan.SetPartialWrite(0)
	plan.SetReset(0)
	obs, err := DialConfig(srv.Addr(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := obs.Stats()
	if err != nil {
		t.Fatal(err)
	}
	obs.Close()
	if st.WirePanics != 0 {
		t.Fatalf("%d handler panics under chaos", st.WirePanics)
	}
	// Shedding is allowed but bounded: a shed op is retried at most
	// MaxRetries times, so sheds can never exceed the total attempt budget.
	if limit := uint64(clients*ops) * uint64(ccfg.MaxRetries+1); st.WireShed > limit {
		t.Fatalf("shed %d requests > attempt budget %d — shed/retry loop", st.WireShed, limit)
	}
	t.Logf("chaos: conns=%d/%d rejected=%d requests=%d shed=%d aborts=%d resets=%d partials=%d latencies=%d",
		st.WireConnsActive, st.WireConnsTotal, st.WireConnsRejected, st.WireRequests,
		st.WireShed, st.WireStreamAborts, plan.Resets.Load(), plan.Partials.Load(), plan.Latencies.Load())

	// Graceful drain within the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Zero acknowledged-write loss: every acked insert is durable…
	for _, res := range results {
		for _, n := range res.acked {
			r, err := db.ExecOne(fmt.Sprintf(`SELECT ALL FROM chaos WHERE n = %d`, n))
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Molecules) != 1 {
				t.Fatalf("acknowledged insert n=%d lost (found %d)", n, len(r.Molecules))
			}
		}
	}
	// …and every acked checkin revision is reflected or superseded by a
	// later revision of the same client (checkins are sequential per
	// client, so the final description is its highest applied revision).
	for id := 1; id <= clients; id++ {
		res := results[id-1]
		if res.maxAckedRev < 0 {
			continue
		}
		r, err := db.ExecOne(fmt.Sprintf(`SELECT ALL FROM solid WHERE solid_no = %d`, id))
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Molecules) != 1 {
			t.Fatalf("client %d solid missing", id)
		}
		desc := ""
		for _, ma := range r.Molecules[0].AtomsOf("solid") {
			desc = ma.Atom.Values[2].S // description is attr index 2
		}
		var gotID, gotRev int
		if _, err := fmt.Sscanf(desc, "c%dr%d", &gotID, &gotRev); err != nil {
			t.Fatalf("client %d: final description %q is not a chaos revision", id, desc)
		}
		if gotID != id || gotRev < res.maxAckedRev {
			t.Fatalf("client %d: final revision %q older than acknowledged r%d", id, desc, res.maxAckedRev)
		}
	}

	// Zero leaks after drain.
	if n := db.OpenSnapshots(); n != 0 {
		t.Fatalf("%d snapshots leaked", n)
	}
	if n := db.System().Pool().Pinned(); n != 0 {
		t.Fatalf("%d buffer pins leaked", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC() // collect dropped cursors' finalizers, if any are pending
		if runtime.NumGoroutine() <= baseGoroutines+2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines %d > baseline %d after drain\n%s",
			n, baseGoroutines, buf[:runtime.Stack(buf, true)])
	}

	execFails := 0
	for _, r := range results {
		execFails += r.execFails
	}
	t.Logf("chaos: %d clients x %d ops, %d unacknowledged writes (tolerated)", clients, ops, execFails)
}

// cBuffer exposes the client's object buffer addresses to the test.
func cBuffer(c *Client) map[uint64]AtomJSON {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64]AtomJSON, len(c.buffer))
	for k, v := range c.buffer {
		out[k] = v
	}
	return out
}
