package wire

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultPlan drives conn-level fault injection — the network twin of
// device.FaultDevice. A plan wraps listeners and conns; every wrapped I/O
// operation consults the plan and may be delayed, stalled, cut short
// (partial write followed by a reset) or reset outright. Randomness comes
// from a seeded source, so a chaos run is reproducible from its seed.
//
// All knobs may be adjusted while traffic is running; counters report how
// many of each fault actually fired.
type FaultPlan struct {
	mu  sync.Mutex
	rng *rand.Rand

	latency     time.Duration // upper bound of per-I/O injected delay
	latencyProb float64
	stall       time.Duration // a long blocking pause (deadline fodder)
	stallProb   float64
	partialProb float64 // on write: deliver a prefix, then reset
	resetProb   float64 // on read or write: reset the conn

	acceptFails atomic.Int32 // next n Accept calls fail transiently
	opFails     atomic.Int32 // next n conn I/O ops reset deterministically

	// Fired-fault counters.
	Latencies atomic.Uint64
	Stalls    atomic.Uint64
	Partials  atomic.Uint64
	Resets    atomic.Uint64
}

// NewFaultPlan creates a plan with no faults armed; arm them with the Set
// methods.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{rng: rand.New(rand.NewSource(seed))}
}

// SetLatency injects a random delay up to d before a fraction prob of I/O
// operations.
func (p *FaultPlan) SetLatency(prob float64, d time.Duration) {
	p.mu.Lock()
	p.latencyProb, p.latency = prob, d
	p.mu.Unlock()
}

// SetStall injects a blocking pause of d into a fraction prob of I/O
// operations — long enough to trip read/write deadlines.
func (p *FaultPlan) SetStall(prob float64, d time.Duration) {
	p.mu.Lock()
	p.stallProb, p.stall = prob, d
	p.mu.Unlock()
}

// SetPartialWrite makes a fraction prob of writes deliver only a prefix of
// the buffer to the peer before resetting the conn — the torn-write of the
// network world.
func (p *FaultPlan) SetPartialWrite(prob float64) {
	p.mu.Lock()
	p.partialProb = prob
	p.mu.Unlock()
}

// SetReset makes a fraction prob of reads and writes reset the conn.
func (p *FaultPlan) SetReset(prob float64) {
	p.mu.Lock()
	p.resetProb = prob
	p.mu.Unlock()
}

// FailAccepts makes the next n Accept calls on listeners wrapped by this
// plan fail with a transient error (the EMFILE scenario).
func (p *FaultPlan) FailAccepts(n int) { p.acceptFails.Store(int32(n)) }

// FailOps makes the next n reads/writes on conns wrapped by this plan reset
// deterministically — the precise scalpel where the probabilistic knobs are
// a shotgun.
func (p *FaultPlan) FailOps(n int) { p.opFails.Store(int32(n)) }

// Listen wraps a listener so every accepted conn carries this plan's faults.
func (p *FaultPlan) Listen(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, p: p}
}

// Conn wraps an established conn with this plan's faults — the client-side
// injection point (plug it into ClientConfig.Dialer).
func (p *FaultPlan) Conn(c net.Conn) net.Conn { return &faultConn{Conn: c, p: p} }

// roll draws the fault decisions for one I/O operation under the plan lock.
func (p *FaultPlan) roll(write bool) (delay time.Duration, partial, reset bool) {
	for {
		n := p.opFails.Load()
		if n <= 0 {
			break
		}
		if p.opFails.CompareAndSwap(n, n-1) {
			p.Resets.Add(1)
			return 0, false, true
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.latencyProb > 0 && p.rng.Float64() < p.latencyProb && p.latency > 0 {
		delay = time.Duration(p.rng.Int63n(int64(p.latency))) + 1
		p.Latencies.Add(1)
	}
	if p.stallProb > 0 && p.rng.Float64() < p.stallProb {
		delay += p.stall
		p.Stalls.Add(1)
	}
	if p.resetProb > 0 && p.rng.Float64() < p.resetProb {
		p.Resets.Add(1)
		return delay, false, true
	}
	if write && p.partialProb > 0 && p.rng.Float64() < p.partialProb {
		p.Partials.Add(1)
		return delay, true, false
	}
	return delay, false, false
}

// partialLen picks how much of an n-byte write survives a partial fault.
func (p *FaultPlan) partialLen(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n <= 1 {
		return 0
	}
	return 1 + p.rng.Intn(n-1)
}

// ErrInjected marks failures produced by fault injection.
var ErrInjected = errors.New("wire: injected fault")

type faultListener struct {
	net.Listener
	p *FaultPlan
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		if n := l.p.acceptFails.Load(); n > 0 {
			if l.p.acceptFails.CompareAndSwap(n, n-1) {
				return nil, errInjectedAccept{}
			}
			continue
		}
		break
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: c, p: l.p}, nil
}

// errInjectedAccept is a transient accept failure: net.Error with
// Timeout() true, like the kernel's momentary resource exhaustion.
type errInjectedAccept struct{}

func (errInjectedAccept) Error() string   { return "wire: injected accept failure" }
func (errInjectedAccept) Timeout() bool   { return true }
func (errInjectedAccept) Temporary() bool { return true }

type faultConn struct {
	net.Conn
	p *FaultPlan
}

func (c *faultConn) Read(b []byte) (int, error) {
	delay, _, reset := c.p.roll(false)
	if delay > 0 {
		time.Sleep(delay)
	}
	if reset {
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	delay, partial, reset := c.p.roll(true)
	if delay > 0 {
		time.Sleep(delay)
	}
	if reset {
		c.Conn.Close()
		return 0, ErrInjected
	}
	if partial {
		n := c.p.partialLen(len(b))
		m, _ := c.Conn.Write(b[:n])
		c.Conn.Close()
		return m, ErrInjected
	}
	return c.Conn.Write(b)
}
