// Package wire implements the workstation–host coupling of §4: PRIMA runs
// as a server; the application layer on the workstation talks to it over a
// set-oriented interface ("the set-oriented MAD interface is a major
// prerequisite to reduce communication overhead as far as possible") and
// keeps checked-out molecules in a local object buffer, writing them back at
// commit time ("checkout/checkin").
//
// The protocol is length-prefixed JSON over TCP: one request, one response.
// Large molecule sets do not buffer on the server: a checkout response is a
// stream of frames, each carrying a chunk of molecules and a More flag;
// the final frame (More unset) carries the total count. The client
// reassembles the stream transparently, so callers still see one
// set-oriented round trip.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"

	"prima/internal/obs"
)

// Op codes.
const (
	OpPing     = "ping"
	OpExec     = "exec"     // run an MQL script
	OpCheckout = "checkout" // run a SELECT, return whole molecules
	OpGetAtom  = "getatom"  // fetch one atom (the chatty baseline)
	OpStats    = "stats"    // server cache/buffer statistics
	OpSlow     = "slow"     // retained slow-query traces (newest first)
)

// Request is one client message.
type Request struct {
	Op   string `json:"op"`
	MQL  string `json:"mql,omitempty"`
	Addr uint64 `json:"addr,omitempty"`
	// N bounds a slow request's result count (0 returns the whole ring).
	N int `json:"n,omitempty"`
}

// Response is one server message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Retryable marks an error response as safe to retry: the server
	// rejected the request before executing any of it (admission control,
	// drain). Clients may resend it verbatim — even non-idempotent ops like
	// Exec, since a shed request has no server-side effect.
	Retryable bool           `json:"retryable,omitempty"`
	Message   string         `json:"message,omitempty"`
	Count     int            `json:"count,omitempty"`
	Inserted  []uint64       `json:"inserted,omitempty"`
	Molecules []MoleculeJSON `json:"molecules,omitempty"`
	Atom      *AtomJSON      `json:"atom,omitempty"`
	Stats     *StatsJSON     `json:"stats,omitempty"`
	// Metrics is the full registry snapshot (counters, gauges, per-stage
	// latency histograms) attached to stats responses — the same data the
	// /metrics endpoint serves, in structured form.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
	// Epoch is the snapshot epoch a checkout stream reads at: every molecule
	// of the stream reflects the database state as of that epoch, no matter
	// which DML commits while the stream drains.
	Epoch uint64 `json:"epoch,omitempty"`
	// More marks a continuation frame: further frames of the same response
	// stream follow on the connection.
	More bool `json:"more,omitempty"`
	// TraceID identifies the server-side trace of this request, when the
	// server traced it (sampling hit, or a slow-query threshold is armed).
	// Quote it to the slow op or /debug/slow to find the full span tree.
	TraceID string `json:"traceId,omitempty"`
	// Traces carries retained trace snapshots on slow responses.
	Traces []*obs.TraceSnapshot `json:"traces,omitempty"`
}

// StatsJSON reports the server's cache hierarchy counters: the decoded-atom
// cache above the page buffer, the buffer pool, and the plan cache.
type StatsJSON struct {
	AtomCacheHits          uint64 `json:"atomCacheHits"`
	AtomCacheMisses        uint64 `json:"atomCacheMisses"`
	AtomCacheInvalidations uint64 `json:"atomCacheInvalidations"`
	AtomCacheEvictions     uint64 `json:"atomCacheEvictions"`
	AtomCacheAtoms         int    `json:"atomCacheAtoms"`
	AtomCacheBudget        int    `json:"atomCacheBudget"`
	BufferHits             int64  `json:"bufferHits"`
	BufferMisses           int64  `json:"bufferMisses"`
	BufferEvictions        int64  `json:"bufferEvictions"`
	PlanCacheHits          uint64 `json:"planCacheHits"`
	PlanCacheMisses        uint64 `json:"planCacheMisses"`
	PlanCacheSize          int    `json:"planCacheSize"`
	// Write-ahead log counters; all zero when the log is disabled.
	WALEnabled     bool   `json:"walEnabled"`
	WALAppends     uint64 `json:"walAppends"`
	WALBytes       uint64 `json:"walBytes"`
	WALSyncs       uint64 `json:"walSyncs"`
	WALCommits     uint64 `json:"walCommits"`
	WALBatches     uint64 `json:"walBatches"`
	WALCheckpoints uint64 `json:"walCheckpoints"`
	WALRecoveries  uint64 `json:"walRecoveries"`
	// WALCheckpointErr carries the most recent checkpoint failure, empty
	// while checkpoints are healthy. Non-empty means log truncation has
	// stalled: replay time and disk use grow until the cause clears.
	WALCheckpointErr string `json:"walCheckpointErr,omitempty"`
	// Wire health counters: the connection/admission state of the server
	// answering this stats request.
	WireConnsActive   int    `json:"wireConnsActive"`   // currently open connections
	WireConnsTotal    uint64 `json:"wireConnsTotal"`    // connections ever accepted
	WireConnsRejected uint64 `json:"wireConnsRejected"` // turned away at the MaxConns cap
	WireInFlight      int    `json:"wireInFlight"`      // requests being served right now
	WireRequests      uint64 `json:"wireRequests"`      // requests ever admitted
	WireShed          uint64 `json:"wireShed"`          // requests shed by admission control
	WireStreamAborts  uint64 `json:"wireStreamAborts"`  // checkout streams cut by conn failure
	WirePanics        uint64 `json:"wirePanics"`        // handler panics recovered
	WireAcceptRetries uint64 `json:"wireAcceptRetries"` // transient accept errors survived
}

// MoleculeJSON is a wire-format molecule: the flat atom set grouped by type
// plus the root address (structure can be rebuilt client-side from the
// reference attributes if needed).
type MoleculeJSON struct {
	Root  uint64     `json:"root"`
	Atoms []AtomJSON `json:"atoms"`
}

// AtomJSON is a wire-format atom. Values are rendered in MQL literal syntax.
type AtomJSON struct {
	Addr   uint64            `json:"addr"`
	Type   string            `json:"type"`
	Values map[string]string `json:"values"`
}

// maxFrame bounds message size (16 MiB).
const maxFrame = 16 << 20

// ErrFrameTooBig is returned by WriteMsg before anything is written when the
// encoded message exceeds the frame limit; the connection stays usable.
var ErrFrameTooBig = errors.New("wire: frame exceeds limit")

// WriteMsg frames and writes a JSON-serializable message.
func WriteMsg(w io.Writer, v interface{}) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadMsg reads one framed JSON message into v.
func ReadMsg(r io.Reader, v interface{}) error {
	n, err := readHeader(r)
	if err != nil {
		return err
	}
	return readBody(r, n, v)
}

// readHeader reads the 4-byte length prefix of the next frame and validates
// it against the frame limit. Splitting the header from the body lets the
// server apply a long idle deadline to the wait for the header and a short
// read deadline to the body: a peer may stay silent between requests for as
// long as the idle budget allows, but once it starts a frame it has to
// finish it promptly.
func readHeader(r io.Reader) (uint32, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	return n, nil
}

// readBody reads an n-byte frame body into v.
func readBody(r io.Reader, n uint32, v interface{}) error {
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// ErrRemote wraps server-side failures surfaced to the client.
var ErrRemote = errors.New("wire: remote error")

// ErrOverloaded wraps retryable rejections: the server shed the request
// before executing any of it (admission queue full, connection cap, drain).
// It satisfies errors.Is(err, ErrRemote) too, so existing error handling
// keeps working; clients that distinguish it may retry with backoff.
var ErrOverloaded = fmt.Errorf("%w: overloaded", ErrRemote)

// roundTrip sends a request and reads the response on an established
// connection.
func roundTrip(conn net.Conn, req *Request) (*Response, error) {
	if err := WriteMsg(conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadMsg(conn, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		if resp.Retryable {
			return &resp, fmt.Errorf("%w: %s", ErrOverloaded, resp.Error)
		}
		return &resp, fmt.Errorf("%w: %s", ErrRemote, resp.Error)
	}
	return &resp, nil
}
