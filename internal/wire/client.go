package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"prima/internal/access/addr"
	"prima/internal/obs"
)

// Client retry defaults; a ClientConfig field of 0 selects these, a
// negative value disables the knob.
const (
	DefaultMaxRetries  = 4
	DefaultBackoffBase = 5 * time.Millisecond
	DefaultBackoffMax  = 500 * time.Millisecond
	DefaultDialTimeout = 5 * time.Second
)

// ClientConfig tunes the client's resilience behavior.
type ClientConfig struct {
	// MaxRetries is how many times a retryable failure is retried on top
	// of the first attempt (0 = default, negative = never retry).
	MaxRetries int
	// BackoffBase is the first retry delay; it doubles per attempt up to
	// BackoffMax, with jitter so a fleet of shed clients does not return
	// in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// OpTimeout bounds each frame read/write of one attempt (0 = no
	// deadline — checkout streams can legitimately run long).
	OpTimeout time.Duration
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// Dialer overrides connection establishment — the injection point for
	// conn-level faults (FaultPlan.Conn) and custom transports.
	Dialer func(address string) (net.Conn, error)
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	return c
}

// Client is a workstation-side connection to a PRIMA server with an object
// buffer for checked-out molecules. It survives an unreliable link: a dead
// connection is re-established with exponential backoff, idempotent
// operations (ping, stats, checkout, atom fetch) are retried transparently,
// and operations the server sheds under load are retried too — a shed
// request provably executed nothing, so even Exec and Checkin resend after
// one. A transport failure during Exec/Checkin is NOT retried: the outcome
// on the server is unknown and replaying DML could double-apply it.
type Client struct {
	mu         sync.Mutex
	conn       net.Conn
	address    string
	cfg        ClientConfig
	rng        *rand.Rand
	roundTrips int
	retries    uint64 // retried attempts (any reason)
	reconnects uint64 // successful re-dials after a lost conn

	// Object buffer: checked-out atoms by address, plus recorded local
	// changes awaiting checkin.
	buffer  map[uint64]AtomJSON
	pending []string // MQL statements to run at checkin
}

// Dial connects to a PRIMA server with default resilience configuration.
func Dial(address string) (*Client, error) {
	return DialConfig(address, ClientConfig{})
}

// DialConfig connects with explicit retry/backoff knobs.
func DialConfig(address string, cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	c := &Client{
		address: address,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		buffer:  map[uint64]AtomJSON{},
	}
	conn, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	c.conn = conn
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	if c.cfg.Dialer != nil {
		return c.cfg.Dialer(c.address)
	}
	return net.DialTimeout("tcp", c.address, c.cfg.DialTimeout)
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// RoundTrips returns how many request/response cycles this client has
// performed — the communication-overhead measure of experiment A6.
func (c *Client) RoundTrips() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTrips
}

// Retries returns how many attempts were retried (after shed responses or
// transport failures) and how many times the connection was re-established.
func (c *Client) Retries() (retries, reconnects uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries, c.reconnects
}

// ensureConn re-establishes the connection if a previous attempt lost it.
func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := c.dial()
	if err != nil {
		return fmt.Errorf("wire: redial: %w", err)
	}
	c.conn = conn
	c.reconnects++
	return nil
}

// dropConn discards a connection whose state is unknown.
func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// armDeadline applies the per-attempt frame deadline.
func (c *Client) armDeadline() {
	if c.cfg.OpTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.cfg.OpTimeout))
	}
}

// backoffSleep sleeps the exponential-backoff delay for the given retry
// (1-based) with half jitter: d/2 + rand(d/2).
func (c *Client) backoffSleep(retry int) {
	d := c.cfg.BackoffBase << (retry - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// do runs one request with the retry policy. Idempotent requests retry on
// any failure; non-idempotent ones only when the server answered with a
// retryable shed (which guarantees nothing executed). stream collects
// continuation frames when non-nil (checkout).
func (c *Client) do(req *Request, idempotent bool) (*Response, []MoleculeJSON, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries++
			// Sleep off the lock-free? Holding mu during backoff is fine:
			// the client is a session handle, ops on it are serialized.
			c.backoffSleep(attempt)
		}
		if err := c.ensureConn(); err != nil {
			lastErr = err
			if attempt >= c.cfg.MaxRetries {
				return nil, nil, lastErr
			}
			continue
		}
		resp, mols, err := c.attempt(req)
		if err == nil {
			return resp, mols, nil
		}
		lastErr = err
		switch {
		case errors.Is(err, ErrOverloaded):
			// Server answered: nothing executed, conn intact, retry —
			// regardless of idempotency.
		case errors.Is(err, ErrRemote):
			// Definitive remote failure (bad MQL, missing atom): the
			// request executed and failed; retrying would repeat it.
			return resp, nil, err
		default:
			// Transport failure: connection state unknown.
			c.dropConn()
			if !idempotent {
				return nil, nil, fmt.Errorf("wire: connection failed mid-request, outcome unknown (not retrying non-idempotent op): %w", err)
			}
		}
		if attempt >= c.cfg.MaxRetries {
			return nil, nil, lastErr
		}
	}
}

// attempt performs one round trip (plus stream reassembly for checkout) on
// the current connection.
func (c *Client) attempt(req *Request) (*Response, []MoleculeJSON, error) {
	c.roundTrips++
	c.armDeadline()
	resp, err := roundTrip(c.conn, req)
	if err != nil {
		return resp, nil, err
	}
	if req.Op != OpCheckout {
		return resp, nil, nil
	}
	mols := resp.Molecules
	for resp.More {
		var next Response
		c.armDeadline()
		if err := ReadMsg(c.conn, &next); err != nil {
			return nil, nil, err
		}
		if !next.OK {
			if next.Retryable {
				return &next, nil, fmt.Errorf("%w: %s", ErrOverloaded, next.Error)
			}
			return &next, nil, fmt.Errorf("%w: %s", ErrRemote, next.Error)
		}
		mols = append(mols, next.Molecules...)
		resp = &next
	}
	return resp, mols, nil
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	_, _, err := c.do(&Request{Op: OpPing}, true)
	return err
}

// Exec runs an MQL script on the server. It is not retried after a
// transport failure — the script may or may not have executed — but a shed
// response (nothing executed) is.
func (c *Client) Exec(src string) (*Response, error) {
	resp, _, err := c.do(&Request{Op: OpExec, MQL: src}, false)
	return resp, err
}

// Checkout runs a SELECT and loads the resulting molecules into the local
// object buffer with a single round trip ("large buffer sizes may help to
// perform most of the DBMS work locally, after the required molecules are
// transferred to an 'object buffer'"). The server streams the result in
// chunked frames; the stream is reassembled here transparently, so large
// sets arrive without a server-side buffer and still cost one round trip.
// A stream cut mid-way by a transport fault is retried from the start
// (reads are idempotent); partially received molecules are discarded.
func (c *Client) Checkout(query string) ([]MoleculeJSON, error) {
	mols, _, err := c.CheckoutTraced(query)
	return mols, err
}

// CheckoutTraced is Checkout returning the server-side trace ID of the
// request as well (empty when the server did not trace it). The ID keys the
// server's retained span trees: quote it to Slow or /debug/slow to see where
// the request's time went.
func (c *Client) CheckoutTraced(query string) ([]MoleculeJSON, string, error) {
	resp, mols, err := c.do(&Request{Op: OpCheckout, MQL: query}, true)
	if err != nil {
		return nil, "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range mols {
		for _, a := range m.Atoms {
			c.buffer[a.Addr] = a
		}
	}
	return mols, resp.TraceID, nil
}

// Slow fetches the server's retained slow-query traces, newest first, in one
// idempotent round trip. n > 0 bounds the count; 0 returns the whole ring.
func (c *Client) Slow(n int) ([]*obs.TraceSnapshot, error) {
	resp, _, err := c.do(&Request{Op: OpSlow, N: n}, true)
	if err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// Local returns a buffered atom without any server communication.
func (c *Client) Local(addr uint64) (AtomJSON, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.buffer[addr]
	return a, ok
}

// Stats fetches the server's cache-hierarchy and wire-health counters in
// one round trip.
func (c *Client) Stats() (*StatsJSON, error) {
	resp, _, err := c.do(&Request{Op: OpStats}, true)
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("%w: stats response without payload", ErrRemote)
	}
	return resp.Stats, nil
}

// Metrics fetches the server's full metrics snapshot — every counter, gauge
// and per-stage latency histogram — in one idempotent round trip.
func (c *Client) Metrics() (*obs.MetricsSnapshot, error) {
	resp, _, err := c.do(&Request{Op: OpStats}, true)
	if err != nil {
		return nil, err
	}
	if resp.Metrics == nil {
		return nil, fmt.Errorf("%w: stats response without metrics payload", ErrRemote)
	}
	return resp.Metrics, nil
}

// FetchAtom retrieves one atom from the server — the chatty alternative to
// Checkout used as the baseline in experiment A6.
func (c *Client) FetchAtom(a uint64) (AtomJSON, error) {
	resp, _, err := c.do(&Request{Op: OpGetAtom, Addr: a}, true)
	if err != nil {
		return AtomJSON{}, err
	}
	return *resp.Atom, nil
}

// StageModify records a local modification of a buffered atom; it is sent
// to the server at Checkin time. The target atom must be in the object
// buffer (a prior Checkout put it there): staging against an address that
// was never checked out is almost certainly a caller bug, and silently
// guessing a MODIFY target would corrupt somebody else's atom.
func (c *Client) StageModify(typeName string, a uint64, attr, valueLiteral string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	buffered, ok := c.buffer[a]
	if !ok {
		return fmt.Errorf("wire: StageModify %s %v: atom not in object buffer (check it out first)", typeName, addr.LogicalAddr(a))
	}
	if buffered.Type != typeName {
		return fmt.Errorf("wire: StageModify: buffered atom %v is a %s, not a %s", addr.LogicalAddr(a), buffered.Type, typeName)
	}
	buffered.Values[attr] = valueLiteral
	c.buffer[a] = buffered
	// Address literal keys the MODIFY to exactly this atom; the addr
	// package owns the type/sequence layout of logical addresses.
	la := addr.LogicalAddr(a)
	c.pending = append(c.pending,
		fmt.Sprintf("MODIFY %s SET %s = %s WHERE %s = @%d.%d",
			typeName, attr, valueLiteral, identAttrGuess(typeName), la.Type(), la.Seq()))
	return nil
}

// identAttrGuess derives the IDENTIFIER attribute name used in staged
// statements; PRIMA schemas conventionally call it <type>_id or id.
func identAttrGuess(typeName string) string { return typeName + "_id" }

// Pending returns the staged checkin statements.
func (c *Client) Pending() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.pending...)
}

// Checkin sends all staged modifications in one round trip and clears the
// buffer ("modified or newly created molecules are moved back to PRIMA at
// commit time"). Like Exec, a checkin whose connection died mid-request is
// not retried; the staged statements are re-queued so the caller can
// Checkin again once the outcome is known.
func (c *Client) Checkin() (*Response, error) {
	c.mu.Lock()
	stmts := c.pending
	c.pending = nil
	c.mu.Unlock()
	if len(stmts) == 0 {
		return &Response{OK: true, Message: "nothing to check in"}, nil
	}
	src := ""
	for _, s := range stmts {
		src += s + ";\n"
	}
	resp, _, err := c.do(&Request{Op: OpExec, MQL: src}, false)
	if err != nil && !errors.Is(err, ErrRemote) {
		// Transport failure with unknown outcome: keep the statements
		// staged for an explicit re-checkin decision.
		c.mu.Lock()
		c.pending = append(stmts, c.pending...)
		c.mu.Unlock()
	}
	return resp, err
}
