package wire

import (
	"fmt"
	"net"
	"sync"
)

// Client is a workstation-side connection to a PRIMA server with an object
// buffer for checked-out molecules.
type Client struct {
	mu         sync.Mutex
	conn       net.Conn
	roundTrips int

	// Object buffer: checked-out atoms by address, plus recorded local
	// changes awaiting checkin.
	buffer  map[uint64]AtomJSON
	pending []string // MQL statements to run at checkin
}

// Dial connects to a PRIMA server.
func Dial(address string) (*Client, error) {
	conn, err := net.Dial("tcp", address)
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	return &Client{conn: conn, buffer: map[uint64]AtomJSON{}}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// RoundTrips returns how many request/response cycles this client has
// performed — the communication-overhead measure of experiment A6.
func (c *Client) RoundTrips() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTrips
}

func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roundTrips++
	return roundTrip(c.conn, req)
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Op: OpPing})
	return err
}

// Exec runs an MQL script on the server.
func (c *Client) Exec(src string) (*Response, error) {
	return c.call(&Request{Op: OpExec, MQL: src})
}

// Checkout runs a SELECT and loads the resulting molecules into the local
// object buffer with a single round trip ("large buffer sizes may help to
// perform most of the DBMS work locally, after the required molecules are
// transferred to an 'object buffer'"). The server streams the result in
// chunked frames; the stream is reassembled here transparently, so large
// sets arrive without a server-side buffer and still cost one round trip.
func (c *Client) Checkout(query string) ([]MoleculeJSON, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roundTrips++
	resp, err := roundTrip(c.conn, &Request{Op: OpCheckout, MQL: query})
	if err != nil {
		return nil, err
	}
	mols := resp.Molecules
	for resp.More {
		var next Response
		if err := ReadMsg(c.conn, &next); err != nil {
			return nil, err
		}
		if !next.OK {
			return nil, fmt.Errorf("%w: %s", ErrRemote, next.Error)
		}
		mols = append(mols, next.Molecules...)
		resp = &next
	}
	for _, m := range mols {
		for _, a := range m.Atoms {
			c.buffer[a.Addr] = a
		}
	}
	return mols, nil
}

// Local returns a buffered atom without any server communication.
func (c *Client) Local(addr uint64) (AtomJSON, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.buffer[addr]
	return a, ok
}

// Stats fetches the server's cache-hierarchy counters (decoded-atom cache,
// buffer pool, plan cache) in one round trip.
func (c *Client) Stats() (*StatsJSON, error) {
	resp, err := c.call(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("%w: stats response without payload", ErrRemote)
	}
	return resp.Stats, nil
}

// FetchAtom retrieves one atom from the server — the chatty alternative to
// Checkout used as the baseline in experiment A6.
func (c *Client) FetchAtom(addr uint64) (AtomJSON, error) {
	resp, err := c.call(&Request{Op: OpGetAtom, Addr: addr})
	if err != nil {
		return AtomJSON{}, err
	}
	return *resp.Atom, nil
}

// StageModify records a local modification of a buffered atom; it is sent
// to the server at Checkin time.
func (c *Client) StageModify(typeName string, addr uint64, attr, valueLiteral string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a, ok := c.buffer[addr]; ok {
		a.Values[attr] = valueLiteral
		c.buffer[addr] = a
	}
	// Address literal keys the MODIFY to exactly this atom.
	c.pending = append(c.pending,
		fmt.Sprintf("MODIFY %s SET %s = %s WHERE %s = @%d.%d",
			typeName, attr, valueLiteral, identAttrGuess(typeName), addr>>48, addr&0xFFFFFFFFFFFF))
}

// identAttrGuess derives the IDENTIFIER attribute name used in staged
// statements; PRIMA schemas conventionally call it <type>_id or id.
func identAttrGuess(typeName string) string { return typeName + "_id" }

// Pending returns the staged checkin statements.
func (c *Client) Pending() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.pending...)
}

// Checkin sends all staged modifications in one round trip and clears the
// buffer ("modified or newly created molecules are moved back to PRIMA at
// commit time").
func (c *Client) Checkin() (*Response, error) {
	c.mu.Lock()
	stmts := c.pending
	c.pending = nil
	c.mu.Unlock()
	if len(stmts) == 0 {
		return &Response{OK: true, Message: "nothing to check in"}, nil
	}
	src := ""
	for _, s := range stmts {
		src += s + ";\n"
	}
	return c.call(&Request{Op: OpExec, MQL: src})
}
