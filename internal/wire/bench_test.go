package wire

import (
	"fmt"
	"testing"

	"prima"
)

// benchServer starts an in-memory server (WAL optional) with a minimal
// schema, without the brepgen scene the functional tests use: the wire
// round-trip benchmarks measure protocol cost, not scene assembly.
func benchServer(b *testing.B, wal bool) *Server {
	b.Helper()
	db, err := prima.Open(prima.Config{WAL: wal})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(`CREATE ATOM_TYPE item (item_id: IDENTIFIER, n: INTEGER)`); err != nil {
		b.Fatal(err)
	}
	srv, err := Serve(db, "")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv
}

// benchWirePing measures the smallest possible round trip: one request
// frame, one response frame, no MQL — the floor for every wire op, and the
// gate for per-op instrumentation overhead in serveRequest.
func benchWirePing(b *testing.B) {
	srv := benchServer(b, false)
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Ping(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWireExecInsert measures a full DML round trip — parse, plan, apply,
// WAL append — over the wire, one insert per op.
func benchWireExecInsert(b *testing.B) {
	srv := benchServer(b, true)
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO item (n) VALUES (%d)", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWireExecSelect measures a full read round trip — parse or plan-cache
// hit, assemble, batched decode — over the wire. It walks every
// trace-instrumented code path (executeScript, runSelect, getBatch) with
// tracing off, so it is the gate for the disabled-tracing overhead: each
// instrumentation site must cost one nil check.
func benchWireExecSelect(b *testing.B) {
	srv := benchServer(b, false)
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`INSERT INTO item (n) VALUES (1), (2), (3), (4), (5), (6), (7), (8)`); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Exec("SELECT ALL FROM item WHERE n > 4"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireRoundTrip(b *testing.B) {
	b.Run("ping", benchWirePing)
	b.Run("exec_insert_wal", benchWireExecInsert)
	b.Run("exec_select", benchWireExecSelect)
}
