package vlsigen

import (
	"testing"

	"prima/internal/access"
	"prima/internal/core"
)

func TestBuildNetlist(t *testing.T) {
	sys, err := access.Open(access.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	if _, err := e.ExecuteScript(SchemaDDL); err != nil {
		t.Fatalf("schema: %v", err)
	}
	nl, err := Build(e, 20, 3, 8, 42)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(nl.Cells) != 20 || len(nl.Pins) != 60 || len(nl.Nets) != 8 {
		t.Fatalf("sizes: %d/%d/%d", len(nl.Cells), len(nl.Pins), len(nl.Nets))
	}
	// Every pin links a cell and a net, both directions.
	for _, pa := range nl.Pins {
		at, err := sys.Get(pa, nil)
		if err != nil {
			t.Fatal(err)
		}
		cv, _ := at.Value("cell")
		nv, _ := at.Value("net")
		if cv.IsNull() || nv.IsNull() {
			t.Fatalf("pin %v dangling", pa)
		}
		cell, err := sys.Get(cv.A, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := cell.Value("pins"); !v.ContainsRef(pa) {
			t.Fatal("cell missing back-reference to pin")
		}
		net, err := sys.Get(nv.A, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := net.Value("pins"); !v.ContainsRef(pa) {
			t.Fatal("net missing back-reference to pin")
		}
	}
	// Determinism: same seed, same wiring.
	sys2, _ := access.Open(access.Config{})
	e2 := core.New(sys2)
	if _, err := e2.ExecuteScript(SchemaDDL); err != nil {
		t.Fatal(err)
	}
	nl2, err := Build(e2, 20, 3, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nl.Pins {
		a1, _ := sys.Get(nl.Pins[i], nil)
		a2, _ := sys2.Get(nl2.Pins[i], nil)
		v1, _ := a1.Value("net")
		v2, _ := a2.Value("net")
		if v1.A.Seq() != v2.A.Seq() {
			t.Fatal("same seed produced different netlists")
		}
	}
}
