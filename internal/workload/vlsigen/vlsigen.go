// Package vlsigen generates VLSI circuit design workloads — the first of
// the three application areas whose investigation motivated PRIMA (§1,
// [HHLM87]). A netlist is a genuinely meshed structure: cells carry pins,
// pins connect to nets, and a net joins many pins of many cells (n:m), so
// traversal must work symmetrically (cell→net and net→cell).
package vlsigen

import (
	"fmt"
	"math/rand"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/core"
)

// SchemaDDL defines cells, pins and nets with symmetric associations.
const SchemaDDL = `
CREATE ATOM_TYPE cell
  ( cell_id : IDENTIFIER,
    name    : CHAR_VAR,
    kind    : CHAR_VAR,
    pins    : SET_OF (REF_TO (pin.cell)) (1,VAR) );

CREATE ATOM_TYPE pin
  ( pin_id : IDENTIFIER,
    pos    : INTEGER,
    cell   : REF_TO (cell.pins),
    net    : REF_TO (net.pins) );

CREATE ATOM_TYPE net
  ( net_id : IDENTIFIER,
    signal : CHAR_VAR,
    pins   : SET_OF (REF_TO (pin.net)) );

DEFINE MOLECULE TYPE cell_obj FROM cell - pin;
DEFINE MOLECULE TYPE net_obj  FROM net - pin;
`

// Netlist holds generated addresses.
type Netlist struct {
	Cells []addr.LogicalAddr
	Nets  []addr.LogicalAddr
	Pins  []addr.LogicalAddr
}

// Build generates cells pins-per-cell pins each and nets wiring them
// randomly but deterministically (seeded).
func Build(e *core.Engine, cells, pinsPerCell, nets int, seed int64) (*Netlist, error) {
	sys := e.System()
	rng := rand.New(rand.NewSource(seed))
	nl := &Netlist{}

	for i := 0; i < nets; i++ {
		a, err := sys.Insert("net", map[string]atom.Value{
			"signal": atom.Str(fmt.Sprintf("sig%d", i)),
		})
		if err != nil {
			return nil, fmt.Errorf("vlsigen: net %d: %w", i, err)
		}
		nl.Nets = append(nl.Nets, a)
	}
	kinds := []string{"nand", "nor", "inv", "dff", "mux"}
	for i := 0; i < cells; i++ {
		c, err := sys.Insert("cell", map[string]atom.Value{
			"name": atom.Str(fmt.Sprintf("u%d", i)),
			"kind": atom.Str(kinds[i%len(kinds)]),
		})
		if err != nil {
			return nil, fmt.Errorf("vlsigen: cell %d: %w", i, err)
		}
		nl.Cells = append(nl.Cells, c)
		for p := 0; p < pinsPerCell; p++ {
			net := nl.Nets[rng.Intn(len(nl.Nets))]
			pin, err := sys.Insert("pin", map[string]atom.Value{
				"pos":  atom.Int(int64(p)),
				"cell": atom.Ref(c),
				"net":  atom.Ref(net),
			})
			if err != nil {
				return nil, fmt.Errorf("vlsigen: pin: %w", err)
			}
			nl.Pins = append(nl.Pins, pin)
		}
	}
	return nl, nil
}
