package brepgen

import (
	"testing"

	"prima/internal/access"
	"prima/internal/core"
)

func newEngine(t testing.TB) *core.Engine {
	t.Helper()
	sys, err := access.Open(access.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	if err := InstallSchema(e); err != nil {
		t.Fatalf("InstallSchema: %v", err)
	}
	return e
}

// TestCubeTopology verifies the generated BREP is a genuine cube: counts,
// sharing degrees, and referential closure.
func TestCubeTopology(t *testing.T) {
	e := newEngine(t)
	c, err := BuildCube(e, 1, 1, 0, 2)
	if err != nil {
		t.Fatalf("BuildCube: %v", err)
	}
	if len(c.Faces) != CubeFaces || len(c.Edges) != CubeEdges || len(c.Points) != CubePoints {
		t.Fatalf("counts: %d/%d/%d", len(c.Faces), len(c.Edges), len(c.Points))
	}
	sys := e.System()

	// Every edge is shared by exactly 2 faces; every point lies on 3 edges.
	for _, ea := range c.Edges {
		at, err := sys.Get(ea, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := at.Value("face"); v.Len() != 2 {
			t.Fatalf("edge %v on %d faces, want 2", ea, v.Len())
		}
		if v, _ := at.Value("boundary"); v.Len() != 2 {
			t.Fatalf("edge %v has %d endpoints", ea, v.Len())
		}
	}
	for _, pa := range c.Points {
		at, err := sys.Get(pa, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := at.Value("line"); v.Len() != 3 {
			t.Fatalf("point %v on %d edges, want 3", pa, v.Len())
		}
		if v, _ := at.Value("face"); v.Len() != 3 {
			t.Fatalf("point %v on %d faces, want 3", pa, v.Len())
		}
	}
	// Cardinality restrictions of Fig. 2.3 hold for the populated scene.
	if err := sys.CheckIntegrity(""); err != nil {
		t.Fatalf("CheckIntegrity: %v", err)
	}
	// Solid links to its brep and back.
	sat, _ := sys.Get(c.Solid, nil)
	if v, _ := sat.Value("brep"); !v.ContainsRef(c.Brep) {
		t.Fatal("solid does not reference its brep")
	}
	bat, _ := sys.Get(c.Brep, nil)
	if v, _ := bat.Value("solid"); !v.ContainsRef(c.Solid) {
		t.Fatal("brep back-reference missing")
	}
}

func TestBuildSceneAndAssembly(t *testing.T) {
	e := newEngine(t)
	cubes, err := BuildScene(e, 3)
	if err != nil {
		t.Fatalf("BuildScene: %v", err)
	}
	if len(cubes) != 3 {
		t.Fatalf("cubes = %d", len(cubes))
	}
	if e.System().Count("point") != 3*CubePoints {
		t.Fatalf("points = %d", e.System().Count("point"))
	}

	root, count, err := BuildAssembly(e, 100, 3, 3)
	if err != nil {
		t.Fatalf("BuildAssembly: %v", err)
	}
	// 1 + 3 + 9 + 27 = 40.
	if count != 40 {
		t.Fatalf("assembly count = %d, want 40", count)
	}
	at, err := e.System().Get(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := at.Value("sub"); v.Len() != 3 {
		t.Fatalf("root has %d children", v.Len())
	}
}
