// Package brepgen generates boundary-representation (BREP) workloads after
// Fig. 2.3 of the paper: solids with breps whose faces, edges and points
// form real cube topology (每 edge shared by two faces, each point by three
// faces — the n:m relationships that motivate the MAD model), plus
// recursive solid assemblies for piece_list experiments.
package brepgen

import (
	"fmt"
	"math/bits"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/core"
)

// SchemaDDL is the Fig. 2.3 schema in MAD-DDL (HULL_DIM(3) is lowered to
// ARRAY_OF(REAL,6) per the documented substitution).
const SchemaDDL = `
CREATE ATOM_TYPE solid
  ( solid_id    : IDENTIFIER,
    solid_no    : INTEGER,
    description : CHAR_VAR,
    sub         : SET_OF (REF_TO (solid.super)),
    super       : SET_OF (REF_TO (solid.sub)),
    brep        : REF_TO (brep.solid) )
  KEYS_ARE (solid_no);

CREATE ATOM_TYPE brep
  ( brep_id : IDENTIFIER,
    brep_no : INTEGER,
    hull    : HULL_DIM(3),
    solid   : REF_TO (solid.brep),
    faces   : SET_OF (REF_TO (face.brep)) (4,VAR),
    edges   : SET_OF (REF_TO (edge.brep)) (6,VAR),
    points  : SET_OF (REF_TO (point.brep)) (4,VAR) )
  KEYS_ARE (brep_no);

CREATE ATOM_TYPE face
  ( face_id    : IDENTIFIER,
    square_dim : REAL,
    border     : SET_OF (REF_TO (edge.face)) (3,VAR),
    crosspoint : SET_OF (REF_TO (point.face)) (3,VAR),
    brep       : REF_TO (brep.faces) );

CREATE ATOM_TYPE edge
  ( edge_id  : IDENTIFIER,
    length   : REAL,
    boundary : SET_OF (REF_TO (point.line)) (2,VAR),
    face     : SET_OF (REF_TO (face.border)) (2,VAR),
    brep     : REF_TO (brep.edges) );

CREATE ATOM_TYPE point
  ( point_id  : IDENTIFIER,
    placement : RECORD
                  x_coord, y_coord, z_coord : REAL,
                END,
    line : SET_OF (REF_TO (edge.boundary)) (1,VAR),
    face : SET_OF (REF_TO (face.crosspoint)) (1,VAR),
    brep : REF_TO (brep.points) );

DEFINE MOLECULE TYPE edge_obj   FROM edge - point;
DEFINE MOLECULE TYPE face_obj   FROM face - edge_obj;
DEFINE MOLECULE TYPE brep_obj   FROM brep - face_obj;
DEFINE MOLECULE TYPE piece_list FROM solid.sub - solid (RECURSIVE);
`

// Cube atom counts.
const (
	CubeFaces  = 6
	CubeEdges  = 12
	CubePoints = 8
	// CubeAtoms is the molecule size of brep-face-edge-point for one cube
	// (1 brep + faces + edges + points).
	CubeAtoms = 1 + CubeFaces + CubeEdges + CubePoints
)

// InstallSchema executes the Fig. 2.3 DDL.
func InstallSchema(e *core.Engine) error {
	_, err := e.ExecuteScript(SchemaDDL)
	return err
}

// Cube holds the addresses of one generated cube.
type Cube struct {
	Solid  addr.LogicalAddr
	Brep   addr.LogicalAddr
	Faces  []addr.LogicalAddr
	Edges  []addr.LogicalAddr
	Points []addr.LogicalAddr
}

// BuildCube inserts one unit cube at origin offset off with the given solid
// and brep numbers. Edge lengths are size; face areas size².
func BuildCube(e *core.Engine, solidNo, brepNo int, off, size float64) (*Cube, error) {
	sys := e.System()
	c := &Cube{}

	// 8 corner points, indexed by bit pattern zyx.
	for i := 0; i < 8; i++ {
		x := off + size*float64(i&1)
		y := off + size*float64((i>>1)&1)
		z := off + size*float64((i>>2)&1)
		a, err := sys.Insert("point", map[string]atom.Value{
			"placement": atom.Record(atom.Real(x), atom.Real(y), atom.Real(z)),
		})
		if err != nil {
			return nil, fmt.Errorf("brepgen: point %d: %w", i, err)
		}
		c.Points = append(c.Points, a)
	}

	// 12 edges: vertex pairs differing in exactly one bit.
	edgeIdx := map[[2]int]int{}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if bits.OnesCount(uint(i^j)) != 1 {
				continue
			}
			a, err := sys.Insert("edge", map[string]atom.Value{
				"length":   atom.Real(size),
				"boundary": atom.RefSet(c.Points[i], c.Points[j]),
			})
			if err != nil {
				return nil, fmt.Errorf("brepgen: edge %d-%d: %w", i, j, err)
			}
			edgeIdx[[2]int{i, j}] = len(c.Edges)
			c.Edges = append(c.Edges, a)
		}
	}

	// 6 faces: for each axis and side, the 4 edges inside that plane.
	for axis := 0; axis < 3; axis++ {
		for side := 0; side < 2; side++ {
			var border []addr.LogicalAddr
			var corners []addr.LogicalAddr
			for pair, idx := range edgeIdx {
				i, j := pair[0], pair[1]
				if (i>>axis)&1 == side && (j>>axis)&1 == side {
					border = append(border, c.Edges[idx])
				}
			}
			for i := 0; i < 8; i++ {
				if (i>>axis)&1 == side {
					corners = append(corners, c.Points[i])
				}
			}
			a, err := sys.Insert("face", map[string]atom.Value{
				"square_dim": atom.Real(size * size),
				"border":     atom.RefSet(border...),
				"crosspoint": atom.RefSet(corners...),
			})
			if err != nil {
				return nil, fmt.Errorf("brepgen: face a%ds%d: %w", axis, side, err)
			}
			c.Faces = append(c.Faces, a)
		}
	}

	// The brep ties everything together.
	hull := atom.Array(
		atom.Real(off), atom.Real(off+size),
		atom.Real(off), atom.Real(off+size),
		atom.Real(off), atom.Real(off+size),
	)
	brep, err := sys.Insert("brep", map[string]atom.Value{
		"brep_no": atom.Int(int64(brepNo)),
		"hull":    hull,
		"faces":   atom.RefSet(c.Faces...),
		"edges":   atom.RefSet(c.Edges...),
		"points":  atom.RefSet(c.Points...),
	})
	if err != nil {
		return nil, fmt.Errorf("brepgen: brep: %w", err)
	}
	c.Brep = brep

	solid, err := sys.Insert("solid", map[string]atom.Value{
		"solid_no":    atom.Int(int64(solidNo)),
		"description": atom.Str(fmt.Sprintf("cube %d", solidNo)),
		"brep":        atom.Ref(brep),
	})
	if err != nil {
		return nil, fmt.Errorf("brepgen: solid: %w", err)
	}
	c.Solid = solid
	return c, nil
}

// BuildScene creates n cubes with solid/brep numbers 1..n and returns them.
func BuildScene(e *core.Engine, n int) ([]*Cube, error) {
	cubes := make([]*Cube, 0, n)
	for i := 1; i <= n; i++ {
		c, err := BuildCube(e, i, i, float64(i)*10, 1+float64(i%7))
		if err != nil {
			return nil, err
		}
		cubes = append(cubes, c)
	}
	return cubes, nil
}

// BuildAssembly creates a recursive solid assembly: a complete tree of the
// given depth and branching factor connected through sub/super (the
// piece_list structure). Solids are numbered breadth-first starting at
// baseNo; the root gets baseNo. It returns the root address and the total
// number of solids created.
func BuildAssembly(e *core.Engine, baseNo, depth, branching int) (addr.LogicalAddr, int, error) {
	sys := e.System()
	no := baseNo
	var build func(level int) (addr.LogicalAddr, error)
	count := 0
	build = func(level int) (addr.LogicalAddr, error) {
		myNo := no
		no++
		count++
		a, err := sys.Insert("solid", map[string]atom.Value{
			"solid_no":    atom.Int(int64(myNo)),
			"description": atom.Str(fmt.Sprintf("assembly level %d", level)),
		})
		if err != nil {
			return 0, err
		}
		if level < depth {
			var subs []addr.LogicalAddr
			for i := 0; i < branching; i++ {
				c, err := build(level + 1)
				if err != nil {
					return 0, err
				}
				subs = append(subs, c)
			}
			if err := sys.Update(a, map[string]atom.Value{"sub": atom.RefSet(subs...)}); err != nil {
				return 0, err
			}
		}
		return a, nil
	}
	root, err := build(0)
	if err != nil {
		return 0, 0, fmt.Errorf("brepgen: assembly: %w", err)
	}
	return root, count, nil
}
