package mapgen

import (
	"testing"

	"prima/internal/access"
	"prima/internal/core"
)

func TestBuildWorld(t *testing.T) {
	sys, err := access.Open(access.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	if _, err := e.ExecuteScript(SchemaDDL); err != nil {
		t.Fatalf("schema: %v", err)
	}
	w, err := Build(e, 2, 3, 5, 9)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(w.Maps) != 2 || len(w.Regions) != 6 || len(w.Sites) != 30 {
		t.Fatalf("sizes: %d/%d/%d", len(w.Maps), len(w.Regions), len(w.Sites))
	}
	// Coordinates are in [0,100) and sites link back to regions.
	for _, sa := range w.Sites {
		at, err := sys.Get(sa, nil)
		if err != nil {
			t.Fatal(err)
		}
		x, _ := at.Value("x")
		y, _ := at.Value("y")
		if x.F < 0 || x.F >= 100 || y.F < 0 || y.F >= 100 {
			t.Fatalf("site %v out of bounds (%g,%g)", sa, x.F, y.F)
		}
		rv, _ := at.Value("region")
		region, err := sys.Get(rv.A, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := region.Value("sites"); !v.ContainsRef(sa) {
			t.Fatal("region missing back-reference to site")
		}
	}
	// The map_obj molecule covers the whole hierarchy.
	res, err := e.ExecuteScript(`SELECT ALL FROM map_obj`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Molecules) != 2 {
		t.Fatalf("map molecules = %d", len(res[0].Molecules))
	}
	if got := len(res[0].Molecules[0].AtomsOf("site")); got != 15 {
		t.Fatalf("sites per map molecule = %d, want 15", got)
	}
}
