// Package mapgen generates map-handling workloads — the third motivating
// application area (§1): maps composed of regions whose borders are
// polylines over located points. Coordinates drive the multidimensional
// (grid) access paths.
package mapgen

import (
	"fmt"
	"math/rand"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/core"
)

// SchemaDDL defines maps, regions and sites. Sites carry coordinates as
// plain REAL attributes so grid access paths apply.
const SchemaDDL = `
CREATE ATOM_TYPE map
  ( map_id  : IDENTIFIER,
    name    : CHAR_VAR,
    scale   : INTEGER,
    regions : SET_OF (REF_TO (region.map)) );

CREATE ATOM_TYPE region
  ( region_id : IDENTIFIER,
    name      : CHAR_VAR,
    kind      : CHAR_VAR,
    map       : REF_TO (map.regions),
    sites     : SET_OF (REF_TO (site.region)) );

CREATE ATOM_TYPE site
  ( site_id : IDENTIFIER,
    name    : CHAR_VAR,
    x       : REAL,
    y       : REAL,
    pop     : INTEGER,
    region  : REF_TO (region.sites) );

DEFINE MOLECULE TYPE map_obj FROM map - region - site;
`

// World holds generated addresses.
type World struct {
	Maps    []addr.LogicalAddr
	Regions []addr.LogicalAddr
	Sites   []addr.LogicalAddr
}

// Build creates maps with regionsPerMap regions of sitesPerRegion sites at
// deterministic pseudo-random coordinates in [0,100)².
func Build(e *core.Engine, maps, regionsPerMap, sitesPerRegion int, seed int64) (*World, error) {
	sys := e.System()
	rng := rand.New(rand.NewSource(seed))
	w := &World{}
	kinds := []string{"urban", "forest", "water", "farmland"}
	for m := 0; m < maps; m++ {
		ma, err := sys.Insert("map", map[string]atom.Value{
			"name":  atom.Str(fmt.Sprintf("sheet-%d", m)),
			"scale": atom.Int(int64(25000 * (m + 1))),
		})
		if err != nil {
			return nil, fmt.Errorf("mapgen: map %d: %w", m, err)
		}
		w.Maps = append(w.Maps, ma)
		for r := 0; r < regionsPerMap; r++ {
			re, err := sys.Insert("region", map[string]atom.Value{
				"name": atom.Str(fmt.Sprintf("r%d-%d", m, r)),
				"kind": atom.Str(kinds[(m+r)%len(kinds)]),
				"map":  atom.Ref(ma),
			})
			if err != nil {
				return nil, fmt.Errorf("mapgen: region: %w", err)
			}
			w.Regions = append(w.Regions, re)
			for s := 0; s < sitesPerRegion; s++ {
				si, err := sys.Insert("site", map[string]atom.Value{
					"name":   atom.Str(fmt.Sprintf("s%d", len(w.Sites))),
					"x":      atom.Real(rng.Float64() * 100),
					"y":      atom.Real(rng.Float64() * 100),
					"pop":    atom.Int(int64(rng.Intn(100000))),
					"region": atom.Ref(re),
				})
				if err != nil {
					return nil, fmt.Errorf("mapgen: site: %w", err)
				}
				w.Sites = append(w.Sites, si)
			}
		}
	}
	return w, nil
}
