package core

import (
	"container/list"
	"sync"
)

// planCache is an LRU of prepared statements keyed by statement text plus
// schema version (and the planner knobs that shaped the plan), so the wire
// server and ExecuteScript stop re-parsing and re-planning repeated queries.
// Entries are *Plan for SELECTs and *cachedDML for DELETE/MODIFY statements
// (whose molecule qualification is itself a prepared plan). Cached entries
// are immutable after preparation and shared freely: all per-execution state
// (root streaming, assembly pipeline, predicate scratch) lives in cursors or
// pooled scratch, never in the plan.
type planCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	byKey  map[string]*list.Element
	hits   uint64
	misses uint64
}

type planEntry struct {
	key  string
	plan any
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the cached entry for the key, or nil. Misses are not counted
// here — only putMiss records one, when a cacheable statement was actually
// planned fresh — so probe traffic never skews the ratio.
func (c *planCache) get(key string) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return nil
	}
	el, ok := c.byKey[key]
	if !ok {
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*planEntry).plan
}

// putMiss stores a freshly planned statement and counts the miss that led
// to it.
func (c *planCache) putMiss(key string, p any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	c.misses++
	if el, ok := c.byKey[key]; ok {
		el.Value.(*planEntry).plan = p
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&planEntry{key: key, plan: p})
	c.evictOverLocked(c.cap)
}

// resize changes the capacity; n <= 0 disables and clears the cache.
func (c *planCache) resize(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
	if n <= 0 {
		c.ll.Init()
		c.byKey = map[string]*list.Element{}
		return
	}
	c.evictOverLocked(n)
}

func (c *planCache) evictOverLocked(n int) {
	for c.ll.Len() > n {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byKey, el.Value.(*planEntry).key)
	}
}

func (c *planCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
