package core

import (
	"fmt"

	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/catalog"
)

// atomSource supplies atoms during molecule assembly. The primary source
// reads through the access system; the cluster source reads from a
// materialized atom-cluster occurrence, falling back to the access system
// for atoms outside the cluster.
type atomSource interface {
	get(a addr.LogicalAddr) (*access.Atom, error)
}

type primarySource struct{ sys *access.System }

func (s primarySource) get(a addr.LogicalAddr) (*access.Atom, error) { return s.sys.Get(a, nil) }

type clusterSource struct {
	sys *access.System
	occ *access.ClusterOccurrence
}

func (s clusterSource) get(a addr.LogicalAddr) (*access.Atom, error) {
	if at, ok := s.occ.Atom(a); ok {
		return at, nil
	}
	return s.sys.Get(a, nil)
}

// Roots enumerates the molecule roots the plan will materialize, in the
// order of the chosen access.
func (p *Plan) Roots() ([]addr.LogicalAddr, error) {
	sys := p.engine.sys
	switch p.AccessKind {
	case "accesspath":
		return sys.AccessPathSearch(p.PathName, []atom.Value{p.PathKey})
	case "cluster":
		return sys.ClusterRoots(p.Cluster)
	default:
		return sys.ScanAddrs(p.Root.Name)
	}
}

// AssembleRoot materializes, restricts, and projects the molecule rooted at
// a. It returns (nil, nil) when the root or molecule fails qualification.
func (p *Plan) AssembleRoot(a addr.LogicalAddr) (*Molecule, error) {
	sys := p.engine.sys
	var src atomSource = primarySource{sys}

	// Root SSA (pushed-down restriction) decides before assembly.
	if len(p.RootSSA) > 0 {
		rootAtom, err := src.get(a)
		if err != nil {
			return nil, err
		}
		ok, err := p.RootSSA.Eval(rootAtom)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
	}

	if p.AccessKind == "cluster" {
		occ, err := sys.ClusterOccurrenceOf(p.Cluster, a)
		if err != nil {
			return nil, err
		}
		src = clusterSource{sys: sys, occ: occ}
	}

	m, err := p.assemble(src, a)
	if err != nil {
		return nil, err
	}
	if p.Where != nil {
		keep, err := p.engine.evalMolecule(p.Where, m)
		if err != nil {
			return nil, err
		}
		if !keep {
			return nil, nil
		}
	}
	if err := p.engine.applyProjection(p.Project, m); err != nil {
		return nil, err
	}
	return m, nil
}

// assemble performs the vertical access: starting from the root atom it
// deduces the dependent component atoms along the molecule type's
// associations, level by level for recursive edges, with cycle protection.
func (p *Plan) assemble(src atomSource, root addr.LogicalAddr) (*Molecule, error) {
	m := &Molecule{
		Type:   p.Mol,
		ByType: map[string][]*MAtom{},
		atoms:  map[addr.LogicalAddr]*MAtom{},
	}
	var build func(node *catalog.MolNode, a addr.LogicalAddr, level int) (*MAtom, error)
	build = func(node *catalog.MolNode, a addr.LogicalAddr, level int) (*MAtom, error) {
		if existing, ok := m.atoms[a]; ok {
			return existing, nil // shared component or recursion cycle
		}
		if level > p.MaxDepth {
			return nil, fmt.Errorf("%w: recursion deeper than %d", ErrSemantic, p.MaxDepth)
		}
		at, err := src.get(a)
		if err != nil {
			return nil, err
		}
		ma := &MAtom{Atom: at, Node: node, Level: level}
		m.atoms[a] = ma
		m.ByType[at.Type.Name] = append(m.ByType[at.Type.Name], ma)

		// Effective child edges: the node's children, plus the node itself
		// once more when the edge into it recurses.
		edges := node.Children
		if node.Recursive {
			edges = append(append([]*catalog.MolNode(nil), node.Children...), node)
		}
		ma.Children = make([][]*MAtom, len(edges))
		for i, child := range edges {
			idx, ok := at.Type.AttrIndex(child.Via)
			if !ok {
				return nil, fmt.Errorf("%w: %s.%s", catalog.ErrUnknownAttr, at.Type.Name, child.Via)
			}
			nextLevel := level
			if child.Recursive || child == node {
				nextLevel = level + 1
			}
			for _, target := range at.Values[idx].Refs() {
				c, err := build(child, target, nextLevel)
				if err != nil {
					return nil, err
				}
				ma.Children[i] = append(ma.Children[i], c)
			}
		}
		return ma, nil
	}
	rootMA, err := build(p.Mol.Root, root, 0)
	if err != nil {
		return nil, err
	}
	m.Root = rootMA
	return m, nil
}

// Cursor delivers the qualified molecules of a plan one at a time — the
// one-molecule-at-a-time interface of the molecule management (§3.1).
type Cursor struct {
	plan  *Plan
	roots []addr.LogicalAddr
	pos   int
	done  bool
}

// Open prepares a cursor over the plan's molecules.
func (p *Plan) Open() (*Cursor, error) {
	roots, err := p.Roots()
	if err != nil {
		return nil, err
	}
	return &Cursor{plan: p, roots: roots}, nil
}

// Next returns the next qualified molecule, or (nil, nil) at the end.
func (c *Cursor) Next() (*Molecule, error) {
	if c.done {
		return nil, nil
	}
	for c.pos < len(c.roots) {
		a := c.roots[c.pos]
		c.pos++
		// Roots may have been deleted by concurrent DML between Open and
		// Next; skip them.
		if !c.plan.engine.sys.Directory().Exists(a) {
			continue
		}
		m, err := c.plan.AssembleRoot(a)
		if err != nil {
			return nil, err
		}
		if m != nil {
			return m, nil
		}
	}
	c.done = true
	return nil, nil
}

// Close releases the cursor.
func (c *Cursor) Close() { c.done = true }

// Collect drains the cursor.
func (c *Cursor) Collect() ([]*Molecule, error) {
	var out []*Molecule
	for {
		m, err := c.Next()
		if err != nil {
			return nil, err
		}
		if m == nil {
			return out, nil
		}
		out = append(out, m)
	}
}
