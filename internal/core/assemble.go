package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/access/mdindex"
	"prima/internal/catalog"
	"prima/internal/obs"
)

// atomSource supplies atoms during molecule assembly. The primary source
// reads through the access system; the cluster source reads from a
// materialized atom-cluster occurrence, falling back to the access system
// for atoms outside the cluster. Both support batched reads so one page fix
// in the buffer can serve a whole assembly level.
type atomSource interface {
	get(a addr.LogicalAddr) (*access.Atom, error)
	getBatch(as []addr.LogicalAddr) ([]*access.Atom, error)
}

type primarySource struct{ sys *access.System }

func (s primarySource) get(a addr.LogicalAddr) (*access.Atom, error) { return s.sys.Get(a, nil) }

func (s primarySource) getBatch(as []addr.LogicalAddr) ([]*access.Atom, error) {
	return s.sys.GetBatch(as, nil)
}

// snapshotSource reads through a snapshot: every atom resolves at the
// cursor's epoch, so one molecule can never mix pre- and post-DML state no
// matter which writes land while it assembles.
type snapshotSource struct{ sn *access.Snapshot }

func (s snapshotSource) get(a addr.LogicalAddr) (*access.Atom, error) { return s.sn.Get(a) }

func (s snapshotSource) getBatch(as []addr.LogicalAddr) ([]*access.Atom, error) {
	return s.sn.GetBatch(as)
}

type clusterSource struct {
	sys *access.System
	occ *access.ClusterOccurrence
	sn  *access.Snapshot // non-nil: all reads re-resolve at the cursor epoch
}

func (s clusterSource) get(a addr.LogicalAddr) (*access.Atom, error) {
	if s.sn != nil {
		// Occurrence atoms are current state; the chains override them with
		// the epoch's pre-image when a writer has since moved on.
		return s.sn.Resolve(a, func() (*access.Atom, error) { return s.fetch(a) })
	}
	return s.fetch(a)
}

func (s clusterSource) fetch(a addr.LogicalAddr) (*access.Atom, error) {
	if at, ok := s.occ.Atom(a); ok {
		return at, nil
	}
	if s.sn != nil {
		return s.sn.Get(a)
	}
	return s.sys.Get(a, nil)
}

func (s clusterSource) getBatch(as []addr.LogicalAddr) ([]*access.Atom, error) {
	out := make([]*access.Atom, len(as))
	var missIdx []int
	var miss []addr.LogicalAddr
	for i, a := range as {
		if s.sn != nil {
			at, err := s.get(a)
			if err != nil {
				return nil, err
			}
			out[i] = at
			continue
		}
		if at, ok := s.occ.Atom(a); ok {
			out[i] = at
		} else {
			missIdx = append(missIdx, i)
			miss = append(miss, a)
		}
	}
	if len(miss) > 0 {
		fetched, err := s.sys.GetBatch(miss, nil)
		if err != nil {
			return nil, err
		}
		for j, i := range missIdx {
			out[i] = fetched[j]
		}
	}
	return out, nil
}

// Roots enumerates the molecule roots the plan will materialize, in the
// order of the chosen access. Cursors stream roots lazily through
// rootSource instead; Roots stays the eager entry point for semantic
// decomposition (package du), which partitions the full set up front.
func (p *Plan) Roots() ([]addr.LogicalAddr, error) {
	sys := p.engine.sys
	switch p.AccessKind {
	case "direct":
		// A wrong-type address can never be the IDENTIFIER of a root atom,
		// so the restriction is unsatisfiable.
		if p.DirectRoot.Type() != p.Root.ID {
			return nil, nil
		}
		return []addr.LogicalAddr{p.DirectRoot}, nil
	case "accesspath":
		return sys.AccessPathSearch(p.PathName, []atom.Value{p.PathKey})
	case "pathrange":
		var out []addr.LogicalAddr
		err := sys.AccessPathScan(p.PathName, []mdindex.Range{{Start: p.PathStart, Stop: p.PathStop}},
			func(_ []atom.Value, a addr.LogicalAddr) bool {
				out = append(out, a)
				return true
			})
		return out, err
	case "gridrange":
		var out []addr.LogicalAddr
		err := sys.AccessPathScan(p.PathName, p.PathRanges,
			func(_ []atom.Value, a addr.LogicalAddr) bool {
				out = append(out, a)
				return true
			})
		if err != nil {
			return nil, err
		}
		// Grid buckets enumerate in directory order, which is not stable
		// across runs; sort into system-defined (insertion) order so cursor
		// delivery stays deterministic like every other access.
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	case "sortrange":
		return sys.SortOrderAddrs(p.SortOrder, p.PathStart, p.PathStop)
	case "cluster":
		return sys.ClusterRoots(p.Cluster)
	default:
		return sys.ScanAddrs(p.Root.Name)
	}
}

// rootSource yields successive chunks of candidate molecule roots in the
// order of the chosen access; it returns an empty chunk at the end.
type rootSource interface {
	next() ([]addr.LogicalAddr, error)
}

// scanRoots pages through the directory lazily, so an atom-type scan over a
// huge type never materializes the full address list. The scan is bounded
// by the highest sequence number at first use: atoms inserted while the
// cursor runs do not extend it, preserving termination under concurrent
// insert load. With a snapshot the enumeration additionally includes ghosts
// (atoms deleted after the cursor's epoch), and the bound covers them.
type scanRoots struct {
	sys      *access.System
	sn       *access.Snapshot
	typeName string
	after    uint64
	bound    uint64
	bounded  bool
	chunk    int
	done     bool
}

func (s *scanRoots) next() ([]addr.LogicalAddr, error) {
	if s.done {
		return nil, nil
	}
	if !s.bounded {
		var bound uint64
		var err error
		if s.sn != nil {
			bound, err = s.sn.MaxSeq(s.typeName)
		} else {
			bound, err = s.sys.MaxSeq(s.typeName)
		}
		if err != nil {
			return nil, err
		}
		s.bound, s.bounded = bound, true
	}
	var chunk []addr.LogicalAddr
	var err error
	if s.sn != nil {
		chunk, err = s.sn.ScanAddrsAfter(s.typeName, s.after, s.chunk)
	} else {
		chunk, err = s.sys.ScanAddrsAfter(s.typeName, s.after, s.chunk)
	}
	if err != nil {
		return nil, err
	}
	for len(chunk) > 0 && chunk[len(chunk)-1].Seq() > s.bound {
		chunk = chunk[:len(chunk)-1]
		s.done = true
	}
	if len(chunk) == 0 {
		s.done = true
		return nil, nil
	}
	s.after = chunk[len(chunk)-1].Seq()
	return chunk, nil
}

// lazyRoots defers the root enumeration of access-path and cluster accesses
// to the first chunk request, then serves slices of the materialized list.
type lazyRoots struct {
	plan  *Plan
	chunk int
	roots []addr.LogicalAddr
	pos   int
	open  bool
}

func (l *lazyRoots) next() ([]addr.LogicalAddr, error) {
	if !l.open {
		roots, err := l.plan.Roots()
		if err != nil {
			return nil, err
		}
		l.roots, l.open = roots, true
	}
	if l.pos >= len(l.roots) {
		return nil, nil
	}
	j := l.pos + l.chunk
	if j > len(l.roots) {
		j = len(l.roots)
	}
	out := l.roots[l.pos:j]
	l.pos = j
	return out, nil
}

// rootSource builds the lazy root stream for the plan's access choice.
// Atom-type scans enumerate through the snapshot (ghosts included);
// access-path, sort-order and cluster enumerations read the live index —
// entries dropped by post-epoch DML no longer enumerate, but every root that
// does enumerate still assembles at the epoch.
func (p *Plan) rootSource(chunk int, sn *access.Snapshot) rootSource {
	if p.AccessKind == "atomscan" {
		return &scanRoots{sys: p.engine.sys, sn: sn, typeName: p.Root.Name, chunk: chunk}
	}
	return &lazyRoots{plan: p, chunk: chunk}
}

// AssembleRoot materializes, restricts, and projects the molecule rooted at
// a against the current database state. It returns (nil, nil) when the root
// or molecule fails qualification. Semantic decomposition (package du)
// partitions and assembles outside any cursor, so the epoch-free entry point
// stays exported; cursors go through assembleRootAt.
func (p *Plan) AssembleRoot(a addr.LogicalAddr) (*Molecule, error) {
	return p.assembleRootAt(nil, a)
}

// assembleRootAt is AssembleRoot resolving every atom read at the snapshot's
// epoch (sn == nil reads current state).
func (p *Plan) assembleRootAt(sn *access.Snapshot, a addr.LogicalAddr) (*Molecule, error) {
	sys := p.engine.sys
	var src atomSource = primarySource{sys}
	if sn != nil {
		src = snapshotSource{sn}
	}
	// The cache is only written by the SSA root read and the prefetch;
	// flat, unrestricted molecules leave it nil (reads of a nil map miss).
	var cache map[addr.LogicalAddr]*access.Atom
	if len(p.RootSSA) > 0 || len(p.Mol.Root.Children) > 0 || p.Mol.Root.Recursive {
		cache = map[addr.LogicalAddr]*access.Atom{}
	}

	// Root SSA (pushed-down restriction) decides before assembly.
	if len(p.RootSSA) > 0 {
		rootAtom, err := src.get(a)
		if err != nil {
			if p.AccessKind == "direct" && errors.Is(err, access.ErrNoAtom) {
				// The named atom is gone (or never existed): the root fails
				// qualification, it does not error the query — direct roots
				// are the one access whose candidates are not enumerated
				// from live storage.
				return nil, nil
			}
			return nil, err
		}
		ok, err := p.RootSSA.Eval(rootAtom)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		cache[a] = rootAtom
	}

	if p.AccessKind == "cluster" {
		occ, err := sys.ClusterOccurrenceOf(p.Cluster, a)
		switch {
		case err == nil:
			src = clusterSource{sys: sys, occ: occ, sn: sn}
		case sn != nil && errors.Is(err, access.ErrNoAtom):
			// Ghost root: the occurrence was dropped by post-epoch DML, but
			// the chains still hold the molecule's pre-images — assemble
			// through the snapshot alone.
		default:
			return nil, err
		}
	}

	ps := p.newPushState()
	m, err := p.assemble(src, a, cache, ps)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, nil // pruned mid-assembly by a pushed-down conjunct
	}
	// Decide the pushed conjuncts. A complete, fully observed stream already
	// holds the verdict; otherwise re-decide on the assembled molecule.
	if ps != nil && ps.complete && !ps.disabled {
		if ps.remaining > 0 {
			return nil, nil
		}
	} else if p.pushPruned(m) {
		return nil, nil
	}
	if p.Where != nil {
		var keep bool
		if p.whereC != nil {
			keep, err = p.whereC.Eval(m)
		} else {
			keep, err = p.engine.evalMolecule(p.Where, m)
		}
		if err != nil {
			return nil, err
		}
		if !keep {
			return nil, nil
		}
	}
	if err := p.engine.applyProjection(p.Project, m); err != nil {
		return nil, err
	}
	return m, nil
}

// pushState tracks the pushed-down component conjuncts during one molecule's
// assembly: a satisfying-atom count per conjunct, decided against the
// conjunct's Min threshold (1 for existentials, n for EXISTS_AT_LEAST).
// Early pruning (abandoning the remaining assembly levels) is only armed for
// non-recursive molecule types: their assembly cannot raise recursion-depth
// errors, so skipping levels never hides an error the full build would have
// reported.
type pushState struct {
	plan      *Plan
	counts    []int
	remaining int
	canEarly  bool
	complete  bool // prefetch streamed the whole molecule through observe
	disabled  bool // the streamed view may be incomplete (a fetch failed)
}

func (p *Plan) newPushState() *pushState {
	if len(p.CompSSA) == 0 {
		return nil
	}
	return &pushState{
		plan:      p,
		counts:    make([]int, len(p.CompSSA)),
		remaining: len(p.CompSSA),
		canEarly:  !p.Mol.IsRecursive(),
	}
}

// minOf returns a conjunct's required count (old zero-valued conjuncts mean
// "exists", i.e. 1).
func minOf(cc CompCond) int {
	if cc.Min < 1 {
		return 1
	}
	return cc.Min
}

// observe folds one streamed atom into the conjunct counts. prefetch streams
// every atom exactly once (its seen set dedupes addresses), so counts are
// over distinct component atoms — the same set the quantifier counts.
func (ps *pushState) observe(at *access.Atom) {
	if ps == nil || ps.remaining == 0 {
		return
	}
	for i, cc := range ps.plan.CompSSA {
		if ps.counts[i] >= minOf(cc) || cc.TypeName != at.Type.Name {
			continue
		}
		ok, err := cc.SSA.Eval(at)
		if err != nil {
			ps.disabled = true
			return
		}
		if ok {
			ps.counts[i]++
			if ps.counts[i] >= minOf(cc) {
				ps.remaining--
			}
		}
	}
}

// unreachable reports whether some undecided conjunct's component type
// cannot appear at or below any of the frontier nodes — its count can no
// longer be reached, so the molecule can be pruned without assembling the
// remaining levels.
func (ps *pushState) unreachable(frontier []*catalog.MolNode) bool {
	if ps == nil || !ps.canEarly || ps.disabled || ps.remaining == 0 {
		return false
	}
	for i, cc := range ps.plan.CompSSA {
		if ps.counts[i] >= minOf(cc) {
			continue
		}
		reachable := false
		for _, n := range frontier {
			if ps.plan.reach[n][cc.TypeName] {
				reachable = true
				break
			}
		}
		if !reachable {
			return true
		}
	}
	return false
}

// pushPruned decides the pushed-down conjuncts on the fully assembled
// molecule: each is counting-existential, so the molecule fails as soon as
// one cannot reach its required count of satisfying component atoms. A
// pruned molecule skips residual predicate evaluation entirely; a kept one
// still runs the full residual (the conjuncts remain part of it), so pruning
// can only ever be a fast negative.
func (p *Plan) pushPruned(m *Molecule) bool {
	for _, cc := range p.CompSSA {
		need := minOf(cc)
		for _, ma := range m.ByType[cc.TypeName] {
			ok, err := cc.SSA.Eval(ma.Atom)
			if err != nil {
				need = 0 // leave the decision to the residual predicate
				break
			}
			if ok {
				need--
				if need <= 0 {
					break
				}
			}
		}
		if need > 0 {
			return true
		}
	}
	return false
}

// effectiveEdges returns a node's child edges for traversal: its children,
// plus the node itself once more when the edge into it recurses. prefetch
// and the structural build share it so their traversals cannot diverge.
func effectiveEdges(node *catalog.MolNode) []*catalog.MolNode {
	if !node.Recursive {
		return node.Children
	}
	return append(append([]*catalog.MolNode(nil), node.Children...), node)
}

// edgeLevel returns the recursion level of atoms reached over the edge from
// node to child.
func edgeLevel(node, child *catalog.MolNode, level int) int {
	if child.Recursive || child == node {
		return level + 1
	}
	return level
}

// prefetch walks the molecule structure breadth-first and batch-reads every
// level's fan-out into cache, so the structural build below finds its atoms
// memory-resident — one directory lookup and page fix per level and page
// instead of one per atom. It is best-effort: any address it cannot fetch is
// simply left out of the cache and surfaces through the build's own,
// deterministic error path.
//
// Pushed-down component conjuncts are evaluated here, as atoms stream out of
// the batched reads; when a conjunct can no longer be satisfied by any
// remaining level, prefetch reports pruned=true and the remaining levels are
// skipped entirely. At that point the qualification is fully decided: every
// atom of the conjunct's type was observed (a failed fetch disables pruning)
// and failed, so the existential conjunct — and with it the WHERE — is
// false no matter what the unread levels hold. Skipping them also skips any
// materialization error (e.g. a dangling reference) those levels would have
// raised; the pruned outcome is the correct query answer, the error was an
// artifact of materialization the plan proved unnecessary.
func (p *Plan) prefetch(src atomSource, root addr.LogicalAddr, cache map[addr.LogicalAddr]*access.Atom, ps *pushState) (pruned bool) {
	type item struct {
		node  *catalog.MolNode
		a     addr.LogicalAddr
		level int
	}
	frontier := []item{{node: p.Mol.Root, a: root, level: 0}}
	seen := map[addr.LogicalAddr]bool{root: true}
	var nodes []*catalog.MolNode // frontier nodes, for the reachability check
	for len(frontier) > 0 {
		if ps != nil {
			nodes = nodes[:0]
			for _, it := range frontier {
				nodes = append(nodes, it.node)
			}
			if ps.unreachable(nodes) {
				return true
			}
		}
		var want []addr.LogicalAddr
		for _, it := range frontier {
			if _, ok := cache[it.a]; !ok {
				want = append(want, it.a)
			}
		}
		if len(want) > 0 {
			atoms, err := src.getBatch(want)
			if err != nil {
				// A batch fails as a whole; retry individually so one bad
				// address does not hide the rest of the level.
				for _, a := range want {
					if at, err := src.get(a); err == nil {
						cache[a] = at
					} else if ps != nil {
						ps.disabled = true
					}
				}
			} else {
				for i, at := range atoms {
					cache[want[i]] = at
				}
			}
		}
		var next []item
		for _, it := range frontier {
			at := cache[it.a]
			if at == nil {
				continue
			}
			ps.observe(at)
			for _, child := range effectiveEdges(it.node) {
				idx, ok := at.Type.AttrIndex(child.Via)
				if !ok {
					continue // the build reports the semantic error
				}
				nextLevel := edgeLevel(it.node, child, it.level)
				if nextLevel > p.MaxDepth {
					continue // the build reports the recursion error
				}
				for _, target := range at.Values[idx].Refs() {
					if seen[target] {
						continue
					}
					seen[target] = true
					next = append(next, item{node: child, a: target, level: nextLevel})
				}
			}
		}
		frontier = next
	}
	if ps != nil {
		ps.complete = true
	}
	return false
}

// assemble performs the vertical access: starting from the root atom it
// deduces the dependent component atoms along the molecule type's
// associations, level by level for recursive edges, with cycle protection.
// Atom reads are batched per level by prefetch; the recursive build then
// fixes the result structure in depth-first order.
func (p *Plan) assemble(src atomSource, root addr.LogicalAddr, cache map[addr.LogicalAddr]*access.Atom, ps *pushState) (*Molecule, error) {
	// A flat single-node molecule has no fan-out to batch; skip the
	// prefetch bookkeeping and read the root directly.
	if len(p.Mol.Root.Children) > 0 || p.Mol.Root.Recursive {
		if p.prefetch(src, root, cache, ps) {
			return nil, nil // pruned: a pushed conjunct became undecidable-true
		}
	}
	m := &Molecule{
		Type:   p.Mol,
		ByType: map[string][]*MAtom{},
		atoms:  map[addr.LogicalAddr]*MAtom{},
	}
	var build func(node *catalog.MolNode, a addr.LogicalAddr, level int) (*MAtom, error)
	build = func(node *catalog.MolNode, a addr.LogicalAddr, level int) (*MAtom, error) {
		if existing, ok := m.atoms[a]; ok {
			return existing, nil // shared component or recursion cycle
		}
		if level > p.MaxDepth {
			return nil, fmt.Errorf("%w: recursion deeper than %d", ErrSemantic, p.MaxDepth)
		}
		at, ok := cache[a]
		if !ok {
			var err error
			if at, err = src.get(a); err != nil {
				return nil, err
			}
		}
		ma := &MAtom{Atom: at, Node: node, Level: level}
		m.atoms[a] = ma
		m.ByType[at.Type.Name] = append(m.ByType[at.Type.Name], ma)

		edges := effectiveEdges(node)
		ma.Children = make([][]*MAtom, len(edges))
		for i, child := range edges {
			idx, ok := at.Type.AttrIndex(child.Via)
			if !ok {
				return nil, fmt.Errorf("%w: %s.%s", catalog.ErrUnknownAttr, at.Type.Name, child.Via)
			}
			nextLevel := edgeLevel(node, child, level)
			for _, target := range at.Values[idx].Refs() {
				c, err := build(child, target, nextLevel)
				if err != nil {
					return nil, err
				}
				ma.Children[i] = append(ma.Children[i], c)
			}
		}
		return ma, nil
	}
	rootMA, err := build(p.Mol.Root, root, 0)
	if err != nil {
		return nil, err
	}
	m.Root = rootMA
	return m, nil
}

// Cursor delivers the qualified molecules of a plan one at a time — the
// one-molecule-at-a-time interface of the molecule management (§3.1). Roots
// stream lazily from the access system in chunks; when the engine's
// assembly parallelism is above one, a bounded worker pool materializes
// molecules concurrently while Next still delivers them in root order.
type Cursor struct {
	plan *Plan
	src  rootSource
	snap *access.Snapshot
	done bool

	// Serial mode: the current root chunk.
	pending []addr.LogicalAddr
	pos     int

	// Parallel mode.
	pipe *pipeline

	// asmNs accumulates wall time spent inside Next — the assembly stage as
	// the caller experiences it — and is observed once at Close (asmDone
	// guards the double Close that a Next error path produces).
	asmNs   int64
	asmDone bool

	// span is the trace span this cursor's work is charged to (nil =
	// untraced): delivered molecules bump its counters in Next, and Close
	// ends it.
	span *obs.Span
}

// Open prepares a cursor over the plan's molecules, pinned to a snapshot of
// the current epoch: iteration delivers the state as of Open no matter which
// DML runs concurrently, so parallel read-ahead is always safe. Root
// enumeration is lazy, so errors of the chosen access surface at the first
// Next. Close the cursor so its epoch's history can be reclaimed.
func (p *Plan) Open() (*Cursor, error) { return p.openAt(nil) }

// OpenAt prepares a cursor resolving every read at the given epoch, which
// the caller must hold open through a live snapshot (the transaction layer
// pins one at Begin and reuses its epoch for every cursor it opens).
func (p *Plan) OpenAt(epoch uint64) (*Cursor, error) { return p.openAt(&epoch) }

// OpenTraced is Open with the cursor's reads and deliveries charged to the
// trace span (nil sp behaves like Open). The span is ended at Close.
func (p *Plan) OpenTraced(sp *obs.Span) (*Cursor, error) { return p.openTraced(nil, sp) }

func (p *Plan) openAt(epoch *uint64) (*Cursor, error) { return p.openTraced(epoch, nil) }

// openTraced opens a cursor whose snapshot charges its read-path counters
// (atoms decoded, cache hits, pages pinned, decode time) to sp. The span is
// attached before the pipeline starts, so parallel assembly workers record
// into it from the first read; nil sp means untraced.
func (p *Plan) openTraced(epoch *uint64, sp *obs.Span) (*Cursor, error) {
	workers, chunk := p.engine.assemblyConfig()
	var sn *access.Snapshot
	if epoch != nil {
		sn = p.engine.sys.SnapshotAt(*epoch)
	} else {
		sn = p.engine.sys.OpenSnapshot()
	}
	sn.SetTraceSpan(sp)
	c := &Cursor{plan: p, snap: sn, src: p.rootSource(chunk, sn), span: sp}
	if workers > 1 {
		c.pipe = startPipeline(p, sn, c.src, workers)
	}
	// Safety net for abandoned cursors: neither the snapshot nor the
	// pipeline goroutines reference the Cursor, so when a caller drops it
	// without Close the finalizer still releases the epoch (and winds the
	// workers down first — off the finalizer goroutine, since joining them
	// can block).
	pipe := c.pipe
	runtime.SetFinalizer(c, func(_ *Cursor) {
		go func() {
			if pipe != nil {
				pipe.shutdown()
				pipe.wg.Wait()
			}
			sn.Close()
		}()
	})
	return c, nil
}

// Epoch returns the snapshot epoch the cursor reads at.
func (c *Cursor) Epoch() uint64 { return c.snap.Epoch() }

// asmResult is one root's assembly outcome.
type asmResult struct {
	m   *Molecule
	err error
}

// pipeline runs the order-preserving parallel assembly: a dispatcher streams
// roots from the source, handing each root a one-slot result channel that is
// queued in dispatch order; workers assemble out of order and fulfill their
// slot; the consumer drains slots in order. In-flight molecules are bounded
// by the queue capacities, so huge result sets stream instead of piling up.
type pipeline struct {
	ordered  chan chan asmResult
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup // dispatcher + workers
}

type asmJob struct {
	root addr.LogicalAddr
	out  chan asmResult
}

func startPipeline(p *Plan, sn *access.Snapshot, src rootSource, workers int) *pipeline {
	pl := &pipeline{
		ordered: make(chan chan asmResult, workers*2),
		stop:    make(chan struct{}),
	}
	jobs := make(chan asmJob, workers*2)
	pl.wg.Add(workers + 1)
	for i := 0; i < workers; i++ {
		go func() {
			defer pl.wg.Done()
			for j := range jobs {
				var res asmResult
				select {
				case <-pl.stop:
					// Closed cursor: fulfill the slot without touching
					// pages, so no read outlives Close.
				default:
					// The snapshot decides membership: roots deleted after
					// the epoch still assemble (from their pre-images),
					// roots inserted after it are tombstoned and skipped.
					if sn.Exists(j.root) {
						res.m, res.err = p.assembleRootAt(sn, j.root)
					}
				}
				j.out <- res // one-slot buffer: never blocks
			}
		}()
	}
	go func() {
		defer pl.wg.Done()
		defer close(jobs)
		defer close(pl.ordered)
		for {
			batch, err := src.next()
			if err != nil {
				out := make(chan asmResult, 1)
				out <- asmResult{err: err}
				select {
				case pl.ordered <- out:
				case <-pl.stop:
				}
				return
			}
			if len(batch) == 0 {
				return
			}
			for _, root := range batch {
				out := make(chan asmResult, 1)
				select {
				case pl.ordered <- out:
				case <-pl.stop:
					return
				}
				select {
				case jobs <- asmJob{root: root, out: out}:
				case <-pl.stop:
					// The slot is already queued; fulfill it so a
					// concurrent Next cannot block on it.
					out <- asmResult{}
					return
				}
			}
		}
	}()
	return pl
}

func (pl *pipeline) shutdown() {
	pl.stopOnce.Do(func() { close(pl.stop) })
}

// Next returns the next qualified molecule, or (nil, nil) at the end.
func (c *Cursor) Next() (*Molecule, error) {
	if c.done {
		return nil, nil
	}
	nextStart := time.Now()
	defer func() { c.asmNs += time.Since(nextStart).Nanoseconds() }()
	if c.pipe != nil {
		for {
			out, ok := <-c.pipe.ordered
			if !ok {
				c.done = true
				return nil, nil
			}
			res := <-out
			if res.err != nil {
				c.Close()
				return nil, res.err
			}
			if res.m != nil {
				c.emit(res.m)
				return res.m, nil
			}
		}
	}
	for {
		for c.pos < len(c.pending) {
			a := c.pending[c.pos]
			c.pos++
			// The snapshot decides membership: roots deleted after the
			// cursor's epoch still assemble, later inserts are skipped.
			if !c.snap.Exists(a) {
				continue
			}
			m, err := c.plan.assembleRootAt(c.snap, a)
			if err != nil {
				c.done = true
				return nil, err
			}
			if m != nil {
				c.emit(m)
				return m, nil
			}
		}
		batch, err := c.src.next()
		if err != nil {
			c.done = true
			return nil, err
		}
		if len(batch) == 0 {
			c.done = true
			return nil, nil
		}
		c.pending, c.pos = batch, 0
	}
}

// emit charges one delivered molecule to the cursor's trace span.
func (c *Cursor) emit(m *Molecule) {
	if c.span == nil {
		return
	}
	c.span.Add(obs.CtrMolecules, 1)
	c.span.Add(obs.CtrAtoms, int64(m.Size()))
}

// Close releases the cursor and its snapshot. A parallel pipeline is joined
// first: when Close returns, no worker touches buffer pages anymore and the
// epoch's history is free to be reclaimed.
func (c *Cursor) Close() {
	c.done = true
	c.span.End()
	if !c.asmDone && c.asmNs > 0 {
		c.asmDone = true
		c.plan.engine.assembleNs.Observe(c.asmNs)
	}
	if c.pipe != nil {
		c.pipe.shutdown()
		c.pipe.wg.Wait()
	}
	c.snap.Close()
	runtime.SetFinalizer(c, nil)
}

// Collect drains the cursor.
func (c *Cursor) Collect() ([]*Molecule, error) {
	var out []*Molecule
	for {
		m, err := c.Next()
		if err != nil {
			return nil, err
		}
		if m == nil {
			return out, nil
		}
		out = append(out, m)
	}
}
