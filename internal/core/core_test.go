package core_test

import (
	"fmt"
	"strings"
	"testing"

	"prima/internal/access"
	"prima/internal/core"
	"prima/internal/mql"
	"prima/internal/workload/brepgen"
)

// newEngine builds an in-memory engine with the Fig. 2.3 schema installed.
func newEngine(t testing.TB) *core.Engine {
	t.Helper()
	sys, err := access.Open(access.Config{})
	if err != nil {
		t.Fatalf("access.Open: %v", err)
	}
	e := core.New(sys)
	if err := brepgen.InstallSchema(e); err != nil {
		t.Fatalf("InstallSchema: %v", err)
	}
	return e
}

// sceneEngine also populates n cubes.
func sceneEngine(t testing.TB, n int) (*core.Engine, []*brepgen.Cube) {
	t.Helper()
	e := newEngine(t)
	cubes, err := brepgen.BuildScene(e, n)
	if err != nil {
		t.Fatalf("BuildScene: %v", err)
	}
	return e, cubes
}

func mustQuery(t testing.TB, e *core.Engine, q string) *core.Result {
	t.Helper()
	stmt, err := mql.ParseOne(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	r, err := e.Execute(stmt)
	if err != nil {
		t.Fatalf("execute %q: %v", q, err)
	}
	return r
}

func TestTable21aVerticalAccess(t *testing.T) {
	e, _ := sceneEngine(t, 5)
	r := mustQuery(t, e, `SELECT ALL FROM brep-face-edge-point WHERE brep_no = 3`)
	if len(r.Molecules) != 1 {
		t.Fatalf("got %d molecules, want 1", len(r.Molecules))
	}
	m := r.Molecules[0]
	if got := len(m.AtomsOf("brep")); got != 1 {
		t.Fatalf("breps = %d", got)
	}
	if got := len(m.AtomsOf("face")); got != brepgen.CubeFaces {
		t.Fatalf("faces = %d, want %d", got, brepgen.CubeFaces)
	}
	if got := len(m.AtomsOf("edge")); got != brepgen.CubeEdges {
		t.Fatalf("edges = %d, want %d (shared edges must be deduplicated)", got, brepgen.CubeEdges)
	}
	if got := len(m.AtomsOf("point")); got != brepgen.CubePoints {
		t.Fatalf("points = %d, want %d", got, brepgen.CubePoints)
	}
	if m.Size() != brepgen.CubeAtoms {
		t.Fatalf("molecule size = %d, want %d", m.Size(), brepgen.CubeAtoms)
	}

	// Unqualified query returns all 5 molecules in system-defined order.
	r = mustQuery(t, e, `SELECT ALL FROM brep-face-edge-point`)
	if len(r.Molecules) != 5 {
		t.Fatalf("got %d molecules, want 5", len(r.Molecules))
	}
}

func TestTable21bRecursiveMolecules(t *testing.T) {
	e := newEngine(t)
	// depth 3, branching 2: 1 + 2 + 4 + 8 = 15 solids.
	root, count, err := brepgen.BuildAssembly(e, 4711, 3, 2)
	if err != nil {
		t.Fatalf("BuildAssembly: %v", err)
	}
	if count != 15 {
		t.Fatalf("assembly count = %d", count)
	}
	_ = root

	r := mustQuery(t, e, `SELECT ALL FROM piece_list WHERE piece_list(0).solid_no = 4711`)
	if len(r.Molecules) != 1 {
		t.Fatalf("got %d molecules, want 1 (seed qualification)", len(r.Molecules))
	}
	m := r.Molecules[0]
	if got := len(m.AtomsOf("solid")); got != 15 {
		t.Fatalf("molecule solids = %d, want 15", got)
	}
	if m.MaxLevel() != 3 {
		t.Fatalf("max level = %d, want 3", m.MaxLevel())
	}

	// Without the seed qualification every solid roots a molecule.
	r = mustQuery(t, e, `SELECT ALL FROM piece_list`)
	if len(r.Molecules) != 15 {
		t.Fatalf("unseeded recursion: %d molecules, want 15", len(r.Molecules))
	}
}

func TestRecursionCycleSafety(t *testing.T) {
	e := newEngine(t)
	sys := e.System()
	// Build a cycle: s1 -> s2 -> s3 -> s1 through sub.
	res := mustQuery(t, e, `INSERT INTO solid (solid_no) VALUES (1), (2), (3)`)
	a1, a2, a3 := res.Inserted[0], res.Inserted[1], res.Inserted[2]
	if err := sys.Connect(a1, "sub", a2); err != nil {
		t.Fatal(err)
	}
	if err := sys.Connect(a2, "sub", a3); err != nil {
		t.Fatal(err)
	}
	if err := sys.Connect(a3, "sub", a1); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, e, `SELECT ALL FROM piece_list WHERE piece_list(0).solid_no = 1`)
	if len(r.Molecules) != 1 {
		t.Fatalf("molecules = %d", len(r.Molecules))
	}
	if got := len(r.Molecules[0].AtomsOf("solid")); got != 3 {
		t.Fatalf("cyclic molecule solids = %d, want 3 (each once)", got)
	}
}

func TestTable21cHorizontalAccess(t *testing.T) {
	e := newEngine(t)
	if _, _, err := brepgen.BuildAssembly(e, 100, 2, 2); err != nil {
		t.Fatal(err)
	}
	// 1 root + 2 mid + 4 leaves; leaves have sub = EMPTY.
	r := mustQuery(t, e, `SELECT solid_no, description FROM solid WHERE sub = EMPTY`)
	if len(r.Molecules) != 4 {
		t.Fatalf("primitive solids = %d, want 4", len(r.Molecules))
	}
	// Projection: solid_no and description present, others NULL.
	m := r.Molecules[0]
	s := m.Root.Atom
	if v, _ := s.Value("solid_no"); v.IsNull() {
		t.Fatal("projected attribute solid_no missing")
	}
	if v, _ := s.Value("description"); v.IsNull() {
		t.Fatal("projected attribute description missing")
	}
	if v, _ := s.Value("super"); !v.IsNull() && v.Len() != 0 {
		t.Fatalf("unprojected attribute super kept: %v", v)
	}
}

func TestTable21dBranchingQuantifierQualifiedProjection(t *testing.T) {
	e, cubes := sceneEngine(t, 4)
	_ = cubes
	// Cube i has edge length 1+(i%7) and face area (1+(i%7))^2: cube 3 has
	// length 4, area 16. Pick thresholds so qualification bites.
	q := `
	  SELECT edge, (point,
	         face := SELECT face_id, square_dim
	                 FROM face
	                 WHERE square_dim > 10.0)
	  FROM brep-edge-(face, point)
	  WHERE brep_no = 3
	  AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0`
	r := mustQuery(t, e, q)
	if len(r.Molecules) != 1 {
		t.Fatalf("molecules = %d, want 1", len(r.Molecules))
	}
	m := r.Molecules[0]
	// brep is not in the SELECT list: hidden connector.
	for _, ma := range m.AtomsOf("brep") {
		if !ma.Hidden {
			t.Fatal("unmentioned brep atom not hidden")
		}
	}
	// Edges and points kept whole.
	for _, ma := range m.AtomsOf("edge") {
		if ma.Hidden {
			t.Fatal("edge hidden despite projection")
		}
	}
	// Faces: square_dim = 16 > 10 → kept with projected attrs.
	kept := 0
	for _, ma := range m.AtomsOf("face") {
		if !ma.Hidden {
			kept++
			if v, _ := ma.Atom.Value("square_dim"); v.IsNull() {
				t.Fatal("qualified projection lost square_dim")
			}
			if v, _ := ma.Atom.Value("border"); !v.IsNull() && v.Len() != 0 {
				t.Fatal("qualified projection kept unselected attribute")
			}
		}
	}
	if kept != brepgen.CubeFaces {
		t.Fatalf("faces kept = %d, want all %d (area 16 > 10)", kept, brepgen.CubeFaces)
	}

	// Tighten the qualified projection so no face passes.
	q2 := strings.Replace(q, "> 10.0", "> 1000.0", 1)
	r = mustQuery(t, e, q2)
	for _, ma := range r.Molecules[0].AtomsOf("face") {
		if !ma.Hidden {
			t.Fatal("face survived impossible qualified projection")
		}
	}

	// Quantifier that cannot be satisfied: EXISTS_AT_LEAST(13) of 12 edges.
	q3 := strings.Replace(q, "EXISTS_AT_LEAST (2)", "EXISTS_AT_LEAST (13)", 1)
	r = mustQuery(t, e, q3)
	if len(r.Molecules) != 0 {
		t.Fatalf("unsatisfiable quantifier returned %d molecules", len(r.Molecules))
	}
}

func TestQuantifierForms(t *testing.T) {
	e, _ := sceneEngine(t, 1)
	cases := []struct {
		where string
		want  int
	}{
		{`EXISTS edge: edge.length > 0.5`, 1},
		{`FOR_ALL edge: edge.length > 0.5`, 1},
		{`FOR_ALL edge: edge.length > 100.0`, 0},
		{`EXISTS_EXACTLY (12) edge: edge.length > 0.5`, 1},
		{`EXISTS_EXACTLY (11) edge: edge.length > 0.5`, 0},
		{`NOT EXISTS edge: edge.length > 100.0`, 1},
	}
	for _, c := range cases {
		r := mustQuery(t, e, `SELECT ALL FROM brep-edge WHERE `+c.where)
		if len(r.Molecules) != c.want {
			t.Errorf("WHERE %s: got %d molecules, want %d", c.where, len(r.Molecules), c.want)
		}
	}
}

func TestRecordFieldPathPredicate(t *testing.T) {
	e, _ := sceneEngine(t, 2)
	// Cube 1 occupies [10,11+] on every axis; cube 2 is at [20,...].
	r := mustQuery(t, e, `SELECT ALL FROM brep-point WHERE point.placement.x_coord > 15.0`)
	if len(r.Molecules) != 1 {
		t.Fatalf("record-field predicate matched %d molecules, want 1", len(r.Molecules))
	}
}

func TestOptimizerDirectRootAccess(t *testing.T) {
	e, _ := sceneEngine(t, 5)
	r := mustQuery(t, e, `SELECT ALL FROM brep WHERE brep_no = 3`)
	if len(r.Molecules) != 1 {
		t.Fatalf("setup query matched %d molecules, want 1", len(r.Molecules))
	}
	root := r.Molecules[0].AtomsOf("brep")[0]
	a := root.Addr()
	lit := fmt.Sprintf("@%d.%d", a.Type(), a.Seq())

	// Equality on the IDENTIFIER attribute plans a direct access — no scan,
	// no index — and still assembles the full molecule.
	stmt, _ := mql.ParseOne(`SELECT ALL FROM brep-face WHERE brep_id = ` + lit)
	plan, err := e.PlanSelect(stmt.(*mql.Select))
	if err != nil {
		t.Fatalf("PlanSelect: %v", err)
	}
	if plan.AccessKind != "direct" || plan.DirectRoot != a {
		t.Fatalf("plan chose %s/%v, want direct/%v", plan.AccessKind, plan.DirectRoot, a)
	}
	r2, err := e.Execute(stmt)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(r2.Molecules) != 1 || len(r2.Molecules[0].AtomsOf("face")) != 6 {
		t.Fatalf("direct query result wrong: %d molecules", len(r2.Molecules))
	}

	// A never-allocated address fails qualification silently, not with an
	// error — the direct root is the one candidate not enumerated from
	// live storage.
	ghost := fmt.Sprintf("@%d.%d", a.Type(), a.Seq()+1_000_000)
	r3 := mustQuery(t, e, `SELECT ALL FROM brep WHERE brep_id = `+ghost)
	if len(r3.Molecules) != 0 {
		t.Fatalf("ghost address matched %d molecules, want 0", len(r3.Molecules))
	}

	// An address of a different atom type can never be a brep's IDENTIFIER.
	face := r2.Molecules[0].AtomsOf("face")[0]
	wrong := fmt.Sprintf("@%d.%d", face.Addr().Type(), face.Addr().Seq())
	r4 := mustQuery(t, e, `SELECT ALL FROM brep WHERE brep_id = `+wrong)
	if len(r4.Molecules) != 0 {
		t.Fatalf("wrong-type address matched %d molecules, want 0", len(r4.Molecules))
	}
}

func TestOptimizerChoosesAccessPath(t *testing.T) {
	e, _ := sceneEngine(t, 10)
	mustQuery(t, e, `CREATE ACCESS PATH brep_no_idx ON brep (brep_no) USING BTREE`)

	stmt, _ := mql.ParseOne(`SELECT ALL FROM brep-face WHERE brep_no = 7`)
	plan, err := e.PlanSelect(stmt.(*mql.Select))
	if err != nil {
		t.Fatalf("PlanSelect: %v", err)
	}
	if plan.AccessKind != "accesspath" || plan.PathName != "brep_no_idx" {
		t.Fatalf("plan chose %s/%s, want accesspath/brep_no_idx", plan.AccessKind, plan.PathName)
	}
	roots, err := plan.Roots()
	if err != nil || len(roots) != 1 {
		t.Fatalf("access path roots = %v, %v", roots, err)
	}
	// Result identical to the scan-based plan.
	r, err := e.Execute(stmt)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(r.Molecules) != 1 || len(r.Molecules[0].AtomsOf("face")) != 6 {
		t.Fatalf("indexed query result wrong: %d molecules", len(r.Molecules))
	}
}

func TestOptimizerChoosesCluster(t *testing.T) {
	e, _ := sceneEngine(t, 4)
	mustQuery(t, e, `CREATE ATOM_CLUSTER brep_cl ON brep-face-edge-point`)

	stmt, _ := mql.ParseOne(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2`)
	plan, err := e.PlanSelect(stmt.(*mql.Select))
	if err != nil {
		t.Fatalf("PlanSelect: %v", err)
	}
	if plan.AccessKind != "cluster" || plan.Cluster != "brep_cl" {
		t.Fatalf("plan chose %s, want cluster brep_cl", plan.AccessKind)
	}
	r, err := e.Execute(stmt)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(r.Molecules) != 1 || r.Molecules[0].Size() != brepgen.CubeAtoms {
		t.Fatalf("cluster-based query wrong: %d molecules", len(r.Molecules))
	}
	// A sub-structure query is also covered by the cluster.
	stmt2, _ := mql.ParseOne(`SELECT ALL FROM brep-face`)
	plan2, err := e.PlanSelect(stmt2.(*mql.Select))
	if err != nil {
		t.Fatal(err)
	}
	if plan2.AccessKind != "cluster" {
		t.Fatalf("sub-structure plan chose %s, want cluster", plan2.AccessKind)
	}
	// But a different root is not.
	stmt3, _ := mql.ParseOne(`SELECT ALL FROM face-edge`)
	plan3, err := e.PlanSelect(stmt3.(*mql.Select))
	if err != nil {
		t.Fatal(err)
	}
	if plan3.AccessKind == "cluster" {
		t.Fatal("face-rooted plan must not use a brep-rooted cluster")
	}
}

func TestDMLThroughEngine(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, `INSERT INTO solid (solid_no, description) VALUES (1, 'one'), (2, 'two'), (3, 'three')`)
	if r.Count != 3 {
		t.Fatalf("inserted %d", r.Count)
	}
	a1, a2 := r.Inserted[0], r.Inserted[1]

	// CONNECT via MQL address literals.
	con := "CONNECT @" + trimAt(a1.String()) + " TO @" + trimAt(a2.String()) + " VIA sub"
	mustQuery(t, e, con)
	rq := mustQuery(t, e, `SELECT ALL FROM piece_list WHERE piece_list(0).solid_no = 1`)
	if len(rq.Molecules) != 1 || len(rq.Molecules[0].AtomsOf("solid")) != 2 {
		t.Fatalf("connect failed: %+v", rq.Molecules)
	}

	// MODIFY.
	r = mustQuery(t, e, `MODIFY solid SET description = 'updated' WHERE solid_no = 2`)
	if r.Count != 1 {
		t.Fatalf("modified %d", r.Count)
	}
	rq = mustQuery(t, e, `SELECT ALL FROM solid WHERE description = 'updated'`)
	if len(rq.Molecules) != 1 {
		t.Fatalf("modify not visible: %d", len(rq.Molecules))
	}

	// DISCONNECT.
	dis := "DISCONNECT @" + trimAt(a1.String()) + " FROM @" + trimAt(a2.String()) + " VIA sub"
	mustQuery(t, e, dis)
	rq = mustQuery(t, e, `SELECT ALL FROM solid WHERE sub = EMPTY`)
	if len(rq.Molecules) != 3 {
		t.Fatalf("disconnect failed: %d solids with empty sub", len(rq.Molecules))
	}

	// DELETE with predicate.
	r = mustQuery(t, e, `DELETE FROM solid WHERE solid_no = 3`)
	if r.Count != 1 {
		t.Fatalf("deleted %d", r.Count)
	}
	rq = mustQuery(t, e, `SELECT ALL FROM solid`)
	if len(rq.Molecules) != 2 {
		t.Fatalf("%d solids after delete", len(rq.Molecules))
	}
}

// trimAt strips the leading '@' from addr.String for literal reassembly.
func trimAt(s string) string { return strings.TrimPrefix(s, "@") }

func TestMoleculeDeleteRemovesComponents(t *testing.T) {
	e, _ := sceneEngine(t, 3)
	r := mustQuery(t, e, `DELETE FROM brep-face-edge-point WHERE brep_no = 2`)
	if r.Count != brepgen.CubeAtoms {
		t.Fatalf("deleted %d atoms, want %d", r.Count, brepgen.CubeAtoms)
	}
	rq := mustQuery(t, e, `SELECT ALL FROM brep-face-edge-point`)
	if len(rq.Molecules) != 2 {
		t.Fatalf("%d molecules after delete", len(rq.Molecules))
	}
	// Solids survive (not part of the deleted molecule type), but their
	// brep refs were auto-disconnected.
	rq = mustQuery(t, e, `SELECT ALL FROM solid WHERE brep = NULL`)
	if len(rq.Molecules) != 1 {
		t.Fatalf("%d solids lost their brep, want 1", len(rq.Molecules))
	}
}

func TestSemanticErrors(t *testing.T) {
	e, _ := sceneEngine(t, 1)
	bad := []string{
		`SELECT ALL FROM ghost`,
		`SELECT ALL FROM brep-ghost`,
		`SELECT nope FROM solid`,
		`SELECT ALL FROM brep-face WHERE ghost_attr = 1`,
		`SELECT ALL FROM brep-face WHERE EXISTS point: point.face = EMPTY`, // point not in molecule
		`SELECT face FROM solid`,                                           // face not a component
		`INSERT INTO ghost (a) VALUES (1)`,
		`MODIFY solid SET ghost = 1 WHERE solid_no = 1`,
	}
	for _, q := range bad {
		stmt, err := mql.ParseOne(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := e.Execute(stmt); err == nil {
			t.Errorf("Execute(%q) succeeded, want error", q)
		}
	}
}

func TestCursorOneMoleculeAtATime(t *testing.T) {
	e, _ := sceneEngine(t, 6)
	stmt, _ := mql.ParseOne(`SELECT ALL FROM brep-face WHERE brep_no >= 3`)
	plan, err := e.PlanSelect(stmt.(*mql.Select))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := plan.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	n := 0
	for {
		m, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			break
		}
		n++
	}
	if n != 4 {
		t.Fatalf("cursor delivered %d molecules, want 4", n)
	}
	// After exhaustion Next stays nil.
	if m, err := cur.Next(); m != nil || err != nil {
		t.Fatal("exhausted cursor returned data")
	}
}

func TestCheckIntegrityStatement(t *testing.T) {
	e, _ := sceneEngine(t, 1)
	mustQuery(t, e, `CHECK INTEGRITY brep`)

	// A brep with too few faces (cardinality (4,VAR)) fails the check.
	if _, err := e.System().Insert("brep", nil); err != nil {
		t.Fatal(err)
	}
	stmt, _ := mql.ParseOne(`CHECK INTEGRITY brep`)
	if _, err := e.Execute(stmt); err == nil {
		t.Fatal("cardinality violation not detected")
	}
}
