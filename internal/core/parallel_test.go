package core_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"prima/internal/core"
	"prima/internal/mql"
)

// openCursor plans and opens a SELECT.
func openCursor(t testing.TB, e *core.Engine, q string) *core.Cursor {
	t.Helper()
	stmt, err := mql.ParseOne(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	plan, err := e.PlanSelect(stmt.(*mql.Select))
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	cur, err := plan.Open()
	if err != nil {
		t.Fatalf("open %q: %v", q, err)
	}
	return cur
}

// TestParallelCursorMatchesSerial checks that the parallel assembly pipeline
// delivers exactly the serial cursor's molecules, in the same root order.
func TestParallelCursorMatchesSerial(t *testing.T) {
	e, _ := sceneEngine(t, 12)
	q := `SELECT ALL FROM brep-face-edge-point`

	e.SetAssemblyWorkers(1)
	serialCur := openCursor(t, e, q)
	serial, err := serialCur.Collect()
	serialCur.Close()
	if err != nil {
		t.Fatalf("serial Collect: %v", err)
	}

	e.SetAssemblyWorkers(4)
	e.SetAssemblyChunk(5) // force multiple chunks
	parCur := openCursor(t, e, q)
	parallel, err := parCur.Collect()
	parCur.Close()
	if err != nil {
		t.Fatalf("parallel Collect: %v", err)
	}

	if len(parallel) != len(serial) {
		t.Fatalf("parallel = %d molecules, serial = %d", len(parallel), len(serial))
	}
	for i := range serial {
		if serial[i].Root.Addr() != parallel[i].Root.Addr() {
			t.Fatalf("molecule %d: root %v != %v (order not preserved)", i, parallel[i].Root.Addr(), serial[i].Root.Addr())
		}
		if len(serial[i].SortedAddrs()) != len(parallel[i].SortedAddrs()) {
			t.Fatalf("molecule %d: %d atoms != %d", i, len(parallel[i].SortedAddrs()), len(serial[i].SortedAddrs()))
		}
	}
}

// TestParallelCursorQualification checks restriction and projection still
// decide per molecule under parallel assembly.
func TestParallelCursorQualification(t *testing.T) {
	e, _ := sceneEngine(t, 10)
	e.SetAssemblyWorkers(4)
	e.SetAssemblyChunk(3)
	r := mustQuery(t, e, `SELECT ALL FROM brep-face-edge-point WHERE brep_no >= 4 AND brep_no <= 7`)
	if len(r.Molecules) != 4 {
		t.Fatalf("got %d molecules, want 4", len(r.Molecules))
	}
	for i, m := range r.Molecules {
		v, _ := m.Root.Atom.Value("brep_no")
		if want := int64(i + 4); v.I != want {
			t.Fatalf("molecule %d: brep_no = %d, want %d (order)", i, v.I, want)
		}
	}
}

// TestParallelCursorEarlyClose closes a parallel cursor mid-stream; the
// pipeline must wind down without deadlocking the remaining workers (run
// under -race this also exercises the shutdown paths).
func TestParallelCursorEarlyClose(t *testing.T) {
	e, _ := sceneEngine(t, 20)
	e.SetAssemblyWorkers(4)
	e.SetAssemblyChunk(2)
	cur := openCursor(t, e, `SELECT ALL FROM brep-face-edge-point`)
	for i := 0; i < 3; i++ {
		m, err := cur.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if m == nil {
			t.Fatal("cursor dried up early")
		}
	}
	cur.Close()
	if m, err := cur.Next(); m != nil || err != nil {
		t.Fatalf("Next after Close = %v, %v", m, err)
	}
}

// TestParallelCursorErrorPropagation forces an assembly error (recursion
// bound) and checks it surfaces through the ordered pipeline.
func TestParallelCursorErrorPropagation(t *testing.T) {
	e := newEngine(t)
	// A three-solid recursion chain deeper than the allowed depth.
	r := mustQuery(t, e, `INSERT INTO solid (solid_no) VALUES (1), (2), (3)`)
	if len(r.Inserted) != 3 {
		t.Fatalf("seed solids = %d", len(r.Inserted))
	}
	mustQuery(t, e, fmt.Sprintf(`CONNECT %v TO %v VIA sub`, r.Inserted[0], r.Inserted[1]))
	mustQuery(t, e, fmt.Sprintf(`CONNECT %v TO %v VIA sub`, r.Inserted[1], r.Inserted[2]))

	e.SetMaxRecursionDepth(1)
	e.SetAssemblyWorkers(4)
	stmt, err := mql.ParseOne(`SELECT ALL FROM solid.sub-solid (RECURSIVE)`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := e.Execute(stmt); err == nil {
		t.Fatal("expected recursion depth error through the parallel cursor")
	}
}

// TestAbandonedCursorWindsDown drops a parallel cursor without Close; the
// finalizer safety net must still shut the pipeline's goroutines down.
func TestAbandonedCursorWindsDown(t *testing.T) {
	e, _ := sceneEngine(t, 20)
	e.SetAssemblyWorkers(4)
	e.SetAssemblyChunk(2)
	base := runtime.NumGoroutine()
	func() {
		cur := openCursor(t, e, `SELECT ALL FROM brep-face-edge-point`)
		if _, err := cur.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
		// cur goes out of scope without Close.
	}()
	for i := 0; i < 50; i++ {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
		if runtime.NumGoroutine() <= base {
			return
		}
	}
	t.Fatalf("pipeline goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
}

// TestScanSnapshotBound inserts a new root per delivered molecule; the
// lazy root stream must stay bounded by the population at open (snapshot
// semantics) instead of chasing its own inserts forever.
func TestScanSnapshotBound(t *testing.T) {
	e := newEngine(t)
	mustQuery(t, e, `INSERT INTO solid (solid_no) VALUES (1), (2), (3), (4), (5)`)
	e.SetAssemblyChunk(2)
	cur := openCursor(t, e, `SELECT ALL FROM solid`)
	defer cur.Close()
	n := 0
	for {
		m, err := cur.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if m == nil {
			break
		}
		n++
		if n > 5 {
			t.Fatal("cursor chased atoms inserted during iteration")
		}
		mustQuery(t, e, fmt.Sprintf(`INSERT INTO solid (solid_no) VALUES (%d)`, 100+n))
	}
	if n != 5 {
		t.Fatalf("delivered %d molecules, want the 5 present at open", n)
	}
}

// TestCloseJoinsWorkers closes a parallel cursor mid-stream and immediately
// mutates the scanned data: Close must have joined the workers, so under
// -race no background page read overlaps the update.
func TestCloseJoinsWorkers(t *testing.T) {
	e, _ := sceneEngine(t, 16)
	e.SetAssemblyWorkers(4)
	e.SetAssemblyChunk(2)
	cur := openCursor(t, e, `SELECT ALL FROM brep-face-edge-point`)
	if _, err := cur.Next(); err != nil {
		t.Fatalf("Next: %v", err)
	}
	cur.Close()
	r := mustQuery(t, e, `MODIFY face SET square_dim = 9.25 WHERE square_dim >= 0.0`)
	if r.Count == 0 {
		t.Fatal("modify touched nothing")
	}
}

// TestConcurrentQueries runs many parallel-cursor queries at once — the
// sharded buffer pool, batched reads and pipeline all under -race.
func TestConcurrentQueries(t *testing.T) {
	e, _ := sceneEngine(t, 8)
	e.SetAssemblyWorkers(3)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := fmt.Sprintf(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = %d`, g%8+1)
			stmt, err := mql.ParseOne(q)
			if err != nil {
				errs <- err
				return
			}
			r, err := e.Execute(stmt)
			if err != nil {
				errs <- err
				return
			}
			if len(r.Molecules) != 1 {
				errs <- fmt.Errorf("query %d: %d molecules", g, len(r.Molecules))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
