package core_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"prima/internal/access"
	"prima/internal/core"
	"prima/internal/mql"
	"prima/internal/workload/brepgen"
)

// planFor prepares a plan for a single SELECT without executing it.
func planFor(t testing.TB, e *core.Engine, q string) *core.Plan {
	t.Helper()
	stmt, err := mql.ParseOne(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	sel, ok := stmt.(*mql.Select)
	if !ok {
		t.Fatalf("%q is not a SELECT", q)
	}
	p, err := e.PlanSelect(sel)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return p
}

func TestExtractRootSSANormalization(t *testing.T) {
	e := newEngine(t)

	// Literal-on-the-left comparisons flip the operator.
	p := planFor(t, e, `SELECT ALL FROM brep WHERE 5 > brep_no`)
	if len(p.RootSSA) != 1 || p.RootSSA[0].Attr != "brep_no" || p.RootSSA[0].Op != access.OpLT {
		t.Fatalf("5 > brep_no: RootSSA = %+v, want brep_no OpLT 5", p.RootSSA)
	}
	p = planFor(t, e, `SELECT ALL FROM brep WHERE 5 = brep_no`)
	if len(p.RootSSA) != 1 || p.RootSSA[0].Op != access.OpEQ {
		t.Fatalf("5 = brep_no: RootSSA = %+v, want OpEQ", p.RootSSA)
	}
	p = planFor(t, e, `SELECT ALL FROM brep WHERE 5 <= brep_no`)
	if len(p.RootSSA) != 1 || p.RootSSA[0].Op != access.OpGE {
		t.Fatalf("5 <= brep_no: RootSSA = %+v, want OpGE", p.RootSSA)
	}

	// = EMPTY / <> EMPTY become the emptiness operators.
	p = planFor(t, e, `SELECT ALL FROM solid WHERE sub = EMPTY`)
	if len(p.RootSSA) != 1 || p.RootSSA[0].Attr != "sub" || p.RootSSA[0].Op != access.OpEmpty {
		t.Fatalf("sub = EMPTY: RootSSA = %+v, want OpEmpty", p.RootSSA)
	}
	p = planFor(t, e, `SELECT ALL FROM solid WHERE sub <> EMPTY`)
	if len(p.RootSSA) != 1 || p.RootSSA[0].Op != access.OpNotEmpty {
		t.Fatalf("sub <> EMPTY: RootSSA = %+v, want OpNotEmpty", p.RootSSA)
	}

	// Level-0 seed qualifications restrict the root; deeper levels do not.
	p = planFor(t, e, `SELECT ALL FROM piece_list WHERE piece_list(0).solid_no = 4711`)
	if len(p.RootSSA) != 1 || p.RootSSA[0].Attr != "solid_no" || p.RootSSA[0].Op != access.OpEQ {
		t.Fatalf("piece_list(0): RootSSA = %+v, want solid_no OpEQ", p.RootSSA)
	}
	p = planFor(t, e, `SELECT ALL FROM piece_list WHERE piece_list(1).solid_no = 4711`)
	if len(p.RootSSA) != 0 {
		t.Fatalf("piece_list(1): RootSSA = %+v, want empty", p.RootSSA)
	}

	// Non-root conjuncts never reach the root SSA.
	p = planFor(t, e, `SELECT ALL FROM brep-face-edge-point WHERE edge.length > 1.0`)
	if len(p.RootSSA) != 0 {
		t.Fatalf("edge.length: RootSSA = %+v, want empty", p.RootSSA)
	}
}

func TestRangeAccessPathSelection(t *testing.T) {
	e, _ := sceneEngine(t, 20)
	mustQuery(t, e, `CREATE ACCESS PATH bno ON brep (brep_no) USING BTREE`)

	p := planFor(t, e, `SELECT ALL FROM brep-face-edge-point WHERE brep_no > 5 AND brep_no <= 12`)
	if p.AccessKind != "pathrange" || p.PathName != "bno" {
		t.Fatalf("AccessKind = %s (path %s), want pathrange via bno", p.AccessKind, p.PathName)
	}
	if p.PathStart == nil || p.PathStart.I != 5 || p.PathStop == nil || p.PathStop.I != 12 {
		t.Fatalf("bounds = [%v, %v], want [5, 12]", p.PathStart, p.PathStop)
	}

	// Equality still wins over the range path.
	p = planFor(t, e, `SELECT ALL FROM brep WHERE brep_no = 7 AND brep_no > 2`)
	if p.AccessKind != "accesspath" {
		t.Fatalf("AccessKind = %s, want accesspath for equality", p.AccessKind)
	}

	// The strict lower bound is a superset; RootSSA must still filter it.
	r := mustQuery(t, e, `SELECT ALL FROM brep-face-edge-point WHERE brep_no > 5 AND brep_no <= 12`)
	if len(r.Molecules) != 7 {
		t.Fatalf("range query returned %d molecules, want 7", len(r.Molecules))
	}

	// With pushdown disabled the planner falls back to the atom-type scan
	// and still produces the same result.
	e.SetPushdown(false)
	p = planFor(t, e, `SELECT ALL FROM brep-face-edge-point WHERE brep_no > 5 AND brep_no <= 12`)
	if p.AccessKind != "atomscan" {
		t.Fatalf("pushdown off: AccessKind = %s, want atomscan", p.AccessKind)
	}
	r = mustQuery(t, e, `SELECT ALL FROM brep-face-edge-point WHERE brep_no > 5 AND brep_no <= 12`)
	if len(r.Molecules) != 7 {
		t.Fatalf("pushdown off: %d molecules, want 7", len(r.Molecules))
	}
	e.SetPushdown(true)
}

func TestSortOrderRangeSelection(t *testing.T) {
	e, _ := sceneEngine(t, 20)
	mustQuery(t, e, `CREATE SORT ORDER sno ON solid (solid_no)`)

	p := planFor(t, e, `SELECT ALL FROM solid WHERE solid_no >= 4 AND solid_no < 9`)
	if p.AccessKind != "sortrange" || p.SortOrder != "sno" {
		t.Fatalf("AccessKind = %s (sort order %s), want sortrange via sno", p.AccessKind, p.SortOrder)
	}
	r := mustQuery(t, e, `SELECT ALL FROM solid WHERE solid_no >= 4 AND solid_no < 9`)
	if len(r.Molecules) != 5 {
		t.Fatalf("sortrange query returned %d molecules, want 5", len(r.Molecules))
	}
}

func TestComponentPushdownExtraction(t *testing.T) {
	e := newEngine(t)
	mol := `SELECT ALL FROM brep-face-edge-point WHERE `

	// Bare non-root comparisons and explicit EXISTS are pushed.
	p := planFor(t, e, mol+`edge.length > 1.0 AND brep_no = 3`)
	if len(p.CompSSA) != 1 || p.CompSSA[0].TypeName != "edge" {
		t.Fatalf("CompSSA = %+v, want one edge conjunct", p.CompSSA)
	}
	if p.CompSSA[0].SSA[0].Op != access.OpGT {
		t.Fatalf("CompSSA op = %v, want OpGT", p.CompSSA[0].SSA[0].Op)
	}
	p = planFor(t, e, mol+`EXISTS edge: 1.0 < edge.length`)
	if len(p.CompSSA) != 1 || p.CompSSA[0].TypeName != "edge" || p.CompSSA[0].SSA[0].Op != access.OpGT {
		t.Fatalf("EXISTS: CompSSA = %+v, want edge OpGT (normalized)", p.CompSSA)
	}

	// EXISTS_AT_LEAST is pushed count-aware: the conjunct carries its
	// threshold so assembly can prune once the count cannot be reached.
	p = planFor(t, e, mol+`EXISTS_AT_LEAST (2) edge: edge.length > 1.0`)
	if len(p.CompSSA) != 1 || p.CompSSA[0].TypeName != "edge" || p.CompSSA[0].Min != 2 {
		t.Fatalf("EXISTS_AT_LEAST: CompSSA = %+v, want edge conjunct with Min 2", p.CompSSA)
	}

	// Pushdown stays conservative: non-monotone quantifiers, OR trees,
	// RECORD field paths and cross-type EXISTS conditions are not pushed.
	for _, where := range []string{
		`FOR_ALL edge: edge.length > 1.0`,
		`EXISTS_EXACTLY (12) edge: edge.length > 1.0`,
		`edge.length > 1.0 OR brep_no = 3`,
		`point.placement.x_coord > 1.0`,
		`EXISTS edge: face.square_dim > 1.0`,
		`NOT (edge.length > 1.0)`,
	} {
		p := planFor(t, e, mol+where)
		if len(p.CompSSA) != 0 {
			t.Fatalf("%s: CompSSA = %+v, want empty", where, p.CompSSA)
		}
	}

	// With pushdown disabled nothing is extracted.
	e.SetPushdown(false)
	p = planFor(t, e, mol+`edge.length > 1.0`)
	if len(p.CompSSA) != 0 {
		t.Fatalf("pushdown off: CompSSA = %+v, want empty", p.CompSSA)
	}
	e.SetPushdown(true)
}

func TestPushdownPruneSemantics(t *testing.T) {
	e, _ := sceneEngine(t, 14)
	// Edge lengths are 1+size variants in [1, 7]; 1000.0 is unsatisfiable.
	for _, tc := range []struct {
		q    string
		want int
	}{
		{`SELECT ALL FROM brep-face-edge-point WHERE edge.length > 1000.0`, 0},
		{`SELECT ALL FROM brep-face-edge-point WHERE EXISTS edge: edge.length > 1000.0`, 0},
		{`SELECT ALL FROM brep-face-edge-point WHERE edge.length > 5.5`, 4},
		{`SELECT ALL FROM brep-face-edge-point WHERE FOR_ALL edge: edge.length > 5.5`, 4},
	} {
		for _, pushdown := range []bool{true, false} {
			e.SetPushdown(pushdown)
			r := mustQuery(t, e, tc.q)
			if len(r.Molecules) != tc.want {
				t.Fatalf("pushdown=%v %s: %d molecules, want %d", pushdown, tc.q, len(r.Molecules), tc.want)
			}
		}
	}
	e.SetPushdown(true)
}

// renderSet renders a molecule multiset order-independently.
func renderSet(mols []*core.Molecule) []string {
	out := make([]string, 0, len(mols))
	for _, m := range mols {
		out = append(out, m.String())
	}
	sort.Strings(out)
	return out
}

// TestDifferentialCompiledPipeline runs a query corpus with compilation and
// pushdown force-disabled vs. enabled and asserts identical result sets —
// the semantics-preservation gate for the whole compiled pipeline.
func TestDifferentialCompiledPipeline(t *testing.T) {
	e, _ := sceneEngine(t, 12)
	if _, _, err := brepgen.BuildAssembly(e, 4711, 3, 2); err != nil {
		t.Fatalf("BuildAssembly: %v", err)
	}
	mustQuery(t, e, `CREATE ACCESS PATH bno ON brep (brep_no) USING BTREE`)
	mustQuery(t, e, `CREATE SORT ORDER sno ON solid (solid_no)`)

	corpus := []string{
		`SELECT ALL FROM brep-face-edge-point WHERE brep_no = 3`,
		`SELECT ALL FROM brep-face-edge-point WHERE brep_no > 3 AND brep_no <= 7`,
		`SELECT ALL FROM brep-face-edge-point WHERE 5 > brep_no`,
		`SELECT ALL FROM brep-face-edge-point WHERE edge.length > 5.5`,
		`SELECT ALL FROM brep-face-edge-point WHERE edge.length > 5.5 AND brep_no < 9`,
		`SELECT ALL FROM brep-face-edge-point WHERE edge.length > 1000.0`,
		`SELECT ALL FROM brep-face-edge-point WHERE FOR_ALL edge: edge.length > 0.5`,
		`SELECT ALL FROM brep-face-edge-point WHERE EXISTS_AT_LEAST (4) face: face.square_dim > 2.0`,
		`SELECT ALL FROM brep-face-edge-point WHERE EXISTS_EXACTLY (12) edge: edge.length > 0.5`,
		`SELECT ALL FROM brep-face-edge-point WHERE EXISTS edge: edge.length > 6.5`,
		`SELECT ALL FROM brep-face-edge-point WHERE NOT (brep_no = 3)`,
		`SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2 OR edge.length > 100.0`,
		`SELECT ALL FROM brep-face-edge-point WHERE point.placement.x_coord > 50.0 AND brep_no < 9`,
		`SELECT edge, (point, face := SELECT face_id FROM face WHERE square_dim > 10.0)
		   FROM brep-edge-(face, point) WHERE brep_no = 2`,
		`SELECT solid_no, description FROM solid WHERE sub = EMPTY`,
		`SELECT ALL FROM solid WHERE sub <> EMPTY`,
		`SELECT ALL FROM solid WHERE solid_no >= 4 AND solid_no < 9`,
		`SELECT ALL FROM piece_list WHERE piece_list(0).solid_no = 4711`,
		`SELECT ALL FROM piece_list WHERE piece_list(1).solid_no > 4711 AND piece_list(0).solid_no = 4711`,
	}
	for _, q := range corpus {
		e.SetPredicateCompilation(false)
		e.SetPushdown(false)
		base := mustQuery(t, e, q)
		e.SetPredicateCompilation(true)
		e.SetPushdown(true)
		got := mustQuery(t, e, q)
		want, have := renderSet(base.Molecules), renderSet(got.Molecules)
		if len(want) != len(have) {
			t.Fatalf("%s: baseline %d molecules, compiled %d", q, len(want), len(have))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("%s: molecule %d differs\nbaseline:\n%s\ncompiled:\n%s", q, i, want[i], have[i])
			}
		}
	}
}

func TestPlanCache(t *testing.T) {
	e, _ := sceneEngine(t, 4)
	q := `SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2`

	h0, _, _ := e.PlanCacheStats()
	for i := 0; i < 3; i++ {
		r, err := e.ExecuteScript(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(r) != 1 || len(r[0].Molecules) != 1 {
			t.Fatalf("run %d: unexpected result %+v", i, r)
		}
	}
	h1, _, size := e.PlanCacheStats()
	if h1-h0 != 2 {
		t.Fatalf("plan cache hits = %d, want 2", h1-h0)
	}
	if size == 0 {
		t.Fatal("plan cache is empty after caching a SELECT")
	}

	// DDL bumps the schema version; the stale plan must not be reused.
	mustQuery(t, e, `CREATE ACCESS PATH bno ON brep (brep_no) USING BTREE`)
	p, err := e.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.AccessKind != "accesspath" {
		t.Fatalf("after DDL: AccessKind = %s, want accesspath (stale cached plan reused?)", p.AccessKind)
	}

	// Toggling planner knobs changes the key, too.
	e.SetPredicateCompilation(false)
	p2, err := e.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p {
		t.Fatal("knob flip returned the cached plan of the other configuration")
	}
	e.SetPredicateCompilation(true)

	// Disabling drops all plans and stops caching.
	e.SetPlanCacheSize(0)
	if _, _, size := e.PlanCacheStats(); size != 0 {
		t.Fatalf("disabled cache still holds %d plans", size)
	}
	if _, err := e.ExecuteScript(q); err != nil {
		t.Fatal(err)
	}
	if _, _, size := e.PlanCacheStats(); size != 0 {
		t.Fatal("disabled cache cached a plan")
	}
	e.SetPlanCacheSize(core.DefaultPlanCacheSize)
}

// TestPlanCacheConcurrentCursors opens concurrent cursors over one shared
// cached plan — the sharing contract of the cache (exercised under -race).
func TestPlanCacheConcurrentCursors(t *testing.T) {
	e, _ := sceneEngine(t, 8)
	e.SetAssemblyWorkers(4) // parallel pipeline + pushdown + compiled eval
	q := `SELECT ALL FROM brep-face-edge-point WHERE edge.length > 1.5 AND brep_no > 1`
	p, err := e.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur, err := p.Open()
			if err != nil {
				errs <- err
				return
			}
			defer cur.Close()
			mols, err := cur.Collect()
			if err != nil {
				errs <- err
				return
			}
			if len(mols) != 6 {
				errs <- fmt.Errorf("got %d molecules, want 6", len(mols))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEvalQuantBindingRestore pins the interpreter's scratch-binding reuse:
// nested quantifiers over the same variable must shadow and restore.
func TestEvalQuantBindingRestore(t *testing.T) {
	e, _ := sceneEngine(t, 3)
	e.SetPredicateCompilation(false)
	defer e.SetPredicateCompilation(true)
	// The outer binding must be intact after the inner quantifier ran.
	q := `SELECT ALL FROM brep-face-edge-point
	      WHERE EXISTS edge: (EXISTS edge: edge.length > 0.5) AND edge.length > 0.5`
	r := mustQuery(t, e, q)
	if len(r.Molecules) != 3 {
		t.Fatalf("nested same-var quantifier: %d molecules, want 3", len(r.Molecules))
	}
}

// TestQualifiedProjectionCompiled checks the compiled qualified-projection
// predicate path against the interpreted one.
func TestQualifiedProjectionCompiled(t *testing.T) {
	e, _ := sceneEngine(t, 6)
	q := `SELECT edge, (point, face := SELECT face_id, square_dim FROM face WHERE square_dim > 10.0)
	      FROM brep-edge-(face, point) WHERE brep_no = 4`
	e.SetPredicateCompilation(false)
	base := mustQuery(t, e, q)
	e.SetPredicateCompilation(true)
	got := mustQuery(t, e, q)
	want, have := renderSet(base.Molecules), renderSet(got.Molecules)
	if strings.Join(want, "\n") != strings.Join(have, "\n") {
		t.Fatalf("qualified projection differs\nbaseline:\n%s\ncompiled:\n%s",
			strings.Join(want, "\n"), strings.Join(have, "\n"))
	}
}
