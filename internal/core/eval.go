package core

import (
	"fmt"

	"prima/internal/access/atom"
	"prima/internal/catalog"
	"prima/internal/mql"
)

// Molecule predicate evaluation. References to non-root component
// attributes without an explicit quantifier are implicitly existentially
// quantified ("there is a component atom satisfying the comparison"), which
// matches the reading of the paper's Table 2.1 examples; FOR_ALL and
// EXISTS_AT_LEAST are explicit.

// evalMolecule decides a WHERE predicate for one molecule.
func (e *Engine) evalMolecule(x mql.Expr, m *Molecule) (bool, error) {
	return e.eval(x, m, nil)
}

// eval evaluates a predicate; bound maps quantifier variables (atom type
// names) to the currently bound atom.
func (e *Engine) eval(x mql.Expr, m *Molecule, bound map[string]*MAtom) (bool, error) {
	switch v := x.(type) {
	case *mql.Binary:
		l, err := e.eval(v.L, m, bound)
		if err != nil {
			return false, err
		}
		if v.Op == "AND" {
			if !l {
				return false, nil
			}
			return e.eval(v.R, m, bound)
		}
		if l {
			return true, nil
		}
		return e.eval(v.R, m, bound)
	case *mql.Not:
		r, err := e.eval(v.X, m, bound)
		return !r, err
	case *mql.Quant:
		return e.evalQuant(v, m, bound)
	case *mql.Compare:
		return e.evalCompare(v, m, bound)
	default:
		return false, fmt.Errorf("%w: predicate %T", ErrSemantic, x)
	}
}

func (e *Engine) evalQuant(q *mql.Quant, m *Molecule, bound map[string]*MAtom) (bool, error) {
	atoms := m.AtomsOf(q.Var)
	count := 0
	// Reuse one binding map across the component atoms instead of copying it
	// per atom; a shadowed outer binding of the same variable is restored
	// afterwards.
	if bound == nil {
		bound = map[string]*MAtom{}
	}
	prev, shadowed := bound[q.Var]
	for _, ma := range atoms {
		bound[q.Var] = ma
		ok, err := e.eval(q.Cond, m, bound)
		if err != nil {
			return false, err
		}
		if ok {
			count++
		}
	}
	if shadowed {
		bound[q.Var] = prev
	} else {
		delete(bound, q.Var)
	}
	switch q.Kind {
	case "EXISTS":
		return count >= 1, nil
	case "FOR_ALL":
		return count == len(atoms), nil
	case "EXISTS_AT_LEAST":
		return count >= q.N, nil
	case "EXISTS_EXACTLY":
		return count == q.N, nil
	default:
		return false, fmt.Errorf("%w: quantifier %s", ErrSemantic, q.Kind)
	}
}

// evalCompare evaluates <operand> op <operand> with implicit existential
// semantics over component atoms.
func (e *Engine) evalCompare(c *mql.Compare, m *Molecule, bound map[string]*MAtom) (bool, error) {
	// attr = EMPTY / attr <> EMPTY.
	if _, isEmpty := c.R.(*mql.EmptyLit); isEmpty {
		ref, ok := c.L.(*mql.AttrRef)
		if !ok {
			return false, fmt.Errorf("%w: EMPTY requires an attribute operand", ErrSemantic)
		}
		vals, err := e.refValues(ref, m, bound)
		if err != nil {
			return false, err
		}
		for _, v := range vals {
			empty := v.Len() == 0
			if (c.Op == mql.CmpEQ && empty) || (c.Op == mql.CmpNE && !empty) {
				return true, nil
			}
		}
		return false, nil
	}

	// attr = NULL / attr <> NULL: IS-NULL semantics.
	if lit, isLit := c.R.(*mql.Lit); isLit && lit.V.IsNull() {
		ref, ok := c.L.(*mql.AttrRef)
		if !ok {
			return false, fmt.Errorf("%w: NULL requires an attribute operand", ErrSemantic)
		}
		vals, err := e.refValues(ref, m, bound)
		if err != nil {
			return false, err
		}
		for _, v := range vals {
			if (c.Op == mql.CmpEQ && v.IsNull()) || (c.Op == mql.CmpNE && !v.IsNull()) {
				return true, nil
			}
		}
		return false, nil
	}

	lvals, err := e.operandValues(c.L, m, bound)
	if err != nil {
		return false, err
	}
	rvals, err := e.operandValues(c.R, m, bound)
	if err != nil {
		return false, err
	}
	for _, l := range lvals {
		for _, r := range rvals {
			if l.IsNull() || r.IsNull() {
				continue
			}
			cmp := atom.Compare(l, r)
			ok := false
			switch c.Op {
			case mql.CmpEQ:
				ok = cmp == 0
			case mql.CmpNE:
				ok = cmp != 0
			case mql.CmpLT:
				ok = cmp < 0
			case mql.CmpLE:
				ok = cmp <= 0
			case mql.CmpGT:
				ok = cmp > 0
			case mql.CmpGE:
				ok = cmp >= 0
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

func (e *Engine) operandValues(x mql.Expr, m *Molecule, bound map[string]*MAtom) ([]atom.Value, error) {
	switch v := x.(type) {
	case *mql.Lit:
		return []atom.Value{v.V}, nil
	case *mql.AttrRef:
		return e.refValues(v, m, bound)
	default:
		return nil, fmt.Errorf("%w: operand %T", ErrSemantic, x)
	}
}

// refValues resolves an attribute reference to the matching values within
// the molecule (one value per matching atom).
func (e *Engine) refValues(ref *mql.AttrRef, m *Molecule, bound map[string]*MAtom) ([]atom.Value, error) {
	tgt, err := e.resolveRefTarget(ref, m.Type)
	if err != nil {
		return nil, err
	}
	var atoms []*MAtom
	if b, ok := bound[tgt.typeName]; ok {
		atoms = []*MAtom{b}
	} else {
		atoms = m.AtomsOf(tgt.typeName)
	}
	t, _ := e.sys.Schema().AtomType(tgt.typeName)
	idx, ok := t.AttrIndex(tgt.attr)
	if !ok {
		return nil, fmt.Errorf("core: lost attribute %s.%s", tgt.typeName, tgt.attr)
	}
	var out []atom.Value
	for _, ma := range atoms {
		if tgt.hasLevel && ma.Level != tgt.level {
			continue
		}
		v := ma.Atom.Values[idx]
		// Navigate RECORD field path.
		spec := t.Attrs[idx].Type
		okPath := true
		for _, f := range tgt.fields {
			fi := -1
			for j, rf := range spec.Fields {
				if rf.Name == f {
					fi = j
					break
				}
			}
			if fi < 0 || v.K != atom.KindRecord || fi >= len(v.E) {
				okPath = false
				break
			}
			spec = spec.Fields[fi].Type
			v = v.E[fi]
		}
		if okPath {
			out = append(out, v)
		}
	}
	return out, nil
}

// applyProjection rewrites the molecule in place according to the compiled
// projection: qualified-projection predicates filter component atoms,
// attribute lists restrict values, unmentioned types become hidden
// connectors (kept only where needed for molecule structure).
func (e *Engine) applyProjection(p *projection, m *Molecule) error {
	if p == nil || p.all {
		return nil
	}
	// Decide fate per atom.
	for typeName, atoms := range m.ByType {
		tp := p.perType[typeName]
		t, _ := e.sys.Schema().AtomType(typeName)
		// Compiled qualified-projection predicates evaluate against one
		// reusable single-atom pseudo molecule instead of building one per
		// component atom.
		var pseudo *Molecule
		if tp != nil && tp.whereC != nil {
			pseudo = &Molecule{
				Type:   tp.subType,
				ByType: map[string][]*MAtom{typeName: make([]*MAtom, 1)},
			}
		}
		var kept []*MAtom
		for _, ma := range atoms {
			if tp == nil {
				ma.Hidden = true
				kept = append(kept, ma)
				continue
			}
			if tp.where != nil {
				var ok bool
				var err error
				if pseudo != nil {
					pseudo.ByType[typeName][0] = ma
					pseudo.Root = ma
					ok, err = tp.whereC.Eval(pseudo)
				} else {
					ok, err = e.evalComponentPredicate(tp.where, ma)
				}
				if err != nil {
					return err
				}
				if !ok {
					ma.Hidden = true
					kept = append(kept, ma)
					continue
				}
			}
			if !tp.whole && tp.attrs != nil {
				// Project the attribute vector (identifier always kept).
				nv := make([]atom.Value, len(ma.Atom.Values))
				nv[t.IdentIndex()] = ma.Atom.Values[t.IdentIndex()]
				for _, a := range tp.attrs {
					i, _ := t.AttrIndex(a)
					nv[i] = ma.Atom.Values[i]
				}
				projected := *ma.Atom
				projected.Values = nv
				ma.Atom = &projected
			}
			kept = append(kept, ma)
		}
		m.ByType[typeName] = kept
	}
	return nil
}

// evalComponentPredicate evaluates a qualified-projection predicate against
// one component atom.
func (e *Engine) evalComponentPredicate(x mql.Expr, ma *MAtom) (bool, error) {
	pseudo := &Molecule{
		Type:   &catalog.MoleculeType{Root: &catalog.MolNode{AtomType: ma.Atom.Type.Name}},
		ByType: map[string][]*MAtom{ma.Atom.Type.Name: {ma}},
		Root:   ma,
	}
	return e.eval(x, pseudo, nil)
}
