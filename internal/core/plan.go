package core

import (
	"errors"
	"fmt"
	"time"

	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/access/mdindex"
	"prima/internal/catalog"
	"prima/internal/mql"
)

// Errors returned by planning and execution.
var (
	ErrSemantic   = errors.New("core: semantic error")
	ErrUnresolved = errors.New("core: schema has unresolved associations")
)

// Plan is a prepared molecule query: the resolved (hierarchical) molecule
// type, the chosen root access (atom-type scan, access-path scan or
// atom-cluster-type scan), pushed-down restrictions, the residual predicate
// and the projection. Plans are produced by the query validation /
// simplification / preparation pipeline of §3.1.
type Plan struct {
	engine *Engine
	Mol    *catalog.MoleculeType
	Root   *catalog.AtomType

	// Root access choice.
	AccessKind string // "direct" | "atomscan" | "accesspath" | "pathrange" | "gridrange" | "sortrange" | "cluster"
	PathName   string // access path to use
	PathKey    atom.Value
	// DirectRoot is the single candidate root of a "direct" access: an
	// equality on the root's IDENTIFIER attribute names the atom's logical
	// address outright, so root enumeration needs no index and no scan.
	DirectRoot addr.LogicalAddr
	// PathStart/PathStop bound "pathrange" and "sortrange" accesses
	// (inclusive; a superset is fine — RootSSA re-decides every root).
	PathStart *atom.Value
	PathStop  *atom.Value
	// PathRanges bounds a "gridrange" access: one (possibly open) inclusive
	// interval per grid dimension, again a superset re-decided by RootSSA.
	PathRanges []mdindex.Range
	SortOrder  string // sort order backing a "sortrange" access
	Cluster    string // cluster type to use

	RootSSA access.SSA // pushed-down root restrictions
	// CompSSA is the pushed-down non-root component restrictions: implicitly
	// existential single-component conjuncts decided during assembly.
	CompSSA  []CompCond
	Where    mql.Expr // residual molecule predicate (may be nil)
	Project  *projection
	MaxDepth int

	whereC *compiledPred // compiled residual predicate (nil = interpret)
	// reach maps each molecule node to the component types of its subtree,
	// so assembly knows when a pushed conjunct can no longer be satisfied.
	reach map[*catalog.MolNode]map[string]bool
}

// CompCond is one pushed-down component conjunct: the molecule is pruned
// when fewer than Min distinct atoms of TypeName satisfy the
// (single-condition) SSA — Min is 1 for implicitly existential conjuncts and
// n for EXISTS_AT_LEAST (n). The conjunct also stays in the residual
// predicate, so pushdown is only ever a fast negative path — semantics never
// depend on it.
type CompCond struct {
	TypeName string
	SSA      access.SSA
	Min      int
}

// projection compiled from the SELECT list.
type projection struct {
	all bool
	// perType maps atom type name -> projection spec for atoms of the type.
	perType map[string]*typeProjection
}

type typeProjection struct {
	whole   bool
	attrs   []string // projected attributes (when !whole)
	where   mql.Expr // qualified projection predicate (may be nil)
	whereC  *compiledPred
	subType *catalog.MoleculeType // single-type pseudo molecule for where
}

// PlanSelect validates a SELECT statement against the schema and prepares
// an executable plan.
func (e *Engine) PlanSelect(sel *mql.Select) (*Plan, error) {
	return e.planSelect(sel, e.planConfig())
}

// planSelect prepares a plan under one planConfig snapshot — callers that
// cache the plan pass the same snapshot they keyed it with.
func (e *Engine) planSelect(sel *mql.Select, cfg planConfig) (*Plan, error) {
	defer e.planNs.ObserveSince(time.Now())
	if err := e.ensureResolved(); err != nil {
		return nil, err
	}
	// Query validation and modification: resolve predefined molecule
	// types, normalize to a hierarchical molecule type.
	mol, err := mql.LowerMolecule(e.sys.Schema(), "", sel.From)
	if err != nil {
		return nil, err
	}
	if sel.From.Name != mol.Root.AtomType {
		// FROM named a predefined molecule type; remember its name for
		// seed qualifications like piece_list(0).attr.
		mol.Name = sel.From.Name
	}
	root, ok := e.sys.Schema().AtomType(mol.Root.AtomType)
	if !ok {
		return nil, fmt.Errorf("%w: %s", catalog.ErrUnknownType, mol.Root.AtomType)
	}
	p := &Plan{engine: e, Mol: mol, Root: root, AccessKind: "atomscan", MaxDepth: cfg.depth}
	compileOn, pushdownOn := cfg.compile, cfg.pushdown

	// Validate and compile the projection.
	proj, err := e.compileProjection(sel, mol, compileOn)
	if err != nil {
		return nil, err
	}
	p.Project = proj

	// Validate the predicate's attribute references and lower the residual
	// predicate to its compiled form.
	if sel.Where != nil {
		if err := e.checkExpr(sel.Where, mol); err != nil {
			return nil, err
		}
		p.Where = sel.Where
		if compileOn {
			p.whereC = e.compilePredicate(sel.Where, mol)
		}
	}

	// Query preparation: extract pushed-down root restrictions, push
	// single-component conjuncts into assembly, and choose the root access.
	p.RootSSA = e.extractRootSSA(sel.Where, mol, root)
	if pushdownOn {
		p.CompSSA = e.extractComponentSSA(sel.Where, mol, root)
		if len(p.CompSSA) > 0 {
			p.reach = reachability(mol)
		}
	}
	e.chooseRootAccess(p, pushdownOn)
	return p, nil
}

// compileProjection lowers the SELECT list.
func (e *Engine) compileProjection(sel *mql.Select, mol *catalog.MoleculeType, compileOn bool) (*projection, error) {
	proj := &projection{perType: map[string]*typeProjection{}}
	if sel.All {
		proj.all = true
		return proj, nil
	}
	molTypes := mol.AtomTypes()
	hasType := func(name string) bool {
		for _, t := range molTypes {
			if t == name {
				return true
			}
		}
		return false
	}
	get := func(name string) *typeProjection {
		tp := proj.perType[name]
		if tp == nil {
			tp = &typeProjection{}
			proj.perType[name] = tp
		}
		return tp
	}
	for _, item := range sel.Items {
		switch {
		case item.Sub != nil:
			// Qualified projection: qualifier := SELECT attrs FROM type WHERE ...
			typeName := item.Sub.From.Name
			if !hasType(typeName) {
				return nil, fmt.Errorf("%w: qualified projection type %s not in molecule", ErrSemantic, typeName)
			}
			if item.Qualifier != typeName {
				return nil, fmt.Errorf("%w: qualified projection %s := SELECT ... FROM %s must match", ErrSemantic, item.Qualifier, typeName)
			}
			tp := get(typeName)
			if item.Sub.All {
				tp.whole = true
			} else {
				for _, si := range item.Sub.Items {
					if si.Sub != nil {
						return nil, fmt.Errorf("%w: nested qualified projections are not supported", ErrSemantic)
					}
					if err := e.addProjectedAttr(tp, typeName, si.Name); err != nil {
						return nil, err
					}
				}
			}
			if item.Sub.Where != nil {
				sub := &catalog.MoleculeType{Root: &catalog.MolNode{AtomType: typeName}}
				if err := e.checkExpr(item.Sub.Where, sub); err != nil {
					return nil, err
				}
				tp.where = item.Sub.Where
				tp.subType = sub
				if compileOn {
					tp.whereC = e.compilePredicate(item.Sub.Where, sub)
				}
			}
		case item.Qualifier != "":
			// type.attr
			if !hasType(item.Qualifier) {
				return nil, fmt.Errorf("%w: %s is not a component of the molecule", ErrSemantic, item.Qualifier)
			}
			if err := e.addProjectedAttr(get(item.Qualifier), item.Qualifier, item.Name); err != nil {
				return nil, err
			}
		case hasType(item.Name):
			// Whole component type.
			get(item.Name).whole = true
		default:
			// Bare attribute: find its unique owning type in the molecule.
			owner := ""
			for _, tn := range molTypes {
				t, _ := e.sys.Schema().AtomType(tn)
				if _, ok := t.AttrIndex(item.Name); ok {
					if owner != "" {
						return nil, fmt.Errorf("%w: attribute %s is ambiguous (in %s and %s)", ErrSemantic, item.Name, owner, tn)
					}
					owner = tn
				}
			}
			if owner == "" {
				return nil, fmt.Errorf("%w: unknown attribute %s", ErrSemantic, item.Name)
			}
			if err := e.addProjectedAttr(get(owner), owner, item.Name); err != nil {
				return nil, err
			}
		}
	}
	return proj, nil
}

func (e *Engine) addProjectedAttr(tp *typeProjection, typeName, attr string) error {
	t, _ := e.sys.Schema().AtomType(typeName)
	if _, ok := t.AttrIndex(attr); !ok {
		return fmt.Errorf("%w: %s.%s", catalog.ErrUnknownAttr, typeName, attr)
	}
	tp.attrs = append(tp.attrs, attr)
	return nil
}

// checkExpr validates every attribute reference of an expression against the
// molecule type.
func (e *Engine) checkExpr(x mql.Expr, mol *catalog.MoleculeType) error {
	switch v := x.(type) {
	case nil:
		return nil
	case *mql.Binary:
		if err := e.checkExpr(v.L, mol); err != nil {
			return err
		}
		return e.checkExpr(v.R, mol)
	case *mql.Not:
		return e.checkExpr(v.X, mol)
	case *mql.Compare:
		if err := e.checkExpr(v.L, mol); err != nil {
			return err
		}
		return e.checkExpr(v.R, mol)
	case *mql.Quant:
		found := false
		for _, tn := range mol.AtomTypes() {
			if tn == v.Var {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%w: quantifier variable %s is not a component type", ErrSemantic, v.Var)
		}
		return e.checkExpr(v.Cond, mol)
	case *mql.AttrRef:
		_, err := e.resolveRefTarget(v, mol)
		return err
	case *mql.Lit, *mql.EmptyLit:
		return nil
	default:
		return fmt.Errorf("%w: unsupported expression %T", ErrSemantic, x)
	}
}

// refTarget describes a resolved attribute reference.
type refTarget struct {
	typeName string
	attr     string   // first attribute
	fields   []string // RECORD field path
	level    int
	hasLevel bool
}

// resolveRefTarget resolves an AttrRef's owning atom type within a molecule.
func (e *Engine) resolveRefTarget(ref *mql.AttrRef, mol *catalog.MoleculeType) (refTarget, error) {
	schema := e.sys.Schema()
	molTypes := mol.AtomTypes()
	out := refTarget{level: ref.Level, hasLevel: ref.HasLevel}

	parts := ref.Parts
	// molName(level).attr: the molecule name qualifies the ROOT type.
	if ref.HasLevel {
		if len(parts) < 2 {
			return out, fmt.Errorf("%w: level reference needs an attribute", ErrSemantic)
		}
		if parts[0] != mol.Name && parts[0] != mol.Root.AtomType {
			return out, fmt.Errorf("%w: %s(%d) does not name this molecule", ErrSemantic, parts[0], ref.Level)
		}
		out.typeName = mol.Root.AtomType
		out.attr = parts[1]
		out.fields = parts[2:]
	} else if len(parts) >= 2 {
		// type.attr (or attr.field when parts[0] is an attribute).
		if _, ok := schema.AtomType(parts[0]); ok {
			found := false
			for _, tn := range molTypes {
				if tn == parts[0] {
					found = true
					break
				}
			}
			if !found {
				return out, fmt.Errorf("%w: %s is not a component of the molecule", ErrSemantic, parts[0])
			}
			out.typeName = parts[0]
			out.attr = parts[1]
			out.fields = parts[2:]
		} else {
			// attr.field... on a unique owner.
			owner, err := e.uniqueOwner(parts[0], molTypes)
			if err != nil {
				return out, err
			}
			out.typeName = owner
			out.attr = parts[0]
			out.fields = parts[1:]
		}
	} else {
		owner, err := e.uniqueOwner(parts[0], molTypes)
		if err != nil {
			return out, err
		}
		out.typeName = owner
		out.attr = parts[0]
	}

	t, _ := schema.AtomType(out.typeName)
	if t == nil {
		return out, fmt.Errorf("%w: %s", catalog.ErrUnknownType, out.typeName)
	}
	i, ok := t.AttrIndex(out.attr)
	if !ok {
		return out, fmt.Errorf("%w: %s.%s", catalog.ErrUnknownAttr, out.typeName, out.attr)
	}
	// Validate RECORD field path.
	spec := t.Attrs[i].Type
	for _, f := range out.fields {
		if spec.Kind != atom.KindRecord {
			return out, fmt.Errorf("%w: %s.%s is not a RECORD", ErrSemantic, out.typeName, out.attr)
		}
		found := -1
		for j, rf := range spec.Fields {
			if rf.Name == f {
				found = j
				break
			}
		}
		if found < 0 {
			return out, fmt.Errorf("%w: RECORD field %s", catalog.ErrUnknownAttr, f)
		}
		spec = spec.Fields[found].Type
	}
	return out, nil
}

// uniqueOwner finds the single molecule component type having the attribute.
// Preference: the root type wins (so brep_no resolves to the root even if
// another component also had it).
func (e *Engine) uniqueOwner(attr string, molTypes []string) (string, error) {
	schema := e.sys.Schema()
	if len(molTypes) > 0 {
		rt, _ := schema.AtomType(molTypes[0])
		if rt != nil {
			if _, ok := rt.AttrIndex(attr); ok {
				return molTypes[0], nil
			}
		}
	}
	owner := ""
	for _, tn := range molTypes[1:] {
		t, _ := schema.AtomType(tn)
		if t == nil {
			continue
		}
		if _, ok := t.AttrIndex(attr); ok {
			if owner != "" {
				return "", fmt.Errorf("%w: attribute %s is ambiguous (%s, %s)", ErrSemantic, attr, owner, tn)
			}
			owner = tn
		}
	}
	if owner == "" {
		return "", fmt.Errorf("%w: unknown attribute %s", catalog.ErrUnknownAttr, attr)
	}
	return owner, nil
}

// normalizeCompare matches <ref> op <literal> in either orientation, flipping
// the operator for literal-on-the-left forms (5 > attr ⇒ attr < 5). ok is
// false for comparisons that are not a ref/literal pair or whose operator has
// no SSA equivalent — unrecognized operators are skipped, never mapped to a
// zero-valued (wrong) condition.
func normalizeCompare(v *mql.Compare) (ref *mql.AttrRef, op access.Op, val atom.Value, ok bool) {
	ref, refL := v.L.(*mql.AttrRef)
	lit, litR := v.R.(*mql.Lit)
	flip := false
	if !refL || !litR {
		ref2, okRef := v.R.(*mql.AttrRef)
		lit2, okLit := v.L.(*mql.Lit)
		if !okRef || !okLit {
			return nil, 0, atom.Value{}, false
		}
		ref, lit, flip = ref2, lit2, true
	}
	switch v.Op {
	case mql.CmpEQ:
		op = access.OpEQ
	case mql.CmpNE:
		op = access.OpNE
	case mql.CmpLT:
		op = access.OpLT
	case mql.CmpLE:
		op = access.OpLE
	case mql.CmpGT:
		op = access.OpGT
	case mql.CmpGE:
		op = access.OpGE
	default:
		return nil, 0, atom.Value{}, false
	}
	if flip {
		switch op {
		case access.OpLT:
			op = access.OpGT
		case access.OpLE:
			op = access.OpGE
		case access.OpGT:
			op = access.OpLT
		case access.OpGE:
			op = access.OpLE
		}
	}
	return ref, op, lit.V, true
}

// extractRootSSA pulls conjuncts of the form <rootAttr> op <literal> out of
// the WHERE clause — "qualifications 'pushed down' for efficiency reasons".
// Level-0 references (seed qualification of recursive molecules) also
// restrict the root.
func (e *Engine) extractRootSSA(where mql.Expr, mol *catalog.MoleculeType, root *catalog.AtomType) access.SSA {
	var ssa access.SSA
	var walk func(x mql.Expr)
	walk = func(x mql.Expr) {
		switch v := x.(type) {
		case *mql.Binary:
			if v.Op == "AND" {
				walk(v.L)
				walk(v.R)
			}
		case *mql.Compare:
			if ref, op, val, ok := normalizeCompare(v); ok {
				ssaAppend(&ssa, e, ref, mol, root, op, val)
				return
			}
			// attr = EMPTY pushdown.
			if ref, refIsL := v.L.(*mql.AttrRef); refIsL {
				if _, isEmpty := v.R.(*mql.EmptyLit); isEmpty {
					tgt, err := e.resolveRefTarget(ref, mol)
					if err == nil && tgt.typeName == root.Name && len(tgt.fields) == 0 &&
						(!tgt.hasLevel || tgt.level == 0) {
						switch v.Op {
						case mql.CmpEQ:
							ssa = append(ssa, access.Cond{Attr: tgt.attr, Op: access.OpEmpty})
						case mql.CmpNE:
							ssa = append(ssa, access.Cond{Attr: tgt.attr, Op: access.OpNotEmpty})
						}
					}
				}
			}
		}
	}
	walk(where)
	return ssa
}

// extractComponentSSA pulls counting-existential single-component conjuncts
// on NON-root atom types out of the top-level AND tree: bare comparisons
// (edge.length > 1.0), the explicit EXISTS form, and EXISTS_AT_LEAST (n)
// with its count threshold. All three are monotone in "one more atom
// satisfies the condition", so failing to reach the count on the fully
// observed component set proves the conjunct — and the WHERE — false. Other
// quantifiers (FOR_ALL, EXISTS_EXACTLY, ...) are never pushed: an extra
// satisfying atom can flip them back to false, so pushdown stays
// conservative.
func (e *Engine) extractComponentSSA(where mql.Expr, mol *catalog.MoleculeType, root *catalog.AtomType) []CompCond {
	var out []CompCond
	push := func(ref *mql.AttrRef, op access.Op, val atom.Value, mustType string, min int) {
		if val.IsNull() {
			return // IS-NULL semantics stay in the residual predicate
		}
		tgt, err := e.resolveRefTarget(ref, mol)
		if err != nil || tgt.typeName == root.Name || len(tgt.fields) != 0 || tgt.hasLevel {
			return
		}
		if mustType != "" && tgt.typeName != mustType {
			return
		}
		out = append(out, CompCond{
			TypeName: tgt.typeName,
			SSA:      access.SSA{{Attr: tgt.attr, Op: op, Value: val}},
			Min:      min,
		})
	}
	var walk func(x mql.Expr)
	walk = func(x mql.Expr) {
		switch v := x.(type) {
		case *mql.Binary:
			if v.Op == "AND" {
				walk(v.L)
				walk(v.R)
			}
		case *mql.Compare:
			if ref, op, val, ok := normalizeCompare(v); ok {
				push(ref, op, val, "", 1)
			}
		case *mql.Quant:
			// EXISTS t: t.attr op literal is the explicit spelling of the
			// implicit existential conjunct; EXISTS_AT_LEAST (n) raises the
			// required count. The condition must be on the quantified type
			// itself.
			min := 1
			switch v.Kind {
			case "EXISTS":
			case "EXISTS_AT_LEAST":
				if v.N < 1 {
					return // trivially true, nothing to prune on
				}
				min = v.N
			default:
				return
			}
			if cmp, ok := v.Cond.(*mql.Compare); ok {
				if ref, op, val, ok := normalizeCompare(cmp); ok {
					push(ref, op, val, v.Var, min)
				}
			}
		}
	}
	walk(where)
	return out
}

// reachability maps each molecule node to the set of component types in its
// subtree (a recursive self-edge adds nothing beyond the subtree itself), so
// assembly can decide when a pushed conjunct's type can no longer appear
// below the current frontier.
func reachability(mol *catalog.MoleculeType) map[*catalog.MolNode]map[string]bool {
	reach := map[*catalog.MolNode]map[string]bool{}
	var walk func(n *catalog.MolNode) map[string]bool
	walk = func(n *catalog.MolNode) map[string]bool {
		if r, ok := reach[n]; ok {
			return r
		}
		r := map[string]bool{n.AtomType: true}
		reach[n] = r
		for _, c := range n.Children {
			for t := range walk(c) {
				r[t] = true
			}
		}
		return r
	}
	walk(mol.Root)
	return reach
}

func ssaAppend(ssa *access.SSA, e *Engine, ref *mql.AttrRef, mol *catalog.MoleculeType, root *catalog.AtomType, op access.Op, v atom.Value) {
	if v.IsNull() {
		return // IS-NULL semantics are handled by the evaluator, not SSAs
	}
	tgt, err := e.resolveRefTarget(ref, mol)
	if err != nil || tgt.typeName != root.Name || len(tgt.fields) != 0 {
		return
	}
	if tgt.hasLevel && tgt.level != 0 {
		return
	}
	*ssa = append(*ssa, access.Cond{Attr: tgt.attr, Op: op, Value: v})
}

// chooseRootAccess picks the cheapest root access: an access path for an
// equality restriction on an indexed root attribute, a range-bounded BTREE
// access path, a multi-attribute GRID box query, or a sort-order scan for
// <, <=, >, >= restrictions, else an atom cluster materializing the
// molecule, else the atom-type scan. This is the molecule-type-specific
// optimization of §3.1 ("aware of access methods, sort orders, partitions
// of atom types, and physical clusters").
func (e *Engine) chooseRootAccess(p *Plan, pushdown bool) {
	schema := e.sys.Schema()
	// Equality on the root's IDENTIFIER attribute: the surrogate IS the
	// logical address, so the restriction names its only possible root
	// outright — cheaper than any index. This is what makes checkin-style
	// statements ("MODIFY ... WHERE part_id = @t.seq") O(1) instead of an
	// atom-type scan.
	identAttr := p.Root.Attrs[p.Root.IdentIndex()].Name
	for _, c := range p.RootSSA {
		if c.Op != access.OpEQ || c.Attr != identAttr {
			continue
		}
		if c.Value.K != atom.KindIdent && c.Value.K != atom.KindRef {
			continue
		}
		p.AccessKind = "direct"
		p.DirectRoot = c.Value.A
		return
	}
	// Access path on an EQ-restricted root attribute.
	for _, c := range p.RootSSA {
		if c.Op != access.OpEQ {
			continue
		}
		for _, ap := range schema.AccessPathsFor(p.Root.Name) {
			if ap.Method == "BTREE" && ap.Attrs[0] == c.Attr {
				p.AccessKind = "accesspath"
				p.PathName = ap.Name
				p.PathKey = c.Value
				return
			}
		}
	}
	if pushdown {
		// BTREE access path with start/stop bounds for range conjuncts. The
		// bounds are an inclusive superset (strict operators keep their
		// boundary key); RootSSA re-decides every root exactly.
		for _, ap := range schema.AccessPathsFor(p.Root.Name) {
			if ap.Method != "BTREE" || len(ap.Attrs) != 1 {
				continue
			}
			if start, stop, ok := rangeBounds(p.RootSSA, ap.Attrs[0]); ok {
				p.AccessKind = "pathrange"
				p.PathName = ap.Name
				p.PathStart, p.PathStop = start, stop
				return
			}
		}
		// GRID access path: fold equality and range conjuncts on any subset
		// of the grid's attributes into one inclusive box query — the
		// multi-dimensional counterpart of the BTREE range above ("start/stop
		// conditions ... may be specified individually for every key").
		// Unbounded dimensions stay open; at least one must be bounded or the
		// grid offers nothing over the atom-type scan.
		for _, ap := range schema.AccessPathsFor(p.Root.Name) {
			if ap.Method != "GRID" {
				continue
			}
			ranges := make([]mdindex.Range, len(ap.Attrs))
			bounded := 0
			for i, attr := range ap.Attrs {
				if eq, ok := eqBound(p.RootSSA, attr); ok {
					ranges[i] = mdindex.Range{Start: eq, Stop: eq}
					bounded++
					continue
				}
				if start, stop, ok := rangeBounds(p.RootSSA, attr); ok {
					ranges[i] = mdindex.Range{Start: start, Stop: stop}
					bounded++
				}
			}
			if bounded == 0 {
				continue
			}
			p.AccessKind = "gridrange"
			p.PathName = ap.Name
			p.PathRanges = ranges
			return
		}
		// Single-attribute ascending sort order with start/stop bounds.
		for _, so := range schema.SortOrdersFor(p.Root.Name) {
			if len(so.Attrs) != 1 || (len(so.Desc) > 0 && so.Desc[0]) {
				continue
			}
			if start, stop, ok := rangeBounds(p.RootSSA, so.Attrs[0]); ok {
				p.AccessKind = "sortrange"
				p.SortOrder = so.Name
				p.PathStart, p.PathStop = start, stop
				return
			}
		}
	}
	// Atom cluster whose molecule covers this query's molecule structure.
	for _, cl := range schema.ClustersForRoot(p.Root.Name) {
		if covers(cl.Molecule.Root, p.Mol.Root) {
			p.AccessKind = "cluster"
			p.Cluster = cl.Name
			return
		}
	}
}

// eqBound returns the value of an equality conjunct on the attribute, if
// one exists.
func eqBound(ssa access.SSA, attr string) (*atom.Value, bool) {
	for _, c := range ssa {
		if c.Attr == attr && c.Op == access.OpEQ {
			v := c.Value
			return &v, true
		}
	}
	return nil, false
}

// rangeBounds folds the SSA's range conjuncts on one attribute into the
// tightest inclusive [start, stop] interval (nil bounds stay open). found is
// false when no range conjunct mentions the attribute.
func rangeBounds(ssa access.SSA, attr string) (start, stop *atom.Value, found bool) {
	for _, c := range ssa {
		if c.Attr != attr {
			continue
		}
		switch c.Op {
		case access.OpGT, access.OpGE:
			if start == nil || atom.Compare(c.Value, *start) > 0 {
				v := c.Value
				start = &v
			}
			found = true
		case access.OpLT, access.OpLE:
			if stop == nil || atom.Compare(c.Value, *stop) < 0 {
				v := c.Value
				stop = &v
			}
			found = true
		}
	}
	return start, stop, found
}

// covers reports whether the cluster structure c contains the query
// structure q (every edge of q exists in c).
func covers(c, q *catalog.MolNode) bool {
	if c.AtomType != q.AtomType {
		return false
	}
	for _, qc := range q.Children {
		ok := false
		for _, cc := range c.Children {
			if cc.AtomType == qc.AtomType && cc.Via == qc.Via && cc.Recursive == qc.Recursive && covers(cc, qc) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
