package core_test

import (
	"fmt"
	"strings"
	"testing"

	"prima/internal/access"
	"prima/internal/core"
)

// explainEngine builds an engine with one atom type that can exercise every
// root access kind: an IDENTIFIER (direct), a B-tree path on serial
// (accesspath/pathrange), a grid path on x,y (gridrange), a sort order on
// grade (sortrange) and an unindexed attribute w (atomscan).
func explainEngine(t *testing.T) *core.Engine {
	t.Helper()
	sys, err := access.Open(access.Config{})
	if err != nil {
		t.Fatalf("access.Open: %v", err)
	}
	e := core.New(sys)
	for _, q := range []string{
		`CREATE ATOM_TYPE part (part_id: IDENTIFIER, serial: INTEGER, x: INTEGER, y: INTEGER, grade: INTEGER, w: INTEGER)`,
		`CREATE ACCESS PATH pserial ON part (serial) USING BTREE`,
		`CREATE ACCESS PATH pxy ON part (x, y) USING GRID`,
		`CREATE SORT ORDER pgrade ON part (grade)`,
	} {
		mustQuery(t, e, q)
	}
	for i := 1; i <= 8; i++ {
		mustQuery(t, e, fmt.Sprintf(
			`INSERT INTO part (serial, x, y, grade, w) VALUES (%d, %d, %d, %d, %d)`,
			i, i, i*2, i%4, i))
	}
	return e
}

// explain runs an EXPLAIN (or EXPLAIN ANALYZE) and returns the rendered text.
func explain(t *testing.T, e *core.Engine, q string) string {
	t.Helper()
	r := mustQuery(t, e, q)
	if r.Kind != "explain" {
		t.Fatalf("EXPLAIN result kind = %q, want explain", r.Kind)
	}
	return r.Message
}

// TestExplainAccessKinds pins the rendered root-access line for every access
// kind the planner can choose.
func TestExplainAccessKinds(t *testing.T) {
	e := explainEngine(t)
	ins := mustQuery(t, e, `INSERT INTO part (serial, x, y, grade, w) VALUES (99, 9, 9, 1, 9)`)
	root := ins.Inserted[0]

	cases := []struct {
		name  string
		query string
		want  []string
	}{
		{"direct", fmt.Sprintf(`EXPLAIN SELECT ALL FROM part WHERE part_id = @%d.%d`, root.Type(), root.Seq()),
			[]string{"root access: direct"}},
		{"accesspath", `EXPLAIN SELECT ALL FROM part WHERE serial = 5`,
			[]string{"root access: accesspath pserial key=5", "root ssa: serial = 5"}},
		{"pathrange", `EXPLAIN SELECT ALL FROM part WHERE serial >= 2 AND serial <= 5`,
			[]string{"root access: pathrange pserial range=[2, 5]"}},
		{"gridrange", `EXPLAIN SELECT ALL FROM part WHERE x >= 1 AND x <= 3 AND y >= 2 AND y <= 6`,
			[]string{"root access: gridrange pxy box=[1, 3]x[2, 6]"}},
		{"sortrange", `EXPLAIN SELECT ALL FROM part WHERE grade >= 1 AND grade <= 2`,
			[]string{"root access: sortrange pgrade range=[1, 2]"}},
		{"atomscan", `EXPLAIN SELECT ALL FROM part WHERE w > 3`,
			[]string{"root access: atomscan", "root ssa: w > 3"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := explain(t, e, tc.query)
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("EXPLAIN output missing %q:\n%s", want, out)
				}
			}
			if strings.Contains(out, "analyze:") {
				t.Errorf("plain EXPLAIN must not execute, but rendered an analyze section:\n%s", out)
			}
			if !strings.Contains(out, "cacheable: yes") {
				t.Errorf("EXPLAIN output missing cacheability line:\n%s", out)
			}
		})
	}
}

// TestExplainGolden pins the full rendering of one deterministic plan.
func TestExplainGolden(t *testing.T) {
	e := explainEngine(t)
	out := explain(t, e, `EXPLAIN SELECT ALL FROM part WHERE serial >= 2 AND serial <= 5 AND w > 1`)
	want := strings.Join([]string{
		"plan: molecule part (max depth 64)",
		"  root access: pathrange pserial range=[2, 5]",
		"  root ssa: serial >= 2 AND serial <= 5 AND w > 1",
		"  component part",
		"  residual predicate (compiled): ((serial >= 2 AND serial <= 5) AND w > 1)",
		"  cacheable: yes (plan cache, keyed by text and schema version)",
	}, "\n")
	if out != want {
		t.Fatalf("EXPLAIN golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

// TestExplainMoleculeTree pins the component-tree rendering (multi-level
// molecule with pushed-down conjuncts).
func TestExplainMoleculeTree(t *testing.T) {
	e, _ := sceneEngine(t, 3)
	out := explain(t, e, `EXPLAIN SELECT ALL FROM brep-face-edge WHERE brep_no = 2 AND edge.length > 0.5`)
	for _, want := range []string{
		"plan: molecule brep (max depth",
		"component brep",
		"component face via faces",
		"component edge via border",
		"[pushed: length > 0.5]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, out)
		}
	}
}

// TestExplainAnalyzeDifferential checks that EXPLAIN ANALYZE executes the
// query for real: its reported molecule count must equal the plain query's,
// and the analyze section must report the per-stage breakdown and counters.
func TestExplainAnalyzeDifferential(t *testing.T) {
	e, _ := sceneEngine(t, 5)
	q := `SELECT ALL FROM brep-face-edge-point WHERE brep_no <= 3`
	plain := mustQuery(t, e, q)
	if plain.Count == 0 {
		t.Fatalf("plain query returned no molecules")
	}
	r := mustQuery(t, e, `EXPLAIN ANALYZE `+q)
	if r.Count != plain.Count {
		t.Fatalf("EXPLAIN ANALYZE count = %d, plain query count = %d", r.Count, plain.Count)
	}
	var atoms int64
	for _, m := range plain.Molecules {
		atoms += int64(m.Size())
	}
	for _, want := range []string{
		"analyze:",
		"trace:",
		"parse:",
		"plan:",
		"assemble:",
		fmt.Sprintf("molecules=%d atoms=%d", plain.Count, atoms),
		"decode:",
		"atoms_decoded=",
		"hit_ratio=",
		"total:",
	} {
		if !strings.Contains(r.Message, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, r.Message)
		}
	}
}

// TestExplainRejectsNonSelect pins the parser error for non-SELECT targets.
func TestExplainRejectsNonSelect(t *testing.T) {
	e := explainEngine(t)
	_, err := e.ExecuteScript(`EXPLAIN INSERT INTO part (serial) VALUES (1)`)
	if err == nil || !strings.Contains(err.Error(), "EXPLAIN expects a SELECT") {
		t.Fatalf("EXPLAIN INSERT error = %v, want EXPLAIN-expects-SELECT", err)
	}
}
