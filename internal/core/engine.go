package core

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/catalog"
	"prima/internal/mql"
	"prima/internal/obs"
)

// Engine is the data system: it translates MQL statements into access
// system call sequences and manages molecule materialization.
type Engine struct {
	sys   *access.System
	plans *planCache

	// Per-stage latency observers (from the access system's registry):
	// parsing, planning (cache misses only — hits skip the stage), and
	// molecule assembly (accumulated per cursor, observed at Close).
	parseNs    *obs.Histogram
	planNs     *obs.Histogram
	assembleNs *obs.Histogram

	mu          sync.Mutex
	maxDepth    int
	schemaDirty bool // associations not yet re-validated after DDL
	workers     int  // degree of parallel molecule assembly (1 = serial)
	chunk       int  // root chunk size for lazy streaming and dispatch
	predCompile bool // plan-time predicate compilation
	pushdown    bool // component-conjunct pushdown + range access selection
}

// DefaultAssemblyWorkers sizes the per-cursor assembly pool when a caller
// opts into parallelism without naming a degree: one worker per CPU, capped
// so one query does not monopolize a big host.
func DefaultAssemblyWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

// New creates a data system over an access system instance. Cursors run
// parallel by default (DefaultAssemblyWorkers): every cursor reads through a
// snapshot of its open epoch, so read-ahead workers and concurrent DML can
// never produce a torn molecule — SetAssemblyWorkers(1) selects the serial
// cursor for comparison or for single-core hosts.
func New(sys *access.System) *Engine {
	e := &Engine{
		sys:         sys,
		maxDepth:    64,
		plans:       newPlanCache(DefaultPlanCacheSize),
		schemaDirty: true,
		workers:     DefaultAssemblyWorkers(),
		chunk:       64,
		predCompile: true,
		pushdown:    true,
		parseNs:     sys.Obs().Histogram("core_parse_ns"),
		planNs:      sys.Obs().Histogram("core_plan_ns"),
		assembleNs:  sys.Obs().Histogram("core_assemble_ns"),
	}
	reg := sys.Obs()
	reg.CounterFunc("plan_cache_hits", func() uint64 { h, _, _ := e.PlanCacheStats(); return h })
	reg.CounterFunc("plan_cache_misses", func() uint64 { _, m, _ := e.PlanCacheStats(); return m })
	reg.GaugeFunc("plan_cache_size", func() float64 { _, _, n := e.PlanCacheStats(); return float64(n) })
	return e
}

// DefaultPlanCacheSize is the default capacity of the engine's plan cache.
const DefaultPlanCacheSize = 128

// System exposes the underlying access system.
func (e *Engine) System() *access.System { return e.sys }

// SetMaxRecursionDepth bounds recursive molecule evaluation.
func (e *Engine) SetMaxRecursionDepth(d int) {
	e.mu.Lock()
	e.maxDepth = d
	e.mu.Unlock()
}

// SetAssemblyWorkers sets the degree of intra-query parallelism of molecule
// materialization: cursors assemble molecules on a pool of n workers while
// preserving delivery order. n <= 1 selects the serial cursor; the default
// is DefaultAssemblyWorkers. Either way cursors read at their open epoch, so
// interleaving iteration with DML is safe — parallelism only changes how far
// assembly runs ahead of the consumer.
func (e *Engine) SetAssemblyWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	e.workers = n
	e.mu.Unlock()
}

// AssemblyWorkers returns the configured assembly parallelism.
func (e *Engine) AssemblyWorkers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.workers
}

// SetAssemblyChunk sets the root chunk size used for lazy root streaming
// and worker dispatch.
func (e *Engine) SetAssemblyChunk(n int) {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	e.chunk = n
	e.mu.Unlock()
}

// assemblyConfig snapshots the cursor tuning knobs.
func (e *Engine) assemblyConfig() (workers, chunk int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.workers, e.chunk
}

// SetPredicateCompilation toggles plan-time predicate compilation (on by
// default). Off selects the interpreted evaluator of eval.go — the
// differential baseline for testing and benchmarking.
func (e *Engine) SetPredicateCompilation(on bool) {
	e.mu.Lock()
	e.predCompile = on
	e.mu.Unlock()
}

// SetPushdown toggles component-conjunct pushdown into assembly and
// range-restricted root access selection (on by default). Off restricts
// planning to the root-SSA/equality-path behavior — the differential
// baseline.
func (e *Engine) SetPushdown(on bool) {
	e.mu.Lock()
	e.pushdown = on
	e.mu.Unlock()
}

// planConfig is the snapshot of every knob that shapes a prepared plan. The
// cache key and the plan itself are always built from one snapshot, so a
// concurrent knob flip can never publish a plan under a mismatched key.
type planConfig struct {
	depth    int
	compile  bool
	pushdown bool
}

func (e *Engine) planConfig() planConfig {
	e.mu.Lock()
	defer e.mu.Unlock()
	return planConfig{depth: e.maxDepth, compile: e.predCompile, pushdown: e.pushdown}
}

// SetPlanCacheSize resizes the engine's plan cache; n <= 0 disables caching
// and drops all cached plans.
func (e *Engine) SetPlanCacheSize(n int) { e.plans.resize(n) }

// PlanCacheStats reports plan cache hits, misses and current size. A miss is
// counted only when a cacheable statement (SELECT, DELETE, MODIFY) was
// actually planned fresh, so DDL and insert traffic does not dilute the
// ratio.
func (e *Engine) PlanCacheStats() (hits, misses uint64, size int) { return e.plans.stats() }

// SetAtomCacheSize resizes (or, with n <= 0, disables) the access system's
// decoded-atom cache.
func (e *Engine) SetAtomCacheSize(n int) { e.sys.SetAtomCacheSize(n) }

// AtomCacheStats reports the decoded-atom cache counters of the underlying
// access system.
func (e *Engine) AtomCacheStats() access.AtomCacheStats { return e.sys.AtomCacheStats() }

// planKeyFor builds the cache key of a statement: schema version plus the
// config snapshot that will shape the plan, then the statement text. DDL
// bumps the schema version, so stale plans miss naturally and age out of
// the LRU.
func (e *Engine) planKeyFor(cfg planConfig, src string) string {
	return fmt.Sprintf("%d\x00%d\x00%t%t\x00%s", e.sys.Schema().Version(), cfg.depth, cfg.compile, cfg.pushdown, src)
}

// ErrNotSelect is returned by PlanQuery for statements that are not SELECTs.
var ErrNotSelect = errors.New("core: not a SELECT statement")

// PlanQuery prepares a single SELECT statement, consulting the plan cache
// keyed by statement text and schema version so repeated queries skip both
// parsing and planning. Returned plans are immutable and may be shared by
// concurrent cursors.
func (e *Engine) PlanQuery(src string) (*Plan, error) {
	cfg := e.planConfig()
	key := e.planKeyFor(cfg, src)
	if p, ok := e.plans.get(key).(*Plan); ok {
		return p, nil
	}
	parseStart := time.Now()
	stmt, err := mql.ParseOne(src)
	e.parseNs.ObserveSince(parseStart)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*mql.Select)
	if !ok {
		return nil, ErrNotSelect
	}
	p, err := e.planSelect(sel, cfg)
	if err != nil {
		return nil, err
	}
	e.plans.putMiss(key, p)
	return p, nil
}

// OpenQueryTraced is PlanQuery plus a cursor open, with tracing: planning is
// recorded as a "plan" span on tr (a cache hit sets the root's plan_cache
// attribute instead), and the returned cursor's page reads and molecule
// deliveries are charged to an "assemble" span that Cursor.Close ends. A nil
// tr behaves exactly like PlanQuery followed by Open.
func (e *Engine) OpenQueryTraced(src string, tr *obs.Trace) (*Cursor, error) {
	cfg := e.planConfig()
	key := e.planKeyFor(cfg, src)
	p, ok := e.plans.get(key).(*Plan)
	if ok {
		tr.SetAttr("plan_cache", "hit")
	} else {
		var err error
		p, err = e.planStage(tr, func() (*Plan, error) {
			parseStart := time.Now()
			stmt, err := mql.ParseOne(src)
			e.parseNs.ObserveSince(parseStart)
			if err != nil {
				return nil, err
			}
			sel, ok := stmt.(*mql.Select)
			if !ok {
				return nil, ErrNotSelect
			}
			return e.planSelect(sel, cfg)
		})
		if err != nil {
			return nil, err
		}
		e.plans.putMiss(key, p)
	}
	sp := tr.Root().Child("assemble")
	annotatePlanSpan(sp, p)
	cur, err := p.openTraced(nil, sp)
	if err != nil {
		sp.End()
		return nil, err
	}
	return cur, nil
}

// maybeCacheable reports whether the script's first keyword can be a
// plan-cacheable statement (SELECT, DELETE or MODIFY) — the cheap pre-filter
// that keeps DDL and insert traffic off the plan-cache probe.
func maybeCacheable(src string) bool {
	i := 0
	for i < len(src) && (src[i] == ' ' || src[i] == '\t' || src[i] == '\n' || src[i] == '\r') {
		i++
	}
	rest := len(src) - i
	return (rest >= 6 && (strings.EqualFold(src[i:i+6], "SELECT") ||
		strings.EqualFold(src[i:i+6], "DELETE") ||
		strings.EqualFold(src[i:i+6], "MODIFY")))
}

// ensureResolved re-validates association symmetry after DDL. DDL scripts
// may declare mutually referencing types in any order (Fig. 2.3 does), so
// resolution is deferred until the first statement that needs a consistent
// schema.
func (e *Engine) ensureResolved() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.schemaDirty {
		return nil
	}
	if err := e.sys.Schema().ResolveAssociations(); err != nil {
		return fmt.Errorf("%w: %v", ErrUnresolved, err)
	}
	e.schemaDirty = false
	return nil
}

// Result is the outcome of one statement.
type Result struct {
	Kind      string // "molecules", "inserted", "count", "ok"
	Molecules []*Molecule
	Inserted  []addr.LogicalAddr
	Count     int
	Message   string
}

// execCtx carries the per-request execution context down the statement
// dispatch: the pinned snapshot epoch (nil = current), the request trace
// (nil = untraced — every span operation no-ops), and the script parse time
// so EXPLAIN ANALYZE can report the parse stage it arrived through.
type execCtx struct {
	epoch   *uint64
	tr      *obs.Trace
	parseNs int64
}

// ExecuteScript parses and executes a semicolon-separated MQL script,
// returning one result per statement. Single-statement SELECT, DELETE and
// MODIFY scripts are served through the plan cache: a repeated statement
// text skips parsing and planning entirely and goes straight to execution.
func (e *Engine) ExecuteScript(src string) ([]*Result, error) {
	return e.executeScript(src, execCtx{})
}

// ExecuteScriptTraced is ExecuteScript recording parse/plan/assemble/apply
// spans under tr's root span (nil tr is ExecuteScript).
func (e *Engine) ExecuteScriptTraced(src string, tr *obs.Trace) ([]*Result, error) {
	return e.executeScript(src, execCtx{tr: tr})
}

// ExecuteScriptAt runs the script with every SELECT reading at the given
// snapshot epoch, which the caller must hold open through a live snapshot
// (the transaction layer pins one at Begin). DML statements always run
// against current state — writes cannot apply to history.
func (e *Engine) ExecuteScriptAt(src string, epoch uint64) ([]*Result, error) {
	return e.executeScript(src, execCtx{epoch: &epoch})
}

func (e *Engine) executeScript(src string, ctx execCtx) ([]*Result, error) {
	var cfg planConfig
	var key string
	if maybeCacheable(src) {
		cfg = e.planConfig()
		key = e.planKeyFor(cfg, src)
		var r *Result
		var err error
		hit := true
		switch v := e.plans.get(key).(type) {
		case *Plan:
			ctx.tr.SetAttr("plan_cache", "hit")
			r, err = e.runSelect(v, ctx)
		case *cachedDML:
			ctx.tr.SetAttr("plan_cache", "hit")
			r, err = e.runDML(v, ctx.tr)
		default:
			hit = false
		}
		if hit {
			if err != nil {
				return nil, fmt.Errorf("statement 1: %w", err)
			}
			return []*Result{r}, nil
		}
	}
	psp := ctx.tr.Root().Child("parse")
	parseStart := time.Now()
	stmts, err := mql.Parse(src)
	ctx.parseNs = time.Since(parseStart).Nanoseconds()
	e.parseNs.Observe(ctx.parseNs)
	psp.End()
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for i, s := range stmts {
		var r *Result
		var err error
		if len(stmts) == 1 && key != "" {
			// Cacheable single statement that missed: prepare, publish, run.
			switch v := s.(type) {
			case *mql.Select:
				var p *Plan
				if p, err = e.planStage(ctx.tr, func() (*Plan, error) { return e.planSelect(v, cfg) }); err == nil {
					e.plans.putMiss(key, p)
					r, err = e.runSelect(p, ctx)
				}
			case *mql.Delete:
				var c *cachedDML
				if c, err = e.prepareDMLStage(ctx.tr, func() (*cachedDML, error) { return e.prepareDelete(v, cfg) }); err == nil {
					e.plans.putMiss(key, c)
					r, err = e.runDML(c, ctx.tr)
				}
			case *mql.Modify:
				var c *cachedDML
				if c, err = e.prepareDMLStage(ctx.tr, func() (*cachedDML, error) { return e.prepareModify(v, cfg) }); err == nil {
					e.plans.putMiss(key, c)
					r, err = e.runDML(c, ctx.tr)
				}
			default:
				r, err = e.execute(s, ctx)
			}
		} else {
			r, err = e.execute(s, ctx)
		}
		if err != nil {
			return out, fmt.Errorf("statement %d: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// planStage wraps a fresh planning call in a "plan" span annotated with the
// chosen access and pushdown facts.
func (e *Engine) planStage(tr *obs.Trace, plan func() (*Plan, error)) (*Plan, error) {
	sp := tr.Root().Child("plan")
	sp.SetAttr("plan_cache", "miss")
	p, err := plan()
	if err == nil {
		annotatePlanSpan(sp, p)
	}
	sp.End()
	return p, err
}

// prepareDMLStage is planStage for prepared DELETE/MODIFY statements.
func (e *Engine) prepareDMLStage(tr *obs.Trace, prep func() (*cachedDML, error)) (*cachedDML, error) {
	sp := tr.Root().Child("plan")
	sp.SetAttr("plan_cache", "miss")
	c, err := prep()
	if err == nil {
		annotatePlanSpan(sp, c.plan)
	}
	sp.End()
	return c, err
}

// annotatePlanSpan records the plan facts EXPLAIN renders — access kind,
// index/range details, pushdown shape, predicate compilation — as span
// attributes (nil-safe).
func annotatePlanSpan(sp *obs.Span, p *Plan) {
	if sp == nil || p == nil {
		return
	}
	sp.SetAttr("kind", p.AccessKind)
	if p.PathName != "" {
		sp.SetAttr("path", p.PathName)
	}
	if p.SortOrder != "" {
		sp.SetAttr("sort_order", p.SortOrder)
	}
	if p.Cluster != "" {
		sp.SetAttr("cluster", p.Cluster)
	}
	if n := len(p.RootSSA); n > 0 {
		sp.SetAttr("root_ssa", fmt.Sprintf("%d", n))
	}
	if n := len(p.CompSSA); n > 0 {
		sp.SetAttr("pushed_conjuncts", fmt.Sprintf("%d", n))
	}
	if p.Where != nil {
		if p.whereC != nil {
			sp.SetAttr("predicate", "compiled")
		} else {
			sp.SetAttr("predicate", "interpreted")
		}
	}
}

// runSelect opens a cursor over a prepared plan and drains it; a non-nil
// ctx.epoch pins the cursor to that snapshot epoch instead of the current
// one. When the request is traced, the whole drain runs under an "assemble"
// span that carries the plan facts and the read-path counters.
func (e *Engine) runSelect(p *Plan, ctx execCtx) (*Result, error) {
	sp := ctx.tr.Root().Child("assemble")
	annotatePlanSpan(sp, p)
	defer sp.End()
	cur, err := p.openTraced(ctx.epoch, sp)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	mols, err := cur.Collect()
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "molecules", Molecules: mols, Count: len(mols)}, nil
}

// Execute runs a single parsed statement.
func (e *Engine) Execute(stmt mql.Stmt) (*Result, error) { return e.execute(stmt, execCtx{}) }

func (e *Engine) execute(stmt mql.Stmt, ctx execCtx) (*Result, error) {
	res, err := e.executeInner(stmt, ctx)
	if err == nil && isDDL(stmt) {
		// Schema changes only persist in checkpoint snapshots — log records
		// replayed against a pre-DDL schema would name unknown types — so
		// every successful DDL statement checkpoints before acknowledging.
		if derr := e.sys.DDLDurable(); derr != nil {
			return res, fmt.Errorf("core: DDL checkpoint: %w", derr)
		}
	}
	return res, err
}

// isDDL reports whether stmt changes the schema or the set of LDL-declared
// storage structures.
func isDDL(stmt mql.Stmt) bool {
	switch stmt.(type) {
	case *mql.CreateAtomType, *mql.DefineMoleculeType, *mql.Drop,
		*mql.CreateAccessPath, *mql.CreateSortOrder, *mql.CreatePartition,
		*mql.CreateCluster:
		return true
	}
	return false
}

func (e *Engine) executeInner(stmt mql.Stmt, ctx execCtx) (*Result, error) {
	switch s := stmt.(type) {
	case *mql.CreateAtomType:
		at, err := mql.LowerAtomType(s)
		if err != nil {
			return nil, err
		}
		if err := e.sys.Schema().AddAtomType(at); err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.schemaDirty = true
		e.mu.Unlock()
		return &Result{Kind: "ok", Message: "atom type " + s.Name + " created"}, nil

	case *mql.DefineMoleculeType:
		if err := e.ensureResolved(); err != nil {
			return nil, err
		}
		m, err := mql.LowerMolecule(e.sys.Schema(), s.Name, s.From)
		if err != nil {
			return nil, err
		}
		if err := e.sys.Schema().DefineMoleculeType(m); err != nil {
			return nil, err
		}
		return &Result{Kind: "ok", Message: "molecule type " + s.Name + " defined"}, nil

	case *mql.Drop:
		switch s.Kind {
		case "ATOM_TYPE":
			if err := e.sys.Schema().DropAtomType(s.Name); err != nil {
				return nil, err
			}
		case "MOLECULE_TYPE":
			if err := e.sys.Schema().DropMoleculeType(s.Name); err != nil {
				return nil, err
			}
		default:
			if err := e.sys.DropLDL(s.Name); err != nil {
				return nil, err
			}
		}
		return &Result{Kind: "ok", Message: s.Name + " dropped"}, nil

	case *mql.CreateAccessPath:
		if err := e.ensureResolved(); err != nil {
			return nil, err
		}
		return okResult(e.sys.CreateAccessPath(&catalog.AccessPathDef{
			Name: s.Name, AtomType: s.AtomType, Attrs: s.Attrs, Method: s.Using,
		}), "access path "+s.Name+" created")

	case *mql.CreateSortOrder:
		if err := e.ensureResolved(); err != nil {
			return nil, err
		}
		return okResult(e.sys.CreateSortOrder(&catalog.SortOrderDef{
			Name: s.Name, AtomType: s.AtomType, Attrs: s.Attrs, Desc: s.Desc,
		}), "sort order "+s.Name+" created")

	case *mql.CreatePartition:
		if err := e.ensureResolved(); err != nil {
			return nil, err
		}
		return okResult(e.sys.CreatePartition(&catalog.PartitionDef{
			Name: s.Name, AtomType: s.AtomType, Attrs: s.Attrs,
		}), "partition "+s.Name+" created")

	case *mql.CreateCluster:
		if err := e.ensureResolved(); err != nil {
			return nil, err
		}
		m, err := mql.LowerMolecule(e.sys.Schema(), "", s.From)
		if err != nil {
			return nil, err
		}
		return okResult(e.sys.CreateCluster(&catalog.ClusterDef{
			Name: s.Name, Molecule: m,
		}), "atom cluster "+s.Name+" created")

	case *mql.Select:
		plan, err := e.planStage(ctx.tr, func() (*Plan, error) { return e.PlanSelect(s) })
		if err != nil {
			return nil, err
		}
		return e.runSelect(plan, ctx)

	case *mql.Explain:
		return e.execExplain(s, ctx)

	case *mql.Insert:
		return e.execInsert(s, ctx.tr)

	case *mql.Delete:
		return e.execDelete(s, ctx.tr)

	case *mql.Modify:
		return e.execModify(s, ctx.tr)

	case *mql.Connect:
		return e.execConnect(s.From, s.To, s.Via, true)

	case *mql.Disconnect:
		return e.execConnect(s.From, s.To, s.Via, false)

	case *mql.CheckIntegrity:
		if err := e.ensureResolved(); err != nil {
			return nil, err
		}
		if err := e.sys.CheckIntegrity(s.AtomType); err != nil {
			return nil, err
		}
		return &Result{Kind: "ok", Message: "integrity ok"}, nil

	case *mql.PropagateDeferred:
		if err := e.sys.PropagateDeferred(); err != nil {
			return nil, err
		}
		return &Result{Kind: "ok", Message: "deferred updates propagated"}, nil

	default:
		return nil, fmt.Errorf("%w: unsupported statement %T", ErrSemantic, stmt)
	}
}

func okResult(err error, msg string) (*Result, error) {
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "ok", Message: msg}, nil
}

func (e *Engine) execInsert(s *mql.Insert, tr *obs.Trace) (*Result, error) {
	if err := e.ensureResolved(); err != nil {
		return nil, err
	}
	sp := e.applySpan(tr)
	defer e.endApplySpan(sp)
	res := &Result{Kind: "inserted"}
	for _, row := range s.Rows {
		values := map[string]atom.Value{}
		for i, attr := range s.Attrs {
			v, err := mql.LitValue(row[i])
			if err != nil {
				return nil, err
			}
			values[attr] = v
		}
		a, err := e.sys.Insert(s.AtomType, values)
		if err != nil {
			return nil, err
		}
		res.Inserted = append(res.Inserted, a)
	}
	res.Count = len(res.Inserted)
	return res, nil
}

// cachedDML is a prepared DELETE or MODIFY statement: the qualification is a
// prepared molecule plan (the same object the plan cache shares between
// SELECT cursors) plus, for MODIFY, the lowered SET values. Like cached
// SELECT plans it is immutable after preparation — changes is read-only —
// and safe for concurrent execution.
type cachedDML struct {
	kind    string // "delete" | "modify"
	plan    *Plan
	changes map[string]atom.Value // modify only
}

// prepareDelete lowers a DELETE into its prepared form under one planConfig
// snapshot.
func (e *Engine) prepareDelete(s *mql.Delete, cfg planConfig) (*cachedDML, error) {
	plan, err := e.planSelect(&mql.Select{All: true, From: s.From, Where: s.Where}, cfg)
	if err != nil {
		return nil, err
	}
	return &cachedDML{kind: "delete", plan: plan}, nil
}

// prepareModify lowers a MODIFY into its prepared form: qualification plan
// plus the SET values, lowered once.
func (e *Engine) prepareModify(s *mql.Modify, cfg planConfig) (*cachedDML, error) {
	plan, err := e.planSelect(&mql.Select{All: true, From: &mql.MolComponent{Name: s.AtomType}, Where: s.Where}, cfg)
	if err != nil {
		return nil, err
	}
	changes := map[string]atom.Value{}
	for _, as := range s.Set {
		v, err := mql.LitValue(as.Value)
		if err != nil {
			return nil, err
		}
		changes[as.Attr] = v
	}
	return &cachedDML{kind: "modify", plan: plan, changes: changes}, nil
}

// applySpan opens the "apply" span of a mutating statement and installs it
// as the write-ahead log's byte-attribution sink; endApplySpan removes the
// sink and closes the span. Both are nil-safe for untraced requests.
func (e *Engine) applySpan(tr *obs.Trace) *obs.Span {
	sp := tr.Root().Child("apply")
	if sp != nil {
		e.sys.SetWALTraceSink(sp)
	}
	return sp
}

func (e *Engine) endApplySpan(sp *obs.Span) {
	if sp != nil {
		e.sys.SetWALTraceSink(nil)
		sp.End()
	}
}

// runDML executes a prepared DELETE or MODIFY. The qualification read runs
// under an "assemble" span like a SELECT; the mutations run under "apply".
func (e *Engine) runDML(c *cachedDML, tr *obs.Trace) (*Result, error) {
	asp := tr.Root().Child("assemble")
	annotatePlanSpan(asp, c.plan)
	cur, err := c.plan.openTraced(nil, asp)
	if err != nil {
		asp.End()
		return nil, err
	}
	defer cur.Close()
	mols, err := cur.Collect()
	asp.End()
	if err != nil {
		return nil, err
	}
	sp := e.applySpan(tr)
	defer e.endApplySpan(sp)
	if c.kind == "delete" {
		deleted := map[addr.LogicalAddr]bool{}
		for _, m := range mols {
			for _, a := range m.SortedAddrs() {
				if deleted[a] || !e.sys.Directory().Exists(a) {
					continue
				}
				if err := e.sys.Delete(a); err != nil {
					return nil, err
				}
				deleted[a] = true
			}
		}
		return &Result{Kind: "count", Count: len(deleted), Message: fmt.Sprintf("%d atoms deleted", len(deleted))}, nil
	}
	n := 0
	for _, m := range mols {
		if err := e.sys.Update(m.Root.Addr(), c.changes); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Kind: "count", Count: n, Message: fmt.Sprintf("%d atoms modified", n)}, nil
}

// execDelete deletes all component atoms of every qualified molecule
// ("removal of single components as well as of whole component sets,
// thereby automatically disconnecting these parts").
func (e *Engine) execDelete(s *mql.Delete, tr *obs.Trace) (*Result, error) {
	c, err := e.prepareDelete(s, e.planConfig())
	if err != nil {
		return nil, err
	}
	return e.runDML(c, tr)
}

func (e *Engine) execModify(s *mql.Modify, tr *obs.Trace) (*Result, error) {
	c, err := e.prepareModify(s, e.planConfig())
	if err != nil {
		return nil, err
	}
	return e.runDML(c, tr)
}

func (e *Engine) execConnect(from, to mql.Expr, via string, connect bool) (*Result, error) {
	if err := e.ensureResolved(); err != nil {
		return nil, err
	}
	fv, err := mql.LitValue(from)
	if err != nil {
		return nil, err
	}
	tv, err := mql.LitValue(to)
	if err != nil {
		return nil, err
	}
	if fv.K != atom.KindRef || tv.K != atom.KindRef {
		return nil, fmt.Errorf("%w: CONNECT requires address literals", ErrSemantic)
	}
	if connect {
		err = e.sys.Connect(fv.A, via, tv.A)
	} else {
		err = e.sys.Disconnect(fv.A, via, tv.A)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Kind: "ok", Message: "done"}, nil
}
