package core

import (
	"fmt"
	"strings"
	"time"

	"prima/internal/access"
	"prima/internal/access/atom"
	"prima/internal/catalog"
	"prima/internal/mql"
	"prima/internal/obs"
)

// EXPLAIN [ANALYZE]: render a SELECT's prepared plan as an indented tree —
// the chosen root access with its bounds, the pushed-down conjuncts per
// component, the residual predicate and its compilation state, and whether
// the statement is plan-cacheable. ANALYZE additionally executes the query
// under a forced trace and annotates the output with actual per-stage
// timings (parse/plan/assemble/decode), atom and molecule counts, and the
// cache hit ratio of the run.

// execExplain handles the *mql.Explain statement.
func (e *Engine) execExplain(s *mql.Explain, ctx execCtx) (*Result, error) {
	cfg := e.planConfig()
	planStart := time.Now()
	plan, err := e.planSelect(s.Query, cfg)
	planNs := time.Since(planStart).Nanoseconds()
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	renderPlan(&b, plan)
	if !s.Analyze {
		return &Result{Kind: "explain", Message: strings.TrimRight(b.String(), "\n")}, nil
	}

	// ANALYZE: run the query under a forced trace — tracing knobs may all be
	// off; the span tree is needed for exactly this execution. The analyzed
	// run shares the enclosing request's epoch, so EXPLAIN ANALYZE inside a
	// transaction sees the transaction's snapshot.
	tr := e.sys.Tracer().BeginForced("explain-analyze")
	wallStart := time.Now()
	res, runErr := e.runSelect(plan, execCtx{epoch: ctx.epoch, tr: tr})
	wall := time.Since(wallStart)
	snap := tr.Finish()
	if runErr != nil {
		return nil, runErr
	}
	renderAnalyze(&b, snap, ctx.parseNs, planNs, wall, res)
	return &Result{
		Kind:    "explain",
		Count:   res.Count,
		Message: strings.TrimRight(b.String(), "\n"),
	}, nil
}

// renderPlan writes the static plan tree.
func renderPlan(b *strings.Builder, p *Plan) {
	molName := p.Mol.Name
	if molName == "" {
		molName = p.Root.Name
	}
	fmt.Fprintf(b, "plan: molecule %s (max depth %d)\n", molName, p.MaxDepth)

	// Root access line with the kind-specific facts.
	fmt.Fprintf(b, "  root access: %s", p.AccessKind)
	switch p.AccessKind {
	case "direct":
		fmt.Fprintf(b, " (%v)", p.DirectRoot)
	case "accesspath":
		fmt.Fprintf(b, " %s key=%s", p.PathName, p.PathKey)
	case "pathrange":
		fmt.Fprintf(b, " %s range=%s", p.PathName, boundsString(p.PathStart, p.PathStop))
	case "gridrange":
		fmt.Fprintf(b, " %s box=", p.PathName)
		for i, r := range p.PathRanges {
			if i > 0 {
				b.WriteByte('x')
			}
			b.WriteString(boundsString(r.Start, r.Stop))
		}
	case "sortrange":
		fmt.Fprintf(b, " %s range=%s", p.SortOrder, boundsString(p.PathStart, p.PathStop))
	case "cluster":
		fmt.Fprintf(b, " %s", p.Cluster)
	}
	b.WriteByte('\n')
	if len(p.RootSSA) > 0 {
		fmt.Fprintf(b, "  root ssa: %s\n", ssaString(p.RootSSA))
	}

	// Component tree with pushed conjuncts attached to their types.
	pushed := map[string][]CompCond{}
	for _, cc := range p.CompSSA {
		pushed[cc.TypeName] = append(pushed[cc.TypeName], cc)
	}
	renderNode(b, p.Mol.Root, pushed, 1)

	if p.Where != nil {
		mode := "interpreted"
		if p.whereC != nil {
			mode = "compiled"
		}
		fmt.Fprintf(b, "  residual predicate (%s): %s\n", mode, exprString(p.Where))
	}
	if p.Project != nil && !p.Project.all {
		fmt.Fprintf(b, "  projection: %d item(s)\n", len(p.Project.perType))
	}
	b.WriteString("  cacheable: yes (plan cache, keyed by text and schema version)\n")
}

func renderNode(b *strings.Builder, n *catalog.MolNode, pushed map[string][]CompCond, depth int) {
	indent := strings.Repeat("  ", depth)
	label := n.AtomType
	if n.Via != "" {
		label = fmt.Sprintf("%s via %s", n.AtomType, n.Via)
	}
	if n.Recursive {
		label += " (recursive)"
	}
	fmt.Fprintf(b, "%scomponent %s", indent, label)
	if ccs := pushed[n.AtomType]; len(ccs) > 0 {
		parts := make([]string, len(ccs))
		for i, cc := range ccs {
			if cc.Min > 1 {
				parts[i] = fmt.Sprintf("at least %d: %s", cc.Min, ssaString(cc.SSA))
			} else {
				parts[i] = ssaString(cc.SSA)
			}
		}
		fmt.Fprintf(b, " [pushed: %s]", strings.Join(parts, "; "))
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderNode(b, c, pushed, depth+1)
	}
}

// renderAnalyze appends the actual-execution section.
func renderAnalyze(b *strings.Builder, snap *obs.TraceSnapshot, parseNs, planNs int64, wall time.Duration, res *Result) {
	b.WriteString("analyze:\n")
	if snap != nil {
		fmt.Fprintf(b, "  trace: %s\n", snap.ID)
	}
	fmt.Fprintf(b, "  parse:    %s\n", time.Duration(parseNs))
	fmt.Fprintf(b, "  plan:     %s\n", time.Duration(planNs))
	asm := snap.Find("assemble")
	var asmNs, decodeNs, decoded, pages, hits, misses int64
	if asm != nil {
		asmNs = asm.DurationNs
		decodeNs = asm.Counters["decode_ns"]
		decoded = asm.Counters["atoms_decoded"]
		pages = asm.Counters["pages_pinned"]
		hits = asm.Counters["cache_hits"]
		misses = asm.Counters["cache_misses"]
	}
	var atoms int64
	for _, m := range res.Molecules {
		atoms += int64(m.Size())
	}
	fmt.Fprintf(b, "  assemble: %s  molecules=%d atoms=%d\n", time.Duration(asmNs), res.Count, atoms)
	ratio := "n/a"
	if hits+misses > 0 {
		ratio = fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
	}
	fmt.Fprintf(b, "  decode:   %s  atoms_decoded=%d pages_pinned=%d cache_hits=%d cache_misses=%d hit_ratio=%s\n",
		time.Duration(decodeNs), decoded, pages, hits, misses, ratio)
	fmt.Fprintf(b, "  total:    %s (stages: %s)\n", wall, time.Duration(parseNs+planNs+asmNs))
}

// ssaString renders a simple search argument as MQL-ish text.
func ssaString(ssa access.SSA) string {
	parts := make([]string, len(ssa))
	for i, c := range ssa {
		parts[i] = fmt.Sprintf("%s %s %s", c.Attr, opString(c.Op), condValueString(c))
	}
	return strings.Join(parts, " AND ")
}

func condValueString(c access.Cond) string {
	switch c.Op {
	case access.OpEmpty, access.OpNotEmpty:
		return "EMPTY"
	}
	return c.Value.String()
}

func opString(op access.Op) string {
	switch op {
	case access.OpEQ:
		return "="
	case access.OpNE:
		return "<>"
	case access.OpLT:
		return "<"
	case access.OpLE:
		return "<="
	case access.OpGT:
		return ">"
	case access.OpGE:
		return ">="
	case access.OpEmpty:
		return "="
	case access.OpNotEmpty:
		return "<>"
	}
	return "?"
}

// boundsString renders an inclusive [start, stop] range with open ends.
func boundsString(start, stop *atom.Value) string {
	lo, hi := "-inf", "+inf"
	if start != nil {
		lo = start.String()
	}
	if stop != nil {
		hi = stop.String()
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

// exprString renders an MQL predicate back to source-like text.
func exprString(e mql.Expr) string {
	switch x := e.(type) {
	case *mql.Binary:
		return fmt.Sprintf("(%s %s %s)", exprString(x.L), x.Op, exprString(x.R))
	case *mql.Not:
		return "NOT " + exprString(x.X)
	case *mql.Compare:
		return fmt.Sprintf("%s %s %s", exprString(x.L), x.Op, exprString(x.R))
	case *mql.Lit:
		return x.V.String()
	case *mql.EmptyLit:
		return "EMPTY"
	case *mql.AttrRef:
		s := strings.Join(x.Parts, ".")
		if x.HasLevel {
			if i := strings.IndexByte(s, '.'); i >= 0 {
				return fmt.Sprintf("%s(%d)%s", s[:i], x.Level, s[i:])
			}
			return fmt.Sprintf("%s(%d)", s, x.Level)
		}
		return s
	case *mql.Quant:
		switch x.Kind {
		case "EXISTS_AT_LEAST", "EXISTS_EXACTLY":
			return fmt.Sprintf("%s (%d) %s (%s)", x.Kind, x.N, x.Var, exprString(x.Cond))
		}
		return fmt.Sprintf("%s %s (%s)", x.Kind, x.Var, exprString(x.Cond))
	default:
		return fmt.Sprintf("%T", e)
	}
}
