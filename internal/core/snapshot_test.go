package core_test

import (
	"fmt"
	"sync"
	"testing"

	"prima/internal/core"
)

// TestDefaultAssemblyParallel pins the new default: cursors run on the
// parallel pipeline out of the box, snapshot isolation making that safe.
func TestDefaultAssemblyParallel(t *testing.T) {
	e := newEngine(t)
	if got, want := e.AssemblyWorkers(), core.DefaultAssemblyWorkers(); got != want {
		t.Fatalf("default AssemblyWorkers = %d, want DefaultAssemblyWorkers() = %d", got, want)
	}
}

// TestSnapshotCursorFrozenUnderDML is the isolation acceptance test (run it
// under -race): a cursor opened before concurrent DELETE/MODIFY traffic must
// deliver exactly the pre-DML state — parallel read-ahead included.
func TestSnapshotCursorFrozenUnderDML(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			e, _ := sceneEngine(t, 10)
			e.SetAssemblyWorkers(workers)
			e.SetAssemblyChunk(3) // several chunks, so iteration overlaps the writer
			q := `SELECT ALL FROM brep-face-edge-point`

			baseCur := openCursor(t, e, q)
			baseline, err := baseCur.Collect()
			baseCur.Close()
			if err != nil {
				t.Fatalf("baseline Collect: %v", err)
			}

			cur := openCursor(t, e, q) // epoch pinned here, before any DML
			var wg sync.WaitGroup
			errc := make(chan error, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 1; i <= 5; i++ {
					if _, err := e.ExecuteScript(fmt.Sprintf(`DELETE FROM brep-face-edge-point WHERE brep_no = %d`, 2*i)); err != nil {
						errc <- err
						return
					}
					if _, err := e.ExecuteScript(`MODIFY face SET square_dim = 777.0 WHERE square_dim > 0.0`); err != nil {
						errc <- err
						return
					}
					if _, err := e.ExecuteScript(fmt.Sprintf(`INSERT INTO solid (solid_no) VALUES (%d)`, 9000+i)); err != nil {
						errc <- err
						return
					}
				}
			}()
			got, err := cur.Collect()
			cur.Close()
			wg.Wait()
			if err != nil {
				t.Fatalf("Collect under DML: %v", err)
			}
			select {
			case err := <-errc:
				t.Fatalf("concurrent DML: %v", err)
			default:
			}

			want, have := renderSet(baseline), renderSet(got)
			if len(want) != len(have) {
				t.Fatalf("cursor under DML delivered %d molecules, pre-DML state has %d", len(have), len(want))
			}
			for i := range want {
				if want[i] != have[i] {
					t.Fatalf("molecule %d differs from pre-DML state\nwant:\n%s\ngot:\n%s", i, want[i], have[i])
				}
			}
		})
	}
}

// TestDifferentialSnapshotVsSerial extends the differential corpus with
// interleaved DML: for every query, a cursor that survives deletes, updates
// and inserts mid-iteration must equal the uninterrupted pre-DML collect —
// for the serial and the parallel cursor alike.
func TestDifferentialSnapshotVsSerial(t *testing.T) {
	corpus := []string{
		`SELECT ALL FROM brep-face-edge-point`,
		`SELECT ALL FROM brep-face-edge-point WHERE brep_no > 2 AND brep_no <= 7`,
		`SELECT ALL FROM brep-face-edge-point WHERE edge.length > 5.5`,
		`SELECT ALL FROM brep-face-edge-point WHERE FOR_ALL edge: edge.length > 0.5`,
		`SELECT ALL FROM brep-face-edge-point WHERE EXISTS_AT_LEAST (4) face: face.square_dim > 2.0`,
		`SELECT solid_no, description FROM solid WHERE sub = EMPTY`,
	}
	dml := []string{
		`DELETE FROM brep-face-edge-point WHERE brep_no = 3`,
		`DELETE FROM brep-face-edge-point WHERE brep_no = 6`,
		`MODIFY face SET square_dim = 0.25 WHERE square_dim > 0.0`,
		`MODIFY solid SET description = 'dml' WHERE solid_no > 0`,
		`INSERT INTO solid (solid_no) VALUES (8001), (8002)`,
	}
	for _, workers := range []int{1, 4} {
		for _, q := range corpus {
			e, _ := sceneEngine(t, 8)
			e.SetAssemblyWorkers(workers)
			e.SetAssemblyChunk(2)

			baseCur := openCursor(t, e, q)
			baseline, err := baseCur.Collect()
			baseCur.Close()
			if err != nil {
				t.Fatalf("workers=%d %s: baseline: %v", workers, q, err)
			}

			cur := openCursor(t, e, q)
			var got []*core.Molecule
			// Consume a prefix, mutate the database, consume the rest.
			for i := 0; i < 2; i++ {
				m, err := cur.Next()
				if err != nil {
					t.Fatalf("workers=%d %s: Next: %v", workers, q, err)
				}
				if m == nil {
					break
				}
				got = append(got, m)
			}
			for _, stmt := range dml {
				if _, err := e.ExecuteScript(stmt); err != nil {
					t.Fatalf("workers=%d %s: DML %q: %v", workers, q, stmt, err)
				}
			}
			rest, err := cur.Collect()
			cur.Close()
			if err != nil {
				t.Fatalf("workers=%d %s: Collect: %v", workers, q, err)
			}
			got = append(got, rest...)

			want, have := renderSet(baseline), renderSet(got)
			if len(want) != len(have) {
				t.Fatalf("workers=%d %s: interleaved cursor delivered %d molecules, pre-DML state has %d",
					workers, q, len(have), len(want))
			}
			for i := range want {
				if want[i] != have[i] {
					t.Fatalf("workers=%d %s: molecule %d differs\nwant:\n%s\ngot:\n%s", workers, q, i, want[i], have[i])
				}
			}

			// A cursor opened after the DML sees the new state, proving the
			// writes really landed while the old cursor stayed frozen.
			postCur := openCursor(t, e, q)
			post, err := postCur.Collect()
			postCur.Close()
			if err != nil {
				t.Fatalf("workers=%d %s: post-DML Collect: %v", workers, q, err)
			}
			if renderSetEqual(renderSet(post), want) {
				t.Fatalf("workers=%d %s: post-DML state unchanged — DML did not land", workers, q)
			}
		}
	}
}

func renderSetEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
