package core_test

import (
	"testing"

	"prima/internal/access"
	"prima/internal/core"
	"prima/internal/workload/brepgen"
	"prima/internal/workload/mapgen"
)

// TestDifferentialAtomCache runs a query corpus with the decoded-atom cache
// enabled against the same corpus with the cache force-disabled and asserts
// identical result sets — after a warm-up pass and a burst of DML, so the
// comparison exercises invalidation, not just cold decodes.
func TestDifferentialAtomCache(t *testing.T) {
	e, _ := sceneEngine(t, 12)
	if _, _, err := brepgen.BuildAssembly(e, 4711, 3, 2); err != nil {
		t.Fatalf("BuildAssembly: %v", err)
	}
	mustQuery(t, e, `CREATE ACCESS PATH bno ON brep (brep_no) USING BTREE`)
	mustQuery(t, e, `CREATE SORT ORDER sno ON solid (solid_no)`)

	corpus := []string{
		`SELECT ALL FROM brep-face-edge-point WHERE brep_no = 3`,
		`SELECT ALL FROM brep-face-edge-point WHERE brep_no > 3 AND brep_no <= 7`,
		`SELECT ALL FROM brep-face-edge-point WHERE edge.length > 5.5`,
		`SELECT ALL FROM brep-face-edge-point WHERE EXISTS_AT_LEAST (4) face: face.square_dim > 2.0`,
		`SELECT ALL FROM brep-face-edge-point WHERE FOR_ALL edge: edge.length > 0.5`,
		`SELECT edge, (point, face := SELECT face_id FROM face WHERE square_dim > 10.0)
		   FROM brep-edge-(face, point) WHERE brep_no = 2`,
		`SELECT solid_no, description FROM solid WHERE sub = EMPTY`,
		`SELECT ALL FROM solid WHERE solid_no >= 4 AND solid_no < 9`,
		`SELECT ALL FROM piece_list WHERE piece_list(0).solid_no = 4711`,
	}

	// Warm the cache, then mutate through every DML path so the enabled run
	// serves a mix of re-decoded and invalidated atoms.
	for _, q := range corpus {
		mustQuery(t, e, q)
	}
	mustQuery(t, e, `MODIFY solid SET description = 'differential' WHERE solid_no = 5`)
	mustQuery(t, e, `MODIFY face SET square_dim = 99.5 WHERE face_id = 3`)
	mustQuery(t, e, `DELETE FROM brep-face-edge-point WHERE brep_no = 11`)

	enabled := make([][]string, len(corpus))
	for i, q := range corpus {
		enabled[i] = renderSet(mustQuery(t, e, q).Molecules)
	}
	if st := e.AtomCacheStats(); st.Hits == 0 || st.Invalidations == 0 {
		t.Fatalf("corpus did not exercise the cache: %+v", st)
	}

	e.SetAtomCacheSize(0)
	for i, q := range corpus {
		disabled := renderSet(mustQuery(t, e, q).Molecules)
		if len(disabled) != len(enabled[i]) {
			t.Fatalf("%s: cache-on %d molecules, cache-off %d", q, len(enabled[i]), len(disabled))
		}
		for j := range disabled {
			if disabled[j] != enabled[i][j] {
				t.Fatalf("%s: molecule %d differs\ncache-on:\n%s\ncache-off:\n%s", q, j, enabled[i][j], disabled[j])
			}
		}
	}
}

// TestExistsAtLeastPushdownSemantics pins the count-aware pushdown: results
// match the unpushed baseline at, below and above the threshold.
func TestExistsAtLeastPushdownSemantics(t *testing.T) {
	e, _ := sceneEngine(t, 14)
	// Every cube has 12 edges with lengths 1+size in [1, 7].
	for _, q := range []string{
		`SELECT ALL FROM brep-face-edge-point WHERE EXISTS_AT_LEAST (2) edge: edge.length > 5.5`,
		`SELECT ALL FROM brep-face-edge-point WHERE EXISTS_AT_LEAST (12) edge: edge.length > 0.5`,
		`SELECT ALL FROM brep-face-edge-point WHERE EXISTS_AT_LEAST (13) edge: edge.length > 0.5`,
		`SELECT ALL FROM brep-face-edge-point WHERE EXISTS_AT_LEAST (1) edge: edge.length > 1000.0`,
	} {
		e.SetPushdown(false)
		base := renderSet(mustQuery(t, e, q).Molecules)
		e.SetPushdown(true)
		got := renderSet(mustQuery(t, e, q).Molecules)
		if len(base) != len(got) {
			t.Fatalf("%s: baseline %d molecules, pushed %d", q, len(base), len(got))
		}
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("%s: molecule %d differs", q, i)
			}
		}
	}
}

// gridEngine builds an engine over the mapgen world with a two-dimensional
// grid access path on site (x, y).
func gridEngine(t *testing.T) *core.Engine {
	t.Helper()
	sys, err := access.Open(access.Config{})
	if err != nil {
		t.Fatalf("access.Open: %v", err)
	}
	t.Cleanup(func() { sys.Close() })
	e := core.New(sys)
	if _, err := e.ExecuteScript(mapgen.SchemaDDL); err != nil {
		t.Fatalf("schema: %v", err)
	}
	if _, err := mapgen.Build(e, 2, 4, 60, 7); err != nil {
		t.Fatalf("mapgen.Build: %v", err)
	}
	mustQuery(t, e, `CREATE ACCESS PATH xy ON site (x, y) USING GRID`)
	return e
}

// TestGridRangeSelection covers the multi-attribute GRID access choice:
// range conjuncts on any subset of the grid's attributes select a
// "gridrange" access, and the results match the atom-scan baseline.
func TestGridRangeSelection(t *testing.T) {
	e := gridEngine(t)

	// Both dimensions bounded.
	q := `SELECT ALL FROM site WHERE x >= 25.0 AND x <= 75.0 AND y > 10.0 AND y < 90.0`
	p := planFor(t, e, q)
	if p.AccessKind != "gridrange" || p.PathName != "xy" {
		t.Fatalf("AccessKind = %s (path %s), want gridrange via xy", p.AccessKind, p.PathName)
	}
	if len(p.PathRanges) != 2 || p.PathRanges[0].Start == nil || p.PathRanges[1].Stop == nil {
		t.Fatalf("PathRanges = %+v, want two bounded dimensions", p.PathRanges)
	}

	// One bounded dimension still beats the full scan; the other stays open.
	p = planFor(t, e, `SELECT ALL FROM site WHERE y > 50.0`)
	if p.AccessKind != "gridrange" {
		t.Fatalf("single-dimension AccessKind = %s, want gridrange", p.AccessKind)
	}
	if p.PathRanges[0].Start != nil || p.PathRanges[0].Stop != nil {
		t.Fatalf("unbounded x dimension got bounds %+v", p.PathRanges[0])
	}

	// Equality on one dimension folds into a closed range.
	p = planFor(t, e, `SELECT ALL FROM site WHERE pop = 3 AND x >= 10.0`)
	if p.AccessKind != "gridrange" {
		t.Fatalf("eq+range AccessKind = %s, want gridrange", p.AccessKind)
	}

	// No bounded grid attribute: the grid offers nothing.
	p = planFor(t, e, `SELECT ALL FROM site WHERE pop > 2`)
	if p.AccessKind != "atomscan" {
		t.Fatalf("unbounded AccessKind = %s, want atomscan", p.AccessKind)
	}

	// Differential: gridrange vs. forced atom scan.
	for _, qq := range []string{
		q,
		`SELECT ALL FROM site WHERE y > 50.0`,
		`SELECT ALL FROM site WHERE x > 90.0 AND x < 10.0`, // empty box
		`SELECT name FROM site WHERE x >= 25.0 AND x < 30.0 AND pop > 2`,
	} {
		e.SetPushdown(true)
		got := renderSet(mustQuery(t, e, qq).Molecules)
		e.SetPushdown(false)
		base := renderSet(mustQuery(t, e, qq).Molecules)
		e.SetPushdown(true)
		if len(got) != len(base) {
			t.Fatalf("%s: gridrange %d molecules, atomscan %d", qq, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("%s: molecule %d differs", qq, i)
			}
		}
	}
}

// TestDMLPlanCache covers prepared DELETE/MODIFY statements in the engine
// plan cache, including schema-version invalidation.
func TestDMLPlanCache(t *testing.T) {
	e, _ := sceneEngine(t, 6)

	run := func(src string) *core.Result {
		t.Helper()
		rs, err := e.ExecuteScript(src)
		if err != nil {
			t.Fatalf("ExecuteScript %q: %v", src, err)
		}
		if len(rs) != 1 {
			t.Fatalf("%q: %d results, want 1", src, len(rs))
		}
		return rs[0]
	}

	h0, m0, _ := e.PlanCacheStats()

	mod := `MODIFY solid SET description = 'cached' WHERE solid_no = 3`
	if r := run(mod); r.Count != 1 {
		t.Fatalf("first MODIFY count = %d, want 1", r.Count)
	}
	h1, m1, _ := e.PlanCacheStats()
	if h1 != h0 || m1 != m0+1 {
		t.Fatalf("first MODIFY: hits %d->%d misses %d->%d, want one fresh miss", h0, h1, m0, m1)
	}
	if r := run(mod); r.Count != 1 {
		t.Fatalf("cached MODIFY count = %d, want 1", r.Count)
	}
	h2, m2, _ := e.PlanCacheStats()
	if h2 != h1+1 || m2 != m1 {
		t.Fatalf("repeated MODIFY: hits %d->%d misses %d->%d, want one hit", h1, h2, m1, m2)
	}
	// The cached statement really applied its SET values.
	r := mustQuery(t, e, `SELECT description FROM solid WHERE solid_no = 3`)
	if len(r.Molecules) != 1 {
		t.Fatalf("solid_no = 3: %d molecules", len(r.Molecules))
	}
	if v, _ := r.Molecules[0].Root.Atom.Value("description"); v.S != "cached" {
		t.Fatalf("description = %v, want 'cached'", v)
	}

	del := `DELETE FROM brep-face-edge-point WHERE brep_no = 5`
	if r := run(del); r.Count == 0 {
		t.Fatalf("first DELETE deleted nothing")
	}
	if r := run(del); r.Count != 0 {
		t.Fatalf("repeated DELETE deleted %d atoms, want 0 (already gone)", r.Count)
	}
	h3, m3, _ := e.PlanCacheStats()
	if h3 != h2+1 || m3 != m2+1 {
		t.Fatalf("DELETE pair: hits %d->%d misses %d->%d, want one miss + one hit", h2, h3, m2, m3)
	}

	// DDL bumps the schema version: the same text must re-plan.
	run(`CREATE ATOM_TYPE cache_probe (id: IDENTIFIER, n: INTEGER)`)
	run(mod)
	h4, m4, _ := e.PlanCacheStats()
	if h4 != h3 || m4 != m3+1 {
		t.Fatalf("post-DDL MODIFY: hits %d->%d misses %d->%d, want a miss (schema version invalidation)", h3, h4, m3, m4)
	}
}

// TestDMLPlanCacheConcurrent shares one cached MODIFY plan across concurrent
// executors (the -race suite for cachedDML immutability).
func TestDMLPlanCacheConcurrent(t *testing.T) {
	e, _ := sceneEngine(t, 4)
	mod := `MODIFY solid SET description = 'x' WHERE solid_no = 2`
	if _, err := e.ExecuteScript(mod); err != nil {
		t.Fatalf("prime: %v", err)
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			var err error
			for k := 0; k < 20 && err == nil; k++ {
				_, err = e.ExecuteScript(mod)
			}
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent cached MODIFY: %v", err)
		}
	}
}
