package core

import (
	"fmt"
	"sync"

	"prima/internal/access/atom"
	"prima/internal/catalog"
	"prima/internal/mql"
)

// Plan-time predicate compilation (§3.1 query preparation). The residual
// WHERE predicate and qualified-projection predicates are lowered once, at
// plan time, into a tree of closures over pre-resolved (atom type, attribute
// index, RECORD field path) targets. Execution then runs the closures per
// molecule with zero schema lookups, zero string comparisons, and a reusable
// quantifier-binding scratch — the interpreted evaluator in eval.go remains
// as the differential baseline (Engine.SetPredicateCompilation).

// cscratch is the per-evaluation scratch of one compiled predicate:
// quantifier bindings by slot, and one value buffer per attribute operand.
// It is pooled by the owning compiledPred, so steady-state evaluation does
// not allocate.
type cscratch struct {
	bound []*MAtom
	bufs  [][]atom.Value
}

// cnode is one compiled predicate node.
type cnode func(m *Molecule, s *cscratch) (bool, error)

// compiledPred is a fully compiled molecule predicate. It is immutable after
// compilation and safe for concurrent evaluation (each Eval checks out its
// own scratch), so cached plans may be shared across cursors.
type compiledPred struct {
	fn   cnode
	pool sync.Pool
}

// Eval decides the predicate for one molecule.
func (cp *compiledPred) Eval(m *Molecule) (bool, error) {
	s := cp.pool.Get().(*cscratch)
	ok, err := cp.fn(m, s)
	cp.pool.Put(s)
	return ok, err
}

// predCompiler carries compilation state: the lexical scope of quantifier
// variables (atom type name -> binding slot) and the running slot/buffer
// counters that size the scratch.
type predCompiler struct {
	e     *Engine
	mol   *catalog.MoleculeType
	scope map[string]int
	slots int
	bufs  int
}

// compilePredicate lowers a predicate that already passed checkExpr.
// Compilation itself never fails: operand forms the interpreter rejects at
// run time compile to closures returning the same error lazily, preserving
// exact error parity with the interpreted path (a query whose cursor never
// evaluates the predicate must not start failing at plan time).
func (e *Engine) compilePredicate(x mql.Expr, mol *catalog.MoleculeType) *compiledPred {
	pc := &predCompiler{e: e, mol: mol, scope: map[string]int{}}
	fn := pc.compile(x)
	slots, bufs := pc.slots, pc.bufs
	cp := &compiledPred{fn: fn}
	cp.pool.New = func() any {
		return &cscratch{
			bound: make([]*MAtom, slots),
			bufs:  make([][]atom.Value, bufs),
		}
	}
	return cp
}

// errNode defers an error to evaluation time.
func errNode(err error) cnode {
	return func(*Molecule, *cscratch) (bool, error) { return false, err }
}

func (pc *predCompiler) compile(x mql.Expr) cnode {
	switch v := x.(type) {
	case *mql.Binary:
		l, r := pc.compile(v.L), pc.compile(v.R)
		if v.Op == "AND" {
			return func(m *Molecule, s *cscratch) (bool, error) {
				ok, err := l(m, s)
				if err != nil || !ok {
					return false, err
				}
				return r(m, s)
			}
		}
		return func(m *Molecule, s *cscratch) (bool, error) {
			ok, err := l(m, s)
			if err != nil || ok {
				return ok, err
			}
			return r(m, s)
		}
	case *mql.Not:
		inner := pc.compile(v.X)
		return func(m *Molecule, s *cscratch) (bool, error) {
			ok, err := inner(m, s)
			return !ok, err
		}
	case *mql.Quant:
		return pc.compileQuant(v)
	case *mql.Compare:
		return pc.compileCompare(v)
	default:
		return errNode(fmt.Errorf("%w: predicate %T", ErrSemantic, x))
	}
}

func (pc *predCompiler) compileQuant(q *mql.Quant) cnode {
	var decide func(count, total int) bool
	switch q.Kind {
	case "EXISTS":
		decide = func(c, _ int) bool { return c >= 1 }
	case "FOR_ALL":
		decide = func(c, t int) bool { return c == t }
	case "EXISTS_AT_LEAST":
		n := q.N
		decide = func(c, _ int) bool { return c >= n }
	case "EXISTS_EXACTLY":
		n := q.N
		decide = func(c, _ int) bool { return c == n }
	default:
		return errNode(fmt.Errorf("%w: quantifier %s", ErrSemantic, q.Kind))
	}

	// The quantifier variable is the component type name; references to it
	// inside Cond resolve to this slot, shadowing any outer binding of the
	// same name — the lexical analogue of the interpreter's dynamic map.
	slot := pc.slots
	pc.slots++
	prev, shadowed := pc.scope[q.Var]
	pc.scope[q.Var] = slot
	cond := pc.compile(q.Cond)
	if shadowed {
		pc.scope[q.Var] = prev
	} else {
		delete(pc.scope, q.Var)
	}

	varName := q.Var
	return func(m *Molecule, s *cscratch) (bool, error) {
		atoms := m.ByType[varName]
		count := 0
		for _, ma := range atoms {
			s.bound[slot] = ma
			ok, err := cond(m, s)
			if err != nil {
				return false, err
			}
			if ok {
				count++
			}
		}
		s.bound[slot] = nil
		return decide(count, len(atoms)), nil
	}
}

func (pc *predCompiler) compileCompare(c *mql.Compare) cnode {
	// attr = EMPTY / attr <> EMPTY: repeating-group emptiness.
	if _, isEmpty := c.R.(*mql.EmptyLit); isEmpty {
		ref, ok := c.L.(*mql.AttrRef)
		if !ok {
			return errNode(fmt.Errorf("%w: EMPTY requires an attribute operand", ErrSemantic))
		}
		cr, err := pc.compileRef(ref)
		if err != nil {
			return errNode(err)
		}
		bufIdx := pc.newBuf()
		op := c.Op
		return func(m *Molecule, s *cscratch) (bool, error) {
			for _, v := range cr.values(m, s, bufIdx) {
				empty := v.Len() == 0
				if (op == mql.CmpEQ && empty) || (op == mql.CmpNE && !empty) {
					return true, nil
				}
			}
			return false, nil
		}
	}

	// attr = NULL / attr <> NULL: IS-NULL semantics.
	if lit, isLit := c.R.(*mql.Lit); isLit && lit.V.IsNull() {
		ref, ok := c.L.(*mql.AttrRef)
		if !ok {
			return errNode(fmt.Errorf("%w: NULL requires an attribute operand", ErrSemantic))
		}
		cr, err := pc.compileRef(ref)
		if err != nil {
			return errNode(err)
		}
		bufIdx := pc.newBuf()
		op := c.Op
		return func(m *Molecule, s *cscratch) (bool, error) {
			for _, v := range cr.values(m, s, bufIdx) {
				if (op == mql.CmpEQ && v.IsNull()) || (op == mql.CmpNE && !v.IsNull()) {
					return true, nil
				}
			}
			return false, nil
		}
	}

	l, err := pc.compileOperand(c.L)
	if err != nil {
		return errNode(err)
	}
	r, err := pc.compileOperand(c.R)
	if err != nil {
		return errNode(err)
	}
	op := c.Op
	return func(m *Molecule, s *cscratch) (bool, error) {
		lvals := l.values(m, s)
		rvals := r.values(m, s)
		for _, lv := range lvals {
			for _, rv := range rvals {
				if lv.IsNull() || rv.IsNull() {
					continue
				}
				if cmpHolds(op, atom.Compare(lv, rv)) {
					return true, nil
				}
			}
		}
		return false, nil
	}
}

func cmpHolds(op mql.CmpOp, cmp int) bool {
	switch op {
	case mql.CmpEQ:
		return cmp == 0
	case mql.CmpNE:
		return cmp != 0
	case mql.CmpLT:
		return cmp < 0
	case mql.CmpLE:
		return cmp <= 0
	case mql.CmpGT:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

// coperand is one comparison operand: a literal (pre-wrapped in a shared,
// read-only one-element slice) or a compiled attribute reference with its
// dedicated scratch buffer.
type coperand struct {
	ref    *cref
	bufIdx int
	lit    []atom.Value
}

func (pc *predCompiler) compileOperand(x mql.Expr) (*coperand, error) {
	switch v := x.(type) {
	case *mql.Lit:
		return &coperand{lit: []atom.Value{v.V}}, nil
	case *mql.AttrRef:
		cr, err := pc.compileRef(v)
		if err != nil {
			return nil, err
		}
		return &coperand{ref: cr, bufIdx: pc.newBuf()}, nil
	default:
		return nil, fmt.Errorf("%w: operand %T", ErrSemantic, x)
	}
}

func (o *coperand) values(m *Molecule, s *cscratch) []atom.Value {
	if o.ref == nil {
		return o.lit
	}
	return o.ref.values(m, s, o.bufIdx)
}

func (pc *predCompiler) newBuf() int {
	i := pc.bufs
	pc.bufs++
	return i
}

// cref is a pre-resolved attribute reference: owning type, attribute index,
// RECORD field path as indices, recursion-level filter, and the quantifier
// binding slot (-1 when free, i.e. implicitly existential over all atoms of
// the type).
type cref struct {
	typeName string
	attrIdx  int
	fields   []int
	level    int
	hasLevel bool
	slot     int
}

func (pc *predCompiler) compileRef(ref *mql.AttrRef) (*cref, error) {
	tgt, err := pc.e.resolveRefTarget(ref, pc.mol)
	if err != nil {
		return nil, err
	}
	t, _ := pc.e.sys.Schema().AtomType(tgt.typeName)
	idx, ok := t.AttrIndex(tgt.attr)
	if !ok {
		return nil, fmt.Errorf("core: lost attribute %s.%s", tgt.typeName, tgt.attr)
	}
	cr := &cref{typeName: tgt.typeName, attrIdx: idx, level: tgt.level, hasLevel: tgt.hasLevel, slot: -1}
	if s, ok := pc.scope[tgt.typeName]; ok {
		cr.slot = s
	}
	// Pre-resolve the RECORD field path to indices (resolveRefTarget already
	// validated it against the attribute's type spec).
	spec := t.Attrs[idx].Type
	for _, f := range tgt.fields {
		fi := -1
		for j, rf := range spec.Fields {
			if rf.Name == f {
				fi = j
				break
			}
		}
		if fi < 0 {
			return nil, fmt.Errorf("%w: RECORD field %s", catalog.ErrUnknownAttr, f)
		}
		cr.fields = append(cr.fields, fi)
		spec = spec.Fields[fi].Type
	}
	return cr, nil
}

// values collects the reference's matching values: the bound atom's value
// when a quantifier binds the type, else one value per molecule atom of the
// type (implicit existential semantics), reusing the operand's scratch
// buffer across evaluations.
func (r *cref) values(m *Molecule, s *cscratch, bufIdx int) []atom.Value {
	buf := s.bufs[bufIdx][:0]
	if r.slot >= 0 {
		if ma := s.bound[r.slot]; ma != nil {
			buf = r.appendFrom(buf, ma)
		}
	} else {
		for _, ma := range m.ByType[r.typeName] {
			buf = r.appendFrom(buf, ma)
		}
	}
	s.bufs[bufIdx] = buf
	return buf
}

func (r *cref) appendFrom(buf []atom.Value, ma *MAtom) []atom.Value {
	if r.hasLevel && ma.Level != r.level {
		return buf
	}
	v := ma.Atom.Values[r.attrIdx]
	for _, fi := range r.fields {
		if v.K != atom.KindRecord || fi >= len(v.E) {
			return buf
		}
		v = v.E[fi]
	}
	return append(buf, v)
}
