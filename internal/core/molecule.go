// Package core implements PRIMA's data system (§3.1): it maps the
// molecule-oriented MAD interface onto the atom-oriented access system.
// Query validation and modification, simplification, preparation, molecule
// management with a one-molecule-at-a-time cursor interface, recursion, and
// the DML all live here.
package core

import (
	"fmt"
	"sort"
	"strings"

	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/catalog"
)

// Molecule is one molecule occurrence: a tree of atoms assembled dynamically
// along the associations named by its molecule type.
type Molecule struct {
	Type *catalog.MoleculeType
	Root *MAtom
	// ByType lists the molecule's atoms grouped by atom type name, in
	// traversal order (the flat view used by projection and quantifiers).
	ByType map[string][]*MAtom
	// atoms dedupes by address: an atom belongs to a molecule at most once
	// even when reachable over several lanes (shared components, recursion
	// cycles). It takes the component role of its first reach.
	atoms map[addr.LogicalAddr]*MAtom
}

// MAtom is one atom inside a molecule, bound to the component (node) of the
// molecule type it instantiates.
type MAtom struct {
	Atom  *access.Atom
	Node  *catalog.MolNode
	Level int // recursion level (0 = root)
	// Children holds the component atoms reached over each child edge of
	// Node (parallel to Node.Children); recursive self-edges come last.
	Children [][]*MAtom
	// Projected marks atoms whose attributes were restricted by a
	// projection; Hidden marks connector atoms retained only for molecule
	// structure after projection.
	Hidden bool
}

// Addr returns the atom's logical address.
func (m *MAtom) Addr() addr.LogicalAddr { return m.Atom.Addr }

// Size returns the number of atoms in the molecule.
func (m *Molecule) Size() int {
	n := 0
	for _, atoms := range m.ByType {
		n += len(atoms)
	}
	return n
}

// AtomsOf returns the molecule's atoms of one type.
func (m *Molecule) AtomsOf(typeName string) []*MAtom { return m.ByType[typeName] }

// MaxLevel returns the deepest recursion level present.
func (m *Molecule) MaxLevel() int {
	max := 0
	for _, atoms := range m.ByType {
		for _, a := range atoms {
			if a.Level > max {
				max = a.Level
			}
		}
	}
	return max
}

// String renders the molecule as an indented tree (CLI / example output).
func (m *Molecule) String() string {
	var sb strings.Builder
	var walk func(ma *MAtom, depth int)
	walk = func(ma *MAtom, depth int) {
		indent := strings.Repeat("  ", depth)
		if ma.Hidden {
			fmt.Fprintf(&sb, "%s%s %s (connector)\n", indent, ma.Atom.Type.Name, ma.Atom.Addr)
		} else {
			fmt.Fprintf(&sb, "%s%s %s", indent, ma.Atom.Type.Name, ma.Atom.Addr)
			var attrs []string
			for i, attr := range ma.Atom.Type.Attrs {
				v := ma.Atom.Values[i]
				if v.IsNull() || attr.Type.IsRef() || attr.Type.Kind == atom.KindIdent {
					continue
				}
				attrs = append(attrs, fmt.Sprintf("%s=%s", attr.Name, v))
			}
			if len(attrs) > 0 {
				fmt.Fprintf(&sb, " {%s}", strings.Join(attrs, ", "))
			}
			sb.WriteByte('\n')
		}
		for _, group := range ma.Children {
			for _, c := range group {
				walk(c, depth+1)
			}
		}
	}
	walk(m.Root, 0)
	return sb.String()
}

// SortedAddrs returns all atom addresses of the molecule in ascending
// order (deterministic test output).
func (m *Molecule) SortedAddrs() []addr.LogicalAddr {
	var out []addr.LogicalAddr
	for _, atoms := range m.ByType {
		for _, a := range atoms {
			out = append(out, a.Addr())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
