package du

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/core"
	"prima/internal/mql"
	"prima/internal/workload/brepgen"
)

func newScene(t testing.TB, n int) *core.Engine {
	t.Helper()
	sys, err := access.Open(access.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	if err := brepgen.InstallSchema(e); err != nil {
		t.Fatal(err)
	}
	if _, err := brepgen.BuildScene(e, n); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParallelCollectMatchesSequential(t *testing.T) {
	e := newScene(t, 12)
	stmt, err := mql.ParseOne(`SELECT ALL FROM brep-face-edge-point WHERE brep_no >= 4`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.PlanSelect(stmt.(*mql.Select))
	if err != nil {
		t.Fatal(err)
	}

	cur, err := plan.Open()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := cur.Collect()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		par, err := ParallelCollect(plan, workers)
		if err != nil {
			t.Fatalf("ParallelCollect(%d): %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d molecules, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Root.Addr() != seq[i].Root.Addr() {
				t.Fatalf("workers=%d: result order differs at %d", workers, i)
			}
			if par[i].Size() != seq[i].Size() {
				t.Fatalf("workers=%d: molecule %d size %d != %d", workers, i, par[i].Size(), seq[i].Size())
			}
		}
	}
}

func TestSchedulerConflictSerialization(t *testing.T) {
	shared := addr.New(1, 99)
	var units []*Unit
	// 8 units writing the same atom (must serialize) + 8 disjoint ones.
	for i := 0; i < 8; i++ {
		units = append(units, &Unit{ID: i, Writes: map[addr.LogicalAddr]bool{shared: true}})
	}
	for i := 8; i < 16; i++ {
		units = append(units, &Unit{ID: i, Writes: map[addr.LogicalAddr]bool{addr.New(1, uint64(i)): true}})
	}

	var mu sync.Mutex
	inShared := 0
	maxShared := 0
	var total int32
	err := Scheduler{Workers: 8}.Run(units, func(u *Unit) error {
		if u.Writes[shared] {
			mu.Lock()
			inShared++
			if inShared > maxShared {
				maxShared = inShared
			}
			mu.Unlock()
			for i := 0; i < 1000; i++ { // widen the race window
				_ = i
			}
			mu.Lock()
			inShared--
			mu.Unlock()
		}
		atomic.AddInt32(&total, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 16 {
		t.Fatalf("executed %d units, want 16", total)
	}
	if maxShared > 1 {
		t.Fatalf("conflicting units overlapped: %d concurrent", maxShared)
	}
}

func TestSchedulerErrorStopsSchedule(t *testing.T) {
	units := DecomposeRoots(make([]addr.LogicalAddr, 100), 1)
	boom := errors.New("boom")
	var ran int32
	err := Scheduler{Workers: 4}.Run(units, func(u *Unit) error {
		if atomic.AddInt32(&ran, 1) == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if atomic.LoadInt32(&ran) == 100 {
		t.Fatal("error did not stop the schedule")
	}
}

func TestParallelApply(t *testing.T) {
	e := newScene(t, 8)
	sys := e.System()
	roots, err := sys.ScanAddrs("solid")
	if err != nil {
		t.Fatal(err)
	}
	err = ParallelApply(roots, 4, func(a addr.LogicalAddr) error {
		return sys.Update(a, map[string]atom.Value{"description": atom.Str("painted")})
	})
	if err != nil {
		t.Fatalf("ParallelApply: %v", err)
	}
	n := 0
	sys.AtomTypeScan("solid", access.SSA{{Attr: "description", Op: access.OpEQ, Value: atom.Str("painted")}}, nil,
		func(*access.Atom) bool { n++; return true })
	if n != 8 {
		t.Fatalf("painted %d solids, want 8", n)
	}
}

func TestDecomposeRoots(t *testing.T) {
	roots := make([]addr.LogicalAddr, 10)
	units := DecomposeRoots(roots, 3)
	if len(units) != 4 {
		t.Fatalf("units = %d, want 4", len(units))
	}
	if len(units[3].Roots) != 1 {
		t.Fatalf("last unit size = %d", len(units[3].Roots))
	}
	if len(DecomposeRoots(nil, 3)) != 0 {
		t.Fatal("empty roots produced units")
	}
	// batch < 1 coerced.
	if got := DecomposeRoots(roots, 0); len(got) != 10 {
		t.Fatalf("batch 0 -> %d units", len(got))
	}
}
