// Package du implements semantic decomposition (§4): "units of work
// decomposed from a single user operation are said to allow for inherent
// semantic parallelism when they do not conflict with each other at the
// level of decomposition. Such decomposed units of work (DU's) may be
// scheduled and executed concurrently by the DBMS."
//
// The multiprocessor PRIMA is simulated by goroutines: molecule-set
// operations decompose into one unit per root-atom batch; a conflict
// relation over the units' read/write sets gates concurrent execution.
package du

import (
	"errors"
	"fmt"
	"sync"

	"prima/internal/access/addr"
	"prima/internal/core"
)

// Unit is one decomposed unit of work.
type Unit struct {
	ID    int
	Roots []addr.LogicalAddr
	// Writes is the unit's write set (empty for retrieval units);
	// conflicting units never run concurrently.
	Writes map[addr.LogicalAddr]bool
}

// Conflicts reports whether two units' write sets overlap (write-write) —
// the decomposition-level conflict notion of the paper. Read-only units
// never conflict.
func Conflicts(a, b *Unit) bool {
	if len(a.Writes) == 0 || len(b.Writes) == 0 {
		return false
	}
	small, large := a.Writes, b.Writes
	if len(small) > len(large) {
		small, large = large, small
	}
	for w := range small {
		if large[w] {
			return true
		}
	}
	return false
}

// Scheduler executes units on a bounded worker pool, delaying units that
// conflict with a running one.
type Scheduler struct {
	Workers int
}

// ErrNoUnits is returned when Run receives nothing to do.
var ErrNoUnits = errors.New("du: no units")

// Run executes every unit via exec. Conflicting units are serialized; the
// first error cancels the remaining schedule and is returned.
func (s Scheduler) Run(units []*Unit, exec func(*Unit) error) error {
	if len(units) == 0 {
		return nil
	}
	workers := s.Workers
	if workers < 1 {
		workers = 1
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		running  = map[int]*Unit{}
		next     int
		firstErr error
		wg       sync.WaitGroup
	)

	canRun := func(u *Unit) bool {
		for _, r := range running {
			if Conflicts(u, r) {
				return false
			}
		}
		return true
	}

	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			for {
				if firstErr != nil || next >= len(units) {
					mu.Unlock()
					return
				}
				u := units[next]
				if canRun(u) {
					next++
					running[u.ID] = u
					mu.Unlock()
					err := exec(u)
					mu.Lock()
					delete(running, u.ID)
					if err != nil && firstErr == nil {
						firstErr = err
					}
					cond.Broadcast()
					mu.Unlock()
					break
				}
				cond.Wait()
			}
		}
	}

	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	wg.Wait()
	// Wake any workers still parked on the condition variable.
	cond.Broadcast()
	return firstErr
}

// DecomposeRoots splits a root list into units of batch size roots each.
// Retrieval units carry no write sets.
func DecomposeRoots(roots []addr.LogicalAddr, batch int) []*Unit {
	if batch < 1 {
		batch = 1
	}
	var units []*Unit
	for i := 0; i < len(roots); i += batch {
		j := i + batch
		if j > len(roots) {
			j = len(roots)
		}
		units = append(units, &Unit{ID: len(units), Roots: roots[i:j]})
	}
	return units
}

// ParallelCollect executes a molecule retrieval plan with the given degree
// of parallelism: the root set is decomposed into units, assembled
// concurrently, and the qualified molecules are returned in root order
// (same result as the sequential cursor).
func ParallelCollect(plan *core.Plan, workers int) ([]*core.Molecule, error) {
	roots, err := plan.Roots()
	if err != nil {
		return nil, err
	}
	if len(roots) == 0 {
		return nil, nil
	}
	batch := (len(roots) + workers*4 - 1) / (workers * 4)
	units := DecomposeRoots(roots, batch)

	results := make([][]*core.Molecule, len(units))
	err = Scheduler{Workers: workers}.Run(units, func(u *Unit) error {
		var out []*core.Molecule
		for _, r := range u.Roots {
			m, err := plan.AssembleRoot(r)
			if err != nil {
				return fmt.Errorf("du: unit %d root %v: %w", u.ID, r, err)
			}
			if m != nil {
				out = append(out, m)
			}
		}
		results[u.ID] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []*core.Molecule
	for _, part := range results {
		all = append(all, part...)
	}
	return all, nil
}

// ParallelApply runs fn once per molecule root concurrently; each unit's
// write set is the root atom, so units writing distinct molecules proceed
// in parallel while overlapping ones serialize. This is the shape of a
// decomposed molecule-set modification.
func ParallelApply(roots []addr.LogicalAddr, workers int, fn func(addr.LogicalAddr) error) error {
	units := make([]*Unit, len(roots))
	for i, r := range roots {
		units[i] = &Unit{ID: i, Roots: []addr.LogicalAddr{r}, Writes: map[addr.LogicalAddr]bool{r: true}}
	}
	return Scheduler{Workers: workers}.Run(units, func(u *Unit) error {
		return fn(u.Roots[0])
	})
}
