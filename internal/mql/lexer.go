package mql

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrSyntax wraps all lexical and syntactic errors.
var ErrSyntax = errors.New("mql: syntax error")

// lexer turns MQL source into tokens. Comments run from "--" to end of line
// or are enclosed in (* ... *) as in the paper's examples.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: line %d col %d: %s", ErrSyntax, l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) nextByte() byte {
	b := l.src[l.pos]
	l.pos++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

// skipSpace consumes whitespace and comments.
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		b := l.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			l.nextByte()
		case b == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.nextByte()
			}
		case b == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.nextByte()
			l.nextByte()
			for {
				if l.pos+1 >= len(l.src) {
					return l.errf("unterminated comment")
				}
				if l.peekByte() == '*' && l.src[l.pos+1] == ')' {
					l.nextByte()
					l.nextByte()
					break
				}
				l.nextByte()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || (b >= '0' && b <= '9')
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	t := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		t.kind = tokEOF
		return t, nil
	}
	b := l.peekByte()
	switch {
	case isIdentStart(b):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.nextByte()
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			t.kind = tokKeyword
			t.text = up
		} else {
			t.kind = tokIdent
			t.text = word
		}
		return t, nil

	case isDigit(b):
		return l.lexNumber()

	case b == '\'':
		l.nextByte()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated string")
			}
			c := l.nextByte()
			if c == '\'' {
				if l.peekByte() == '\'' { // escaped quote
					l.nextByte()
					sb.WriteByte('\'')
					continue
				}
				break
			}
			sb.WriteByte(c)
		}
		t.kind = tokString
		t.text = sb.String()
		return t, nil

	case b == '@':
		// Address literal: @typeid.seq (both decimal).
		l.nextByte()
		start := l.pos
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.nextByte()
		}
		if l.pos == start || l.peekByte() != '.' {
			return token{}, l.errf("bad address literal (want @<type>.<seq>)")
		}
		tid, _ := strconv.ParseInt(l.src[start:l.pos], 10, 64)
		l.nextByte() // '.'
		start = l.pos
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.nextByte()
		}
		if l.pos == start {
			return token{}, l.errf("bad address literal sequence")
		}
		seq, _ := strconv.ParseInt(l.src[start:l.pos], 10, 64)
		t.kind = tokAddr
		t.i = tid<<48 | seq
		return t, nil

	default:
		l.nextByte()
		switch b {
		case '(':
			t.kind = tokLParen
		case ')':
			t.kind = tokRParen
		case '{':
			t.kind = tokLBrace
		case '}':
			t.kind = tokRBrace
		case '[':
			t.kind = tokLBrack
		case ']':
			t.kind = tokRBrack
		case ',':
			t.kind = tokComma
		case ';':
			t.kind = tokSemi
		case '.':
			t.kind = tokDot
		case '-':
			t.kind = tokMinus
		case '*':
			t.kind = tokStar
		case '=':
			t.kind = tokEQ
		case ':':
			if l.peekByte() == '=' {
				l.nextByte()
				t.kind = tokAssign
			} else {
				t.kind = tokColon
			}
		case '<':
			switch l.peekByte() {
			case '>':
				l.nextByte()
				t.kind = tokNE
			case '=':
				l.nextByte()
				t.kind = tokLE
			default:
				t.kind = tokLT
			}
		case '>':
			if l.peekByte() == '=' {
				l.nextByte()
				t.kind = tokGE
			} else {
				t.kind = tokGT
			}
		default:
			return token{}, l.errf("unexpected character %q", string(b))
		}
		return t, nil
	}
}

// lexNumber scans integer and real literals (1713, 1.9E4, 1.0E-2).
func (l *lexer) lexNumber() (token, error) {
	t := token{line: l.line, col: l.col}
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.peekByte()) {
		l.nextByte()
	}
	isReal := false
	if l.peekByte() == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		isReal = true
		l.nextByte()
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.nextByte()
		}
	}
	if b := l.peekByte(); b == 'e' || b == 'E' {
		// Exponent (only if followed by digits or sign+digits).
		save := l.pos
		l.nextByte()
		if l.peekByte() == '+' || l.peekByte() == '-' {
			l.nextByte()
		}
		if isDigit(l.peekByte()) {
			isReal = true
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.nextByte()
			}
		} else {
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	if isReal {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, l.errf("bad real literal %q", text)
		}
		t.kind = tokReal
		t.f = f
	} else {
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return token{}, l.errf("bad integer literal %q", text)
		}
		t.kind = tokInt
		t.i = i
	}
	return t, nil
}

// lexAll tokenizes the whole input (parser convenience).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
