// Package mql implements the Molecule Query Language (§2.2, Table 2.1): an
// SQL-like language whose FROM clause names dynamically defined molecule
// types, with quantified predicates, qualified projections, recursion, full
// DML, the MAD data definition language of Fig. 2.3, and the load definition
// language (LDL) of §2.3.
package mql

import "fmt"

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokReal
	tokString
	tokAddr   // @type.seq literal
	tokLParen // (
	tokRParen // )
	tokLBrace // {
	tokRBrace // }
	tokLBrack // [
	tokRBrack // ]
	tokComma
	tokSemi
	tokColon
	tokDot
	tokMinus
	tokAssign // :=
	tokEQ     // =
	tokNE     // <>
	tokLT
	tokLE
	tokGT
	tokGE
	tokStar // *
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokKeyword:
		return "keyword"
	case tokInt:
		return "integer"
	case tokReal:
		return "real"
	case tokString:
		return "string"
	case tokAddr:
		return "address literal"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBrack:
		return "'['"
	case tokRBrack:
		return "']'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokColon:
		return "':'"
	case tokDot:
		return "'.'"
	case tokMinus:
		return "'-'"
	case tokAssign:
		return "':='"
	case tokEQ:
		return "'='"
	case tokNE:
		return "'<>'"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	case tokStar:
		return "'*'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is one lexical unit.
type token struct {
	kind tokKind
	text string // identifier / keyword (upper-cased) / literal text
	i    int64
	f    float64
	line int
	col  int
}

// keywords of MQL (normalized upper-case).
var keywords = map[string]bool{
	"SELECT": true, "ALL": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true,
	"EXISTS": true, "EXISTS_AT_LEAST": true, "EXISTS_EXACTLY": true, "FOR_ALL": true,
	"EMPTY": true, "NULL": true, "TRUE": true, "FALSE": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"DELETE": true, "MODIFY": true, "SET": true,
	"CONNECT": true, "DISCONNECT": true, "TO": true, "VIA": true,
	"CREATE": true, "DROP": true, "DEFINE": true,
	"ATOM_TYPE": true, "MOLECULE": true, "TYPE": true, "KEYS_ARE": true, "RECURSIVE": true,
	"INTEGER": true, "REAL": true, "BOOLEAN": true, "CHAR_VAR": true, "IDENTIFIER": true,
	"REF_TO": true, "SET_OF": true, "LIST_OF": true, "ARRAY_OF": true,
	"RECORD": true, "END": true, "VAR": true, "HULL_DIM": true,
	"ACCESS": true, "PATH": true, "SORT": true, "ORDER": true,
	"PARTITION": true, "ATOM_CLUSTER": true, "ON": true, "USING": true,
	"BTREE": true, "GRID": true, "ASC": true, "DESC": true,
	"CHECK": true, "INTEGRITY": true, "PROPAGATE": true, "DEFERRED": true,
	"EXPLAIN": true, "ANALYZE": true,
}
