package mql

import (
	"fmt"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
)

// Parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a script of semicolon-separated statements.
func Parse(src string) ([]Stmt, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	for {
		for p.peek().kind == tokSemi {
			p.advance()
		}
		if p.peek().kind == tokEOF {
			return out, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		switch p.peek().kind {
		case tokSemi:
			p.advance()
		case tokEOF:
		default:
			return nil, p.errf("expected ';' or end of input, got %s", p.peek().kind)
		}
	}
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (Stmt, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("%w: expected exactly one statement, got %d", ErrSyntax, len(stmts))
	}
	return stmts[0], nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	t := p.peek()
	return fmt.Errorf("%w: line %d col %d: %s", ErrSyntax, t.line, t.col, fmt.Sprintf(format, args...))
}

// expect consumes a token of the given kind.
func (p *parser) expect(k tokKind) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errf("expected %s, got %s %q", k, p.peek().kind, p.peek().text)
	}
	return p.advance(), nil
}

// keyword consumes the given keyword.
func (p *parser) keyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errf("expected %s", kw)
	}
	p.advance()
	return nil
}

// atKeyword reports whether the next token is the keyword.
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

// ident consumes an identifier (also accepting non-reserved-looking
// keywords used as names is NOT allowed: names must be identifiers).
func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	return t.text, nil
}

// statement dispatches on the leading keyword.
func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errf("expected a statement keyword, got %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "DELETE":
		return p.deleteStmt()
	case "MODIFY":
		return p.modifyStmt()
	case "CONNECT":
		return p.connectStmt(false)
	case "DISCONNECT":
		return p.connectStmt(true)
	case "CREATE":
		return p.createStmt()
	case "DEFINE":
		return p.defineMoleculeType()
	case "DROP":
		return p.dropStmt()
	case "CHECK":
		p.advance()
		if err := p.keyword("INTEGRITY"); err != nil {
			return nil, err
		}
		out := &CheckIntegrity{}
		if p.peek().kind == tokIdent {
			out.AtomType = p.advance().text
		}
		return out, nil
	case "PROPAGATE":
		p.advance()
		if p.atKeyword("DEFERRED") {
			p.advance()
		}
		return &PropagateDeferred{}, nil
	case "EXPLAIN":
		p.advance()
		out := &Explain{}
		if p.atKeyword("ANALYZE") {
			p.advance()
			out.Analyze = true
		}
		if !p.atKeyword("SELECT") {
			return nil, p.errf("EXPLAIN expects a SELECT statement, got %q", p.peek().text)
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		out.Query = sel
		return out, nil
	default:
		return nil, p.errf("unexpected keyword %s", t.text)
	}
}

// --- DDL ----------------------------------------------------------------------

func (p *parser) createStmt() (Stmt, error) {
	p.advance() // CREATE
	switch {
	case p.atKeyword("ATOM_TYPE"):
		return p.createAtomType()
	case p.atKeyword("ACCESS"):
		p.advance()
		if err := p.keyword("PATH"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("ON"); err != nil {
			return nil, err
		}
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		attrs, err := p.parenIdentList()
		if err != nil {
			return nil, err
		}
		out := &CreateAccessPath{Name: name, AtomType: typ, Attrs: attrs}
		if p.atKeyword("USING") {
			p.advance()
			switch {
			case p.atKeyword("BTREE"):
				out.Using = "BTREE"
			case p.atKeyword("GRID"):
				out.Using = "GRID"
			default:
				return nil, p.errf("expected BTREE or GRID")
			}
			p.advance()
		}
		return out, nil
	case p.atKeyword("SORT"):
		p.advance()
		if err := p.keyword("ORDER"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("ON"); err != nil {
			return nil, err
		}
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		out := &CreateSortOrder{Name: name, AtomType: typ}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		for {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			desc := false
			if p.atKeyword("DESC") {
				desc = true
				p.advance()
			} else if p.atKeyword("ASC") {
				p.advance()
			}
			out.Attrs = append(out.Attrs, a)
			out.Desc = append(out.Desc, desc)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return out, nil
	case p.atKeyword("PARTITION"):
		p.advance()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("ON"); err != nil {
			return nil, err
		}
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		attrs, err := p.parenIdentList()
		if err != nil {
			return nil, err
		}
		return &CreatePartition{Name: name, AtomType: typ, Attrs: attrs}, nil
	case p.atKeyword("ATOM_CLUSTER"):
		p.advance()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("ON"); err != nil {
			return nil, err
		}
		mol, err := p.molExpr()
		if err != nil {
			return nil, err
		}
		return &CreateCluster{Name: name, From: mol}, nil
	default:
		return nil, p.errf("expected ATOM_TYPE, ACCESS PATH, SORT ORDER, PARTITION or ATOM_CLUSTER after CREATE")
	}
}

func (p *parser) createAtomType() (Stmt, error) {
	p.advance() // ATOM_TYPE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	out := &CreateAtomType{Name: name}
	for {
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		te, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		out.Attrs = append(out.Attrs, AttrDef{Name: attr, Type: te})
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if p.atKeyword("KEYS_ARE") {
		p.advance()
		keys, err := p.parenIdentList()
		if err != nil {
			return nil, err
		}
		out.Keys = keys
	}
	return out, nil
}

// typeExpr parses one attribute type.
func (p *parser) typeExpr() (TypeExpr, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return TypeExpr{}, p.errf("expected a type, got %q", t.text)
	}
	switch t.text {
	case "INTEGER", "REAL", "BOOLEAN", "CHAR_VAR", "IDENTIFIER":
		p.advance()
		return TypeExpr{Kind: t.text}, nil
	case "REF_TO":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return TypeExpr{}, err
		}
		typ, err := p.ident()
		if err != nil {
			return TypeExpr{}, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return TypeExpr{}, err
		}
		attr, err := p.ident()
		if err != nil {
			return TypeExpr{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return TypeExpr{}, err
		}
		return TypeExpr{Kind: "REF_TO", RefType: typ, RefAttr: attr}, nil
	case "SET_OF", "LIST_OF":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return TypeExpr{}, err
		}
		elem, err := p.typeExpr()
		if err != nil {
			return TypeExpr{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return TypeExpr{}, err
		}
		out := TypeExpr{Kind: t.text, Elem: &elem, Max: -1}
		// Optional cardinality restriction (min,max|VAR).
		if p.peek().kind == tokLParen {
			p.advance()
			lo, err := p.expect(tokInt)
			if err != nil {
				return TypeExpr{}, err
			}
			out.Min = int(lo.i)
			if _, err := p.expect(tokComma); err != nil {
				return TypeExpr{}, err
			}
			if p.atKeyword("VAR") {
				p.advance()
				out.Max = -1
			} else {
				hi, err := p.expect(tokInt)
				if err != nil {
					return TypeExpr{}, err
				}
				out.Max = int(hi.i)
			}
			if _, err := p.expect(tokRParen); err != nil {
				return TypeExpr{}, err
			}
		}
		return out, nil
	case "ARRAY_OF":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return TypeExpr{}, err
		}
		elem, err := p.typeExpr()
		if err != nil {
			return TypeExpr{}, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return TypeExpr{}, err
		}
		n, err := p.expect(tokInt)
		if err != nil {
			return TypeExpr{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return TypeExpr{}, err
		}
		return TypeExpr{Kind: "ARRAY_OF", Elem: &elem, ArrayLen: int(n.i)}, nil
	case "HULL_DIM":
		// Application-specific type from Fig. 2.3: HULL_DIM(n) is treated
		// as ARRAY_OF(REAL, 2n), a min/max bounding box per dimension
		// (documented substitution in DESIGN.md).
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return TypeExpr{}, err
		}
		n, err := p.expect(tokInt)
		if err != nil {
			return TypeExpr{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return TypeExpr{}, err
		}
		elem := TypeExpr{Kind: "REAL"}
		return TypeExpr{Kind: "ARRAY_OF", Elem: &elem, ArrayLen: 2 * int(n.i), HullDim: int(n.i)}, nil
	case "RECORD":
		p.advance()
		out := TypeExpr{Kind: "RECORD"}
		for {
			// One field group: n1, n2, n3 : TYPE
			var names []string
			for {
				n, err := p.ident()
				if err != nil {
					return TypeExpr{}, err
				}
				names = append(names, n)
				if p.peek().kind == tokComma {
					p.advance()
					continue
				}
				break
			}
			if _, err := p.expect(tokColon); err != nil {
				return TypeExpr{}, err
			}
			ft, err := p.typeExpr()
			if err != nil {
				return TypeExpr{}, err
			}
			for _, n := range names {
				out.Fields = append(out.Fields, AttrDef{Name: n, Type: ft})
			}
			if p.peek().kind == tokComma {
				p.advance()
				if p.atKeyword("END") { // trailing comma before END
					break
				}
				continue
			}
			break
		}
		if err := p.keyword("END"); err != nil {
			return TypeExpr{}, err
		}
		return out, nil
	default:
		return TypeExpr{}, p.errf("unknown type %s", t.text)
	}
}

func (p *parser) defineMoleculeType() (Stmt, error) {
	p.advance() // DEFINE
	if err := p.keyword("MOLECULE"); err != nil {
		return nil, err
	}
	if err := p.keyword("TYPE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	mol, err := p.molExpr()
	if err != nil {
		return nil, err
	}
	return &DefineMoleculeType{Name: name, From: mol}, nil
}

func (p *parser) dropStmt() (Stmt, error) {
	p.advance() // DROP
	switch {
	case p.atKeyword("ATOM_TYPE"):
		p.advance()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Drop{Kind: "ATOM_TYPE", Name: name}, nil
	case p.atKeyword("MOLECULE"):
		p.advance()
		if err := p.keyword("TYPE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Drop{Kind: "MOLECULE_TYPE", Name: name}, nil
	default:
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Drop{Kind: "LDL", Name: name}, nil
	}
}

// parenIdentList parses ( a, b, c ).
func (p *parser) parenIdentList() ([]string, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []string
	for {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return out, nil
}

// --- molecule expressions -------------------------------------------------------

// molExpr parses a FROM-clause molecule expression:
//
//	component        := atomRef [ '-' children ] [ '(' RECURSIVE ')' ]
//	children         := component | '(' component { ',' component } ')'
//	atomRef          := IDENT [ '.' IDENT ]
func (p *parser) molExpr() (*MolComponent, error) {
	return p.molComponent()
}

func (p *parser) molComponent() (*MolComponent, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	node := &MolComponent{Name: name}
	if p.peek().kind == tokDot {
		p.advance()
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		node.EdgeAttr = attr
	}
	if p.peek().kind == tokMinus {
		p.advance()
		if p.peek().kind == tokLParen {
			p.advance()
			for {
				c, err := p.molComponent()
				if err != nil {
					return nil, err
				}
				node.Children = append(node.Children, c)
				if p.peek().kind == tokComma {
					p.advance()
					continue
				}
				break
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		} else {
			c, err := p.molComponent()
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, c)
		}
	}
	// Trailing (RECURSIVE) marks the edge into this component (the last
	// component of the chain consumes it: solid.sub-solid (RECURSIVE)).
	if p.peek().kind == tokLParen && p.peek2().kind == tokKeyword && p.peek2().text == "RECURSIVE" {
		p.advance()
		p.advance()
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		switch len(node.Children) {
		case 0:
			node.Recursive = true
		case 1:
			node.Children[0].Recursive = true
		default:
			return nil, p.errf("(RECURSIVE) cannot follow a branching component list")
		}
	}
	return node, nil
}

// --- DML ----------------------------------------------------------------------

func (p *parser) selectStmt() (*Select, error) {
	p.advance() // SELECT
	out := &Select{}
	if p.atKeyword("ALL") {
		p.advance()
		out.All = true
	} else {
		items, err := p.selectItems(false)
		if err != nil {
			return nil, err
		}
		out.Items = items
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	mol, err := p.molExpr()
	if err != nil {
		return nil, err
	}
	out.From = mol
	if p.atKeyword("WHERE") {
		p.advance()
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	return out, nil
}

// selectItems parses the projection list; parentheses group items and are
// flattened (Table 2.1d: SELECT edge, (point, face := SELECT ...)).
func (p *parser) selectItems(inGroup bool) ([]SelectItem, error) {
	var out []SelectItem
	for {
		if p.peek().kind == tokLParen {
			p.advance()
			sub, err := p.selectItems(true)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			out = append(out, sub...)
		} else {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			switch p.peek().kind {
			case tokAssign:
				// Qualified projection: name := SELECT ...
				p.advance()
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				out = append(out, SelectItem{Qualifier: name, Sub: sub})
			case tokDot:
				p.advance()
				attr, err := p.ident()
				if err != nil {
					return nil, err
				}
				out = append(out, SelectItem{Qualifier: name, Name: attr})
			default:
				out = append(out, SelectItem{Name: name})
			}
		}
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		return out, nil
	}
}

func (p *parser) insertStmt() (Stmt, error) {
	p.advance() // INSERT
	if err := p.keyword("INTO"); err != nil {
		return nil, err
	}
	typ, err := p.ident()
	if err != nil {
		return nil, err
	}
	attrs, err := p.parenIdentList()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("VALUES"); err != nil {
		return nil, err
	}
	out := &Insert{AtomType: typ, Attrs: attrs}
	for {
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			v, err := p.valueExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if len(row) != len(attrs) {
			return nil, p.errf("row has %d values for %d attributes", len(row), len(attrs))
		}
		out.Rows = append(out.Rows, row)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	return out, nil
}

func (p *parser) deleteStmt() (Stmt, error) {
	p.advance() // DELETE
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	mol, err := p.molExpr()
	if err != nil {
		return nil, err
	}
	out := &Delete{From: mol}
	if p.atKeyword("WHERE") {
		p.advance()
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	return out, nil
}

func (p *parser) modifyStmt() (Stmt, error) {
	p.advance() // MODIFY
	typ, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("SET"); err != nil {
		return nil, err
	}
	out := &Modify{AtomType: typ}
	for {
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEQ); err != nil {
			return nil, err
		}
		v, err := p.valueExpr()
		if err != nil {
			return nil, err
		}
		out.Set = append(out.Set, Assign{Attr: attr, Value: v})
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if p.atKeyword("WHERE") {
		p.advance()
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	return out, nil
}

func (p *parser) connectStmt(disconnect bool) (Stmt, error) {
	p.advance() // CONNECT / DISCONNECT
	from, err := p.valueExpr()
	if err != nil {
		return nil, err
	}
	if disconnect {
		if err := p.keyword("FROM"); err != nil {
			return nil, err
		}
	} else if err := p.keyword("TO"); err != nil {
		return nil, err
	}
	to, err := p.valueExpr()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("VIA"); err != nil {
		return nil, err
	}
	via, err := p.ident()
	if err != nil {
		return nil, err
	}
	if disconnect {
		return &Disconnect{From: from, To: to, Via: via}, nil
	}
	return &Connect{From: from, To: to, Via: via}, nil
}

// --- expressions ----------------------------------------------------------------

// expr := andExpr { OR andExpr }
func (p *parser) expr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.atKeyword("NOT") {
		p.advance()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.predicate()
}

// predicate := quantifier | '(' expr ')' | comparison
func (p *parser) predicate() (Expr, error) {
	t := p.peek()
	if t.kind == tokKeyword {
		switch t.text {
		case "EXISTS", "FOR_ALL", "EXISTS_AT_LEAST", "EXISTS_EXACTLY":
			return p.quantifier()
		}
	}
	if t.kind == tokLParen {
		// Could be a parenthesized predicate.
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return p.comparison()
}

func (p *parser) quantifier() (Expr, error) {
	kw := p.advance().text
	q := &Quant{Kind: kw, N: 1}
	if kw == "EXISTS_AT_LEAST" || kw == "EXISTS_EXACTLY" {
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		n, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		q.N = int(n.i)
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	}
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	q.Var = v
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	// The quantifier body is a single predicate; parenthesize for more.
	cond, err := p.predicate()
	if err != nil {
		return nil, err
	}
	q.Cond = cond
	return q, nil
}

// comparison := operand [op operand]
func (p *parser) comparison() (Expr, error) {
	l, err := p.operand()
	if err != nil {
		return nil, err
	}
	var op CmpOp
	switch p.peek().kind {
	case tokEQ:
		op = CmpEQ
	case tokNE:
		op = CmpNE
	case tokLT:
		op = CmpLT
	case tokLE:
		op = CmpLE
	case tokGT:
		op = CmpGT
	case tokGE:
		op = CmpGE
	default:
		return nil, p.errf("expected a comparison operator")
	}
	p.advance()
	r, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &Compare{Op: op, L: l, R: r}, nil
}

// operand := literal | EMPTY | attrRef
func (p *parser) operand() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokKeyword:
		switch t.text {
		case "EMPTY":
			p.advance()
			return &EmptyLit{}, nil
		case "NULL", "TRUE", "FALSE":
			return p.valueExpr()
		}
		return nil, p.errf("unexpected keyword %s in expression", t.text)
	case tokInt, tokReal, tokString, tokAddr, tokMinus, tokLBrace, tokLBrack:
		return p.valueExpr()
	case tokIdent:
		return p.attrRef()
	default:
		return nil, p.errf("unexpected %s in expression", t.kind)
	}
}

// attrRef := IDENT [ '(' INT ')' ] { '.' IDENT }
func (p *parser) attrRef() (Expr, error) {
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	ref := &AttrRef{Parts: []string{first}}
	if p.peek().kind == tokLParen && p.peek2().kind == tokInt {
		p.advance()
		n, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		ref.Level = int(n.i)
		ref.HasLevel = true
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	}
	for p.peek().kind == tokDot {
		p.advance()
		part, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref.Parts = append(ref.Parts, part)
	}
	return ref, nil
}

// valueExpr parses a literal value: numbers (with optional leading '-'),
// strings, booleans, NULL, address literals, and {…} / […] / (…)
// constructors for SET / LIST / RECORD values.
func (p *parser) valueExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokMinus:
		p.advance()
		n := p.peek()
		switch n.kind {
		case tokInt:
			p.advance()
			return &Lit{V: atom.Int(-n.i)}, nil
		case tokReal:
			p.advance()
			return &Lit{V: atom.Real(-n.f)}, nil
		default:
			return nil, p.errf("expected a number after '-'")
		}
	case tokInt:
		p.advance()
		return &Lit{V: atom.Int(t.i)}, nil
	case tokReal:
		p.advance()
		return &Lit{V: atom.Real(t.f)}, nil
	case tokString:
		p.advance()
		return &Lit{V: atom.Str(t.text)}, nil
	case tokAddr:
		p.advance()
		return &Lit{V: atom.Ref(addr.LogicalAddr(uint64(t.i)))}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &Lit{V: atom.Null()}, nil
		case "TRUE":
			p.advance()
			return &Lit{V: atom.Bool(true)}, nil
		case "FALSE":
			p.advance()
			return &Lit{V: atom.Bool(false)}, nil
		case "EMPTY":
			p.advance()
			return &Lit{V: atom.Set()}, nil
		}
		return nil, p.errf("unexpected keyword %s in value", t.text)
	case tokLBrace: // SET literal
		p.advance()
		elems, err := p.valueList(tokRBrace)
		if err != nil {
			return nil, err
		}
		return &Lit{V: atom.Value{K: atom.KindSet, E: elems}}, nil
	case tokLBrack: // LIST literal
		p.advance()
		elems, err := p.valueList(tokRBrack)
		if err != nil {
			return nil, err
		}
		return &Lit{V: atom.Value{K: atom.KindList, E: elems}}, nil
	case tokLParen: // RECORD literal
		p.advance()
		elems, err := p.valueList(tokRParen)
		if err != nil {
			return nil, err
		}
		return &Lit{V: atom.Value{K: atom.KindRecord, E: elems}}, nil
	default:
		return nil, p.errf("expected a value, got %s", t.kind)
	}
}

// valueList parses value { ',' value } closer; empty lists are allowed.
func (p *parser) valueList(closer tokKind) ([]atom.Value, error) {
	var out []atom.Value
	if p.peek().kind == closer {
		p.advance()
		return out, nil
	}
	for {
		v, err := p.valueExpr()
		if err != nil {
			return nil, err
		}
		lit, ok := v.(*Lit)
		if !ok {
			return nil, p.errf("constructor elements must be literals")
		}
		out = append(out, lit.V)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(closer); err != nil {
		return nil, err
	}
	return out, nil
}
