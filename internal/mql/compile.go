package mql

import (
	"fmt"

	"prima/internal/access/atom"
	"prima/internal/catalog"
)

// Lowering from AST to catalog metadata. Query compilation to plans lives in
// the data system (internal/core); the pure DDL/LDL lowering lives here so
// the parser's output is directly executable against a schema.

// LowerAtomType converts a CREATE ATOM_TYPE statement to a catalog type.
func LowerAtomType(s *CreateAtomType) (*catalog.AtomType, error) {
	attrs := make([]catalog.Attribute, 0, len(s.Attrs))
	for _, a := range s.Attrs {
		spec, err := LowerTypeExpr(a.Type)
		if err != nil {
			return nil, fmt.Errorf("attribute %s.%s: %w", s.Name, a.Name, err)
		}
		attrs = append(attrs, catalog.Attribute{Name: a.Name, Type: spec})
	}
	return catalog.NewAtomType(s.Name, attrs, s.Keys)
}

// LowerTypeExpr converts a syntactic type to a catalog TypeSpec.
func LowerTypeExpr(te TypeExpr) (catalog.TypeSpec, error) {
	switch te.Kind {
	case "INTEGER":
		return catalog.SpecInt(), nil
	case "REAL":
		return catalog.SpecReal(), nil
	case "BOOLEAN":
		return catalog.SpecBool(), nil
	case "CHAR_VAR":
		return catalog.SpecString(), nil
	case "IDENTIFIER":
		return catalog.SpecIdent(), nil
	case "REF_TO":
		return catalog.SpecRef(te.RefType, te.RefAttr), nil
	case "SET_OF", "LIST_OF":
		elem, err := LowerTypeExpr(*te.Elem)
		if err != nil {
			return catalog.TypeSpec{}, err
		}
		max := te.Max
		if max == -1 {
			max = catalog.VarCard
		}
		if te.Kind == "SET_OF" {
			return catalog.SpecSetOf(elem, te.Min, max), nil
		}
		ls := catalog.SpecListOf(elem)
		ls.MinCard, ls.MaxCard = te.Min, max
		return ls, nil
	case "ARRAY_OF":
		elem, err := LowerTypeExpr(*te.Elem)
		if err != nil {
			return catalog.TypeSpec{}, err
		}
		return catalog.SpecArrayOf(elem, te.ArrayLen), nil
	case "RECORD":
		fields := make([]catalog.RecordField, 0, len(te.Fields))
		for _, f := range te.Fields {
			ft, err := LowerTypeExpr(f.Type)
			if err != nil {
				return catalog.TypeSpec{}, err
			}
			fields = append(fields, catalog.RecordField{Name: f.Name, Type: ft})
		}
		return catalog.SpecRecord(fields...), nil
	default:
		return catalog.TypeSpec{}, fmt.Errorf("mql: unsupported type %q", te.Kind)
	}
}

// LowerMolecule converts a FROM-clause molecule expression into a catalog
// molecule type, resolving predefined molecule type names by inlining their
// structure ("the query validation ... performs the resolution of
// predefined molecule types", §3.1).
func LowerMolecule(schema *catalog.Schema, name string, mc *MolComponent) (*catalog.MoleculeType, error) {
	root, err := lowerMolNode(schema, mc)
	if err != nil {
		return nil, err
	}
	m := &catalog.MoleculeType{Name: name, Root: root}
	if err := m.Validate(schema); err != nil {
		return nil, err
	}
	return m, nil
}

func lowerMolNode(schema *catalog.Schema, mc *MolComponent) (*catalog.MolNode, error) {
	// A component name may denote a predefined molecule type: inline it.
	if _, isAtom := schema.AtomType(mc.Name); !isAtom {
		if mt, isMol := schema.MoleculeType(mc.Name); isMol {
			inlined := mt.Clone().Root
			// The inlined molecule's root carries this component's edge
			// annotations.
			if mc.EdgeAttr != "" || len(mc.Children) > 0 {
				if len(mc.Children) > 0 {
					for _, c := range mc.Children {
						cn, err := lowerMolNode(schema, c)
						if err != nil {
							return nil, err
						}
						cn.Via = mc.EdgeAttr // may be ""
						cn.Recursive = c.Recursive
						inlined.Children = append(inlined.Children, cn)
					}
				}
			}
			return inlined, nil
		}
		return nil, fmt.Errorf("%w: %s is neither an atom type nor a molecule type", catalog.ErrUnknownType, mc.Name)
	}
	node := &catalog.MolNode{AtomType: mc.Name}
	for _, c := range mc.Children {
		cn, err := lowerMolNode(schema, c)
		if err != nil {
			return nil, err
		}
		// The parent-side qualification (solid.sub-solid) names the edge
		// attribute on THIS node leading to the child.
		cn.Via = mc.EdgeAttr
		cn.Recursive = c.Recursive
		node.Children = append(node.Children, cn)
	}
	return node, nil
}

// LitValue extracts the atom.Value of a literal expression, or reports an
// error for non-literals (used by INSERT/MODIFY lowering).
func LitValue(e Expr) (atom.Value, error) {
	l, ok := e.(*Lit)
	if !ok {
		return atom.Null(), fmt.Errorf("%w: expected a literal value", ErrSyntax)
	}
	return l.V, nil
}
