package mql

import (
	"errors"
	"strings"
	"testing"

	"prima/internal/access/atom"
	"prima/internal/catalog"
)

// fig23DDL is the Fig. 2.3 schema verbatim (modulo OCR fixes).
const fig23DDL = `
CREATE ATOM_TYPE solid
  ( solid_id    : IDENTIFIER,
    solid_no    : INTEGER,
    description : CHAR_VAR,
    sub         : SET_OF (REF_TO (solid.super)),
    super       : SET_OF (REF_TO (solid.sub)),
    brep        : REF_TO (brep.solid) )
  KEYS_ARE (solid_no);

CREATE ATOM_TYPE brep
  ( brep_id : IDENTIFIER,
    brep_no : INTEGER,
    hull    : HULL_DIM(3),
    solid   : REF_TO (solid.brep),
    faces   : SET_OF (REF_TO (face.brep)) (4,VAR),
    edges   : SET_OF (REF_TO (edge.brep)) (6,VAR),
    points  : SET_OF (REF_TO (point.brep)) (4,VAR) )
  KEYS_ARE (brep_no);

CREATE ATOM_TYPE face
  ( face_id    : IDENTIFIER,
    square_dim : REAL,
    border     : SET_OF (REF_TO (edge.face)) (3,VAR),
    crosspoint : SET_OF (REF_TO (point.face)) (3,VAR),
    brep       : REF_TO (brep.faces) );

CREATE ATOM_TYPE edge
  ( edge_id  : IDENTIFIER,
    length   : REAL,
    boundary : SET_OF (REF_TO (point.line)) (2,VAR),
    face     : SET_OF (REF_TO (face.border)) (2,VAR),
    brep     : REF_TO (brep.edges) );

CREATE ATOM_TYPE point
  ( point_id  : IDENTIFIER,
    placement : RECORD
                  x_coord, y_coord, z_coord : REAL,
                END,
    line : SET_OF (REF_TO (edge.boundary)) (1,VAR),
    face : SET_OF (REF_TO (face.crosspoint)) (1,VAR),
    brep : REF_TO (brep.points) );

DEFINE MOLECULE TYPE edge_obj   FROM edge - point;
DEFINE MOLECULE TYPE face_obj   FROM face - edge_obj;
DEFINE MOLECULE TYPE brep_obj   FROM brep - face_obj;
DEFINE MOLECULE TYPE piece_list FROM solid.sub - solid (RECURSIVE);
`

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll(`SELECT ALL FROM brep-face WHERE brep_no = 1713 (* qualification *) AND x <> 1.9E4 -- tail`)
	if err != nil {
		t.Fatalf("lexAll: %v", err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{tokKeyword, tokKeyword, tokKeyword, tokIdent, tokMinus, tokIdent,
		tokKeyword, tokIdent, tokEQ, tokInt, tokKeyword, tokIdent, tokNE, tokReal, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// Literal payloads.
	if toks[9].i != 1713 {
		t.Fatalf("int literal = %d", toks[9].i)
	}
	if toks[13].f != 1.9e4 {
		t.Fatalf("real literal = %g", toks[13].f)
	}
}

func TestLexerStringsAndAddrs(t *testing.T) {
	toks, err := lexAll(`'it''s' @3.17`)
	if err != nil {
		t.Fatalf("lexAll: %v", err)
	}
	if toks[0].kind != tokString || toks[0].text != "it's" {
		t.Fatalf("string = %+v", toks[0])
	}
	if toks[1].kind != tokAddr || toks[1].i != 3<<48|17 {
		t.Fatalf("addr = %+v", toks[1])
	}
	if _, err := lexAll("'unterminated"); !errors.Is(err, ErrSyntax) {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lexAll("@banana"); !errors.Is(err, ErrSyntax) {
		t.Fatal("bad addr literal accepted")
	}
	if _, err := lexAll("(* never closed"); !errors.Is(err, ErrSyntax) {
		t.Fatal("unterminated comment accepted")
	}
	if _, err := lexAll("SELECT ? FROM x"); !errors.Is(err, ErrSyntax) {
		t.Fatal("bad character accepted")
	}
}

func TestParseFig23DDL(t *testing.T) {
	stmts, err := Parse(fig23DDL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmts) != 9 {
		t.Fatalf("parsed %d statements, want 9", len(stmts))
	}
	solid, ok := stmts[0].(*CreateAtomType)
	if !ok || solid.Name != "solid" {
		t.Fatalf("stmt 0 = %T %v", stmts[0], stmts[0])
	}
	if len(solid.Attrs) != 6 || solid.Keys[0] != "solid_no" {
		t.Fatalf("solid: %d attrs keys=%v", len(solid.Attrs), solid.Keys)
	}
	if solid.Attrs[3].Type.Kind != "SET_OF" || solid.Attrs[3].Type.Elem.RefType != "solid" {
		t.Fatalf("solid.sub type = %+v", solid.Attrs[3].Type)
	}

	brep := stmts[1].(*CreateAtomType)
	if brep.Attrs[2].Type.Kind != "ARRAY_OF" || brep.Attrs[2].Type.ArrayLen != 6 || brep.Attrs[2].Type.HullDim != 3 {
		t.Fatalf("HULL_DIM(3) lowering = %+v", brep.Attrs[2].Type)
	}
	if brep.Attrs[4].Type.Min != 4 || brep.Attrs[4].Type.Max != -1 {
		t.Fatalf("faces cardinality = %+v", brep.Attrs[4].Type)
	}

	point := stmts[4].(*CreateAtomType)
	if point.Attrs[1].Type.Kind != "RECORD" || len(point.Attrs[1].Type.Fields) != 3 {
		t.Fatalf("placement RECORD = %+v", point.Attrs[1].Type)
	}

	pl := stmts[8].(*DefineMoleculeType)
	if pl.Name != "piece_list" || pl.From.EdgeAttr != "sub" {
		t.Fatalf("piece_list = %+v", pl.From)
	}
	if len(pl.From.Children) != 1 || !pl.From.Children[0].Recursive {
		t.Fatalf("piece_list children = %+v", pl.From.Children)
	}
}

func TestParseTable21Queries(t *testing.T) {
	// (a) vertical access to network molecules.
	s, err := ParseOne(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713`)
	if err != nil {
		t.Fatalf("(a): %v", err)
	}
	qa := s.(*Select)
	if !qa.All || qa.From.Name != "brep" {
		t.Fatalf("(a) = %+v", qa)
	}
	// Chain depth 4.
	depth := 0
	for n := qa.From; n != nil; {
		depth++
		if len(n.Children) == 0 {
			break
		}
		n = n.Children[0]
	}
	if depth != 4 {
		t.Fatalf("(a) chain depth = %d", depth)
	}
	cmp := qa.Where.(*Compare)
	if cmp.Op != CmpEQ || cmp.L.(*AttrRef).Parts[0] != "brep_no" || cmp.R.(*Lit).V.I != 1713 {
		t.Fatalf("(a) where = %+v", qa.Where)
	}

	// (b) vertical access to recursive molecules with seed qualification.
	s, err = ParseOne(`SELECT ALL FROM piece_list WHERE piece_list(0).solid_no = 4711`)
	if err != nil {
		t.Fatalf("(b): %v", err)
	}
	qb := s.(*Select)
	ref := qb.Where.(*Compare).L.(*AttrRef)
	if !ref.HasLevel || ref.Level != 0 || ref.Parts[0] != "piece_list" || ref.Parts[1] != "solid_no" {
		t.Fatalf("(b) seed ref = %+v", ref)
	}

	// (c) horizontal access with unqualified projection.
	s, err = ParseOne(`SELECT solid_no, description FROM solid WHERE sub = EMPTY`)
	if err != nil {
		t.Fatalf("(c): %v", err)
	}
	qc := s.(*Select)
	if len(qc.Items) != 2 || qc.Items[0].Name != "solid_no" {
		t.Fatalf("(c) items = %+v", qc.Items)
	}
	if _, ok := qc.Where.(*Compare).R.(*EmptyLit); !ok {
		t.Fatalf("(c) where = %+v", qc.Where)
	}

	// (d) branching FROM, quantifier, qualified projection.
	s, err = ParseOne(`
	  SELECT edge, (point,
	         face := SELECT face_id, square_dim
	                 FROM face
	                 WHERE square_dim > 1.9E4)
	  FROM brep-edge-(face, point)
	  WHERE brep_no = 1713
	  AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0E2`)
	if err != nil {
		t.Fatalf("(d): %v", err)
	}
	qd := s.(*Select)
	if len(qd.Items) != 3 {
		t.Fatalf("(d) items = %d", len(qd.Items))
	}
	if qd.Items[2].Sub == nil || qd.Items[2].Qualifier != "face" {
		t.Fatalf("(d) qualified projection = %+v", qd.Items[2])
	}
	sub := qd.Items[2].Sub
	if len(sub.Items) != 2 || sub.From.Name != "face" {
		t.Fatalf("(d) sub-select = %+v", sub)
	}
	// FROM structure: brep -> edge -> (face, point).
	if qd.From.Name != "brep" || qd.From.Children[0].Name != "edge" || len(qd.From.Children[0].Children) != 2 {
		t.Fatalf("(d) FROM = %+v", qd.From)
	}
	// Quantifier.
	and := qd.Where.(*Binary)
	q := and.R.(*Quant)
	if q.Kind != "EXISTS_AT_LEAST" || q.N != 2 || q.Var != "edge" {
		t.Fatalf("(d) quantifier = %+v", q)
	}
	if q.Cond.(*Compare).L.(*AttrRef).Parts[1] != "length" {
		t.Fatalf("(d) quantifier cond = %+v", q.Cond)
	}
}

func TestParseDML(t *testing.T) {
	s, err := ParseOne(`INSERT INTO solid (solid_no, description, sub) VALUES (1, 'base', {@1.2, @1.3})`)
	if err != nil {
		t.Fatalf("INSERT: %v", err)
	}
	ins := s.(*Insert)
	if ins.AtomType != "solid" || len(ins.Rows) != 1 || len(ins.Rows[0]) != 3 {
		t.Fatalf("INSERT = %+v", ins)
	}
	set, _ := LitValue(ins.Rows[0][2])
	if set.K != atom.KindSet || set.Len() != 2 {
		t.Fatalf("set literal = %v", set)
	}

	s, err = ParseOne(`MODIFY solid SET description = 'changed', solid_no = -5 WHERE solid_no = 1`)
	if err != nil {
		t.Fatalf("MODIFY: %v", err)
	}
	mod := s.(*Modify)
	if len(mod.Set) != 2 {
		t.Fatalf("MODIFY = %+v", mod)
	}
	v, _ := LitValue(mod.Set[1].Value)
	if v.I != -5 {
		t.Fatalf("negative literal = %v", v)
	}

	s, err = ParseOne(`DELETE FROM brep-face WHERE brep_no = 9`)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	del := s.(*Delete)
	if del.From.Name != "brep" || del.Where == nil {
		t.Fatalf("DELETE = %+v", del)
	}

	s, err = ParseOne(`CONNECT @1.1 TO @1.2 VIA sub`)
	if err != nil {
		t.Fatalf("CONNECT: %v", err)
	}
	con := s.(*Connect)
	if con.Via != "sub" {
		t.Fatalf("CONNECT = %+v", con)
	}
	if _, err = ParseOne(`DISCONNECT @1.1 FROM @1.2 VIA sub`); err != nil {
		t.Fatalf("DISCONNECT: %v", err)
	}
}

func TestParseLDL(t *testing.T) {
	stmts, err := Parse(`
	  CREATE ACCESS PATH solid_no_idx ON solid (solid_no) USING BTREE;
	  CREATE ACCESS PATH geo ON face (square_dim, face_id) USING GRID;
	  CREATE SORT ORDER edge_len ON edge (length DESC);
	  CREATE PARTITION solid_names ON solid (solid_no, description);
	  CREATE ATOM_CLUSTER brep_cluster ON brep-face-edge-point;
	  DROP solid_no_idx;
	  CHECK INTEGRITY solid;
	  PROPAGATE DEFERRED;
	`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmts) != 8 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
	ap := stmts[0].(*CreateAccessPath)
	if ap.Using != "BTREE" || ap.Attrs[0] != "solid_no" {
		t.Fatalf("access path = %+v", ap)
	}
	so := stmts[2].(*CreateSortOrder)
	if !so.Desc[0] {
		t.Fatalf("sort order = %+v", so)
	}
	cl := stmts[4].(*CreateCluster)
	if cl.From.Name != "brep" {
		t.Fatalf("cluster = %+v", cl)
	}
	drop := stmts[5].(*Drop)
	if drop.Kind != "LDL" || drop.Name != "solid_no_idx" {
		t.Fatalf("drop = %+v", drop)
	}
	if stmts[6].(*CheckIntegrity).AtomType != "solid" {
		t.Fatalf("check = %+v", stmts[6])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT ALL`,
		`SELECT ALL FROM`,
		`SELECT ALL FROM a WHERE`,
		`INSERT INTO x (a) VALUES (1, 2)`, // arity
		`CREATE ATOM_TYPE ( a : INTEGER )`,
		`CREATE ATOM_TYPE x ( a : BANANA )`,
		`DEFINE MOLECULE TYPE m FROM`,
		`MODIFY SET a = 1`,
		`FOO BAR`,
		`SELECT x FROM a WHERE b >`,
		`SELECT x FROM a WHERE EXISTS_AT_LEAST edge: b = 1`, // missing (n)
		`SELECT ALL FROM a-(b,c) (RECURSIVE)`,               // recursive needs 1 child
	}
	for _, src := range bad {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) = %v, want ErrSyntax", src, err)
		}
	}
}

func TestLowerFig23ToCatalog(t *testing.T) {
	stmts, err := Parse(fig23DDL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	schema := catalog.NewSchema()
	for _, s := range stmts {
		switch st := s.(type) {
		case *CreateAtomType:
			at, err := LowerAtomType(st)
			if err != nil {
				t.Fatalf("LowerAtomType(%s): %v", st.Name, err)
			}
			if err := schema.AddAtomType(at); err != nil {
				t.Fatalf("AddAtomType(%s): %v", st.Name, err)
			}
		case *DefineMoleculeType:
			m, err := LowerMolecule(schema, st.Name, st.From)
			if err != nil {
				t.Fatalf("LowerMolecule(%s): %v", st.Name, err)
			}
			if err := schema.DefineMoleculeType(m); err != nil {
				t.Fatalf("DefineMoleculeType(%s): %v", st.Name, err)
			}
		}
	}
	if err := schema.ResolveAssociations(); err != nil {
		t.Fatalf("ResolveAssociations: %v", err)
	}

	// Molecule type inlining: brep_obj = brep-face-edge-point.
	bo, ok := schema.MoleculeType("brep_obj")
	if !ok {
		t.Fatal("brep_obj missing")
	}
	types := bo.AtomTypes()
	want := []string{"brep", "face", "edge", "point"}
	if len(types) != 4 {
		t.Fatalf("brep_obj types = %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("brep_obj types = %v, want %v", types, want)
		}
	}
	// piece_list is recursive with Via=sub.
	pl, _ := schema.MoleculeType("piece_list")
	if !pl.IsRecursive() || pl.Root.Children[0].Via != "sub" {
		t.Fatalf("piece_list = %+v", pl.Root.Children[0])
	}

	// Cardinalities arrived in the catalog.
	brep, _ := schema.AtomType("brep")
	faces, _ := brep.Attr("faces")
	if faces.Type.MinCard != 4 || faces.Type.MaxCard != catalog.VarCard {
		t.Fatalf("faces spec = %+v", faces.Type)
	}
	// HULL_DIM(3) became ARRAY_OF(REAL, 6).
	hull, _ := brep.Attr("hull")
	if hull.Type.Kind != atom.KindArray || hull.Type.ArrayLen != 6 {
		t.Fatalf("hull spec = %+v", hull.Type)
	}
}

func TestLowerMoleculeErrors(t *testing.T) {
	schema := catalog.NewSchema()
	a, _ := catalog.NewAtomType("a", []catalog.Attribute{{Name: "id", Type: catalog.SpecIdent()}}, nil)
	schema.AddAtomType(a)
	if _, err := LowerMolecule(schema, "", &MolComponent{Name: "ghost"}); !errors.Is(err, catalog.ErrUnknownType) {
		t.Fatalf("unknown component = %v", err)
	}
	// No association between a and a.
	if _, err := LowerMolecule(schema, "", &MolComponent{
		Name: "a", Children: []*MolComponent{{Name: "a"}},
	}); !errors.Is(err, catalog.ErrBadMolecule) {
		t.Fatalf("no association = %v", err)
	}
}

func TestRoundTripLongScript(t *testing.T) {
	// A longer script exercising every statement kind in one parse.
	var sb strings.Builder
	sb.WriteString(fig23DDL)
	sb.WriteString(`
	  INSERT INTO solid (solid_no, description) VALUES (1, 'one'), (2, 'two');
	  SELECT ALL FROM brep_obj;
	  SELECT solid_no FROM solid WHERE NOT (solid_no < 5 OR solid_no > 10) AND description <> 'x';
	  MODIFY solid SET description = 'y' WHERE solid_no = 2;
	  DELETE FROM solid WHERE solid_no = 1;
	`)
	stmts, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmts) != 14 {
		t.Fatalf("parsed %d statements, want 14", len(stmts))
	}
}
