package mql

import (
	"prima/internal/access/addr"
	"prima/internal/access/atom"
)

// Stmt is any MQL statement.
type Stmt interface{ stmt() }

// --- DDL ---------------------------------------------------------------------

// CreateAtomType is CREATE ATOM_TYPE name ( attr : type, ... ) KEYS_ARE (...).
type CreateAtomType struct {
	Name  string
	Attrs []AttrDef
	Keys  []string
}

// AttrDef is one attribute declaration.
type AttrDef struct {
	Name string
	Type TypeExpr
}

// TypeExpr is the syntactic form of an attribute type.
type TypeExpr struct {
	Kind     string // INTEGER REAL BOOLEAN CHAR_VAR IDENTIFIER REF_TO SET_OF LIST_OF ARRAY_OF RECORD HULL_DIM
	Elem     *TypeExpr
	Fields   []AttrDef
	ArrayLen int
	RefType  string
	RefAttr  string
	Min      int
	Max      int // -1 = VAR
	HullDim  int
}

// DefineMoleculeType is DEFINE MOLECULE TYPE name FROM molExpr.
type DefineMoleculeType struct {
	Name string
	From *MolComponent
}

// MolComponent is one node of a FROM-clause molecule expression.
type MolComponent struct {
	// Name is an atom type name or a (predefined) molecule type name.
	Name string
	// EdgeAttr optionally qualifies the association used for the edge to
	// this component's (single) child chain, as in solid.sub-solid.
	EdgeAttr string
	// Recursive marks `(RECURSIVE)` on the edge to this component.
	Recursive bool
	Children  []*MolComponent
}

// Drop is DROP ATOM_TYPE x / DROP MOLECULE TYPE x / DROP x (LDL structure).
type Drop struct {
	Kind string // "ATOM_TYPE", "MOLECULE_TYPE", "LDL"
	Name string
}

// --- LDL ---------------------------------------------------------------------

// CreateAccessPath is CREATE ACCESS PATH name ON type (attrs) [USING m].
type CreateAccessPath struct {
	Name     string
	AtomType string
	Attrs    []string
	Using    string
}

// CreateSortOrder is CREATE SORT ORDER name ON type (attr [ASC|DESC],...).
type CreateSortOrder struct {
	Name     string
	AtomType string
	Attrs    []string
	Desc     []bool
}

// CreatePartition is CREATE PARTITION name ON type (attrs).
type CreatePartition struct {
	Name     string
	AtomType string
	Attrs    []string
}

// CreateCluster is CREATE ATOM_CLUSTER name ON molExpr.
type CreateCluster struct {
	Name string
	From *MolComponent
}

// --- DML ---------------------------------------------------------------------

// Select is SELECT items FROM mol [WHERE expr].
type Select struct {
	All   bool
	Items []SelectItem
	From  *MolComponent
	Where Expr
}

// Explain is EXPLAIN [ANALYZE] <select>: render the query's plan without
// executing it, or (ANALYZE) execute it and annotate the plan with actual
// stage timings, atom counts and cache ratios.
type Explain struct {
	Analyze bool
	Query   *Select
}

// SelectItem is one projection item: an attribute name, a type name (whole
// atoms), type.attr, or a qualified projection `type := SELECT ... `.
type SelectItem struct {
	Qualifier string  // optional atom type
	Name      string  // attribute or type name ("" for qualified projection)
	Sub       *Select // qualified projection
}

// Insert is INSERT INTO type (attrs) VALUES (row), (row), ....
type Insert struct {
	AtomType string
	Attrs    []string
	Rows     [][]Expr
}

// Delete is DELETE FROM mol [WHERE expr].
type Delete struct {
	From  *MolComponent
	Where Expr
}

// Modify is MODIFY type SET attr = expr, ... [WHERE expr].
type Modify struct {
	AtomType string
	Set      []Assign
	Where    Expr
}

// Assign is one SET clause element.
type Assign struct {
	Attr  string
	Value Expr
}

// Connect is CONNECT @a TO @b VIA attr.
type Connect struct {
	From Expr
	To   Expr
	Via  string
}

// Disconnect is DISCONNECT @a FROM @b VIA attr.
type Disconnect struct {
	From Expr
	To   Expr
	Via  string
}

// CheckIntegrity is CHECK INTEGRITY [type].
type CheckIntegrity struct {
	AtomType string // "" = all
}

// PropagateDeferred is PROPAGATE DEFERRED.
type PropagateDeferred struct{}

func (*CreateAtomType) stmt()     {}
func (*DefineMoleculeType) stmt() {}
func (*Drop) stmt()               {}
func (*CreateAccessPath) stmt()   {}
func (*CreateSortOrder) stmt()    {}
func (*CreatePartition) stmt()    {}
func (*CreateCluster) stmt()      {}
func (*Select) stmt()             {}
func (*Insert) stmt()             {}
func (*Delete) stmt()             {}
func (*Modify) stmt()             {}
func (*Connect) stmt()            {}
func (*Disconnect) stmt()         {}
func (*CheckIntegrity) stmt()     {}
func (*PropagateDeferred) stmt()  {}
func (*Explain) stmt()            {}

// --- expressions ---------------------------------------------------------------

// Expr is a predicate or value expression.
type Expr interface{ expr() }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (o CmpOp) String() string {
	switch o {
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	default:
		return ">="
	}
}

// Binary is AND / OR.
type Binary struct {
	Op   string // "AND" | "OR"
	L, R Expr
}

// Not negates a predicate.
type Not struct{ X Expr }

// Compare is <operand> op <operand>.
type Compare struct {
	Op   CmpOp
	L, R Expr
}

// Lit is a literal value (number, string, boolean, NULL, address, or a
// {...} / [...] / (...) constructor).
type Lit struct{ V atom.Value }

// EmptyLit is the EMPTY keyword (repeating group emptiness test).
type EmptyLit struct{}

// AttrRef references an attribute: [qualifier.]attr[.field...] with an
// optional recursion level (piece_list(0).solid_no).
type AttrRef struct {
	Parts    []string // e.g. ["edge","length"] or ["solid_no"] or ["point","placement","x_coord"]
	Level    int
	HasLevel bool
}

// Quant is a quantified predicate: EXISTS / FOR_ALL / EXISTS_AT_LEAST(n)
// over the atoms of one component type.
type Quant struct {
	Kind string // "EXISTS", "FOR_ALL", "EXISTS_AT_LEAST", "EXISTS_EXACTLY"
	N    int
	Var  string // component atom type
	Cond Expr
}

func (*Binary) expr()   {}
func (*Not) expr()      {}
func (*Compare) expr()  {}
func (*Lit) expr()      {}
func (*EmptyLit) expr() {}
func (*AttrRef) expr()  {}
func (*Quant) expr()    {}

// AddrLit builds the atom.Value for an address literal token.
func AddrLit(raw int64) atom.Value {
	return atom.Ref(addr.LogicalAddr(uint64(raw>>48)<<48 | uint64(raw)&0xFFFFFFFFFFFF))
}
