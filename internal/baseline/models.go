package baseline

import (
	"fmt"

	"prima/internal/access"
	"prima/internal/access/atom"
	"prima/internal/core"
	"prima/internal/workload/brepgen"
)

// Hierarchical measures the IMS-style modeling of n cubes: a strict
// brep→face→edge→point hierarchy in which shared edges and points are
// duplicated under every parent ("several independent representations for
// every edge and every point").
func Hierarchical(n int) (Metrics, error) {
	c, err := newContainer()
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{Model: "hierarchic", PointCopies: edgesPerPoint, InverseTraversal: false}
	id := 1
	put := func(rec []byte) error {
		if _, err := c.Insert(rec); err != nil {
			return err
		}
		m.Records++
		m.Bytes += len(rec)
		return nil
	}
	for cube := 0; cube < n; cube++ {
		// brep segment record (root).
		if err := put(faceRec(id)); err != nil {
			return m, err
		}
		id++
		for f := 0; f < faces; f++ {
			if err := put(faceRec(id)); err != nil {
				return m, err
			}
			id++
			for e := 0; e < edgesPerFace; e++ {
				// Each face stores its own copy of its border edges.
				if err := put(edgeRec(id)); err != nil {
					return m, err
				}
				id++
				for p := 0; p < pointsPerEdge; p++ {
					// ... and each edge copy its own copies of the points.
					if err := put(pointRec(id)); err != nil {
						return m, err
					}
					id++
				}
			}
		}
	}
	// Moving one point rewrites every duplicated representation: the point
	// appears under each of its edges, and each such edge is duplicated
	// under each of its faces.
	m.MovePointWrites = edgesPerPoint * facesPerEdge
	return m, nil
}

// Network measures the CODASYL-style modeling: every entity stored once,
// plus one relation record per relationship instance.
func Network(n int) (Metrics, error) {
	c, err := newContainer()
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{Model: "network", PointCopies: 1, InverseTraversal: true, MovePointWrites: 1}
	put := func(rec []byte) error {
		if _, err := c.Insert(rec); err != nil {
			return err
		}
		m.Records++
		m.Bytes += len(rec)
		return nil
	}
	id := 1
	for cube := 0; cube < n; cube++ {
		if err := put(faceRec(id)); err != nil { // brep
			return m, err
		}
		id++
		for i := 0; i < faces; i++ {
			if err := put(faceRec(id)); err != nil {
				return m, err
			}
			id++
		}
		for i := 0; i < edges; i++ {
			if err := put(edgeRec(id)); err != nil {
				return m, err
			}
			id++
		}
		for i := 0; i < points; i++ {
			if err := put(pointRec(id)); err != nil {
				return m, err
			}
			id++
		}
		// Relation records: brep-face, face-edge, edge-point.
		links := faces + faces*edgesPerFace + edges*pointsPerEdge
		for i := 0; i < links; i++ {
			if err := put(linkRec(id, id+1)); err != nil {
				return m, err
			}
		}
	}
	return m, nil
}

// MAD measures the real system: n cubes stored through the full PRIMA
// stack, sizes read from the primary containers.
func MAD(n int) (Metrics, error) {
	sys, err := access.Open(access.Config{})
	if err != nil {
		return Metrics{}, err
	}
	defer sys.Close()
	e := core.New(sys)
	if err := brepgen.InstallSchema(e); err != nil {
		return Metrics{}, err
	}
	if _, err := brepgen.BuildScene(e, n); err != nil {
		return Metrics{}, err
	}
	m := Metrics{Model: "mad", PointCopies: 1, InverseTraversal: true, MovePointWrites: 1}
	for _, tn := range []string{"brep", "face", "edge", "point"} {
		if err := sys.AtomTypeScan(tn, nil, nil, func(at *access.Atom) bool {
			m.Records++
			return true
		}); err != nil {
			return m, err
		}
	}
	// Byte size: encoded primary records.
	for _, tn := range []string{"brep", "face", "edge", "point"} {
		addrs, err := sys.ScanAddrs(tn)
		if err != nil {
			return m, err
		}
		for _, a := range addrs {
			at, err := sys.Get(a, nil)
			if err != nil {
				return m, err
			}
			m.Bytes += len(encodeValues(at))
		}
	}
	return m, nil
}

func encodeValues(at *access.Atom) []byte {
	return atom.EncodeAtom(at.Values)
}

// Compare runs all three models for n cubes.
func Compare(n int) ([]Metrics, error) {
	h, err := Hierarchical(n)
	if err != nil {
		return nil, fmt.Errorf("baseline: hierarchical: %w", err)
	}
	nw, err := Network(n)
	if err != nil {
		return nil, fmt.Errorf("baseline: network: %w", err)
	}
	md, err := MAD(n)
	if err != nil {
		return nil, fmt.Errorf("baseline: mad: %w", err)
	}
	return []Metrics{h, nw, md}, nil
}
