package baseline

import "testing"

// TestFig21Shape verifies the qualitative claims of Fig. 2.1: the
// hierarchical model is redundant (more records, more bytes, multi-record
// point updates, no inverse traversal); the network model avoids redundancy
// but pays relation records; MAD is non-redundant AND link-free.
func TestFig21Shape(t *testing.T) {
	ms, err := Compare(4)
	if err != nil {
		t.Fatal(err)
	}
	h, nw, mad := ms[0], ms[1], ms[2]

	// Hierarchical: duplicated edges and points.
	if h.PointCopies <= 1 {
		t.Fatalf("hierarchical point copies = %d, want > 1", h.PointCopies)
	}
	if h.MovePointWrites <= 1 {
		t.Fatalf("hierarchical move cost = %d, want > 1", h.MovePointWrites)
	}
	if h.InverseTraversal {
		t.Fatal("hierarchical model claims inverse traversal")
	}
	// 4 cubes: 4 * (1 + 6 + 24 + 48) = 316 records.
	if h.Records != 4*(1+6+24+48) {
		t.Fatalf("hierarchical records = %d", h.Records)
	}

	// Network: non-redundant entities plus relation records.
	if nw.PointCopies != 1 || nw.MovePointWrites != 1 {
		t.Fatalf("network redundancy: %+v", nw)
	}
	wantEntities := 4 * (1 + 6 + 12 + 8)
	wantLinks := 4 * (6 + 24 + 24)
	if nw.Records != wantEntities+wantLinks {
		t.Fatalf("network records = %d, want %d", nw.Records, wantEntities+wantLinks)
	}

	// MAD: entity records only, no duplicates, no links.
	if mad.Records != wantEntities {
		t.Fatalf("mad records = %d, want %d", mad.Records, wantEntities)
	}
	if mad.PointCopies != 1 || !mad.InverseTraversal {
		t.Fatalf("mad metrics: %+v", mad)
	}
	// Record-count ordering: MAD < network (links) and MAD < hierarchical
	// (duplicates).
	if !(mad.Records < nw.Records && mad.Records < h.Records) {
		t.Fatalf("record ordering violated: h=%d nw=%d mad=%d", h.Records, nw.Records, mad.Records)
	}
	// The hierarchical model stores strictly more bytes than MAD.
	if h.Bytes <= mad.Bytes {
		t.Fatalf("bytes: hierarchical %d <= mad %d", h.Bytes, mad.Bytes)
	}
}
