// Package baseline implements the two modeling approaches PRIMA is compared
// against in Fig. 2.1: the hierarchical approach (IMS-style, "a substantial
// portion of redundancy is introduced: there are several independent
// representations for every edge and every point"), and the network approach
// ("avoids redundancy, but at the cost of introducing a number of 'relation
// records' that represent n:m relationships"). The MAD numbers come from the
// real system; the baselines store equivalently encoded records in the same
// record containers so sizes and update costs are measured, not estimated.
package baseline

import (
	"fmt"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/access/record"
	"prima/internal/storage/buffer"
	"prima/internal/storage/device"
	"prima/internal/storage/segment"
)

// Metrics reports what one modeling approach costs for the same set of BREP
// objects.
type Metrics struct {
	Model   string
	Records int // stored records (atoms / segments / relation records)
	Bytes   int // encoded record bytes
	// PointCopies is how many stored representations one geometric point
	// has (1 = non-redundant).
	PointCopies int
	// MovePointWrites is how many records must be rewritten to move one
	// point (the update problem of redundant hierarchies).
	MovePointWrites int
	// InverseTraversal reports whether point→face navigation is possible
	// without a full scan ("looking from points to all corresponding edges
	// and faces is not possible in the hierarchical example").
	InverseTraversal bool
}

func (m Metrics) String() string {
	return fmt.Sprintf("%-12s records=%5d bytes=%7d pointCopies=%d movePointWrites=%d inverseTraversal=%v",
		m.Model, m.Records, m.Bytes, m.PointCopies, m.MovePointWrites, m.InverseTraversal)
}

// cube topology constants (see brepgen): 6 faces, 12 edges, 8 points;
// every face has 4 border edges and 4 corner points; every edge bounds 2
// faces and joins 2 points; every point touches 3 faces and 3 edges.
const (
	faces         = 6
	edges         = 12
	points        = 8
	edgesPerFace  = 4
	pointsPerEdge = 2
	facesPerEdge  = 2
	edgesPerPoint = 3
)

// newContainer builds a scratch container for measurement.
func newContainer() (*record.Container, error) {
	dev, err := device.NewMem(device.B8K)
	if err != nil {
		return nil, err
	}
	seg, err := segment.Create(dev, 1, 65536)
	if err != nil {
		return nil, err
	}
	pool := buffer.NewPool(buffer.NewSizeAwareLRU(8 << 20))
	return record.New(seg, pool)
}

// encode helpers producing realistic record images.
func pointRec(id int) []byte {
	return atom.EncodeAtom([]atom.Value{
		atom.Ident(atomAddr(id)),
		atom.Record(atom.Real(float64(id)), atom.Real(float64(id)*2), atom.Real(float64(id)*3)),
	})
}

func edgeRec(id int, pointIDs ...int) []byte {
	refs := make([]atom.Value, len(pointIDs))
	for i, p := range pointIDs {
		refs[i] = atom.Ref(atomAddr(p))
	}
	return atom.EncodeAtom([]atom.Value{
		atom.Ident(atomAddr(id)),
		atom.Real(1.0),
		{K: atom.KindSet, E: refs},
	})
}

func faceRec(id int, childIDs ...int) []byte {
	refs := make([]atom.Value, len(childIDs))
	for i, c := range childIDs {
		refs[i] = atom.Ref(atomAddr(c))
	}
	return atom.EncodeAtom([]atom.Value{
		atom.Ident(atomAddr(id)),
		atom.Real(1.0),
		{K: atom.KindSet, E: refs},
	})
}

func linkRec(a, b int) []byte {
	return atom.EncodeAtom([]atom.Value{
		atom.Ref(atomAddr(a)),
		atom.Ref(atomAddr(b)),
	})
}

func atomAddr(id int) addr.LogicalAddr { return addr.New(1, uint64(id)) }
