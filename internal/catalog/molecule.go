package catalog

import (
	"errors"
	"fmt"
	"strings"
)

// MoleculeType is a dynamically defined complex-object type: a tree of atom
// types connected by associations ("the molecule structure is superimposed
// dynamically on sets of atoms linked by associations", §2.1). Meshed
// (network) molecule expressions are resolved into this hierarchical
// normal form by query validation ("resolution of a meshed molecule type
// into an equivalent hierarchical one which is easier to cope with", §3.1).
type MoleculeType struct {
	Name string   `json:"name,omitempty"` // empty for molecule types defined inline in a query
	Root *MolNode `json:"root"`
}

// MolNode is one component type of a molecule type.
type MolNode struct {
	AtomType string `json:"atomType"`
	// Via is the reference attribute on the PARENT atom type whose targets
	// form this component ("" for the root). Association symmetry
	// guarantees such an attribute exists regardless of the direction the
	// association was declared in.
	Via string `json:"via,omitempty"`
	// Recursive marks a recursive edge (e.g. solid.sub-solid (RECURSIVE)):
	// the assembler re-applies Via level by level until no new atoms
	// qualify.
	Recursive bool       `json:"recursive,omitempty"`
	Children  []*MolNode `json:"children,omitempty"`
}

// ErrBadMolecule wraps all molecule type validation failures.
var ErrBadMolecule = errors.New("catalog: invalid molecule type")

// Validate checks the molecule type against the schema: every atom type
// exists and every edge is backed by an association; unqualified edges must
// be unambiguous. It normalizes edges so Via is always the parent-side
// attribute.
func (m *MoleculeType) Validate(s *Schema) error {
	if m.Root == nil {
		return fmt.Errorf("%w: no root", ErrBadMolecule)
	}
	return m.validateNode(s, m.Root, nil)
}

func (m *MoleculeType) validateNode(s *Schema, n *MolNode, parent *MolNode) error {
	at, ok := s.AtomType(n.AtomType)
	if !ok {
		return fmt.Errorf("%w: %w: %s", ErrBadMolecule, ErrUnknownType, n.AtomType)
	}
	if parent != nil {
		pt, ok := s.AtomType(parent.AtomType)
		if !ok {
			return fmt.Errorf("%w: %w: %s", ErrBadMolecule, ErrUnknownType, parent.AtomType)
		}
		if n.Via != "" {
			attr, ok := pt.Attr(n.Via)
			if !ok {
				return fmt.Errorf("%w: %s has no attribute %q", ErrBadMolecule, pt.Name, n.Via)
			}
			tt, _, isRef := attr.Type.RefTarget()
			if !isRef || tt != n.AtomType {
				return fmt.Errorf("%w: %s.%s does not reference %s", ErrBadMolecule, pt.Name, n.Via, n.AtomType)
			}
		} else {
			// Find the association(s) between parent and child. Thanks to
			// symmetry it is enough to look at parent-side attributes.
			cands := pt.AttrsTargeting(n.AtomType)
			if len(cands) == 0 {
				return fmt.Errorf("%w: no association between %s and %s", ErrBadMolecule, pt.Name, n.AtomType)
			}
			if len(cands) > 1 {
				names := make([]string, len(cands))
				for i, c := range cands {
					names[i] = pt.Attrs[c].Name
				}
				return fmt.Errorf("%w: association between %s and %s is ambiguous (%s); qualify with type.attr",
					ErrBadMolecule, pt.Name, n.AtomType, strings.Join(names, ", "))
			}
			n.Via = pt.Attrs[cands[0]].Name
		}
		if n.Recursive && parent.AtomType != n.AtomType {
			return fmt.Errorf("%w: recursive edge %s.%s must stay on one atom type", ErrBadMolecule, parent.AtomType, n.Via)
		}
	}
	_ = at
	seen := map[string]bool{}
	for _, c := range n.Children {
		if err := m.validateNode(s, c, n); err != nil {
			return err
		}
		key := c.AtomType + "." + c.Via
		if seen[key] {
			return fmt.Errorf("%w: duplicate component %s via %s", ErrBadMolecule, c.AtomType, c.Via)
		}
		seen[key] = true
	}
	return nil
}

// Clone returns a deep copy (molecule types are shared between catalog and
// plans; plans may annotate their copies).
func (m *MoleculeType) Clone() *MoleculeType {
	return &MoleculeType{Name: m.Name, Root: m.Root.clone()}
}

func (n *MolNode) clone() *MolNode {
	if n == nil {
		return nil
	}
	out := &MolNode{AtomType: n.AtomType, Via: n.Via, Recursive: n.Recursive}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.clone())
	}
	return out
}

// AtomTypes returns the distinct atom type names used by the molecule type,
// root first.
func (m *MoleculeType) AtomTypes() []string {
	var out []string
	seen := map[string]bool{}
	var walk func(n *MolNode)
	walk = func(n *MolNode) {
		if !seen[n.AtomType] {
			seen[n.AtomType] = true
			out = append(out, n.AtomType)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(m.Root)
	return out
}

// IsRecursive reports whether any edge of the molecule type recurses.
func (m *MoleculeType) IsRecursive() bool {
	var walk func(n *MolNode) bool
	walk = func(n *MolNode) bool {
		for _, c := range n.Children {
			if c.Recursive || walk(c) {
				return true
			}
		}
		return false
	}
	return walk(m.Root)
}

// String renders the molecule type in FROM-clause syntax.
func (m *MoleculeType) String() string {
	var render func(n *MolNode) string
	render = func(n *MolNode) string {
		s := n.AtomType
		if len(n.Children) == 1 {
			c := n.Children[0]
			edge := "-"
			s += edge + render(c)
			if c.Recursive {
				s += " (RECURSIVE)"
			}
		} else if len(n.Children) > 1 {
			parts := make([]string, len(n.Children))
			for i, c := range n.Children {
				parts[i] = render(c)
			}
			s += "-(" + strings.Join(parts, ", ") + ")"
		}
		return s
	}
	return render(m.Root)
}
