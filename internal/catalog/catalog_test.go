package catalog

import (
	"errors"
	"testing"

	"prima/internal/access/atom"
)

// solidSchema builds the Fig. 2.3 schema (solid, brep, face, edge, point)
// programmatically. HULL_DIM(3) is modeled as ARRAY_OF(REAL, 6) — a
// min/max bounding box per dimension (documented substitution).
func solidSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()

	mustAdd := func(name string, attrs []Attribute, keys ...string) {
		t.Helper()
		at, err := NewAtomType(name, attrs, keys)
		if err != nil {
			t.Fatalf("NewAtomType(%s): %v", name, err)
		}
		if err := s.AddAtomType(at); err != nil {
			t.Fatalf("AddAtomType(%s): %v", name, err)
		}
	}

	mustAdd("solid", []Attribute{
		{Name: "solid_id", Type: SpecIdent()},
		{Name: "solid_no", Type: SpecInt()},
		{Name: "description", Type: SpecString()},
		{Name: "sub", Type: SpecSetOf(SpecRef("solid", "super"), 0, VarCard)},
		{Name: "super", Type: SpecSetOf(SpecRef("solid", "sub"), 0, VarCard)},
		{Name: "brep", Type: SpecRef("brep", "solid")},
	}, "solid_no")

	mustAdd("brep", []Attribute{
		{Name: "brep_id", Type: SpecIdent()},
		{Name: "brep_no", Type: SpecInt()},
		{Name: "hull", Type: SpecArrayOf(SpecReal(), 6)},
		{Name: "solid", Type: SpecRef("solid", "brep")},
		{Name: "faces", Type: SpecSetOf(SpecRef("face", "brep"), 4, VarCard)},
		{Name: "edges", Type: SpecSetOf(SpecRef("edge", "brep"), 6, VarCard)},
		{Name: "points", Type: SpecSetOf(SpecRef("point", "brep"), 4, VarCard)},
	}, "brep_no")

	mustAdd("face", []Attribute{
		{Name: "face_id", Type: SpecIdent()},
		{Name: "square_dim", Type: SpecReal()},
		{Name: "border", Type: SpecSetOf(SpecRef("edge", "face"), 3, VarCard)},
		{Name: "crosspoint", Type: SpecSetOf(SpecRef("point", "face"), 3, VarCard)},
		{Name: "brep", Type: SpecRef("brep", "faces")},
	})

	mustAdd("edge", []Attribute{
		{Name: "edge_id", Type: SpecIdent()},
		{Name: "length", Type: SpecReal()},
		{Name: "boundary", Type: SpecSetOf(SpecRef("point", "line"), 2, VarCard)},
		{Name: "face", Type: SpecSetOf(SpecRef("face", "border"), 2, VarCard)},
		{Name: "brep", Type: SpecRef("brep", "edges")},
	})

	mustAdd("point", []Attribute{
		{Name: "point_id", Type: SpecIdent()},
		{Name: "placement", Type: SpecRecord(
			RecordField{Name: "x_coord", Type: SpecReal()},
			RecordField{Name: "y_coord", Type: SpecReal()},
			RecordField{Name: "z_coord", Type: SpecReal()},
		)},
		{Name: "line", Type: SpecSetOf(SpecRef("edge", "boundary"), 1, VarCard)},
		{Name: "face", Type: SpecSetOf(SpecRef("face", "crosspoint"), 1, VarCard)},
		{Name: "brep", Type: SpecRef("brep", "points")},
	})

	if err := s.ResolveAssociations(); err != nil {
		t.Fatalf("ResolveAssociations: %v", err)
	}
	return s
}

func TestFig23SchemaResolves(t *testing.T) {
	s := solidSchema(t)
	if got := len(s.AtomTypes()); got != 5 {
		t.Fatalf("%d atom types, want 5", got)
	}
	solid, _ := s.AtomType("solid")
	if solid.IdentIndex() != 0 {
		t.Fatalf("solid IdentIndex = %d, want 0", solid.IdentIndex())
	}
	if got := solid.AttrsTargeting("solid"); len(got) != 2 {
		t.Fatalf("solid self-associations = %d, want 2 (sub, super)", len(got))
	}
	if got := solid.AttrsTargeting("brep"); len(got) != 1 {
		t.Fatalf("solid->brep associations = %d, want 1", len(got))
	}
}

func TestAtomTypeValidation(t *testing.T) {
	// No IDENTIFIER.
	if _, err := NewAtomType("x", []Attribute{{Name: "a", Type: SpecInt()}}, nil); !errors.Is(err, ErrBadAtomType) {
		t.Fatalf("missing IDENTIFIER = %v, want ErrBadAtomType", err)
	}
	// Two IDENTIFIERs.
	if _, err := NewAtomType("x", []Attribute{
		{Name: "a", Type: SpecIdent()}, {Name: "b", Type: SpecIdent()},
	}, nil); !errors.Is(err, ErrBadAtomType) {
		t.Fatalf("double IDENTIFIER = %v, want ErrBadAtomType", err)
	}
	// Duplicate attribute names.
	if _, err := NewAtomType("x", []Attribute{
		{Name: "a", Type: SpecIdent()}, {Name: "a", Type: SpecInt()},
	}, nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate attr = %v, want ErrDuplicate", err)
	}
	// Unknown key attribute.
	if _, err := NewAtomType("x", []Attribute{{Name: "a", Type: SpecIdent()}}, []string{"zzz"}); !errors.Is(err, ErrBadAtomType) {
		t.Fatalf("bad key = %v, want ErrBadAtomType", err)
	}
	// Non-scalar key attribute.
	if _, err := NewAtomType("x", []Attribute{
		{Name: "a", Type: SpecIdent()},
		{Name: "s", Type: SpecSetOf(SpecInt(), 0, VarCard)},
	}, []string{"s"}); !errors.Is(err, ErrBadAtomType) {
		t.Fatalf("set key = %v, want ErrBadAtomType", err)
	}
}

func TestAsymmetricAssociationRejected(t *testing.T) {
	s := NewSchema()
	a, _ := NewAtomType("a", []Attribute{
		{Name: "id", Type: SpecIdent()},
		{Name: "b", Type: SpecRef("b", "a")},
	}, nil)
	if err := s.AddAtomType(a); err != nil {
		t.Fatalf("AddAtomType: %v", err)
	}

	// b.a points to the wrong back attribute.
	b, _ := NewAtomType("b", []Attribute{
		{Name: "id", Type: SpecIdent()},
		{Name: "a", Type: SpecRef("a", "id")},
	}, nil)
	if err := s.AddAtomType(b); err != nil {
		t.Fatalf("AddAtomType: %v", err)
	}
	if err := s.ResolveAssociations(); !errors.Is(err, ErrAsymmetric) {
		t.Fatalf("ResolveAssociations = %v, want ErrAsymmetric", err)
	}

	// Unknown target type.
	s2 := NewSchema()
	c, _ := NewAtomType("c", []Attribute{
		{Name: "id", Type: SpecIdent()},
		{Name: "x", Type: SpecRef("ghost", "y")},
	}, nil)
	s2.AddAtomType(c)
	if err := s2.ResolveAssociations(); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown target = %v, want ErrUnknownType", err)
	}
}

func TestTypeSpecCheck(t *testing.T) {
	cases := []struct {
		spec TypeSpec
		v    atom.Value
		ok   bool
	}{
		{SpecInt(), atom.Int(5), true},
		{SpecInt(), atom.Str("x"), false},
		{SpecInt(), atom.Null(), true},
		{SpecIdent(), atom.Null(), false},
		{SpecReal(), atom.Int(5), true}, // widening
		{SpecReal(), atom.Real(5.5), true},
		{SpecString(), atom.Str("ok"), true},
		{SpecRef("a", "b"), atom.Ref(1), true},
		{SpecRef("a", "b"), atom.Int(1), false},
		{SpecSetOf(SpecInt(), 0, VarCard), atom.Set(atom.Int(1), atom.Int(2)), true},
		{SpecSetOf(SpecInt(), 0, VarCard), atom.Set(atom.Str("x")), false},
		{SpecSetOf(SpecInt(), 0, VarCard), atom.List(atom.Int(1)), false},
		{SpecArrayOf(SpecReal(), 2), atom.Array(atom.Real(1), atom.Real(2)), true},
		{SpecArrayOf(SpecReal(), 2), atom.Array(atom.Real(1)), false},
		{SpecRecord(RecordField{"x", SpecReal()}, RecordField{"y", SpecReal()}),
			atom.Record(atom.Real(1), atom.Real(2)), true},
		{SpecRecord(RecordField{"x", SpecReal()}), atom.Record(), false},
	}
	for i, c := range cases {
		err := c.spec.Check(c.v)
		if (err == nil) != c.ok {
			t.Errorf("case %d: Check(%v against %v) = %v, want ok=%v", i, c.v, c.spec, err, c.ok)
		}
	}
}

func TestCardinalityCheck(t *testing.T) {
	spec := SpecSetOf(SpecRef("face", "brep"), 4, VarCard)
	if err := spec.CheckCard(atom.Set(atom.Ref(1), atom.Ref(2), atom.Ref(3))); err == nil {
		t.Fatal("3 elements accepted with minimum 4")
	}
	if err := spec.CheckCard(atom.Set(atom.Ref(1), atom.Ref(2), atom.Ref(3), atom.Ref(4))); err != nil {
		t.Fatalf("4 elements rejected: %v", err)
	}
	bounded := SpecSetOf(SpecInt(), 1, 2)
	if err := bounded.CheckCard(atom.Set(atom.Int(1), atom.Int(2), atom.Int(3))); err == nil {
		t.Fatal("3 elements accepted with maximum 2")
	}
}

func TestMoleculeTypeValidation(t *testing.T) {
	s := solidSchema(t)

	// Unambiguous chain brep-face-edge-point (the Table 2.1a molecule).
	m := &MoleculeType{Name: "brep_obj", Root: &MolNode{
		AtomType: "brep",
		Children: []*MolNode{{
			AtomType: "face",
			Children: []*MolNode{{
				AtomType: "edge", Via: "border",
				Children: []*MolNode{{AtomType: "point", Via: "boundary"}},
			}},
		}},
	}}
	if err := m.Validate(s); err != nil {
		t.Fatalf("Validate brep chain: %v", err)
	}
	// The brep->face edge was unqualified; validation must resolve Via.
	if m.Root.Children[0].Via != "faces" {
		t.Fatalf("resolved Via = %q, want faces", m.Root.Children[0].Via)
	}

	// Ambiguous edge: edge and point are connected via boundary AND via
	// nothing else... face and point connect via crosspoint only, fine.
	// solid-solid without qualification is ambiguous (sub and super).
	amb := &MoleculeType{Root: &MolNode{
		AtomType: "solid",
		Children: []*MolNode{{AtomType: "solid"}},
	}}
	if err := amb.Validate(s); !errors.Is(err, ErrBadMolecule) {
		t.Fatalf("ambiguous edge = %v, want ErrBadMolecule", err)
	}

	// Qualified recursive piece_list (Fig. 2.3c).
	rec := &MoleculeType{Name: "piece_list", Root: &MolNode{
		AtomType: "solid",
		Children: []*MolNode{{AtomType: "solid", Via: "sub", Recursive: true}},
	}}
	if err := rec.Validate(s); err != nil {
		t.Fatalf("Validate piece_list: %v", err)
	}
	if !rec.IsRecursive() {
		t.Fatal("IsRecursive = false")
	}

	// Unknown atom type.
	bad := &MoleculeType{Root: &MolNode{AtomType: "ghost"}}
	if err := bad.Validate(s); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown type = %v, want ErrUnknownType", err)
	}

	// Via attribute that is not an association.
	bad2 := &MoleculeType{Root: &MolNode{
		AtomType: "brep",
		Children: []*MolNode{{AtomType: "face", Via: "brep_no"}},
	}}
	if err := bad2.Validate(s); !errors.Is(err, ErrBadMolecule) {
		t.Fatalf("non-ref via = %v, want ErrBadMolecule", err)
	}

	// Register and fetch.
	if err := s.DefineMoleculeType(m); err != nil {
		t.Fatalf("DefineMoleculeType: %v", err)
	}
	if err := s.DefineMoleculeType(m); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate molecule type = %v, want ErrDuplicate", err)
	}
	got, ok := s.MoleculeType("brep_obj")
	if !ok || got.Root.AtomType != "brep" {
		t.Fatalf("MoleculeType lookup failed: %v %v", got, ok)
	}
	if got := m.AtomTypes(); len(got) != 4 || got[0] != "brep" {
		t.Fatalf("AtomTypes = %v", got)
	}
}

func TestLDLDefinitions(t *testing.T) {
	s := solidSchema(t)

	if err := s.AddAccessPath(&AccessPathDef{Name: "solid_no_idx", AtomType: "solid", Attrs: []string{"solid_no"}}); err != nil {
		t.Fatalf("AddAccessPath: %v", err)
	}
	d, _ := s.AccessPath("solid_no_idx")
	if d.Method != "BTREE" {
		t.Fatalf("default method = %q, want BTREE", d.Method)
	}
	if err := s.AddAccessPath(&AccessPathDef{Name: "ap2", AtomType: "face", Attrs: []string{"square_dim", "face_id"}}); err != nil {
		t.Fatalf("AddAccessPath multi: %v", err)
	}
	d2, _ := s.AccessPath("ap2")
	if d2.Method != "GRID" {
		t.Fatalf("multi-attr default method = %q, want GRID", d2.Method)
	}
	// BTREE with 2 attrs is invalid.
	if err := s.AddAccessPath(&AccessPathDef{Name: "bad", AtomType: "face", Attrs: []string{"square_dim", "face_id"}, Method: "BTREE"}); err == nil {
		t.Fatal("BTREE over 2 attrs accepted")
	}
	// Unknown attribute.
	if err := s.AddAccessPath(&AccessPathDef{Name: "bad2", AtomType: "face", Attrs: []string{"nope"}}); !errors.Is(err, ErrUnknownAttr) {
		t.Fatalf("unknown attr = %v, want ErrUnknownAttr", err)
	}

	if err := s.AddSortOrder(&SortOrderDef{Name: "so1", AtomType: "edge", Attrs: []string{"length"}}); err != nil {
		t.Fatalf("AddSortOrder: %v", err)
	}
	so := s.SortOrdersFor("edge")
	if len(so) != 1 || so[0].ID == 0 {
		t.Fatalf("SortOrdersFor = %+v", so)
	}

	if err := s.AddPartition(&PartitionDef{Name: "p1", AtomType: "solid", Attrs: []string{"solid_no", "description"}}); err != nil {
		t.Fatalf("AddPartition: %v", err)
	}
	if err := s.AddPartition(&PartitionDef{Name: "p1", AtomType: "solid", Attrs: []string{"solid_no"}}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate LDL name = %v, want ErrDuplicate", err)
	}

	cl := &ClusterDef{Name: "c1", Molecule: &MoleculeType{Root: &MolNode{
		AtomType: "brep",
		Children: []*MolNode{{AtomType: "face"}},
	}}}
	if err := s.AddCluster(cl); err != nil {
		t.Fatalf("AddCluster: %v", err)
	}
	if got := s.ClustersForRoot("brep"); len(got) != 1 {
		t.Fatalf("ClustersForRoot = %d", len(got))
	}
	if got := s.ClustersInvolving("face"); len(got) != 1 {
		t.Fatalf("ClustersInvolving = %d", len(got))
	}

	// Structure IDs are distinct across LDL kinds.
	p := s.PartitionsFor("solid")[0]
	if so[0].ID == p.ID || so[0].ID == cl.ID || p.ID == cl.ID {
		t.Fatalf("structure ids collide: so=%d part=%d cluster=%d", so[0].ID, p.ID, cl.ID)
	}

	// Drop.
	if _, err := s.DropLDL("so1"); err != nil {
		t.Fatalf("DropLDL: %v", err)
	}
	if _, err := s.DropLDL("so1"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("double DropLDL = %v", err)
	}
}

func TestDropAtomTypeGuards(t *testing.T) {
	s := solidSchema(t)
	// face is referenced by brep/edge/point.
	if err := s.DropAtomType("face"); !errors.Is(err, ErrInUse) {
		t.Fatalf("DropAtomType(face) = %v, want ErrInUse", err)
	}
	// An isolated type can be dropped.
	iso, _ := NewAtomType("iso", []Attribute{{Name: "id", Type: SpecIdent()}}, nil)
	s.AddAtomType(iso)
	if err := s.DropAtomType("iso"); err != nil {
		t.Fatalf("DropAtomType(iso): %v", err)
	}
	if err := s.DropAtomType("iso"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("double drop = %v, want ErrUnknownType", err)
	}
}

func TestSchemaPersistence(t *testing.T) {
	s := solidSchema(t)
	s.DefineMoleculeType(&MoleculeType{Name: "piece_list", Root: &MolNode{
		AtomType: "solid",
		Children: []*MolNode{{AtomType: "solid", Via: "sub", Recursive: true}},
	}})
	s.AddAccessPath(&AccessPathDef{Name: "ap", AtomType: "solid", Attrs: []string{"solid_no"}})
	s.AddSortOrder(&SortOrderDef{Name: "so", AtomType: "edge", Attrs: []string{"length"}, Desc: []bool{true}})
	s.AddPartition(&PartitionDef{Name: "pt", AtomType: "solid", Attrs: []string{"description"}})
	s.AddCluster(&ClusterDef{Name: "cl", Molecule: &MoleculeType{Root: &MolNode{
		AtomType: "brep", Children: []*MolNode{{AtomType: "face"}},
	}}})

	data, err := s.Save()
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	s2, err := Load(data)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Types keep their IDs and structure.
	for _, name := range []string{"solid", "brep", "face", "edge", "point"} {
		a, ok1 := s.AtomType(name)
		b, ok2 := s2.AtomType(name)
		if !ok1 || !ok2 || a.ID != b.ID || len(a.Attrs) != len(b.Attrs) {
			t.Fatalf("atom type %s did not survive persistence", name)
		}
	}
	m, ok := s2.MoleculeType("piece_list")
	if !ok || !m.IsRecursive() {
		t.Fatal("molecule type lost")
	}
	if _, ok := s2.AccessPath("ap"); !ok {
		t.Fatal("access path lost")
	}
	if len(s2.SortOrdersFor("edge")) != 1 || len(s2.PartitionsFor("solid")) != 1 || len(s2.Clusters()) != 1 {
		t.Fatal("LDL structures lost")
	}

	// New type IDs continue after the old ones.
	nt, _ := NewAtomType("extra", []Attribute{{Name: "id", Type: SpecIdent()}}, nil)
	if err := s2.AddAtomType(nt); err != nil {
		t.Fatalf("AddAtomType after load: %v", err)
	}
	if nt.ID <= 5 {
		t.Fatalf("reloaded schema reused TypeID %d", nt.ID)
	}

	// Corrupt JSON rejected.
	if _, err := Load(data[:len(data)/3]); err == nil {
		t.Fatal("truncated schema accepted")
	}
}
