package catalog

import (
	"errors"
	"fmt"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
)

// Errors returned by atom type construction and schema operations.
var (
	ErrBadAtomType = errors.New("catalog: invalid atom type")
	ErrUnknownType = errors.New("catalog: unknown atom type")
	ErrUnknownAttr = errors.New("catalog: unknown attribute")
	ErrDuplicate   = errors.New("catalog: duplicate name")
	ErrAsymmetric  = errors.New("catalog: asymmetric association")
	ErrInUse       = errors.New("catalog: object in use")
)

// Attribute is one attribute of an atom type.
type Attribute struct {
	Name string   `json:"name"`
	Type TypeSpec `json:"type"`
}

// AtomType describes one atom type: its attributes (exactly one IDENTIFIER
// among them) and key attributes (KEYS_ARE).
type AtomType struct {
	ID    addr.TypeID `json:"id"`
	Name  string      `json:"name"`
	Attrs []Attribute `json:"attrs"`
	Keys  []string    `json:"keys,omitempty"`

	attrIdx  map[string]int
	identIdx int
}

// NewAtomType validates and builds an atom type. The ID is assigned when the
// type is added to a schema.
func NewAtomType(name string, attrs []Attribute, keys []string) (*AtomType, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrBadAtomType)
	}
	t := &AtomType{Name: name, Attrs: attrs, Keys: keys}
	if err := t.build(); err != nil {
		return nil, err
	}
	return t, nil
}

// build derives the lookup structures and validates invariants.
func (t *AtomType) build() error {
	t.attrIdx = make(map[string]int, len(t.Attrs))
	t.identIdx = -1
	for i, a := range t.Attrs {
		if a.Name == "" {
			return fmt.Errorf("%w: %s: attribute %d has empty name", ErrBadAtomType, t.Name, i)
		}
		if _, dup := t.attrIdx[a.Name]; dup {
			return fmt.Errorf("%w: %s.%s declared twice", ErrDuplicate, t.Name, a.Name)
		}
		t.attrIdx[a.Name] = i
		if a.Type.Kind == atom.KindIdent {
			if t.identIdx >= 0 {
				return fmt.Errorf("%w: %s has more than one IDENTIFIER attribute", ErrBadAtomType, t.Name)
			}
			t.identIdx = i
		}
		if a.Type.IsRef() {
			if tt, ta, _ := a.Type.RefTarget(); tt == "" || ta == "" {
				return fmt.Errorf("%w: %s.%s: REF_TO needs a type.attr target", ErrBadAtomType, t.Name, a.Name)
			}
		}
	}
	if t.identIdx < 0 {
		return fmt.Errorf("%w: %s has no IDENTIFIER attribute", ErrBadAtomType, t.Name)
	}
	for _, k := range t.Keys {
		i, ok := t.attrIdx[k]
		if !ok {
			return fmt.Errorf("%w: %s: KEYS_ARE names unknown attribute %q", ErrBadAtomType, t.Name, k)
		}
		switch t.Attrs[i].Type.Kind {
		case atom.KindInt, atom.KindReal, atom.KindString, atom.KindBool, atom.KindIdent:
		default:
			return fmt.Errorf("%w: %s: key attribute %q must be scalar", ErrBadAtomType, t.Name, k)
		}
	}
	return nil
}

// AttrIndex returns the position of the named attribute.
func (t *AtomType) AttrIndex(name string) (int, bool) {
	i, ok := t.attrIdx[name]
	return i, ok
}

// Attr returns the named attribute.
func (t *AtomType) Attr(name string) (*Attribute, bool) {
	if i, ok := t.attrIdx[name]; ok {
		return &t.Attrs[i], true
	}
	return nil, false
}

// IdentIndex returns the position of the IDENTIFIER attribute.
func (t *AtomType) IdentIndex() int { return t.identIdx }

// RefAttrs returns the indices of all reference attributes (the association
// ends defined on this type).
func (t *AtomType) RefAttrs() []int {
	var out []int
	for i, a := range t.Attrs {
		if a.Type.IsRef() {
			out = append(out, i)
		}
	}
	return out
}

// AttrsTargeting returns the indices of reference attributes whose
// association partner is the named atom type.
func (t *AtomType) AttrsTargeting(typeName string) []int {
	var out []int
	for i, a := range t.Attrs {
		if tt, _, ok := a.Type.RefTarget(); ok && tt == typeName {
			out = append(out, i)
		}
	}
	return out
}

// NewAtomValues builds a full attribute vector with every attribute at its
// zero value and the IDENTIFIER set to id.
func (t *AtomType) NewAtomValues(id addr.LogicalAddr) []atom.Value {
	values := make([]atom.Value, len(t.Attrs))
	for i, a := range t.Attrs {
		values[i] = a.Type.Zero()
	}
	values[t.identIdx] = atom.Ident(id)
	return values
}

// CheckValues type-checks a full attribute vector against the type.
func (t *AtomType) CheckValues(values []atom.Value) error {
	if len(values) != len(t.Attrs) {
		return fmt.Errorf("%w: %s: %d values for %d attributes", ErrTypeCheck, t.Name, len(values), len(t.Attrs))
	}
	for i, a := range t.Attrs {
		if err := a.Type.Check(values[i]); err != nil {
			return fmt.Errorf("%s.%s: %w", t.Name, a.Name, err)
		}
	}
	return nil
}

// CheckCards validates all cardinality restrictions of a full vector.
func (t *AtomType) CheckCards(values []atom.Value) error {
	for i, a := range t.Attrs {
		if err := a.Type.CheckCard(values[i]); err != nil {
			return fmt.Errorf("%s.%s: %w", t.Name, a.Name, err)
		}
	}
	return nil
}
