package catalog

import (
	"encoding/json"
	"fmt"

	"prima/internal/access/addr"
)

// schemaDoc is the on-disk JSON form of a schema.
type schemaDoc struct {
	AtomTypes    []*AtomType      `json:"atomTypes"`
	MolTypes     []*MoleculeType  `json:"moleculeTypes,omitempty"`
	AccessPaths  []*AccessPathDef `json:"accessPaths,omitempty"`
	SortOrders   []*SortOrderDef  `json:"sortOrders,omitempty"`
	Partitions   []*PartitionDef  `json:"partitions,omitempty"`
	Clusters     []*ClusterDef    `json:"clusters,omitempty"`
	NextTypeID   addr.TypeID      `json:"nextTypeID"`
	NextStructID addr.StructID    `json:"nextStructID"`
}

// Save serializes the schema to JSON.
func (s *Schema) Save() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	doc := schemaDoc{
		NextTypeID:   s.nextTypeID,
		NextStructID: s.nextStructID,
	}
	for _, t := range s.AtomTypesLockedOrder() {
		doc.AtomTypes = append(doc.AtomTypes, t)
	}
	for _, m := range s.molTypes {
		doc.MolTypes = append(doc.MolTypes, m)
	}
	for _, d := range s.accessPath {
		doc.AccessPaths = append(doc.AccessPaths, d)
	}
	for _, d := range s.sortOrders {
		doc.SortOrders = append(doc.SortOrders, d)
	}
	for _, d := range s.partitions {
		doc.Partitions = append(doc.Partitions, d)
	}
	for _, d := range s.clusters {
		doc.Clusters = append(doc.Clusters, d)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// AtomTypesLockedOrder returns atom types ordered by TypeID; the caller must
// hold at least a read lock (Save does).
func (s *Schema) AtomTypesLockedOrder() []*AtomType {
	out := make([]*AtomType, 0, len(s.atomTypes))
	for id := addr.TypeID(1); id < s.nextTypeID; id++ {
		if t, ok := s.byID[id]; ok {
			out = append(out, t)
		}
	}
	return out
}

// Load reconstructs a schema from Save output.
func Load(data []byte) (*Schema, error) {
	var doc schemaDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("catalog: load schema: %w", err)
	}
	s := NewSchema()
	for _, t := range doc.AtomTypes {
		if err := t.build(); err != nil {
			return nil, fmt.Errorf("catalog: load %s: %w", t.Name, err)
		}
		if _, dup := s.atomTypes[t.Name]; dup {
			return nil, fmt.Errorf("%w: atom type %s", ErrDuplicate, t.Name)
		}
		s.atomTypes[t.Name] = t
		s.byID[t.ID] = t
	}
	for _, m := range doc.MolTypes {
		s.molTypes[m.Name] = m
	}
	for _, d := range doc.AccessPaths {
		s.accessPath[d.Name] = d
	}
	for _, d := range doc.SortOrders {
		s.sortOrders[d.Name] = d
	}
	for _, d := range doc.Partitions {
		s.partitions[d.Name] = d
	}
	for _, d := range doc.Clusters {
		s.clusters[d.Name] = d
	}
	s.nextTypeID = doc.NextTypeID
	s.nextStructID = doc.NextStructID
	if s.nextTypeID == 0 {
		s.nextTypeID = 1
	}
	if s.nextStructID == 0 {
		s.nextStructID = 1
	}
	if err := s.ResolveAssociations(); err != nil {
		return nil, err
	}
	return s, nil
}
