// Package catalog holds PRIMA's metadata: atom types with the extended MAD
// attribute type concept (§2.2), molecule type definitions, and the
// LDL-declared storage structures (§2.3) that the access system materializes.
package catalog

import (
	"errors"
	"fmt"
	"strings"

	"prima/internal/access/atom"
)

// VarCard marks a variable ("VAR") cardinality bound on a SET/LIST type.
const VarCard = -1

// TypeSpec describes an attribute type. It mirrors the MAD-DDL grammar of
// Fig. 2.3: scalars, IDENTIFIER, REF_TO(type.attr), SET_OF/LIST_OF with
// optional (min,max) cardinality restrictions, ARRAY_OF(elem,n) and
// RECORD...END.
type TypeSpec struct {
	Kind     atom.Kind     `json:"kind"`
	Elem     *TypeSpec     `json:"elem,omitempty"`     // SET/LIST/ARRAY element type
	Fields   []RecordField `json:"fields,omitempty"`   // RECORD fields
	ArrayLen int           `json:"arrayLen,omitempty"` // ARRAY length
	RefType  string        `json:"refType,omitempty"`  // REF_TO target atom type
	RefAttr  string        `json:"refAttr,omitempty"`  // REF_TO target back-reference attribute
	MinCard  int           `json:"minCard,omitempty"`  // SET/LIST lower bound
	MaxCard  int           `json:"maxCard,omitempty"`  // SET/LIST upper bound; VarCard = unbounded
}

// RecordField is one field of a RECORD type.
type RecordField struct {
	Name string   `json:"name"`
	Type TypeSpec `json:"type"`
}

// Spec constructors.

// SpecInt returns the INTEGER type.
func SpecInt() TypeSpec { return TypeSpec{Kind: atom.KindInt} }

// SpecReal returns the REAL type.
func SpecReal() TypeSpec { return TypeSpec{Kind: atom.KindReal} }

// SpecBool returns the BOOLEAN type.
func SpecBool() TypeSpec { return TypeSpec{Kind: atom.KindBool} }

// SpecString returns the CHAR_VAR type.
func SpecString() TypeSpec { return TypeSpec{Kind: atom.KindString} }

// SpecIdent returns the IDENTIFIER type.
func SpecIdent() TypeSpec { return TypeSpec{Kind: atom.KindIdent} }

// SpecRef returns REF_TO(refType.refAttr).
func SpecRef(refType, refAttr string) TypeSpec {
	return TypeSpec{Kind: atom.KindRef, RefType: refType, RefAttr: refAttr}
}

// SpecSetOf returns SET_OF(elem) with cardinality bounds (use 0 and VarCard
// for unrestricted).
func SpecSetOf(elem TypeSpec, minCard, maxCard int) TypeSpec {
	return TypeSpec{Kind: atom.KindSet, Elem: &elem, MinCard: minCard, MaxCard: maxCard}
}

// SpecListOf returns LIST_OF(elem).
func SpecListOf(elem TypeSpec) TypeSpec {
	return TypeSpec{Kind: atom.KindList, Elem: &elem, MaxCard: VarCard}
}

// SpecArrayOf returns ARRAY_OF(elem, n).
func SpecArrayOf(elem TypeSpec, n int) TypeSpec {
	return TypeSpec{Kind: atom.KindArray, Elem: &elem, ArrayLen: n}
}

// SpecRecord returns RECORD f1,...,fn END.
func SpecRecord(fields ...RecordField) TypeSpec {
	return TypeSpec{Kind: atom.KindRecord, Fields: fields}
}

// IsRef reports whether the spec is a reference attribute: a scalar REF_TO
// or a repeating group of REF_TO. These attributes implement associations.
func (ts TypeSpec) IsRef() bool {
	switch ts.Kind {
	case atom.KindRef:
		return true
	case atom.KindSet, atom.KindList:
		return ts.Elem != nil && ts.Elem.Kind == atom.KindRef
	default:
		return false
	}
}

// RefTarget returns the association partner (atom type, attribute) of a
// reference attribute.
func (ts TypeSpec) RefTarget() (typeName, attrName string, ok bool) {
	switch ts.Kind {
	case atom.KindRef:
		return ts.RefType, ts.RefAttr, true
	case atom.KindSet, atom.KindList:
		if ts.Elem != nil && ts.Elem.Kind == atom.KindRef {
			return ts.Elem.RefType, ts.Elem.RefAttr, true
		}
	}
	return "", "", false
}

// ErrTypeCheck is wrapped by all value/type mismatches.
var ErrTypeCheck = errors.New("catalog: value does not match attribute type")

// Check validates a value against the spec. NULL is accepted for any
// non-IDENTIFIER attribute. INTEGER values are accepted where REAL is
// expected (numeric widening); no other coercion happens here.
func (ts TypeSpec) Check(v atom.Value) error {
	if v.IsNull() {
		if ts.Kind == atom.KindIdent {
			return fmt.Errorf("%w: IDENTIFIER must not be NULL", ErrTypeCheck)
		}
		return nil
	}
	switch ts.Kind {
	case atom.KindInt, atom.KindBool, atom.KindString, atom.KindIdent:
		if v.K != ts.Kind {
			return fmt.Errorf("%w: got %v, want %v", ErrTypeCheck, v.K, ts.Kind)
		}
	case atom.KindReal:
		if v.K != atom.KindReal && v.K != atom.KindInt {
			return fmt.Errorf("%w: got %v, want REAL", ErrTypeCheck, v.K)
		}
	case atom.KindRef:
		if v.K != atom.KindRef {
			return fmt.Errorf("%w: got %v, want REF_TO", ErrTypeCheck, v.K)
		}
	case atom.KindRecord:
		if v.K != atom.KindRecord {
			return fmt.Errorf("%w: got %v, want RECORD", ErrTypeCheck, v.K)
		}
		if len(v.E) != len(ts.Fields) {
			return fmt.Errorf("%w: RECORD has %d fields, want %d", ErrTypeCheck, len(v.E), len(ts.Fields))
		}
		for i, f := range ts.Fields {
			if err := f.Type.Check(v.E[i]); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
	case atom.KindArray:
		if v.K != atom.KindArray {
			return fmt.Errorf("%w: got %v, want ARRAY", ErrTypeCheck, v.K)
		}
		if len(v.E) != ts.ArrayLen {
			return fmt.Errorf("%w: ARRAY has %d elements, want %d", ErrTypeCheck, len(v.E), ts.ArrayLen)
		}
		for i, e := range v.E {
			if err := ts.Elem.Check(e); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
	case atom.KindSet, atom.KindList:
		if v.K != ts.Kind {
			return fmt.Errorf("%w: got %v, want %v", ErrTypeCheck, v.K, ts.Kind)
		}
		for i, e := range v.E {
			if err := ts.Elem.Check(e); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
	default:
		return fmt.Errorf("%w: unsupported spec kind %v", ErrTypeCheck, ts.Kind)
	}
	return nil
}

// CheckCard validates the cardinality restriction of a repeating group
// ("exact mapping of relationship types allowing for refined structural
// integrity enforced by the system", Fig. 2.3). It is checked separately
// from Check because molecules are built incrementally: the access system
// verifies bounds on demand, not on every intermediate state.
func (ts TypeSpec) CheckCard(v atom.Value) error {
	if ts.Kind != atom.KindSet && ts.Kind != atom.KindList {
		return nil
	}
	n := v.Len()
	if n < ts.MinCard {
		return fmt.Errorf("%w: %d elements, minimum %d", ErrTypeCheck, n, ts.MinCard)
	}
	if ts.MaxCard != VarCard && ts.MaxCard > 0 && n > ts.MaxCard {
		return fmt.Errorf("%w: %d elements, maximum %d", ErrTypeCheck, n, ts.MaxCard)
	}
	return nil
}

// Zero returns the natural empty value for the spec: NULL for scalars and
// references, empty groups for repeating groups, a NULL-filled RECORD/ARRAY.
func (ts TypeSpec) Zero() atom.Value {
	switch ts.Kind {
	case atom.KindSet:
		return atom.Set()
	case atom.KindList:
		return atom.List()
	case atom.KindArray:
		elems := make([]atom.Value, ts.ArrayLen)
		return atom.Array(elems...)
	case atom.KindRecord:
		elems := make([]atom.Value, len(ts.Fields))
		return atom.Record(elems...)
	default:
		return atom.Null()
	}
}

// String renders the spec in MAD-DDL syntax.
func (ts TypeSpec) String() string {
	switch ts.Kind {
	case atom.KindInt:
		return "INTEGER"
	case atom.KindReal:
		return "REAL"
	case atom.KindBool:
		return "BOOLEAN"
	case atom.KindString:
		return "CHAR_VAR"
	case atom.KindIdent:
		return "IDENTIFIER"
	case atom.KindRef:
		return fmt.Sprintf("REF_TO (%s.%s)", ts.RefType, ts.RefAttr)
	case atom.KindSet, atom.KindList:
		name := "SET_OF"
		if ts.Kind == atom.KindList {
			name = "LIST_OF"
		}
		card := ""
		if ts.MinCard != 0 || (ts.MaxCard != 0 && ts.MaxCard != VarCard) {
			hi := "VAR"
			if ts.MaxCard != VarCard {
				hi = fmt.Sprintf("%d", ts.MaxCard)
			}
			card = fmt.Sprintf(" (%d,%s)", ts.MinCard, hi)
		}
		return fmt.Sprintf("%s (%s)%s", name, ts.Elem, card)
	case atom.KindArray:
		return fmt.Sprintf("ARRAY_OF (%s, %d)", ts.Elem, ts.ArrayLen)
	case atom.KindRecord:
		parts := make([]string, len(ts.Fields))
		for i, f := range ts.Fields {
			parts[i] = fmt.Sprintf("%s: %s", f.Name, f.Type)
		}
		return "RECORD " + strings.Join(parts, ", ") + " END"
	default:
		return ts.Kind.String()
	}
}
