package catalog

import (
	"fmt"
	"sort"
	"sync"

	"prima/internal/access/addr"
)

// LDL structure definitions (§2.3). These are pure metadata; the access
// system owns the corresponding storage structures.

// AccessPathDef declares an access path over one or more attributes
// ("several access methods for one or more attributes permitting
// multidimensional access").
type AccessPathDef struct {
	Name     string   `json:"name"`
	AtomType string   `json:"atomType"`
	Attrs    []string `json:"attrs"`
	Method   string   `json:"method"` // "BTREE" (1 attr) or "GRID" (n attrs)
	Unique   bool     `json:"unique,omitempty"`
}

// SortOrderDef declares a redundant sort order ("sort orders to speed up
// sequential processing according to given sort criteria").
type SortOrderDef struct {
	ID       addr.StructID `json:"id"`
	Name     string        `json:"name"`
	AtomType string        `json:"atomType"`
	Attrs    []string      `json:"attrs"`
	Desc     []bool        `json:"desc,omitempty"`
}

// PartitionDef declares a vertical partition ("partitioning of physical
// records to improve clustering of frequently accessed attributes").
type PartitionDef struct {
	ID       addr.StructID `json:"id"`
	Name     string        `json:"name"`
	AtomType string        `json:"atomType"`
	Attrs    []string      `json:"attrs"`
}

// ClusterDef declares an atom-cluster type: the molecule structure whose
// atoms are materialized in physical contiguity (§3.2, Fig. 3.2).
type ClusterDef struct {
	ID       addr.StructID `json:"id"`
	Name     string        `json:"name"`
	Molecule *MoleculeType `json:"molecule"`
}

// RootType returns the cluster's characteristic root atom type.
func (c *ClusterDef) RootType() string { return c.Molecule.Root.AtomType }

// Schema is the catalog root: atom types, molecule types and LDL structure
// definitions. It is safe for concurrent use.
type Schema struct {
	mu         sync.RWMutex
	atomTypes  map[string]*AtomType
	byID       map[addr.TypeID]*AtomType
	molTypes   map[string]*MoleculeType
	accessPath map[string]*AccessPathDef
	sortOrders map[string]*SortOrderDef
	partitions map[string]*PartitionDef
	clusters   map[string]*ClusterDef

	nextTypeID   addr.TypeID
	nextStructID addr.StructID
	version      uint64 // bumped by every successful DDL mutation
}

// Version returns the schema's DDL mutation counter. Plan and statement
// caches key on it so any DDL invalidates them naturally.
func (s *Schema) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// NewSchema creates an empty schema.
func NewSchema() *Schema {
	return &Schema{
		atomTypes:    make(map[string]*AtomType),
		byID:         make(map[addr.TypeID]*AtomType),
		molTypes:     make(map[string]*MoleculeType),
		accessPath:   make(map[string]*AccessPathDef),
		sortOrders:   make(map[string]*SortOrderDef),
		partitions:   make(map[string]*PartitionDef),
		clusters:     make(map[string]*ClusterDef),
		nextTypeID:   1,
		nextStructID: 1, // StructID 0 is every atom type's primary structure
	}
}

// AddAtomType registers a new atom type and assigns its TypeID. Association
// symmetry is checked lazily by ResolveAssociations so DDL scripts may
// declare mutually referencing types in any order (Fig. 2.3 does).
func (s *Schema) AddAtomType(t *AtomType) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.atomTypes[t.Name]; dup {
		return fmt.Errorf("%w: atom type %s", ErrDuplicate, t.Name)
	}
	if t.attrIdx == nil {
		if err := t.build(); err != nil {
			return err
		}
	}
	t.ID = s.nextTypeID
	s.nextTypeID++
	s.atomTypes[t.Name] = t
	s.byID[t.ID] = t
	s.version++
	return nil
}

// DropAtomType removes an atom type. It fails while other types reference it
// or LDL structures depend on it.
func (s *Schema) DropAtomType(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.atomTypes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownType, name)
	}
	for _, other := range s.atomTypes {
		if other.Name == name {
			continue
		}
		if len(other.AttrsTargeting(name)) > 0 {
			return fmt.Errorf("%w: %s is referenced by %s", ErrInUse, name, other.Name)
		}
	}
	for _, m := range s.molTypes {
		for _, at := range m.AtomTypes() {
			if at == name {
				return fmt.Errorf("%w: %s is used by molecule type %s", ErrInUse, name, m.Name)
			}
		}
	}
	for _, d := range s.accessPath {
		if d.AtomType == name {
			return fmt.Errorf("%w: %s has access path %s", ErrInUse, name, d.Name)
		}
	}
	for _, d := range s.sortOrders {
		if d.AtomType == name {
			return fmt.Errorf("%w: %s has sort order %s", ErrInUse, name, d.Name)
		}
	}
	for _, d := range s.partitions {
		if d.AtomType == name {
			return fmt.Errorf("%w: %s has partition %s", ErrInUse, name, d.Name)
		}
	}
	for _, d := range s.clusters {
		for _, at := range d.Molecule.AtomTypes() {
			if at == name {
				return fmt.Errorf("%w: %s is clustered by %s", ErrInUse, name, d.Name)
			}
		}
	}
	delete(s.atomTypes, name)
	delete(s.byID, t.ID)
	s.version++
	return nil
}

// AtomType returns the named atom type.
func (s *Schema) AtomType(name string) (*AtomType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.atomTypes[name]
	return t, ok
}

// AtomTypeByID returns the atom type with the given TypeID.
func (s *Schema) AtomTypeByID(id addr.TypeID) (*AtomType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.byID[id]
	return t, ok
}

// AtomTypes returns all atom types sorted by name.
func (s *Schema) AtomTypes() []*AtomType {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*AtomType, 0, len(s.atomTypes))
	for _, t := range s.atomTypes {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResolveAssociations verifies that every reference attribute has a partner
// attribute of the target type referencing back — the system-enforced
// symmetry of §2.2 ("the referenced record must contain a back-reference
// that can be used in exactly the same way").
func (s *Schema) ResolveAssociations() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, t := range s.atomTypes {
		for _, i := range t.RefAttrs() {
			a := t.Attrs[i]
			tt, ta, _ := a.Type.RefTarget()
			target, ok := s.atomTypes[tt]
			if !ok {
				return fmt.Errorf("%w: %s.%s references unknown type %s", ErrUnknownType, t.Name, a.Name, tt)
			}
			back, ok := target.Attr(ta)
			if !ok {
				return fmt.Errorf("%w: %s.%s references %s.%s which does not exist", ErrUnknownAttr, t.Name, a.Name, tt, ta)
			}
			bt, ba, isRef := back.Type.RefTarget()
			if !isRef {
				return fmt.Errorf("%w: %s.%s is not a reference attribute (back of %s.%s)", ErrAsymmetric, tt, ta, t.Name, a.Name)
			}
			if bt != t.Name || ba != a.Name {
				return fmt.Errorf("%w: %s.%s -> %s.%s but %s.%s -> %s.%s", ErrAsymmetric,
					t.Name, a.Name, tt, ta, tt, ta, bt, ba)
			}
		}
	}
	return nil
}

// DefineMoleculeType validates and registers a named molecule type.
func (s *Schema) DefineMoleculeType(m *MoleculeType) error {
	if err := m.Validate(s); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.Name == "" {
		return fmt.Errorf("%w: molecule type needs a name", ErrBadMolecule)
	}
	if _, dup := s.molTypes[m.Name]; dup {
		return fmt.Errorf("%w: molecule type %s", ErrDuplicate, m.Name)
	}
	if _, clash := s.atomTypes[m.Name]; clash {
		return fmt.Errorf("%w: %s is already an atom type", ErrDuplicate, m.Name)
	}
	s.molTypes[m.Name] = m
	s.version++
	return nil
}

// DropMoleculeType removes a named molecule type.
func (s *Schema) DropMoleculeType(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.molTypes[name]; !ok {
		return fmt.Errorf("%w: molecule type %s", ErrUnknownType, name)
	}
	for _, d := range s.clusters {
		if d.Molecule.Name == name {
			return fmt.Errorf("%w: molecule type %s is clustered by %s", ErrInUse, name, d.Name)
		}
	}
	delete(s.molTypes, name)
	s.version++
	return nil
}

// MoleculeType returns the named molecule type.
func (s *Schema) MoleculeType(name string) (*MoleculeType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.molTypes[name]
	return m, ok
}

// MoleculeTypes returns all named molecule types sorted by name.
func (s *Schema) MoleculeTypes() []*MoleculeType {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*MoleculeType, 0, len(s.molTypes))
	for _, m := range s.molTypes {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// checkLDLName ensures LDL structure names are globally unique.
func (s *Schema) checkLDLNameLocked(name string) error {
	if _, dup := s.accessPath[name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	if _, dup := s.sortOrders[name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	if _, dup := s.partitions[name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	if _, dup := s.clusters[name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	return nil
}

// AddAccessPath validates and registers an access path definition.
func (s *Schema) AddAccessPath(d *AccessPathDef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLDLNameLocked(d.Name); err != nil {
		return err
	}
	t, ok := s.atomTypes[d.AtomType]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownType, d.AtomType)
	}
	if len(d.Attrs) == 0 {
		return fmt.Errorf("catalog: access path %s has no attributes", d.Name)
	}
	for _, a := range d.Attrs {
		if _, ok := t.AttrIndex(a); !ok {
			return fmt.Errorf("%w: %s.%s", ErrUnknownAttr, d.AtomType, a)
		}
	}
	switch d.Method {
	case "":
		if len(d.Attrs) == 1 {
			d.Method = "BTREE"
		} else {
			d.Method = "GRID"
		}
	case "BTREE":
		if len(d.Attrs) != 1 {
			return fmt.Errorf("catalog: access path %s: BTREE supports exactly one attribute", d.Name)
		}
	case "GRID":
	default:
		return fmt.Errorf("catalog: access path %s: unknown method %q", d.Name, d.Method)
	}
	s.accessPath[d.Name] = d
	s.version++
	return nil
}

// AddSortOrder validates and registers a sort order definition, assigning
// its structure id.
func (s *Schema) AddSortOrder(d *SortOrderDef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLDLNameLocked(d.Name); err != nil {
		return err
	}
	t, ok := s.atomTypes[d.AtomType]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownType, d.AtomType)
	}
	if len(d.Attrs) == 0 {
		return fmt.Errorf("catalog: sort order %s has no attributes", d.Name)
	}
	for _, a := range d.Attrs {
		if _, ok := t.AttrIndex(a); !ok {
			return fmt.Errorf("%w: %s.%s", ErrUnknownAttr, d.AtomType, a)
		}
	}
	if d.Desc == nil {
		d.Desc = make([]bool, len(d.Attrs))
	}
	if len(d.Desc) != len(d.Attrs) {
		return fmt.Errorf("catalog: sort order %s: %d directions for %d attributes", d.Name, len(d.Desc), len(d.Attrs))
	}
	d.ID = s.nextStructID
	s.nextStructID++
	s.sortOrders[d.Name] = d
	s.version++
	return nil
}

// AddPartition validates and registers a partition definition, assigning its
// structure id.
func (s *Schema) AddPartition(d *PartitionDef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLDLNameLocked(d.Name); err != nil {
		return err
	}
	t, ok := s.atomTypes[d.AtomType]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownType, d.AtomType)
	}
	if len(d.Attrs) == 0 {
		return fmt.Errorf("catalog: partition %s has no attributes", d.Name)
	}
	for _, a := range d.Attrs {
		if _, ok := t.AttrIndex(a); !ok {
			return fmt.Errorf("%w: %s.%s", ErrUnknownAttr, d.AtomType, a)
		}
	}
	d.ID = s.nextStructID
	s.nextStructID++
	s.partitions[d.Name] = d
	s.version++
	return nil
}

// AddCluster validates and registers an atom-cluster type, assigning its
// structure id.
func (s *Schema) AddCluster(d *ClusterDef) error {
	if err := d.Molecule.Validate(s); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLDLNameLocked(d.Name); err != nil {
		return err
	}
	d.ID = s.nextStructID
	s.nextStructID++
	s.clusters[d.Name] = d
	s.version++
	return nil
}

// DropLDL removes the named LDL structure of any kind and returns its
// definition for teardown by the access system.
func (s *Schema) DropLDL(name string) (interface{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.accessPath[name]; ok {
		delete(s.accessPath, name)
		s.version++
		return d, nil
	}
	if d, ok := s.sortOrders[name]; ok {
		delete(s.sortOrders, name)
		s.version++
		return d, nil
	}
	if d, ok := s.partitions[name]; ok {
		delete(s.partitions, name)
		s.version++
		return d, nil
	}
	if d, ok := s.clusters[name]; ok {
		delete(s.clusters, name)
		s.version++
		return d, nil
	}
	return nil, fmt.Errorf("%w: LDL structure %s", ErrUnknownType, name)
}

// AccessPath returns the named access path definition.
func (s *Schema) AccessPath(name string) (*AccessPathDef, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.accessPath[name]
	return d, ok
}

// AccessPathsFor returns access paths on the given atom type.
func (s *Schema) AccessPathsFor(atomType string) []*AccessPathDef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*AccessPathDef
	for _, d := range s.accessPath {
		if d.AtomType == atomType {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SortOrdersFor returns sort orders on the given atom type.
func (s *Schema) SortOrdersFor(atomType string) []*SortOrderDef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*SortOrderDef
	for _, d := range s.sortOrders {
		if d.AtomType == atomType {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PartitionsFor returns partitions on the given atom type.
func (s *Schema) PartitionsFor(atomType string) []*PartitionDef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*PartitionDef
	for _, d := range s.partitions {
		if d.AtomType == atomType {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ClustersForRoot returns atom-cluster types whose characteristic root is
// the given atom type.
func (s *Schema) ClustersForRoot(atomType string) []*ClusterDef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*ClusterDef
	for _, d := range s.clusters {
		if d.RootType() == atomType {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ClustersInvolving returns atom-cluster types that contain the given atom
// type anywhere in their molecule structure.
func (s *Schema) ClustersInvolving(atomType string) []*ClusterDef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*ClusterDef
	for _, d := range s.clusters {
		for _, at := range d.Molecule.AtomTypes() {
			if at == atomType {
				out = append(out, d)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Clusters returns all cluster definitions sorted by name.
func (s *Schema) Clusters() []*ClusterDef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*ClusterDef, 0, len(s.clusters))
	for _, d := range s.clusters {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
