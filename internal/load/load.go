// Package load is PRIMA's closed-loop traffic harness: N concurrent wire
// clients drive a configurable checkout/checkin/query/insert mix against a
// primad server (a remote one, or an in-process server the harness spins up
// itself), timing every operation client-side and asserting at the end that
// no acknowledged write was lost.
//
// The loss check is sound against sheds and retries because of the wire
// protocol's semantics: a shed response provably executed nothing (safe to
// retry, cannot duplicate), and an Exec whose connection died is never
// blindly retried (unknown outcome — the harness simply does not count it
// as acknowledged). Every client inserts unique serials from a disjoint
// range, so "zero loss" is literally: every serial whose INSERT was
// acknowledged is present in a final range checkout.
package load

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"prima"
	"prima/internal/obs"
	"prima/internal/wire"
)

// Op class names, used as report keys and metric name suffixes.
const (
	ClassInsert   = "insert"
	ClassQuery    = "query"
	ClassCheckout = "checkout"
	ClassCheckin  = "checkin"
)

var classes = []string{ClassInsert, ClassQuery, ClassCheckout, ClassCheckin}

// serialStride separates the per-client serial ranges; no client can insert
// anywhere near another's range within one run.
const serialStride = int64(10_000_000_000)

// Config tunes one harness run.
type Config struct {
	// Addr is the primad address to drive. Empty starts an in-process
	// server (WAL on unless NoWAL, backed by Dir or memory) and drives that.
	Addr string
	// Dir is the database directory for the in-process server (empty =
	// in-memory).
	Dir string
	// NoWAL disables the write-ahead log of the in-process server.
	NoWAL bool
	// Clients is the number of concurrent closed-loop clients (default 8).
	Clients int
	// Duration is how long to drive traffic (default 10s).
	Duration time.Duration
	// ReportEvery is the periodic report interval (0 = no periodic reports).
	ReportEvery time.Duration
	// InsertW, QueryW, CheckoutW, CheckinW weight the operation mix
	// (all zero = default 40/30/20/10).
	InsertW, QueryW, CheckoutW, CheckinW int
	// FaultLatencyProb/FaultLatency inject delay, and FaultResetProb injects
	// connection resets, into every client connection through a FaultPlan.
	FaultLatencyProb float64
	FaultLatency     time.Duration
	FaultResetProb   float64
	// Seed makes the op mix and fault schedule reproducible (default 1).
	Seed int64
	// SlowQuery arms the in-process server's slow-query tracing (default
	// 20ms, negative = off): every request is traced — so every response
	// carries a trace ID the report's worst-op lines can quote — but only
	// requests at least this slow are retained in the server's slow ring.
	// Ignored when Addr points at a remote server; that server's own
	// tracing flags decide.
	SlowQuery time.Duration
	// Out receives periodic and final reports (nil = io.Discard).
	Out io.Writer
}

func (c *Config) fill() {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.InsertW == 0 && c.QueryW == 0 && c.CheckoutW == 0 && c.CheckinW == 0 {
		c.InsertW, c.QueryW, c.CheckoutW, c.CheckinW = 40, 30, 20, 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SlowQuery == 0 {
		c.SlowQuery = 20 * time.Millisecond
	} else if c.SlowQuery < 0 {
		c.SlowQuery = 0
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

// ClassStats is the client-side outcome of one op class.
type ClassStats struct {
	Ops    uint64
	Errors uint64
	Hist   obs.HistSnapshot
	// Worst is the class's worst client-observed latency; WorstTrace is the
	// server trace ID of that op (empty when the server did not trace it),
	// the key to look its span tree up in /debug/slow or the slow wire op.
	Worst      time.Duration
	WorstTrace string
}

// Report is the final outcome of a run.
type Report struct {
	Duration  time.Duration
	TotalOps  uint64
	OpsPerSec float64
	Classes   map[string]ClassStats
	// Retries/Reconnects are summed over all clients.
	Retries    uint64
	Reconnects uint64
	// AckedWrites is the number of acknowledged INSERTs; LostWrites is how
	// many of them the final verification scan could not find. Zero or the
	// run failed.
	AckedWrites uint64
	LostWrites  uint64
	// ServerMetrics is the server's registry snapshot at the end of the run
	// (per-stage histograms, cache/WAL/wire counters).
	ServerMetrics *obs.MetricsSnapshot
}

// worker is one closed-loop client.
type worker struct {
	id    int
	c     *wire.Client
	rng   *rand.Rand
	base  int64   // serial range start (exclusive ownership)
	next  int64   // serials handed out so far
	acked []int64 // serials whose INSERT was acknowledged
	last  uint64  // last checked-out atom address (0 = none buffered)
}

// harness owns the shared state of one run.
type harness struct {
	cfg   Config
	reg   *obs.Registry // client-side metrics
	hists map[string]*obs.Histogram
	ops   map[string]*obs.Counter
	errs  map[string]*obs.Counter

	// worst tracks the slowest successful op per class and its server trace
	// ID, for the final report's worst-op lines.
	worstMu sync.Mutex
	worst   map[string]worstOp
}

type worstOp struct {
	dur     time.Duration
	traceID string
}

// noteWorst records an op as the class's worst when it is.
func (h *harness) noteWorst(class string, d time.Duration, traceID string) {
	h.worstMu.Lock()
	if d > h.worst[class].dur {
		h.worst[class] = worstOp{dur: d, traceID: traceID}
	}
	h.worstMu.Unlock()
}

// Run executes one harness run and returns the final report. The run itself
// only fails on setup errors; per-op errors are counted and reported.
func Run(cfg Config) (*Report, error) {
	cfg.fill()
	h := &harness{
		cfg:   cfg,
		reg:   obs.NewRegistry(),
		hists: map[string]*obs.Histogram{},
		ops:   map[string]*obs.Counter{},
		errs:  map[string]*obs.Counter{},
		worst: map[string]worstOp{},
	}
	for _, cl := range classes {
		h.hists[cl] = h.reg.Histogram("load_" + cl + "_ns")
		h.ops[cl] = h.reg.Counter("load_" + cl + "_ops")
		h.errs[cl] = h.reg.Counter("load_" + cl + "_errors")
	}

	addr := cfg.Addr
	var shutdown func()
	if addr == "" {
		db, err := prima.Open(prima.Config{Dir: cfg.Dir, WAL: !cfg.NoWAL,
			SlowQueryThreshold: cfg.SlowQuery})
		if err != nil {
			return nil, fmt.Errorf("load: open db: %w", err)
		}
		srv, err := wire.ServeConfig(db, "127.0.0.1:0", wire.ServerConfig{})
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("load: serve: %w", err)
		}
		addr = srv.Addr()
		shutdown = func() {
			srv.Close()
			db.Close()
		}
		defer shutdown()
	}

	var fp *wire.FaultPlan
	if cfg.FaultLatencyProb > 0 || cfg.FaultResetProb > 0 {
		fp = wire.NewFaultPlan(cfg.Seed)
		if cfg.FaultLatencyProb > 0 {
			fp.SetLatency(cfg.FaultLatencyProb, cfg.FaultLatency)
		}
		if cfg.FaultResetProb > 0 {
			fp.SetReset(cfg.FaultResetProb)
		}
	}
	dial := func() (*wire.Client, error) {
		ccfg := wire.ClientConfig{}
		if fp != nil {
			ccfg.Dialer = func(address string) (net.Conn, error) {
				conn, err := net.DialTimeout("tcp", address, 5*time.Second)
				if err != nil {
					return nil, err
				}
				return fp.Conn(conn), nil
			}
		}
		return wire.DialConfig(addr, ccfg)
	}

	// Setup and final verification run on an un-faulted control client: the
	// harness must distinguish "server lost the write" from "the harness
	// could not ask".
	ctl, err := wire.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("load: dial: %w", err)
	}
	defer ctl.Close()
	if err := ensureSchema(ctl); err != nil {
		return nil, err
	}

	workers := make([]*worker, cfg.Clients)
	for i := range workers {
		c, err := dial()
		if err != nil {
			return nil, fmt.Errorf("load: dial worker %d: %w", i, err)
		}
		defer c.Close()
		workers[i] = &worker{
			id:   i,
			c:    c,
			rng:  rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			base: int64(i+1) * serialStride,
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	stopReporter := make(chan struct{})
	var reporterWG sync.WaitGroup
	if cfg.ReportEvery > 0 {
		reporterWG.Add(1)
		go func() {
			defer reporterWG.Done()
			h.periodicReports(start, stopReporter)
		}()
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			h.drive(w, deadline)
		}(w)
	}
	wg.Wait()
	close(stopReporter)
	reporterWG.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Duration: elapsed,
		Classes:  map[string]ClassStats{},
	}
	for _, cl := range classes {
		cs := ClassStats{
			Ops:    h.ops[cl].Value(),
			Errors: h.errs[cl].Value(),
			Hist:   h.hists[cl].Snapshot(),
		}
		if wo := h.worst[cl]; wo.dur > 0 {
			cs.Worst, cs.WorstTrace = wo.dur, wo.traceID
		}
		rep.Classes[cl] = cs
		rep.TotalOps += cs.Ops
	}
	rep.OpsPerSec = float64(rep.TotalOps) / elapsed.Seconds()
	for _, w := range workers {
		r, rc := w.c.Retries()
		rep.Retries += r
		rep.Reconnects += rc
	}

	// Zero-loss verification: one range checkout per client, then set
	// membership of every acknowledged serial.
	for _, w := range workers {
		rep.AckedWrites += uint64(len(w.acked))
		if len(w.acked) == 0 {
			continue
		}
		lost, err := verifyRange(ctl, w)
		if err != nil {
			return nil, fmt.Errorf("load: verify client %d: %w", w.id, err)
		}
		rep.LostWrites += lost
	}

	if ms, err := ctl.Metrics(); err == nil {
		rep.ServerMetrics = ms
	}
	return rep, nil
}

// ensureSchema creates the harness's atom type and access path, probing
// first so re-runs against a persistent server are no-ops.
func ensureSchema(c *wire.Client) error {
	// Both statements run unconditionally: a pre-existing server may have the
	// part type but not the serial index, and without it every query op
	// degrades to a full scan that grows with the insert count.
	if _, err := c.Exec(`CREATE ATOM_TYPE part (part_id: IDENTIFIER, serial: INTEGER, grade: INTEGER)`); err != nil && !isDuplicate(err) {
		return fmt.Errorf("load: create type: %w", err)
	}
	if _, err := c.Exec(`CREATE ACCESS PATH load_part_serial ON part (serial) USING BTREE`); err != nil && !isDuplicate(err) {
		return fmt.Errorf("load: create access path: %w", err)
	}
	return nil
}

func isDuplicate(err error) bool {
	return err != nil && strings.Contains(err.Error(), "duplicate name")
}

// drive runs one worker's closed loop until the deadline.
func (h *harness) drive(w *worker, deadline time.Time) {
	total := h.cfg.InsertW + h.cfg.QueryW + h.cfg.CheckoutW + h.cfg.CheckinW
	for time.Now().Before(deadline) {
		r := w.rng.Intn(total)
		switch {
		case r < h.cfg.InsertW:
			h.timed(ClassInsert, w.insert)
		case r < h.cfg.InsertW+h.cfg.QueryW:
			h.timed(ClassQuery, w.query)
		case r < h.cfg.InsertW+h.cfg.QueryW+h.cfg.CheckoutW:
			h.timed(ClassCheckout, w.checkout)
		default:
			h.timed(ClassCheckin, w.checkin)
		}
	}
}

// timed runs one op, observing latency on success and counting errors. Each
// op returns the server trace ID of its round trip (empty when untraced) so
// the class's worst op can be looked up in the server's slow-query ring.
func (h *harness) timed(class string, op func() (string, error)) {
	t0 := time.Now()
	traceID, err := op()
	if err != nil {
		h.errs[class].Inc()
		return
	}
	el := time.Since(t0)
	h.hists[class].Observe(el.Nanoseconds())
	h.ops[class].Inc()
	h.noteWorst(class, el, traceID)
}

func (w *worker) insert() (string, error) {
	serial := w.base + w.next
	// The serial is burned whether or not the INSERT is acknowledged: an
	// unacknowledged attempt may still have landed, and reusing its serial
	// would make the verification set ambiguous.
	w.next++
	resp, err := w.c.Exec(fmt.Sprintf("INSERT INTO part (serial, grade) VALUES (%d, 0)", serial))
	if err != nil {
		return "", err
	}
	w.acked = append(w.acked, serial)
	return resp.TraceID, nil
}

// pickSerial returns a previously acknowledged serial, or the range base
// (selecting nothing) when no insert has been acknowledged yet.
func (w *worker) pickSerial() int64 {
	if len(w.acked) == 0 {
		return w.base
	}
	return w.acked[w.rng.Intn(len(w.acked))]
}

func (w *worker) query() (string, error) {
	resp, err := w.c.Exec(fmt.Sprintf("SELECT ALL FROM part WHERE serial = %d", w.pickSerial()))
	if err != nil {
		return "", err
	}
	return resp.TraceID, nil
}

func (w *worker) checkout() (string, error) {
	mols, traceID, err := w.c.CheckoutTraced(fmt.Sprintf("SELECT ALL FROM part WHERE serial = %d", w.pickSerial()))
	if err != nil {
		return "", err
	}
	if len(mols) > 0 && len(mols[0].Atoms) > 0 {
		w.last = mols[0].Atoms[0].Addr
	}
	return traceID, nil
}

func (w *worker) checkin() (string, error) {
	if _, ok := w.c.Local(w.last); !ok {
		// Nothing in the object buffer (first op, or the last checkin
		// consumed it): check a molecule out first, like an application
		// session would.
		if _, err := w.checkout(); err != nil {
			return "", err
		}
		if _, ok := w.c.Local(w.last); !ok {
			return "", nil // nothing inserted yet anywhere in this client's range
		}
	}
	if err := w.c.StageModify("part", w.last, "grade", strconv.Itoa(w.rng.Intn(10))); err != nil {
		return "", err
	}
	resp, err := w.c.Checkin()
	if err != nil {
		return "", err
	}
	return resp.TraceID, nil
}

// verifyRange checks that every serial the worker's INSERTs acknowledged is
// present, via one range checkout over the worker's private serial range.
func verifyRange(ctl *wire.Client, w *worker) (lost uint64, err error) {
	q := fmt.Sprintf("SELECT ALL FROM part WHERE serial >= %d AND serial < %d", w.base, w.base+w.next)
	mols, err := ctl.Checkout(q)
	if err != nil {
		return 0, err
	}
	present := make(map[int64]bool, len(mols))
	for _, m := range mols {
		for _, a := range m.Atoms {
			if s, perr := strconv.ParseInt(a.Values["serial"], 10, 64); perr == nil {
				present[s] = true
			}
		}
	}
	for _, s := range w.acked {
		if !present[s] {
			lost++
		}
	}
	return lost, nil
}

// periodicReports prints a one-line progress report every ReportEvery.
func (h *harness) periodicReports(start time.Time, stop <-chan struct{}) {
	tick := time.NewTicker(h.cfg.ReportEvery)
	defer tick.Stop()
	var lastOps uint64
	lastT := start
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			var total uint64
			for _, cl := range classes {
				total += h.ops[cl].Value()
			}
			rate := float64(total-lastOps) / now.Sub(lastT).Seconds()
			all := h.mergedHist()
			fmt.Fprintf(h.cfg.Out, "[%6.1fs] %8d ops (%7.0f/s) p50=%s p99=%s p999=%s\n",
				now.Sub(start).Seconds(), total, rate,
				fmtNs(all.P50), fmtNs(all.P99), fmtNs(all.P999))
			lastOps, lastT = total, now
		}
	}
}

// mergedHist merges all op-class histograms into one.
func (h *harness) mergedHist() obs.HistSnapshot {
	var all obs.HistSnapshot
	for _, cl := range classes {
		all = all.Merge(h.hists[cl].Snapshot())
	}
	return all
}

// MergedQuantiles returns the all-class client latency histogram of a
// finished run (for callers asserting on overall percentiles).
func (r *Report) MergedQuantiles() obs.HistSnapshot {
	var all obs.HistSnapshot
	for _, cs := range r.Classes {
		all = all.Merge(cs.Hist)
	}
	return all
}

// serverStages are the per-stage server histograms the final report breaks
// out, in pipeline order.
var serverStages = []string{
	"wire_exec_ns", "wire_checkout_ns",
	"core_parse_ns", "core_plan_ns", "core_assemble_ns",
	"access_decode_ns", "buffer_read_ns",
	"wal_append_ns", "wal_fsync_ns", "wal_flush_ns",
	"txn_commit_ns",
}

// Print renders the final report.
func (r *Report) Print(out io.Writer) {
	fmt.Fprintf(out, "\n=== primaload report (%.1fs) ===\n", r.Duration.Seconds())
	fmt.Fprintf(out, "total: %d ops, %.0f ops/s, %d retries, %d reconnects\n",
		r.TotalOps, r.OpsPerSec, r.Retries, r.Reconnects)
	fmt.Fprintf(out, "writes: %d acknowledged, %d lost\n", r.AckedWrites, r.LostWrites)
	fmt.Fprintf(out, "%-10s %10s %8s %10s %10s %10s %10s  %s\n", "class", "ops", "errs", "p50", "p99", "p999", "worst", "worst trace")
	for _, cl := range classes {
		cs := r.Classes[cl]
		trace := cs.WorstTrace
		if trace == "" {
			trace = "-"
		}
		fmt.Fprintf(out, "%-10s %10d %8d %10s %10s %10s %10s  %s\n",
			cl, cs.Ops, cs.Errors, fmtNs(cs.Hist.P50), fmtNs(cs.Hist.P99), fmtNs(cs.Hist.P999),
			fmtNs(float64(cs.Worst.Nanoseconds())), trace)
	}
	if r.ServerMetrics != nil {
		fmt.Fprintf(out, "server stages:\n")
		fmt.Fprintf(out, "%-18s %10s %10s %10s %10s\n", "stage", "count", "p50", "p99", "p999")
		for _, name := range serverStages {
			hs, ok := r.ServerMetrics.Hists[name]
			if !ok || hs.Count == 0 {
				continue
			}
			fmt.Fprintf(out, "%-18s %10d %10s %10s %10s\n",
				strings.TrimSuffix(name, "_ns"), hs.Count, fmtNs(hs.P50), fmtNs(hs.P99), fmtNs(hs.P999))
		}
		shed := r.ServerMetrics.Counter("wire_shed")
		if reqs := r.ServerMetrics.Counter("wire_requests"); reqs > 0 {
			fmt.Fprintf(out, "server: %d requests, %d shed (%.2f%%), %d panics\n",
				reqs, shed, 100*float64(shed)/float64(reqs+shed), r.ServerMetrics.Counter("wire_panics"))
		}
	}
}

// WriteCSV writes the merged client+server snapshot as flat CSV. Client
// metrics keep their load_ prefix; names are disjoint from server names.
func (r *Report) WriteCSV(out io.Writer) error {
	client := &obs.MetricsSnapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]obs.HistSnapshot{},
	}
	for _, cl := range classes {
		cs := r.Classes[cl]
		client.Counters["load_"+cl+"_ops"] = cs.Ops
		client.Counters["load_"+cl+"_errors"] = cs.Errors
		client.Hists["load_"+cl+"_ns"] = cs.Hist
	}
	return client.Merge(r.ServerMetrics).WriteCSV(out)
}

// fmtNs renders a nanosecond quantity with an adaptive unit.
func fmtNs(ns float64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.1fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fs", ns/1e9)
	}
}
