package load

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRunInProcess drives a short in-process run and checks the harness's
// own guarantees: ops happened in every class, latency was recorded, no
// acknowledged write went missing, and the server snapshot came back with
// the per-stage histograms.
func TestRunInProcess(t *testing.T) {
	var out bytes.Buffer
	rep, err := Run(Config{
		Clients:     4,
		Duration:    1500 * time.Millisecond,
		ReportEvery: 500 * time.Millisecond,
		Seed:        42,
		Out:         &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps == 0 {
		t.Fatal("no ops completed")
	}
	for _, cl := range classes {
		cs := rep.Classes[cl]
		if cs.Ops == 0 {
			t.Errorf("class %s: no ops", cl)
		}
		if cs.Ops > 0 && cs.Hist.Count == 0 {
			t.Errorf("class %s: ops but empty histogram", cl)
		}
	}
	if rep.AckedWrites == 0 {
		t.Fatal("no acknowledged writes")
	}
	if rep.LostWrites != 0 {
		t.Fatalf("%d acknowledged writes lost", rep.LostWrites)
	}
	if q := rep.MergedQuantiles(); q.P99 <= 0 {
		t.Fatal("empty merged p99")
	}
	if rep.ServerMetrics == nil {
		t.Fatal("no server metrics in report")
	}
	for _, stage := range []string{"core_parse_ns", "core_plan_ns", "core_assemble_ns", "access_decode_ns"} {
		if hs, ok := rep.ServerMetrics.Hists[stage]; !ok || hs.Count == 0 {
			t.Errorf("server stage %s: no samples", stage)
		}
	}
	if !strings.Contains(out.String(), "ops") {
		t.Error("periodic reports missing")
	}

	rep.Print(&out)
	if !strings.Contains(out.String(), "server stages:") {
		t.Error("final report missing server stage breakdown")
	}
	var csv bytes.Buffer
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "load_insert_ops") || !strings.Contains(csv.String(), "core_parse_ns") {
		t.Errorf("csv missing client or server metrics:\n%.400s", csv.String())
	}
}

// TestRunWithFaults injects latency and resets and still demands zero
// acknowledged-write loss — the property the harness exists to check.
func TestRunWithFaults(t *testing.T) {
	rep, err := Run(Config{
		Clients:          4,
		Duration:         1500 * time.Millisecond,
		Seed:             7,
		FaultLatencyProb: 0.01,
		FaultLatency:     500 * time.Microsecond,
		FaultResetProb:   0.003,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps == 0 {
		t.Fatal("no ops completed under faults")
	}
	if rep.AckedWrites == 0 {
		t.Fatal("no acknowledged writes under faults")
	}
	if rep.LostWrites != 0 {
		t.Fatalf("%d acknowledged writes lost under faults", rep.LostWrites)
	}
}
