// Package access implements PRIMA's access system (§3.2): an atom-oriented
// interface in the spirit of System R's RSS that offers direct access to
// atoms and atom sets, enforces referential integrity over the symmetric
// reference attributes, and maintains the redundant, LDL-declared tuning
// structures — access paths, sort orders, partitions and atom clusters —
// transparently below the data model interface.
package access

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prima/internal/access/addr"
	"prima/internal/access/btree"
	"prima/internal/access/mdindex"
	"prima/internal/access/record"
	"prima/internal/catalog"
	"prima/internal/obs"
	"prima/internal/storage/buffer"
	"prima/internal/storage/device"
	"prima/internal/storage/pageseq"
	"prima/internal/storage/segment"
	"prima/internal/storage/wal"
)

// Errors returned by the access system.
var (
	ErrNoAtom        = errors.New("access: atom does not exist")
	ErrBadRef        = errors.New("access: reference to missing or wrongly typed atom")
	ErrReadOnlyAttr  = errors.New("access: IDENTIFIER attributes cannot be modified")
	ErrUnknownStruct = errors.New("access: unknown storage structure")
)

// Config tunes a System.
type Config struct {
	// Dir is the database directory; empty means fully in-memory.
	Dir string
	// PageSize for primary containers (default 8K). Must be one of the
	// five file-manager block sizes.
	PageSize int
	// BufferBytes is the buffer pool budget (default 4 MiB).
	BufferBytes int64
	// Policy selects the replacement policy: "size-aware-lru" (default),
	// "partitioned-lru" or "classic-lru".
	Policy string
	// BufferShards is the number of lock stripes of the buffer pool
	// (rounded up to a power of two). 0 picks one stripe per CPU, capped
	// so every stripe still holds a useful number of pages; 1 disables
	// striping.
	BufferShards int
	// AtomCacheSize is the atom budget of the decoded-atom cache that sits
	// between the buffer pool and molecule assembly (0 picks
	// DefaultAtomCacheAtoms; negative disables the cache). Sized in atoms,
	// not bytes: a budget of the working set's atom count makes repeated
	// checkouts serve entirely from decoded memory.
	AtomCacheSize int
	// WAL enables the write-ahead log: mutations are logged before they
	// touch pages, commits become durable via group commit, and Open runs
	// crash recovery before serving requests.
	WAL bool
	// GroupCommitMaxWait bounds how long a committing transaction waits for
	// companions to share its fsync (default wal.DefaultGroupCommitMaxWait).
	GroupCommitMaxWait time.Duration
	// GroupCommitBatch caps how many commits share one fsync (default
	// wal.DefaultGroupCommitBatch).
	GroupCommitBatch int
	// WALSegmentBlocks sets the log segment size in 8K blocks (default
	// wal.DefaultSegmentBlocks).
	WALSegmentBlocks int
	// WALCheckpointBytes is the log growth between automatic checkpoints
	// (default wal.DefaultCheckpointBytes).
	WALCheckpointBytes int64
	// FileWrap, when set, interposes on every device the file manager
	// opens. Fault-injection tests use it to place crash-simulating
	// FaultDevices below the whole storage stack.
	FileWrap func(name string, d device.Device) device.Device
	// TraceSampleRate head-samples roughly 1-in-N requests into the recent
	// trace ring (0 = off).
	TraceSampleRate int
	// SlowQueryThreshold retains every request trace at least this slow in
	// the slow-query ring (0 = off). Setting it traces all requests.
	SlowQueryThreshold time.Duration
	// TraceLogf, when set, receives one structured line per slow query.
	TraceLogf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.PageSize == 0 {
		c.PageSize = device.B8K
	}
	if !device.ValidBlockSize(c.PageSize) {
		return device.ErrBadBlockSize
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 4 << 20
	}
	if c.Policy == "" {
		c.Policy = "size-aware-lru"
	}
	if c.BufferShards == 0 {
		c.BufferShards = runtime.NumCPU()
		if c.BufferShards > 16 {
			c.BufferShards = 16
		}
	}
	// The pool rounds the stripe count up to a power of two; round here
	// already so the per-stripe budget divides by the real count and the
	// aggregate stays within BufferBytes.
	c.BufferShards = buffer.RoundShards(c.BufferShards)
	// Every stripe must still hold a handful of the largest block-size
	// pages — structure segments (B*-trees, partitions) use fixed 4K pages
	// no matter what PageSize says — and a partitioned policy splits each
	// stripe further into one part per block size. Shrink the stripe count
	// until a stripe can serve what a single-stripe pool could.
	minPerShard := 8 * int64(device.B8K)
	if c.Policy == "partitioned-lru" {
		minPerShard = int64(len(device.BlockSizes)) * 4 * int64(device.B8K)
	}
	for c.BufferShards > 1 && c.BufferBytes/int64(c.BufferShards) < minPerShard {
		c.BufferShards /= 2
	}
	if c.AtomCacheSize == 0 {
		c.AtomCacheSize = DefaultAtomCacheAtoms
	}
	return nil
}

// makePool builds the (possibly lock-striped) buffer pool: the byte budget
// is divided evenly over the stripes and each stripe runs an independent
// instance of the configured replacement policy.
func (c *Config) makePool() (*buffer.Pool, error) {
	shards := c.BufferShards
	perShard := c.BufferBytes / int64(shards)
	factory, err := c.policyFactory(perShard)
	if err != nil {
		return nil, err
	}
	if shards == 1 {
		return buffer.NewPool(factory()), nil
	}
	return buffer.NewShardedPool(factory, shards), nil
}

func (c *Config) policyFactory(budget int64) (func() buffer.Policy, error) {
	switch c.Policy {
	case "size-aware-lru":
		return func() buffer.Policy { return buffer.NewSizeAwareLRU(budget) }, nil
	case "partitioned-lru":
		per := budget / int64(len(device.BlockSizes))
		return func() buffer.Policy {
			shares := make(map[int]int64, len(device.BlockSizes))
			for _, s := range device.BlockSizes {
				shares[s] = per
			}
			return buffer.NewPartitionedLRU(shares)
		}, nil
	case "classic-lru":
		n := int(budget / int64(c.PageSize))
		if n < 4 {
			n = 4
		}
		return func() buffer.Policy { return buffer.NewClassicLRU(n) }, nil
	default:
		return nil, fmt.Errorf("access: unknown buffer policy %q", c.Policy)
	}
}

// sortOrderStruct is a materialized sort order: a redundant copy of every
// atom of the type, plus a B*-tree over the composite sort key locating the
// copies in defined order.
type sortOrderStruct struct {
	def       *catalog.SortOrderDef
	container *record.Container
	tree      *btree.BTree
	attrIdxs  []int
	desc      bool
}

// partitionStruct is a vertical partition: records hold an attribute subset.
type partitionStruct struct {
	def       *catalog.PartitionDef
	container *record.Container
	attrIdxs  []int
}

// accessPathStruct is an access path: a B*-tree (one attribute) or grid
// file (several attributes) mapping keys to logical addresses.
type accessPathStruct struct {
	def      *catalog.AccessPathDef
	attrIdxs []int
	tree     *btree.BTree  // Method == BTREE
	grid     *mdindex.Grid // Method == GRID
}

// clusterStruct manages the occurrences of one atom-cluster type: one page
// sequence per characteristic atom (Fig. 3.2).
type clusterStruct struct {
	def *catalog.ClusterDef
	seg *segment.Segment
	// occurrences maps the cluster's root (characteristic) atom to the
	// header page of its page sequence.
	occurrences map[addr.LogicalAddr]uint32
	// seqs caches opened sequences (their header pages are hot during
	// cluster scans); invalidated on rebuild.
	seqs map[addr.LogicalAddr]*pageseq.Sequence
}

// System is the access system instance for one database.
type System struct {
	cfg    Config
	schema *catalog.Schema
	files  *device.Manager
	pool   *buffer.Pool
	dir    *addr.Directory

	// reg is the database-wide metrics registry: the access system owns it
	// because it sits below every other layer — the engine, transaction
	// manager and wire server all pull their handles from here so one
	// snapshot covers the whole stack. decodeNs times batched atom reads
	// (page fix + record decode), the stage molecule assembly fans out on.
	reg      *obs.Registry
	decodeNs *obs.Histogram

	// tracer owns per-request traces for the same reason reg owns metrics:
	// the access system sits below every layer, so the wire server, engine
	// and transaction manager all reach the one tracer through here.
	tracer *obs.Tracer

	// walSink is the span the write-ahead log attributes appended bytes to
	// while a traced statement executes (nil between traced statements).
	// Attribution is best-effort under concurrent writers: traced writers
	// each install their own span and the last store wins, which is the
	// accepted cost of keeping walAppend lock-free.
	walSink atomic.Pointer[obs.Span]

	// atoms is the decoded-atom cache (nil = disabled); swapped atomically
	// by SetAtomCacheSize. Its counters live here so statistics accumulate
	// across resizes.
	atoms   atomic.Pointer[atomCache]
	acStats acCounters

	// mv is the multi-version atom store backing snapshot reads; always
	// present (its cost is one atomic counter when no snapshot is open).
	mv *mvStore

	// wal is the write-ahead log (nil when Config.WAL is off). txidFn
	// attributes mutations to top-level transactions; walRecovering is set
	// only during the single-threaded recovery replay in Open, where the
	// Raw* operators must not re-log the history they are repeating.
	wal           *wal.Log
	walRecovering bool
	txidFn        atomic.Pointer[func() uint64]
	ckptMu        sync.Mutex
	walStop       chan struct{}
	walDone       chan struct{}
	// walCkptErr holds the outcome of the most recent checkpoint attempt
	// (nil on success): the operator-visible signal that log truncation has
	// stalled. See WALCheckpointErr.
	walCkptErr atomic.Pointer[error]

	mu          sync.RWMutex
	nextSegID   segment.ID
	segments    []*segment.Segment
	primaries   map[addr.TypeID]*record.Container
	primarySegs map[addr.TypeID]segment.ID
	sortOrders  map[addr.StructID]*sortOrderStruct
	partitions  map[addr.StructID]*partitionStruct
	accessPaths map[string]*accessPathStruct
	clusters    map[addr.StructID]*clusterStruct

	deferq *deferQueue
}

// Open creates or opens the access system for a database directory. When
// cfg.Dir is non-empty and contains a manifest, existing state is loaded.
func Open(cfg Config) (*System, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	pool, err := cfg.makePool()
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:         cfg,
		files:       device.NewManager(cfg.Dir),
		pool:        pool,
		reg:         obs.NewRegistry(),
		nextSegID:   1,
		primaries:   make(map[addr.TypeID]*record.Container),
		primarySegs: make(map[addr.TypeID]segment.ID),
		sortOrders:  make(map[addr.StructID]*sortOrderStruct),
		partitions:  make(map[addr.StructID]*partitionStruct),
		accessPaths: make(map[string]*accessPathStruct),
		clusters:    make(map[addr.StructID]*clusterStruct),
		deferq:      newDeferQueue(),
	}
	if cfg.FileWrap != nil {
		s.files.SetWrap(cfg.FileWrap)
	}
	s.decodeNs = s.reg.Histogram("access_decode_ns")
	s.tracer = obs.NewTracer(obs.TracerConfig{
		SampleRate:    cfg.TraceSampleRate,
		SlowThreshold: cfg.SlowQueryThreshold,
		Logf:          cfg.TraceLogf,
	})
	s.pool.SetMissHist(s.reg.Histogram("buffer_read_ns"))
	s.atoms.Store(newAtomCache(cfg.AtomCacheSize, cfg.BufferShards, nil, &s.acStats))
	s.mv = newMVStore()
	loaded := false
	if cfg.Dir != "" {
		if _, err := os.Stat(filepath.Join(cfg.Dir, "manifest.json")); err == nil {
			if err := s.load(); err != nil {
				return nil, err
			}
			loaded = true
		} else if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("access: create dir: %w", err)
		}
	}
	if !loaded {
		s.schema = catalog.NewSchema()
		s.dir = addr.NewDirectory()
	}
	if cfg.WAL {
		if err := s.openWAL(); err != nil {
			s.files.Close()
			return nil, err
		}
	}
	s.registerMetrics()
	return s, nil
}

// Obs exposes the database-wide metrics registry. Upper layers obtain their
// counter/histogram handles here so one Snapshot covers the whole stack.
func (s *System) Obs() *obs.Registry { return s.reg }

// Tracer exposes the database-wide request tracer (see obs.Tracer). Never
// nil after Open; whether it traces anything depends on its knobs.
func (s *System) Tracer() *obs.Tracer { return s.tracer }

// SetWALTraceSink installs (or, with nil, removes) the span that walAppend
// charges CtrWALBytes to. The engine brackets traced statement execution
// with it; see the walSink field for the concurrency caveat.
func (s *System) SetWALTraceSink(sp *obs.Span) { s.walSink.Store(sp) }

// Schema exposes the catalog.
func (s *System) Schema() *catalog.Schema { return s.schema }

// Directory exposes the addressing structure (read-mostly use by upper
// layers and tests).
func (s *System) Directory() *addr.Directory { return s.dir }

// Pool exposes the buffer pool (statistics for experiments).
func (s *System) Pool() *buffer.Pool { return s.pool }

// Files exposes the file manager (I/O statistics for experiments).
func (s *System) Files() *device.Manager { return s.files }

// newSegment creates a fresh segment with the given page size.
func (s *System) newSegment(name string, pageSize int, maxPages uint32) (*segment.Segment, error) {
	s.mu.Lock()
	id := s.nextSegID
	s.nextSegID++
	s.mu.Unlock()
	dev, err := s.files.Open(fmt.Sprintf("%s_%d.seg", name, id), pageSize)
	if err != nil {
		return nil, err
	}
	seg, err := segment.Create(dev, id, maxPages)
	if err != nil {
		return nil, err
	}
	s.pool.Register(seg)
	s.mu.Lock()
	s.segments = append(s.segments, seg)
	s.mu.Unlock()
	return seg, nil
}

// primary returns (creating on demand) the primary container of a type.
func (s *System) primary(t *catalog.AtomType) (*record.Container, error) {
	s.mu.RLock()
	c, ok := s.primaries[t.ID]
	s.mu.RUnlock()
	if ok {
		return c, nil
	}
	seg, err := s.newSegment("primary_"+t.Name, s.cfg.PageSize, 0)
	if err != nil {
		return nil, err
	}
	c, err = record.New(seg, s.pool)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if exist, ok := s.primaries[t.ID]; ok {
		s.mu.Unlock()
		return exist, nil
	}
	s.primaries[t.ID] = c
	s.primarySegs[t.ID] = seg.ID()
	s.mu.Unlock()
	return c, nil
}

// typeOf resolves and validates an atom type by name.
func (s *System) typeOf(name string) (*catalog.AtomType, error) {
	t, ok := s.schema.AtomType(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", catalog.ErrUnknownType, name)
	}
	return t, nil
}

// typeByID resolves an atom type by TypeID.
func (s *System) typeByID(id addr.TypeID) (*catalog.AtomType, error) {
	t, ok := s.schema.AtomTypeByID(id)
	if !ok {
		return nil, fmt.Errorf("%w: type id %d", catalog.ErrUnknownType, id)
	}
	return t, nil
}

// Count returns the number of live atoms of the named type (catalog
// statistics for the optimizer).
func (s *System) Count(typeName string) int {
	t, ok := s.schema.AtomType(typeName)
	if !ok {
		return 0
	}
	return s.dir.Count(t.ID)
}

// --- persistence -------------------------------------------------------------

// manifest is the JSON document tying together all on-disk state.
type manifest struct {
	NextSegID   segment.ID                    `json:"nextSegID"`
	PageSize    int                           `json:"pageSize"`
	Primaries   map[string]segment.ID         `json:"primaries"`   // type name -> segment
	SortOrders  map[string]sortOrderManifest  `json:"sortOrders"`  // name -> location
	Partitions  map[string]segment.ID         `json:"partitions"`  // name -> segment
	AccessPaths map[string]accessPathManifest `json:"accessPaths"` // name -> location
	Clusters    map[string]clusterManifest    `json:"clusters"`    // name -> location
}

type sortOrderManifest struct {
	ContainerSeg segment.ID `json:"containerSeg"`
	TreeSeg      segment.ID `json:"treeSeg"`
	TreeMeta     uint32     `json:"treeMeta"`
}

type accessPathManifest struct {
	TreeSeg  segment.ID `json:"treeSeg,omitempty"`
	TreeMeta uint32     `json:"treeMeta,omitempty"`
	GridFile string     `json:"gridFile,omitempty"`
}

type clusterManifest struct {
	Seg         segment.ID        `json:"seg"`
	Occurrences map[string]uint32 `json:"occurrences"` // "%d" addr -> header page
}

// Checkpoint makes the current state durable: it propagates deferred work,
// flushes the buffer pool, syncs every segment, snapshots the catalog,
// directory and manifest (temp-file + rename, so a crash never tears them),
// and — when the write-ahead log is on — marks the fuzzy checkpoint in the
// log so recovery can start from it and old segments can be recycled.
func (s *System) Checkpoint() error {
	err := s.checkpoint()
	if s.wal != nil {
		if err != nil {
			s.walCkptErr.Store(&err)
		} else {
			s.walCkptErr.Store(nil)
		}
	}
	return err
}

func (s *System) checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	var token *wal.CheckpointToken
	if s.wal != nil {
		token = s.wal.BeginCheckpoint()
	}
	if err := s.PropagateDeferred(); err != nil {
		return err
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	s.mu.RLock()
	segs := append([]*segment.Segment(nil), s.segments...)
	s.mu.RUnlock()
	for _, seg := range segs {
		if err := seg.Sync(); err != nil {
			return err
		}
	}
	if s.cfg.Dir == "" {
		if err := s.files.Sync(); err != nil {
			return err
		}
		if s.wal != nil {
			return s.wal.EndCheckpoint(token)
		}
		return nil
	}
	schemaData, err := s.schema.Save()
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(s.cfg.Dir, "schema.json"), schemaData); err != nil {
		return fmt.Errorf("access: write schema: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(s.cfg.Dir, "directory.snap"), s.dir.Snapshot()); err != nil {
		return fmt.Errorf("access: write directory: %w", err)
	}

	s.mu.RLock()
	m := manifest{
		NextSegID:   s.nextSegID,
		PageSize:    s.cfg.PageSize,
		Primaries:   map[string]segment.ID{},
		SortOrders:  map[string]sortOrderManifest{},
		Partitions:  map[string]segment.ID{},
		AccessPaths: map[string]accessPathManifest{},
		Clusters:    map[string]clusterManifest{},
	}
	for tid, segID := range s.primarySegs {
		if t, ok := s.schema.AtomTypeByID(tid); ok {
			m.Primaries[t.Name] = segID
		}
	}
	for _, so := range s.sortOrders {
		m.SortOrders[so.def.Name] = sortOrderManifest{
			ContainerSeg: so.container.Segment().ID(),
			TreeSeg:      so.tree.Segment().ID(),
			TreeMeta:     so.tree.MetaPage(),
		}
	}
	for _, p := range s.partitions {
		m.Partitions[p.def.Name] = p.container.Segment().ID()
	}
	for name, ap := range s.accessPaths {
		am := accessPathManifest{}
		if ap.tree != nil {
			am.TreeSeg = ap.tree.Segment().ID()
			am.TreeMeta = ap.tree.MetaPage()
		} else {
			am.GridFile = "grid_" + name + ".snap"
			if err := writeFileAtomic(filepath.Join(s.cfg.Dir, am.GridFile), ap.grid.Snapshot()); err != nil {
				s.mu.RUnlock()
				return fmt.Errorf("access: write grid: %w", err)
			}
		}
		m.AccessPaths[name] = am
	}
	for _, cl := range s.clusters {
		cm := clusterManifest{Seg: cl.seg.ID(), Occurrences: map[string]uint32{}}
		for a, hp := range cl.occurrences {
			cm.Occurrences[fmt.Sprintf("%d", uint64(a))] = hp
		}
		m.Clusters[cl.def.Name] = cm
	}
	s.mu.RUnlock()

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(s.cfg.Dir, "manifest.json"), data); err != nil {
		return fmt.Errorf("access: write manifest: %w", err)
	}
	if err := s.files.Sync(); err != nil {
		return err
	}
	if s.wal != nil {
		return s.wal.EndCheckpoint(token)
	}
	return nil
}

// load restores state from the database directory.
func (s *System) load() error {
	dir := s.cfg.Dir
	schemaData, err := os.ReadFile(filepath.Join(dir, "schema.json"))
	if err != nil {
		return fmt.Errorf("access: read schema: %w", err)
	}
	if s.schema, err = catalog.Load(schemaData); err != nil {
		return err
	}
	dirData, err := os.ReadFile(filepath.Join(dir, "directory.snap"))
	if err != nil {
		return fmt.Errorf("access: read directory: %w", err)
	}
	if s.dir, err = addr.LoadSnapshot(dirData); err != nil {
		return err
	}
	manData, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return fmt.Errorf("access: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(manData, &m); err != nil {
		return fmt.Errorf("access: parse manifest: %w", err)
	}
	s.nextSegID = m.NextSegID
	s.cfg.PageSize = m.PageSize

	openSeg := func(id segment.ID, name string, pageSize int) (*segment.Segment, error) {
		dev, err := s.files.Open(fmt.Sprintf("%s_%d.seg", name, id), pageSize)
		if err != nil {
			return nil, err
		}
		seg, err := segment.Open(dev, id)
		if err != nil {
			return nil, err
		}
		s.pool.Register(seg)
		s.segments = append(s.segments, seg)
		return seg, nil
	}

	for typeName, segID := range m.Primaries {
		t, ok := s.schema.AtomType(typeName)
		if !ok {
			return fmt.Errorf("access: manifest names unknown type %s", typeName)
		}
		seg, err := openSeg(segID, "primary_"+typeName, s.cfg.PageSize)
		if err != nil {
			return err
		}
		c, err := record.New(seg, s.pool)
		if err != nil {
			return err
		}
		s.primaries[t.ID] = c
		s.primarySegs[t.ID] = segID
	}
	for name, sm := range m.SortOrders {
		def, ok := s.findSortOrderDef(name)
		if !ok {
			return fmt.Errorf("access: manifest names unknown sort order %s", name)
		}
		cseg, err := openSeg(sm.ContainerSeg, "sortorder_"+name, s.cfg.PageSize)
		if err != nil {
			return err
		}
		cont, err := record.New(cseg, s.pool)
		if err != nil {
			return err
		}
		tseg, err := openSeg(sm.TreeSeg, "sorttree_"+name, device.B4K)
		if err != nil {
			return err
		}
		tree, err := btree.Open(tseg, s.pool, sm.TreeMeta)
		if err != nil {
			return err
		}
		so, err := s.bindSortOrder(def, cont, tree)
		if err != nil {
			return err
		}
		s.sortOrders[def.ID] = so
	}
	for name, segID := range m.Partitions {
		def, ok := s.findPartitionDef(name)
		if !ok {
			return fmt.Errorf("access: manifest names unknown partition %s", name)
		}
		seg, err := openSeg(segID, "partition_"+name, device.B4K)
		if err != nil {
			return err
		}
		cont, err := record.New(seg, s.pool)
		if err != nil {
			return err
		}
		p, err := s.bindPartition(def, cont)
		if err != nil {
			return err
		}
		s.partitions[def.ID] = p
	}
	for name, am := range m.AccessPaths {
		def, ok := s.schema.AccessPath(name)
		if !ok {
			return fmt.Errorf("access: manifest names unknown access path %s", name)
		}
		ap, err := s.bindAccessPath(def)
		if err != nil {
			return err
		}
		if am.GridFile != "" {
			data, err := os.ReadFile(filepath.Join(dir, am.GridFile))
			if err != nil {
				return fmt.Errorf("access: read grid: %w", err)
			}
			if ap.grid, err = mdindex.Load(data); err != nil {
				return err
			}
		} else {
			tseg, err := openSeg(am.TreeSeg, "appath_"+name, device.B4K)
			if err != nil {
				return err
			}
			if ap.tree, err = btree.Open(tseg, s.pool, am.TreeMeta); err != nil {
				return err
			}
		}
		s.accessPaths[name] = ap
	}
	for name, cm := range m.Clusters {
		def, ok := s.findClusterDef(name)
		if !ok {
			return fmt.Errorf("access: manifest names unknown cluster %s", name)
		}
		seg, err := openSeg(cm.Seg, "cluster_"+name, s.cfg.PageSize)
		if err != nil {
			return err
		}
		cl := &clusterStruct{def: def, seg: seg, occurrences: map[addr.LogicalAddr]uint32{}, seqs: map[addr.LogicalAddr]*pageseq.Sequence{}}
		for k, hp := range cm.Occurrences {
			var u uint64
			if _, err := fmt.Sscanf(k, "%d", &u); err != nil {
				return fmt.Errorf("access: bad cluster occurrence key %q", k)
			}
			cl.occurrences[addr.LogicalAddr(u)] = hp
		}
		s.clusters[def.ID] = cl
	}
	return nil
}

func (s *System) findSortOrderDef(name string) (*catalog.SortOrderDef, bool) {
	for _, t := range s.schema.AtomTypes() {
		for _, d := range s.schema.SortOrdersFor(t.Name) {
			if d.Name == name {
				return d, true
			}
		}
	}
	return nil, false
}

func (s *System) findPartitionDef(name string) (*catalog.PartitionDef, bool) {
	for _, t := range s.schema.AtomTypes() {
		for _, d := range s.schema.PartitionsFor(t.Name) {
			if d.Name == name {
				return d, true
			}
		}
	}
	return nil, false
}

func (s *System) findClusterDef(name string) (*catalog.ClusterDef, bool) {
	for _, d := range s.schema.Clusters() {
		if d.Name == name {
			return d, true
		}
	}
	return nil, false
}

// Close checkpoints and releases all resources. It presses on through
// individual failures — a crashed fault-injected store must still release
// every goroutine and file handle — and reports them joined.
func (s *System) Close() error {
	if s.walStop != nil {
		close(s.walStop)
		<-s.walDone
		s.walStop = nil
	}
	var errs []error
	if err := s.Checkpoint(); err != nil {
		errs = append(errs, err)
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := s.pool.Close(); err != nil {
		errs = append(errs, err)
	}
	if err := s.files.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
