package access

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/access/mdindex"
	"prima/internal/catalog"
)

// testSchema installs a small two-type schema with an n:m association
// (person.knows <-> person.known_by is deliberately NOT used; we use
// doc/author to exercise cross-type n:m) plus scalars for indexing.
func newSystem(t testing.TB) *System {
	t.Helper()
	s, err := Open(Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	doc, err := catalog.NewAtomType("doc", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "title", Type: catalog.SpecString()},
		{Name: "pages", Type: catalog.SpecInt()},
		{Name: "score", Type: catalog.SpecReal()},
		{Name: "authors", Type: catalog.SpecSetOf(catalog.SpecRef("author", "docs"), 0, catalog.VarCard)},
	}, []string{"pages"})
	if err != nil {
		t.Fatalf("NewAtomType: %v", err)
	}
	author, err := catalog.NewAtomType("author", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "name", Type: catalog.SpecString()},
		{Name: "docs", Type: catalog.SpecSetOf(catalog.SpecRef("doc", "authors"), 0, catalog.VarCard)},
	}, nil)
	if err != nil {
		t.Fatalf("NewAtomType: %v", err)
	}
	if err := s.Schema().AddAtomType(doc); err != nil {
		t.Fatalf("AddAtomType: %v", err)
	}
	if err := s.Schema().AddAtomType(author); err != nil {
		t.Fatalf("AddAtomType: %v", err)
	}
	if err := s.Schema().ResolveAssociations(); err != nil {
		t.Fatalf("ResolveAssociations: %v", err)
	}
	return s
}

func TestInsertGet(t *testing.T) {
	s := newSystem(t)
	a, err := s.Insert("doc", map[string]atom.Value{
		"title": atom.Str("PRIMA"),
		"pages": atom.Int(10),
		"score": atom.Real(4.5),
	})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	at, err := s.Get(a, nil)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if v, _ := at.Value("title"); v.S != "PRIMA" {
		t.Fatalf("title = %v", v)
	}
	if v, _ := at.Value("id"); v.A != a {
		t.Fatalf("IDENTIFIER = %v, want %v", v.A, a)
	}
	// Projection.
	proj, err := s.Get(a, []string{"pages"})
	if err != nil {
		t.Fatalf("Get projected: %v", err)
	}
	if v, _ := proj.Value("pages"); v.I != 10 {
		t.Fatalf("projected pages = %v", v)
	}
	if v, _ := proj.Value("title"); !v.IsNull() {
		t.Fatalf("unprojected attr not NULL: %v", v)
	}

	// Error paths.
	if _, err := s.Insert("ghost", nil); !errors.Is(err, catalog.ErrUnknownType) {
		t.Fatalf("Insert unknown type = %v", err)
	}
	if _, err := s.Insert("doc", map[string]atom.Value{"nope": atom.Int(1)}); !errors.Is(err, catalog.ErrUnknownAttr) {
		t.Fatalf("Insert unknown attr = %v", err)
	}
	if _, err := s.Insert("doc", map[string]atom.Value{"id": atom.Ident(1)}); !errors.Is(err, ErrReadOnlyAttr) {
		t.Fatalf("Insert with IDENTIFIER = %v", err)
	}
	if _, err := s.Insert("doc", map[string]atom.Value{"pages": atom.Str("x")}); !errors.Is(err, catalog.ErrTypeCheck) {
		t.Fatalf("Insert bad type = %v", err)
	}
	if _, err := s.Get(addr.New(99, 1), nil); err == nil {
		t.Fatal("Get of unknown type succeeded")
	}
}

func TestBackReferenceMaintenance(t *testing.T) {
	s := newSystem(t)
	a1, _ := s.Insert("author", map[string]atom.Value{"name": atom.Str("Härder")})
	a2, _ := s.Insert("author", map[string]atom.Value{"name": atom.Str("Mitschang")})

	// Insert a doc referencing both authors: back-refs must appear.
	d, err := s.Insert("doc", map[string]atom.Value{
		"title":   atom.Str("MAD model"),
		"authors": atom.RefSet(a1, a2),
	})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	for _, a := range []addr.LogicalAddr{a1, a2} {
		at, _ := s.Get(a, nil)
		if v, _ := at.Value("docs"); !v.ContainsRef(d) {
			t.Fatalf("author %v missing back-reference to %v", a, d)
		}
	}

	// Referencing a missing atom fails.
	if _, err := s.Insert("doc", map[string]atom.Value{
		"authors": atom.RefSet(addr.New(a1.Type(), 9999)),
	}); !errors.Is(err, ErrBadRef) {
		t.Fatalf("dangling ref = %v, want ErrBadRef", err)
	}
	// Referencing the wrong type fails.
	if _, err := s.Insert("doc", map[string]atom.Value{
		"authors": atom.RefSet(d), // a doc, not an author
	}); !errors.Is(err, ErrBadRef) {
		t.Fatalf("wrong-type ref = %v, want ErrBadRef", err)
	}

	// Disconnect removes both directions.
	if err := s.Disconnect(d, "authors", a1); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	dAt, _ := s.Get(d, nil)
	if v, _ := dAt.Value("authors"); v.ContainsRef(a1) {
		t.Fatal("forward reference survives Disconnect")
	}
	a1At, _ := s.Get(a1, nil)
	if v, _ := a1At.Value("docs"); v.ContainsRef(d) {
		t.Fatal("back reference survives Disconnect")
	}

	// Connect from the *other* side: symmetry works in both directions.
	if err := s.Connect(a1, "docs", d); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	dAt, _ = s.Get(d, nil)
	if v, _ := dAt.Value("authors"); !v.ContainsRef(a1) {
		t.Fatal("Connect from partner side did not maintain forward ref")
	}

	// Delete removes the atom from all partners.
	if err := s.Delete(d); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	for _, a := range []addr.LogicalAddr{a1, a2} {
		at, _ := s.Get(a, nil)
		if v, _ := at.Value("docs"); v.ContainsRef(d) {
			t.Fatalf("author %v still references deleted doc", a)
		}
	}
	if _, err := s.Get(d, nil); err == nil {
		t.Fatal("deleted atom still readable")
	}
}

func TestUpdateRefDiff(t *testing.T) {
	s := newSystem(t)
	a1, _ := s.Insert("author", map[string]atom.Value{"name": atom.Str("A")})
	a2, _ := s.Insert("author", map[string]atom.Value{"name": atom.Str("B")})
	a3, _ := s.Insert("author", map[string]atom.Value{"name": atom.Str("C")})
	d, _ := s.Insert("doc", map[string]atom.Value{"authors": atom.RefSet(a1, a2)})

	// Replace {a1,a2} with {a2,a3}.
	if err := s.Update(d, map[string]atom.Value{"authors": atom.RefSet(a2, a3)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	check := func(a addr.LogicalAddr, want bool) {
		t.Helper()
		at, _ := s.Get(a, nil)
		v, _ := at.Value("docs")
		if v.ContainsRef(d) != want {
			t.Fatalf("author %v back-ref = %v, want %v", a, v.ContainsRef(d), want)
		}
	}
	check(a1, false)
	check(a2, true)
	check(a3, true)
}

func TestAtomTypeScanWithSSA(t *testing.T) {
	s := newSystem(t)
	for i := 0; i < 20; i++ {
		if _, err := s.Insert("doc", map[string]atom.Value{
			"pages": atom.Int(int64(i)),
			"title": atom.Str("t"),
		}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	var got []int64
	err := s.AtomTypeScan("doc", SSA{{Attr: "pages", Op: OpGE, Value: atom.Int(15)}}, nil, func(at *Atom) bool {
		v, _ := at.Value("pages")
		got = append(got, v.I)
		return true
	})
	if err != nil {
		t.Fatalf("AtomTypeScan: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("SSA scan returned %d atoms, want 5", len(got))
	}
	// System-defined order = insertion order.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("atom-type scan out of system-defined order")
		}
	}

	// EMPTY predicate on a repeating group.
	n := 0
	err = s.AtomTypeScan("doc", SSA{{Attr: "authors", Op: OpEmpty}}, nil, func(*Atom) bool {
		n++
		return true
	})
	if err != nil || n != 20 {
		t.Fatalf("EMPTY scan = %d, %v", n, err)
	}
}

func TestAccessPathMaintenance(t *testing.T) {
	s := newSystem(t)
	var docs []addr.LogicalAddr
	for i := 0; i < 10; i++ {
		d, _ := s.Insert("doc", map[string]atom.Value{"pages": atom.Int(int64(i * 10))})
		docs = append(docs, d)
	}
	// Create after the fact: backfill must index existing atoms.
	if err := s.CreateAccessPath(&catalog.AccessPathDef{
		Name: "doc_pages", AtomType: "doc", Attrs: []string{"pages"},
	}); err != nil {
		t.Fatalf("CreateAccessPath: %v", err)
	}
	found, err := s.AccessPathSearch("doc_pages", []atom.Value{atom.Int(50)})
	if err != nil || len(found) != 1 || found[0] != docs[5] {
		t.Fatalf("AccessPathSearch = %v, %v", found, err)
	}

	// Update repositions the entry.
	if err := s.Update(docs[5], map[string]atom.Value{"pages": atom.Int(555)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	found, _ = s.AccessPathSearch("doc_pages", []atom.Value{atom.Int(50)})
	if len(found) != 0 {
		t.Fatal("stale index entry after update")
	}
	found, _ = s.AccessPathSearch("doc_pages", []atom.Value{atom.Int(555)})
	if len(found) != 1 {
		t.Fatal("index not updated with new key")
	}

	// Delete drops the entry.
	if err := s.Delete(docs[5]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	found, _ = s.AccessPathSearch("doc_pages", []atom.Value{atom.Int(555)})
	if len(found) != 0 {
		t.Fatal("index entry survives delete")
	}

	// New inserts are indexed.
	d, _ := s.Insert("doc", map[string]atom.Value{"pages": atom.Int(42)})
	found, _ = s.AccessPathSearch("doc_pages", []atom.Value{atom.Int(42)})
	if len(found) != 1 || found[0] != d {
		t.Fatal("new insert not indexed")
	}
}

func TestGridAccessPath(t *testing.T) {
	s := newSystem(t)
	if err := s.CreateAccessPath(&catalog.AccessPathDef{
		Name: "doc_multi", AtomType: "doc", Attrs: []string{"pages", "score"},
	}); err != nil {
		t.Fatalf("CreateAccessPath: %v", err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Insert("doc", map[string]atom.Value{
			"pages": atom.Int(int64(i % 10)),
			"score": atom.Real(float64(i) / 10),
		}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	lo, hi := atom.Int(3), atom.Int(5)
	slo, shi := atom.Real(1.0), atom.Real(3.0)
	want := 0
	s.AtomTypeScan("doc", nil, nil, func(at *Atom) bool {
		p, _ := at.Value("pages")
		sc, _ := at.Value("score")
		if p.I >= 3 && p.I <= 5 && sc.F >= 1.0 && sc.F <= 3.0 {
			want++
		}
		return true
	})
	n := 0
	err := s.AccessPathScan("doc_multi",
		[]mdindex.Range{{Start: &lo, Stop: &hi}, {Start: &slo, Stop: &shi}},
		func(keys []atom.Value, a addr.LogicalAddr) bool {
			n++
			return true
		})
	if err != nil {
		t.Fatalf("AccessPathScan: %v", err)
	}
	if n != want || n == 0 {
		t.Fatalf("grid scan = %d hits, brute force = %d", n, want)
	}
}

// checkSymmetry verifies the central MAD invariant: for every reference
// attribute, a -> b implies b's back attribute contains a, and vice versa.
func checkSymmetry(t testing.TB, s *System) {
	t.Helper()
	for _, at := range s.Schema().AtomTypes() {
		var fail error
		s.AtomTypeScan(at.Name, nil, nil, func(a *Atom) bool {
			for _, i := range at.RefAttrs() {
				_, backAttr, _ := at.Attrs[i].Type.RefTarget()
				for _, target := range a.Values[i].Refs() {
					p, err := s.Get(target, nil)
					if err != nil {
						fail = err
						return false
					}
					bv, ok := p.Value(backAttr)
					if !ok || !bv.ContainsRef(a.Addr) {
						fail = errorsNew(a.Addr, at.Attrs[i].Name, target)
						return false
					}
				}
			}
			return true
		})
		if fail != nil {
			t.Fatalf("symmetry violated: %v", fail)
		}
	}
}

func errorsNew(a addr.LogicalAddr, attr string, target addr.LogicalAddr) error {
	return errors.New("missing back-reference: " + a.String() + "." + attr + " -> " + target.String())
}

// Property: under arbitrary random sequences of insert / connect /
// disconnect / update / delete, reference symmetry always holds — the
// paper's "system-enforced integrity".
func TestSymmetryQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newSystem(t)
		var docs, authors []addr.LogicalAddr
		for op := 0; op < 120; op++ {
			switch rng.Intn(6) {
			case 0:
				d, err := s.Insert("doc", map[string]atom.Value{"pages": atom.Int(int64(rng.Intn(100)))})
				if err != nil {
					return false
				}
				docs = append(docs, d)
			case 1:
				a, err := s.Insert("author", map[string]atom.Value{"name": atom.Str("x")})
				if err != nil {
					return false
				}
				authors = append(authors, a)
			case 2: // connect random doc-author pair (either side)
				if len(docs) == 0 || len(authors) == 0 {
					continue
				}
				d := docs[rng.Intn(len(docs))]
				a := authors[rng.Intn(len(authors))]
				var err error
				if rng.Intn(2) == 0 {
					err = s.Connect(d, "authors", a)
				} else {
					err = s.Connect(a, "docs", d)
				}
				if err != nil {
					return false
				}
			case 3: // disconnect
				if len(docs) == 0 || len(authors) == 0 {
					continue
				}
				d := docs[rng.Intn(len(docs))]
				a := authors[rng.Intn(len(authors))]
				if err := s.Disconnect(d, "authors", a); err != nil {
					return false
				}
			case 4: // scalar update
				if len(docs) == 0 {
					continue
				}
				d := docs[rng.Intn(len(docs))]
				if err := s.Update(d, map[string]atom.Value{"pages": atom.Int(int64(rng.Intn(100)))}); err != nil {
					return false
				}
			case 5: // delete
				if rng.Intn(2) == 0 && len(docs) > 0 {
					i := rng.Intn(len(docs))
					if err := s.Delete(docs[i]); err != nil {
						return false
					}
					docs = append(docs[:i], docs[i+1:]...)
				} else if len(authors) > 0 {
					i := rng.Intn(len(authors))
					if err := s.Delete(authors[i]); err != nil {
						return false
					}
					authors = append(authors[:i], authors[i+1:]...)
				}
			}
		}
		checkSymmetry(t, s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
