package access

import (
	"fmt"
	"time"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/obs"
)

// GetBatch reads many atoms in one access-system call, aligned with the
// input addresses. Decoded-atom cache hits are filled in first; the misses
// are grouped by primary container and by page, so one directory lookup and
// one buffer fix serve every atom that shares a page — the set-oriented
// counterpart of Get that molecule assembly uses for each level's fan-out.
// Missed records are decoded with zero-copy strings — through the batched
// arena entry point when nothing is retained (cache disabled), per record
// when publishing to the cache under the version stamps captured before the
// page reads.
//
// attrs follows Get's contract (nil materializes all attributes). Projected
// reads are routed per atom, because partition coverage is decided per
// record; the batch win lives on the full-width assembly path.
func (s *System) GetBatch(addrs []addr.LogicalAddr, attrs []string) ([]*Atom, error) {
	return s.getBatch(addrs, attrs, nil)
}

// getBatch is GetBatch with an optional trace span: cache hits/misses,
// decoded atom counts and distinct pages touched are charged to sp (nil-safe
// no-ops when the request is untraced).
func (s *System) getBatch(addrs []addr.LogicalAddr, attrs []string, sp *obs.Span) ([]*Atom, error) {
	out := make([]*Atom, len(addrs))
	if len(addrs) == 0 {
		return out, nil
	}
	start := time.Now()
	defer func() {
		el := time.Since(start).Nanoseconds()
		s.decodeNs.Observe(el)
		sp.Add(obs.CtrDecodeNs, el)
	}()
	if attrs != nil {
		for i, a := range addrs {
			at, err := s.Get(a, attrs)
			if err != nil {
				return nil, err
			}
			out[i] = at
		}
		sp.Add(obs.CtrAtomsDecoded, int64(len(addrs)))
		return out, nil
	}

	cache := s.cache()

	// Group cache misses by atom type: each type owns one primary container.
	byType := make(map[addr.TypeID][]int, 2)
	typeOrder := make([]addr.TypeID, 0, 2)
	var hits int64
	for i, a := range addrs {
		if cache != nil {
			if at, ok := cache.get(a); ok {
				if at == nil {
					// Negative hit: the address is known not to exist.
					return nil, fmt.Errorf("%w: %v", ErrNoAtom, a)
				}
				out[i] = at
				hits++
				continue
			}
		}
		tid := a.Type()
		if _, ok := byType[tid]; !ok {
			typeOrder = append(typeOrder, tid)
		}
		byType[tid] = append(byType[tid], i)
	}
	if sp != nil {
		sp.Add(obs.CtrCacheHits, hits)
		sp.Add(obs.CtrCacheMisses, int64(len(addrs))-hits)
	}

	for _, tid := range typeOrder {
		t, err := s.typeByID(tid)
		if err != nil {
			return nil, err
		}
		idxs := byType[tid]
		rids := make([]addr.RID, len(idxs))
		var stamps []uint64
		if cache != nil {
			stamps = make([]uint64, len(idxs))
		}
		for j, i := range idxs {
			if cache != nil {
				// Capture before the directory probe and page read, like Get
				// does.
				stamps[j] = cache.stamp(addrs[i])
			}
			ref, ok := s.dir.LookupStruct(addrs[i], 0)
			if !ok {
				if cache != nil {
					// Publish the negative fact, like Get does.
					cache.put(addrs[i], nil, stamps[j])
				}
				return nil, fmt.Errorf("%w: %v", ErrNoAtom, addrs[i])
			}
			rids[j] = ref.Where
		}
		prim, err := s.primary(t)
		if err != nil {
			return nil, err
		}
		recs, err := prim.ReadBatch(rids)
		if err != nil {
			return nil, err
		}
		if sp != nil {
			sp.Add(obs.CtrAtomsDecoded, int64(len(idxs)))
			sp.Add(obs.CtrPagesPinned, distinctPages(rids))
		}
		if cache == nil {
			// No retention: the whole level shares one value arena.
			vals, err := atom.DecodeAtomBatch(recs)
			if err != nil {
				return nil, err
			}
			for j, i := range idxs {
				out[i] = &Atom{Type: t, Addr: addrs[i], Values: vals[j]}
			}
			continue
		}
		// Atoms may outlive the batch in the cache; decode each against its
		// own record image so LRU eviction frees memory atom by atom (a
		// shared arena would stay pinned by any single cached survivor).
		for j, i := range idxs {
			values, err := atom.DecodeAtomOwned(recs[j])
			if err != nil {
				return nil, err
			}
			at := &Atom{Type: t, Addr: addrs[i], Values: values}
			out[i] = at
			cache.put(addrs[i], at, stamps[j])
		}
	}
	return out, nil
}

// distinctPages counts the pages a record batch touches — each is one
// buffer-pool fix on the read path, the trace's "pages pinned".
func distinctPages(rids []addr.RID) int64 {
	seen := make(map[uint32]struct{}, len(rids))
	for _, r := range rids {
		seen[r.Page] = struct{}{}
	}
	return int64(len(seen))
}
