package access

import (
	"fmt"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
)

// GetBatch reads many atoms in one access-system call, aligned with the
// input addresses. Fetches are grouped by primary container and by page, so
// one directory lookup and one buffer fix serve every atom that shares a
// page — the set-oriented counterpart of Get that molecule assembly uses for
// each level's fan-out.
//
// attrs follows Get's contract (nil materializes all attributes). Projected
// reads are routed per atom, because partition coverage is decided per
// record; the batch win lives on the full-width assembly path.
func (s *System) GetBatch(addrs []addr.LogicalAddr, attrs []string) ([]*Atom, error) {
	out := make([]*Atom, len(addrs))
	if len(addrs) == 0 {
		return out, nil
	}
	if attrs != nil {
		for i, a := range addrs {
			at, err := s.Get(a, attrs)
			if err != nil {
				return nil, err
			}
			out[i] = at
		}
		return out, nil
	}

	// Group by atom type: each type owns one primary container.
	byType := make(map[addr.TypeID][]int, 2)
	typeOrder := make([]addr.TypeID, 0, 2)
	for i, a := range addrs {
		tid := a.Type()
		if _, ok := byType[tid]; !ok {
			typeOrder = append(typeOrder, tid)
		}
		byType[tid] = append(byType[tid], i)
	}

	for _, tid := range typeOrder {
		t, err := s.typeByID(tid)
		if err != nil {
			return nil, err
		}
		idxs := byType[tid]
		rids := make([]addr.RID, len(idxs))
		for j, i := range idxs {
			ref, ok := s.dir.LookupStruct(addrs[i], 0)
			if !ok {
				return nil, fmt.Errorf("%w: %v", ErrNoAtom, addrs[i])
			}
			rids[j] = ref.Where
		}
		prim, err := s.primary(t)
		if err != nil {
			return nil, err
		}
		recs, err := prim.ReadBatch(rids)
		if err != nil {
			return nil, err
		}
		for j, i := range idxs {
			values, err := atom.DecodeAtom(recs[j])
			if err != nil {
				return nil, err
			}
			out[i] = &Atom{Type: t, Addr: addrs[i], Values: values}
		}
	}
	return out, nil
}
