package access

import (
	"container/list"
	"sync"
	"sync/atomic"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
)

// Decoded-atom cache (the "atom buffer" above the page buffer that PRIMA's
// architecture calls for): repeated checkouts of the same design objects —
// the dominant access pattern of CAD/FEA workloads — must not pay a page fix
// plus a codec run per atom on every Get. The cache keeps fully decoded,
// immutable Atom values keyed by logical address, lock-striped like the
// buffer pool so concurrent molecule assemblers do not serialize on one
// latch, and bounded by a byte-accounted budget with per-shard LRU
// replacement: the budget is configured in atoms (the user-facing unit) but
// charged by each atom's estimated decoded footprint, so wide CAD atoms
// displace proportionally more narrow ones instead of blowing the memory
// envelope. Negative entries remember that an address does not exist —
// existence probes against deleted atoms (frequent in back-reference
// maintenance and cursor filtering) then skip the directory miss path.
//
// Correctness under concurrent DML rests on per-address version stamps:
// every mutation bumps the address's stamp *before* it drops the cache
// entry, and readers capture the stamp before touching page bytes (or
// probing the directory, for negative entries) and only publish their
// result if the stamp is unchanged at insert time (checked under the shard
// lock). A decode raced by a writer therefore either fails the stamp check,
// or is inserted before the writer's drop and removed by it — a stale value
// can never outlive the mutation that made it stale. Inserts and
// resurrections bump the stamp too, so a negative entry can never outlive
// the atom coming (back) into existence. Stamps are striped over a fixed
// array (collisions only cause spurious re-decodes, never stale hits), so
// the stamp table stays O(1) in the database size.

// acStampStripes is the size of the version-stamp array (power of two).
const acStampStripes = 4096

// DefaultAtomCacheAtoms is the default atom budget of the decoded-atom
// cache.
const DefaultAtomCacheAtoms = 8192

// acMinAtomCost is the byte floor charged per cached atom. It converts the
// atom-denominated budget into bytes (budget × acMinAtomCost) and
// guarantees the cache never holds more atoms than its configured budget,
// however narrow they are.
const acMinAtomCost = 256

// acNegCost is the bytes charged for a negative entry.
const acNegCost = 64

// AtomCacheStats is a snapshot of the decoded-atom cache counters.
type AtomCacheStats struct {
	Hits          uint64 // reads served without a page fix or codec run
	Misses        uint64 // reads that went to the buffer pool
	Invalidations uint64 // cached atoms dropped by writes
	Evictions     uint64 // cached atoms dropped by the LRU budget
	Atoms         int    // currently cached atoms (excluding negative entries)
	Budget        int    // configured atom budget (0 = disabled)
	Bytes         int    // accounted bytes currently cached
}

// acCounters is the cache's statistics block. It lives on the System, not
// the cache instance, so counters stay cumulative across resizes and
// disable/re-enable cycles.
type acCounters struct {
	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	evictions     atomic.Uint64
}

// acEntry is one cached result: a decoded atom, or — with at == nil — the
// negative fact that the address does not exist. size is the accounted
// footprint.
type acEntry struct {
	a    addr.LogicalAddr
	at   *Atom
	size int
}

// acShard is one lock stripe: an LRU over its slice of the byte budget.
type acShard struct {
	mu       sync.Mutex
	capBytes int
	bytes    int
	ll       *list.List // front = most recently used
	entries  map[addr.LogicalAddr]*list.Element
}

// atomCache is the sharded decoded-atom cache. The System holds it through
// an atomic pointer so resizing (or disabling) swaps the whole structure
// without locking readers; version stamps and counters move to the new
// instance so invalidation protection and statistics stay continuous.
type atomCache struct {
	shards []*acShard
	mask   uint32
	budget int
	stamps *[acStampStripes]atomic.Uint64
	stats  *acCounters // owned by the System
}

// newAtomCache builds a cache of `budget` atoms over n lock stripes
// (rounded to a power of two; shrunk so every stripe holds at least a few
// atoms). stamps is carried over from a predecessor cache, if any, so
// in-flight readers that captured a stamp from the old instance still
// conflict correctly with writers bumping the new one.
func newAtomCache(budget, n int, stamps *[acStampStripes]atomic.Uint64, stats *acCounters) *atomCache {
	if budget <= 0 {
		return nil
	}
	for n > 1 && budget/n < 8 {
		n /= 2
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	if stamps == nil {
		stamps = new([acStampStripes]atomic.Uint64)
	}
	c := &atomCache{
		shards: make([]*acShard, shards),
		mask:   uint32(shards - 1),
		budget: budget,
		stamps: stamps,
		stats:  stats,
	}
	per := budget * acMinAtomCost / shards
	if per < acMinAtomCost {
		per = acMinAtomCost
	}
	for i := range c.shards {
		c.shards[i] = &acShard{capBytes: per, ll: list.New(), entries: make(map[addr.LogicalAddr]*list.Element)}
	}
	return c
}

// acHash mixes a logical address onto the shard/stamp index space.
func acHash(a addr.LogicalAddr) uint32 {
	h := uint64(a) * 0x9E3779B97F4A7C15
	return uint32(h >> 32)
}

func (c *atomCache) shardOf(a addr.LogicalAddr) *acShard {
	return c.shards[acHash(a)&c.mask]
}

func (c *atomCache) stampOf(a addr.LogicalAddr) *atomic.Uint64 {
	return &c.stamps[acHash(a)&(acStampStripes-1)]
}

// valueFootprint estimates the decoded in-memory bytes of one value.
func valueFootprint(v atom.Value) int {
	n := 48 + len(v.S)
	for _, e := range v.E {
		n += valueFootprint(e)
	}
	return n
}

// atomFootprint estimates the decoded in-memory bytes of an atom, floored at
// acMinAtomCost so the byte budget never admits more atoms than the
// configured atom budget.
func atomFootprint(at *Atom) int {
	n := 96
	for _, v := range at.Values {
		n += valueFootprint(v)
	}
	if n < acMinAtomCost {
		n = acMinAtomCost
	}
	return n
}

// get returns the cached result for a, if present: ok with a non-nil Atom is
// a decode hit (shared, immutable — callers must not modify it); ok with a
// nil Atom is a negative hit (the address is known not to exist).
func (c *atomCache) get(a addr.LogicalAddr) (*Atom, bool) {
	sh := c.shardOf(a)
	sh.mu.Lock()
	el, ok := sh.entries[a]
	if !ok {
		sh.mu.Unlock()
		c.stats.misses.Add(1)
		return nil, false
	}
	sh.ll.MoveToFront(el)
	at := el.Value.(*acEntry).at
	sh.mu.Unlock()
	c.stats.hits.Add(1)
	return at, true
}

// stamp captures a's version stamp. Readers call it before fixing any page
// of the atom's record (or probing the directory); put refuses the result if
// the stamp moved since.
func (c *atomCache) stamp(a addr.LogicalAddr) uint64 {
	return c.stampOf(a).Load()
}

// put publishes a result captured under the given stamp: a decoded atom, or
// a negative entry with at == nil. The stamp is re-checked under the shard
// lock: a concurrent writer has either already bumped it (the result is
// discarded) or will drop the entry after its own bump (the transient entry
// cannot survive the write).
func (c *atomCache) put(a addr.LogicalAddr, at *Atom, stamp uint64) {
	size := acNegCost
	if at != nil {
		size = atomFootprint(at)
	}
	sh := c.shardOf(a)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.stampOf(a).Load() != stamp {
		return
	}
	if el, ok := sh.entries[a]; ok {
		e := el.Value.(*acEntry)
		sh.bytes += size - e.size
		e.at, e.size = at, size
		sh.ll.MoveToFront(el)
	} else {
		sh.entries[a] = sh.ll.PushFront(&acEntry{a: a, at: at, size: size})
		sh.bytes += size
	}
	// Evict from the cold end; the entry just touched sits at the front, so
	// even one over-budget atom stays cached alone.
	for sh.bytes > sh.capBytes && sh.ll.Len() > 1 {
		el := sh.ll.Back()
		sh.ll.Remove(el)
		e := el.Value.(*acEntry)
		delete(sh.entries, e.a)
		sh.bytes -= e.size
		c.stats.evictions.Add(1)
	}
}

// invalidate is the write barrier: it bumps a's version stamp first (so
// readers mid-decode cannot publish a pre-write image — or a pre-insert
// negative entry — afterwards) and then drops any cached entry under the
// shard lock.
func (c *atomCache) invalidate(a addr.LogicalAddr) {
	c.stampOf(a).Add(1)
	sh := c.shardOf(a)
	sh.mu.Lock()
	if el, ok := sh.entries[a]; ok {
		sh.ll.Remove(el)
		sh.bytes -= el.Value.(*acEntry).size
		delete(sh.entries, a)
		c.stats.invalidations.Add(1)
	}
	sh.mu.Unlock()
}

// size returns the number of cached atoms (negative entries excluded) and
// the accounted bytes.
func (c *atomCache) size() (atoms, bytes int) {
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.ll.Front(); el != nil; el = el.Next() {
			if el.Value.(*acEntry).at != nil {
				atoms++
			}
		}
		bytes += sh.bytes
		sh.mu.Unlock()
	}
	return atoms, bytes
}

// --- System integration -------------------------------------------------------

// cache returns the live cache instance, or nil when disabled.
func (s *System) cache() *atomCache { return s.atoms.Load() }

// cacheInvalidate is called by every mutation after the primary record
// changed (insert, update, delete, resurrect); see atomCache.invalidate for
// why the post-write barrier alone is sufficient.
func (s *System) cacheInvalidate(a addr.LogicalAddr) {
	if c := s.atoms.Load(); c != nil {
		c.invalidate(a)
	}
}

// SetAtomCacheSize resizes the decoded-atom cache to the given atom budget;
// n <= 0 disables it and drops all cached atoms. The counters live on the
// System, so the statistics stay cumulative across resizes and
// disable/re-enable cycles.
func (s *System) SetAtomCacheSize(n int) {
	old := s.atoms.Load()
	var stamps *[acStampStripes]atomic.Uint64
	if old != nil {
		stamps = old.stamps
	}
	s.atoms.Store(newAtomCache(n, s.cfg.BufferShards, stamps, &s.acStats))
}

// AtomCacheStats returns a snapshot of the decoded-atom cache counters.
// Counters accumulate over the System's lifetime; Atoms, Bytes and Budget
// reflect the live configuration (all 0 while disabled).
func (s *System) AtomCacheStats() AtomCacheStats {
	st := AtomCacheStats{
		Hits:          s.acStats.hits.Load(),
		Misses:        s.acStats.misses.Load(),
		Invalidations: s.acStats.invalidations.Load(),
		Evictions:     s.acStats.evictions.Load(),
	}
	if c := s.atoms.Load(); c != nil {
		st.Atoms, st.Bytes = c.size()
		st.Budget = c.budget
	}
	return st
}
