package access

// This file registers pull-model mirrors for every counter the storage and
// access layers already maintain, so one obs.Registry snapshot unifies what
// used to be scattered across AtomCacheStats, buffer.Stats, device.IOStats,
// wal.Stats and the MVCC store. Mirrors are sampled only at snapshot time;
// the hot paths keep their existing (cheaper) counting.

// registerMetrics wires the mirrors. Called once at the end of Open; every
// registered function must be safe to call at any moment from any goroutine
// (they all read atomics or take short-lived internal locks).
func (s *System) registerMetrics() {
	r := s.reg

	// Decoded-atom cache: hot counters live in s.acStats atomics; occupancy
	// comes from the current cache instance (survives SetAtomCacheSize swaps).
	r.CounterFunc("atom_cache_hits", s.acStats.hits.Load)
	r.CounterFunc("atom_cache_misses", s.acStats.misses.Load)
	r.CounterFunc("atom_cache_invalidations", s.acStats.invalidations.Load)
	r.CounterFunc("atom_cache_evictions", s.acStats.evictions.Load)
	r.GaugeFunc("atom_cache_atoms", func() float64 { return float64(s.AtomCacheStats().Atoms) })
	r.GaugeFunc("atom_cache_bytes", func() float64 { return float64(s.AtomCacheStats().Bytes) })
	r.GaugeFunc("atom_cache_budget", func() float64 { return float64(s.AtomCacheStats().Budget) })

	// Buffer pool.
	r.CounterFunc("buffer_hits", func() uint64 { return uint64(s.pool.Stats().Hits) })
	r.CounterFunc("buffer_misses", func() uint64 { return uint64(s.pool.Stats().Misses) })
	r.CounterFunc("buffer_evictions", func() uint64 { return uint64(s.pool.Stats().Evictions) })
	r.CounterFunc("buffer_writebacks", func() uint64 { return uint64(s.pool.Stats().Writebacks) })

	// File manager I/O.
	r.CounterFunc("io_reads", func() uint64 { return uint64(s.files.Stats().Reads) })
	r.CounterFunc("io_writes", func() uint64 { return uint64(s.files.Stats().Writes) })
	r.CounterFunc("io_blocks_read", func() uint64 { return uint64(s.files.Stats().BlocksRead) })
	r.CounterFunc("io_blocks_written", func() uint64 { return uint64(s.files.Stats().BlocksWritten) })
	r.CounterFunc("io_seeks", func() uint64 { return uint64(s.files.Stats().Seeks) })

	// MVCC snapshot store.
	r.GaugeFunc("mvcc_open_snapshots", func() float64 { return float64(s.OpenSnapshots()) })
	r.GaugeFunc("mvcc_versions", func() float64 { return float64(s.mv.entries.Load()) })

	// Write-ahead log. The mirrors report zeros when the WAL is off, with
	// wal_enabled distinguishing "off" from "idle".
	r.GaugeFunc("wal_enabled", func() float64 {
		if _, ok := s.WALStats(); ok {
			return 1
		}
		return 0
	})
	r.CounterFunc("wal_appends", func() uint64 { st, _ := s.WALStats(); return st.Appends })
	r.CounterFunc("wal_bytes", func() uint64 { st, _ := s.WALStats(); return st.Bytes })
	r.CounterFunc("wal_syncs", func() uint64 { st, _ := s.WALStats(); return st.Syncs })
	r.CounterFunc("wal_commits", func() uint64 { st, _ := s.WALStats(); return st.Commits })
	r.CounterFunc("wal_batches", func() uint64 { st, _ := s.WALStats(); return st.Batches })
	r.CounterFunc("wal_checkpoints", func() uint64 { st, _ := s.WALStats(); return st.Checkpoints })
	r.CounterFunc("wal_recoveries", func() uint64 { st, _ := s.WALStats(); return st.Recoveries })
}
