// Package record implements containers of physical records.
//
// "To manage redundancy in the access system, physical records are
// introduced as byte strings of variable length. They are stored
// consecutively in 'containers' offered by the storage system." (§3.2)
//
// A Container owns one segment and stores records in slotted pages fixed
// through the buffer pool. Records that exceed a page's capacity spill into
// a page sequence (the storage system's container for long objects); the
// slotted page then holds a small stub pointing at the sequence, so callers
// see one uniform variable-length record abstraction.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"prima/internal/access/addr"
	"prima/internal/storage/buffer"
	"prima/internal/storage/page"
	"prima/internal/storage/pageseq"
	"prima/internal/storage/segment"
)

// Record stubs: every stored byte string is prefixed with a flag byte.
const (
	flagInline  = 0x00 // record bytes follow inline
	flagSpilled = 0x01 // followed by the uint32 header page of a page sequence
)

// Errors returned by containers.
var (
	ErrNotFound = errors.New("record: no record at this address")
)

// Container stores variable-length physical records in one segment.
// It is safe for concurrent use.
type Container struct {
	seg  *segment.Segment
	pool *buffer.Pool

	mu    sync.Mutex
	pages []uint32       // data pages in scan order
	fsi   map[uint32]int // free-space inventory (approximate, in-memory)
	count int            // live records
	// hint is the index into pages where the last insert succeeded;
	// first-fit resumes there so a long prefix of full pages is not
	// rescanned on every insert.
	hint int
}

// New opens a container over seg, registering it with the pool and
// rebuilding the free-space inventory from the existing data pages.
func New(seg *segment.Segment, pool *buffer.Pool) (*Container, error) {
	pool.Register(seg)
	c := &Container{seg: seg, pool: pool, fsi: make(map[uint32]int)}

	var firstErr error
	raw := make([]byte, seg.PageSize())
	seg.ForAllocated(func(no uint32) bool {
		h, err := pool.Fix(segment.PageID{Seg: seg.ID(), No: no})
		if err != nil {
			// A crash between a fuzzy checkpoint's bitmap flush and the
			// formatted page reaching disk leaves the bit set over a
			// never-written page. Skip it (the page stays allocated but
			// unused); anything else is real corruption.
			if rerr := seg.ReadPage(no, raw); rerr == nil && allZero(raw) {
				return true
			}
			firstErr = fmt.Errorf("record: open page %d: %w", no, err)
			return false
		}
		pg := h.Page()
		if pg.Type() == page.TypeData {
			c.pages = append(c.pages, no)
			c.fsi[no] = pg.FreeSpace()
			c.count += pg.Records()
		}
		h.Release()
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return c, nil
}

func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// Segment returns the container's segment.
func (c *Container) Segment() *segment.Segment { return c.seg }

// Count returns the number of live records.
func (c *Container) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Pages returns the number of data pages in use.
func (c *Container) Pages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pages)
}

// stubLimit returns the maximum stored size for inline records; larger
// records spill to a page sequence.
func (c *Container) stubLimit() int {
	// Capacity of an empty page minus the flag byte, conservatively halved
	// so a page can hold at least two records.
	return (c.seg.PageSize() - page.HeaderSize - 8) / 2
}

// Insert stores rec and returns its record address.
func (c *Container) Insert(rec []byte) (addr.RID, error) {
	if len(rec)+1 > c.stubLimit() {
		return c.insertSpilled(rec)
	}
	stored := make([]byte, 0, len(rec)+1)
	stored = append(stored, flagInline)
	stored = append(stored, rec...)
	return c.insertStored(stored)
}

func (c *Container) insertSpilled(rec []byte) (addr.RID, error) {
	seq, err := pageseq.Create(c.seg, rec)
	if err != nil {
		return addr.RID{}, fmt.Errorf("record: spill: %w", err)
	}
	var stub [5]byte
	stub[0] = flagSpilled
	binary.BigEndian.PutUint32(stub[1:], seq.HeaderPage())
	rid, err := c.insertStored(stub[:])
	if err != nil {
		_ = seq.Delete()
		return addr.RID{}, err
	}
	return rid, nil
}

// insertStored places an already-prefixed byte string into a page with room.
func (c *Container) insertStored(stored []byte) (addr.RID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	// First fit over the FSI starting at the last successful page; the
	// inventory is approximate so failures just update it and move on.
	if c.hint >= len(c.pages) {
		c.hint = 0
	}
	for i := 0; i < len(c.pages); i++ {
		idx := (c.hint + i) % len(c.pages)
		no := c.pages[idx]
		if c.fsi[no] < len(stored) {
			continue
		}
		rid, ok, err := c.tryInsertLocked(no, stored)
		if err != nil {
			return addr.RID{}, err
		}
		if ok {
			c.hint = idx
			return rid, nil
		}
	}
	// No page fits: allocate a new one.
	no, err := c.seg.AllocatePage()
	if err != nil {
		return addr.RID{}, fmt.Errorf("record: allocate page: %w", err)
	}
	h, err := c.pool.FixNew(segment.PageID{Seg: c.seg.ID(), No: no})
	if err != nil {
		return addr.RID{}, err
	}
	pg := h.Page()
	pg.Init(page.TypeData, uint32(c.seg.ID()), no)
	slot, err := pg.Insert(stored)
	if err != nil {
		h.Release()
		return addr.RID{}, fmt.Errorf("record: insert into fresh page: %w", err)
	}
	h.MarkDirty()
	c.fsi[no] = pg.FreeSpace()
	h.Release()
	c.pages = append(c.pages, no)
	c.hint = len(c.pages) - 1
	c.count++
	return addr.RID{Page: no, Slot: uint16(slot)}, nil
}

func (c *Container) tryInsertLocked(no uint32, stored []byte) (addr.RID, bool, error) {
	h, err := c.pool.Fix(segment.PageID{Seg: c.seg.ID(), No: no})
	if err != nil {
		return addr.RID{}, false, err
	}
	pg := h.Page()
	slot, err := pg.Insert(stored)
	if errors.Is(err, page.ErrNoSpace) {
		c.fsi[no] = pg.FreeSpace()
		h.Release()
		return addr.RID{}, false, nil
	}
	if err != nil {
		h.Release()
		return addr.RID{}, false, fmt.Errorf("record: insert: %w", err)
	}
	h.MarkDirty()
	c.fsi[no] = pg.FreeSpace()
	h.Release()
	c.count++
	return addr.RID{Page: no, Slot: uint16(slot)}, true, nil
}

// Read returns a copy of the record at rid.
func (c *Container) Read(rid addr.RID) ([]byte, error) {
	h, err := c.pool.Fix(segment.PageID{Seg: c.seg.ID(), No: rid.Page})
	if err != nil {
		return nil, fmt.Errorf("record: read %v: %w", rid, err)
	}
	stored, err := h.Page().Read(int(rid.Slot))
	if err != nil {
		h.Release()
		return nil, fmt.Errorf("%w: %v (%v)", ErrNotFound, rid, err)
	}
	out, spillPage, err := c.decodeStored(stored)
	h.Release()
	if err != nil {
		return nil, err
	}
	if spillPage != 0 {
		seq, err := pageseq.Open(c.seg, spillPage)
		if err != nil {
			return nil, fmt.Errorf("record: open spill of %v: %w", rid, err)
		}
		return seq.ReadAll()
	}
	return out, nil
}

// ReadBatch returns copies of the records at rids, aligned with the input
// slice. Reads are grouped by page so every data page is fixed exactly once
// per batch no matter how many records it serves — the unit of work behind
// the access system's batched atom reads.
func (c *Container) ReadBatch(rids []addr.RID) ([][]byte, error) {
	out := make([][]byte, len(rids))
	byPage := make(map[uint32][]int, len(rids))
	pageOrder := make([]uint32, 0, len(rids))
	for i, rid := range rids {
		if _, ok := byPage[rid.Page]; !ok {
			pageOrder = append(pageOrder, rid.Page)
		}
		byPage[rid.Page] = append(byPage[rid.Page], i)
	}

	type spillRef struct {
		idx    int
		header uint32
	}
	var spills []spillRef
	for _, no := range pageOrder {
		h, err := c.pool.Fix(segment.PageID{Seg: c.seg.ID(), No: no})
		if err != nil {
			return nil, fmt.Errorf("record: read page %d: %w", no, err)
		}
		pg := h.Page()
		for _, i := range byPage[no] {
			stored, err := pg.Read(int(rids[i].Slot))
			if err != nil {
				h.Release()
				return nil, fmt.Errorf("%w: %v (%v)", ErrNotFound, rids[i], err)
			}
			data, spill, err := c.decodeStored(stored)
			if err != nil {
				h.Release()
				return nil, err
			}
			if spill != 0 {
				spills = append(spills, spillRef{idx: i, header: spill})
			} else {
				out[i] = data
			}
		}
		h.Release()
	}
	// Spilled records read their page sequences after the slotted page is
	// unfixed, exactly like the single-record path.
	for _, sp := range spills {
		seq, err := pageseq.Open(c.seg, sp.header)
		if err != nil {
			return nil, fmt.Errorf("record: open spill of %v: %w", rids[sp.idx], err)
		}
		if out[sp.idx], err = seq.ReadAll(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeStored interprets a stored byte string. For inline records it
// returns a copy; for spilled ones the sequence header page.
func (c *Container) decodeStored(stored []byte) ([]byte, uint32, error) {
	if len(stored) < 1 {
		return nil, 0, fmt.Errorf("record: empty stored record")
	}
	switch stored[0] {
	case flagInline:
		out := make([]byte, len(stored)-1)
		copy(out, stored[1:])
		return out, 0, nil
	case flagSpilled:
		if len(stored) != 5 {
			return nil, 0, fmt.Errorf("record: bad spill stub length %d", len(stored))
		}
		return nil, binary.BigEndian.Uint32(stored[1:]), nil
	default:
		return nil, 0, fmt.Errorf("record: bad record flag %#x", stored[0])
	}
}

// Update replaces the record at rid. The record may move; the (possibly
// new) address is returned and the caller must update the directory.
func (c *Container) Update(rid addr.RID, rec []byte) (addr.RID, error) {
	// Resolve the current stub first to free any old spill.
	h, err := c.pool.Fix(segment.PageID{Seg: c.seg.ID(), No: rid.Page})
	if err != nil {
		return addr.RID{}, fmt.Errorf("record: update %v: %w", rid, err)
	}
	pg := h.Page()
	stored, err := pg.Read(int(rid.Slot))
	if err != nil {
		h.Release()
		return addr.RID{}, fmt.Errorf("%w: %v (%v)", ErrNotFound, rid, err)
	}
	_, oldSpill, err := c.decodeStored(stored)
	if err != nil {
		h.Release()
		return addr.RID{}, err
	}

	if len(rec)+1 <= c.stubLimit() {
		newStored := make([]byte, 0, len(rec)+1)
		newStored = append(newStored, flagInline)
		newStored = append(newStored, rec...)
		if err := pg.Update(int(rid.Slot), newStored); err == nil {
			h.MarkDirty()
			c.mu.Lock()
			c.fsi[rid.Page] = pg.FreeSpace()
			c.mu.Unlock()
			h.Release()
			c.freeSpill(oldSpill)
			return rid, nil
		} else if !errors.Is(err, page.ErrNoSpace) {
			h.Release()
			return addr.RID{}, fmt.Errorf("record: update in place: %w", err)
		}
		// Page cannot hold the new version: move the record.
		h.Release()
		if err := c.Delete(rid); err != nil {
			return addr.RID{}, err
		}
		return c.Insert(rec)
	}

	// New version spills.
	h.Release()
	if oldSpill != 0 {
		// Rewrite the existing sequence; the stub may need updating if the
		// sequence moved.
		seq, err := pageseq.Open(c.seg, oldSpill)
		if err != nil {
			return addr.RID{}, fmt.Errorf("record: open spill: %w", err)
		}
		ns, err := seq.Rewrite(rec)
		if err != nil {
			return addr.RID{}, fmt.Errorf("record: rewrite spill: %w", err)
		}
		if ns.HeaderPage() != oldSpill {
			if err := c.pointStubAt(rid, ns.HeaderPage()); err != nil {
				return addr.RID{}, err
			}
		}
		return rid, nil
	}
	// Inline -> spilled transition.
	seq, err := pageseq.Create(c.seg, rec)
	if err != nil {
		return addr.RID{}, fmt.Errorf("record: spill: %w", err)
	}
	if err := c.pointStubAt(rid, seq.HeaderPage()); err != nil {
		_ = seq.Delete()
		return addr.RID{}, err
	}
	return rid, nil
}

func (c *Container) pointStubAt(rid addr.RID, headerPage uint32) error {
	h, err := c.pool.Fix(segment.PageID{Seg: c.seg.ID(), No: rid.Page})
	if err != nil {
		return err
	}
	defer h.Release()
	var stub [5]byte
	stub[0] = flagSpilled
	binary.BigEndian.PutUint32(stub[1:], headerPage)
	if err := h.Page().Update(int(rid.Slot), stub[:]); err != nil {
		return fmt.Errorf("record: update spill stub: %w", err)
	}
	h.MarkDirty()
	return nil
}

func (c *Container) freeSpill(headerPage uint32) {
	if headerPage == 0 {
		return
	}
	if seq, err := pageseq.Open(c.seg, headerPage); err == nil {
		_ = seq.Delete()
	}
}

// Delete removes the record at rid, freeing any spill pages.
func (c *Container) Delete(rid addr.RID) error {
	h, err := c.pool.Fix(segment.PageID{Seg: c.seg.ID(), No: rid.Page})
	if err != nil {
		return fmt.Errorf("record: delete %v: %w", rid, err)
	}
	pg := h.Page()
	stored, err := pg.Read(int(rid.Slot))
	if err != nil {
		h.Release()
		return fmt.Errorf("%w: %v (%v)", ErrNotFound, rid, err)
	}
	_, spill, err := c.decodeStored(stored)
	if err != nil {
		h.Release()
		return err
	}
	if err := pg.Delete(int(rid.Slot)); err != nil {
		h.Release()
		return fmt.Errorf("record: delete: %w", err)
	}
	h.MarkDirty()
	c.mu.Lock()
	c.fsi[rid.Page] = pg.FreeSpace()
	c.count--
	c.mu.Unlock()
	h.Release()
	c.freeSpill(spill)
	return nil
}

// Scan calls fn for every record in page/slot order. The record slice is
// only valid during the call.
func (c *Container) Scan(fn func(rid addr.RID, rec []byte) bool) error {
	c.mu.Lock()
	pages := make([]uint32, len(c.pages))
	copy(pages, c.pages)
	c.mu.Unlock()

	for _, no := range pages {
		h, err := c.pool.Fix(segment.PageID{Seg: c.seg.ID(), No: no})
		if err != nil {
			return fmt.Errorf("record: scan page %d: %w", no, err)
		}
		pg := h.Page()
		type item struct {
			slot  int
			data  []byte
			spill uint32
		}
		var items []item
		var decodeErr error
		pg.ForEach(func(slot int, stored []byte) bool {
			data, spill, err := c.decodeStored(stored)
			if err != nil {
				decodeErr = err
				return false
			}
			items = append(items, item{slot, data, spill})
			return true
		})
		h.Release()
		if decodeErr != nil {
			return decodeErr
		}
		for _, it := range items {
			data := it.data
			if it.spill != 0 {
				seq, err := pageseq.Open(c.seg, it.spill)
				if err != nil {
					return fmt.Errorf("record: scan spill: %w", err)
				}
				if data, err = seq.ReadAll(); err != nil {
					return err
				}
			}
			if !fn(addr.RID{Page: no, Slot: uint16(it.slot)}, data) {
				return nil
			}
		}
	}
	return nil
}
