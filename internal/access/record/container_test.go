package record

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"prima/internal/access/addr"
	"prima/internal/storage/buffer"
	"prima/internal/storage/device"
	"prima/internal/storage/segment"
)

func newContainer(t testing.TB, blockSize int) *Container {
	t.Helper()
	dev, err := device.NewMem(blockSize)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	seg, err := segment.Create(dev, 1, 16384)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	pool := buffer.NewPool(buffer.NewSizeAwareLRU(256 * 1024))
	c, err := New(seg, pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestInsertReadDeleteRoundTrip(t *testing.T) {
	c := newContainer(t, device.B1K)
	recs := map[addr.RID][]byte{}
	for i := 0; i < 100; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, i%80+1)
		rid, err := c.Insert(rec)
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		recs[rid] = rec
	}
	if c.Count() != 100 {
		t.Fatalf("Count = %d, want 100", c.Count())
	}
	for rid, want := range recs {
		got, err := c.Read(rid)
		if err != nil {
			t.Fatalf("Read %v: %v", rid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Read %v mismatch", rid)
		}
	}
	for rid := range recs {
		if err := c.Delete(rid); err != nil {
			t.Fatalf("Delete %v: %v", rid, err)
		}
	}
	if c.Count() != 0 {
		t.Fatalf("Count after deletes = %d", c.Count())
	}
	for rid := range recs {
		if _, err := c.Read(rid); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Read deleted %v = %v, want ErrNotFound", rid, err)
		}
	}
}

func TestLongRecordSpill(t *testing.T) {
	c := newContainer(t, device.B1K)
	long := bytes.Repeat([]byte("L"), 10000) // far beyond one 1K page
	rid, err := c.Insert(long)
	if err != nil {
		t.Fatalf("Insert long: %v", err)
	}
	got, err := c.Read(rid)
	if err != nil {
		t.Fatalf("Read long: %v", err)
	}
	if !bytes.Equal(got, long) {
		t.Fatal("long record round-trip mismatch")
	}
	// Spilled records release their pages on delete.
	before := c.Segment().Allocated()
	if err := c.Delete(rid); err != nil {
		t.Fatalf("Delete long: %v", err)
	}
	if c.Segment().Allocated() >= before {
		t.Fatalf("delete did not free spill pages: %d -> %d", before, c.Segment().Allocated())
	}
}

func TestUpdateTransitions(t *testing.T) {
	c := newContainer(t, device.B1K)
	rid, err := c.Insert([]byte("small"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}

	// Inline -> inline (same page).
	rid2, err := c.Update(rid, []byte("still small"))
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, _ := c.Read(rid2)
	if string(got) != "still small" {
		t.Fatalf("after update: %q", got)
	}

	// Inline -> spilled.
	long := bytes.Repeat([]byte("x"), 5000)
	rid3, err := c.Update(rid2, long)
	if err != nil {
		t.Fatalf("Update to long: %v", err)
	}
	got, _ = c.Read(rid3)
	if !bytes.Equal(got, long) {
		t.Fatal("inline->spill mismatch")
	}

	// Spilled -> spilled (grow).
	longer := bytes.Repeat([]byte("y"), 9000)
	rid4, err := c.Update(rid3, longer)
	if err != nil {
		t.Fatalf("Update grow spill: %v", err)
	}
	got, _ = c.Read(rid4)
	if !bytes.Equal(got, longer) {
		t.Fatal("spill->spill mismatch")
	}

	// Spilled -> inline.
	rid5, err := c.Update(rid4, []byte("tiny again"))
	if err != nil {
		t.Fatalf("Update shrink: %v", err)
	}
	got, _ = c.Read(rid5)
	if string(got) != "tiny again" {
		t.Fatalf("spill->inline = %q", got)
	}
	// Note: shrink keeps the stub pointing at a rewritten 1-page sequence
	// or inlines; either way a Read must succeed and Count stays 1.
	if c.Count() != 1 {
		t.Fatalf("Count = %d, want 1", c.Count())
	}
}

func TestUpdateMovesWhenPageFull(t *testing.T) {
	c := newContainer(t, device.B512)
	// Fill a page with records.
	var rids []addr.RID
	for i := 0; i < 6; i++ {
		rid, err := c.Insert(bytes.Repeat([]byte{byte(i)}, 30))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		rids = append(rids, rid)
	}
	// Grow one record beyond its page's free space: it must move, not fail.
	big := bytes.Repeat([]byte("G"), 150)
	nrid, err := c.Update(rids[0], big)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, err := c.Read(nrid)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("moved record read = %v", err)
	}
	// Other records untouched.
	for i := 1; i < 6; i++ {
		got, err := c.Read(rids[i])
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 30)) {
			t.Fatalf("record %d damaged by neighbour move", i)
		}
	}
}

func TestScan(t *testing.T) {
	c := newContainer(t, device.B512)
	want := map[string]bool{}
	for i := 0; i < 50; i++ {
		rec := []byte{byte(i), byte(i >> 4), 7}
		if _, err := c.Insert(rec); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		want[string(rec)] = true
	}
	// One long record participates in scans too.
	long := bytes.Repeat([]byte("S"), 3000)
	if _, err := c.Insert(long); err != nil {
		t.Fatalf("Insert long: %v", err)
	}
	want[string(long)] = true

	got := map[string]bool{}
	err := c.Scan(func(rid addr.RID, rec []byte) bool {
		got[string(rec)] = true
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("Scan saw %d distinct records, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatal("Scan missed a record")
		}
	}

	// Early stop.
	n := 0
	c.Scan(func(addr.RID, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Scan ignored early stop: %d", n)
	}
}

func TestReopenContainer(t *testing.T) {
	dev, _ := device.NewMem(device.B1K)
	seg, err := segment.Create(dev, 1, 4096)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	pool := buffer.NewPool(buffer.NewSizeAwareLRU(128 * 1024))
	c, err := New(seg, pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	recs := map[addr.RID][]byte{}
	for i := 0; i < 30; i++ {
		rec := bytes.Repeat([]byte{byte(i + 1)}, 20)
		rid, err := c.Insert(rec)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		recs[rid] = rec
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}

	// Reopen over the same segment with a fresh pool.
	pool2 := buffer.NewPool(buffer.NewSizeAwareLRU(128 * 1024))
	c2, err := New(seg, pool2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if c2.Count() != 30 {
		t.Fatalf("reopened Count = %d, want 30", c2.Count())
	}
	for rid, want := range recs {
		got, err := c2.Read(rid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("reopened Read %v = %v", rid, err)
		}
	}
	// Free-space inventory works after reopen: inserts reuse pages.
	pagesBefore := c2.Pages()
	if _, err := c2.Insert([]byte("x")); err != nil {
		t.Fatalf("Insert after reopen: %v", err)
	}
	if c2.Pages() != pagesBefore {
		t.Fatalf("small insert allocated a fresh page despite free space")
	}
}

// Property: a container behaves like map[RID][]byte under random operations.
func TestContainerQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newContainer(t, device.B512)
		model := map[addr.RID][]byte{}
		var rids []addr.RID
		for op := 0; op < 150; op++ {
			switch rng.Intn(4) {
			case 0, 1: // insert (biased: containers grow)
				n := rng.Intn(600) + 1 // sometimes spills on 512B pages
				rec := make([]byte, n)
				rng.Read(rec)
				rid, err := c.Insert(rec)
				if err != nil {
					return false
				}
				if _, dup := model[rid]; dup {
					return false
				}
				model[rid] = append([]byte(nil), rec...)
				rids = append(rids, rid)
			case 2: // update
				if len(rids) == 0 {
					continue
				}
				i := rng.Intn(len(rids))
				rid := rids[i]
				if _, live := model[rid]; !live {
					continue
				}
				rec := make([]byte, rng.Intn(600)+1)
				rng.Read(rec)
				nrid, err := c.Update(rid, rec)
				if err != nil {
					return false
				}
				delete(model, rid)
				model[nrid] = append([]byte(nil), rec...)
				rids[i] = nrid
			case 3: // delete
				if len(rids) == 0 {
					continue
				}
				i := rng.Intn(len(rids))
				rid := rids[i]
				if _, live := model[rid]; !live {
					continue
				}
				if err := c.Delete(rid); err != nil {
					return false
				}
				delete(model, rid)
			}
		}
		if c.Count() != len(model) {
			return false
		}
		for rid, want := range model {
			got, err := c.Read(rid)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkContainerInsert(b *testing.B) {
	c := newContainer(b, device.B8K)
	rec := bytes.Repeat([]byte("r"), 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContainerRead(b *testing.B) {
	c := newContainer(b, device.B8K)
	rec := bytes.Repeat([]byte("r"), 100)
	var rids []addr.RID
	for i := 0; i < 1000; i++ {
		rid, err := c.Insert(rec)
		if err != nil {
			b.Fatal(err)
		}
		rids = append(rids, rid)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Read(rids[i%len(rids)]); err != nil {
			b.Fatal(err)
		}
	}
}
