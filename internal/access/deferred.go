package access

import (
	"fmt"
	"sync"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
)

// Deferred update (§3.2): "Storage redundancy may introduce substantial
// overhead when an atom is modified (and necessarily all its allocated
// physical records). To limit the amount of immediate overhead, deferred
// update is used, i.e., during an update operation only one physical record
// is modified whereas all others are modified later."
//
// The queue records which redundant records went stale; their directory
// entries carry Valid=false until PropagateDeferred (or a lazy read-side
// fix-up) rewrites them.

type taskKind uint8

const (
	taskSortOrder taskKind = iota
	taskPartition
	taskCluster
)

type deferTask struct {
	kind     taskKind
	a        addr.LogicalAddr // atom (sort order / partition) or cluster root
	structID addr.StructID
}

type deferQueue struct {
	mu    sync.Mutex
	queue []deferTask
	seen  map[deferTask]bool
}

func newDeferQueue() *deferQueue {
	return &deferQueue{seen: make(map[deferTask]bool)}
}

func (q *deferQueue) push(t deferTask) {
	q.mu.Lock()
	if !q.seen[t] {
		q.seen[t] = true
		q.queue = append(q.queue, t)
	}
	q.mu.Unlock()
}

func (q *deferQueue) pop() (deferTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.queue) == 0 {
		return deferTask{}, false
	}
	t := q.queue[0]
	q.queue = q.queue[1:]
	delete(q.seen, t)
	return t, true
}

// Len returns the number of pending propagation tasks.
func (q *deferQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue)
}

// PendingDeferred returns the number of queued propagation tasks (exposed
// for experiments measuring deferred-update behaviour).
func (s *System) PendingDeferred() int { return s.deferq.Len() }

// PropagateDeferred drains the deferred-update queue, rewriting every stale
// redundant record from its primary copy and re-validating it.
func (s *System) PropagateDeferred() error {
	for {
		t, ok := s.deferq.pop()
		if !ok {
			return nil
		}
		if err := s.propagateOne(t); err != nil {
			return err
		}
	}
}

func (s *System) propagateOne(t deferTask) error {
	switch t.kind {
	case taskSortOrder:
		s.mu.RLock()
		so := s.sortOrders[t.structID]
		s.mu.RUnlock()
		if so == nil || !s.dir.Exists(t.a) {
			return nil
		}
		ref, ok := s.dir.LookupStruct(t.a, t.structID)
		if !ok || ref.Valid {
			return nil
		}
		at, err := s.Get(t.a, nil)
		if err != nil {
			return err
		}
		var nrid addr.RID
		if err := withEncodedAtom(at.Values, func(rec []byte) error {
			var err error
			nrid, err = so.container.Update(ref.Where, rec)
			return err
		}); err != nil {
			return fmt.Errorf("access: propagate sort order %s: %w", so.def.Name, err)
		}
		if nrid != ref.Where {
			if err := s.dir.Update(t.a, t.structID, nrid); err != nil {
				return err
			}
		}
		return s.dir.SetValid(t.a, t.structID, true)

	case taskPartition:
		s.mu.RLock()
		p := s.partitions[t.structID]
		s.mu.RUnlock()
		if p == nil || !s.dir.Exists(t.a) {
			return nil
		}
		ref, ok := s.dir.LookupStruct(t.a, t.structID)
		if !ok || ref.Valid {
			return nil
		}
		at, err := s.Get(t.a, nil)
		if err != nil {
			return err
		}
		nrid, err := p.container.Update(ref.Where, atom.EncodeProjection(p.attrIdxs, at.Values))
		if err != nil {
			return fmt.Errorf("access: propagate partition %s: %w", p.def.Name, err)
		}
		if nrid != ref.Where {
			if err := s.dir.Update(t.a, t.structID, nrid); err != nil {
				return err
			}
		}
		return s.dir.SetValid(t.a, t.structID, true)

	case taskCluster:
		s.mu.RLock()
		cl := s.clusters[t.structID]
		var exists bool
		if cl != nil {
			_, exists = cl.occurrences[t.a]
		}
		s.mu.RUnlock()
		if cl == nil || !exists || !s.dir.Exists(t.a) {
			return nil
		}
		return s.buildClusterOccurrence(cl, t.a)

	default:
		return fmt.Errorf("access: unknown deferred task kind %d", t.kind)
	}
}

// invalidateRedundant marks the redundant records of atom a stale after its
// primary was updated, queueing propagation. changed lists the modified
// attribute indices; structures whose content is untouched stay valid.
func (s *System) invalidateRedundant(a addr.LogicalAddr, changed map[int]bool) error {
	refs, err := s.dir.Lookup(a)
	if err != nil {
		return err
	}
	for _, ref := range refs {
		switch ref.Kind {
		case addr.KindPrimary:
			continue
		case addr.KindSortOrder:
			// Sort order records hold the full atom: always stale.
			if ref.Valid {
				if err := s.dir.SetValid(a, ref.Struct, false); err != nil {
					return err
				}
				s.deferq.push(deferTask{kind: taskSortOrder, a: a, structID: ref.Struct})
			}
		case addr.KindPartition:
			s.mu.RLock()
			p := s.partitions[ref.Struct]
			s.mu.RUnlock()
			if p == nil {
				continue
			}
			touched := false
			for _, idx := range p.attrIdxs {
				if changed[idx] {
					touched = true
					break
				}
			}
			if touched && ref.Valid {
				if err := s.dir.SetValid(a, ref.Struct, false); err != nil {
					return err
				}
				s.deferq.push(deferTask{kind: taskPartition, a: a, structID: ref.Struct})
			}
		case addr.KindCluster:
			// Cluster payloads hold full atom images: always stale. The
			// rebuild task is keyed by the occurrence's root atom.
			s.mu.RLock()
			cl := s.clusters[ref.Struct]
			var root addr.LogicalAddr
			found := false
			if cl != nil {
				for r, header := range cl.occurrences {
					if header == ref.Where.Page {
						root, found = r, true
						break
					}
				}
			}
			s.mu.RUnlock()
			if !found {
				continue
			}
			if ref.Valid {
				if err := s.dir.SetValid(a, ref.Struct, false); err != nil {
					return err
				}
			}
			s.deferq.push(deferTask{kind: taskCluster, a: root, structID: ref.Struct})
		}
	}
	return nil
}
