package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/storage/buffer"
	"prima/internal/storage/device"
	"prima/internal/storage/segment"
)

func newTree(t testing.TB, blockSize int) *BTree {
	t.Helper()
	dev, err := device.NewMem(blockSize)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	seg, err := segment.Create(dev, 1, 65536)
	if err != nil {
		t.Fatalf("Create segment: %v", err)
	}
	pool := buffer.NewPool(buffer.NewSizeAwareLRU(1 << 20))
	tr, err := Create(seg, pool)
	if err != nil {
		t.Fatalf("Create tree: %v", err)
	}
	return tr
}

func TestInsertSearchSmall(t *testing.T) {
	tr := newTree(t, device.B1K)
	for i := 0; i < 10; i++ {
		if err := tr.Insert(atom.Int(int64(i)), addr.New(1, uint64(i+1))); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tr.Len())
	}
	for i := 0; i < 10; i++ {
		got, err := tr.Search(atom.Int(int64(i)))
		if err != nil {
			t.Fatalf("Search %d: %v", i, err)
		}
		if len(got) != 1 || got[0] != addr.New(1, uint64(i+1)) {
			t.Fatalf("Search %d = %v", i, got)
		}
	}
	if got, _ := tr.Search(atom.Int(99)); len(got) != 0 {
		t.Fatalf("Search absent = %v", got)
	}
}

func TestDuplicateKeysDistinctAddrs(t *testing.T) {
	tr := newTree(t, device.B1K)
	key := atom.Str("dup")
	for i := 1; i <= 5; i++ {
		if err := tr.Insert(key, addr.New(1, uint64(i))); err != nil {
			t.Fatalf("Insert dup %d: %v", i, err)
		}
	}
	// Exact duplicate (key, addr) rejected.
	if err := tr.Insert(key, addr.New(1, 3)); !errors.Is(err, ErrDupEntry) {
		t.Fatalf("duplicate entry = %v, want ErrDupEntry", err)
	}
	got, err := tr.Search(key)
	if err != nil || len(got) != 5 {
		t.Fatalf("Search = %v (%v), want 5 addrs", got, err)
	}
	// Delete one duplicate; others remain.
	if err := tr.Delete(key, addr.New(1, 3)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	got, _ = tr.Search(key)
	if len(got) != 4 {
		t.Fatalf("after delete: %d addrs, want 4", len(got))
	}
	if err := tr.Delete(key, addr.New(1, 3)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
}

func TestSplitsAndHeight(t *testing.T) {
	tr := newTree(t, device.B512) // small pages force splits early
	const n = 2000
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(atom.Int(int64(i)), addr.New(1, uint64(i+1))); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatalf("Height: %v", err)
	}
	if h < 3 {
		t.Fatalf("height = %d; expected a deep tree on 512-byte pages", h)
	}
	// All keys present, in order.
	var keys []int64
	err = tr.Scan(nil, nil, false, func(k atom.Value, a addr.LogicalAddr) bool {
		keys = append(keys, k.I)
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(keys) != n {
		t.Fatalf("scan saw %d keys, want %d", len(keys), n)
	}
	for i := range keys {
		if keys[i] != int64(i) {
			t.Fatalf("keys[%d] = %d, out of order", i, keys[i])
		}
	}
}

func TestScanRange(t *testing.T) {
	tr := newTree(t, device.B512)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(atom.Int(int64(i*2)), addr.New(1, uint64(i+1))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	start, stop := atom.Int(10), atom.Int(20)

	var asc []int64
	if err := tr.Scan(&start, &stop, false, func(k atom.Value, _ addr.LogicalAddr) bool {
		asc = append(asc, k.I)
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(asc) != len(want) {
		t.Fatalf("asc = %v, want %v", asc, want)
	}
	for i := range want {
		if asc[i] != want[i] {
			t.Fatalf("asc = %v, want %v", asc, want)
		}
	}

	var desc []int64
	if err := tr.Scan(&start, &stop, true, func(k atom.Value, _ addr.LogicalAddr) bool {
		desc = append(desc, k.I)
		return true
	}); err != nil {
		t.Fatalf("Scan desc: %v", err)
	}
	if len(desc) != len(want) {
		t.Fatalf("desc = %v", desc)
	}
	for i := range want {
		if desc[i] != want[len(want)-1-i] {
			t.Fatalf("desc = %v", desc)
		}
	}

	// Open-ended scans.
	n := 0
	tr.Scan(&stop, nil, false, func(atom.Value, addr.LogicalAddr) bool { n++; return true })
	if n != 90 {
		t.Fatalf("open-stop scan = %d, want 90", n)
	}
	n = 0
	tr.Scan(nil, &start, true, func(atom.Value, addr.LogicalAddr) bool { n++; return true })
	if n != 6 {
		t.Fatalf("open-start desc scan = %d, want 6", n)
	}

	// Early termination.
	n = 0
	tr.Scan(nil, nil, false, func(atom.Value, addr.LogicalAddr) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop = %d", n)
	}
}

func TestDeleteMany(t *testing.T) {
	tr := newTree(t, device.B512)
	const n = 800
	for i := 0; i < n; i++ {
		if err := tr.Insert(atom.Int(int64(i)), addr.New(1, uint64(i+1))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Delete every other key.
	for i := 0; i < n; i += 2 {
		if err := tr.Delete(atom.Int(int64(i)), addr.New(1, uint64(i+1))); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	var keys []int64
	tr.Scan(nil, nil, false, func(k atom.Value, _ addr.LogicalAddr) bool {
		keys = append(keys, k.I)
		return true
	})
	if len(keys) != n/2 {
		t.Fatalf("scan after deletes = %d keys", len(keys))
	}
	for i, k := range keys {
		if k != int64(2*i+1) {
			t.Fatalf("keys[%d] = %d, want %d", i, k, 2*i+1)
		}
	}
}

func TestMixedKeyKinds(t *testing.T) {
	tr := newTree(t, device.B1K)
	keys := []atom.Value{
		atom.Int(5), atom.Real(2.5), atom.Str("alpha"), atom.Str("beta"),
		atom.Real(-1), atom.Int(1000000),
	}
	for i, k := range keys {
		if err := tr.Insert(k, addr.New(2, uint64(i+1))); err != nil {
			t.Fatalf("Insert %v: %v", k, err)
		}
	}
	var got []atom.Value
	tr.Scan(nil, nil, false, func(k atom.Value, _ addr.LogicalAddr) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("scan = %d keys", len(got))
	}
	for i := 1; i < len(got); i++ {
		if atom.Compare(got[i-1], got[i]) > 0 {
			t.Fatalf("scan out of order at %d: %v > %v", i, got[i-1], got[i])
		}
	}
}

func TestPersistence(t *testing.T) {
	dev, _ := device.NewMem(device.B1K)
	seg, err := segment.Create(dev, 1, 65536)
	if err != nil {
		t.Fatalf("segment: %v", err)
	}
	pool := buffer.NewPool(buffer.NewSizeAwareLRU(1 << 20))
	tr, err := Create(seg, pool)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Insert(atom.Int(int64(i)), addr.New(1, uint64(i+1))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}

	pool2 := buffer.NewPool(buffer.NewSizeAwareLRU(1 << 20))
	tr2, err := Open(seg, pool2, tr.MetaPage())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if tr2.Len() != 500 {
		t.Fatalf("reopened Len = %d", tr2.Len())
	}
	got, err := tr2.Search(atom.Int(250))
	if err != nil || len(got) != 1 {
		t.Fatalf("reopened Search = %v, %v", got, err)
	}

	// Opening a non-meta page fails.
	if _, err := Open(seg, pool2, tr.MetaPage()+1); err == nil {
		t.Fatal("Open of non-meta page accepted")
	}
}

func TestKeyTooLarge(t *testing.T) {
	tr := newTree(t, device.B512)
	big := atom.Str(string(make([]byte, 400)))
	if err := tr.Insert(big, addr.New(1, 1)); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("huge key = %v, want ErrKeyTooLarge", err)
	}
}

// Property: the tree agrees with a sorted reference model under random
// insert/delete, for both scan directions.
func TestBTreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newTree(t, device.B512)
		type ent struct {
			k int64
			a addr.LogicalAddr
		}
		model := map[ent]bool{}
		for op := 0; op < 400; op++ {
			k := int64(rng.Intn(50)) // small domain forces duplicates
			a := addr.New(1, uint64(rng.Intn(20)+1))
			e := ent{k, a}
			if rng.Intn(3) > 0 {
				err := tr.Insert(atom.Int(k), a)
				if model[e] {
					if !errors.Is(err, ErrDupEntry) {
						return false
					}
				} else if err != nil {
					return false
				} else {
					model[e] = true
				}
			} else {
				err := tr.Delete(atom.Int(k), a)
				if model[e] {
					if err != nil {
						return false
					}
					delete(model, e)
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		var want []ent
		for e := range model {
			want = append(want, e)
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].k != want[j].k {
				return want[i].k < want[j].k
			}
			return want[i].a < want[j].a
		})
		var got []ent
		if err := tr.Scan(nil, nil, false, func(k atom.Value, a addr.LogicalAddr) bool {
			got = append(got, ent{k.I, a})
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		// Descending scan is the exact reverse.
		var rev []ent
		if err := tr.Scan(nil, nil, true, func(k atom.Value, a addr.LogicalAddr) bool {
			rev = append(rev, ent{k.I, a})
			return true
		}); err != nil {
			return false
		}
		if len(rev) != len(want) {
			return false
		}
		for i := range want {
			if rev[i] != want[len(want)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	tr := newTree(b, device.B4K)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(atom.Int(int64(i)), addr.New(1, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeSearch(b *testing.B) {
	tr := newTree(b, device.B4K)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := tr.Insert(atom.Int(int64(i)), addr.New(1, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Search(atom.Int(int64(i % n))); err != nil {
			b.Fatal(err)
		}
	}
}
