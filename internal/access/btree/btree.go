// Package btree implements the B*-tree access paths of PRIMA's access
// system (§3.2). An access path maps attribute values to the logical
// addresses of the atoms holding them; it supports exact search and
// key-sequential scans with start/stop conditions in both directions
// ("linear orders based on B*-trees only allow sequential NEXT/PRIOR
// traversal").
//
// The tree lives in its own segment and goes through the buffer pool like
// every other page access. Nodes use the max-key convention: an internal
// entry stores the maximum (key, addr) of its child's subtree, so no
// separate leftmost-child pointer is needed. Duplicate attribute values are
// supported by ordering entries on the composite (key, logical address).
// Leaves are forward-chained for NEXT scans; PRIOR scans walk an explicit
// descent stack.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/storage/buffer"
	"prima/internal/storage/page"
	"prima/internal/storage/segment"
)

// Errors returned by the tree.
var (
	ErrNotFound    = errors.New("btree: entry not found")
	ErrKeyTooLarge = errors.New("btree: key exceeds node capacity")
	ErrBadMeta     = errors.New("btree: bad meta page")
)

const (
	flagLeaf  = 0x01
	metaMagic = 0x4254 // "BT"
)

// entry is one decoded node entry. In leaves Child is unused; in internal
// nodes (Key, Addr) is the maximum composite key of the Child subtree.
type entry struct {
	key   atom.Value
	addr  addr.LogicalAddr
	child uint32
}

// BTree is a persistent B*-tree. It is safe for concurrent use (one writer
// at a time; readers share).
type BTree struct {
	mu   sync.RWMutex
	seg  *segment.Segment
	pool *buffer.Pool
	meta uint32 // meta page number
	root uint32 // root page number; 0 = empty tree
	size int    // live entries
}

// Create initializes a new, empty tree in seg.
func Create(seg *segment.Segment, pool *buffer.Pool) (*BTree, error) {
	pool.Register(seg)
	metaNo, err := seg.AllocatePage()
	if err != nil {
		return nil, fmt.Errorf("btree: allocate meta: %w", err)
	}
	t := &BTree{seg: seg, pool: pool, meta: metaNo}
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree whose meta page is metaNo.
func Open(seg *segment.Segment, pool *buffer.Pool, metaNo uint32) (*BTree, error) {
	pool.Register(seg)
	t := &BTree{seg: seg, pool: pool, meta: metaNo}
	h, err := pool.Fix(segment.PageID{Seg: seg.ID(), No: metaNo})
	if err != nil {
		return nil, fmt.Errorf("btree: open meta: %w", err)
	}
	defer h.Release()
	body := h.Page().Body()
	if h.Page().Type() != page.TypeMeta || binary.BigEndian.Uint16(body) != metaMagic {
		return nil, ErrBadMeta
	}
	t.root = binary.BigEndian.Uint32(body[4:])
	t.size = int(binary.BigEndian.Uint64(body[8:]))
	return t, nil
}

// MetaPage returns the page number identifying the tree on disk.
func (t *BTree) MetaPage() uint32 { return t.meta }

// Segment returns the segment the tree lives in.
func (t *BTree) Segment() *segment.Segment { return t.seg }

// Len returns the number of entries.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

func (t *BTree) writeMeta() error {
	h, err := t.pool.FixNew(segment.PageID{Seg: t.seg.ID(), No: t.meta})
	if err != nil {
		return err
	}
	defer h.Release()
	pg := h.Page()
	pg.Init(page.TypeMeta, uint32(t.seg.ID()), t.meta)
	body := pg.Body()
	binary.BigEndian.PutUint16(body, metaMagic)
	binary.BigEndian.PutUint32(body[4:], t.root)
	binary.BigEndian.PutUint64(body[8:], uint64(t.size))
	h.MarkDirty()
	return nil
}

// cmp orders composite keys (value, addr).
func cmp(k1 atom.Value, a1 addr.LogicalAddr, k2 atom.Value, a2 addr.LogicalAddr) int {
	if c := atom.Compare(k1, k2); c != 0 {
		return c
	}
	switch {
	case a1 < a2:
		return -1
	case a1 > a2:
		return 1
	default:
		return 0
	}
}

// --- node I/O ---------------------------------------------------------------

// readNode decodes a node page into entries (slot order == sorted order by
// construction: nodes are always rewritten wholesale in sorted order).
func readNode(pg page.Page) (leaf bool, entries []entry, next uint32, err error) {
	leaf = pg.Flags()&flagLeaf != 0
	next = pg.Next()
	pg.ForEach(func(_ int, rec []byte) bool {
		var e entry
		if len(rec) < 2 {
			err = fmt.Errorf("btree: short entry")
			return false
		}
		klen := int(binary.BigEndian.Uint16(rec))
		rec = rec[2:]
		if len(rec) < klen+8 {
			err = fmt.Errorf("btree: truncated entry")
			return false
		}
		e.key, _, err = atom.DecodeValue(rec[:klen])
		if err != nil {
			return false
		}
		rec = rec[klen:]
		e.addr = addr.LogicalAddr(binary.BigEndian.Uint64(rec))
		rec = rec[8:]
		if !leaf {
			if len(rec) < 4 {
				err = fmt.Errorf("btree: internal entry missing child")
				return false
			}
			e.child = binary.BigEndian.Uint32(rec)
		}
		entries = append(entries, e)
		return true
	})
	return leaf, entries, next, err
}

// writeNode rewrites a node page with the given sorted entries.
func writeNode(pg page.Page, segID, pageNo uint32, leaf bool, entries []entry, next uint32) error {
	pg.Init(page.TypeIndex, segID, pageNo)
	if leaf {
		pg.SetFlags(flagLeaf)
	}
	pg.SetNext(next)
	var buf []byte
	for _, e := range entries {
		kenc := atom.AppendValue(nil, e.key)
		need := 2 + len(kenc) + 8
		if !leaf {
			need += 4
		}
		if cap(buf) < need {
			buf = make([]byte, 0, need)
		}
		buf = buf[:0]
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(kenc)))
		buf = append(buf, kenc...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.addr))
		if !leaf {
			buf = binary.BigEndian.AppendUint32(buf, e.child)
		}
		if _, err := pg.Insert(buf); err != nil {
			return err
		}
	}
	return nil
}

// entryBytes estimates the stored size of an entry.
func entryBytes(e entry, leaf bool) int {
	n := 2 + len(atom.AppendValue(nil, e.key)) + 8 + 4 /* slot */
	if !leaf {
		n += 4
	}
	return n
}

// nodeFits reports whether entries fit one page of the tree's size.
func (t *BTree) nodeFits(entries []entry, leaf bool) bool {
	total := 0
	for _, e := range entries {
		total += entryBytes(e, leaf)
	}
	return total <= t.seg.PageSize()-page.HeaderSize
}

func (t *BTree) allocNode() (uint32, error) {
	no, err := t.seg.AllocatePage()
	if err != nil {
		return 0, fmt.Errorf("btree: allocate node: %w", err)
	}
	return no, nil
}

func (t *BTree) loadNode(no uint32) (bool, []entry, uint32, error) {
	h, err := t.pool.Fix(segment.PageID{Seg: t.seg.ID(), No: no})
	if err != nil {
		return false, nil, 0, err
	}
	defer h.Release()
	return readNode(h.Page())
}

func (t *BTree) storeNode(no uint32, leaf bool, entries []entry, next uint32, fresh bool) error {
	var h *buffer.Handle
	var err error
	if fresh {
		h, err = t.pool.FixNew(segment.PageID{Seg: t.seg.ID(), No: no})
	} else {
		h, err = t.pool.Fix(segment.PageID{Seg: t.seg.ID(), No: no})
	}
	if err != nil {
		return err
	}
	defer h.Release()
	if err := writeNode(h.Page(), uint32(t.seg.ID()), no, leaf, entries, next); err != nil {
		return err
	}
	h.MarkDirty()
	return nil
}

// --- mutation ---------------------------------------------------------------

// Insert adds (key, a) to the tree. Duplicate composite entries are
// rejected with ErrDupEntry.
func (t *BTree) Insert(key atom.Value, a addr.LogicalAddr) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	maxEntry := t.seg.PageSize() / 4
	if entryBytes(entry{key: key}, false) > maxEntry {
		return fmt.Errorf("%w: %d bytes", ErrKeyTooLarge, entryBytes(entry{key: key}, false))
	}

	if t.root == 0 {
		no, err := t.allocNode()
		if err != nil {
			return err
		}
		if err := t.storeNode(no, true, []entry{{key: key, addr: a}}, 0, true); err != nil {
			return err
		}
		t.root = no
		t.size = 1
		return t.writeMeta()
	}

	// Descend, remembering the path (pageNo, childIdx).
	var path []pathStep
	no := t.root
	for {
		leaf, entries, _, err := t.loadNode(no)
		if err != nil {
			return err
		}
		if leaf {
			break
		}
		idx := len(entries) - 1
		for i, e := range entries {
			if cmp(key, a, e.key, e.addr) <= 0 {
				idx = i
				break
			}
		}
		path = append(path, pathStep{no, idx})
		no = entries[idx].child
	}

	// Insert into the leaf (sorted position).
	leaf, entries, next, err := t.loadNode(no)
	if err != nil {
		return err
	}
	pos := len(entries)
	for i, e := range entries {
		c := cmp(key, a, e.key, e.addr)
		if c == 0 {
			return ErrDupEntry
		}
		if c < 0 {
			pos = i
			break
		}
	}
	entries = append(entries, entry{})
	copy(entries[pos+1:], entries[pos:])
	entries[pos] = entry{key: key, addr: a}
	t.size++

	// Write back, splitting up the path as needed.
	newChildNo := no
	newChildEntries := entries
	isLeaf := leaf
	childNext := next
	for {
		if t.nodeFits(newChildEntries, isLeaf) {
			if err := t.storeNode(newChildNo, isLeaf, newChildEntries, childNext, false); err != nil {
				return err
			}
			// Propagate possibly increased max keys up the path.
			hi := newChildEntries[len(newChildEntries)-1]
			if err := t.bumpMax(path, newChildNo, hi); err != nil {
				return err
			}
			return t.writeMeta()
		}
		// Split.
		mid := len(newChildEntries) / 2
		leftEntries := append([]entry(nil), newChildEntries[:mid]...)
		rightEntries := append([]entry(nil), newChildEntries[mid:]...)
		rightNo, err := t.allocNode()
		if err != nil {
			return err
		}
		if isLeaf {
			if err := t.storeNode(rightNo, true, rightEntries, childNext, true); err != nil {
				return err
			}
			if err := t.storeNode(newChildNo, true, leftEntries, rightNo, false); err != nil {
				return err
			}
		} else {
			if err := t.storeNode(rightNo, false, rightEntries, 0, true); err != nil {
				return err
			}
			if err := t.storeNode(newChildNo, false, leftEntries, 0, false); err != nil {
				return err
			}
		}
		maxL := leftEntries[len(leftEntries)-1]
		maxR := rightEntries[len(rightEntries)-1]

		if len(path) == 0 {
			// Root split.
			rootNo, err := t.allocNode()
			if err != nil {
				return err
			}
			rootEntries := []entry{
				{key: maxL.key, addr: maxL.addr, child: newChildNo},
				{key: maxR.key, addr: maxR.addr, child: rightNo},
			}
			if err := t.storeNode(rootNo, false, rootEntries, 0, true); err != nil {
				return err
			}
			t.root = rootNo
			return t.writeMeta()
		}

		parent := path[len(path)-1]
		path = path[:len(path)-1]
		_, pentries, pnext, err := t.loadNode(parent.no)
		if err != nil {
			return err
		}
		// Replace the split child's entry and add the right sibling.
		pentries[parent.idx] = entry{key: maxL.key, addr: maxL.addr, child: newChildNo}
		pentries = append(pentries, entry{})
		copy(pentries[parent.idx+2:], pentries[parent.idx+1:])
		pentries[parent.idx+1] = entry{key: maxR.key, addr: maxR.addr, child: rightNo}

		newChildNo = parent.no
		newChildEntries = pentries
		isLeaf = false
		childNext = pnext
	}
}

// ErrDupEntry signals an exact (key, addr) duplicate.
var ErrDupEntry = errors.New("btree: duplicate entry")

// pathStep records one hop of a root-to-leaf descent.
type pathStep struct {
	no  uint32
	idx int
}

// bumpMax raises the max keys along the descent path if the child's maximum
// grew beyond the recorded separator (happens when inserting past the
// rightmost entry).
func (t *BTree) bumpMax(path []pathStep, childNo uint32, hi entry) error {
	for i := len(path) - 1; i >= 0; i-- {
		no, idx := path[i].no, path[i].idx
		_, entries, next, err := t.loadNode(no)
		if err != nil {
			return err
		}
		if idx >= len(entries) || entries[idx].child != childNo {
			// Path became stale due to a split; locate the child.
			idx = -1
			for j, e := range entries {
				if e.child == childNo {
					idx = j
					break
				}
			}
			if idx == -1 {
				return fmt.Errorf("btree: lost child %d during max propagation", childNo)
			}
		}
		if cmp(hi.key, hi.addr, entries[idx].key, entries[idx].addr) <= 0 {
			return nil // separator already covers the subtree
		}
		entries[idx].key = hi.key
		entries[idx].addr = hi.addr
		if err := t.storeNode(no, false, entries, next, false); err != nil {
			return err
		}
		childNo = no
	}
	return nil
}

// Delete removes the entry (key, a). Nodes are allowed to underflow (no
// rebalancing); empty leaves remain chained and are skipped by scans.
func (t *BTree) Delete(key atom.Value, a addr.LogicalAddr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == 0 {
		return ErrNotFound
	}
	no := t.root
	for {
		leaf, entries, next, err := t.loadNode(no)
		if err != nil {
			return err
		}
		if !leaf {
			idx := -1
			for i, e := range entries {
				if cmp(key, a, e.key, e.addr) <= 0 {
					idx = i
					break
				}
			}
			if idx == -1 {
				return ErrNotFound
			}
			no = entries[idx].child
			continue
		}
		for i, e := range entries {
			c := cmp(key, a, e.key, e.addr)
			if c == 0 {
				entries = append(entries[:i], entries[i+1:]...)
				if err := t.storeNode(no, true, entries, next, false); err != nil {
					return err
				}
				t.size--
				return t.writeMeta()
			}
			if c < 0 {
				return ErrNotFound
			}
		}
		return ErrNotFound
	}
}

// Search returns the logical addresses of all entries whose key equals key.
func (t *BTree) Search(key atom.Value) ([]addr.LogicalAddr, error) {
	var out []addr.LogicalAddr
	err := t.Scan(&key, &key, false, func(_ atom.Value, a addr.LogicalAddr) bool {
		out = append(out, a)
		return true
	})
	return out, err
}

// Scan iterates entries with start <= key <= stop (nil bounds are open) in
// ascending order, or descending when desc is set. fn returning false stops
// the scan. This implements the access-path scan's start/stop conditions and
// NEXT/PRIOR directions (§3.2).
func (t *BTree) Scan(start, stop *atom.Value, desc bool, fn func(key atom.Value, a addr.LogicalAddr) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == 0 {
		return nil
	}
	if desc {
		return t.scanDesc(start, stop, fn)
	}
	return t.scanAsc(start, stop, fn)
}

func (t *BTree) scanAsc(start, stop *atom.Value, fn func(atom.Value, addr.LogicalAddr) bool) error {
	// Descend to the first candidate leaf.
	no := t.root
	for {
		leaf, entries, _, err := t.loadNode(no)
		if err != nil {
			return err
		}
		if leaf {
			break
		}
		idx := len(entries) - 1
		if start != nil {
			for i, e := range entries {
				if cmp(*start, 0, e.key, e.addr) <= 0 {
					idx = i
					break
				}
			}
		} else {
			idx = 0
		}
		no = entries[idx].child
	}
	for no != 0 {
		_, entries, next, err := t.loadNode(no)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if start != nil && atom.Compare(e.key, *start) < 0 {
				continue
			}
			if stop != nil && atom.Compare(e.key, *stop) > 0 {
				return nil
			}
			if !fn(e.key, e.addr) {
				return nil
			}
		}
		no = next
	}
	return nil
}

// scanDesc walks the tree right-to-left using an explicit stack.
func (t *BTree) scanDesc(start, stop *atom.Value, fn func(atom.Value, addr.LogicalAddr) bool) error {
	type frame struct {
		no      uint32
		entries []entry
		idx     int
	}
	var stack []frame
	push := func(no uint32) (bool, []entry, error) {
		leaf, entries, _, err := t.loadNode(no)
		if err != nil {
			return false, nil, err
		}
		if !leaf {
			stack = append(stack, frame{no: no, entries: entries, idx: len(entries) - 1})
		}
		return leaf, entries, nil
	}

	// Initial descent to the leaf holding the upper bound (or the
	// rightmost leaf).
	no := t.root
	for {
		leaf, entries, err := push(no)
		if err != nil {
			return err
		}
		if leaf {
			// Emit this leaf then continue via the stack.
			if done, err := emitDesc(entries, start, stop, fn); done || err != nil {
				return err
			}
			break
		}
		f := &stack[len(stack)-1]
		if stop != nil {
			// Choose the first child that can contain keys <= stop... the
			// last child whose subtree intersects (-inf, stop]: the first
			// entry with max >= stop, or the last entry otherwise.
			f.idx = len(f.entries) - 1
			for i, e := range f.entries {
				if atom.Compare(e.key, *stop) >= 0 {
					f.idx = i
					break
				}
			}
		}
		no = f.entries[f.idx].child
	}

	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		f.idx--
		if f.idx < 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		// Descend to the rightmost leaf of this subtree.
		no := f.entries[f.idx].child
		// Prune subtrees entirely above stop or below start.
		if start != nil && atom.Compare(f.entries[f.idx].key, *start) < 0 {
			return nil // everything further left is smaller than start
		}
		for {
			leaf, entries, err := push(no)
			if err != nil {
				return err
			}
			if leaf {
				if done, err := emitDesc(entries, start, stop, fn); done || err != nil {
					return err
				}
				break
			}
			no = entries[len(entries)-1].child
		}
	}
	return nil
}

func emitDesc(entries []entry, start, stop *atom.Value, fn func(atom.Value, addr.LogicalAddr) bool) (bool, error) {
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if stop != nil && atom.Compare(e.key, *stop) > 0 {
			continue
		}
		if start != nil && atom.Compare(e.key, *start) < 0 {
			return true, nil
		}
		if !fn(e.key, e.addr) {
			return true, nil
		}
	}
	return false, nil
}

// Height returns the tree height (0 for empty), for diagnostics and tests.
func (t *BTree) Height() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == 0 {
		return 0, nil
	}
	h := 1
	no := t.root
	for {
		leaf, entries, _, err := t.loadNode(no)
		if err != nil {
			return 0, err
		}
		if leaf {
			return h, nil
		}
		if len(entries) == 0 {
			return 0, fmt.Errorf("btree: empty internal node %d", no)
		}
		no = entries[0].child
		h++
	}
}
