// Package mdindex implements the multi-dimensional access path structures
// of §3.2: "Since we offer multi-dimensional access path structures ...
// with n keys, navigation has much more degrees of freedom. Therefore,
// start/stop conditions and directions may be specified individually for
// every key involved in the scan."
//
// The implementation is a grid file: linear scales per dimension partition
// the key space into cells, and buckets split along cycling dimensions as
// they overflow. Region (box) queries prune whole buckets through the
// scales. Unlike the page-based B*-tree, the grid keeps its directory in
// memory and persists via snapshots at checkpoint time — a documented
// simplification (see DESIGN.md): the experiments exercise search shape, not
// grid paging.
package mdindex

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
)

// Errors returned by the grid.
var (
	ErrDims     = errors.New("mdindex: wrong number of key dimensions")
	ErrNotFound = errors.New("mdindex: entry not found")
	ErrDup      = errors.New("mdindex: duplicate entry")
)

// Entry is a key vector plus the atom it indexes.
type Entry struct {
	Keys []atom.Value
	Addr addr.LogicalAddr
}

// bucket holds entries of one grid region.
type bucket struct {
	entries []Entry
}

// Grid is a k-dimensional grid file. It is safe for concurrent use.
type Grid struct {
	mu       sync.RWMutex
	dims     int
	capacity int // bucket capacity before splitting
	// scales[d] holds ascending split points of dimension d; cell i of
	// dimension d covers [scales[d][i-1], scales[d][i]) with open ends.
	scales [][]atom.Value
	// directory maps cell coordinates to buckets; multiple cells may share
	// one bucket (grid-file twin cells are merged implicitly by pointer).
	directory map[string]*bucket
	size      int
	splitNext int // round-robin split dimension
}

// New creates a grid over dims dimensions. bucketCap tunes splitting
// (default 64 when <= 0).
func New(dims, bucketCap int) *Grid {
	if bucketCap <= 0 {
		bucketCap = 64
	}
	return &Grid{
		dims:      dims,
		capacity:  bucketCap,
		scales:    make([][]atom.Value, dims),
		directory: make(map[string]*bucket),
	}
}

// Dims returns the dimensionality.
func (g *Grid) Dims() int { return g.dims }

// Len returns the number of entries.
func (g *Grid) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.size
}

// cellOf returns the coordinates of the cell containing keys.
func (g *Grid) cellOf(keys []atom.Value) []int {
	cell := make([]int, g.dims)
	for d, s := range g.scales {
		// First split point strictly greater than the key = cell index.
		cell[d] = sort.Search(len(s), func(i int) bool {
			return atom.Compare(keys[d], s[i]) < 0
		})
	}
	return cell
}

func cellKey(cell []int) string {
	b := make([]byte, 0, len(cell)*3)
	for _, c := range cell {
		b = append(b, byte(c>>16), byte(c>>8), byte(c))
	}
	return string(b)
}

func (g *Grid) bucketFor(cell []int) *bucket {
	k := cellKey(cell)
	b, ok := g.directory[k]
	if !ok {
		b = &bucket{}
		g.directory[k] = b
	}
	return b
}

// Insert adds an entry. Exact duplicates (same keys and addr) are rejected.
func (g *Grid) Insert(keys []atom.Value, a addr.LogicalAddr) error {
	if len(keys) != g.dims {
		return fmt.Errorf("%w: got %d, want %d", ErrDims, len(keys), g.dims)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	cell := g.cellOf(keys)
	b := g.bucketFor(cell)
	for _, e := range b.entries {
		if e.Addr == a && keysEqual(e.Keys, keys) {
			return fmt.Errorf("%w: %v %v", ErrDup, keys, a)
		}
	}
	cp := make([]atom.Value, len(keys))
	for i, k := range keys {
		cp[i] = k.Clone()
	}
	b.entries = append(b.entries, Entry{Keys: cp, Addr: a})
	g.size++
	if len(b.entries) > g.capacity {
		g.split(cell, b)
	}
	return nil
}

func keysEqual(a, b []atom.Value) bool {
	for i := range a {
		if atom.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// split refines a scale along the round-robin dimension at the median of
// the overflowing bucket and redistributes affected buckets.
func (g *Grid) split(cell []int, b *bucket) {
	// Choose a dimension where the bucket actually has distinct values.
	for attempts := 0; attempts < g.dims; attempts++ {
		d := g.splitNext
		g.splitNext = (g.splitNext + 1) % g.dims

		vals := make([]atom.Value, len(b.entries))
		for i, e := range b.entries {
			vals[i] = e.Keys[d]
		}
		sort.Slice(vals, func(i, j int) bool { return atom.Compare(vals[i], vals[j]) < 0 })
		median := vals[len(vals)/2]
		if atom.Compare(vals[0], median) == 0 && atom.Compare(vals[len(vals)-1], median) == 0 {
			continue // all equal in this dimension; try the next
		}
		// Insert the split point into the scale and rebuild the directory:
		// every cell index >= position shifts by one along d.
		s := g.scales[d]
		pos := sort.Search(len(s), func(i int) bool {
			return atom.Compare(median, s[i]) <= 0
		})
		if pos < len(s) && atom.Compare(s[pos], median) == 0 {
			continue // split point already exists
		}
		ns := make([]atom.Value, 0, len(s)+1)
		ns = append(ns, s[:pos]...)
		ns = append(ns, median.Clone())
		ns = append(ns, s[pos:]...)
		g.scales[d] = ns
		g.rebuild()
		return
	}
	// All dimensions degenerate: allow oversized bucket.
}

// rebuild redistributes every entry after a scale change. Grid files
// normally shift directory slices in place; rebuilding keeps the code small
// at O(n) per split, which is fine at the scales the experiments use.
func (g *Grid) rebuild() {
	old := g.directory
	g.directory = make(map[string]*bucket, len(old)*2)
	for _, b := range old {
		for _, e := range b.entries {
			nb := g.bucketFor(g.cellOf(e.Keys))
			nb.entries = append(nb.entries, e)
		}
	}
}

// Delete removes the entry with exactly these keys and addr.
func (g *Grid) Delete(keys []atom.Value, a addr.LogicalAddr) error {
	if len(keys) != g.dims {
		return fmt.Errorf("%w: got %d, want %d", ErrDims, len(keys), g.dims)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.bucketFor(g.cellOf(keys))
	for i, e := range b.entries {
		if e.Addr == a && keysEqual(e.Keys, keys) {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			g.size--
			return nil
		}
	}
	return fmt.Errorf("%w: %v %v", ErrNotFound, keys, a)
}

// Range bounds one dimension of a region query. Nil bounds are open.
type Range struct {
	Start *atom.Value // inclusive lower bound
	Stop  *atom.Value // inclusive upper bound
	Desc  bool        // scan direction for this key in the result order
}

// contains reports whether v lies in the range.
func (r Range) contains(v atom.Value) bool {
	if r.Start != nil && atom.Compare(v, *r.Start) < 0 {
		return false
	}
	if r.Stop != nil && atom.Compare(v, *r.Stop) > 0 {
		return false
	}
	return true
}

// Search returns the addresses of entries matching all keys exactly.
func (g *Grid) Search(keys []atom.Value) ([]addr.LogicalAddr, error) {
	if len(keys) != g.dims {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDims, len(keys), g.dims)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []addr.LogicalAddr
	k := cellKey(g.cellOf(keys))
	if b, ok := g.directory[k]; ok {
		for _, e := range b.entries {
			if keysEqual(e.Keys, keys) {
				out = append(out, e.Addr)
			}
		}
	}
	return out, nil
}

// Scan iterates entries inside the region box in the order given by the
// ranges: results sort by dimension 0 first (direction per Desc), then
// dimension 1, and so on — "the user determines the selection path for
// elements in an n-dimensional space". ranges must have one Range per
// dimension. fn returning false stops the scan.
func (g *Grid) Scan(ranges []Range, fn func(e Entry) bool) error {
	if len(ranges) != g.dims {
		return fmt.Errorf("%w: got %d ranges, want %d", ErrDims, len(ranges), g.dims)
	}
	g.mu.RLock()
	// Collect matching entries from buckets that intersect the box.
	var hits []Entry
	for key, b := range g.directory {
		if !g.cellIntersects(key, ranges) {
			continue
		}
		for _, e := range b.entries {
			ok := true
			for d, r := range ranges {
				if !r.contains(e.Keys[d]) {
					ok = false
					break
				}
			}
			if ok {
				hits = append(hits, e)
			}
		}
	}
	g.mu.RUnlock()

	sort.Slice(hits, func(i, j int) bool {
		for d := range ranges {
			c := atom.Compare(hits[i].Keys[d], hits[j].Keys[d])
			if ranges[d].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return hits[i].Addr < hits[j].Addr
	})
	for _, e := range hits {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// cellIntersects prunes cells wholly outside the query box using the scales.
func (g *Grid) cellIntersects(key string, ranges []Range) bool {
	for d := 0; d < g.dims; d++ {
		c := int(key[d*3])<<16 | int(key[d*3+1])<<8 | int(key[d*3+2])
		s := g.scales[d]
		// Cell c of dimension d covers [s[c-1], s[c]).
		if r := ranges[d]; r.Start != nil && c < len(s) {
			if atom.Compare(s[c], *r.Start) <= 0 {
				return false // cell entirely below start
			}
		}
		if r := ranges[d]; r.Stop != nil && c > 0 {
			if atom.Compare(s[c-1], *r.Stop) > 0 {
				return false // cell entirely above stop
			}
		}
	}
	return true
}

// Buckets returns the number of live buckets, for diagnostics.
func (g *Grid) Buckets() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.directory)
}

// Entries returns a copy of all entries (diagnostics/persistence).
func (g *Grid) Entries() []Entry {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Entry, 0, g.size)
	for _, b := range g.directory {
		out = append(out, b.entries...)
	}
	return out
}

// Snapshot serializes the grid's entries. Scales and buckets are rebuilt on
// load by reinsertion.
func (g *Grid) Snapshot() []byte {
	g.mu.RLock()
	defer g.mu.RUnlock()
	buf := []byte{byte(g.dims), byte(g.capacity >> 8), byte(g.capacity)}
	var cnt [4]byte
	put32 := func(v uint32) {
		cnt[0], cnt[1], cnt[2], cnt[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		buf = append(buf, cnt[:]...)
	}
	put32(uint32(g.size))
	for _, b := range g.directory {
		for _, e := range b.entries {
			for _, k := range e.Keys {
				buf = atom.AppendValue(buf, k)
			}
			put32(uint32(e.Addr >> 32))
			put32(uint32(e.Addr))
		}
	}
	return buf
}

// Load rebuilds a grid from Snapshot output.
func Load(data []byte) (*Grid, error) {
	if len(data) < 7 {
		return nil, fmt.Errorf("mdindex: truncated snapshot")
	}
	dims := int(data[0])
	capacity := int(data[1])<<8 | int(data[2])
	n := int(data[3])<<24 | int(data[4])<<16 | int(data[5])<<8 | int(data[6])
	data = data[7:]
	g := New(dims, capacity)
	for i := 0; i < n; i++ {
		keys := make([]atom.Value, dims)
		var err error
		for d := 0; d < dims; d++ {
			keys[d], data, err = atom.DecodeValue(data)
			if err != nil {
				return nil, fmt.Errorf("mdindex: snapshot entry %d: %w", i, err)
			}
		}
		if len(data) < 8 {
			return nil, fmt.Errorf("mdindex: truncated snapshot addr")
		}
		hi := uint64(data[0])<<24 | uint64(data[1])<<16 | uint64(data[2])<<8 | uint64(data[3])
		lo := uint64(data[4])<<24 | uint64(data[5])<<16 | uint64(data[6])<<8 | uint64(data[7])
		data = data[8:]
		if err := g.Insert(keys, addr.LogicalAddr(hi<<32|lo)); err != nil {
			return nil, err
		}
	}
	return g, nil
}
