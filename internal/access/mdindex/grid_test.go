package mdindex

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
)

func keys2(x, y float64) []atom.Value { return []atom.Value{atom.Real(x), atom.Real(y)} }

func TestInsertSearchDelete(t *testing.T) {
	g := New(2, 4)
	a1 := addr.New(1, 1)
	if err := g.Insert(keys2(1, 2), a1); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := g.Insert(keys2(1, 2), a1); !errors.Is(err, ErrDup) {
		t.Fatalf("duplicate = %v, want ErrDup", err)
	}
	// Same keys, different atom: allowed.
	a2 := addr.New(1, 2)
	if err := g.Insert(keys2(1, 2), a2); err != nil {
		t.Fatalf("Insert same keys new addr: %v", err)
	}
	got, err := g.Search(keys2(1, 2))
	if err != nil || len(got) != 2 {
		t.Fatalf("Search = %v, %v", got, err)
	}
	if err := g.Delete(keys2(1, 2), a1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := g.Delete(keys2(1, 2), a1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	// Dimension mismatch.
	if err := g.Insert([]atom.Value{atom.Real(1)}, a1); !errors.Is(err, ErrDims) {
		t.Fatalf("bad dims = %v, want ErrDims", err)
	}
}

func TestSplittingKeepsAllEntries(t *testing.T) {
	g := New(2, 4) // tiny buckets force many splits
	rng := rand.New(rand.NewSource(7))
	type ent struct {
		x, y float64
		a    addr.LogicalAddr
	}
	var all []ent
	for i := 0; i < 500; i++ {
		e := ent{rng.Float64() * 100, rng.Float64() * 100, addr.New(1, uint64(i+1))}
		all = append(all, e)
		if err := g.Insert(keys2(e.x, e.y), e.a); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if g.Len() != 500 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Buckets() < 10 {
		t.Fatalf("only %d buckets after 500 inserts with capacity 4", g.Buckets())
	}
	for _, e := range all {
		got, err := g.Search(keys2(e.x, e.y))
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		found := false
		for _, a := range got {
			if a == e.a {
				found = true
			}
		}
		if !found {
			t.Fatalf("entry %v lost after splits", e.a)
		}
	}
}

func TestRegionScanMatchesBruteForce(t *testing.T) {
	g := New(2, 8)
	rng := rand.New(rand.NewSource(11))
	type pt struct{ x, y float64 }
	pts := make(map[addr.LogicalAddr]pt)
	for i := 0; i < 300; i++ {
		p := pt{rng.Float64() * 10, rng.Float64() * 10}
		a := addr.New(1, uint64(i+1))
		pts[a] = p
		if err := g.Insert(keys2(p.x, p.y), a); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	lo, hi := atom.Real(2.5), atom.Real(7.5)
	ranges := []Range{
		{Start: &lo, Stop: &hi},
		{Start: &lo, Stop: &hi},
	}
	got := map[addr.LogicalAddr]bool{}
	err := g.Scan(ranges, func(e Entry) bool {
		got[e.Addr] = true
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for a, p := range pts {
		want := p.x >= 2.5 && p.x <= 7.5 && p.y >= 2.5 && p.y <= 7.5
		if got[a] != want {
			t.Fatalf("addr %v: scan=%v, brute=%v (point %+v)", a, got[a], want, p)
		}
	}
}

func TestScanOrderPerKeyDirections(t *testing.T) {
	g := New(2, 4)
	n := 0
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			n++
			if err := g.Insert([]atom.Value{atom.Int(int64(x)), atom.Int(int64(y))}, addr.New(1, uint64(n))); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
	}
	// x ascending, y descending.
	var seq [][2]int64
	err := g.Scan([]Range{{}, {Desc: true}}, func(e Entry) bool {
		seq = append(seq, [2]int64{e.Keys[0].I, e.Keys[1].I})
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(seq) != 16 {
		t.Fatalf("scan saw %d entries", len(seq))
	}
	for i := 1; i < len(seq); i++ {
		a, b := seq[i-1], seq[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] < b[1]) {
			t.Fatalf("order violated at %d: %v then %v (want x asc, y desc)", i, a, b)
		}
	}
	// Early stop.
	cnt := 0
	g.Scan([]Range{{}, {}}, func(Entry) bool { cnt++; return false })
	if cnt != 1 {
		t.Fatalf("early stop ignored: %d", cnt)
	}
}

func TestMixedKindKeys(t *testing.T) {
	g := New(2, 4)
	if err := g.Insert([]atom.Value{atom.Str("alpha"), atom.Int(1)}, addr.New(1, 1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := g.Insert([]atom.Value{atom.Str("beta"), atom.Int(2)}, addr.New(1, 2)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	lo := atom.Str("b")
	var hit int
	g.Scan([]Range{{Start: &lo}, {}}, func(e Entry) bool { hit++; return true })
	if hit != 1 {
		t.Fatalf("string range scan = %d hits, want 1", hit)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := New(3, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		keys := []atom.Value{
			atom.Real(rng.Float64()),
			atom.Int(int64(rng.Intn(100))),
			atom.Str(string(rune('a' + rng.Intn(26)))),
		}
		if err := g.Insert(keys, addr.New(2, uint64(i+1))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	g2, err := Load(g.Snapshot())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if g2.Len() != g.Len() || g2.Dims() != 3 {
		t.Fatalf("reloaded: len=%d dims=%d", g2.Len(), g2.Dims())
	}
	for _, e := range g.Entries() {
		got, err := g2.Search(e.Keys)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		ok := false
		for _, a := range got {
			if a == e.Addr {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("entry %v lost in snapshot", e.Addr)
		}
	}
	if _, err := Load([]byte{1, 2}); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// Property: grid region scans agree with brute force over random data and
// random boxes.
func TestGridQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(2, 4)
		type ent struct {
			x, y int64
			a    addr.LogicalAddr
		}
		var all []ent
		for i := 0; i < 150; i++ {
			e := ent{int64(rng.Intn(20)), int64(rng.Intn(20)), addr.New(1, uint64(i+1))}
			all = append(all, e)
			if err := g.Insert([]atom.Value{atom.Int(e.x), atom.Int(e.y)}, e.a); err != nil {
				return false
			}
		}
		// Delete a random subset.
		live := map[addr.LogicalAddr]ent{}
		for _, e := range all {
			live[e.a] = e
		}
		for i := 0; i < 30; i++ {
			e := all[rng.Intn(len(all))]
			if _, ok := live[e.a]; !ok {
				continue
			}
			if err := g.Delete([]atom.Value{atom.Int(e.x), atom.Int(e.y)}, e.a); err != nil {
				return false
			}
			delete(live, e.a)
		}
		// Random box.
		x0, x1 := int64(rng.Intn(20)), int64(rng.Intn(20))
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		y0, y1 := int64(rng.Intn(20)), int64(rng.Intn(20))
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		lox, hix := atom.Int(x0), atom.Int(x1)
		loy, hiy := atom.Int(y0), atom.Int(y1)
		got := map[addr.LogicalAddr]bool{}
		err := g.Scan([]Range{{Start: &lox, Stop: &hix}, {Start: &loy, Stop: &hiy}}, func(e Entry) bool {
			got[e.Addr] = true
			return true
		})
		if err != nil {
			return false
		}
		for a, e := range live {
			want := e.x >= x0 && e.x <= x1 && e.y >= y0 && e.y <= y1
			if got[a] != want {
				return false
			}
		}
		return len(got) <= len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGridInsert(b *testing.B) {
	g := New(2, 64)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Insert(keys2(rng.Float64(), rng.Float64()), addr.New(1, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridRegionScan(b *testing.B) {
	g := New(2, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if err := g.Insert(keys2(rng.Float64(), rng.Float64()), addr.New(1, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
	lo, hi := atom.Real(0.4), atom.Real(0.6)
	ranges := []Range{{Start: &lo, Stop: &hi}, {Start: &lo, Stop: &hi}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := g.Scan(ranges, func(Entry) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}
