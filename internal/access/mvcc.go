package access

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"prima/internal/access/addr"
	"prima/internal/obs"
)

// Multi-version atom store: the generalization of the decoded-atom cache's
// per-address version stamps into real snapshot isolation. Writers install
// the immutable pre-image of every atom they touch before mutating any
// physical record; readers that opened a Snapshot resolve each address
// against the epoch they captured at open, so a cursor that reads ahead of
// its consumer (the parallel assembly pipeline) can never observe a writer's
// mutation mid-iteration. Old versions are reclaimed as soon as no open
// snapshot can reach them — GC is driven by write completion and by
// Snapshot.Close, so a write-only or snapshot-free workload keeps every
// chain empty and pays a single atomic load per read.
//
// Epochs come from one global write counter (the generalized version stamp):
// a write span gets id w = nextW+1 and stays "active" until its mutation is
// complete; a snapshot opens at epoch e = min(active)-1 (or nextW when no
// write is in flight), so every write that could still change state has
// w > e and every write with w <= e had fully finished before the snapshot
// existed. A chain entry {w, pre} means "pre was the atom's image before
// write w"; nil pre is a tombstone ("the atom did not exist before w",
// installed by inserts and resurrections). Resolving address a at epoch e
// takes the image of the first chain entry with w > e; an undecided chain
// means the current state already is the epoch's state.

// mvShardCount is the number of chain-map lock stripes (power of two).
const mvShardCount = 64

// mvSweepThreshold triggers a full sweep from writeEnd when the total number
// of chain entries exceeds it — a safety net against long-lived snapshots
// accumulating unbounded history while targeted pruning is blocked.
const mvSweepThreshold = 512

// mvVersion is one chain entry: the atom image visible at epochs < w.
// at == nil records that the atom did not exist before write w.
type mvVersion struct {
	w  uint64
	at *Atom
}

// mvShard is one lock stripe of the chain map.
type mvShard struct {
	mu     sync.Mutex
	chains map[addr.LogicalAddr][]mvVersion
}

// mvStore is the multi-version store: sharded pre-image chains plus the
// epoch registry (write counter, in-flight writes, open snapshots).
type mvStore struct {
	// entries counts chain entries across all shards. It is incremented
	// before an entry is installed and decremented after removal, so
	// entries == 0 proves no chain entry exists or is being installed —
	// the read fast path is a single atomic load.
	entries atomic.Int64

	shards [mvShardCount]mvShard

	mu      sync.Mutex
	nextW   uint64              // last write id handed out
	active  map[uint64]struct{} // write ids still mutating
	snaps   map[uint64]int      // open snapshots per epoch (refcounted)
	minSnap uint64              // min key of snaps (valid while len(snaps) > 0)
}

func newMVStore() *mvStore {
	m := &mvStore{
		active: make(map[uint64]struct{}),
		snaps:  make(map[uint64]int),
	}
	for i := range m.shards {
		m.shards[i].chains = make(map[addr.LogicalAddr][]mvVersion)
	}
	return m
}

func (m *mvStore) shardOf(a addr.LogicalAddr) *mvShard {
	return &m.shards[acHash(a)&(mvShardCount-1)]
}

// epochLocked returns the current snapshot epoch: the newest write id whose
// effects (and those of every older write) are fully applied.
func (m *mvStore) epochLocked() uint64 {
	e := m.nextW
	for w := range m.active {
		if w-1 < e {
			e = w - 1
		}
	}
	return e
}

// reclaimLimitLocked returns the highest write id whose pre-images no open
// snapshot can reach: entries with w <= limit are dead.
func (m *mvStore) reclaimLimitLocked() uint64 {
	limit := m.epochLocked()
	if len(m.snaps) > 0 && m.minSnap < limit {
		limit = m.minSnap
	}
	return limit
}

// writeBegin opens a write span for atom a and installs its pre-image
// (nil = the atom does not exist yet). It must be called before any physical
// record of the atom changes; the returned id closes the span via writeEnd.
func (m *mvStore) writeBegin(a addr.LogicalAddr, pre *Atom) uint64 {
	m.mu.Lock()
	m.nextW++
	w := m.nextW
	m.active[w] = struct{}{}
	m.mu.Unlock()

	// Count before installing: a reader that loads entries == 0 after its
	// record read therefore cannot have raced this span's mutation (the
	// mutation only starts after the install below).
	m.entries.Add(1)
	sh := m.shardOf(a)
	sh.mu.Lock()
	chain := sh.chains[a]
	// Sorted insert: ids are assigned under the registry lock but installed
	// under the shard lock, so two writers of nearby atoms can interleave.
	i := len(chain)
	for i > 0 && chain[i-1].w > w {
		i--
	}
	chain = append(chain, mvVersion{})
	copy(chain[i+1:], chain[i:])
	chain[i] = mvVersion{w: w, at: pre}
	sh.chains[a] = chain
	sh.mu.Unlock()
	return w
}

// writeEnd closes write span w over atom a and reclaims whatever history
// became unreachable. With no snapshot open this prunes the just-installed
// entry immediately, so chains stay empty in steady state.
func (m *mvStore) writeEnd(a addr.LogicalAddr, w uint64) {
	m.mu.Lock()
	delete(m.active, w)
	limit := m.reclaimLimitLocked()
	m.mu.Unlock()
	m.pruneChain(a, limit)
	if m.entries.Load() > mvSweepThreshold {
		m.sweep(limit)
	}
}

// pruneChain drops a's entries with w <= limit (a prefix: chains are sorted).
func (m *mvStore) pruneChain(a addr.LogicalAddr, limit uint64) {
	sh := m.shardOf(a)
	sh.mu.Lock()
	chain := sh.chains[a]
	n := 0
	for n < len(chain) && chain[n].w <= limit {
		n++
	}
	if n > 0 {
		if n == len(chain) {
			delete(sh.chains, a)
		} else {
			sh.chains[a] = append([]mvVersion(nil), chain[n:]...)
		}
	}
	sh.mu.Unlock()
	if n > 0 {
		m.entries.Add(int64(-n))
	}
}

// sweep reclaims dead entries across all shards.
func (m *mvStore) sweep(limit uint64) {
	var removed int64
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for a, chain := range sh.chains {
			n := 0
			for n < len(chain) && chain[n].w <= limit {
				n++
			}
			if n == 0 {
				continue
			}
			removed += int64(n)
			if n == len(chain) {
				delete(sh.chains, a)
			} else {
				sh.chains[a] = append([]mvVersion(nil), chain[n:]...)
			}
		}
		sh.mu.Unlock()
	}
	if removed > 0 {
		m.entries.Add(-removed)
	}
}

// versionAt resolves address a at epoch e against the chains. ok reports
// whether the chains decide the address at all; a decided nil image means
// the atom did not exist at e.
func (m *mvStore) versionAt(a addr.LogicalAddr, e uint64) (*Atom, bool) {
	if m.entries.Load() == 0 {
		return nil, false
	}
	sh := m.shardOf(a)
	sh.mu.Lock()
	for _, v := range sh.chains[a] {
		if v.w > e {
			at := v.at
			sh.mu.Unlock()
			return at, true
		}
	}
	sh.mu.Unlock()
	return nil, false
}

// chainAddrsOf collects the addresses of the given type with sequence number
// in (after, bound] whose chains prove they existed at epoch e — the "ghost"
// complement a snapshot scan merges with the directory's live range (atoms
// deleted after e are gone from the directory but must still enumerate).
func (m *mvStore) chainAddrsOf(tid addr.TypeID, after, bound, e uint64) []addr.LogicalAddr {
	if m.entries.Load() == 0 {
		return nil
	}
	var out []addr.LogicalAddr
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for a, chain := range sh.chains {
			if a.Type() != tid {
				continue
			}
			if s := a.Seq(); s <= after || s > bound {
				continue
			}
			for _, v := range chain {
				if v.w > e {
					if v.at != nil {
						out = append(out, a)
					}
					break
				}
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq() < out[j].Seq() })
	return out
}

// --- write span integration ----------------------------------------------------

// mvBegin opens a write span for a with the given pre-image and returns the
// closure that closes it; mutation paths use `defer s.mvBegin(a, pre)()` so
// the span covers exactly the mutation (install happens at the defer
// statement, before any record changes; the close runs on every exit path).
func (s *System) mvBegin(a addr.LogicalAddr, pre *Atom) func() {
	w := s.mv.writeBegin(a, pre)
	return func() { s.mv.writeEnd(a, w) }
}

// --- snapshots ------------------------------------------------------------------

// Snapshot is a consistent read view of the atom store: every Get, GetBatch,
// Exists and address scan resolves against the epoch captured at open, no
// matter which writes commit concurrently. Snapshots are cheap (no data is
// copied at open; history accumulates only for atoms actually written while
// the snapshot is open) and must be Closed so their history can be
// reclaimed. Safe for concurrent use.
type Snapshot struct {
	sys    *System
	epoch  uint64
	closed atomic.Bool
	// span, when set, receives the read-path trace counters (atoms decoded,
	// cache hits/misses, pages pinned) for batched reads through this
	// snapshot. Every cursor reads through a snapshot, which makes it the
	// natural per-request carrier; nil means untraced (the common case).
	span *obs.Span
}

// SetTraceSpan attaches the span that batched reads through this snapshot
// charge their counters to. Nil-safe (untraced requests pass nil all the
// way down). Call before handing the snapshot to concurrent readers.
func (sn *Snapshot) SetTraceSpan(sp *obs.Span) {
	if sn == nil {
		return
	}
	sn.span = sp
}

// OpenSnapshot captures the current epoch as a consistent read view.
func (s *System) OpenSnapshot() *Snapshot {
	m := s.mv
	m.mu.Lock()
	e := m.epochLocked()
	m.snapRefLocked(e)
	m.mu.Unlock()
	return &Snapshot{sys: s, epoch: e}
}

// SnapshotAt pins an additional snapshot at an epoch the caller already
// holds open through another live snapshot (the transaction layer shares
// its transaction-begin epoch with the cursors opened inside). Pinning an
// epoch no live snapshot holds would read reclaimed history and is invalid.
func (s *System) SnapshotAt(epoch uint64) *Snapshot {
	m := s.mv
	m.mu.Lock()
	m.snapRefLocked(epoch)
	m.mu.Unlock()
	return &Snapshot{sys: s, epoch: epoch}
}

func (m *mvStore) snapRefLocked(e uint64) {
	if len(m.snaps) == 0 || e < m.minSnap {
		m.minSnap = e
	}
	m.snaps[e]++
}

// OpenSnapshots returns the number of live (unclosed) snapshots — the leak
// gauge resilience tests assert against: an abandoned cursor that failed to
// release its snapshot shows up here as a stuck non-zero count.
func (s *System) OpenSnapshots() int {
	m := s.mv
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.snaps {
		n += c
	}
	return n
}

// Epoch returns the snapshot's epoch.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// Close releases the snapshot and reclaims history only it kept alive.
// Idempotent; nil-safe.
func (sn *Snapshot) Close() {
	if sn == nil || sn.closed.Swap(true) {
		return
	}
	m := sn.sys.mv
	m.mu.Lock()
	if n := m.snaps[sn.epoch]; n > 1 {
		m.snaps[sn.epoch] = n - 1
	} else {
		delete(m.snaps, sn.epoch)
		if len(m.snaps) > 0 && sn.epoch == m.minSnap {
			min := uint64(math.MaxUint64)
			for e := range m.snaps {
				if e < min {
					min = e
				}
			}
			m.minSnap = min
		}
	}
	limit := m.reclaimLimitLocked()
	m.mu.Unlock()
	if m.entries.Load() > 0 {
		m.sweep(limit)
	}
}

// Resolve reads address a at the snapshot's epoch: a decided chain serves
// the historic image (or reports the atom as not existing at the epoch);
// otherwise fetch supplies the current state, re-checked against the chains
// afterwards. The re-check closes the race with a writer whose span opened
// after the first check: pre-images are installed before any record changes,
// so a fetch that observed a mutation always finds the pre-image installed.
func (sn *Snapshot) Resolve(a addr.LogicalAddr, fetch func() (*Atom, error)) (*Atom, error) {
	if at, ok := sn.sys.mv.versionAt(a, sn.epoch); ok {
		if at == nil {
			return nil, fmt.Errorf("%w: %v", ErrNoAtom, a)
		}
		return at, nil
	}
	cur, err := fetch()
	if at, ok := sn.sys.mv.versionAt(a, sn.epoch); ok {
		if at == nil {
			return nil, fmt.Errorf("%w: %v", ErrNoAtom, a)
		}
		return at, nil
	}
	return cur, err
}

// Get reads one full-width atom at the snapshot's epoch. Traced snapshots
// route through the batched read so the single-atom path (scan roots,
// childless molecules) charges the same trace counters the fan-out does.
func (sn *Snapshot) Get(a addr.LogicalAddr) (*Atom, error) {
	if sn.span != nil {
		out, err := sn.GetBatch([]addr.LogicalAddr{a})
		if err != nil {
			return nil, err
		}
		return out[0], nil
	}
	return sn.Resolve(a, func() (*Atom, error) { return sn.sys.Get(a, nil) })
}

// GetBatch reads many full-width atoms at the snapshot's epoch, aligned with
// the input. Atoms the chains decide are filled from history; the rest go
// through the system's batched read and are re-checked like Resolve does.
func (sn *Snapshot) GetBatch(addrs []addr.LogicalAddr) ([]*Atom, error) {
	out := make([]*Atom, len(addrs))
	var missIdx []int
	var miss []addr.LogicalAddr
	for i, a := range addrs {
		if at, ok := sn.sys.mv.versionAt(a, sn.epoch); ok {
			if at == nil {
				return nil, fmt.Errorf("%w: %v", ErrNoAtom, a)
			}
			out[i] = at
			continue
		}
		missIdx = append(missIdx, i)
		miss = append(miss, a)
	}
	if len(miss) == 0 {
		return out, nil
	}
	got, err := sn.sys.getBatch(miss, nil, sn.span)
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		if at, ok := sn.sys.mv.versionAt(miss[j], sn.epoch); ok {
			if at == nil {
				return nil, fmt.Errorf("%w: %v", ErrNoAtom, miss[j])
			}
			out[i] = at
			continue
		}
		out[i] = got[j]
	}
	return out, nil
}

// Exists reports whether atom a existed at the snapshot's epoch.
func (sn *Snapshot) Exists(a addr.LogicalAddr) bool {
	if at, ok := sn.sys.mv.versionAt(a, sn.epoch); ok {
		return at != nil
	}
	ex := sn.sys.dir.Exists(a)
	if at, ok := sn.sys.mv.versionAt(a, sn.epoch); ok {
		return at != nil
	}
	return ex
}

// ScanAddrsAfter enumerates up to limit addresses of the type as of the
// snapshot's epoch, in sequence order starting strictly after `after`: the
// directory's live range merged with the "ghosts" — atoms deleted after the
// epoch, which the directory no longer lists but the chains still prove.
// Atoms inserted after the epoch may still enumerate (their chains decide
// them as tombstones, so Exists/Get filter them out downstream).
func (sn *Snapshot) ScanAddrsAfter(typeName string, after uint64, limit int) ([]addr.LogicalAddr, error) {
	live, err := sn.sys.ScanAddrsAfter(typeName, after, limit)
	if err != nil {
		return nil, err
	}
	if sn.sys.mv.entries.Load() == 0 {
		return live, nil
	}
	t, err := sn.sys.typeOf(typeName)
	if err != nil {
		return nil, err
	}
	// Ghosts beyond the live chunk's last sequence belong to later chunks
	// (the caller's paging cursor advances by the returned addresses, so the
	// range must stay gap-free).
	bound := uint64(math.MaxUint64)
	if limit > 0 && len(live) == limit {
		bound = live[len(live)-1].Seq()
	}
	ghosts := sn.sys.mv.chainAddrsOf(t.ID, after, bound, sn.epoch)
	if len(ghosts) == 0 {
		return live, nil
	}
	merged := mergeAddrsBySeq(live, ghosts)
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged, nil
}

// MaxSeq returns the highest sequence number of any atom of the type visible
// at the snapshot's epoch: the directory's live maximum, raised by ghosts the
// chains still prove (the highest-sequence atoms may have been deleted after
// the epoch). Cursors use it to bound lazy scans.
func (sn *Snapshot) MaxSeq(typeName string) (uint64, error) {
	max, err := sn.sys.MaxSeq(typeName)
	if err != nil {
		return 0, err
	}
	if sn.sys.mv.entries.Load() == 0 {
		return max, nil
	}
	t, err := sn.sys.typeOf(typeName)
	if err != nil {
		return 0, err
	}
	ghosts := sn.sys.mv.chainAddrsOf(t.ID, max, math.MaxUint64, sn.epoch)
	if n := len(ghosts); n > 0 {
		return ghosts[n-1].Seq(), nil
	}
	return max, nil
}

// mergeAddrsBySeq merges two sequence-ordered address lists, dropping
// duplicates (an atom can be both live and chained when it was modified, not
// deleted).
func mergeAddrsBySeq(x, y []addr.LogicalAddr) []addr.LogicalAddr {
	out := make([]addr.LogicalAddr, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] == y[j]:
			out = append(out, x[i])
			i++
			j++
		case x[i].Seq() < y[j].Seq():
			out = append(out, x[i])
			i++
		default:
			out = append(out, y[j])
			j++
		}
	}
	out = append(out, x[i:]...)
	out = append(out, y[j:]...)
	return out
}
