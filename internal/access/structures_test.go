package access

import (
	"testing"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/catalog"
)

func insertDocs(t testing.TB, s *System, n int) []addr.LogicalAddr {
	t.Helper()
	var out []addr.LogicalAddr
	for i := 0; i < n; i++ {
		d, err := s.Insert("doc", map[string]atom.Value{
			"title": atom.Str("doc"),
			"pages": atom.Int(int64((i * 37) % 100)), // scrambled
			"score": atom.Real(float64(i)),
		})
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		out = append(out, d)
	}
	return out
}

func TestSortOrderScan(t *testing.T) {
	s := newSystem(t)
	insertDocs(t, s, 50)
	if err := s.CreateSortOrder(&catalog.SortOrderDef{
		Name: "doc_by_pages", AtomType: "doc", Attrs: []string{"pages"},
	}); err != nil {
		t.Fatalf("CreateSortOrder: %v", err)
	}
	// New atoms join the sort order.
	insertDocs(t, s, 10)

	var last int64 = -1
	n := 0
	err := s.SortScan("doc_by_pages", nil, nil, nil, func(at *Atom) bool {
		v, _ := at.Value("pages")
		if v.I < last {
			t.Fatalf("sort scan out of order: %d after %d", v.I, last)
		}
		last = v.I
		n++
		return true
	})
	if err != nil {
		t.Fatalf("SortScan: %v", err)
	}
	if n != 60 {
		t.Fatalf("sort scan visited %d, want 60", n)
	}

	// Start/stop condition on the sort key.
	n = 0
	err = s.SortScan("doc_by_pages", nil,
		[]atom.Value{atom.Int(20)}, []atom.Value{atom.Int(40)},
		func(at *Atom) bool {
			v, _ := at.Value("pages")
			if v.I < 20 || v.I > 40 {
				t.Fatalf("start/stop violated: %d", v.I)
			}
			n++
			return true
		})
	if err != nil || n == 0 {
		t.Fatalf("bounded sort scan: n=%d err=%v", n, err)
	}

	// Descending sort order.
	if err := s.CreateSortOrder(&catalog.SortOrderDef{
		Name: "doc_by_pages_desc", AtomType: "doc", Attrs: []string{"pages"}, Desc: []bool{true},
	}); err != nil {
		t.Fatalf("CreateSortOrder desc: %v", err)
	}
	last = 1 << 60
	err = s.SortScan("doc_by_pages_desc", nil, nil, nil, func(at *Atom) bool {
		v, _ := at.Value("pages")
		if v.I > last {
			t.Fatalf("desc sort scan out of order")
		}
		last = v.I
		return true
	})
	if err != nil {
		t.Fatalf("desc SortScan: %v", err)
	}

	// Fallback explicit sort agrees with the sort order.
	var a1, a2 []int64
	s.SortScan("doc_by_pages", nil, nil, nil, func(at *Atom) bool {
		v, _ := at.Value("pages")
		a1 = append(a1, v.I)
		return true
	})
	s.SortedTypeScan("doc", []string{"pages"}, false, nil, func(at *Atom) bool {
		v, _ := at.Value("pages")
		a2 = append(a2, v.I)
		return true
	})
	if len(a1) != len(a2) {
		t.Fatalf("sort order and explicit sort disagree on count: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("sort order and explicit sort disagree at %d: %d vs %d", i, a1[i], a2[i])
		}
	}
}

func TestDeferredUpdatePropagation(t *testing.T) {
	s := newSystem(t)
	docs := insertDocs(t, s, 10)
	if err := s.CreateSortOrder(&catalog.SortOrderDef{
		Name: "so", AtomType: "doc", Attrs: []string{"pages"},
	}); err != nil {
		t.Fatalf("CreateSortOrder: %v", err)
	}
	if err := s.CreatePartition(&catalog.PartitionDef{
		Name: "part", AtomType: "doc", Attrs: []string{"title", "pages"},
	}); err != nil {
		t.Fatalf("CreatePartition: %v", err)
	}
	if s.PendingDeferred() != 0 {
		t.Fatalf("fresh structures have %d pending tasks", s.PendingDeferred())
	}

	// A title update touches the partition (title ∈ partition) and the
	// sort-order record (full copy), but not the sort key.
	if err := s.Update(docs[0], map[string]atom.Value{"title": atom.Str("updated")}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if s.PendingDeferred() == 0 {
		t.Fatal("update queued no deferred propagation")
	}
	// The stale partition must NOT serve reads: a covered projection read
	// falls back to the primary and sees the new value.
	at, err := s.Get(docs[0], []string{"title"})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if v, _ := at.Value("title"); v.S != "updated" {
		t.Fatalf("projected read returned stale value %v", v)
	}

	// Propagate and verify validity is restored.
	if err := s.PropagateDeferred(); err != nil {
		t.Fatalf("PropagateDeferred: %v", err)
	}
	if s.PendingDeferred() != 0 {
		t.Fatal("queue not drained")
	}
	refs, _ := s.Directory().Lookup(docs[0])
	for _, r := range refs {
		if !r.Valid {
			t.Fatalf("ref %+v still invalid after propagation", r)
		}
	}
	// Partition now serves the fresh value again.
	at, _ = s.Get(docs[0], []string{"title"})
	if v, _ := at.Value("title"); v.S != "updated" {
		t.Fatalf("post-propagation read = %v", v)
	}

	// A score update (not in partition attrs) leaves the partition valid.
	before := s.PendingDeferred()
	if err := s.Update(docs[1], map[string]atom.Value{"score": atom.Real(99)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	refs, _ = s.Directory().Lookup(docs[1])
	for _, r := range refs {
		if r.Kind == addr.KindPartition && !r.Valid {
			t.Fatal("partition invalidated by irrelevant attribute change")
		}
	}
	_ = before
}

func TestSortKeyUpdateRepositionsImmediately(t *testing.T) {
	s := newSystem(t)
	docs := insertDocs(t, s, 5)
	if err := s.CreateSortOrder(&catalog.SortOrderDef{
		Name: "so", AtomType: "doc", Attrs: []string{"pages"},
	}); err != nil {
		t.Fatalf("CreateSortOrder: %v", err)
	}
	// Move docs[0] to the very top of the order. Even though its record
	// copy is refreshed lazily, the scan must already deliver the new
	// position AND the new value (stale copy falls back to primary).
	if err := s.Update(docs[0], map[string]atom.Value{"pages": atom.Int(100000)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	var lastAddr addr.LogicalAddr
	var lastVal int64
	err := s.SortScan("so", nil, nil, nil, func(at *Atom) bool {
		lastAddr = at.Addr
		v, _ := at.Value("pages")
		lastVal = v.I
		return true
	})
	if err != nil {
		t.Fatalf("SortScan: %v", err)
	}
	if lastAddr != docs[0] || lastVal != 100000 {
		t.Fatalf("sort scan tail = %v/%d, want %v/100000", lastAddr, lastVal, docs[0])
	}
}

func TestPartitionCoveredRead(t *testing.T) {
	s := newSystem(t)
	docs := insertDocs(t, s, 5)
	if err := s.CreatePartition(&catalog.PartitionDef{
		Name: "titles", AtomType: "doc", Attrs: []string{"title"},
	}); err != nil {
		t.Fatalf("CreatePartition: %v", err)
	}
	// Covered read comes from the partition; verify it returns the value.
	at, err := s.Get(docs[2], []string{"title"})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if v, _ := at.Value("title"); v.S != "doc" {
		t.Fatalf("partition read = %v", v)
	}
	// Uncovered projection (title+score) must come from the primary.
	at, err = s.Get(docs[2], []string{"title", "score"})
	if err != nil {
		t.Fatalf("Get uncovered: %v", err)
	}
	if v, _ := at.Value("score"); v.F != 2 {
		t.Fatalf("uncovered read = %v", v)
	}
}

// clusterSystem builds a schema with a 1:n parent/child association and a
// cluster over it.
func clusterSystem(t testing.TB) (*System, []addr.LogicalAddr) {
	t.Helper()
	s, err := Open(Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	parent, err := catalog.NewAtomType("parent", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "name", Type: catalog.SpecString()},
		{Name: "kids", Type: catalog.SpecSetOf(catalog.SpecRef("kid", "parent"), 0, catalog.VarCard)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	kid, err := catalog.NewAtomType("kid", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "n", Type: catalog.SpecInt()},
		{Name: "parent", Type: catalog.SpecRef("parent", "kids")},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Schema().AddAtomType(parent); err != nil {
		t.Fatal(err)
	}
	if err := s.Schema().AddAtomType(kid); err != nil {
		t.Fatal(err)
	}
	if err := s.Schema().ResolveAssociations(); err != nil {
		t.Fatal(err)
	}

	// Three parents with 4 kids each.
	var parents []addr.LogicalAddr
	for p := 0; p < 3; p++ {
		pa, err := s.Insert("parent", map[string]atom.Value{"name": atom.Str("p")})
		if err != nil {
			t.Fatal(err)
		}
		parents = append(parents, pa)
		for k := 0; k < 4; k++ {
			if _, err := s.Insert("kid", map[string]atom.Value{
				"n":      atom.Int(int64(p*10 + k)),
				"parent": atom.Ref(pa),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s, parents
}

func clusterDef(name string) *catalog.ClusterDef {
	return &catalog.ClusterDef{Name: name, Molecule: &catalog.MoleculeType{
		Root: &catalog.MolNode{
			AtomType: "parent",
			Children: []*catalog.MolNode{{AtomType: "kid", Via: "kids"}},
		},
	}}
}

func TestClusterLifecycle(t *testing.T) {
	s, parents := clusterSystem(t)
	if err := s.CreateCluster(clusterDef("pc")); err != nil {
		t.Fatalf("CreateCluster: %v", err)
	}
	roots, err := s.ClusterRoots("pc")
	if err != nil || len(roots) != 3 {
		t.Fatalf("ClusterRoots = %v, %v", roots, err)
	}

	// Cluster-type scan sees every occurrence with root + 4 kids.
	n := 0
	err = s.ClusterTypeScan("pc", nil, func(occ *ClusterOccurrence) bool {
		n++
		if len(occ.OfType("kid")) != 4 {
			t.Fatalf("occurrence %v has %d kids", occ.Root, len(occ.OfType("kid")))
		}
		if _, ok := occ.Atom(occ.Root); !ok {
			t.Fatal("occurrence missing root atom")
		}
		return true
	})
	if err != nil || n != 3 {
		t.Fatalf("ClusterTypeScan = %d, %v", n, err)
	}

	// Cluster scan over one occurrence with an SSA.
	n = 0
	err = s.ClusterScan("pc", parents[1], "kid", SSA{{Attr: "n", Op: OpGE, Value: atom.Int(12)}}, func(at *Atom) bool {
		n++
		return true
	})
	if err != nil || n != 2 {
		t.Fatalf("ClusterScan = %d, %v (want kids 12,13)", n, err)
	}

	// Direct single-atom read through the relative addressing table.
	kids, _ := s.ScanAddrs("kid")
	at, err := s.ClusterReadAtom("pc", kids[0])
	if err != nil {
		t.Fatalf("ClusterReadAtom: %v", err)
	}
	if v, _ := at.Value("n"); v.I != 0 {
		t.Fatalf("ClusterReadAtom n = %v", v)
	}

	// Updating a member invalidates the occurrence; the next scan
	// transparently rebuilds and sees the new value.
	if err := s.Update(kids[0], map[string]atom.Value{"n": atom.Int(777)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	found := false
	err = s.ClusterScan("pc", parents[0], "kid", nil, func(at *Atom) bool {
		if v, _ := at.Value("n"); v.I == 777 {
			found = true
		}
		return true
	})
	if err != nil || !found {
		t.Fatalf("cluster scan after member update: found=%v err=%v", found, err)
	}

	// New root atoms get occurrences.
	p4, err := s.Insert("parent", map[string]atom.Value{"name": atom.Str("late")})
	if err != nil {
		t.Fatal(err)
	}
	roots, _ = s.ClusterRoots("pc")
	if len(roots) != 4 {
		t.Fatalf("roots after insert = %d, want 4", len(roots))
	}

	// Deleting a root drops its occurrence.
	if err := s.Delete(p4); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	roots, _ = s.ClusterRoots("pc")
	if len(roots) != 3 {
		t.Fatalf("roots after delete = %d, want 3", len(roots))
	}

	// Deleting a member rebuilds the cluster without it.
	if err := s.Delete(kids[1]); err != nil {
		t.Fatalf("Delete kid: %v", err)
	}
	if err := s.PropagateDeferred(); err != nil {
		t.Fatalf("PropagateDeferred: %v", err)
	}
	n = 0
	s.ClusterScan("pc", parents[0], "kid", nil, func(*Atom) bool { n++; return true })
	if n != 3 {
		t.Fatalf("kids after member delete = %d, want 3", n)
	}

	// Drop the whole cluster type.
	if err := s.DropLDL("pc"); err != nil {
		t.Fatalf("DropLDL: %v", err)
	}
	if s.HasCluster("pc") {
		t.Fatal("cluster survives DropLDL")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()

	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	doc, _ := catalog.NewAtomType("doc", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "title", Type: catalog.SpecString()},
		{Name: "pages", Type: catalog.SpecInt()},
		{Name: "score", Type: catalog.SpecReal()},
		{Name: "authors", Type: catalog.SpecSetOf(catalog.SpecRef("author", "docs"), 0, catalog.VarCard)},
	}, []string{"pages"})
	author, _ := catalog.NewAtomType("author", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "name", Type: catalog.SpecString()},
		{Name: "docs", Type: catalog.SpecSetOf(catalog.SpecRef("doc", "authors"), 0, catalog.VarCard)},
	}, nil)
	if err := s.Schema().AddAtomType(doc); err != nil {
		t.Fatal(err)
	}
	if err := s.Schema().AddAtomType(author); err != nil {
		t.Fatal(err)
	}
	if err := s.Schema().ResolveAssociations(); err != nil {
		t.Fatal(err)
	}

	au, _ := s.Insert("author", map[string]atom.Value{"name": atom.Str("Sikeler")})
	var docs []addr.LogicalAddr
	for i := 0; i < 20; i++ {
		d, err := s.Insert("doc", map[string]atom.Value{
			"title":   atom.Str("persisted"),
			"pages":   atom.Int(int64(i)),
			"authors": atom.RefSet(au),
		})
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	if err := s.CreateAccessPath(&catalog.AccessPathDef{Name: "ap", AtomType: "doc", Attrs: []string{"pages"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateSortOrder(&catalog.SortOrderDef{Name: "so", AtomType: "doc", Attrs: []string{"pages"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartition(&catalog.PartitionDef{Name: "pt", AtomType: "doc", Attrs: []string{"title"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen and verify everything.
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Count("doc") != 20 || s2.Count("author") != 1 {
		t.Fatalf("counts after reopen: %d docs, %d authors", s2.Count("doc"), s2.Count("author"))
	}
	at, err := s2.Get(docs[7], nil)
	if err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if v, _ := at.Value("pages"); v.I != 7 {
		t.Fatalf("pages = %v", v)
	}
	if v, _ := at.Value("authors"); !v.ContainsRef(au) {
		t.Fatal("reference lost across restart")
	}
	found, err := s2.AccessPathSearch("ap", []atom.Value{atom.Int(13)})
	if err != nil || len(found) != 1 || found[0] != docs[13] {
		t.Fatalf("access path after reopen = %v, %v", found, err)
	}
	n := 0
	last := int64(-1)
	if err := s2.SortScan("so", nil, nil, nil, func(at *Atom) bool {
		v, _ := at.Value("pages")
		if v.I < last {
			t.Fatal("sort order corrupted by restart")
		}
		last = v.I
		n++
		return true
	}); err != nil {
		t.Fatalf("SortScan after reopen: %v", err)
	}
	if n != 20 {
		t.Fatalf("sort scan after reopen = %d", n)
	}
	// Partition still serves covered reads.
	at, err = s2.Get(docs[3], []string{"title"})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if v, _ := at.Value("title"); v.S != "persisted" {
		t.Fatalf("partition read after reopen = %v", v)
	}
	// Inserts continue without address collisions.
	d, err := s2.Insert("doc", map[string]atom.Value{"pages": atom.Int(999)})
	if err != nil {
		t.Fatalf("Insert after reopen: %v", err)
	}
	for _, old := range docs {
		if d == old {
			t.Fatal("address reuse after restart")
		}
	}
}

func TestClusterPersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	parent, _ := catalog.NewAtomType("parent", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "name", Type: catalog.SpecString()},
		{Name: "kids", Type: catalog.SpecSetOf(catalog.SpecRef("kid", "parent"), 0, catalog.VarCard)},
	}, nil)
	kid, _ := catalog.NewAtomType("kid", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "n", Type: catalog.SpecInt()},
		{Name: "parent", Type: catalog.SpecRef("parent", "kids")},
	}, nil)
	s.Schema().AddAtomType(parent)
	s.Schema().AddAtomType(kid)
	if err := s.Schema().ResolveAssociations(); err != nil {
		t.Fatal(err)
	}
	pa, _ := s.Insert("parent", map[string]atom.Value{"name": atom.Str("p")})
	for k := 0; k < 3; k++ {
		s.Insert("kid", map[string]atom.Value{"n": atom.Int(int64(k)), "parent": atom.Ref(pa)})
	}
	if err := s.CreateCluster(clusterDef("pc")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	n := 0
	err = s2.ClusterTypeScan("pc", nil, func(occ *ClusterOccurrence) bool {
		n++
		if len(occ.OfType("kid")) != 3 {
			t.Fatalf("reopened occurrence has %d kids", len(occ.OfType("kid")))
		}
		return true
	})
	if err != nil || n != 1 {
		t.Fatalf("cluster scan after reopen = %d, %v", n, err)
	}
}
