package access

import (
	"errors"
	"fmt"
	"sort"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/access/mdindex"
	"prima/internal/catalog"
	"prima/internal/storage/pageseq"
)

// Scans (§3.2): "scans are introduced as a concept to control a dynamically
// defined set of atoms, to hold a current position in such a set, and to
// successively accept single atoms (NEXT/PRIOR) for further processing."
// Five kinds are provided: atom-type scan, sort scan, access-path scan,
// atom-cluster-type scan and atom-cluster scan.

// Op is a comparison operator of a simple search argument.
type Op uint8

// SSA operators.
const (
	OpEQ Op = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpEmpty    // repeating group is empty (MQL: attr = EMPTY)
	OpNotEmpty // repeating group is non-empty
)

// Cond is one conjunct of a simple search argument.
type Cond struct {
	Attr  string
	Op    Op
	Value atom.Value
}

// SSA is a simple search argument: a conjunction of attribute comparisons
// "decidable on each atom".
type SSA []Cond

// Eval decides the SSA on one atom.
func (ssa SSA) Eval(at *Atom) (bool, error) {
	for _, c := range ssa {
		i, ok := at.Type.AttrIndex(c.Attr)
		if !ok {
			return false, fmt.Errorf("%w: %s.%s", catalog.ErrUnknownAttr, at.Type.Name, c.Attr)
		}
		v := at.Values[i]
		switch c.Op {
		case OpEmpty:
			if v.Len() != 0 {
				return false, nil
			}
			continue
		case OpNotEmpty:
			if v.Len() == 0 {
				return false, nil
			}
			continue
		}
		if v.IsNull() || c.Value.IsNull() {
			// NULL compares false against everything except NE.
			if c.Op == OpNE && !(v.IsNull() && c.Value.IsNull()) {
				continue
			}
			return false, nil
		}
		cmp := atom.Compare(v, c.Value)
		ok = false
		switch c.Op {
		case OpEQ:
			ok = cmp == 0
		case OpNE:
			ok = cmp != 0
		case OpLT:
			ok = cmp < 0
		case OpLE:
			ok = cmp <= 0
		case OpGT:
			ok = cmp > 0
		case OpGE:
			ok = cmp >= 0
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// attrsFor extends a projection with the attributes an SSA needs.
func (ssa SSA) attrsFor(attrs []string) []string {
	if attrs == nil {
		return nil
	}
	out := append([]string(nil), attrs...)
	for _, c := range ssa {
		found := false
		for _, a := range out {
			if a == c.Attr {
				found = true
				break
			}
		}
		if !found {
			out = append(out, c.Attr)
		}
	}
	return out
}

// scanDecodeBatch is the chunk size full-width scans accumulate before one
// batched page read + arena decode.
const scanDecodeBatch = 64

// AtomTypeScan successively reads all atoms of one atom type in
// system-defined order, optionally restricted by a simple search argument
// and projected to selected attributes — the RSS relation-scan analogue.
// Full-width scans read their records in chunks through the batch decode
// arena (one value arena per chunk instead of one allocation per atom);
// projected scans stay per-atom because partition coverage is decided per
// record.
func (s *System) AtomTypeScan(typeName string, ssa SSA, attrs []string, fn func(*Atom) bool) error {
	t, err := s.typeOf(typeName)
	if err != nil {
		return err
	}
	fetch := ssa.attrsFor(attrs)
	if fetch == nil {
		return s.atomTypeScanBatched(t, ssa, fn)
	}
	var scanErr error
	s.dir.Scan(t.ID, func(a addr.LogicalAddr, _ []addr.RecordRef) bool {
		at, err := s.Get(a, fetch)
		if err != nil {
			scanErr = err
			return false
		}
		ok, err := ssa.Eval(at)
		if err != nil {
			scanErr = err
			return false
		}
		if !ok {
			return true
		}
		return fn(at)
	})
	return scanErr
}

// atomTypeScanBatched is AtomTypeScan's full-width path: addresses gather in
// chunks of scanDecodeBatch; each chunk fills cache hits first and serves
// the misses with one batched primary read decoded into a shared value arena.
// Scan results are deliberately not published to the cache — a scan touches
// every atom once and would evict the hot checkout working set.
func (s *System) atomTypeScanBatched(t *catalog.AtomType, ssa SSA, fn func(*Atom) bool) error {
	cache := s.cache()
	var pend []addr.LogicalAddr
	var scanErr error
	stopped := false
	flush := func() bool {
		if len(pend) == 0 {
			return true
		}
		atoms := make([]*Atom, len(pend))
		var missIdx []int
		var rids []addr.RID
		for i, a := range pend {
			if cache != nil {
				if at, ok := cache.get(a); ok && at != nil {
					atoms[i] = at
					continue
				}
			}
			ref, ok := s.dir.LookupStruct(a, 0)
			if !ok {
				scanErr = fmt.Errorf("%w: %v", ErrNoAtom, a)
				return false
			}
			missIdx = append(missIdx, i)
			rids = append(rids, ref.Where)
		}
		if len(missIdx) > 0 {
			prim, err := s.primary(t)
			if err != nil {
				scanErr = err
				return false
			}
			recs, err := prim.ReadBatch(rids)
			if err != nil {
				scanErr = err
				return false
			}
			vals, err := atom.DecodeAtomBatch(recs)
			if err != nil {
				scanErr = err
				return false
			}
			for j, i := range missIdx {
				atoms[i] = &Atom{Type: t, Addr: pend[i], Values: vals[j]}
			}
		}
		for _, at := range atoms {
			ok, err := ssa.Eval(at)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				continue
			}
			if !fn(at) {
				stopped = true
				return false
			}
		}
		pend = pend[:0]
		return true
	}
	s.dir.Scan(t.ID, func(a addr.LogicalAddr, _ []addr.RecordRef) bool {
		pend = append(pend, a)
		if len(pend) >= scanDecodeBatch {
			return flush()
		}
		return true
	})
	if scanErr == nil && !stopped {
		flush()
	}
	return scanErr
}

// ScanAddrs returns the logical addresses of all atoms of the type in
// system-defined order. The data system uses it to drive pull-based
// molecule cursors.
func (s *System) ScanAddrs(typeName string) ([]addr.LogicalAddr, error) {
	t, err := s.typeOf(typeName)
	if err != nil {
		return nil, err
	}
	out := make([]addr.LogicalAddr, 0, s.dir.Count(t.ID))
	s.dir.Scan(t.ID, func(a addr.LogicalAddr, _ []addr.RecordRef) bool {
		out = append(out, a)
		return true
	})
	return out, nil
}

// ScanAddrsAfter returns up to limit addresses of the type in system-defined
// order, starting strictly after the given sequence number. The data system
// streams molecule roots through it chunk by chunk instead of materializing
// the whole root set up front.
func (s *System) ScanAddrsAfter(typeName string, after uint64, limit int) ([]addr.LogicalAddr, error) {
	t, err := s.typeOf(typeName)
	if err != nil {
		return nil, err
	}
	return s.dir.ScanRange(t.ID, after, limit), nil
}

// MaxSeq returns the highest sequence number handed out for the type so far
// — the snapshot bound paged scans capture at open.
func (s *System) MaxSeq(typeName string) (uint64, error) {
	t, err := s.typeOf(typeName)
	if err != nil {
		return 0, err
	}
	return s.dir.MaxSeq(t.ID), nil
}

// sortOrderByName resolves a sort order structure by its LDL name.
func (s *System) sortOrderByName(name string) (*sortOrderStruct, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, cand := range s.sortOrders {
		if cand.def.Name == name {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("%w: sort order %s", ErrUnknownStruct, name)
}

// SortScan reads all atoms of one atom type in the user-defined order of a
// sort order, restricted by an SSA and a start/stop condition on the sort
// key. Stale redundant records transparently fall back to the primary copy.
func (s *System) SortScan(sortOrderName string, ssa SSA, start, stop []atom.Value, fn func(*Atom) bool) error {
	so, err := s.sortOrderByName(sortOrderName)
	if err != nil {
		return err
	}
	t, err := s.typeOf(so.def.AtomType)
	if err != nil {
		return err
	}

	var startKey, stopKey *atom.Value
	if start != nil {
		k := atom.List(start...)
		startKey = &k
	}
	if stop != nil {
		k := atom.List(stop...)
		stopKey = &k
	}

	// Chunked reads through the batch decode arena: valid sort-order copies
	// of a chunk are read and decoded together; stale or unreadable records
	// fall back to the per-atom primary path, atom by atom.
	var pend []addr.LogicalAddr
	var scanErr error
	stopped := false
	flush := func() bool {
		if len(pend) == 0 {
			return true
		}
		atoms := make([]*Atom, len(pend))
		var validIdx []int
		var rids []addr.RID
		for i, a := range pend {
			if ref, ok := s.dir.LookupStruct(a, so.def.ID); ok && ref.Valid {
				validIdx = append(validIdx, i)
				rids = append(rids, ref.Where)
			}
		}
		if len(validIdx) > 0 {
			if recs, err := so.container.ReadBatch(rids); err == nil {
				if vals, err := atom.DecodeAtomBatch(recs); err == nil {
					for j, i := range validIdx {
						atoms[i] = &Atom{Type: t, Addr: pend[i], Values: vals[j]}
					}
				}
			}
			// On failure atoms stay nil and re-read per atom below.
		}
		for i, at := range atoms {
			if at == nil {
				var err error
				if at, err = s.readSortRecord(so, t, pend[i]); err != nil {
					scanErr = err
					return false
				}
			}
			ok, err := ssa.Eval(at)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				continue
			}
			if !fn(at) {
				stopped = true
				return false
			}
		}
		pend = pend[:0]
		return true
	}
	err = so.tree.Scan(startKey, stopKey, so.desc, func(_ atom.Value, a addr.LogicalAddr) bool {
		pend = append(pend, a)
		if len(pend) >= scanDecodeBatch {
			return flush()
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if err != nil {
		return err
	}
	if !stopped {
		flush()
	}
	return scanErr
}

// SortOrderAddrs returns the addresses of all atoms of a single-attribute
// sort order whose key lies within [start, stop] (nil bounds are open), in
// sort-key order — the data system's range-restricted root enumeration for
// <, <=, >, >= qualifications without an access path. The interval is
// inclusive; callers with strict bounds re-decide the boundary atoms via
// their own SSA.
func (s *System) SortOrderAddrs(sortOrderName string, start, stop *atom.Value) ([]addr.LogicalAddr, error) {
	so, err := s.sortOrderByName(sortOrderName)
	if err != nil {
		return nil, err
	}
	if len(so.attrIdxs) != 1 {
		return nil, fmt.Errorf("access: sort order %s has %d attributes, range scans take 1", sortOrderName, len(so.attrIdxs))
	}
	// Sort keys are composite (LIST-wrapped) even for a single attribute.
	var sk, ek *atom.Value
	if start != nil {
		k := atom.List(*start)
		sk = &k
	}
	if stop != nil {
		k := atom.List(*stop)
		ek = &k
	}
	var out []addr.LogicalAddr
	err = so.tree.Scan(sk, ek, so.desc, func(_ atom.Value, a addr.LogicalAddr) bool {
		out = append(out, a)
		return true
	})
	return out, err
}

// readSortRecord reads an atom through its sort-order copy when valid, or
// through the primary otherwise.
func (s *System) readSortRecord(so *sortOrderStruct, t *catalog.AtomType, a addr.LogicalAddr) (*Atom, error) {
	ref, ok := s.dir.LookupStruct(a, so.def.ID)
	if ok && ref.Valid {
		data, err := so.container.Read(ref.Where)
		if err == nil {
			values, err := atom.DecodeAtomOwned(data)
			if err == nil {
				return &Atom{Type: t, Addr: a, Values: values}, nil
			}
		}
	}
	return s.Get(a, nil)
}

// SortedTypeScan is the fallback when no sort order exists: it performs the
// sort explicitly ("creating a temporary sort order") over the attributes.
// It exists mainly as the baseline of experiment A2.
func (s *System) SortedTypeScan(typeName string, attrs []string, desc bool, ssa SSA, fn func(*Atom) bool) error {
	t, err := s.typeOf(typeName)
	if err != nil {
		return err
	}
	idxs := make([]int, 0, len(attrs))
	for _, a := range attrs {
		i, ok := t.AttrIndex(a)
		if !ok {
			return fmt.Errorf("%w: %s.%s", catalog.ErrUnknownAttr, typeName, a)
		}
		idxs = append(idxs, i)
	}
	var all []*Atom
	if err := s.AtomTypeScan(typeName, ssa, nil, func(at *Atom) bool {
		all = append(all, at)
		return true
	}); err != nil {
		return err
	}
	sort.SliceStable(all, func(i, j int) bool {
		for _, idx := range idxs {
			c := atom.Compare(all[i].Values[idx], all[j].Values[idx])
			if desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	for _, at := range all {
		if !fn(at) {
			return nil
		}
	}
	return nil
}

// AccessPathScan scans an access path with start/stop conditions and
// directions per key ("the user - the data system - determines the
// selection path for elements in an n-dimensional space"). fn receives the
// key vector and the atom address.
func (s *System) AccessPathScan(name string, ranges []mdindex.Range, fn func(keys []atom.Value, a addr.LogicalAddr) bool) error {
	s.mu.RLock()
	ap := s.accessPaths[name]
	s.mu.RUnlock()
	if ap == nil {
		return fmt.Errorf("%w: access path %s", ErrUnknownStruct, name)
	}
	if len(ranges) != len(ap.attrIdxs) {
		return fmt.Errorf("access: access path %s has %d keys, got %d ranges", name, len(ap.attrIdxs), len(ranges))
	}
	if ap.tree != nil {
		r := ranges[0]
		return ap.tree.Scan(r.Start, r.Stop, r.Desc, func(k atom.Value, a addr.LogicalAddr) bool {
			return fn([]atom.Value{k}, a)
		})
	}
	return ap.grid.Scan(ranges, func(e mdindex.Entry) bool {
		return fn(e.Keys, e.Addr)
	})
}

// AccessPathSearch returns the addresses matching the exact key vector.
func (s *System) AccessPathSearch(name string, keys []atom.Value) ([]addr.LogicalAddr, error) {
	s.mu.RLock()
	ap := s.accessPaths[name]
	s.mu.RUnlock()
	if ap == nil {
		return nil, fmt.Errorf("%w: access path %s", ErrUnknownStruct, name)
	}
	if ap.tree != nil {
		if len(keys) != 1 {
			return nil, fmt.Errorf("access: access path %s takes 1 key, got %d", name, len(keys))
		}
		return ap.tree.Search(keys[0])
	}
	return ap.grid.Search(keys)
}

// ClusterOccurrence is one materialized atom cluster: the characteristic
// atom's reference lists plus the member atoms, decoded.
type ClusterOccurrence struct {
	Root   addr.LogicalAddr
	Atoms  []*Atom
	byAddr map[addr.LogicalAddr]*Atom
	byType map[string][]*Atom
}

// Atom returns the member with the given address.
func (o *ClusterOccurrence) Atom(a addr.LogicalAddr) (*Atom, bool) {
	at, ok := o.byAddr[a]
	return at, ok
}

// OfType returns the members of one atom type, in cluster order.
func (o *ClusterOccurrence) OfType(typeName string) []*Atom {
	return o.byType[typeName]
}

// ClusterRoots returns the characteristic (root) atoms of a cluster type in
// system-defined order.
func (s *System) ClusterRoots(clusterName string) ([]addr.LogicalAddr, error) {
	cl, err := s.clusterByName(clusterName)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	roots := make([]addr.LogicalAddr, 0, len(cl.occurrences))
	for r := range cl.occurrences {
		roots = append(roots, r)
	}
	s.mu.RUnlock()
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	return roots, nil
}

// readOccurrence loads (rebuilding first if stale) the occurrence rooted at
// root. Reading the whole cluster costs one chained I/O when the sequence
// is contiguous — the Fig. 3.2 claim the benchmarks measure.
func (s *System) readOccurrence(cl *clusterStruct, root addr.LogicalAddr) (*ClusterOccurrence, error) {
	s.mu.RLock()
	header, ok := cl.occurrences[root]
	seq := cl.seqs[root]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: no cluster occurrence rooted at %v", ErrNoAtom, root)
	}
	if seq == nil || seq.HeaderPage() != header {
		var err error
		if seq, err = pageseq.Open(cl.seg, header); err != nil {
			return nil, err
		}
		s.mu.Lock()
		cl.seqs[root] = seq
		s.mu.Unlock()
	}
	payload, err := seq.ReadAll()
	if err != nil {
		return nil, err
	}
	addrs, offs, lens, err := parseClusterTable(payload)
	if err != nil {
		return nil, err
	}

	// Staleness check: any invalid or missing member ref forces a rebuild
	// (lazy deferred-update propagation).
	stale := false
	for _, a := range addrs {
		if !s.dir.Exists(a) {
			stale = true
			break
		}
		ref, ok := s.dir.LookupStruct(a, cl.def.ID)
		if !ok || !ref.Valid || ref.Where.Page != header {
			stale = true
			break
		}
	}
	if stale {
		if err := s.buildClusterOccurrence(cl, root); err != nil {
			return nil, err
		}
		s.mu.RLock()
		header = cl.occurrences[root]
		s.mu.RUnlock()
		if seq, err = pageseq.Open(cl.seg, header); err != nil {
			return nil, err
		}
		s.mu.Lock()
		cl.seqs[root] = seq
		s.mu.Unlock()
		if payload, err = seq.ReadAll(); err != nil {
			return nil, err
		}
		if addrs, offs, lens, err = parseClusterTable(payload); err != nil {
			return nil, err
		}
	}

	occ := &ClusterOccurrence{
		Root:   root,
		byAddr: make(map[addr.LogicalAddr]*Atom, len(addrs)),
		byType: make(map[string][]*Atom),
	}
	for i, a := range addrs {
		t, err := s.typeByID(a.Type())
		if err != nil {
			return nil, err
		}
		// The payload is a fresh chained-I/O copy owned by this occurrence;
		// decode strings zero-copy against it.
		values, err := atom.DecodeAtomOwned(payload[offs[i] : offs[i]+lens[i]])
		if err != nil {
			return nil, err
		}
		at := &Atom{Type: t, Addr: a, Values: values}
		occ.Atoms = append(occ.Atoms, at)
		occ.byAddr[a] = at
		occ.byType[t.Name] = append(occ.byType[t.Name], at)
	}
	return occ, nil
}

// ClusterOccurrenceOf loads the materialized occurrence of the named
// cluster type rooted at root (the data system assembles molecules from it
// instead of issuing per-atom reads).
func (s *System) ClusterOccurrenceOf(clusterName string, root addr.LogicalAddr) (*ClusterOccurrence, error) {
	cl, err := s.clusterByName(clusterName)
	if err != nil {
		return nil, err
	}
	return s.readOccurrence(cl, root)
}

// ClusterTypeScan reads all characteristic atoms of an atom-cluster type in
// system-defined order. The SSA must be decidable in one pass through a
// single atom cluster; it is evaluated against the root atom.
func (s *System) ClusterTypeScan(clusterName string, ssa SSA, fn func(*ClusterOccurrence) bool) error {
	cl, err := s.clusterByName(clusterName)
	if err != nil {
		return err
	}
	roots, err := s.ClusterRoots(clusterName)
	if err != nil {
		return err
	}
	for _, root := range roots {
		occ, err := s.readOccurrence(cl, root)
		if err != nil {
			return err
		}
		rootAtom, ok := occ.Atom(root)
		if !ok {
			return fmt.Errorf("access: cluster %s occurrence %v lacks its root", clusterName, root)
		}
		match, err := ssa.Eval(rootAtom)
		if err != nil {
			return err
		}
		if !match {
			continue
		}
		if !fn(occ) {
			return nil
		}
	}
	return nil
}

// ClusterScan reads all atoms of a certain atom type within one single atom
// cluster in system-defined order, possibly restricted by an SSA.
func (s *System) ClusterScan(clusterName string, root addr.LogicalAddr, memberType string, ssa SSA, fn func(*Atom) bool) error {
	cl, err := s.clusterByName(clusterName)
	if err != nil {
		return err
	}
	occ, err := s.readOccurrence(cl, root)
	if err != nil {
		return err
	}
	for _, at := range occ.OfType(memberType) {
		ok, err := ssa.Eval(at)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if !fn(at) {
			return nil
		}
	}
	return nil
}

// ClusterReadAtom reads one member atom directly through the cluster's
// relative addressing structure without materializing the whole occurrence
// ("faster access to single atoms of the atom cluster", §3.3).
func (s *System) ClusterReadAtom(clusterName string, a addr.LogicalAddr) (*Atom, error) {
	cl, err := s.clusterByName(clusterName)
	if err != nil {
		return nil, err
	}
	ref, ok := s.dir.LookupStruct(a, cl.def.ID)
	if !ok {
		return nil, fmt.Errorf("%w: %v is not clustered in %s", ErrNoAtom, a, clusterName)
	}
	if !ref.Valid {
		return s.Get(a, nil) // stale: read through the primary
	}
	seq, err := pageseq.Open(cl.seg, ref.Where.Page)
	if err != nil {
		return nil, err
	}
	// Read just the table head, then the member's byte range.
	var head [4]byte
	if _, err := seq.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	n := int(uint32(head[0])<<24 | uint32(head[1])<<16 | uint32(head[2])<<8 | uint32(head[3]))
	if int(ref.Where.Slot) >= n {
		return nil, fmt.Errorf("access: cluster slot %d out of range %d", ref.Where.Slot, n)
	}
	var ent [16]byte
	if _, err := seq.ReadAt(ent[:], int64(4+int(ref.Where.Slot)*16)); err != nil {
		return nil, err
	}
	off := uint32(ent[8])<<24 | uint32(ent[9])<<16 | uint32(ent[10])<<8 | uint32(ent[11])
	length := uint32(ent[12])<<24 | uint32(ent[13])<<16 | uint32(ent[14])<<8 | uint32(ent[15])
	buf := make([]byte, length)
	if _, err := seq.ReadAt(buf, int64(off)); err != nil {
		return nil, err
	}
	values, err := atom.DecodeAtomOwned(buf)
	if err != nil {
		return nil, err
	}
	t, err := s.typeByID(a.Type())
	if err != nil {
		return nil, err
	}
	return &Atom{Type: t, Addr: a, Values: values}, nil
}

// HasCluster reports whether a cluster with the given name exists.
func (s *System) HasCluster(name string) bool {
	_, err := s.clusterByName(name)
	return err == nil
}

// ErrStopScan may be returned by callers through panic-free early exits in
// helper loops; exported for symmetry with other sentinel errors.
var ErrStopScan = errors.New("access: scan stopped")
