// Package atom implements the value model and binary codec for atoms.
//
// "Each atom is composed of attributes of various types ... The atom type is
// put together by the constituent attribute types to be chosen from a richer
// selection than in conventional data models. For identification and
// connection of atoms, we have introduced two special types of attributes
// [IDENTIFIER and REFERENCE]. The extended type concept also includes
// RECORD, ARRAY, and the repeating-group types SET and LIST." (§2.2)
//
// Values are self-describing trees; the codec produces the variable-length
// byte strings that become physical records in the access system. Because
// the encoding is self-describing and attribute-indexed, partitions can hold
// arbitrary attribute subsets of an atom (§3.2).
package atom

import (
	"fmt"
	"sort"
	"strings"

	"prima/internal/access/addr"
)

// Kind enumerates the attribute value kinds of the MAD type system.
type Kind uint8

// Value kinds.
const (
	KindNull   Kind = iota
	KindInt         // INTEGER
	KindReal        // REAL
	KindBool        // BOOLEAN
	KindString      // CHAR_VAR
	KindIdent       // IDENTIFIER (system surrogate)
	KindRef         // REF_TO (typed logical pointer)
	KindRecord      // RECORD ... END
	KindArray       // ARRAY_OF(elem, n)
	KindSet         // SET_OF(elem) — repeating group, no duplicates
	KindList        // LIST_OF(elem) — ordered repeating group
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindReal:
		return "REAL"
	case KindBool:
		return "BOOLEAN"
	case KindString:
		return "CHAR_VAR"
	case KindIdent:
		return "IDENTIFIER"
	case KindRef:
		return "REF_TO"
	case KindRecord:
		return "RECORD"
	case KindArray:
		return "ARRAY"
	case KindSet:
		return "SET_OF"
	case KindList:
		return "LIST_OF"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is one attribute value: a tagged union over the MAD kinds. The zero
// Value is NULL.
type Value struct {
	K Kind
	I int64            // Int; Bool stores 0/1
	F float64          // Real
	S string           // String
	A addr.LogicalAddr // Ident, Ref
	E []Value          // Record, Array, Set, List elements
}

// Constructors.

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int builds an INTEGER value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Real builds a REAL value.
func Real(f float64) Value { return Value{K: KindReal, F: f} }

// Bool builds a BOOLEAN value.
func Bool(b bool) Value {
	v := Value{K: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// Str builds a CHAR_VAR value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Ident builds an IDENTIFIER value holding a surrogate.
func Ident(a addr.LogicalAddr) Value { return Value{K: KindIdent, A: a} }

// Ref builds a REF_TO value holding a surrogate.
func Ref(a addr.LogicalAddr) Value { return Value{K: KindRef, A: a} }

// Record builds a RECORD value from its field values.
func Record(fields ...Value) Value { return Value{K: KindRecord, E: fields} }

// Array builds an ARRAY value.
func Array(elems ...Value) Value { return Value{K: KindArray, E: elems} }

// Set builds a SET_OF value.
func Set(elems ...Value) Value { return Value{K: KindSet, E: elems} }

// List builds a LIST_OF value.
func List(elems ...Value) Value { return Value{K: KindList, E: elems} }

// RefSet builds a SET_OF(REF_TO ...) value, the representation of
// association attributes.
func RefSet(addrs ...addr.LogicalAddr) Value {
	elems := make([]Value, len(addrs))
	for i, a := range addrs {
		elems[i] = Ref(a)
	}
	return Value{K: KindSet, E: elems}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool reports the boolean payload.
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// Len returns the element count of a repeating group (0 for scalars and
// NULL, matching the paper's `attr = EMPTY` predicate on absent sets).
func (v Value) Len() int { return len(v.E) }

// Refs extracts the logical addresses held by v: the address itself for
// REF/IDENTIFIER, the member addresses for repeating groups of references.
func (v Value) Refs() []addr.LogicalAddr {
	switch v.K {
	case KindRef, KindIdent:
		if v.A.IsZero() {
			return nil
		}
		return []addr.LogicalAddr{v.A}
	case KindSet, KindList, KindArray, KindRecord:
		var out []addr.LogicalAddr
		for _, e := range v.E {
			out = append(out, e.Refs()...)
		}
		return out
	default:
		return nil
	}
}

// ContainsRef reports whether v (a REF or repeating group of REFs) holds a.
func (v Value) ContainsRef(a addr.LogicalAddr) bool {
	switch v.K {
	case KindRef, KindIdent:
		return v.A == a
	case KindSet, KindList, KindArray:
		for _, e := range v.E {
			if e.ContainsRef(a) {
				return true
			}
		}
	}
	return false
}

// WithRef returns a copy of v with a added. For a scalar REF the address is
// stored directly; for repeating groups it is appended unless present.
func (v Value) WithRef(a addr.LogicalAddr) Value {
	switch v.K {
	case KindNull:
		return Ref(a)
	case KindRef:
		return Ref(a)
	case KindSet:
		if v.ContainsRef(a) {
			return v
		}
		out := v.Clone()
		out.E = append(out.E, Ref(a))
		return out
	case KindList:
		out := v.Clone()
		out.E = append(out.E, Ref(a))
		return out
	default:
		return v
	}
}

// WithoutRef returns a copy of v with a removed. A scalar REF becomes NULL.
func (v Value) WithoutRef(a addr.LogicalAddr) Value {
	switch v.K {
	case KindRef:
		if v.A == a {
			return Null()
		}
		return v
	case KindSet, KindList:
		out := Value{K: v.K}
		for _, e := range v.E {
			if e.K == KindRef && e.A == a {
				continue
			}
			out.E = append(out.E, e.Clone())
		}
		return out
	default:
		return v
	}
}

// Clone returns a deep copy of v.
func (v Value) Clone() Value {
	out := v
	if v.E != nil {
		out.E = make([]Value, len(v.E))
		for i, e := range v.E {
			out.E[i] = e.Clone()
		}
	}
	return out
}

// Equal reports deep equality. Sets compare order-insensitively.
func (v Value) Equal(o Value) bool {
	if v.K != o.K {
		return false
	}
	switch v.K {
	case KindNull:
		return true
	case KindInt, KindBool:
		return v.I == o.I
	case KindReal:
		return v.F == o.F
	case KindString:
		return v.S == o.S
	case KindIdent, KindRef:
		return v.A == o.A
	case KindSet:
		if len(v.E) != len(o.E) {
			return false
		}
		used := make([]bool, len(o.E))
	outer:
		for _, e := range v.E {
			for j, f := range o.E {
				if !used[j] && e.Equal(f) {
					used[j] = true
					continue outer
				}
			}
			return false
		}
		return true
	default: // Record, Array, List: ordered
		if len(v.E) != len(o.E) {
			return false
		}
		for i := range v.E {
			if !v.E[i].Equal(o.E[i]) {
				return false
			}
		}
		return true
	}
}

// Compare orders two values for sort orders and index keys: NULL < numbers <
// strings < addresses < composites. Numbers compare numerically across
// INT/REAL. Composites compare lexicographically element-wise (sets by
// sorted element order).
func Compare(a, b Value) int {
	ra, rb := rank(a.K), rank(b.K)
	if ra != rb {
		return sign(ra - rb)
	}
	switch a.K {
	case KindNull:
		return 0
	case KindInt, KindReal, KindBool:
		fa, fb := a.numeric(), b.numeric()
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	case KindString:
		return strings.Compare(a.S, b.S)
	case KindIdent, KindRef:
		switch {
		case a.A < b.A:
			return -1
		case a.A > b.A:
			return 1
		default:
			return 0
		}
	default:
		ea, eb := a.E, b.E
		if a.K == KindSet {
			ea, eb = sortedElems(a.E), sortedElems(b.E)
		}
		for i := 0; i < len(ea) && i < len(eb); i++ {
			if c := Compare(ea[i], eb[i]); c != 0 {
				return c
			}
		}
		return sign(len(ea) - len(eb))
	}
}

func sortedElems(e []Value) []Value {
	out := make([]Value, len(e))
	copy(out, e)
	sort.Slice(out, func(i, j int) bool { return Compare(out[i], out[j]) < 0 })
	return out
}

// rank groups kinds into comparison classes. Each composite kind gets its
// own rank so cross-kind comparisons stay antisymmetric (a SET is only
// compared element-wise against another SET, etc.).
func rank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindInt, KindReal, KindBool:
		return 1
	case KindString:
		return 2
	case KindIdent, KindRef:
		return 3
	case KindRecord:
		return 4
	case KindArray:
		return 5
	case KindSet:
		return 6
	default: // KindList
		return 7
	}
}

func (v Value) numeric() float64 {
	if v.K == KindReal {
		return v.F
	}
	return float64(v.I)
}

func sign(i int) int {
	switch {
	case i < 0:
		return -1
	case i > 0:
		return 1
	default:
		return 0
	}
}

// String renders v for diagnostics and the CLI.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindReal:
		return fmt.Sprintf("%g", v.F)
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindString:
		return fmt.Sprintf("%q", v.S)
	case KindIdent, KindRef:
		return v.A.String()
	case KindRecord, KindArray, KindSet, KindList:
		parts := make([]string, len(v.E))
		for i, e := range v.E {
			parts[i] = e.String()
		}
		open, close := "(", ")"
		switch v.K {
		case KindSet:
			open, close = "{", "}"
		case KindList, KindArray:
			open, close = "[", "]"
		}
		return open + strings.Join(parts, ", ") + close
	default:
		return fmt.Sprintf("?%d", v.K)
	}
}
