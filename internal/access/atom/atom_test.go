package atom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prima/internal/access/addr"
)

func sampleValues() []Value {
	return []Value{
		Null(),
		Int(0), Int(-42), Int(math.MaxInt64), Int(math.MinInt64),
		Real(0), Real(3.14159), Real(-1e300), Real(math.SmallestNonzeroFloat64),
		Bool(true), Bool(false),
		Str(""), Str("hello"), Str("ünïcode ✓"),
		Ident(addr.New(3, 17)), Ref(addr.New(5, 99)),
		Record(Real(1), Real(2), Real(3)),
		Array(Int(1), Int(2)),
		Set(Ref(addr.New(1, 1)), Ref(addr.New(1, 2))),
		List(Str("a"), Str("b"), Str("c")),
		Set(), List(), Record(),
		Record(Set(Ref(addr.New(2, 1))), List(Record(Int(7), Str("nested")))),
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	for _, v := range sampleValues() {
		buf := AppendValue(nil, v)
		got, rest, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("DecodeValue(%v): %d trailing bytes", v, len(rest))
		}
		if !got.Equal(v) {
			t.Fatalf("round-trip: got %v, want %v", got, v)
		}
	}
}

func TestAtomCodecRoundTrip(t *testing.T) {
	values := sampleValues()
	buf := EncodeAtom(values)
	got, err := DecodeAtom(buf)
	if err != nil {
		t.Fatalf("DecodeAtom: %v", err)
	}
	if len(got) != len(values) {
		t.Fatalf("decoded %d attrs, want %d", len(got), len(values))
	}
	for i := range values {
		if !got[i].Equal(values[i]) {
			t.Fatalf("attr %d: got %v, want %v", i, got[i], values[i])
		}
	}
	// Trailing garbage rejected.
	if _, err := DecodeAtom(append(buf, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestCodecTruncation(t *testing.T) {
	buf := EncodeAtom(sampleValues())
	for cut := 0; cut < len(buf); cut += 7 {
		if _, err := DecodeAtom(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := DecodeValue([]byte{250}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestProjectionCodec(t *testing.T) {
	values := []Value{Int(1), Str("two"), Real(3.0), RefSet(addr.New(1, 5))}
	buf := EncodeProjection([]int{1, 3}, values)
	got, err := DecodeProjection(buf)
	if err != nil {
		t.Fatalf("DecodeProjection: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d pairs, want 2", len(got))
	}
	if !got[1].Equal(values[1]) || !got[3].Equal(values[3]) {
		t.Fatalf("projection mismatch: %v", got)
	}
	if _, ok := got[0]; ok {
		t.Fatal("projection leaked unrequested attribute")
	}
}

func TestRefHelpers(t *testing.T) {
	a1, a2, a3 := addr.New(1, 1), addr.New(1, 2), addr.New(1, 3)

	s := RefSet(a1, a2)
	if !s.ContainsRef(a1) || !s.ContainsRef(a2) || s.ContainsRef(a3) {
		t.Fatal("ContainsRef wrong")
	}
	s2 := s.WithRef(a3)
	if !s2.ContainsRef(a3) || s2.Len() != 3 {
		t.Fatal("WithRef failed")
	}
	// Adding a duplicate to a SET is a no-op.
	if s2.WithRef(a3).Len() != 3 {
		t.Fatal("WithRef duplicated a set member")
	}
	s3 := s2.WithoutRef(a2)
	if s3.ContainsRef(a2) || s3.Len() != 2 {
		t.Fatal("WithoutRef failed")
	}
	// Original values are unchanged (copy-on-write).
	if s.Len() != 2 || s2.Len() != 3 {
		t.Fatal("ref helpers mutated their receiver")
	}

	// Scalar REF behaviour.
	r := Ref(a1)
	if r.WithoutRef(a1).K != KindNull {
		t.Fatal("removing a scalar ref should yield NULL")
	}
	if Null().WithRef(a2).A != a2 {
		t.Fatal("WithRef on NULL should produce a scalar ref")
	}

	// Refs extraction from nested structures.
	nested := Record(Ref(a1), Set(Ref(a2), Ref(a3)))
	refs := nested.Refs()
	if len(refs) != 3 {
		t.Fatalf("Refs = %v, want 3 addresses", refs)
	}
}

func TestEqualSetSemantics(t *testing.T) {
	a1, a2 := addr.New(1, 1), addr.New(1, 2)
	x := Set(Ref(a1), Ref(a2))
	y := Set(Ref(a2), Ref(a1))
	if !x.Equal(y) {
		t.Fatal("sets must compare order-insensitively")
	}
	// Lists are ordered.
	if List(Int(1), Int(2)).Equal(List(Int(2), Int(1))) {
		t.Fatal("lists must compare order-sensitively")
	}
	if Int(1).Equal(Real(1)) {
		t.Fatal("INT and REAL are distinct kinds for equality")
	}
}

func TestCompare(t *testing.T) {
	ordered := []Value{
		Null(),
		Int(-5), Real(-1.5), Int(0), Bool(true), Int(2), Real(2.5),
		Str(""), Str("a"), Str("b"),
		Ident(addr.New(1, 1)), Ref(addr.New(1, 2)),
		List(Int(1)), List(Int(1), Int(0)), List(Int(2)),
	}
	for i := range ordered {
		for j := range ordered {
			c := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// Values at equal rank positions may compare equal (e.g. Bool(true) vs Int(1)).
			if want == 0 && c != 0 {
				t.Fatalf("Compare(%v,%v) = %d, want 0", ordered[i], ordered[j], c)
			}
			if want != 0 && c != want && c != 0 {
				t.Fatalf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], c, want)
			}
		}
	}
	// Numeric cross-kind comparison.
	if Compare(Int(2), Real(2.0)) != 0 {
		t.Fatal("Compare(2, 2.0) != 0")
	}
	// Set comparison is order-insensitive.
	if Compare(Set(Int(2), Int(1)), Set(Int(1), Int(2))) != 0 {
		t.Fatal("set comparison must sort elements")
	}
}

func TestClone(t *testing.T) {
	orig := Record(Set(Ref(addr.New(1, 1))), Str("x"))
	c := orig.Clone()
	c.E[0].E = append(c.E[0].E, Ref(addr.New(1, 2)))
	if orig.E[0].Len() != 1 {
		t.Fatal("Clone shares element storage")
	}
}

// randomValue builds a random value tree of bounded depth for property tests.
func randomValue(rng *rand.Rand, depth int) Value {
	kinds := []Kind{KindNull, KindInt, KindReal, KindBool, KindString, KindIdent, KindRef}
	if depth > 0 {
		kinds = append(kinds, KindRecord, KindArray, KindSet, KindList)
	}
	switch k := kinds[rng.Intn(len(kinds))]; k {
	case KindNull:
		return Null()
	case KindInt:
		return Int(rng.Int63() - rng.Int63())
	case KindReal:
		return Real(rng.NormFloat64() * 1e6)
	case KindBool:
		return Bool(rng.Intn(2) == 0)
	case KindString:
		b := make([]byte, rng.Intn(20))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return Str(string(b))
	case KindIdent:
		return Ident(addr.New(addr.TypeID(rng.Intn(10)), uint64(rng.Intn(1000))))
	case KindRef:
		return Ref(addr.New(addr.TypeID(rng.Intn(10)), uint64(rng.Intn(1000))))
	default:
		n := rng.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(rng, depth-1)
		}
		return Value{K: k, E: elems}
	}
}

// Property: encode/decode is the identity on random value trees.
func TestCodecQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		values := make([]Value, rng.Intn(10)+1)
		for i := range values {
			values[i] = randomValue(rng, 3)
		}
		got, err := DecodeAtom(EncodeAtom(values))
		if err != nil || len(got) != len(values) {
			return false
		}
		for i := range values {
			if !got[i].Equal(values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is a total preorder consistent with Equal on scalars,
// antisymmetric and transitive on random samples.
func TestCompareQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(rng, 2), randomValue(rng, 2), randomValue(rng, 2)
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		if Compare(a, a) != 0 {
			return false
		}
		// Transitivity: a<=b and b<=c implies a<=c.
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeAtom(b *testing.B) {
	values := []Value{
		Ident(addr.New(1, 42)), Int(1713), Str("a brep object"),
		RefSet(addr.New(2, 1), addr.New(2, 2), addr.New(2, 3), addr.New(2, 4)),
		Record(Real(1), Real(2), Real(3)),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeAtom(values)
	}
}

func BenchmarkDecodeAtom(b *testing.B) {
	values := []Value{
		Ident(addr.New(1, 42)), Int(1713), Str("a brep object"),
		RefSet(addr.New(2, 1), addr.New(2, 2), addr.New(2, 3), addr.New(2, 4)),
		Record(Real(1), Real(2), Real(3)),
	}
	buf := EncodeAtom(values)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAtom(buf); err != nil {
			b.Fatal(err)
		}
	}
}
