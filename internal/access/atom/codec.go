package atom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"prima/internal/access/addr"
)

// Binary encoding. Every value is (kind:1, payload); containers carry an
// element count. Atoms (attribute vectors) are encoded as
// (attrCount:2, values...) and attribute subsets — the partitions of §3.2 —
// as (pairCount:2, (attrIdx:2, value)...). All integers big-endian.

// Errors returned by the codec.
var (
	ErrTruncated = errors.New("atom: truncated encoding")
	ErrBadKind   = errors.New("atom: unknown value kind")
)

// AppendValue encodes v onto buf and returns the extended slice.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.K))
	switch v.K {
	case KindNull:
	case KindInt:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.I))
	case KindReal:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.F))
	case KindBool:
		if v.I != 0 {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindString:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.S)))
		buf = append(buf, v.S...)
	case KindIdent, KindRef:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.A))
	case KindRecord, KindArray, KindSet, KindList:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.E)))
		for _, e := range v.E {
			buf = AppendValue(buf, e)
		}
	}
	return buf
}

// DecodeValue decodes one value from data, returning it and the remaining
// bytes.
func DecodeValue(data []byte) (Value, []byte, error) {
	if len(data) < 1 {
		return Value{}, nil, ErrTruncated
	}
	k := Kind(data[0])
	data = data[1:]
	switch k {
	case KindNull:
		return Value{}, data, nil
	case KindInt:
		if len(data) < 8 {
			return Value{}, nil, ErrTruncated
		}
		return Value{K: k, I: int64(binary.BigEndian.Uint64(data))}, data[8:], nil
	case KindReal:
		if len(data) < 8 {
			return Value{}, nil, ErrTruncated
		}
		return Value{K: k, F: math.Float64frombits(binary.BigEndian.Uint64(data))}, data[8:], nil
	case KindBool:
		if len(data) < 1 {
			return Value{}, nil, ErrTruncated
		}
		return Value{K: k, I: int64(data[0] & 1)}, data[1:], nil
	case KindString:
		if len(data) < 4 {
			return Value{}, nil, ErrTruncated
		}
		n := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		if len(data) < n {
			return Value{}, nil, ErrTruncated
		}
		return Value{K: k, S: string(data[:n])}, data[n:], nil
	case KindIdent, KindRef:
		if len(data) < 8 {
			return Value{}, nil, ErrTruncated
		}
		return Value{K: k, A: addr.LogicalAddr(binary.BigEndian.Uint64(data))}, data[8:], nil
	case KindRecord, KindArray, KindSet, KindList:
		if len(data) < 4 {
			return Value{}, nil, ErrTruncated
		}
		n := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		v := Value{K: k}
		if n > 0 {
			v.E = make([]Value, 0, n)
		}
		for i := 0; i < n; i++ {
			var e Value
			var err error
			e, data, err = DecodeValue(data)
			if err != nil {
				return Value{}, nil, err
			}
			v.E = append(v.E, e)
		}
		return v, data, nil
	default:
		return Value{}, nil, fmt.Errorf("%w: %d", ErrBadKind, k)
	}
}

// EncodeAtom serializes a full attribute vector.
func EncodeAtom(values []Value) []byte {
	buf := make([]byte, 0, 16+16*len(values))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(values)))
	for _, v := range values {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeAtom deserializes a full attribute vector.
func DecodeAtom(data []byte) ([]Value, error) {
	if len(data) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(data))
	data = data[2:]
	values := make([]Value, n)
	var err error
	for i := 0; i < n; i++ {
		values[i], data, err = DecodeValue(data)
		if err != nil {
			return nil, fmt.Errorf("atom: attribute %d: %w", i, err)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("atom: %d trailing bytes", len(data))
	}
	return values, nil
}

// EncodeProjection serializes the chosen attributes (by index) of an atom.
// This is the physical format of partition records, which hold "separate
// storage of attribute combinations" (§3.2).
func EncodeProjection(indices []int, values []Value) []byte {
	buf := make([]byte, 0, 16+16*len(indices))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(indices)))
	for _, idx := range indices {
		buf = binary.BigEndian.AppendUint16(buf, uint16(idx))
		buf = AppendValue(buf, values[idx])
	}
	return buf
}

// DecodeProjection deserializes a partition record into (attrIndex, value)
// pairs.
func DecodeProjection(data []byte) (map[int]Value, error) {
	if len(data) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(data))
	data = data[2:]
	out := make(map[int]Value, n)
	for i := 0; i < n; i++ {
		if len(data) < 2 {
			return nil, ErrTruncated
		}
		idx := int(binary.BigEndian.Uint16(data))
		data = data[2:]
		var v Value
		var err error
		v, data, err = DecodeValue(data)
		if err != nil {
			return nil, fmt.Errorf("atom: projection pair %d: %w", i, err)
		}
		out[idx] = v
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("atom: %d trailing bytes", len(data))
	}
	return out, nil
}
