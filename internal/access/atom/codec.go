package atom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"

	"prima/internal/access/addr"
)

// Binary encoding. Every value is (kind:1, payload); containers carry an
// element count. Atoms (attribute vectors) are encoded as
// (attrCount:2, values...) and attribute subsets — the partitions of §3.2 —
// as (pairCount:2, (attrIdx:2, value)...). All integers big-endian.

// Errors returned by the codec.
var (
	ErrTruncated = errors.New("atom: truncated encoding")
	ErrBadKind   = errors.New("atom: unknown value kind")
)

// AppendValue encodes v onto buf and returns the extended slice.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.K))
	switch v.K {
	case KindNull:
	case KindInt:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.I))
	case KindReal:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.F))
	case KindBool:
		if v.I != 0 {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindString:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.S)))
		buf = append(buf, v.S...)
	case KindIdent, KindRef:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.A))
	case KindRecord, KindArray, KindSet, KindList:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.E)))
		for _, e := range v.E {
			buf = AppendValue(buf, e)
		}
	}
	return buf
}

// DecodeValue decodes one value from data, returning it and the remaining
// bytes. Strings are copied out of data, so the caller may reuse the input
// buffer afterwards.
func DecodeValue(data []byte) (Value, []byte, error) {
	return decodeValue(data, false)
}

// decodeValue decodes one value. When owned is true the input buffer belongs
// to the decoded result: string payloads alias data instead of being copied
// (the zero-copy fast path for cache-owned record images).
func decodeValue(data []byte, owned bool) (Value, []byte, error) {
	if len(data) < 1 {
		return Value{}, nil, ErrTruncated
	}
	k := Kind(data[0])
	data = data[1:]
	switch k {
	case KindNull:
		return Value{}, data, nil
	case KindInt:
		if len(data) < 8 {
			return Value{}, nil, ErrTruncated
		}
		return Value{K: k, I: int64(binary.BigEndian.Uint64(data))}, data[8:], nil
	case KindReal:
		if len(data) < 8 {
			return Value{}, nil, ErrTruncated
		}
		return Value{K: k, F: math.Float64frombits(binary.BigEndian.Uint64(data))}, data[8:], nil
	case KindBool:
		if len(data) < 1 {
			return Value{}, nil, ErrTruncated
		}
		return Value{K: k, I: int64(data[0] & 1)}, data[1:], nil
	case KindString:
		if len(data) < 4 {
			return Value{}, nil, ErrTruncated
		}
		n := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		if len(data) < n {
			return Value{}, nil, ErrTruncated
		}
		var s string
		if owned {
			s = aliasString(data[:n])
		} else {
			s = string(data[:n])
		}
		return Value{K: k, S: s}, data[n:], nil
	case KindIdent, KindRef:
		if len(data) < 8 {
			return Value{}, nil, ErrTruncated
		}
		return Value{K: k, A: addr.LogicalAddr(binary.BigEndian.Uint64(data))}, data[8:], nil
	case KindRecord, KindArray, KindSet, KindList:
		if len(data) < 4 {
			return Value{}, nil, ErrTruncated
		}
		n := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		v := Value{K: k}
		if n > 0 {
			v.E = make([]Value, 0, n)
		}
		for i := 0; i < n; i++ {
			var e Value
			var err error
			e, data, err = decodeValue(data, owned)
			if err != nil {
				return Value{}, nil, err
			}
			v.E = append(v.E, e)
		}
		return v, data, nil
	default:
		return Value{}, nil, fmt.Errorf("%w: %d", ErrBadKind, k)
	}
}

// aliasString views b as a string without copying. Only used for buffers the
// decoded values own exclusively (fresh record copies): the values are
// immutable afterwards, so the aliased bytes are never rewritten.
func aliasString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// EncodeAtom serializes a full attribute vector.
func EncodeAtom(values []Value) []byte {
	return AppendAtom(make([]byte, 0, 16+16*len(values)), values)
}

// AppendAtom serializes a full attribute vector onto buf and returns the
// extended slice — the allocation-free variant of EncodeAtom for callers
// that pool their encode scratch (the record layers copy the bytes into
// pages, so the buffer never needs to outlive the call).
func AppendAtom(buf []byte, values []Value) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(values)))
	for _, v := range values {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeAtom deserializes a full attribute vector. Strings are copied, so
// the input buffer may be reused.
func DecodeAtom(data []byte) ([]Value, error) {
	return decodeAtom(data, false)
}

// DecodeAtomOwned deserializes a full attribute vector from a buffer the
// result takes ownership of: string values alias the input bytes instead of
// copying them. Callers pass freshly read record images (which the container
// layer already copies out of its pages) and must not modify data afterwards.
func DecodeAtomOwned(data []byte) ([]Value, error) {
	return decodeAtom(data, true)
}

func decodeAtom(data []byte, owned bool) ([]Value, error) {
	if len(data) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(data))
	values := make([]Value, n)
	return values, decodeAtomInto(values, data[2:], owned)
}

// decodeAtomInto decodes len(values) attribute values from data (the count
// header already stripped) into the caller-provided slice.
func decodeAtomInto(values []Value, data []byte, owned bool) error {
	var err error
	for i := range values {
		values[i], data, err = decodeValue(data, owned)
		if err != nil {
			return fmt.Errorf("atom: attribute %d: %w", i, err)
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("atom: %d trailing bytes", len(data))
	}
	return nil
}

// DecodeAtomBatch deserializes many record images in one call — the batched
// entry point behind the access system's ReadBatch path when the decoded
// results do not outlive the batch. All top-level attribute vectors are
// carved out of a single arena allocation, and the records are decoded with
// owned (zero-copy string) semantics, so a whole assembly level costs one
// slice allocation instead of one per atom. Callers that retain individual
// atoms (the decoded-atom cache) must decode per record instead: any one
// survivor would pin the entire arena. A nil record decodes to a nil vector
// (callers route those through their own error paths).
func DecodeAtomBatch(recs [][]byte) ([][]Value, error) {
	out := make([][]Value, len(recs))
	total := 0
	for _, r := range recs {
		if r == nil {
			continue
		}
		if len(r) < 2 {
			return nil, ErrTruncated
		}
		total += int(binary.BigEndian.Uint16(r))
	}
	arena := make([]Value, total)
	off := 0
	for i, r := range recs {
		if r == nil {
			continue
		}
		n := int(binary.BigEndian.Uint16(r))
		values := arena[off : off+n : off+n]
		off += n
		if err := decodeAtomInto(values, r[2:], true); err != nil {
			return nil, err
		}
		out[i] = values
	}
	return out, nil
}

// EncodeProjection serializes the chosen attributes (by index) of an atom.
// This is the physical format of partition records, which hold "separate
// storage of attribute combinations" (§3.2).
func EncodeProjection(indices []int, values []Value) []byte {
	buf := make([]byte, 0, 16+16*len(indices))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(indices)))
	for _, idx := range indices {
		buf = binary.BigEndian.AppendUint16(buf, uint16(idx))
		buf = AppendValue(buf, values[idx])
	}
	return buf
}

// DecodeProjection deserializes a partition record into (attrIndex, value)
// pairs.
func DecodeProjection(data []byte) (map[int]Value, error) {
	out := make(map[int]Value, 4)
	err := DecodeProjectionFunc(data, false, func(idx int, v Value) {
		out[idx] = v
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeProjectionFunc streams the (attrIndex, value) pairs of a partition
// record through fn without building a map — the fast path of
// partition-covered projected reads. owned selects zero-copy string decoding
// (see DecodeAtomOwned).
func DecodeProjectionFunc(data []byte, owned bool, fn func(idx int, v Value)) error {
	if len(data) < 2 {
		return ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(data))
	data = data[2:]
	for i := 0; i < n; i++ {
		if len(data) < 2 {
			return ErrTruncated
		}
		idx := int(binary.BigEndian.Uint16(data))
		data = data[2:]
		var v Value
		var err error
		v, data, err = decodeValue(data, owned)
		if err != nil {
			return fmt.Errorf("atom: projection pair %d: %w", i, err)
		}
		fn(idx, v)
	}
	if len(data) != 0 {
		return fmt.Errorf("atom: %d trailing bytes", len(data))
	}
	return nil
}
