package access

import (
	"errors"
	"strings"
	"testing"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/catalog"
)

// batchSystem builds an in-memory system with a simple wide/narrow type and
// n atoms, returning their addresses.
func batchSystem(t *testing.T, n int) (*System, []addr.LogicalAddr) {
	t.Helper()
	s, err := Open(Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	at, err := catalog.NewAtomType("item", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "n", Type: catalog.SpecInt()},
		{Name: "text", Type: catalog.SpecString()},
	}, nil)
	if err != nil {
		t.Fatalf("NewAtomType: %v", err)
	}
	if err := s.Schema().AddAtomType(at); err != nil {
		t.Fatalf("AddAtomType: %v", err)
	}
	if err := s.Schema().ResolveAssociations(); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	addrs := make([]addr.LogicalAddr, n)
	for i := range addrs {
		text := "t"
		if i%10 == 0 {
			// Every tenth record spills to a page sequence.
			text = strings.Repeat("x", 6000)
		}
		a, err := s.Insert("item", map[string]atom.Value{
			"n":    atom.Int(int64(i)),
			"text": atom.Str(text),
		})
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		addrs[i] = a
	}
	return s, addrs
}

func TestGetBatchMatchesGet(t *testing.T) {
	s, addrs := batchSystem(t, 100)
	batch, err := s.GetBatch(addrs, nil)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	if len(batch) != len(addrs) {
		t.Fatalf("batch = %d atoms, want %d", len(batch), len(addrs))
	}
	for i, a := range addrs {
		single, err := s.Get(a, nil)
		if err != nil {
			t.Fatalf("Get %v: %v", a, err)
		}
		if batch[i].Addr != a {
			t.Fatalf("atom %d: addr %v, want %v (alignment)", i, batch[i].Addr, a)
		}
		for j := range single.Values {
			if atom.Compare(batch[i].Values[j], single.Values[j]) != 0 {
				t.Fatalf("atom %d attr %d: batch %v != single %v", i, j, batch[i].Values[j], single.Values[j])
			}
		}
	}
}

func TestGetBatchSavesPageFixes(t *testing.T) {
	s, addrs := batchSystem(t, 64)
	// Disable the decoded-atom cache: this test compares page fixes of the
	// batched vs. single-read paths, and warm cache hits would serve the
	// single reads without fixing anything.
	s.SetAtomCacheSize(0)
	// Drop the spilled entries so every read is one inline record.
	var inline []addr.LogicalAddr
	for i, a := range addrs {
		if i%10 != 0 {
			inline = append(inline, a)
		}
	}
	s.Pool().ResetStats()
	if _, err := s.GetBatch(inline, nil); err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	batchFixes := s.Pool().Stats()

	s.Pool().ResetStats()
	for _, a := range inline {
		if _, err := s.Get(a, nil); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	singleFixes := s.Pool().Stats()

	if got, want := batchFixes.Hits+batchFixes.Misses, singleFixes.Hits+singleFixes.Misses; got >= want {
		t.Fatalf("batch fixed %d pages, singles fixed %d — batching saved nothing", got, want)
	}
}

func TestGetBatchUnknownAddr(t *testing.T) {
	s, addrs := batchSystem(t, 4)
	if err := s.Delete(addrs[2]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.GetBatch(addrs, nil); !errors.Is(err, ErrNoAtom) {
		t.Fatalf("GetBatch with dead addr = %v, want ErrNoAtom", err)
	}
	if _, err := s.GetBatch(nil, nil); err != nil {
		t.Fatalf("empty GetBatch: %v", err)
	}
}

func TestGetBatchProjection(t *testing.T) {
	s, addrs := batchSystem(t, 8)
	batch, err := s.GetBatch(addrs, []string{"n"})
	if err != nil {
		t.Fatalf("GetBatch projected: %v", err)
	}
	for i, at := range batch {
		v, ok := at.Value("n")
		if !ok || v.I != int64(i) {
			t.Fatalf("atom %d: n = %v", i, v)
		}
		if txt, _ := at.Value("text"); !txt.IsNull() {
			t.Fatalf("atom %d: unprojected attr materialized: %v", i, txt)
		}
	}
}

// TestConfigShardRounding checks the shard count rounds to a power of two
// in the config itself, so the per-shard budget divides by the real stripe
// count and the pool's aggregate capacity never exceeds BufferBytes.
func TestConfigShardRounding(t *testing.T) {
	c := Config{BufferShards: 6}
	if err := c.fill(); err != nil {
		t.Fatalf("fill: %v", err)
	}
	if c.BufferShards != 8 {
		t.Fatalf("BufferShards = %d, want 8", c.BufferShards)
	}
	s, err := Open(Config{BufferShards: 6})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if got := s.Pool().Shards(); got != 8 {
		t.Fatalf("pool shards = %d, want 8", got)
	}
}

// TestShardShrinkKeepsStructurePagesServable reproduces a config that works
// unsharded and must keep working sharded: a small partitioned-lru budget
// with small primary pages still has to serve the fixed-4K structure
// segments (B*-trees), so fill() must shrink the stripe count accordingly.
func TestShardShrinkKeepsStructurePagesServable(t *testing.T) {
	s, err := Open(Config{PageSize: 512, BufferBytes: 64 << 10, Policy: "partitioned-lru", BufferShards: 16})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if got := s.Pool().Shards(); got != 1 {
		t.Fatalf("pool shards = %d, want 1 (budget too small to stripe)", got)
	}
	at, err := catalog.NewAtomType("item", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "n", Type: catalog.SpecInt()},
	}, nil)
	if err != nil {
		t.Fatalf("NewAtomType: %v", err)
	}
	if err := s.Schema().AddAtomType(at); err != nil {
		t.Fatalf("AddAtomType: %v", err)
	}
	if err := s.Schema().ResolveAssociations(); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if _, err := s.Insert("item", map[string]atom.Value{"n": atom.Int(7)}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// The access path's B*-tree lives on a 4K segment; fixing its pages
	// must succeed under this budget.
	if err := s.CreateAccessPath(&catalog.AccessPathDef{
		Name: "byn", AtomType: "item", Attrs: []string{"n"}, Method: "BTREE",
	}); err != nil {
		t.Fatalf("CreateAccessPath under sharded small budget: %v", err)
	}
}

func TestScanAddrsAfterPaging(t *testing.T) {
	s, addrs := batchSystem(t, 25)
	var got []addr.LogicalAddr
	after := uint64(0)
	for {
		chunk, err := s.ScanAddrsAfter("item", after, 7)
		if err != nil {
			t.Fatalf("ScanAddrsAfter: %v", err)
		}
		if len(chunk) == 0 {
			break
		}
		got = append(got, chunk...)
		after = chunk[len(chunk)-1].Seq()
	}
	if len(got) != len(addrs) {
		t.Fatalf("paged scan saw %d addrs, want %d", len(got), len(addrs))
	}
	for i := range got {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d: %v != %v (order)", i, got[i], addrs[i])
		}
	}
	// Deleting mid-page entries must not disturb the paging.
	for i := 10; i < 15; i++ {
		if err := s.Delete(addrs[i]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	chunk, err := s.ScanAddrsAfter("item", addrs[9].Seq(), 7)
	if err != nil {
		t.Fatalf("ScanAddrsAfter: %v", err)
	}
	if len(chunk) == 0 || chunk[0] != addrs[15] {
		t.Fatalf("paging over deletions: first = %v, want %v", chunk, addrs[15])
	}
}
