package access

import (
	"errors"
	"sync"
	"testing"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
)

// TestSnapshotSeesPreImages: a snapshot opened before updates and deletes
// keeps reading the pre-DML state while live reads see the new one.
func TestSnapshotSeesPreImages(t *testing.T) {
	s, addrs := nodeSystem(t, 4)
	sn := s.OpenSnapshot()
	defer sn.Close()

	if err := s.Update(addrs[0], map[string]atom.Value{"n": atom.Int(100)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := s.Delete(addrs[1]); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	// Snapshot: pre-image of the updated atom.
	at, err := sn.Get(addrs[0])
	if err != nil {
		t.Fatalf("snapshot Get: %v", err)
	}
	if v, _ := at.Value("n"); v.I != 0 {
		t.Fatalf("snapshot n = %d, want pre-image 0", v.I)
	}
	// Snapshot: the deleted atom still reads.
	if at, err = sn.Get(addrs[1]); err != nil {
		t.Fatalf("snapshot Get of deleted atom: %v", err)
	}
	if v, _ := at.Value("n"); v.I != 1 {
		t.Fatalf("snapshot deleted n = %d, want 1", v.I)
	}
	if !sn.Exists(addrs[1]) {
		t.Fatalf("snapshot Exists(deleted) = false, want true")
	}

	// Live reads see the new state.
	cur, err := s.Get(addrs[0], nil)
	if err != nil {
		t.Fatalf("live Get: %v", err)
	}
	if v, _ := cur.Value("n"); v.I != 100 {
		t.Fatalf("live n = %d, want 100", v.I)
	}
	if _, err := s.Get(addrs[1], nil); !errors.Is(err, ErrNoAtom) {
		t.Fatalf("live Get of deleted atom = %v, want ErrNoAtom", err)
	}

	// Batched snapshot reads agree with single reads.
	batch, err := sn.GetBatch(addrs)
	if err != nil {
		t.Fatalf("snapshot GetBatch: %v", err)
	}
	for i, at := range batch {
		if v, _ := at.Value("n"); v.I != int64(i) {
			t.Fatalf("batch[%d].n = %d, want %d", i, v.I, i)
		}
	}
}

// TestSnapshotHidesLaterInserts: atoms inserted after a snapshot opened are
// tombstoned for it.
func TestSnapshotHidesLaterInserts(t *testing.T) {
	s, _ := nodeSystem(t, 2)
	sn := s.OpenSnapshot()
	defer sn.Close()

	a, err := s.Insert("node", map[string]atom.Value{"n": atom.Int(99)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if sn.Exists(a) {
		t.Fatalf("snapshot Exists(inserted-after) = true, want false")
	}
	if _, err := sn.Get(a); !errors.Is(err, ErrNoAtom) {
		t.Fatalf("snapshot Get of later insert = %v, want ErrNoAtom", err)
	}
	// A fresh snapshot sees it.
	sn2 := s.OpenSnapshot()
	defer sn2.Close()
	if !sn2.Exists(a) {
		t.Fatalf("fresh snapshot misses the committed insert")
	}
}

// TestSnapshotScanEnumeratesGhosts: deleted atoms still enumerate for an
// older snapshot; later inserts do not leak into its visible set.
func TestSnapshotScanEnumeratesGhosts(t *testing.T) {
	s, addrs := nodeSystem(t, 8)
	sn := s.OpenSnapshot()
	defer sn.Close()

	if err := s.Delete(addrs[2]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete(addrs[5]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Insert("node", map[string]atom.Value{"n": atom.Int(100)}); err != nil {
		t.Fatalf("Insert: %v", err)
	}

	got, err := sn.ScanAddrsAfter("node", 0, 100)
	if err != nil {
		t.Fatalf("snapshot scan: %v", err)
	}
	visible := 0
	for _, a := range got {
		if sn.Exists(a) {
			visible++
		}
	}
	if visible != len(addrs) {
		t.Fatalf("snapshot enumerates %d visible atoms, want %d (got %v)", visible, len(addrs), got)
	}
	// Ghosts must appear in sequence order within the result.
	for i := 1; i < len(got); i++ {
		if got[i-1].Seq() >= got[i].Seq() {
			t.Fatalf("snapshot scan out of order: %v", got)
		}
	}

	// Paged enumeration (limit smaller than the set) stays gap-free.
	var paged []addr.LogicalAddr
	after := uint64(0)
	for {
		chunk, err := sn.ScanAddrsAfter("node", after, 3)
		if err != nil {
			t.Fatalf("paged scan: %v", err)
		}
		if len(chunk) == 0 {
			break
		}
		paged = append(paged, chunk...)
		after = chunk[len(chunk)-1].Seq()
	}
	if len(paged) != len(got) {
		t.Fatalf("paged scan found %d addrs, single scan %d", len(paged), len(got))
	}
	for i := range paged {
		if paged[i] != got[i] {
			t.Fatalf("paged scan diverges at %d: %v vs %v", i, paged[i], got[i])
		}
	}
}

// TestSnapshotGCDrainsChains: history exists only while a snapshot can reach
// it; closing the last snapshot reclaims everything.
func TestSnapshotGCDrainsChains(t *testing.T) {
	s, addrs := nodeSystem(t, 4)
	if got := s.mv.entries.Load(); got != 0 {
		t.Fatalf("entries = %d before any snapshot, want 0", got)
	}

	sn := s.OpenSnapshot()
	if err := s.Update(addrs[0], map[string]atom.Value{"n": atom.Int(1)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := s.Delete(addrs[1]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if got := s.mv.entries.Load(); got == 0 {
		t.Fatalf("entries = 0 with an open snapshot and history, want > 0")
	}
	sn.Close()
	if got := s.mv.entries.Load(); got != 0 {
		t.Fatalf("entries = %d after last snapshot closed, want 0", got)
	}

	// Without snapshots, writes prune their own spans immediately.
	if err := s.Update(addrs[2], map[string]atom.Value{"n": atom.Int(2)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if got := s.mv.entries.Load(); got != 0 {
		t.Fatalf("entries = %d in snapshot-free steady state, want 0", got)
	}

	// Close is idempotent.
	sn.Close()
}

// TestSnapshotConcurrentDML hammers snapshot readers against writers under
// the race detector: each snapshot's view of its atom must stay frozen at
// the value it opened over.
func TestSnapshotConcurrentDML(t *testing.T) {
	s, addrs := nodeSystem(t, 8)
	const rounds = 200
	var wg sync.WaitGroup
	errc := make(chan error, 16)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := int64(1); v <= rounds; v++ {
			i := int(v) % len(addrs)
			if err := s.Update(addrs[i], map[string]atom.Value{"n": atom.Int(v)}); err != nil {
				errc <- err
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for k := 0; k < rounds/4; k++ {
				sn := s.OpenSnapshot()
				i := (k + r) % len(addrs)
				first, err := sn.Get(addrs[i])
				if err != nil {
					sn.Close()
					errc <- err
					return
				}
				want := first.Values[1].I
				for probe := 0; probe < 4; probe++ {
					at, err := sn.Get(addrs[i])
					if err != nil {
						sn.Close()
						errc <- err
						return
					}
					if got := at.Values[1].I; got != want {
						sn.Close()
						errc <- errors.New("snapshot view moved mid-lifetime")
						return
					}
				}
				sn.Close()
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("concurrent snapshot DML: %v", err)
	default:
	}
	if got := s.mv.entries.Load(); got != 0 {
		t.Fatalf("entries = %d after all snapshots closed and writes done, want 0", got)
	}
}

// TestNegativeCacheProbes: a failed Get publishes a negative entry served on
// the next probe without a directory miss; insert at that address (via
// resurrection) invalidates it.
func TestNegativeCacheProbes(t *testing.T) {
	s, addrs := nodeSystem(t, 2)
	victim := addrs[0]
	pre, err := s.Get(victim, nil)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := s.Delete(victim); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	if _, err := s.Get(victim, nil); !errors.Is(err, ErrNoAtom) {
		t.Fatalf("Get deleted = %v, want ErrNoAtom", err)
	}
	st1 := s.AtomCacheStats()
	if _, err := s.Get(victim, nil); !errors.Is(err, ErrNoAtom) {
		t.Fatalf("second Get deleted = %v, want ErrNoAtom", err)
	}
	st2 := s.AtomCacheStats()
	if st2.Hits != st1.Hits+1 {
		t.Fatalf("negative probe not served from cache: hits %d -> %d", st1.Hits, st2.Hits)
	}

	// Resurrection must kill the negative entry.
	if err := s.RawResurrect(victim, pre.Values); err != nil {
		t.Fatalf("RawResurrect: %v", err)
	}
	if _, err := s.Get(victim, nil); err != nil {
		t.Fatalf("Get after resurrect: %v", err)
	}
}

// TestAtomCacheByteAccounting: the stats expose the byte charge, and a wide
// atom displaces more narrow ones than its count suggests.
func TestAtomCacheByteAccounting(t *testing.T) {
	s, addrs := nodeSystem(t, 4)
	s.SetAtomCacheSize(16)
	if _, err := s.Get(addrs[0], nil); err != nil {
		t.Fatalf("Get: %v", err)
	}
	st := s.AtomCacheStats()
	if st.Bytes < acMinAtomCost {
		t.Fatalf("Bytes = %d, want >= %d", st.Bytes, acMinAtomCost)
	}
	if st.Atoms != 1 {
		t.Fatalf("Atoms = %d, want 1", st.Atoms)
	}

	// A very wide atom (large string) charges its real footprint: caching it
	// under a small budget evicts everything else in its shard.
	wide, err := s.Insert("node", map[string]atom.Value{
		"label": atom.Str(string(make([]byte, 64<<10))),
	})
	if err != nil {
		t.Fatalf("Insert wide: %v", err)
	}
	if _, err := s.Get(wide, nil); err != nil {
		t.Fatalf("Get wide: %v", err)
	}
	st = s.AtomCacheStats()
	if st.Bytes < 64<<10 {
		t.Fatalf("Bytes = %d after caching a 64K atom, want >= 65536", st.Bytes)
	}
	if st.Atoms > 16 {
		t.Fatalf("Atoms = %d, budget 16", st.Atoms)
	}
}
