package access

import (
	"encoding/binary"
	"fmt"
	"sort"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/access/btree"
	"prima/internal/access/mdindex"
	"prima/internal/access/record"
	"prima/internal/catalog"
	"prima/internal/storage/device"
	"prima/internal/storage/pageseq"
)

// This file implements the lifecycle of the LDL-declared tuning structures:
// "All tuning mechanisms - atom clusters as well as access paths, sort
// orders, and partitions - generate additional storage structures which
// materialize homogeneous or heterogeneous result sets. ... Such a redundant
// structure - specified by an LDL statement - may be generated and dropped
// at any time." (§3.2)

// --- binding helpers ---------------------------------------------------------

func (s *System) bindSortOrder(def *catalog.SortOrderDef, cont *record.Container, tree *btree.BTree) (*sortOrderStruct, error) {
	t, err := s.typeOf(def.AtomType)
	if err != nil {
		return nil, err
	}
	so := &sortOrderStruct{def: def, container: cont, tree: tree}
	allDesc := true
	anyDesc := false
	for _, d := range def.Desc {
		if d {
			anyDesc = true
		} else {
			allDesc = false
		}
	}
	if anyDesc && !allDesc {
		return nil, fmt.Errorf("access: sort order %s: mixed ASC/DESC directions are not supported", def.Name)
	}
	so.desc = anyDesc
	for _, a := range def.Attrs {
		i, ok := t.AttrIndex(a)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", catalog.ErrUnknownAttr, def.AtomType, a)
		}
		so.attrIdxs = append(so.attrIdxs, i)
	}
	return so, nil
}

func (s *System) bindPartition(def *catalog.PartitionDef, cont *record.Container) (*partitionStruct, error) {
	t, err := s.typeOf(def.AtomType)
	if err != nil {
		return nil, err
	}
	p := &partitionStruct{def: def, container: cont}
	for _, a := range def.Attrs {
		i, ok := t.AttrIndex(a)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", catalog.ErrUnknownAttr, def.AtomType, a)
		}
		p.attrIdxs = append(p.attrIdxs, i)
	}
	sort.Ints(p.attrIdxs)
	return p, nil
}

func (s *System) bindAccessPath(def *catalog.AccessPathDef) (*accessPathStruct, error) {
	t, err := s.typeOf(def.AtomType)
	if err != nil {
		return nil, err
	}
	ap := &accessPathStruct{def: def}
	for _, a := range def.Attrs {
		i, ok := t.AttrIndex(a)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", catalog.ErrUnknownAttr, def.AtomType, a)
		}
		ap.attrIdxs = append(ap.attrIdxs, i)
	}
	return ap, nil
}

// sortKey builds the composite key of a sort order for one atom.
func (so *sortOrderStruct) sortKey(values []atom.Value) atom.Value {
	elems := make([]atom.Value, len(so.attrIdxs))
	for i, idx := range so.attrIdxs {
		elems[i] = values[idx]
	}
	return atom.List(elems...)
}

// apKeys extracts the key vector of an access path for one atom.
func (ap *accessPathStruct) apKeys(values []atom.Value) []atom.Value {
	keys := make([]atom.Value, len(ap.attrIdxs))
	for i, idx := range ap.attrIdxs {
		keys[i] = values[idx]
	}
	return keys
}

// --- creation (LDL execution) ------------------------------------------------

// CreateAccessPath registers the definition in the catalog and builds the
// index over the existing atoms.
func (s *System) CreateAccessPath(def *catalog.AccessPathDef) error {
	if err := s.schema.AddAccessPath(def); err != nil {
		return err
	}
	ap, err := s.bindAccessPath(def)
	if err != nil {
		return err
	}
	if def.Method == "BTREE" {
		seg, err := s.newSegment("appath_"+def.Name, device.B4K, 0)
		if err != nil {
			return err
		}
		if ap.tree, err = btree.Create(seg, s.pool); err != nil {
			return err
		}
	} else {
		ap.grid = mdindex.New(len(def.Attrs), 64)
	}
	s.mu.Lock()
	s.accessPaths[def.Name] = ap
	s.mu.Unlock()

	// Backfill from existing atoms.
	t, err := s.typeOf(def.AtomType)
	if err != nil {
		return err
	}
	var addErr error
	s.dir.Scan(t.ID, func(a addr.LogicalAddr, _ []addr.RecordRef) bool {
		at, err := s.Get(a, nil)
		if err != nil {
			addErr = err
			return false
		}
		if err := s.indexInsert(ap, at.Values, a); err != nil {
			addErr = err
			return false
		}
		return true
	})
	return addErr
}

// CreateSortOrder registers and materializes a sort order over the existing
// atoms of the type.
func (s *System) CreateSortOrder(def *catalog.SortOrderDef) error {
	if err := s.schema.AddSortOrder(def); err != nil {
		return err
	}
	cseg, err := s.newSegment("sortorder_"+def.Name, s.cfg.PageSize, 0)
	if err != nil {
		return err
	}
	cont, err := record.New(cseg, s.pool)
	if err != nil {
		return err
	}
	tseg, err := s.newSegment("sorttree_"+def.Name, device.B4K, 0)
	if err != nil {
		return err
	}
	tree, err := btree.Create(tseg, s.pool)
	if err != nil {
		return err
	}
	so, err := s.bindSortOrder(def, cont, tree)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.sortOrders[def.ID] = so
	s.mu.Unlock()

	t, err := s.typeOf(def.AtomType)
	if err != nil {
		return err
	}
	var addErr error
	s.dir.Scan(t.ID, func(a addr.LogicalAddr, _ []addr.RecordRef) bool {
		at, err := s.Get(a, nil)
		if err != nil {
			addErr = err
			return false
		}
		if addErr = s.sortOrderInsert(so, at.Values, a); addErr != nil {
			return false
		}
		return true
	})
	return addErr
}

// sortOrderInsert adds one atom's redundant copy to a sort order.
func (s *System) sortOrderInsert(so *sortOrderStruct, values []atom.Value, a addr.LogicalAddr) error {
	rid, err := so.container.Insert(atom.EncodeAtom(values))
	if err != nil {
		return err
	}
	if err := s.dir.Register(a, addr.RecordRef{
		Struct: so.def.ID, Kind: addr.KindSortOrder, Where: rid, Valid: true,
	}); err != nil {
		return err
	}
	return so.tree.Insert(so.sortKey(values), a)
}

// CreatePartition registers and materializes a vertical partition.
func (s *System) CreatePartition(def *catalog.PartitionDef) error {
	if err := s.schema.AddPartition(def); err != nil {
		return err
	}
	seg, err := s.newSegment("partition_"+def.Name, device.B4K, 0)
	if err != nil {
		return err
	}
	cont, err := record.New(seg, s.pool)
	if err != nil {
		return err
	}
	p, err := s.bindPartition(def, cont)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.partitions[def.ID] = p
	s.mu.Unlock()

	t, err := s.typeOf(def.AtomType)
	if err != nil {
		return err
	}
	var addErr error
	s.dir.Scan(t.ID, func(a addr.LogicalAddr, _ []addr.RecordRef) bool {
		at, err := s.Get(a, nil)
		if err != nil {
			addErr = err
			return false
		}
		if addErr = s.partitionInsert(p, at.Values, a); addErr != nil {
			return false
		}
		return true
	})
	return addErr
}

// partitionInsert adds one atom's attribute subset to a partition.
func (s *System) partitionInsert(p *partitionStruct, values []atom.Value, a addr.LogicalAddr) error {
	rid, err := p.container.Insert(atom.EncodeProjection(p.attrIdxs, values))
	if err != nil {
		return err
	}
	return s.dir.Register(a, addr.RecordRef{
		Struct: p.def.ID, Kind: addr.KindPartition, Where: rid, Valid: true,
	})
}

// CreateCluster registers an atom-cluster type and materializes one atom
// cluster per existing root atom ("Inserting a characteristic atom generates
// a new atom cluster consisting of the characteristic atom and all atoms
// referenced by it").
func (s *System) CreateCluster(def *catalog.ClusterDef) error {
	if err := s.schema.AddCluster(def); err != nil {
		return err
	}
	seg, err := s.newSegment("cluster_"+def.Name, s.cfg.PageSize, 0)
	if err != nil {
		return err
	}
	cl := &clusterStruct{def: def, seg: seg, occurrences: map[addr.LogicalAddr]uint32{}, seqs: map[addr.LogicalAddr]*pageseq.Sequence{}}
	s.mu.Lock()
	s.clusters[def.ID] = cl
	s.mu.Unlock()

	root, err := s.typeOf(def.RootType())
	if err != nil {
		return err
	}
	var addErr error
	s.dir.Scan(root.ID, func(a addr.LogicalAddr, _ []addr.RecordRef) bool {
		if addErr = s.buildClusterOccurrence(cl, a); addErr != nil {
			return false
		}
		return true
	})
	return addErr
}

// clusterPayload is the serialized form of one atom cluster (Fig. 3.2b):
// the characteristic atom (reference lists grouped by atom type) followed by
// a relative address table and the member atom images.
//
//	count       uint32
//	table       count * (addr u64, offset u32, length u32)
//	member data ...
func buildClusterPayload(members []memberAtom) []byte {
	var table []byte
	var data []byte
	base := 4 + len(members)*16
	for _, m := range members {
		enc := atom.EncodeAtom(m.values)
		table = binary.BigEndian.AppendUint64(table, uint64(m.addr))
		table = binary.BigEndian.AppendUint32(table, uint32(base+len(data)))
		table = binary.BigEndian.AppendUint32(table, uint32(len(enc)))
		data = append(data, enc...)
	}
	out := make([]byte, 0, 4+len(table)+len(data))
	out = binary.BigEndian.AppendUint32(out, uint32(len(members)))
	out = append(out, table...)
	out = append(out, data...)
	return out
}

type memberAtom struct {
	addr   addr.LogicalAddr
	values []atom.Value
}

// parseClusterTable decodes the relative address table of a cluster payload.
func parseClusterTable(payload []byte) ([]addr.LogicalAddr, []uint32, []uint32, error) {
	if len(payload) < 4 {
		return nil, nil, nil, fmt.Errorf("access: truncated cluster payload")
	}
	n := int(binary.BigEndian.Uint32(payload))
	if len(payload) < 4+n*16 {
		return nil, nil, nil, fmt.Errorf("access: truncated cluster table")
	}
	addrs := make([]addr.LogicalAddr, n)
	offs := make([]uint32, n)
	lens := make([]uint32, n)
	for i := 0; i < n; i++ {
		base := 4 + i*16
		addrs[i] = addr.LogicalAddr(binary.BigEndian.Uint64(payload[base:]))
		offs[i] = binary.BigEndian.Uint32(payload[base+8:])
		lens[i] = binary.BigEndian.Uint32(payload[base+12:])
	}
	return addrs, offs, lens, nil
}

// collectClusterMembers gathers the atoms of one molecule occurrence
// following the cluster's molecule structure from the root atom — the
// "main lanes to be traversed during molecule derivation".
func (s *System) collectClusterMembers(cl *clusterStruct, root addr.LogicalAddr) ([]memberAtom, error) {
	var members []memberAtom
	seen := map[addr.LogicalAddr]bool{}

	var walk func(node *catalog.MolNode, a addr.LogicalAddr) error
	walk = func(node *catalog.MolNode, a addr.LogicalAddr) error {
		if seen[a] {
			return nil
		}
		at, err := s.Get(a, nil)
		if err != nil {
			return err
		}
		seen[a] = true
		members = append(members, memberAtom{addr: a, values: at.Values})

		t := at.Type
		for _, child := range node.Children {
			idx, ok := t.AttrIndex(child.Via)
			if !ok {
				return fmt.Errorf("%w: %s.%s", catalog.ErrUnknownAttr, t.Name, child.Via)
			}
			targets := at.Values[idx].Refs()
			for _, ta := range targets {
				if child.Recursive {
					if err := walk(node, ta); err != nil { // re-apply the same level
						return err
					}
				} else if err := walk(child, ta); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(cl.def.Molecule.Root, root); err != nil {
		return nil, err
	}
	return members, nil
}

// buildClusterOccurrence materializes (or rebuilds) the atom cluster rooted
// at root.
func (s *System) buildClusterOccurrence(cl *clusterStruct, root addr.LogicalAddr) error {
	members, err := s.collectClusterMembers(cl, root)
	if err != nil {
		return err
	}
	payload := buildClusterPayload(members)

	s.mu.Lock()
	oldHeader, had := cl.occurrences[root]
	s.mu.Unlock()

	if had {
		// Unregister old member refs before rewriting.
		oldSeq, err := pageseq.Open(cl.seg, oldHeader)
		if err != nil {
			return err
		}
		oldPayload, err := oldSeq.ReadAll()
		if err != nil {
			return err
		}
		oldAddrs, _, _, err := parseClusterTable(oldPayload)
		if err != nil {
			return err
		}
		for _, a := range oldAddrs {
			if s.dir.Exists(a) {
				_ = s.dir.Unregister(a, cl.def.ID)
			}
		}
		if err := oldSeq.Delete(); err != nil {
			return err
		}
	}

	seq, err := pageseq.Create(cl.seg, payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	cl.occurrences[root] = seq.HeaderPage()
	cl.seqs[root] = seq
	s.mu.Unlock()
	for i, m := range members {
		if err := s.dir.Register(m.addr, addr.RecordRef{
			Struct: cl.def.ID, Kind: addr.KindCluster,
			Where: addr.RID{Page: seq.HeaderPage(), Slot: uint16(i)}, Valid: true,
		}); err != nil {
			return err
		}
	}
	return nil
}

// dropClusterOccurrence removes the cluster rooted at root ("deleting a
// characteristic atom deletes a whole atom cluster").
func (s *System) dropClusterOccurrence(cl *clusterStruct, root addr.LogicalAddr) error {
	s.mu.Lock()
	header, ok := cl.occurrences[root]
	if ok {
		delete(cl.occurrences, root)
		delete(cl.seqs, root)
	}
	s.mu.Unlock()
	if !ok {
		return nil
	}
	seq, err := pageseq.Open(cl.seg, header)
	if err != nil {
		return err
	}
	payload, err := seq.ReadAll()
	if err != nil {
		return err
	}
	addrs, _, _, err := parseClusterTable(payload)
	if err != nil {
		return err
	}
	for _, a := range addrs {
		if s.dir.Exists(a) {
			_ = s.dir.Unregister(a, cl.def.ID)
		}
	}
	return seq.Delete()
}

// indexInsert adds an atom to one access path.
func (s *System) indexInsert(ap *accessPathStruct, values []atom.Value, a addr.LogicalAddr) error {
	if ap.tree != nil {
		return ap.tree.Insert(values[ap.attrIdxs[0]], a)
	}
	return ap.grid.Insert(ap.apKeys(values), a)
}

// indexDelete removes an atom from one access path.
func (s *System) indexDelete(ap *accessPathStruct, values []atom.Value, a addr.LogicalAddr) error {
	if ap.tree != nil {
		return ap.tree.Delete(values[ap.attrIdxs[0]], a)
	}
	return ap.grid.Delete(ap.apKeys(values), a)
}

// DropLDL tears down the named LDL structure of any kind.
func (s *System) DropLDL(name string) error {
	def, err := s.schema.DropLDL(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch d := def.(type) {
	case *catalog.AccessPathDef:
		delete(s.accessPaths, name)
	case *catalog.SortOrderDef:
		so := s.sortOrders[d.ID]
		delete(s.sortOrders, d.ID)
		if so != nil {
			t, _ := s.schema.AtomType(d.AtomType)
			if t != nil {
				s.dir.Scan(t.ID, func(a addr.LogicalAddr, _ []addr.RecordRef) bool {
					_ = s.dir.Unregister(a, d.ID)
					return true
				})
			}
		}
	case *catalog.PartitionDef:
		p := s.partitions[d.ID]
		delete(s.partitions, d.ID)
		if p != nil {
			t, _ := s.schema.AtomType(d.AtomType)
			if t != nil {
				s.dir.Scan(t.ID, func(a addr.LogicalAddr, _ []addr.RecordRef) bool {
					_ = s.dir.Unregister(a, d.ID)
					return true
				})
			}
		}
	case *catalog.ClusterDef:
		cl := s.clusters[d.ID]
		delete(s.clusters, d.ID)
		if cl != nil {
			for root := range cl.occurrences {
				s.mu.Unlock()
				err := s.dropClusterOccurrence(cl, root)
				s.mu.Lock()
				if err != nil {
					return err
				}
			}
		}
	default:
		return fmt.Errorf("%w: %T", ErrUnknownStruct, def)
	}
	return nil
}

// sortOrdersOf returns the live sort orders on a type.
func (s *System) sortOrdersOf(typeName string) []*sortOrderStruct {
	var out []*sortOrderStruct
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, so := range s.sortOrders {
		if so.def.AtomType == typeName {
			out = append(out, so)
		}
	}
	return out
}

// partitionsOf returns the live partitions on a type.
func (s *System) partitionsOf(typeName string) []*partitionStruct {
	var out []*partitionStruct
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.partitions {
		if p.def.AtomType == typeName {
			out = append(out, p)
		}
	}
	return out
}

// accessPathsOf returns the live access paths on a type.
func (s *System) accessPathsOf(typeName string) []*accessPathStruct {
	var out []*accessPathStruct
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, ap := range s.accessPaths {
		if ap.def.AtomType == typeName {
			out = append(out, ap)
		}
	}
	return out
}

// clustersInvolving returns the live clusters containing the type.
func (s *System) clustersInvolving(typeName string) []*clusterStruct {
	var out []*clusterStruct
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, cl := range s.clusters {
		for _, at := range cl.def.Molecule.AtomTypes() {
			if at == typeName {
				out = append(out, cl)
				break
			}
		}
	}
	return out
}

// clusterByName returns the live cluster structure with the given name.
func (s *System) clusterByName(name string) (*clusterStruct, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, cl := range s.clusters {
		if cl.def.Name == name {
			return cl, nil
		}
	}
	return nil, fmt.Errorf("%w: cluster %s", ErrUnknownStruct, name)
}
