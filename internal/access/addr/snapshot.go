package addr

import (
	"encoding/binary"
	"fmt"
)

// Snapshot layout (big-endian):
//
//	magic    uint32 "ADIR"
//	ntypes   uint32
//	per type:
//	  typeID  uint16
//	  nextSeq uint64
//	  nentry  uint32
//	  per entry:
//	    seq   uint64
//	    nrefs uint16
//	    per ref: struct uint32, kind uint8, page uint32, slot uint16, valid uint8
//
// The directory is snapshotted at checkpoint/close time. Crash recovery is
// out of scope for the single-user prototype (the paper defers transaction
// recovery to a follow-up paper); a torn snapshot is detected via the magic
// and length checks and reported as corruption.
const snapMagic = 0x41444952 // "ADIR"

// Snapshot serializes the directory.
func (d *Directory) Snapshot() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()

	size := 8
	for _, p := range d.types {
		size += 2 + 8 + 4
		for _, e := range p.entries {
			size += 8 + 2 + len(e.refs)*12
		}
	}
	buf := make([]byte, 0, size)
	var scratch [12]byte

	put16 := func(v uint16) {
		binary.BigEndian.PutUint16(scratch[:2], v)
		buf = append(buf, scratch[:2]...)
	}
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(scratch[:4], v)
		buf = append(buf, scratch[:4]...)
	}
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:8], v)
		buf = append(buf, scratch[:8]...)
	}

	put32(snapMagic)
	put32(uint32(len(d.types)))
	for t, p := range d.types {
		put16(uint16(t))
		put64(p.nextSeq)
		put32(uint32(len(p.entries)))
		for seq, e := range p.entries {
			put64(seq)
			put16(uint16(len(e.refs)))
			for _, r := range e.refs {
				put32(uint32(r.Struct))
				buf = append(buf, byte(r.Kind))
				put32(r.Where.Page)
				put16(r.Where.Slot)
				if r.Valid {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
		}
	}
	return buf
}

// LoadSnapshot reconstructs a directory from Snapshot output.
func LoadSnapshot(data []byte) (*Directory, error) {
	d := NewDirectory()
	r := reader{data: data}
	if r.u32() != snapMagic {
		return nil, fmt.Errorf("addr: snapshot: bad magic")
	}
	ntypes := int(r.u32())
	for i := 0; i < ntypes; i++ {
		t := TypeID(r.u16())
		p := d.pt(t)
		p.nextSeq = r.u64()
		nentry := int(r.u32())
		for j := 0; j < nentry; j++ {
			seq := r.u64()
			nrefs := int(r.u16())
			e := &entry{refs: make([]RecordRef, 0, nrefs)}
			for k := 0; k < nrefs; k++ {
				ref := RecordRef{
					Struct: StructID(r.u32()),
					Kind:   StructKind(r.u8()),
					Where:  RID{Page: r.u32(), Slot: r.u16()},
					Valid:  r.u8() == 1,
				}
				e.refs = append(e.refs, ref)
			}
			p.entries[seq] = e
			p.order = append(p.order, seq)
		}
		p.sorted = false
		if r.err != nil {
			return nil, fmt.Errorf("addr: snapshot truncated at type %d", t)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("addr: snapshot truncated")
	}
	return d, nil
}

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.data) {
		r.err = fmt.Errorf("short read")
		return make([]byte, n)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8   { return r.take(1)[0] }
func (r *reader) u16() uint16 { return binary.BigEndian.Uint16(r.take(2)) }
func (r *reader) u32() uint32 { return binary.BigEndian.Uint32(r.take(4)) }
func (r *reader) u64() uint64 { return binary.BigEndian.Uint64(r.take(8)) }
