package addr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogicalAddrParts(t *testing.T) {
	a := New(7, 123456)
	if a.Type() != 7 || a.Seq() != 123456 {
		t.Fatalf("parts = (%d,%d), want (7,123456)", a.Type(), a.Seq())
	}
	if a.IsZero() {
		t.Fatal("non-zero address reported zero")
	}
	var z LogicalAddr
	if !z.IsZero() {
		t.Fatal("zero address not reported zero")
	}
	if a.String() != "@7.123456" {
		t.Fatalf("String = %q", a.String())
	}
	// 48-bit sequence wraps cleanly.
	big := New(1, 1<<48|5)
	if big.Seq() != 5 || big.Type() != 1 {
		t.Fatalf("overflowed seq leaked into type: %v", big)
	}
}

func TestNewAddrMonotonic(t *testing.T) {
	d := NewDirectory()
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		a := d.NewAddr(3)
		if a.Seq() <= prev {
			t.Fatalf("sequence not monotonic: %d after %d", a.Seq(), prev)
		}
		prev = a.Seq()
	}
	if d.Count(3) != 100 {
		t.Fatalf("Count = %d, want 100", d.Count(3))
	}
	if d.Count(4) != 0 {
		t.Fatalf("Count of empty type = %d", d.Count(4))
	}
}

func TestRegisterLookupUnregister(t *testing.T) {
	d := NewDirectory()
	a := d.NewAddr(1)

	refs, err := d.Lookup(a)
	if err != nil || len(refs) != 0 {
		t.Fatalf("fresh Lookup = %v, %v", refs, err)
	}

	primary := RecordRef{Struct: 0, Kind: KindPrimary, Where: RID{Page: 5, Slot: 2}, Valid: true}
	sortRec := RecordRef{Struct: 9, Kind: KindSortOrder, Where: RID{Page: 7, Slot: 0}, Valid: true}
	if err := d.Register(a, primary); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := d.Register(a, sortRec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := d.Register(a, primary); !errors.Is(err, ErrDupStruct) {
		t.Fatalf("duplicate Register = %v, want ErrDupStruct", err)
	}

	refs, err = d.Lookup(a)
	if err != nil || len(refs) != 2 {
		t.Fatalf("Lookup = %v, %v", refs, err)
	}
	got, ok := d.LookupStruct(a, 9)
	if !ok || got.Where != (RID{Page: 7, Slot: 0}) {
		t.Fatalf("LookupStruct = %+v, %v", got, ok)
	}

	if err := d.Unregister(a, 9); err != nil {
		t.Fatalf("Unregister: %v", err)
	}
	if _, ok := d.LookupStruct(a, 9); ok {
		t.Fatal("reference survives Unregister")
	}
	// Unregister of an absent struct is a no-op.
	if err := d.Unregister(a, 9); err != nil {
		t.Fatalf("idempotent Unregister: %v", err)
	}

	if _, err := d.Lookup(New(1, 9999)); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("Lookup unknown = %v, want ErrUnknownAddr", err)
	}
}

func TestUpdateAndValidity(t *testing.T) {
	d := NewDirectory()
	a := d.NewAddr(1)
	for i, k := range []StructKind{KindPrimary, KindSortOrder, KindPartition} {
		ref := RecordRef{Struct: StructID(i), Kind: k, Where: RID{Page: uint32(i)}, Valid: true}
		if err := d.Register(a, ref); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}

	if err := d.Update(a, 1, RID{Page: 77, Slot: 3}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, _ := d.LookupStruct(a, 1)
	if got.Where != (RID{Page: 77, Slot: 3}) {
		t.Fatalf("after Update: %+v", got)
	}
	if err := d.Update(a, 42, RID{}); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("Update missing struct = %v", err)
	}

	// Deferred-update protocol: one structure stays valid, others go stale.
	stale, err := d.InvalidateOthers(a, 0)
	if err != nil {
		t.Fatalf("InvalidateOthers: %v", err)
	}
	if len(stale) != 2 {
		t.Fatalf("stale = %d refs, want 2", len(stale))
	}
	refs, _ := d.Lookup(a)
	for _, r := range refs {
		wantValid := r.Struct == 0
		if r.Valid != wantValid {
			t.Fatalf("struct %d valid=%v, want %v", r.Struct, r.Valid, wantValid)
		}
	}
	// Second invalidation returns nothing new.
	stale, _ = d.InvalidateOthers(a, 0)
	if len(stale) != 0 {
		t.Fatalf("repeat InvalidateOthers = %d refs, want 0", len(stale))
	}

	// Propagation marks them valid again.
	if err := d.SetValid(a, 1, true); err != nil {
		t.Fatalf("SetValid: %v", err)
	}
	got, _ = d.LookupStruct(a, 1)
	if !got.Valid {
		t.Fatal("SetValid did not stick")
	}
}

func TestReleaseAndScan(t *testing.T) {
	d := NewDirectory()
	var addrs []LogicalAddr
	for i := 0; i < 10; i++ {
		a := d.NewAddr(2)
		if err := d.Register(a, RecordRef{Struct: 0, Kind: KindPrimary, Valid: true}); err != nil {
			t.Fatalf("Register: %v", err)
		}
		addrs = append(addrs, a)
	}

	refs, err := d.Release(addrs[4])
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	if len(refs) != 1 {
		t.Fatalf("Release returned %d refs, want 1", len(refs))
	}
	if d.Exists(addrs[4]) {
		t.Fatal("released address still exists")
	}
	if _, err := d.Release(addrs[4]); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("double Release = %v, want ErrUnknownAddr", err)
	}
	if d.Count(2) != 9 {
		t.Fatalf("Count = %d, want 9", d.Count(2))
	}

	// Scan visits survivors in ascending sequence order.
	var seen []LogicalAddr
	d.Scan(2, func(a LogicalAddr, refs []RecordRef) bool {
		seen = append(seen, a)
		return true
	})
	if len(seen) != 9 {
		t.Fatalf("Scan visited %d, want 9", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Seq() <= seen[i-1].Seq() {
			t.Fatal("Scan out of order")
		}
	}
	for _, a := range seen {
		if a == addrs[4] {
			t.Fatal("Scan visited released address")
		}
	}

	// Early stop.
	n := 0
	d.Scan(2, func(LogicalAddr, []RecordRef) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Scan ignored early stop: %d", n)
	}

	// Scan of unknown type is empty.
	d.Scan(99, func(LogicalAddr, []RecordRef) bool {
		t.Fatal("scan of unknown type visited something")
		return false
	})
}

func TestTypes(t *testing.T) {
	d := NewDirectory()
	d.NewAddr(5)
	d.NewAddr(2)
	a := d.NewAddr(9)
	if _, err := d.Release(a); err != nil {
		t.Fatalf("Release: %v", err)
	}
	got := d.Types()
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("Types = %v, want [2 5]", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := NewDirectory()
	var addrs []LogicalAddr
	for i := 0; i < 20; i++ {
		a := d.NewAddr(TypeID(1 + i%3))
		addrs = append(addrs, a)
		d.Register(a, RecordRef{Struct: 0, Kind: KindPrimary, Where: RID{Page: uint32(i), Slot: uint16(i)}, Valid: true})
		if i%2 == 0 {
			d.Register(a, RecordRef{Struct: 5, Kind: KindCluster, Where: RID{Page: 100 + uint32(i)}, Valid: i%4 == 0})
		}
	}
	d.Release(addrs[3])

	snap := d.Snapshot()
	d2, err := LoadSnapshot(snap)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	for i, a := range addrs {
		if i == 3 {
			if d2.Exists(a) {
				t.Fatal("released address resurrected by snapshot")
			}
			continue
		}
		want, _ := d.Lookup(a)
		got, err := d2.Lookup(a)
		if err != nil {
			t.Fatalf("Lookup %v: %v", a, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d refs, want %d", a, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%v ref %d = %+v, want %+v", a, j, got[j], want[j])
			}
		}
	}
	// Sequence counters continue after the snapshot (no address reuse).
	n := d2.NewAddr(1)
	if d.Exists(n) {
		t.Fatal("restored directory reused a live sequence number")
	}

	// Corrupted snapshots are rejected.
	if _, err := LoadSnapshot(snap[:len(snap)/2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := LoadSnapshot([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

// Property: the directory behaves like a map of addr -> ref-set under random
// register/unregister/release sequences, and snapshots preserve it exactly.
func TestDirectoryQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDirectory()
		model := map[LogicalAddr]map[StructID]RecordRef{}
		var live []LogicalAddr
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0: // new atom
				a := d.NewAddr(TypeID(rng.Intn(4)))
				model[a] = map[StructID]RecordRef{}
				live = append(live, a)
			case 1: // register
				if len(live) == 0 {
					continue
				}
				a := live[rng.Intn(len(live))]
				s := StructID(rng.Intn(5))
				ref := RecordRef{Struct: s, Kind: StructKind(rng.Intn(4)), Where: RID{Page: rng.Uint32() % 1000, Slot: uint16(rng.Intn(100))}, Valid: rng.Intn(2) == 0}
				err := d.Register(a, ref)
				if _, dup := model[a][s]; dup {
					if !errors.Is(err, ErrDupStruct) {
						return false
					}
				} else if err != nil {
					return false
				} else {
					model[a][s] = ref
				}
			case 2: // unregister
				if len(live) == 0 {
					continue
				}
				a := live[rng.Intn(len(live))]
				s := StructID(rng.Intn(5))
				if err := d.Unregister(a, s); err != nil {
					return false
				}
				delete(model[a], s)
			case 3: // release
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				a := live[i]
				if _, err := d.Release(a); err != nil {
					return false
				}
				delete(model, a)
				live = append(live[:i], live[i+1:]...)
			}
		}
		// Snapshot round-trip then compare against the model.
		d2, err := LoadSnapshot(d.Snapshot())
		if err != nil {
			return false
		}
		for a, refs := range model {
			got, err := d2.Lookup(a)
			if err != nil || len(got) != len(refs) {
				return false
			}
			for _, r := range got {
				if refs[r.Struct] != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
