package access

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/catalog"
)

// nodeSystem builds an in-memory system with a self-referencing node type
// (for Connect/Disconnect coverage) and n atoms.
func nodeSystem(t *testing.T, n int) (*System, []addr.LogicalAddr) {
	t.Helper()
	s, err := Open(Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	at, err := catalog.NewAtomType("node", []catalog.Attribute{
		{Name: "id", Type: catalog.SpecIdent()},
		{Name: "n", Type: catalog.SpecInt()},
		{Name: "label", Type: catalog.SpecString()},
		{Name: "next", Type: catalog.SpecSetOf(catalog.SpecRef("node", "prev"), 0, -1)},
		{Name: "prev", Type: catalog.SpecSetOf(catalog.SpecRef("node", "next"), 0, -1)},
	}, nil)
	if err != nil {
		t.Fatalf("NewAtomType: %v", err)
	}
	if err := s.Schema().AddAtomType(at); err != nil {
		t.Fatalf("AddAtomType: %v", err)
	}
	if err := s.Schema().ResolveAssociations(); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	addrs := make([]addr.LogicalAddr, n)
	for i := range addrs {
		a, err := s.Insert("node", map[string]atom.Value{
			"n":     atom.Int(int64(i)),
			"label": atom.Str("node"),
		})
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		addrs[i] = a
	}
	return s, addrs
}

// TestAtomCacheHitSkipsBuffer proves the architectural point of the cache:
// a warm repeated checkout costs neither a page fix nor a pin.
func TestAtomCacheHitSkipsBuffer(t *testing.T) {
	s, addrs := nodeSystem(t, 32)

	// Warm the cache.
	if _, err := s.GetBatch(addrs, nil); err != nil {
		t.Fatalf("warm GetBatch: %v", err)
	}
	warm := s.AtomCacheStats()
	s.Pool().ResetStats()

	for _, a := range addrs {
		if _, err := s.Get(a, nil); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	if _, err := s.GetBatch(addrs, nil); err != nil {
		t.Fatalf("GetBatch: %v", err)
	}

	ps := s.Pool().Stats()
	if fixes := ps.Hits + ps.Misses; fixes != 0 {
		t.Fatalf("warm reads fixed %d pages, want 0", fixes)
	}
	if pinned := s.Pool().Pinned(); pinned != 0 {
		t.Fatalf("%d pages still pinned after cache-served reads", pinned)
	}
	st := s.AtomCacheStats()
	if got := st.Hits - warm.Hits; got != uint64(2*len(addrs)) {
		t.Fatalf("cache hits = %d, want %d", got, 2*len(addrs))
	}
	if st.Misses != warm.Misses {
		t.Fatalf("warm reads missed the cache: %d -> %d", warm.Misses, st.Misses)
	}
}

// TestAtomCacheProjectedRead checks that projected Gets are served from a
// cached full-width atom and still return the projection contract (NULL for
// unselected attributes).
func TestAtomCacheProjectedRead(t *testing.T) {
	s, addrs := nodeSystem(t, 4)
	if _, err := s.Get(addrs[0], nil); err != nil {
		t.Fatalf("warm Get: %v", err)
	}
	at, err := s.Get(addrs[0], []string{"n"})
	if err != nil {
		t.Fatalf("projected Get: %v", err)
	}
	if v, _ := at.Value("n"); v.I != 0 {
		t.Fatalf("n = %v, want 0", v)
	}
	if v, _ := at.Value("label"); !v.IsNull() {
		t.Fatalf("unselected label = %v, want NULL", v)
	}
}

// TestAtomCacheInvalidation proves every mutation path drops the cached
// decode: Update, Connect, Disconnect (through their partner updates too)
// and Delete.
func TestAtomCacheInvalidation(t *testing.T) {
	s, addrs := nodeSystem(t, 8)
	a, b := addrs[0], addrs[1]

	get := func(x addr.LogicalAddr) *Atom {
		t.Helper()
		at, err := s.Get(x, nil)
		if err != nil {
			t.Fatalf("Get %v: %v", x, err)
		}
		return at
	}

	get(a)
	if err := s.Update(a, map[string]atom.Value{"n": atom.Int(100)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if v, _ := get(a).Value("n"); v.I != 100 {
		t.Fatalf("after Update: n = %v, want 100", v)
	}

	// Connect maintains a's ref attr and b's back-reference; both cached
	// decodes must be refreshed.
	get(a)
	get(b)
	if err := s.Connect(a, "next", b); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if v, _ := get(a).Value("next"); !v.ContainsRef(b) {
		t.Fatalf("after Connect: a.next = %v, want to contain %v", v, b)
	}
	if v, _ := get(b).Value("prev"); !v.ContainsRef(a) {
		t.Fatalf("after Connect: b.prev = %v, want to contain %v", v, a)
	}

	if err := s.Disconnect(a, "next", b); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	if v, _ := get(a).Value("next"); v.ContainsRef(b) {
		t.Fatalf("after Disconnect: a.next still holds %v", b)
	}
	if v, _ := get(b).Value("prev"); v.ContainsRef(a) {
		t.Fatalf("after Disconnect: b.prev still holds %v", a)
	}

	get(a)
	if err := s.Delete(a); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(a, nil); !errors.Is(err, ErrNoAtom) {
		t.Fatalf("Get after Delete = %v, want ErrNoAtom", err)
	}

	if st := s.AtomCacheStats(); st.Invalidations == 0 {
		t.Fatalf("no invalidations counted: %+v", st)
	}
}

// TestAtomCacheDisableAndResize covers the differential knob: disabling
// drops all entries and bypasses the cache, re-enabling starts cold.
func TestAtomCacheDisableAndResize(t *testing.T) {
	s, addrs := nodeSystem(t, 8)
	if _, err := s.GetBatch(addrs, nil); err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	preDisable := s.AtomCacheStats()
	s.SetAtomCacheSize(0)
	if st := s.AtomCacheStats(); st.Budget != 0 || st.Atoms != 0 {
		t.Fatalf("disabled cache reports %+v", st)
	}
	before := s.Pool().Stats()
	if _, err := s.Get(addrs[0], nil); err != nil {
		t.Fatalf("Get with cache disabled: %v", err)
	}
	after := s.Pool().Stats()
	if after.Hits+after.Misses == before.Hits+before.Misses {
		t.Fatalf("disabled cache still served the read without a page fix")
	}
	s.SetAtomCacheSize(64)
	if _, err := s.Get(addrs[0], nil); err != nil {
		t.Fatalf("Get after re-enable: %v", err)
	}
	if st := s.AtomCacheStats(); st.Atoms != 1 || st.Budget != 64 {
		t.Fatalf("re-enabled cache reports %+v, want 1 atom / budget 64", st)
	}
	// Counters live on the System: cumulative across the disable cycle.
	if st := s.AtomCacheStats(); st.Misses < preDisable.Misses || st.Misses == 0 {
		t.Fatalf("counters reset across disable/re-enable: %+v -> %+v", preDisable, st)
	}
}

// TestAtomCacheEviction bounds the cache by its atom budget.
func TestAtomCacheEviction(t *testing.T) {
	s, addrs := nodeSystem(t, 64)
	s.SetAtomCacheSize(16)
	for _, a := range addrs {
		if _, err := s.Get(a, nil); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	st := s.AtomCacheStats()
	if st.Atoms > 16 {
		t.Fatalf("cache holds %d atoms, budget 16", st.Atoms)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions counted over budget: %+v", st)
	}
}

// TestAtomCacheConcurrentInvalidation is the -race suite hammering readers
// against writers: update values only ever grow, so any reader observing a
// value smaller than the writer's last committed one has hit a stale cache
// entry.
func TestAtomCacheConcurrentInvalidation(t *testing.T) {
	s, addrs := nodeSystem(t, 4)
	hot := addrs[:4]

	const rounds = 300
	var committed [4]atomic.Int64
	var wg sync.WaitGroup
	var raceErr atomic.Value

	// Writer: bump n monotonically across the hot set.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := int64(1); v <= rounds; v++ {
			i := int(v) % len(hot)
			if err := s.Update(hot[i], map[string]atom.Value{"n": atom.Int(v)}); err != nil {
				raceErr.Store(err)
				return
			}
			committed[i].Store(v)
		}
	}()

	// Readers: single and batched gets must never travel back in time past
	// a committed update.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			nIdx := 1 // attribute index of n
			for k := 0; k < rounds; k++ {
				i := (k + r) % len(hot)
				floor := committed[i].Load()
				at, err := s.Get(hot[i], nil)
				if err != nil {
					raceErr.Store(err)
					return
				}
				if got := at.Values[nIdx].I; got < floor {
					raceErr.Store(errors.New("stale single read"))
					return
				}
				floors := make([]int64, len(hot))
				for j := range hot {
					floors[j] = committed[j].Load()
				}
				batch, err := s.GetBatch(hot, nil)
				if err != nil {
					raceErr.Store(err)
					return
				}
				for j, at := range batch {
					if got := at.Values[nIdx].I; got < floors[j] {
						raceErr.Store(errors.New("stale batched read"))
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if err := raceErr.Load(); err != nil {
		t.Fatalf("concurrent invalidation: %v", err)
	}

	// Quiesced: every address must read back its final committed value.
	for i, a := range hot {
		at, err := s.Get(a, nil)
		if err != nil {
			t.Fatalf("final Get: %v", err)
		}
		if got, want := at.Values[1].I, committed[i].Load(); got != want {
			t.Fatalf("atom %d: n = %d, want %d", i, got, want)
		}
	}
}

// TestAtomCacheConcurrentConnectDelete exercises reference maintenance and
// deletes under concurrent batched readers (the race detector is the judge;
// readers only require that live atoms resolve consistently).
func TestAtomCacheConcurrentConnectDelete(t *testing.T) {
	s, addrs := nodeSystem(t, 32)
	stable := addrs[:16] // never deleted
	var wg sync.WaitGroup
	var firstErr atomic.Value

	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 100; k++ {
			a, b := stable[k%16], stable[(k+7)%16]
			if a == b {
				continue
			}
			if err := s.Connect(a, "next", b); err != nil {
				firstErr.Store(err)
				return
			}
			if err := s.Disconnect(a, "next", b); err != nil {
				firstErr.Store(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, a := range addrs[16:] {
			if err := s.Delete(a); err != nil {
				firstErr.Store(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				if _, err := s.GetBatch(stable, nil); err != nil {
					firstErr.Store(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatalf("concurrent connect/delete: %v", err)
	}
}
