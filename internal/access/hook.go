package access

import (
	"sync"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/catalog"
	"prima/internal/storage/wal"
)

// Hook observes and gates atom mutations. The transaction layer uses it to
// acquire locks (BeforeWrite) and to build undo logs (Did*). A single hook
// is installed per system; nil disables hooking.
type Hook interface {
	// BeforeWrite is called before any mutation of atom a (insert, update,
	// delete, including the implicit partner updates of back-reference
	// maintenance). Returning an error aborts the operation mid-flight;
	// the caller is expected to roll back via the undo log.
	BeforeWrite(a addr.LogicalAddr) error
	// DidInsert reports a successfully inserted atom.
	DidInsert(a addr.LogicalAddr)
	// DidUpdate reports a successful update with the pre-image.
	DidUpdate(a addr.LogicalAddr, typeName string, old []atom.Value)
	// DidDelete reports a successful delete with the pre-image.
	DidDelete(a addr.LogicalAddr, typeName string, old []atom.Value)
}

// hookHolder guards the installed hook.
type hookHolder struct {
	mu sync.RWMutex
	h  Hook
}

var systemHooks sync.Map // *System -> *hookHolder

func (s *System) holder() *hookHolder {
	v, _ := systemHooks.LoadOrStore(s, &hookHolder{})
	return v.(*hookHolder)
}

// SetHook installs (or clears, with nil) the system's mutation hook.
func (s *System) SetHook(h Hook) {
	hold := s.holder()
	hold.mu.Lock()
	hold.h = h
	hold.mu.Unlock()
}

func (s *System) hookBeforeWrite(a addr.LogicalAddr) error {
	hold := s.holder()
	hold.mu.RLock()
	h := hold.h
	hold.mu.RUnlock()
	if h == nil {
		return nil
	}
	return h.BeforeWrite(a)
}

func (s *System) hookDidInsert(a addr.LogicalAddr) {
	hold := s.holder()
	hold.mu.RLock()
	h := hold.h
	hold.mu.RUnlock()
	if h != nil {
		h.DidInsert(a)
	}
}

func (s *System) hookDidUpdate(a addr.LogicalAddr, typeName string, old []atom.Value) {
	hold := s.holder()
	hold.mu.RLock()
	h := hold.h
	hold.mu.RUnlock()
	if h != nil {
		h.DidUpdate(a, typeName, old)
	}
}

func (s *System) hookDidDelete(a addr.LogicalAddr, typeName string, old []atom.Value) {
	hold := s.holder()
	hold.mu.RLock()
	h := hold.h
	hold.mu.RUnlock()
	if h != nil {
		h.DidDelete(a, typeName, old)
	}
}

// --- raw recovery operations --------------------------------------------------
//
// The transaction layer's undo applies physical inverses without integrity
// side effects: every logical mutation (including implicit partner updates)
// produced its own log entry, so undo handles each atom independently.

// RawOverwrite replaces an atom's values without reference maintenance.
// Recovery-only: misuse breaks association symmetry.
func (s *System) RawOverwrite(a addr.LogicalAddr, values []atom.Value) error {
	t, err := s.typeByID(a.Type())
	if err != nil {
		return err
	}
	// Checkpoint op span: rollback mutations log like any others, so they
	// pin the replay start the same way (no-op during recovery replay).
	defer s.walOpBegin()()
	cur, err := s.Get(a, nil)
	if err != nil {
		return err
	}
	changed := map[int]bool{}
	for i := range values {
		if !cur.Values[i].Equal(values[i]) {
			changed[i] = true
		}
	}
	return s.updateRawUnhooked(t, a, cur.Values, values, changed)
}

// RawDelete removes an atom without disconnecting partners. Recovery-only.
func (s *System) RawDelete(a addr.LogicalAddr) error {
	t, err := s.typeByID(a.Type())
	if err != nil {
		return err
	}
	// Checkpoint op span: see RawOverwrite.
	defer s.walOpBegin()()
	cur, err := s.Get(a, nil)
	if err != nil {
		return err
	}
	defer s.mvBegin(a, cur)()
	defer s.cacheInvalidate(a)
	// Raw operations run during transaction rollback, whose page mutations
	// must be logged like any others (as compensation under the same
	// transaction); during recovery replay walAppend is a no-op.
	if err := s.walAppend(wal.RecDelete, a, t.Name, cur.Values, nil); err != nil {
		return err
	}
	comp := func() { s.walCompensate(wal.RecInsert, a, t.Name, nil, cur.Values) }
	for _, ap := range s.accessPathsOf(t.Name) {
		if err := s.indexDelete(ap, cur.Values, a); err != nil {
			comp()
			return err
		}
	}
	for _, so := range s.sortOrdersOf(t.Name) {
		if err := so.tree.Delete(so.sortKey(cur.Values), a); err != nil {
			comp()
			return err
		}
	}
	for _, cl := range s.clustersInvolving(t.Name) {
		if cl.def.RootType() == t.Name {
			if err := s.dropClusterOccurrence(cl, a); err != nil {
				comp()
				return err
			}
		}
	}
	refs, err := s.dir.Release(a)
	if err != nil {
		comp()
		return err
	}
	for _, ref := range refs {
		switch ref.Kind {
		case addr.KindPrimary:
			prim, err := s.primary(t)
			if err != nil {
				return err
			}
			if err := prim.Delete(ref.Where); err != nil {
				return err
			}
		case addr.KindSortOrder:
			s.mu.RLock()
			so := s.sortOrders[ref.Struct]
			s.mu.RUnlock()
			if so != nil {
				if err := so.container.Delete(ref.Where); err != nil {
					return err
				}
			}
		case addr.KindPartition:
			s.mu.RLock()
			p := s.partitions[ref.Struct]
			s.mu.RUnlock()
			if p != nil {
				if err := p.container.Delete(ref.Where); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// RawResurrect re-creates a previously deleted atom under its old logical
// address with the given pre-image. Recovery-only.
func (s *System) RawResurrect(a addr.LogicalAddr, values []atom.Value) error {
	t, err := s.typeByID(a.Type())
	if err != nil {
		return err
	}
	// Checkpoint op span: see RawOverwrite.
	defer s.walOpBegin()()
	// Snapshot readers from before the resurrection must keep seeing the
	// address as absent: install a tombstone pre-image before reviving.
	defer s.mvBegin(a, nil)()
	if err := s.walAppend(wal.RecInsert, a, t.Name, nil, values); err != nil {
		return err
	}
	comp := func() { s.walCompensate(wal.RecDelete, a, t.Name, values, nil) }
	if err := s.dir.Revive(a); err != nil {
		comp()
		return err
	}
	// The address is being re-used: make sure no decode captured before the
	// delete can be published against the resurrected atom (deferred so
	// failed resurrections are covered too; the bump also drops any negative
	// cache entry recorded while the atom was deleted).
	defer s.cacheInvalidate(a)
	prim, err := s.primary(t)
	if err != nil {
		comp()
		return err
	}
	var rid addr.RID
	if err := withEncodedAtom(values, func(rec []byte) error {
		var err error
		rid, err = prim.Insert(rec)
		return err
	}); err != nil {
		comp()
		return err
	}
	if err := s.dir.Register(a, addr.RecordRef{Kind: addr.KindPrimary, Where: rid, Valid: true}); err != nil {
		comp()
		return err
	}
	for _, ap := range s.accessPathsOf(t.Name) {
		if err := s.indexInsert(ap, values, a); err != nil {
			comp()
			return err
		}
	}
	for _, so := range s.sortOrdersOf(t.Name) {
		if err := s.sortOrderInsert(so, values, a); err != nil {
			comp()
			return err
		}
	}
	for _, p := range s.partitionsOf(t.Name) {
		if err := s.partitionInsert(p, values, a); err != nil {
			comp()
			return err
		}
	}
	for _, cl := range s.clustersInvolving(t.Name) {
		if cl.def.RootType() == t.Name {
			if err := s.buildClusterOccurrence(cl, a); err != nil {
				comp()
				return err
			}
		}
	}
	return nil
}

// updateRawUnhooked is updateRaw without hook invocation (undo must not log
// itself).
func (s *System) updateRawUnhooked(t *catalog.AtomType, a addr.LogicalAddr, old, nv []atom.Value, changed map[int]bool) error {
	return s.updateRawInner(t, a, old, nv, changed, false)
}
