package access

import (
	"testing"

	"prima/internal/storage/device"
)

// A failing checkpoint must be visible to the operator (log truncation has
// stalled) and a later successful one must clear the signal.
func TestCheckpointHealthSurfaced(t *testing.T) {
	var meta *device.FaultDevice
	wrap := func(name string, d device.Device) device.Device {
		if name != "wal.meta" {
			return d
		}
		fd := device.NewFault(d)
		meta = fd
		return fd
	}
	s, err := Open(Config{WAL: true, FileWrap: wrap})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if meta == nil {
		t.Fatal("wal.meta device never opened")
	}
	if err := s.WALCheckpointErr(); err != nil {
		t.Fatalf("healthy system reports checkpoint error: %v", err)
	}

	meta.FailNextSyncs(1)
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint with failing meta sync reported success")
	}
	if s.WALCheckpointErr() == nil {
		t.Fatal("checkpoint failure not recorded in health field")
	}

	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after fault cleared: %v", err)
	}
	if err := s.WALCheckpointErr(); err != nil {
		t.Fatalf("health field not cleared by successful checkpoint: %v", err)
	}
}
