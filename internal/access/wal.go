package access

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"prima/internal/access/addr"
	"prima/internal/access/atom"
	"prima/internal/obs"
	"prima/internal/storage/wal"
)

// This file ties the access system to the write-ahead log: every atom
// mutation appends a logical redo/undo record before the physical record is
// touched, and recovery replays those records through the same state-tested
// Raw* operators the transaction layer uses for in-memory rollback.

// openWAL opens the log, recovers the database from it, and re-checkpoints
// so the recovered state (and the log's new generation) are durable before
// any new commit is acknowledged. Called once from Open, single-threaded.
func (s *System) openWAL() error {
	wl, err := wal.Open(s.files, wal.Options{
		SegmentBlocks:      s.cfg.WALSegmentBlocks,
		GroupCommitMaxWait: s.cfg.GroupCommitMaxWait,
		GroupCommitBatch:   s.cfg.GroupCommitBatch,
		CheckpointBytes:    s.cfg.WALCheckpointBytes,
		AppendNs:           s.reg.Histogram("wal_append_ns"),
		FsyncNs:            s.reg.Histogram("wal_fsync_ns"),
		FlushNs:            s.reg.Histogram("wal_flush_ns"),
	})
	if err != nil {
		return fmt.Errorf("access: open wal: %w", err)
	}
	s.wal = wl
	s.walRecovering = true
	_, rerr := wl.Recover(&walApplier{s: s})
	s.walRecovering = false
	if rerr == nil {
		// The log gate goes in only after replay: pages dirtied by recovery
		// carry records that are already durable (they were just read from the
		// log), and the applier's page writes must not call back into the
		// still-locked log.
		s.pool.SetLogGate(wl)
		rerr = s.Checkpoint()
	}
	if rerr != nil {
		wl.Close()
		s.wal = nil
		return fmt.Errorf("access: recover: %w", rerr)
	}
	s.walStop = make(chan struct{})
	s.walDone = make(chan struct{})
	go s.walCheckpointLoop()
	return nil
}

// writeFileAtomic replaces path via a same-directory temp file and rename,
// so a crash mid-write leaves either the old or the new snapshot — never a
// torn one.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// walTxID asks the installed transaction-id source (the transaction manager)
// which top-level transaction the current mutation belongs to. 0 is the
// autocommit scope: always redone, never rolled back.
func (s *System) walTxID() uint64 {
	if fn := s.txidFn.Load(); fn != nil {
		return (*fn)()
	}
	return 0
}

// SetTxIDSource installs the function that attributes mutations to their
// top-level transaction (the transaction manager's current root id).
func (s *System) SetTxIDSource(fn func() uint64) {
	s.txidFn.Store(&fn)
}

// walOpBegin marks a logged mutation as in flight for checkpointing: until
// the returned release runs, a fuzzy checkpoint will not truncate the log
// past the operation's first record, even though the operation's page writes
// may land after the checkpoint's page flush. Entry points bracket their
// whole mutation (logging through physical application) with it; without a
// log, or during recovery replay, it is a no-op.
func (s *System) walOpBegin() func() {
	w := s.wal
	if w == nil || s.walRecovering {
		return func() {}
	}
	return w.OpBegin()
}

// walAppend logs one atom mutation ahead of its physical application. The
// images are encoded with the atom codec into pooled scratch buffers — the
// log copies them into its write buffer before returning. An error means the
// record could not be logged and the mutation must not proceed.
func (s *System) walAppend(kind wal.Kind, a addr.LogicalAddr, typeName string, undo, redo []atom.Value) error {
	w := s.wal
	if w == nil || s.walRecovering {
		return nil
	}
	rec := wal.Record{Kind: kind, TxID: s.walTxID(), Addr: uint64(a), TypeName: typeName}
	var ub, rb *[]byte
	if undo != nil {
		ub = encScratch.Get().(*[]byte)
		rec.Undo = atom.AppendAtom((*ub)[:0], undo)
	}
	if redo != nil {
		rb = encScratch.Get().(*[]byte)
		rec.Redo = atom.AppendAtom((*rb)[:0], redo)
	}
	if sp := s.walSink.Load(); sp != nil {
		sp.Add(obs.CtrWALBytes, int64(len(rec.Undo)+len(rec.Redo)))
	}
	_, err := w.Append(&rec)
	if ub != nil {
		*ub = rec.Undo[:0]
		encScratch.Put(ub)
	}
	if rb != nil {
		*rb = rec.Redo[:0]
		encScratch.Put(rb)
	}
	if err != nil {
		return fmt.Errorf("access: log %s of %v: %w", kind, a, err)
	}
	return nil
}

// walCompensate appends the logical inverse of an already-logged mutation
// whose physical application failed, so replaying the pair nets out to
// nothing. Best effort: if the log itself is failing, recovery re-runs
// against whatever prefix survived.
func (s *System) walCompensate(kind wal.Kind, a addr.LogicalAddr, typeName string, undo, redo []atom.Value) {
	_ = s.walAppend(kind, a, typeName, undo, redo)
}

// WALCommit durably commits the transaction's log records (group commit).
// Without a log it is a no-op — the in-memory commit already happened.
func (s *System) WALCommit(txid uint64) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Commit(txid)
}

// WALAbort marks the transaction rolled back in the log. The mark is not
// forced: losing it just makes the transaction a recovery loser, which rolls
// back to the very same state.
func (s *System) WALAbort(txid uint64) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.AppendAbort(txid)
}

// WALStats returns the log counters; ok is false when no log is configured.
func (s *System) WALStats() (wal.Stats, bool) {
	if s.wal == nil {
		return wal.Stats{}, false
	}
	return s.wal.Stats(), true
}

// DDLDurable checkpoints after a schema change. The catalog only persists in
// checkpoint snapshots, and replaying a log record that names a type the
// loaded schema lacks would fail — so DDL forces its own checkpoint.
func (s *System) DDLDurable() error {
	if s.wal == nil {
		return nil
	}
	return s.Checkpoint()
}

// walCheckpointRetry is the delay before a failed growth checkpoint is
// retried. Without the retry a persistently failing checkpoint would be
// invisible until the next growth nudge — or forever, if appends stop.
const walCheckpointRetry = time.Second

// walCheckpointLoop runs checkpoints whenever the log's growth nudge fires,
// bounding replay work and recycling log segments. A failing checkpoint is
// recorded in the system's checkpoint-health field (see WALCheckpointErr)
// and retried with a delay until it succeeds or the system closes: nothing
// on the commit path ever checkpoints, so the loop itself must not let the
// log grow without bound in silence.
func (s *System) walCheckpointLoop() {
	defer close(s.walDone)
	for {
		select {
		case <-s.walStop:
			return
		case <-s.wal.Nudge():
		}
		for s.Checkpoint() != nil {
			select {
			case <-s.walStop:
				return
			case <-time.After(walCheckpointRetry):
			}
		}
	}
}

// WALCheckpointErr reports the error of the most recent checkpoint attempt,
// or nil when the last checkpoint succeeded (or none ran yet). A non-nil
// value means the log's replay prefix is not being truncated: recovery time
// and disk use grow until the cause is cleared.
func (s *System) WALCheckpointErr() error {
	if e := s.walCkptErr.Load(); e != nil {
		return *e
	}
	return nil
}

// --- recovery applier --------------------------------------------------------

// walApplier adapts the access system's recovery operators to wal.Recover.
// Both directions are idempotent and state-tested: they inspect the directory
// before acting, and degrade to drop-and-recreate when the base state a fuzzy
// checkpoint left behind disagrees with the directory snapshot (a crash
// between the per-device syncs of one checkpoint legitimately mixes state
// from two checkpoints; repeating history converges it).
type walApplier struct {
	s *System
}

// Redo repeats history: the record's post-state is enforced regardless of
// what the base state already shows.
func (ap *walApplier) Redo(r *wal.Record) error {
	s := ap.s
	a := addr.LogicalAddr(r.Addr)
	if _, err := s.typeByID(a.Type()); err != nil {
		// DDL forces a checkpoint, so every replayed record's type is in the
		// loaded schema; a miss is real corruption.
		return fmt.Errorf("%w (%s)", err, r.TypeName)
	}
	switch r.Kind {
	case wal.RecInsert, wal.RecUpdate:
		vals, err := atom.DecodeAtom(r.Redo)
		if err != nil {
			return err
		}
		return s.applyImage(a, vals)
	case wal.RecDelete:
		return s.applyDelete(a)
	}
	return nil
}

// Undo rolls a loser record back to its pre-state.
func (ap *walApplier) Undo(r *wal.Record) error {
	s := ap.s
	a := addr.LogicalAddr(r.Addr)
	switch r.Kind {
	case wal.RecInsert:
		return s.applyDelete(a)
	case wal.RecUpdate, wal.RecDelete:
		vals, err := atom.DecodeAtom(r.Undo)
		if err != nil {
			return err
		}
		return s.applyImage(a, vals)
	}
	return nil
}

// applyImage makes atom a exist with exactly vals. When the directory claims
// the atom exists but its physical record is stale or unreadable, the entry
// is dropped and the atom re-created from the log image.
func (s *System) applyImage(a addr.LogicalAddr, vals []atom.Value) error {
	if s.dir.Exists(a) {
		if err := s.RawOverwrite(a, vals); err == nil {
			return nil
		}
		if refs, err := s.dir.Release(a); err == nil {
			s.reclaimRefs(a, refs)
		}
		s.cacheInvalidate(a)
	}
	return s.RawResurrect(a, vals)
}

// applyDelete makes atom a not exist.
func (s *System) applyDelete(a addr.LogicalAddr) error {
	if !s.dir.Exists(a) {
		return nil
	}
	if err := s.RawDelete(a); err != nil {
		// Stale base state: drop the directory entry, reclaim what can be
		// reclaimed and move on — the log, not the heap, is authoritative.
		if refs, rerr := s.dir.Release(a); rerr == nil {
			s.reclaimRefs(a, refs)
			s.cacheInvalidate(a)
			return nil
		}
		if !s.dir.Exists(a) {
			return nil
		}
		return err
	}
	return nil
}

// reclaimRefs best-effort frees the physical records of a released directory
// entry whose normal teardown failed against a stale base state.
func (s *System) reclaimRefs(a addr.LogicalAddr, refs []addr.RecordRef) {
	t, err := s.typeByID(a.Type())
	if err != nil {
		return
	}
	for _, ref := range refs {
		if ref.Kind != addr.KindPrimary {
			continue
		}
		if prim, err := s.primary(t); err == nil {
			_ = prim.Delete(ref.Where)
		}
	}
}
