package segment

import (
	"errors"
	"testing"

	"prima/internal/storage/device"
	"prima/internal/storage/page"
)

func newSeg(t *testing.T, blockSize int, maxPages uint32) *Segment {
	t.Helper()
	dev, err := device.NewMem(blockSize)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	s, err := Create(dev, 1, maxPages)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return s
}

func TestAllocateAndFree(t *testing.T) {
	s := newSeg(t, device.B1K, 256)
	reserved := s.Allocated() // bitmap pages
	if reserved < 1 {
		t.Fatalf("no reserved bitmap pages")
	}

	p1, err := s.AllocatePage()
	if err != nil {
		t.Fatalf("AllocatePage: %v", err)
	}
	p2, err := s.AllocatePage()
	if err != nil {
		t.Fatalf("AllocatePage: %v", err)
	}
	if p1 == p2 {
		t.Fatal("allocated the same page twice")
	}
	if !s.IsAllocated(p1) || !s.IsAllocated(p2) {
		t.Fatal("allocated pages not marked")
	}
	if s.Allocated() != reserved+2 {
		t.Fatalf("Allocated = %d, want %d", s.Allocated(), reserved+2)
	}

	if err := s.FreePage(p1); err != nil {
		t.Fatalf("FreePage: %v", err)
	}
	if s.IsAllocated(p1) {
		t.Fatal("freed page still marked")
	}
	if err := s.FreePage(p1); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("double free = %v, want ErrNotAllocated", err)
	}
	// Freed page is reused.
	p3, err := s.AllocatePage()
	if err != nil {
		t.Fatalf("AllocatePage: %v", err)
	}
	if p3 != p1 {
		t.Fatalf("AllocatePage = %d, want reuse of %d", p3, p1)
	}
}

func TestAllocateRun(t *testing.T) {
	s := newSeg(t, device.B512, 128)
	first, err := s.AllocateRun(8)
	if err != nil {
		t.Fatalf("AllocateRun: %v", err)
	}
	for i := uint32(0); i < 8; i++ {
		if !s.IsAllocated(first + i) {
			t.Fatalf("run page %d not allocated", first+i)
		}
	}
	// Fragment: free pages 2..3 of the run, then ask for a run of 4 — must
	// not fit into the 2-page hole.
	if err := s.FreeRun(first+2, 2); err != nil {
		t.Fatalf("FreeRun: %v", err)
	}
	second, err := s.AllocateRun(4)
	if err != nil {
		t.Fatalf("AllocateRun: %v", err)
	}
	if second >= first && second < first+8 {
		t.Fatalf("run of 4 placed at %d inside fragmented region [%d,%d)", second, first, first+8)
	}
	// A run of 2 fits exactly into the hole.
	hole, err := s.AllocateRun(2)
	if err != nil {
		t.Fatalf("AllocateRun: %v", err)
	}
	if hole != first+2 {
		t.Fatalf("run of 2 at %d, want hole at %d", hole, first+2)
	}
}

func TestSegmentFull(t *testing.T) {
	s := newSeg(t, device.B512, 16)
	for {
		if _, err := s.AllocatePage(); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatalf("AllocatePage = %v, want ErrFull", err)
			}
			break
		}
	}
	if s.Allocated() != 16 {
		t.Fatalf("Allocated = %d, want 16", s.Allocated())
	}
	if _, err := s.AllocateRun(2); !errors.Is(err, ErrFull) {
		t.Fatalf("AllocateRun on full segment = %v, want ErrFull", err)
	}
}

func TestReadWritePage(t *testing.T) {
	s := newSeg(t, device.B1K, 64)
	no, err := s.AllocatePage()
	if err != nil {
		t.Fatalf("AllocatePage: %v", err)
	}
	buf := make([]byte, s.PageSize())
	pg := page.Page(buf)
	pg.Init(page.TypeData, uint32(s.ID()), no)
	if _, err := pg.Insert([]byte("payload")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	pg.SealChecksum()
	if err := s.WritePage(no, buf); err != nil {
		t.Fatalf("WritePage: %v", err)
	}

	got := make([]byte, s.PageSize())
	if err := s.ReadPage(no, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	gp := page.Page(got)
	if err := gp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	rec, err := gp.Read(0)
	if err != nil || string(rec) != "payload" {
		t.Fatalf("Read = %q, %v", rec, err)
	}

	// Unallocated pages are rejected.
	if err := s.ReadPage(no+10, got); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("ReadPage unallocated = %v, want ErrNotAllocated", err)
	}
	if err := s.WritePage(9999, buf); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("WritePage out of range = %v, want ErrNotAllocated", err)
	}
}

func TestRunChainedIO(t *testing.T) {
	s := newSeg(t, device.B512, 64)
	first, err := s.AllocateRun(4)
	if err != nil {
		t.Fatalf("AllocateRun: %v", err)
	}
	buf := make([]byte, 4*s.PageSize())
	for i := 0; i < 4; i++ {
		pg := page.Page(buf[i*s.PageSize() : (i+1)*s.PageSize()])
		pg.Init(page.TypeSeqBody, uint32(s.ID()), first+uint32(i))
		pg.SealChecksum()
	}
	s.Device().ResetStats()
	if err := s.WriteRun(first, 4, buf); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	got := make([]byte, 4*s.PageSize())
	if err := s.ReadRun(first, 4, got); err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	st := s.Device().Stats()
	if st.Seeks != 2 {
		t.Fatalf("chained run I/O used %d seeks, want 2", st.Seeks)
	}
	if st.BlocksRead != 4 || st.BlocksWritten != 4 {
		t.Fatalf("blocks = %d/%d, want 4/4", st.BlocksRead, st.BlocksWritten)
	}
}

func TestOpenPersistedSegment(t *testing.T) {
	dev, err := device.NewMem(device.B1K)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	s, err := Create(dev, 5, 128)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	var pages []uint32
	for i := 0; i < 5; i++ {
		no, err := s.AllocatePage()
		if err != nil {
			t.Fatalf("AllocatePage: %v", err)
		}
		pages = append(pages, no)
	}
	if err := s.FreePage(pages[2]); err != nil {
		t.Fatalf("FreePage: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dev, 5)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s2.MaxPages() != 128 {
		t.Fatalf("MaxPages = %d, want 128", s2.MaxPages())
	}
	if s2.Allocated() != s.Allocated() {
		t.Fatalf("Allocated = %d, want %d", s2.Allocated(), s.Allocated())
	}
	for i, no := range pages {
		want := i != 2
		if s2.IsAllocated(no) != want {
			t.Fatalf("page %d allocation = %v, want %v", no, s2.IsAllocated(no), want)
		}
	}
}

func TestLargeBitmapSpansPages(t *testing.T) {
	// 512-byte pages: body = 512-36 = 476 bytes; a 100000-page bitmap needs
	// 12500 bytes -> multiple bitmap pages.
	s := newSeg(t, device.B512, 100000)
	if s.Allocated() < 20 {
		t.Fatalf("expected multi-page bitmap, got %d reserved pages", s.Allocated())
	}
	no, err := s.AllocatePage()
	if err != nil {
		t.Fatalf("AllocatePage: %v", err)
	}
	if no < 20 {
		t.Fatalf("data page %d allocated inside bitmap area", no)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(s.Device(), s.ID())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !s2.IsAllocated(no) {
		t.Fatal("allocation lost across multi-page bitmap persistence")
	}
}
