// Package segment implements the storage system's containers: "segments
// divided into pages of equal size" (§3.3). Every segment lives on one file
// of the (simulated) file manager; its page size is one of the five block
// sizes, so mapping between pages and blocks is the identity.
//
// The first pages of a segment hold an allocation bitmap. Besides single-page
// allocation, segments support allocation of contiguous page runs, which the
// page-sequence layer uses so that whole sequences can be transferred by
// chained I/O.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"prima/internal/storage/device"
	"prima/internal/storage/page"
)

// ID identifies a segment within a database.
type ID uint32

// PageID names a page globally: segment plus page number.
type PageID struct {
	Seg ID
	No  uint32
}

func (p PageID) String() string { return fmt.Sprintf("%d:%d", p.Seg, p.No) }

// Errors returned by segment operations.
var (
	ErrFull         = errors.New("segment: no free pages")
	ErrNotAllocated = errors.New("segment: page not allocated")
	ErrBadFormat    = errors.New("segment: bad header format")
)

const (
	headerMagic = 0x5347 // "SG"
	// header layout inside page 0's body:
	//   off 0: magic    uint16
	//   off 2: reserved uint16
	//   off 4: maxPages uint32
	//   off 8: bitmap bytes (continuing in the bodies of subsequent
	//          bitmap pages)
	hdrBytes = 8
)

// Segment manages a device as an array of equally sized pages with an
// allocation bitmap. It is safe for concurrent use.
type Segment struct {
	id       ID
	pageSize int
	maxPages uint32
	mapPages uint32 // pages reserved for header + bitmap
	dev      device.Device

	mu        sync.Mutex
	bitmap    []byte
	allocated int
	dirtyMap  bool
}

// bitmapPages computes how many pages are needed to hold the header plus a
// bitmap of maxPages bits with the given page size.
func bitmapPages(maxPages uint32, pageSize int) uint32 {
	body := pageSize - page.HeaderSize
	need := int(maxPages+7)/8 + hdrBytes
	n := (need + body - 1) / body
	if n < 1 {
		n = 1
	}
	return uint32(n)
}

// Create formats a new segment on dev. maxPages bounds the segment size
// (the bitmap is sized for it); pass 0 for a default of 65536 pages.
func Create(dev device.Device, id ID, maxPages uint32) (*Segment, error) {
	if maxPages == 0 {
		maxPages = 65536
	}
	ps := dev.BlockSize()
	mp := bitmapPages(maxPages, ps)
	if mp >= maxPages {
		return nil, fmt.Errorf("segment: maxPages %d too small for its own bitmap (%d pages)", maxPages, mp)
	}
	s := &Segment{
		id:       id,
		pageSize: ps,
		maxPages: maxPages,
		mapPages: mp,
		dev:      dev,
		bitmap:   make([]byte, (maxPages+7)/8),
	}
	if _, err := dev.Extend(int(mp)); err != nil {
		return nil, fmt.Errorf("segment %d: reserve bitmap pages: %w", id, err)
	}
	for i := uint32(0); i < mp; i++ {
		s.setBit(i, true)
	}
	s.allocated = int(mp)
	s.dirtyMap = true
	if err := s.flushBitmapLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads an existing segment from dev.
func Open(dev device.Device, id ID) (*Segment, error) {
	ps := dev.BlockSize()
	if dev.Blocks() == 0 {
		return nil, fmt.Errorf("segment %d: %w: empty device", id, ErrBadFormat)
	}
	buf := make([]byte, ps)
	if err := dev.ReadBlock(0, buf); err != nil {
		return nil, fmt.Errorf("segment %d: read header: %w", id, err)
	}
	pg := page.Page(buf)
	if err := pg.Validate(); err != nil {
		return nil, fmt.Errorf("segment %d: %w", id, err)
	}
	body := pg.Body()
	if binary.BigEndian.Uint16(body) != headerMagic {
		return nil, fmt.Errorf("segment %d: %w: bad magic", id, ErrBadFormat)
	}
	maxPages := binary.BigEndian.Uint32(body[4:])
	s := &Segment{
		id:       id,
		pageSize: ps,
		maxPages: maxPages,
		mapPages: bitmapPages(maxPages, ps),
		dev:      dev,
		bitmap:   make([]byte, (maxPages+7)/8),
	}
	// Read the bitmap spread across the reserved pages.
	off := 0
	for i := uint32(0); i < s.mapPages; i++ {
		if err := dev.ReadBlock(int(i), buf); err != nil {
			return nil, fmt.Errorf("segment %d: read bitmap page %d: %w", id, i, err)
		}
		b := page.Page(buf).Body()
		if i == 0 {
			b = b[hdrBytes:]
		}
		off += copy(s.bitmap[off:], b)
	}
	for i := uint32(0); i < maxPages; i++ {
		if s.getBit(i) {
			s.allocated++
		}
	}
	return s, nil
}

// ID returns the segment id.
func (s *Segment) ID() ID { return s.id }

// PageSize returns the segment's page size in bytes.
func (s *Segment) PageSize() int { return s.pageSize }

// MaxPages returns the segment's capacity in pages.
func (s *Segment) MaxPages() uint32 { return s.maxPages }

// Allocated returns the number of allocated pages, including the pages the
// bitmap itself occupies.
func (s *Segment) Allocated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocated
}

// Device exposes the underlying device (for I/O statistics).
func (s *Segment) Device() device.Device { return s.dev }

func (s *Segment) getBit(i uint32) bool { return s.bitmap[i/8]&(1<<(i%8)) != 0 }

func (s *Segment) setBit(i uint32, v bool) {
	if v {
		s.bitmap[i/8] |= 1 << (i % 8)
	} else {
		s.bitmap[i/8] &^= 1 << (i % 8)
	}
}

// AllocatePage reserves one page and returns its number. The page content is
// undefined until written; use the buffer pool's FixNew to initialize it.
func (s *Segment) AllocatePage() (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocateRunLocked(1)
}

// AllocateRun reserves n contiguous pages and returns the first page number.
// Page sequences use runs so a whole sequence can be moved with one chained
// transfer.
func (s *Segment) AllocateRun(n int) (uint32, error) {
	if n <= 0 {
		return 0, fmt.Errorf("segment %d: bad run length %d", s.id, n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocateRunLocked(n)
}

func (s *Segment) allocateRunLocked(n int) (uint32, error) {
	run := 0
	for i := s.mapPages; i < s.maxPages; i++ {
		if s.getBit(i) {
			run = 0
			continue
		}
		run++
		if run == n {
			first := i - uint32(n) + 1
			// Ensure the device covers the run.
			need := int(first) + n - s.dev.Blocks()
			if need > 0 {
				if _, err := s.dev.Extend(need); err != nil {
					return 0, fmt.Errorf("segment %d: extend: %w", s.id, err)
				}
			}
			for j := first; j <= i; j++ {
				s.setBit(j, true)
			}
			s.allocated += n
			s.dirtyMap = true
			return first, nil
		}
	}
	return 0, fmt.Errorf("%w (run of %d in segment %d)", ErrFull, n, s.id)
}

// FreePage releases a single page.
func (s *Segment) FreePage(no uint32) error { return s.FreeRun(no, 1) }

// FreeRun releases n contiguous pages starting at first.
func (s *Segment) FreeRun(first uint32, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if first < s.mapPages || first+uint32(n) > s.maxPages {
		return fmt.Errorf("segment %d: free run [%d,%d): %w", s.id, first, first+uint32(n), ErrNotAllocated)
	}
	for i := first; i < first+uint32(n); i++ {
		if !s.getBit(i) {
			return fmt.Errorf("segment %d: page %d: %w", s.id, i, ErrNotAllocated)
		}
	}
	for i := first; i < first+uint32(n); i++ {
		s.setBit(i, false)
	}
	s.allocated -= n
	s.dirtyMap = true
	return nil
}

// IsAllocated reports whether page no is allocated.
func (s *Segment) IsAllocated(no uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return no < s.maxPages && s.getBit(no)
}

func (s *Segment) checkPage(no uint32) error {
	s.mu.Lock()
	ok := no < s.maxPages && s.getBit(no)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("segment %d page %d: %w", s.id, no, ErrNotAllocated)
	}
	return nil
}

// ReadPage reads page no into p (len(p) must equal PageSize).
func (s *Segment) ReadPage(no uint32, p []byte) error {
	if err := s.checkPage(no); err != nil {
		return err
	}
	return s.dev.ReadBlock(int(no), p)
}

// WritePage writes p to page no.
func (s *Segment) WritePage(no uint32, p []byte) error {
	if err := s.checkPage(no); err != nil {
		return err
	}
	return s.dev.WriteBlock(int(no), p)
}

// ReadRun reads count consecutive pages starting at first using chained I/O.
func (s *Segment) ReadRun(first uint32, count int, p []byte) error {
	if err := s.checkPage(first); err != nil {
		return err
	}
	if count > 1 {
		if err := s.checkPage(first + uint32(count) - 1); err != nil {
			return err
		}
	}
	return s.dev.ReadChain(int(first), count, p)
}

// WriteRun writes count consecutive pages starting at first using chained I/O.
func (s *Segment) WriteRun(first uint32, count int, p []byte) error {
	if err := s.checkPage(first); err != nil {
		return err
	}
	if count > 1 {
		if err := s.checkPage(first + uint32(count) - 1); err != nil {
			return err
		}
	}
	return s.dev.WriteChain(int(first), count, p)
}

// ForAllocated calls fn for every allocated page (excluding the bitmap
// pages) in ascending order; fn returning false stops the iteration.
func (s *Segment) ForAllocated(fn func(no uint32) bool) {
	s.mu.Lock()
	max := s.maxPages
	first := s.mapPages
	s.mu.Unlock()
	for no := first; no < max; no++ {
		s.mu.Lock()
		alloc := s.getBit(no)
		s.mu.Unlock()
		if alloc && !fn(no) {
			return
		}
	}
}

// flushBitmapLocked writes the header and bitmap pages. Caller holds s.mu.
func (s *Segment) flushBitmapLocked() error {
	if !s.dirtyMap {
		return nil
	}
	buf := make([]byte, s.pageSize)
	off := 0
	for i := uint32(0); i < s.mapPages; i++ {
		pg := page.Page(buf)
		pg.Init(page.TypeSegHeader, uint32(s.id), i)
		b := pg.Body()
		if i == 0 {
			binary.BigEndian.PutUint16(b, headerMagic)
			binary.BigEndian.PutUint32(b[4:], s.maxPages)
			b = b[hdrBytes:]
		}
		off += copy(b, s.bitmap[off:])
		pg.SealChecksum()
		if err := s.dev.WriteBlock(int(i), buf); err != nil {
			return fmt.Errorf("segment %d: flush bitmap page %d: %w", s.id, i, err)
		}
	}
	s.dirtyMap = false
	return nil
}

// Sync persists the allocation bitmap and flushes the device.
func (s *Segment) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushBitmapLocked(); err != nil {
		return err
	}
	return s.dev.Sync()
}

// Close persists metadata. It does not close the device (owned by the file
// manager).
func (s *Segment) Close() error {
	return s.Sync()
}
