package device

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testDeviceBasics(t *testing.T, d Device) {
	t.Helper()
	bs := d.BlockSize()
	if d.Blocks() != 0 {
		t.Fatalf("new device has %d blocks, want 0", d.Blocks())
	}
	first, err := d.Extend(4)
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if first != 0 || d.Blocks() != 4 {
		t.Fatalf("Extend returned first=%d blocks=%d, want 0, 4", first, d.Blocks())
	}

	// New blocks read back zeroed.
	buf := make([]byte, bs)
	if err := d.ReadBlock(2, buf); err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, bs)) {
		t.Fatal("fresh block is not zeroed")
	}

	// Round-trip a pattern.
	pat := make([]byte, bs)
	for i := range pat {
		pat[i] = byte(i * 7)
	}
	if err := d.WriteBlock(3, pat); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	if err := d.ReadBlock(3, buf); err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if !bytes.Equal(buf, pat) {
		t.Fatal("block round-trip mismatch")
	}

	// Chained I/O round-trip.
	chain := make([]byte, 3*bs)
	for i := range chain {
		chain[i] = byte(i)
	}
	if err := d.WriteChain(1, 3, chain); err != nil {
		t.Fatalf("WriteChain: %v", err)
	}
	got := make([]byte, 3*bs)
	if err := d.ReadChain(1, 3, got); err != nil {
		t.Fatalf("ReadChain: %v", err)
	}
	if !bytes.Equal(got, chain) {
		t.Fatal("chain round-trip mismatch")
	}

	// Out-of-range and short-buffer errors.
	if err := d.ReadBlock(99, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ReadBlock(99) = %v, want ErrOutOfRange", err)
	}
	if err := d.ReadBlock(0, buf[:1]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short buffer read = %v, want ErrShortBuffer", err)
	}
	if err := d.WriteChain(3, 2, chain[:2*bs]); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("WriteChain past end = %v, want ErrOutOfRange", err)
	}

	// Accounting: 1 chained read of 3 blocks = 1 seek, 3 blocks.
	d.ResetStats()
	if err := d.ReadChain(0, 3, got); err != nil {
		t.Fatalf("ReadChain: %v", err)
	}
	s := d.Stats()
	if s.ChainReads != 1 || s.BlocksRead != 3 || s.Seeks != 1 {
		t.Fatalf("chain stats = %+v, want 1 chain read, 3 blocks, 1 seek", s)
	}

	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.ReadBlock(0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close = %v, want ErrClosed", err)
	}
}

func TestMemDevice(t *testing.T) {
	d, err := NewMem(B1K)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	testDeviceBasics(t, d)
}

func TestFileDevice(t *testing.T) {
	d, err := OpenFile(filepath.Join(t.TempDir(), "seg.db"), B512)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	testDeviceBasics(t, d)
}

func TestFileDevicePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	d, err := OpenFile(path, B2K)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := d.Extend(2); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	pat := bytes.Repeat([]byte{0xAB}, B2K)
	if err := d.WriteBlock(1, pat); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := OpenFile(path, B2K)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Blocks() != 2 {
		t.Fatalf("reopened device has %d blocks, want 2", d2.Blocks())
	}
	got := make([]byte, B2K)
	if err := d2.ReadBlock(1, got); err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if !bytes.Equal(got, pat) {
		t.Fatal("data did not persist across close/reopen")
	}
}

func TestFileDeviceRejectsBadLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "odd.db")
	d, err := OpenFile(path, B512)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := d.Extend(3); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// 3 * 512 bytes is not a multiple of 1024.
	if _, err := OpenFile(path, B1K); err == nil {
		t.Fatal("OpenFile accepted a file whose length is not a multiple of the block size")
	}
}

func TestValidBlockSize(t *testing.T) {
	for _, s := range BlockSizes {
		if !ValidBlockSize(s) {
			t.Errorf("ValidBlockSize(%d) = false, want true", s)
		}
	}
	for _, s := range []int{0, 1, 256, 1000, 3072, 16384, -512} {
		if ValidBlockSize(s) {
			t.Errorf("ValidBlockSize(%d) = true, want false", s)
		}
	}
	if _, err := NewMem(777); !errors.Is(err, ErrBadBlockSize) {
		t.Fatalf("NewMem(777) = %v, want ErrBadBlockSize", err)
	}
}

// Property: for any sequence of block writes, every block reads back the
// last value written to it (MemDevice behaves like an array of blocks).
func TestMemDeviceQuick(t *testing.T) {
	const nblocks = 16
	f := func(writes []struct {
		Idx  uint8
		Fill byte
	}) bool {
		d, err := NewMem(B512)
		if err != nil {
			return false
		}
		defer d.Close()
		if _, err := d.Extend(nblocks); err != nil {
			return false
		}
		want := make([]byte, nblocks) // last fill byte per block
		buf := make([]byte, B512)
		for _, w := range writes {
			idx := int(w.Idx) % nblocks
			for i := range buf {
				buf[i] = w.Fill
			}
			if err := d.WriteBlock(idx, buf); err != nil {
				return false
			}
			want[idx] = w.Fill
		}
		for i := 0; i < nblocks; i++ {
			if err := d.ReadBlock(i, buf); err != nil {
				return false
			}
			for _, b := range buf {
				if b != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultDevice(t *testing.T) {
	base, err := NewMem(B512)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	d := NewFault(base)
	if _, err := d.Extend(4); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	buf := make([]byte, B512)

	d.FailBlock(2)
	if err := d.ReadBlock(2, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read of failed block = %v, want ErrInjected", err)
	}
	if err := d.ReadChain(0, 4, make([]byte, 4*B512)); !errors.Is(err, ErrInjected) {
		t.Fatalf("chain over failed block = %v, want ErrInjected", err)
	}
	d.HealBlock(2)
	if err := d.ReadBlock(2, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}

	d.FailAfter(1)
	if err := d.WriteBlock(0, buf); err != nil {
		t.Fatalf("first write should succeed: %v", err)
	}
	if err := d.WriteBlock(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write = %v, want ErrInjected", err)
	}
	d.FailAfter(-1)
	if err := d.WriteBlock(0, buf); err != nil {
		t.Fatalf("write after disabling faults: %v", err)
	}
}

func TestManager(t *testing.T) {
	t.Run("memory", func(t *testing.T) { testManager(t, NewManager("")) })
	t.Run("file", func(t *testing.T) { testManager(t, NewManager(t.TempDir())) })
}

func testManager(t *testing.T, m *Manager) {
	t.Helper()
	a, err := m.Open("a.seg", B1K)
	if err != nil {
		t.Fatalf("Open a: %v", err)
	}
	b, err := m.Open("b.seg", B8K)
	if err != nil {
		t.Fatalf("Open b: %v", err)
	}
	if a == b {
		t.Fatal("distinct names returned the same device")
	}
	again, err := m.Open("a.seg", B1K)
	if err != nil {
		t.Fatalf("reopen a: %v", err)
	}
	if again != a {
		t.Fatal("reopening a name must return the same device")
	}
	if _, err := m.Open("a.seg", B2K); err == nil {
		t.Fatal("reopening with a different block size must fail")
	}
	names := m.Names()
	if len(names) != 2 || names[0] != "a.seg" || names[1] != "b.seg" {
		t.Fatalf("Names = %v", names)
	}

	if _, err := a.Extend(1); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if err := a.WriteBlock(0, make([]byte, B1K)); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	if got := m.Stats().Writes; got != 1 {
		t.Fatalf("aggregated writes = %d, want 1", got)
	}
	m.ResetStats()
	if got := m.Stats().Requests(); got != 0 {
		t.Fatalf("requests after reset = %d, want 0", got)
	}

	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := m.Open("c.seg", B1K); !errors.Is(err, ErrClosed) {
		t.Fatalf("Open after close = %v, want ErrClosed", err)
	}
}

// Remove of a name that is not open must still delete the backing file:
// stale files left by a failed removal in a previous process (never reopened,
// so never in the device table) are otherwise leaked forever.
func TestManagerRemoveUnopenedFile(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir)
	d, err := m.Open("stale.seg", B1K)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Extend(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// New incarnation: the file exists on disk but is not open.
	m2 := NewManager(dir)
	if err := m2.Remove("stale.seg"); err != nil {
		t.Fatalf("Remove of unopened name: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "stale.seg")); !os.IsNotExist(err) {
		t.Fatalf("backing file survives Remove (err=%v)", err)
	}
	// Entirely unknown names stay a no-op.
	if err := m2.Remove("never-existed.seg"); err != nil {
		t.Fatalf("Remove of unknown name: %v", err)
	}
}

func TestIOStatsCost(t *testing.T) {
	s := IOStats{Seeks: 2, BlocksRead: 4}
	// 2 seeks * 20ms + 4 blocks * 2ms (8K blocks) = 48ms
	if got := s.Cost(B8K); got.Milliseconds() != 48 {
		t.Fatalf("Cost(8K) = %v, want 48ms", got)
	}
	// Half-K blocks transfer 16x faster: 2*20 + 4*0.125 = 40.5ms
	if got := s.Cost(B512); got.Microseconds() != 40500 {
		t.Fatalf("Cost(512) = %v, want 40.5ms", got)
	}
}
