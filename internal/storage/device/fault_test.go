package device

import (
	"bytes"
	"errors"
	"testing"
)

func newVolatile(t *testing.T, plan *CrashPlan, torn bool) (*FaultDevice, Device) {
	t.Helper()
	base, err := NewMem(B512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Extend(8); err != nil {
		t.Fatal(err)
	}
	fd := NewFault(base)
	fd.SetVolatile(true)
	if plan != nil {
		fd.SetPlan(plan, torn)
	}
	return fd, base
}

func block(fill byte) []byte {
	b := make([]byte, B512)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestVolatileOverlayLostWithoutSync(t *testing.T) {
	fd, base := newVolatile(t, nil, false)
	if err := fd.WriteBlock(0, block('a')); err != nil {
		t.Fatal(err)
	}
	// The fault device serves the overlay...
	got := make([]byte, B512)
	if err := fd.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 'a' {
		t.Fatalf("overlay read = %q", got[0])
	}
	// ...but the underlying device still has the old (zero) content.
	if err := base.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("unsynced write reached the base device: %q", got[0])
	}
	// Sync applies the overlay.
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := base.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 'a' {
		t.Fatalf("synced write missing from base device: %q", got[0])
	}
}

func TestCrashAtSyncLosesOverlay(t *testing.T) {
	plan := NewCrashPlan()
	fd, base := newVolatile(t, plan, false)
	if err := fd.WriteBlock(0, block('a')); err != nil {
		t.Fatal(err)
	}
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fd.WriteBlock(0, block('b')); err != nil {
		t.Fatal(err)
	}
	plan.CrashAtSync(2) // sync 1 happened above; the next one crashes
	if err := fd.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("crashing sync = %v, want ErrInjected", err)
	}
	if !plan.Crashed() {
		t.Fatal("plan not crashed")
	}
	// Everything after the crash fails.
	if err := fd.WriteBlock(1, block('c')); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash write = %v, want ErrInjected", err)
	}
	got := make([]byte, B512)
	if err := fd.ReadBlock(0, got); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash read = %v, want ErrInjected", err)
	}
	// The crash must not have flushed the lost overlay.
	if err := base.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 'a' {
		t.Fatalf("base device shows %q after crash, want pre-crash 'a'", got[0])
	}
}

func TestCrashAtWriteCountsAndKills(t *testing.T) {
	plan := NewCrashPlan()
	fd, base := newVolatile(t, plan, false)
	plan.CrashAtWrite(3, 0)
	if err := fd.WriteBlock(0, block('a')); err != nil {
		t.Fatal(err)
	}
	if err := fd.WriteBlock(1, block('b')); err != nil {
		t.Fatal(err)
	}
	if err := fd.WriteBlock(2, block('c')); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write = %v, want ErrInjected", err)
	}
	w, s := plan.Counts()
	if w != 3 || s != 0 {
		t.Fatalf("counts = %d writes / %d syncs, want 3/0", w, s)
	}
	// The first two writes died with the overlay.
	got := make([]byte, B512)
	for i := 0; i < 3; i++ {
		if err := base.ReadBlock(i, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != 0 {
			t.Fatalf("block %d = %q on base after crash, want zero", i, got[0])
		}
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	plan := NewCrashPlan()
	fd, base := newVolatile(t, plan, true)
	// Pre-crash content in block 1 so the splice has an old tail to keep.
	if err := fd.WriteChain(0, 2, append(block('x'), block('y')...)); err != nil {
		t.Fatal(err)
	}
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash at the next write (each WriteChain call counts as one write
	// operation), persisting one and a half blocks of it.
	plan.CrashAtWrite(2, B512+100)
	p := append(block('n'), block('m')...)
	if err := fd.WriteChain(0, 2, p); !errors.Is(err, ErrInjected) {
		t.Fatalf("crashing write = %v, want ErrInjected", err)
	}
	got := make([]byte, B512)
	if err := base.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block('n')) {
		t.Fatalf("whole prefix block not persisted: %q...", got[0])
	}
	if err := base.ReadBlock(1, got); err != nil {
		t.Fatal(err)
	}
	want := block('y')
	copy(want[:100], block('m')[:100])
	if !bytes.Equal(got, want) {
		t.Fatalf("torn block splice wrong: head %q tail %q", got[0], got[B512-1])
	}
}

func TestTornIneligibleDropsCrashingWrite(t *testing.T) {
	plan := NewCrashPlan()
	fd, base := newVolatile(t, plan, false)
	if err := fd.WriteBlock(0, block('x')); err != nil {
		t.Fatal(err)
	}
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	plan.CrashAtWrite(2, 100)
	if err := fd.WriteBlock(0, block('n')); !errors.Is(err, ErrInjected) {
		t.Fatalf("crashing write = %v, want ErrInjected", err)
	}
	got := make([]byte, B512)
	if err := base.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 'x' {
		t.Fatalf("torn-ineligible device persisted part of the crashing write: %q", got[0])
	}
}

func TestScheduledWriteAndSyncFaults(t *testing.T) {
	base, err := NewMem(B512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Extend(4); err != nil {
		t.Fatal(err)
	}
	fd := NewFault(base)
	fd.FailWriteBlock(2)
	if err := fd.WriteBlock(1, block('a')); err != nil {
		t.Fatal(err)
	}
	if err := fd.WriteBlock(2, block('b')); !errors.Is(err, ErrInjected) {
		t.Fatalf("write of failed block = %v, want ErrInjected", err)
	}
	if err := fd.WriteChain(1, 2, append(block('c'), block('d')...)); !errors.Is(err, ErrInjected) {
		t.Fatalf("chain touching failed block = %v, want ErrInjected", err)
	}
	fd.HealWriteBlock(2)
	if err := fd.WriteBlock(2, block('b')); err != nil {
		t.Fatal(err)
	}
	fd.FailNextSyncs(2)
	if err := fd.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatal("first sync should fail")
	}
	if err := fd.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatal("second sync should fail")
	}
	if err := fd.Sync(); err != nil {
		t.Fatalf("third sync = %v, want nil", err)
	}
}

func TestManagerSetWrapAndRemove(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir)
	var wrapped []string
	m.SetWrap(func(name string, d Device) Device {
		wrapped = append(wrapped, name)
		return NewFault(d)
	})
	d, err := m.Open("a.seg", B512)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*FaultDevice); !ok {
		t.Fatalf("wrap not applied: %T", d)
	}
	if len(wrapped) != 1 || wrapped[0] != "a.seg" {
		t.Fatalf("wrapped = %v", wrapped)
	}
	if _, err := d.Extend(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("a.seg"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("a.seg"); err != nil {
		t.Fatalf("double remove = %v, want nil", err)
	}
	// The name is free again and starts empty.
	d2, err := m.Open("a.seg", B512)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Blocks() != 0 {
		t.Fatalf("recreated device has %d blocks", d2.Blocks())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
