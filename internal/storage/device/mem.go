package device

import (
	"sync"
)

// MemDevice is an in-memory Device. It is the default substrate for tests
// and benchmarks: deterministic, fast, and with the same I/O accounting as
// the file-backed device, so experiments can report seeks and block
// transfers without touching a real disk.
type MemDevice struct {
	statsRecorder
	blockSize int

	mu     sync.RWMutex
	data   []byte // len = blocks*blockSize
	closed bool
}

var _ Device = (*MemDevice)(nil)

// NewMem creates an empty in-memory device with the given block size.
func NewMem(blockSize int) (*MemDevice, error) {
	if !ValidBlockSize(blockSize) {
		return nil, ErrBadBlockSize
	}
	return &MemDevice{blockSize: blockSize}, nil
}

// BlockSize returns the device block size in bytes.
func (d *MemDevice) BlockSize() int { return d.blockSize }

// Blocks returns the number of allocated blocks.
func (d *MemDevice) Blocks() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.data) / d.blockSize
}

// Extend grows the device by n zeroed blocks.
func (d *MemDevice) Extend(n int) (int, error) {
	if n <= 0 {
		return 0, ErrOutOfRange
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	first := len(d.data) / d.blockSize
	d.data = append(d.data, make([]byte, n*d.blockSize)...)
	return first, nil
}

// ReadBlock reads a single block.
func (d *MemDevice) ReadBlock(idx int, p []byte) error {
	return d.read(idx, 1, p, false)
}

// WriteBlock writes a single block.
func (d *MemDevice) WriteBlock(idx int, p []byte) error {
	return d.write(idx, 1, p, false)
}

// ReadChain reads count consecutive blocks with a single seek.
func (d *MemDevice) ReadChain(first, count int, p []byte) error {
	return d.read(first, count, p, true)
}

// WriteChain writes count consecutive blocks with a single seek.
func (d *MemDevice) WriteChain(first, count int, p []byte) error {
	return d.write(first, count, p, true)
}

func (d *MemDevice) read(first, count int, p []byte, chained bool) error {
	if len(p) != count*d.blockSize {
		return ErrShortBuffer
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	if err := checkRange(first, count, len(d.data)/d.blockSize); err != nil {
		return err
	}
	copy(p, d.data[first*d.blockSize:(first+count)*d.blockSize])
	d.recordRead(count, chained)
	return nil
}

func (d *MemDevice) write(first, count int, p []byte, chained bool) error {
	if len(p) != count*d.blockSize {
		return ErrShortBuffer
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := checkRange(first, count, len(d.data)/d.blockSize); err != nil {
		return err
	}
	copy(d.data[first*d.blockSize:(first+count)*d.blockSize], p)
	d.recordWrite(count, chained)
	return nil
}

// Sync is a no-op for the in-memory device.
func (d *MemDevice) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	return nil
}

// Close releases the device's storage.
func (d *MemDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.closed = true
	d.data = nil
	return nil
}
