package device

import (
	"fmt"
	"os"
	"sync"
)

// FileDevice is a Device backed by an operating system file. Block idx lives
// at byte offset idx*BlockSize. The file length is always a whole number of
// blocks.
type FileDevice struct {
	statsRecorder
	blockSize int
	path      string

	mu     sync.Mutex
	f      *os.File
	blocks int
	closed bool
}

var _ Device = (*FileDevice)(nil)

// OpenFile opens (or creates) a file-backed device at path. If the file
// already exists its length must be a multiple of blockSize.
func OpenFile(path string, blockSize int) (*FileDevice, error) {
	if !ValidBlockSize(blockSize) {
		return nil, ErrBadBlockSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("device: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("device: stat %s: %w", path, err)
	}
	if fi.Size()%int64(blockSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("device: %s length %d is not a multiple of block size %d", path, fi.Size(), blockSize)
	}
	return &FileDevice{
		blockSize: blockSize,
		path:      path,
		f:         f,
		blocks:    int(fi.Size() / int64(blockSize)),
	}, nil
}

// Path returns the underlying file path.
func (d *FileDevice) Path() string { return d.path }

// BlockSize returns the device block size in bytes.
func (d *FileDevice) BlockSize() int { return d.blockSize }

// Blocks returns the number of allocated blocks.
func (d *FileDevice) Blocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.blocks
}

// Extend grows the file by n zeroed blocks.
func (d *FileDevice) Extend(n int) (int, error) {
	if n <= 0 {
		return 0, ErrOutOfRange
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	first := d.blocks
	if err := d.f.Truncate(int64(d.blocks+n) * int64(d.blockSize)); err != nil {
		return 0, fmt.Errorf("device: extend %s: %w", d.path, err)
	}
	d.blocks += n
	return first, nil
}

// ReadBlock reads a single block.
func (d *FileDevice) ReadBlock(idx int, p []byte) error {
	return d.read(idx, 1, p, false)
}

// WriteBlock writes a single block.
func (d *FileDevice) WriteBlock(idx int, p []byte) error {
	return d.write(idx, 1, p, false)
}

// ReadChain reads count consecutive blocks with one request.
func (d *FileDevice) ReadChain(first, count int, p []byte) error {
	return d.read(first, count, p, true)
}

// WriteChain writes count consecutive blocks with one request.
func (d *FileDevice) WriteChain(first, count int, p []byte) error {
	return d.write(first, count, p, true)
}

func (d *FileDevice) read(first, count int, p []byte, chained bool) error {
	if len(p) != count*d.blockSize {
		return ErrShortBuffer
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := checkRange(first, count, d.blocks); err != nil {
		return err
	}
	if _, err := d.f.ReadAt(p, int64(first)*int64(d.blockSize)); err != nil {
		return fmt.Errorf("device: read %s block %d: %w", d.path, first, err)
	}
	d.recordRead(count, chained)
	return nil
}

func (d *FileDevice) write(first, count int, p []byte, chained bool) error {
	if len(p) != count*d.blockSize {
		return ErrShortBuffer
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := checkRange(first, count, d.blocks); err != nil {
		return err
	}
	if _, err := d.f.WriteAt(p, int64(first)*int64(d.blockSize)); err != nil {
		return fmt.Errorf("device: write %s block %d: %w", d.path, first, err)
	}
	d.recordWrite(count, chained)
	return nil
}

// Sync flushes the file to stable storage.
func (d *FileDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Sync()
}

// Close syncs and closes the underlying file.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.closed = true
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return fmt.Errorf("device: sync %s: %w", d.path, err)
	}
	return d.f.Close()
}
