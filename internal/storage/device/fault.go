package device

import (
	"errors"
	"sync"
)

// ErrInjected is the error surfaced by a FaultDevice when a scheduled fault
// fires. Callers can match it with errors.Is.
var ErrInjected = errors.New("device: injected fault")

// FaultDevice wraps another Device and fails selected operations. It is used
// by tests to verify that upper layers surface and survive I/O errors.
type FaultDevice struct {
	Device

	mu        sync.Mutex
	failReads map[int]error // block index -> error to return
	failAfter int           // fail every operation once countdown reaches zero; -1 disables
}

// NewFault wraps d with fault injection disabled.
func NewFault(d Device) *FaultDevice {
	return &FaultDevice{Device: d, failReads: make(map[int]error), failAfter: -1}
}

// FailBlock arranges for reads of block idx to return ErrInjected.
func (d *FaultDevice) FailBlock(idx int) {
	d.mu.Lock()
	d.failReads[idx] = ErrInjected
	d.mu.Unlock()
}

// HealBlock removes a scheduled per-block fault.
func (d *FaultDevice) HealBlock(idx int) {
	d.mu.Lock()
	delete(d.failReads, idx)
	d.mu.Unlock()
}

// FailAfter arranges for every read and write to fail after n more
// successful operations. n = 0 fails the next operation. Negative n disables.
func (d *FaultDevice) FailAfter(n int) {
	d.mu.Lock()
	d.failAfter = n
	d.mu.Unlock()
}

func (d *FaultDevice) tick(first, count int, read bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if read {
		for i := first; i < first+count; i++ {
			if err, ok := d.failReads[i]; ok {
				return err
			}
		}
	}
	if d.failAfter >= 0 {
		if d.failAfter == 0 {
			return ErrInjected
		}
		d.failAfter--
	}
	return nil
}

// ReadBlock fails if a fault is scheduled, otherwise delegates.
func (d *FaultDevice) ReadBlock(idx int, p []byte) error {
	if err := d.tick(idx, 1, true); err != nil {
		return err
	}
	return d.Device.ReadBlock(idx, p)
}

// WriteBlock fails if a fault is scheduled, otherwise delegates.
func (d *FaultDevice) WriteBlock(idx int, p []byte) error {
	if err := d.tick(idx, 1, false); err != nil {
		return err
	}
	return d.Device.WriteBlock(idx, p)
}

// ReadChain fails if a fault is scheduled on any block of the chain.
func (d *FaultDevice) ReadChain(first, count int, p []byte) error {
	if err := d.tick(first, count, true); err != nil {
		return err
	}
	return d.Device.ReadChain(first, count, p)
}

// WriteChain fails if a fault is scheduled, otherwise delegates.
func (d *FaultDevice) WriteChain(first, count int, p []byte) error {
	if err := d.tick(first, count, false); err != nil {
		return err
	}
	return d.Device.WriteChain(first, count, p)
}
