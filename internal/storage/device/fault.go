package device

import (
	"errors"
	"sort"
	"sync"
)

// ErrInjected is the error surfaced by a FaultDevice when a scheduled fault
// fires. Callers can match it with errors.Is.
var ErrInjected = errors.New("device: injected fault")

// CrashPlan schedules one simulated machine crash across a set of
// FaultDevices (typically every device of one file manager, installed via
// Manager.SetWrap). It counts write and sync operations globally; when the
// configured operation number is reached the crash "fires": volatile devices
// lose their unsynced writes and every further operation on any device
// sharing the plan fails with ErrInjected, exactly as if the process had
// died. Reopening the underlying files then exercises recovery.
type CrashPlan struct {
	mu         sync.Mutex
	writes     int // write operations observed so far
	syncs      int // sync operations observed so far
	crashWrite int // crash at the Nth write (1-based); 0 disables
	crashSync  int // crash at the Nth sync (1-based); 0 disables
	tornBytes  int // bytes of the crashing write persisted on torn-eligible devices
	crashed    bool
}

// NewCrashPlan returns a plan that never fires until armed with CrashAtSync
// or CrashAtWrite.
func NewCrashPlan() *CrashPlan { return &CrashPlan{} }

// CrashAtSync arms the plan to crash at the n-th sync operation (1-based)
// observed across all devices sharing the plan: that sync persists nothing
// and fails.
func (p *CrashPlan) CrashAtSync(n int) {
	p.mu.Lock()
	p.crashSync = n
	p.mu.Unlock()
}

// CrashAtWrite arms the plan to crash at the n-th write operation (1-based).
// On torn-eligible devices the crashing write persists only its first
// tornBytes bytes — the torn write a real disk can leave mid-sector-run.
func (p *CrashPlan) CrashAtWrite(n, tornBytes int) {
	p.mu.Lock()
	p.crashWrite = n
	p.tornBytes = tornBytes
	p.mu.Unlock()
}

// Counts reports the write and sync operations observed so far. A fault-free
// rehearsal run uses it to learn how many crash points a workload has.
func (p *CrashPlan) Counts() (writes, syncs int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writes, p.syncs
}

// Crashed reports whether the crash has fired.
func (p *CrashPlan) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// tickWrite counts one write operation. It reports whether the plan is
// already dead, whether this write is the crash point, and if so how many
// prefix bytes survive on torn-eligible devices.
func (p *CrashPlan) tickWrite() (dead, crashNow bool, torn int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return true, false, 0
	}
	p.writes++
	if p.crashWrite > 0 && p.writes == p.crashWrite {
		p.crashed = true
		return false, true, p.tornBytes
	}
	return false, false, 0
}

// tickSync counts one sync operation and reports (dead, crashNow).
func (p *CrashPlan) tickSync() (dead, crashNow bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return true, false
	}
	p.syncs++
	if p.crashSync > 0 && p.syncs == p.crashSync {
		p.crashed = true
		return false, true
	}
	return false, false
}

// dead reports whether the plan has crashed (reads and extends check this
// without counting).
func (p *CrashPlan) dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// FaultDevice wraps another Device and fails selected operations. It is used
// by tests to verify that upper layers surface and survive I/O errors, and —
// in volatile mode with a CrashPlan — to simulate machine crashes that lose
// every write since the last sync.
type FaultDevice struct {
	Device

	mu         sync.Mutex
	failReads  map[int]error // block index -> error to return
	failWrites map[int]error // block index -> error to return
	failSyncs  int           // fail the next n syncs; 0 disables
	failAfter  int           // fail every operation once countdown reaches zero; -1 disables

	// volatile mode: writes are buffered in an overlay and only reach the
	// underlying device on Sync — the model of a page cache above a disk.
	volatile bool
	overlay  map[int][]byte

	plan         *CrashPlan
	tornEligible bool
}

// NewFault wraps d with fault injection disabled.
func NewFault(d Device) *FaultDevice {
	return &FaultDevice{Device: d, failReads: make(map[int]error), failWrites: make(map[int]error), failAfter: -1}
}

// FailBlock arranges for reads of block idx to return ErrInjected.
func (d *FaultDevice) FailBlock(idx int) {
	d.mu.Lock()
	d.failReads[idx] = ErrInjected
	d.mu.Unlock()
}

// HealBlock removes a scheduled per-block fault.
func (d *FaultDevice) HealBlock(idx int) {
	d.mu.Lock()
	delete(d.failReads, idx)
	d.mu.Unlock()
}

// FailWriteBlock arranges for writes touching block idx to return
// ErrInjected (the write does not happen).
func (d *FaultDevice) FailWriteBlock(idx int) {
	d.mu.Lock()
	d.failWrites[idx] = ErrInjected
	d.mu.Unlock()
}

// HealWriteBlock removes a scheduled per-block write fault.
func (d *FaultDevice) HealWriteBlock(idx int) {
	d.mu.Lock()
	delete(d.failWrites, idx)
	d.mu.Unlock()
}

// FailNextSyncs arranges for the next n Sync calls to fail with ErrInjected
// without persisting anything.
func (d *FaultDevice) FailNextSyncs(n int) {
	d.mu.Lock()
	d.failSyncs = n
	d.mu.Unlock()
}

// FailAfter arranges for every read and write to fail after n more
// successful operations. n = 0 fails the next operation. Negative n disables.
func (d *FaultDevice) FailAfter(n int) {
	d.mu.Lock()
	d.failAfter = n
	d.mu.Unlock()
}

// SetVolatile switches write buffering on: writes live in an in-memory
// overlay until Sync applies them to the underlying device. A crash (via the
// plan) discards the overlay — the writes since the last sync are lost.
func (d *FaultDevice) SetVolatile(v bool) {
	d.mu.Lock()
	d.volatile = v
	if v && d.overlay == nil {
		d.overlay = make(map[int][]byte)
	}
	d.mu.Unlock()
}

// SetPlan attaches a shared crash plan. tornEligible marks devices whose
// crashing write persists a prefix (append-only logs); all others lose the
// crashing write entirely.
func (d *FaultDevice) SetPlan(p *CrashPlan, tornEligible bool) {
	d.mu.Lock()
	d.plan = p
	d.tornEligible = tornEligible
	d.mu.Unlock()
}

func (d *FaultDevice) tick(first, count int, read bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := d.failWrites
	if read {
		m = d.failReads
	}
	for i := first; i < first+count; i++ {
		if err, ok := m[i]; ok {
			return err
		}
	}
	if d.failAfter >= 0 {
		if d.failAfter == 0 {
			return ErrInjected
		}
		d.failAfter--
	}
	return nil
}

// ReadBlock fails if a fault is scheduled, otherwise delegates (serving
// overlaid blocks in volatile mode).
func (d *FaultDevice) ReadBlock(idx int, p []byte) error {
	if err := d.tick(idx, 1, true); err != nil {
		return err
	}
	d.mu.Lock()
	if d.plan != nil && d.plan.dead() {
		d.mu.Unlock()
		return ErrInjected
	}
	if d.volatile {
		if b, ok := d.overlay[idx]; ok {
			copy(p, b)
			d.mu.Unlock()
			return nil
		}
	}
	d.mu.Unlock()
	return d.Device.ReadBlock(idx, p)
}

// ReadChain fails if a fault is scheduled on any block of the chain.
func (d *FaultDevice) ReadChain(first, count int, p []byte) error {
	if err := d.tick(first, count, true); err != nil {
		return err
	}
	d.mu.Lock()
	if d.plan != nil && d.plan.dead() {
		d.mu.Unlock()
		return ErrInjected
	}
	overlaid := false
	if d.volatile {
		for i := first; i < first+count; i++ {
			if _, ok := d.overlay[i]; ok {
				overlaid = true
				break
			}
		}
	}
	d.mu.Unlock()
	if !overlaid {
		return d.Device.ReadChain(first, count, p)
	}
	bs := d.BlockSize()
	for i := 0; i < count; i++ {
		if err := d.ReadBlock(first+i, p[i*bs:(i+1)*bs]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlock fails if a fault is scheduled; in volatile mode the write is
// buffered until Sync.
func (d *FaultDevice) WriteBlock(idx int, p []byte) error {
	return d.write(idx, 1, p)
}

// WriteChain fails if a fault is scheduled; in volatile mode the write is
// buffered until Sync.
func (d *FaultDevice) WriteChain(first, count int, p []byte) error {
	return d.write(first, count, p)
}

func (d *FaultDevice) write(first, count int, p []byte) error {
	if err := d.tick(first, count, false); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.plan != nil {
		dead, crashNow, torn := d.plan.tickWrite()
		if dead {
			return ErrInjected
		}
		if crashNow {
			if d.tornEligible && torn > 0 && torn < len(p) {
				d.tornWriteLocked(first, count, p, torn)
			}
			return ErrInjected
		}
	}
	if !d.volatile {
		if count == 1 {
			return d.Device.WriteBlock(first, p)
		}
		return d.Device.WriteChain(first, count, p)
	}
	bs := d.BlockSize()
	for i := 0; i < count; i++ {
		b, ok := d.overlay[first+i]
		if !ok {
			b = make([]byte, bs)
			d.overlay[first+i] = b
		}
		copy(b, p[i*bs:(i+1)*bs])
	}
	return nil
}

// tornWriteLocked persists the first torn bytes of a crashing write straight
// to the underlying device, splicing the partial block with its previous
// content — the on-disk picture a crash mid-write leaves behind.
func (d *FaultDevice) tornWriteLocked(first, count int, p []byte, torn int) {
	bs := d.BlockSize()
	whole := torn / bs
	for i := 0; i < whole && i < count; i++ {
		_ = d.Device.WriteBlock(first+i, p[i*bs:(i+1)*bs])
	}
	rem := torn % bs
	if rem > 0 && whole < count {
		blk := make([]byte, bs)
		_ = d.Device.ReadBlock(first+whole, blk) // best effort: keep old tail
		copy(blk[:rem], p[whole*bs:whole*bs+rem])
		_ = d.Device.WriteBlock(first+whole, blk)
	}
}

// Extend delegates: block allocation models file-system metadata, which the
// crash simulation treats as durable (fresh blocks read as zeros either way).
func (d *FaultDevice) Extend(n int) (int, error) {
	d.mu.Lock()
	if d.plan != nil && d.plan.dead() {
		d.mu.Unlock()
		return 0, ErrInjected
	}
	d.mu.Unlock()
	return d.Device.Extend(n)
}

// Sync applies the overlay (in volatile mode) and flushes the underlying
// device. A scheduled sync failure or a crash persists nothing.
func (d *FaultDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncLocked()
}

func (d *FaultDevice) syncLocked() error {
	if d.failSyncs > 0 {
		d.failSyncs--
		return ErrInjected
	}
	if d.plan != nil {
		dead, crashNow := d.plan.tickSync()
		if dead || crashNow {
			return ErrInjected
		}
	}
	if d.volatile && len(d.overlay) > 0 {
		idxs := make([]int, 0, len(d.overlay))
		for i := range d.overlay {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			if err := d.Device.WriteBlock(i, d.overlay[i]); err != nil {
				return err
			}
		}
		d.overlay = make(map[int][]byte)
	}
	return d.Device.Sync()
}

// Close flushes (counting as a sync, which may crash) and closes the
// underlying device. After a crash the unsynced overlay is dropped.
func (d *FaultDevice) Close() error {
	d.mu.Lock()
	crashed := d.plan != nil && d.plan.dead()
	var err error
	if !crashed {
		err = d.syncLocked()
	}
	d.mu.Unlock()
	if cerr := d.Device.Close(); err == nil {
		err = cerr
	}
	return err
}
