// Package device simulates the file manager PRIMA runs on.
//
// The paper builds the storage system on the file manager of the INCAS
// operating system [Ne87], which supports exactly five block sizes (1/2, 1,
// 2, 4 and 8 Kbyte) and a cluster mechanism that transfers a whole chain of
// blocks with one request ("chained I/O"). Neither INCAS nor its hardware is
// available, so this package provides the closest synthetic equivalent: a
// block Device interface with the same five block sizes, explicit chained
// read/write operations, and an I/O accounting model (seeks and block
// transfers) that stands in for device time in experiments.
//
// Two implementations are provided: MemDevice (blocks held in memory, used by
// tests and benchmarks for deterministic, allocation-free I/O accounting) and
// FileDevice (blocks stored in an operating system file).
package device

import (
	"errors"
	"fmt"
)

// Block sizes supported by the file manager, in bytes. The storage system
// may only create segments whose page size is one of these values.
const (
	B512 = 512
	B1K  = 1024
	B2K  = 2048
	B4K  = 4096
	B8K  = 8192
)

// BlockSizes lists the five supported block sizes in ascending order.
var BlockSizes = [5]int{B512, B1K, B2K, B4K, B8K}

// ValidBlockSize reports whether n is one of the five block sizes the file
// manager supports.
func ValidBlockSize(n int) bool {
	for _, s := range BlockSizes {
		if n == s {
			return true
		}
	}
	return false
}

// Errors returned by devices.
var (
	ErrBadBlockSize = errors.New("device: block size must be 512, 1K, 2K, 4K or 8K")
	ErrOutOfRange   = errors.New("device: block index out of range")
	ErrShortBuffer  = errors.New("device: buffer length does not match block size")
	ErrClosed       = errors.New("device: closed")
)

// Device is a fixed-block-size random access store, the unit the simulated
// file manager hands out (one Device per file). All implementations must be
// safe for concurrent use.
type Device interface {
	// BlockSize returns the size in bytes of every block on the device.
	BlockSize() int

	// Blocks returns the current number of allocated blocks.
	Blocks() int

	// Extend grows the device by n zeroed blocks and returns the index of
	// the first new block.
	Extend(n int) (first int, err error)

	// ReadBlock reads block idx into p. len(p) must equal BlockSize.
	// It costs one seek and one block transfer.
	ReadBlock(idx int, p []byte) error

	// WriteBlock writes p to block idx. len(p) must equal BlockSize.
	// It costs one seek and one block transfer.
	WriteBlock(idx int, p []byte) error

	// ReadChain reads count consecutive blocks starting at first into p
	// (len(p) must be count*BlockSize). This is the file manager's cluster
	// mechanism: it costs one seek and count block transfers.
	ReadChain(first, count int, p []byte) error

	// WriteChain writes count consecutive blocks starting at first from p,
	// costing one seek and count block transfers.
	WriteChain(first, count int, p []byte) error

	// Stats returns a snapshot of the accumulated I/O accounting.
	Stats() IOStats

	// ResetStats zeroes the I/O accounting.
	ResetStats()

	// Sync flushes buffered state to stable storage where applicable.
	Sync() error

	// Close releases the device. Further operations return ErrClosed.
	Close() error
}

// checkRange validates a chain [first, first+count) against nblocks.
func checkRange(first, count, nblocks int) error {
	if count <= 0 || first < 0 || first+count > nblocks {
		return fmt.Errorf("%w: blocks [%d,%d) of %d", ErrOutOfRange, first, first+count, nblocks)
	}
	return nil
}
