package device

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Manager plays the role of the operating system file manager: it hands out
// named devices ("files"), each with one of the five supported block sizes.
// A Manager either keeps all devices in memory (dir == "") or maps each name
// to a file in a directory.
type Manager struct {
	dir string

	mu      sync.Mutex
	devices map[string]Device
	wrap    func(name string, d Device) Device
	closed  bool
}

// NewManager creates a file manager. If dir is empty all devices are
// in-memory; otherwise devices persist as files under dir.
func NewManager(dir string) *Manager {
	return &Manager{dir: dir, devices: make(map[string]Device)}
}

// InMemory reports whether the manager hands out memory-backed devices.
func (m *Manager) InMemory() bool { return m.dir == "" }

// SetWrap installs a hook applied to every device created after this call:
// Open returns wrap(name, d) instead of the raw device. Fault-injection
// tests use it to interpose FaultDevices below the whole storage stack.
// Devices already open are not rewrapped.
func (m *Manager) SetWrap(wrap func(name string, d Device) Device) {
	m.mu.Lock()
	m.wrap = wrap
	m.mu.Unlock()
}

// Open returns the device with the given name, creating it if necessary.
// Reopening an existing name returns the same device and requires the same
// block size.
func (m *Manager) Open(name string, blockSize int) (Device, error) {
	if !ValidBlockSize(blockSize) {
		return nil, ErrBadBlockSize
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if d, ok := m.devices[name]; ok {
		if d.BlockSize() != blockSize {
			return nil, fmt.Errorf("device: %q already open with block size %d, requested %d", name, d.BlockSize(), blockSize)
		}
		return d, nil
	}
	var (
		d   Device
		err error
	)
	if m.dir == "" {
		d, err = NewMem(blockSize)
	} else {
		d, err = OpenFile(filepath.Join(m.dir, name), blockSize)
	}
	if err != nil {
		return nil, err
	}
	if m.wrap != nil {
		d = m.wrap(name, d)
	}
	m.devices[name] = d
	return d, nil
}

// Remove closes and deletes the named device (dropping the backing file for
// directory-backed managers). A name that is not open still has its backing
// file deleted, so stale files from a previous process — e.g. a log segment
// whose removal failed before a crash — can be reclaimed. The write-ahead
// log uses it to recycle segments behind the checkpoint.
func (m *Manager) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	d, ok := m.devices[name]
	if !ok {
		if m.dir != "" {
			if err := os.Remove(filepath.Join(m.dir, name)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("device: remove %q: %w", name, err)
			}
		}
		return nil
	}
	delete(m.devices, name)
	if err := d.Close(); err != nil {
		return fmt.Errorf("device: remove %q: %w", name, err)
	}
	if m.dir != "" {
		if err := os.Remove(filepath.Join(m.dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("device: remove %q: %w", name, err)
		}
	}
	return nil
}

// Names returns the names of all open devices in sorted order.
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.devices))
	for n := range m.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats aggregates the I/O statistics of all open devices.
func (m *Manager) Stats() IOStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total IOStats
	for _, d := range m.devices {
		total = total.Add(d.Stats())
	}
	return total
}

// ResetStats zeroes the counters of all open devices.
func (m *Manager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.devices {
		d.ResetStats()
	}
}

// Sync flushes every open device.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, d := range m.devices {
		if err := d.Sync(); err != nil {
			return fmt.Errorf("device: sync %q: %w", name, err)
		}
	}
	return nil
}

// Close closes every open device. The first error is returned but all
// devices are closed regardless.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.closed = true
	var first error
	for name, d := range m.devices {
		if err := d.Close(); err != nil && first == nil {
			first = fmt.Errorf("device: close %q: %w", name, err)
		}
	}
	m.devices = nil
	return first
}
