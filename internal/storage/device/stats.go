package device

import (
	"fmt"
	"sync"
	"time"
)

// Cost model constants. The absolute values are irrelevant to the
// experiments (which compare shapes, not wall-clock); the ratio between seek
// and transfer is what matters. The defaults model a late-1980s disk: a seek
// plus rotational delay near 20ms and a per-8K-block transfer near 2ms. The
// transfer charge scales linearly with block size.
const (
	DefaultSeekCost     = 20 * time.Millisecond
	DefaultTransferCost = 2 * time.Millisecond // per 8K block; smaller blocks cost proportionally less
)

// IOStats records the I/O work a device has performed. Counters separate
// single-block requests from chained requests so experiments can show the
// benefit of the cluster mechanism (chained I/O amortizes the seek).
type IOStats struct {
	Reads         int64 // single-block read requests
	Writes        int64 // single-block write requests
	ChainReads    int64 // chained read requests
	ChainWrites   int64 // chained write requests
	BlocksRead    int64 // total blocks transferred by reads (incl. chains)
	BlocksWritten int64 // total blocks transferred by writes (incl. chains)
	Seeks         int64 // one per request (single or chained)
}

// Requests returns the total number of I/O requests issued.
func (s IOStats) Requests() int64 {
	return s.Reads + s.Writes + s.ChainReads + s.ChainWrites
}

// BlocksTransferred returns the total number of blocks moved.
func (s IOStats) BlocksTransferred() int64 {
	return s.BlocksRead + s.BlocksWritten
}

// Cost converts the counters into simulated device time for a given block
// size using the default cost model.
func (s IOStats) Cost(blockSize int) time.Duration {
	perBlock := time.Duration(int64(DefaultTransferCost) * int64(blockSize) / int64(B8K))
	return time.Duration(s.Seeks)*DefaultSeekCost + time.Duration(s.BlocksTransferred())*perBlock
}

// Add returns the sum of two stat snapshots.
func (s IOStats) Add(o IOStats) IOStats {
	return IOStats{
		Reads:         s.Reads + o.Reads,
		Writes:        s.Writes + o.Writes,
		ChainReads:    s.ChainReads + o.ChainReads,
		ChainWrites:   s.ChainWrites + o.ChainWrites,
		BlocksRead:    s.BlocksRead + o.BlocksRead,
		BlocksWritten: s.BlocksWritten + o.BlocksWritten,
		Seeks:         s.Seeks + o.Seeks,
	}
}

// Sub returns s - o, useful for measuring an interval between snapshots.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{
		Reads:         s.Reads - o.Reads,
		Writes:        s.Writes - o.Writes,
		ChainReads:    s.ChainReads - o.ChainReads,
		ChainWrites:   s.ChainWrites - o.ChainWrites,
		BlocksRead:    s.BlocksRead - o.BlocksRead,
		BlocksWritten: s.BlocksWritten - o.BlocksWritten,
		Seeks:         s.Seeks - o.Seeks,
	}
}

func (s IOStats) String() string {
	return fmt.Sprintf("reads=%d writes=%d chainReads=%d chainWrites=%d blocksIn=%d blocksOut=%d seeks=%d",
		s.Reads, s.Writes, s.ChainReads, s.ChainWrites, s.BlocksRead, s.BlocksWritten, s.Seeks)
}

// statsRecorder is embedded by device implementations to share accounting.
type statsRecorder struct {
	mu    sync.Mutex
	stats IOStats
}

func (r *statsRecorder) recordRead(blocks int, chained bool) {
	r.mu.Lock()
	if chained {
		r.stats.ChainReads++
	} else {
		r.stats.Reads++
	}
	r.stats.Seeks++
	r.stats.BlocksRead += int64(blocks)
	r.mu.Unlock()
}

func (r *statsRecorder) recordWrite(blocks int, chained bool) {
	r.mu.Lock()
	if chained {
		r.stats.ChainWrites++
	} else {
		r.stats.Writes++
	}
	r.stats.Seeks++
	r.stats.BlocksWritten += int64(blocks)
	r.mu.Unlock()
}

// Stats returns a snapshot of the accumulated counters.
func (r *statsRecorder) Stats() IOStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// ResetStats zeroes the counters.
func (r *statsRecorder) ResetStats() {
	r.mu.Lock()
	r.stats = IOStats{}
	r.mu.Unlock()
}
