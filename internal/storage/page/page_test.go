package page

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newPage(size int) Page {
	p := Page(make([]byte, size))
	p.Init(TypeData, 7, 42)
	return p
}

func TestInitAndHeader(t *testing.T) {
	p := newPage(1024)
	if p.Type() != TypeData {
		t.Errorf("Type = %v, want data", p.Type())
	}
	if p.SegID() != 7 || p.PageNo() != 42 {
		t.Errorf("identity = (%d,%d), want (7,42)", p.SegID(), p.PageNo())
	}
	if p.Slots() != 0 || p.Records() != 0 {
		t.Errorf("fresh page has %d slots / %d records", p.Slots(), p.Records())
	}
	p.SetNext(99)
	p.SetLSN(123456789)
	p.SetType(TypeIndex)
	p.SetFlags(3)
	if p.Next() != 99 || p.LSN() != 123456789 || p.Type() != TypeIndex || p.Flags() != 3 {
		t.Error("header field round-trip failed")
	}
}

func TestChecksum(t *testing.T) {
	p := newPage(512)
	if _, err := p.Insert([]byte("hello")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate unsealed page: %v", err)
	}
	p.SealChecksum()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate sealed page: %v", err)
	}
	p[100] ^= 0xFF // corrupt the body
	if err := p.Validate(); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("Validate corrupted page = %v, want ErrBadChecksum", err)
	}
	p[0] = 0 // corrupt the magic
	if err := p.Validate(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Validate bad magic = %v, want ErrBadMagic", err)
	}
}

func TestInsertReadDelete(t *testing.T) {
	p := newPage(512)
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	slots := make([]int, len(recs))
	for i, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		slots[i] = s
	}
	if p.Records() != 3 {
		t.Fatalf("Records = %d, want 3", p.Records())
	}
	for i, s := range slots {
		got, err := p.Read(s)
		if err != nil {
			t.Fatalf("Read slot %d: %v", s, err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("slot %d = %q, want %q", s, got, recs[i])
		}
	}

	if err := p.Delete(slots[1]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if p.Records() != 2 {
		t.Fatalf("Records after delete = %d, want 2", p.Records())
	}
	if _, err := p.Read(slots[1]); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Read deleted slot = %v, want ErrBadSlot", err)
	}
	if err := p.Delete(slots[1]); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("double Delete = %v, want ErrBadSlot", err)
	}
	if _, err := p.Read(-1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Read(-1) = %v, want ErrBadSlot", err)
	}

	// Tombstoned slot is reused by the next insert.
	s, err := p.Insert([]byte("delta"))
	if err != nil {
		t.Fatalf("Insert after delete: %v", err)
	}
	if s != slots[1] {
		t.Fatalf("insert reused slot %d, want tombstone %d", s, slots[1])
	}
}

func TestTrailingTombstoneTrim(t *testing.T) {
	p := newPage(512)
	s0, _ := p.Insert([]byte("a"))
	s1, _ := p.Insert([]byte("b"))
	if err := p.Delete(s1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if p.Slots() != 1 {
		t.Fatalf("Slots after trailing delete = %d, want 1", p.Slots())
	}
	if err := p.Delete(s0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if p.Slots() != 0 {
		t.Fatalf("Slots after deleting all = %d, want 0", p.Slots())
	}
}

func TestUpdate(t *testing.T) {
	p := newPage(512)
	s, err := p.Insert([]byte("short"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// Shrink in place.
	if err := p.Update(s, []byte("sh")); err != nil {
		t.Fatalf("Update shrink: %v", err)
	}
	got, _ := p.Read(s)
	if string(got) != "sh" {
		t.Fatalf("after shrink = %q", got)
	}
	// Grow.
	long := bytes.Repeat([]byte("x"), 100)
	if err := p.Update(s, long); err != nil {
		t.Fatalf("Update grow: %v", err)
	}
	got, _ = p.Read(s)
	if !bytes.Equal(got, long) {
		t.Fatal("grow round-trip failed")
	}
	// Growing beyond the page must fail and preserve the old record.
	huge := bytes.Repeat([]byte("y"), 600)
	if err := p.Update(s, huge); !errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized update = %v, want ErrNoSpace", err)
	}
	got, _ = p.Read(s)
	if !bytes.Equal(got, long) {
		t.Fatal("failed update clobbered the record")
	}
}

func TestInsertUntilFullThenCompact(t *testing.T) {
	p := newPage(512)
	var slots []int
	rec := bytes.Repeat([]byte("z"), 40)
	for {
		s, err := p.Insert(rec)
		if err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("Insert = %v, want ErrNoSpace at exhaustion", err)
			}
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 9 {
		t.Fatalf("only %d 40-byte records fit a 512-byte page", len(slots))
	}
	// Delete every other record, then a larger record must fit via compaction.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	big := bytes.Repeat([]byte("B"), 70)
	if _, err := p.Insert(big); err != nil {
		t.Fatalf("Insert after fragmentation = %v (compaction should make room)", err)
	}
	// Surviving records are intact.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Read(slots[i])
		if err != nil {
			t.Fatalf("Read survivor %d: %v", slots[i], err)
		}
		if !bytes.Equal(got, rec) {
			t.Fatalf("survivor %d corrupted after compaction", slots[i])
		}
	}
}

func TestTooLarge(t *testing.T) {
	p := newPage(512)
	if _, err := p.Insert(make([]byte, 512)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized insert = %v, want ErrTooLarge", err)
	}
	if _, err := p.Insert(make([]byte, p.Capacity())); err != nil {
		t.Fatalf("capacity-sized insert failed: %v", err)
	}
}

func TestForEach(t *testing.T) {
	p := newPage(1024)
	want := map[int]string{}
	for i := 0; i < 5; i++ {
		r := fmt.Sprintf("rec-%d", i)
		s, err := p.Insert([]byte(r))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		want[s] = r
	}
	p.Delete(2)
	delete(want, 2)

	got := map[int]string{}
	p.ForEach(func(slot int, rec []byte) bool {
		got[slot] = string(rec)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d records, want %d", len(got), len(want))
	}
	for s, r := range want {
		if got[s] != r {
			t.Errorf("slot %d = %q, want %q", s, got[s], r)
		}
	}

	// Early stop.
	n := 0
	p.ForEach(func(int, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("ForEach ignored early stop, visited %d", n)
	}
}

// Property: a page behaves like a map[slot][]byte under random
// insert/update/delete sequences, and never corrupts live records.
func TestPageQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newPage(2048)
		model := map[int][]byte{}
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0: // insert
				rec := make([]byte, rng.Intn(64)+1)
				rng.Read(rec)
				s, err := p.Insert(rec)
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				if err != nil {
					return false
				}
				if _, exists := model[s]; exists {
					return false // reused a live slot
				}
				model[s] = append([]byte(nil), rec...)
			case 1: // update
				for s := range model {
					rec := make([]byte, rng.Intn(64)+1)
					rng.Read(rec)
					err := p.Update(s, rec)
					if errors.Is(err, ErrNoSpace) {
						break
					}
					if err != nil {
						return false
					}
					model[s] = append([]byte(nil), rec...)
					break
				}
			case 2: // delete
				for s := range model {
					if err := p.Delete(s); err != nil {
						return false
					}
					delete(model, s)
					break
				}
			}
			// Verify the model after every operation.
			if p.Records() != len(model) {
				return false
			}
			for s, want := range model {
				got, err := p.Read(s)
				if err != nil || !bytes.Equal(got, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPageInsert(b *testing.B) {
	p := newPage(8192)
	rec := bytes.Repeat([]byte("r"), 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := p.Insert(rec)
		if errors.Is(err, ErrNoSpace) {
			b.StopTimer()
			p.Init(TypeData, 7, 42)
			b.StartTimer()
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
		_ = s
	}
}
