// Package page implements the slotted page format used throughout PRIMA's
// storage and access systems.
//
// Pages are fixed-size byte arrays (one of the five file-manager block
// sizes). Every page carries the "usual page header used for identification,
// description, and fault tolerance" (§3.3): a magic number, page type, its
// own address, a chain pointer, an LSN field and a checksum. The body is a
// classic slotted layout: record data grows downward from the header while a
// slot directory grows upward from the page end, so variable-length physical
// records (§3.2: "byte strings of variable length") can be stored, moved and
// compacted without changing their externally visible slot numbers.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Type identifies what a page is used for.
type Type uint8

// Page types.
const (
	TypeFree      Type = iota // unallocated
	TypeSegHeader             // segment header (allocation bitmap)
	TypeData                  // container page holding physical records
	TypeIndex                 // B*-tree node
	TypeSeqHeader             // page-sequence header page
	TypeSeqBody               // page-sequence component page
	TypeMeta                  // catalog / directory snapshots
)

func (t Type) String() string {
	switch t {
	case TypeFree:
		return "free"
	case TypeSegHeader:
		return "segheader"
	case TypeData:
		return "data"
	case TypeIndex:
		return "index"
	case TypeSeqHeader:
		return "seqheader"
	case TypeSeqBody:
		return "seqbody"
	case TypeMeta:
		return "meta"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Header layout (all integers big-endian):
//
//	off  0: magic      uint16  'P','R'
//	off  2: type       uint8
//	off  3: flags      uint8
//	off  4: pageNo     uint32  page number within its segment
//	off  8: segID      uint32  owning segment
//	off 12: slotCount  uint16
//	off 14: freeStart  uint16  first byte of free space
//	off 16: freeEnd    uint16  one past last byte of free space (slots begin here)
//	off 18: next       uint32  chain pointer (free list, overflow, sequences)
//	off 22: lsn        uint64
//	off 30: checksum   uint32  CRC-32C over the page with this field zeroed
//	off 34: reserved   uint16
const (
	HeaderSize = 36

	offMagic     = 0
	offType      = 2
	offFlags     = 3
	offPageNo    = 4
	offSegID     = 8
	offSlotCount = 12
	offFreeStart = 14
	offFreeEnd   = 16
	offNext      = 18
	offLSN       = 22
	offChecksum  = 30
)

const (
	magic = 0x5052 // "PR"

	slotSize = 4 // offset uint16 + length uint16

	// tombstone marks a deleted slot; its number may be reused.
	tombstone = 0xFFFF
)

// Errors returned by page operations.
var (
	ErrNoSpace     = errors.New("page: not enough free space")
	ErrBadSlot     = errors.New("page: invalid slot")
	ErrBadMagic    = errors.New("page: bad magic (not a PRIMA page)")
	ErrBadChecksum = errors.New("page: checksum mismatch")
	ErrTooLarge    = errors.New("page: record larger than page capacity")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Page is a view over a fixed-size block. The zero value is unusable; call
// Init on a buffer first (or read an initialized page from disk).
type Page []byte

// Init formats p as an empty page of the given type and identity.
func (p Page) Init(t Type, segID, pageNo uint32) {
	for i := range p {
		p[i] = 0
	}
	binary.BigEndian.PutUint16(p[offMagic:], magic)
	p[offType] = byte(t)
	binary.BigEndian.PutUint32(p[offPageNo:], pageNo)
	binary.BigEndian.PutUint32(p[offSegID:], segID)
	binary.BigEndian.PutUint16(p[offFreeStart:], HeaderSize)
	binary.BigEndian.PutUint16(p[offFreeEnd:], uint16(len(p)))
}

// Validate checks magic and checksum. It is called when a page enters the
// buffer pool from disk.
func (p Page) Validate() error {
	if len(p) < HeaderSize {
		return ErrBadMagic
	}
	if binary.BigEndian.Uint16(p[offMagic:]) != magic {
		return ErrBadMagic
	}
	stored := binary.BigEndian.Uint32(p[offChecksum:])
	if stored != 0 && stored != p.computeChecksum() {
		return ErrBadChecksum
	}
	return nil
}

// SealChecksum computes and stores the page checksum. The buffer manager
// calls it immediately before a page is written to its device.
func (p Page) SealChecksum() {
	binary.BigEndian.PutUint32(p[offChecksum:], 0)
	binary.BigEndian.PutUint32(p[offChecksum:], p.computeChecksum())
}

func (p Page) computeChecksum() uint32 {
	var zero [4]byte
	h := crc32.New(castagnoli)
	h.Write(p[:offChecksum])
	h.Write(zero[:])
	h.Write(p[offChecksum+4:])
	sum := h.Sum32()
	if sum == 0 {
		sum = 1 // reserve 0 for "not sealed"
	}
	return sum
}

// Type returns the page type.
func (p Page) Type() Type { return Type(p[offType]) }

// SetType changes the page type.
func (p Page) SetType(t Type) { p[offType] = byte(t) }

// PageNo returns the page's number within its segment.
func (p Page) PageNo() uint32 { return binary.BigEndian.Uint32(p[offPageNo:]) }

// SegID returns the owning segment's id.
func (p Page) SegID() uint32 { return binary.BigEndian.Uint32(p[offSegID:]) }

// Next returns the chain pointer.
func (p Page) Next() uint32 { return binary.BigEndian.Uint32(p[offNext:]) }

// SetNext stores the chain pointer.
func (p Page) SetNext(n uint32) { binary.BigEndian.PutUint32(p[offNext:], n) }

// LSN returns the page's log sequence number field.
func (p Page) LSN() uint64 { return binary.BigEndian.Uint64(p[offLSN:]) }

// SetLSN stores the page's log sequence number field.
func (p Page) SetLSN(l uint64) { binary.BigEndian.PutUint64(p[offLSN:], l) }

// Flags returns the page flags byte.
func (p Page) Flags() uint8 { return p[offFlags] }

// SetFlags stores the page flags byte.
func (p Page) SetFlags(f uint8) { p[offFlags] = f }

func (p Page) slotCount() int { return int(binary.BigEndian.Uint16(p[offSlotCount:])) }
func (p Page) freeStart() int { return int(binary.BigEndian.Uint16(p[offFreeStart:])) }
func (p Page) freeEnd() int   { return int(binary.BigEndian.Uint16(p[offFreeEnd:])) }
func (p Page) setSlotCount(n int) {
	binary.BigEndian.PutUint16(p[offSlotCount:], uint16(n))
}
func (p Page) setFreeStart(n int) {
	binary.BigEndian.PutUint16(p[offFreeStart:], uint16(n))
}
func (p Page) setFreeEnd(n int) {
	binary.BigEndian.PutUint16(p[offFreeEnd:], uint16(n))
}

// slotPos returns the byte offset of slot i's directory entry.
func (p Page) slotPos(i int) int { return len(p) - (i+1)*slotSize }

func (p Page) slot(i int) (off, length int) {
	pos := p.slotPos(i)
	return int(binary.BigEndian.Uint16(p[pos:])), int(binary.BigEndian.Uint16(p[pos+2:]))
}

func (p Page) setSlot(i, off, length int) {
	pos := p.slotPos(i)
	binary.BigEndian.PutUint16(p[pos:], uint16(off))
	binary.BigEndian.PutUint16(p[pos+2:], uint16(length))
}

// Slots returns the number of slot directory entries, including tombstones.
func (p Page) Slots() int { return p.slotCount() }

// Records returns the number of live (non-tombstone) records.
func (p Page) Records() int {
	n := 0
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off != tombstone {
			n++
		}
	}
	return n
}

// FreeSpace returns the bytes available for a new record, accounting for the
// slot directory entry a fresh insert may need.
func (p Page) FreeSpace() int {
	free := p.freeEnd() - p.freeStart()
	// A new record may reuse a tombstone slot; if none exists it needs a
	// new directory entry.
	if !p.hasTombstone() {
		free -= slotSize
	}
	if free < 0 {
		return 0
	}
	return free
}

// ContiguousFree returns the bytes usable without compaction.
func (p Page) ContiguousFree() int {
	return p.FreeSpace() // freeStart..freeEnd is contiguous by construction; fragmentation lives in dead records
}

func (p Page) hasTombstone() bool {
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off == tombstone {
			return true
		}
	}
	return false
}

// Capacity returns the maximum record size an empty page of this size can
// hold.
func (p Page) Capacity() int { return len(p) - HeaderSize - slotSize }

// Insert stores rec in the page and returns its slot number. It compacts the
// page if the free space is sufficient but fragmented, and returns ErrNoSpace
// if the record cannot fit.
func (p Page) Insert(rec []byte) (int, error) {
	if len(rec) > p.Capacity() {
		return 0, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(rec), p.Capacity())
	}
	slot := -1
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off == tombstone {
			slot = i
			break
		}
	}
	need := len(rec)
	if slot == -1 {
		need += slotSize
	}
	if p.freeEnd()-p.freeStart() < need {
		if p.deadBytes() >= need-(p.freeEnd()-p.freeStart()) {
			p.Compact()
		}
		if p.freeEnd()-p.freeStart() < need {
			return 0, ErrNoSpace
		}
	}
	if slot == -1 {
		slot = p.slotCount()
		p.setSlotCount(slot + 1)
		p.setFreeEnd(p.freeEnd() - slotSize)
		// Re-check: claiming the directory entry shrank free space.
		if p.freeEnd()-p.freeStart() < len(rec) {
			// Roll back the directory growth.
			p.setSlotCount(slot)
			p.setFreeEnd(p.freeEnd() + slotSize)
			return 0, ErrNoSpace
		}
	}
	off := p.freeStart()
	copy(p[off:], rec)
	p.setSlot(slot, off, len(rec))
	p.setFreeStart(off + len(rec))
	return slot, nil
}

// deadBytes returns the bytes held by records that were deleted or moved
// (recoverable by Compact).
func (p Page) deadBytes() int {
	used := 0
	for i := 0; i < p.slotCount(); i++ {
		if off, l := p.slot(i); off != tombstone {
			used += l
			_ = off
		}
	}
	return p.freeStart() - HeaderSize - used
}

// Read returns the record stored in slot. The returned slice aliases the
// page; callers that hold it across page modifications must copy it.
func (p Page) Read(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.slotCount() {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadSlot, slot, p.slotCount())
	}
	off, l := p.slot(slot)
	if off == tombstone {
		return nil, fmt.Errorf("%w: %d deleted", ErrBadSlot, slot)
	}
	return p[off : off+l], nil
}

// Update replaces the record in slot with rec, in place when possible. It
// returns ErrNoSpace when the page cannot hold the new version even after
// compaction; the caller is then responsible for moving the record.
func (p Page) Update(slot int, rec []byte) error {
	if slot < 0 || slot >= p.slotCount() {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, slot, p.slotCount())
	}
	off, l := p.slot(slot)
	if off == tombstone {
		return fmt.Errorf("%w: %d deleted", ErrBadSlot, slot)
	}
	if len(rec) <= l {
		copy(p[off:], rec)
		p.setSlot(slot, off, len(rec))
		return nil
	}
	// Grow: release the old image, then place the new one.
	p.setSlot(slot, tombstone, 0)
	if p.freeEnd()-p.freeStart() < len(rec) {
		if p.deadBytes() >= len(rec)-(p.freeEnd()-p.freeStart()) && len(rec) <= p.Capacity() {
			p.Compact()
		}
		if p.freeEnd()-p.freeStart() < len(rec) {
			// Restore the old image so the caller can relocate it.
			p.setSlot(slot, off, l)
			return ErrNoSpace
		}
	}
	noff := p.freeStart()
	copy(p[noff:], rec)
	p.setSlot(slot, noff, len(rec))
	p.setFreeStart(noff + len(rec))
	return nil
}

// Delete removes the record in slot, leaving a reusable tombstone entry.
func (p Page) Delete(slot int) error {
	if slot < 0 || slot >= p.slotCount() {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, slot, p.slotCount())
	}
	if off, _ := p.slot(slot); off == tombstone {
		return fmt.Errorf("%w: %d already deleted", ErrBadSlot, slot)
	}
	p.setSlot(slot, tombstone, 0)
	// Trim trailing tombstones so the directory can shrink.
	n := p.slotCount()
	for n > 0 {
		if off, _ := p.slot(n - 1); off != tombstone {
			break
		}
		n--
	}
	if n != p.slotCount() {
		p.setFreeEnd(p.freeEnd() + (p.slotCount()-n)*slotSize)
		p.setSlotCount(n)
	}
	return nil
}

// Compact squeezes out dead bytes by sliding live records toward the header.
// Slot numbers are preserved.
func (p Page) Compact() {
	type ent struct{ slot, off, len int }
	live := make([]ent, 0, p.slotCount())
	for i := 0; i < p.slotCount(); i++ {
		if off, l := p.slot(i); off != tombstone {
			live = append(live, ent{i, off, l})
		}
	}
	// Records must be moved in ascending offset order to avoid overwrites.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j].off < live[j-1].off; j-- {
			live[j], live[j-1] = live[j-1], live[j]
		}
	}
	w := HeaderSize
	for _, e := range live {
		if e.off != w {
			copy(p[w:], p[e.off:e.off+e.len])
		}
		p.setSlot(e.slot, w, e.len)
		w += e.len
	}
	p.setFreeStart(w)
}

// ForEach calls fn for every live record in slot order. If fn returns false
// iteration stops.
func (p Page) ForEach(fn func(slot int, rec []byte) bool) {
	for i := 0; i < p.slotCount(); i++ {
		off, l := p.slot(i)
		if off == tombstone {
			continue
		}
		if !fn(i, p[off:off+l]) {
			return
		}
	}
}

// Body returns the page payload area (everything after the header) for page
// types that manage their own layout (segment headers, sequence headers,
// index nodes).
func (p Page) Body() []byte { return p[HeaderSize:] }
