// Package pageseq implements page sequences, the storage system's container
// for objects that exceed any single page (§3.3): atom clusters and long
// fields "like texts and images".
//
// A page sequence treats an arbitrary number of pages as a whole. One page is
// the header page: besides the usual page header it carries the
// page-sequence header, a list of all component pages. The sequence is
// "supported by a cluster mechanism of the underlying file manager enabling
// an optimal transfer of the whole page sequence, e.g. by chained I/O": the
// allocator first tries to place all component pages in one contiguous run,
// and reads/writes use one chained transfer per contiguous run. Relative
// addressing (ReadAt) locates any byte range while touching only the pages
// that cover it — the "auxiliary addressing structure ... achieving faster
// access to single atoms of the atom cluster".
package pageseq

import (
	"encoding/binary"
	"errors"
	"fmt"

	"prima/internal/storage/page"
	"prima/internal/storage/segment"
)

// Errors returned by page sequences.
var (
	ErrBadHeader = errors.New("pageseq: not a page-sequence header")
	ErrRange     = errors.New("pageseq: read beyond sequence length")
)

const (
	seqMagic = 0x5351 // "SQ"
	// header page body layout:
	//   off  0: magic    uint16
	//   off  2: reserved uint16
	//   off  4: count    uint32  total component pages (whole sequence)
	//   off  8: totalLen uint64  payload bytes
	//   off 16: entries  count_in_this_page * uint32
	// If the entry list exceeds one body, it continues in further header
	// pages linked through the page header's Next field (entries only).
	hdrBytes = 16
)

// Sequence is an open page sequence.
type Sequence struct {
	seg      *segment.Segment
	headerNo uint32
	extra    []uint32 // continuation header pages
	pages    []uint32 // component pages in payload order
	total    uint64   // payload length
}

// bodyCap returns the payload capacity of one component page.
func bodyCap(pageSize int) int { return pageSize - page.HeaderSize }

// entriesPerHeader returns how many component entries fit the first header
// page and continuation pages respectively.
func entriesPerHeader(pageSize int) (first, cont int) {
	body := pageSize - page.HeaderSize
	return (body - hdrBytes) / 4, body / 4
}

// Create builds a new page sequence holding payload and returns it. The
// allocator prefers one contiguous run (header page + components) so the
// whole sequence can move with a single chained transfer.
func Create(seg *segment.Segment, payload []byte) (*Sequence, error) {
	ps := seg.PageSize()
	nbody := (len(payload) + bodyCap(ps) - 1) / bodyCap(ps)
	if nbody == 0 {
		nbody = 0 // empty payload: header only
	}
	firstCap, contCap := entriesPerHeader(ps)
	nhdr := 1
	if nbody > firstCap {
		nhdr += (nbody - firstCap + contCap - 1) / contCap
	}

	s := &Sequence{seg: seg, total: uint64(len(payload))}

	// Try a single contiguous run: [header pages..., body pages...].
	if first, err := seg.AllocateRun(nhdr + nbody); err == nil {
		s.headerNo = first
		for i := 1; i < nhdr; i++ {
			s.extra = append(s.extra, first+uint32(i))
		}
		for i := 0; i < nbody; i++ {
			s.pages = append(s.pages, first+uint32(nhdr+i))
		}
	} else {
		// Scattered fallback.
		for i := 0; i < nhdr+nbody; i++ {
			no, err := seg.AllocatePage()
			if err != nil {
				// Roll back what we got.
				if i > 0 {
					_ = seg.FreePage(s.headerNo)
				}
				for _, no := range append(s.extra, s.pages...) {
					_ = seg.FreePage(no)
				}
				return nil, fmt.Errorf("pageseq: allocate: %w", err)
			}
			switch {
			case i == 0:
				s.headerNo = no
			case i < nhdr:
				s.extra = append(s.extra, no)
			default:
				s.pages = append(s.pages, no)
			}
		}
	}
	if err := s.writeAll(payload); err != nil {
		s.freePages()
		return nil, err
	}
	return s, nil
}

// Open loads the page sequence whose header page is headerNo.
func Open(seg *segment.Segment, headerNo uint32) (*Sequence, error) {
	ps := seg.PageSize()
	buf := make([]byte, ps)
	if err := seg.ReadPage(headerNo, buf); err != nil {
		return nil, fmt.Errorf("pageseq: read header %d: %w", headerNo, err)
	}
	pg := page.Page(buf)
	if err := pg.Validate(); err != nil {
		return nil, fmt.Errorf("pageseq: header %d: %w", headerNo, err)
	}
	if pg.Type() != page.TypeSeqHeader {
		return nil, fmt.Errorf("%w: page %d has type %v", ErrBadHeader, headerNo, pg.Type())
	}
	body := pg.Body()
	if binary.BigEndian.Uint16(body) != seqMagic {
		return nil, fmt.Errorf("%w: page %d bad magic", ErrBadHeader, headerNo)
	}
	count := binary.BigEndian.Uint32(body[4:])
	s := &Sequence{
		seg:      seg,
		headerNo: headerNo,
		total:    binary.BigEndian.Uint64(body[8:]),
		pages:    make([]uint32, 0, count),
	}
	firstCap, contCap := entriesPerHeader(ps)
	n := int(count)
	take := firstCap
	if n < take {
		take = n
	}
	for i := 0; i < take; i++ {
		s.pages = append(s.pages, binary.BigEndian.Uint32(body[hdrBytes+4*i:]))
	}
	n -= take
	next := pg.Next()
	for n > 0 {
		if next == 0 {
			return nil, fmt.Errorf("%w: truncated entry list (%d entries missing)", ErrBadHeader, n)
		}
		if err := seg.ReadPage(next, buf); err != nil {
			return nil, fmt.Errorf("pageseq: read continuation %d: %w", next, err)
		}
		cp := page.Page(buf)
		if err := cp.Validate(); err != nil {
			return nil, fmt.Errorf("pageseq: continuation %d: %w", next, err)
		}
		s.extra = append(s.extra, next)
		take = contCap
		if n < take {
			take = n
		}
		cb := cp.Body()
		for i := 0; i < take; i++ {
			s.pages = append(s.pages, binary.BigEndian.Uint32(cb[4*i:]))
		}
		n -= take
		next = cp.Next()
	}
	return s, nil
}

// HeaderPage returns the page number of the sequence's header page, the
// stable identity stored by upper layers.
func (s *Sequence) HeaderPage() uint32 { return s.headerNo }

// Len returns the payload length in bytes.
func (s *Sequence) Len() int { return int(s.total) }

// Pages returns the number of component pages (excluding header pages).
func (s *Sequence) Pages() int { return len(s.pages) }

// Contiguous reports whether all pages (header and components) form one
// run, i.e. the whole sequence moves with a single chained transfer.
func (s *Sequence) Contiguous() bool {
	prev := s.headerNo
	for _, no := range s.extra {
		if no != prev+1 {
			return false
		}
		prev = no
	}
	for _, no := range s.pages {
		if no != prev+1 {
			return false
		}
		prev = no
	}
	return true
}

// runs yields maximal contiguous runs of component pages as (startIdx, len).
func (s *Sequence) runs() [][2]int {
	var out [][2]int
	i := 0
	for i < len(s.pages) {
		j := i + 1
		for j < len(s.pages) && s.pages[j] == s.pages[j-1]+1 {
			j++
		}
		out = append(out, [2]int{i, j - i})
		i = j
	}
	return out
}

// ReadAll returns the whole payload using chained I/O per contiguous run.
func (s *Sequence) ReadAll() ([]byte, error) {
	ps := s.seg.PageSize()
	bc := bodyCap(ps)
	out := make([]byte, s.total)
	raw := make([]byte, 0)
	for _, run := range s.runs() {
		start, n := run[0], run[1]
		if cap(raw) < n*ps {
			raw = make([]byte, n*ps)
		}
		raw = raw[:n*ps]
		if err := s.seg.ReadRun(s.pages[start], n, raw); err != nil {
			return nil, fmt.Errorf("pageseq: read run at %d: %w", s.pages[start], err)
		}
		for i := 0; i < n; i++ {
			pg := page.Page(raw[i*ps : (i+1)*ps])
			if err := pg.Validate(); err != nil {
				return nil, fmt.Errorf("pageseq: component %d: %w", s.pages[start+i], err)
			}
			off := (start + i) * bc
			end := off + bc
			if end > int(s.total) {
				end = int(s.total)
			}
			copy(out[off:end], pg.Body())
		}
	}
	return out, nil
}

// ReadAt implements relative addressing within the sequence: it fills p with
// the payload bytes starting at off, touching only the pages that cover the
// range, and returns the number of bytes read.
func (s *Sequence) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(s.total) {
		return 0, fmt.Errorf("%w: offset %d of %d", ErrRange, off, s.total)
	}
	want := len(p)
	if rem := int(int64(s.total) - off); want > rem {
		want = rem
	}
	if want == 0 {
		return 0, nil
	}
	ps := s.seg.PageSize()
	bc := bodyCap(ps)
	firstPage := int(off) / bc
	lastPage := (int(off) + want - 1) / bc
	buf := make([]byte, ps)
	read := 0
	for i := firstPage; i <= lastPage; i++ {
		if err := s.seg.ReadPage(s.pages[i], buf); err != nil {
			return read, fmt.Errorf("pageseq: read component %d: %w", s.pages[i], err)
		}
		pg := page.Page(buf)
		if err := pg.Validate(); err != nil {
			return read, fmt.Errorf("pageseq: component %d: %w", s.pages[i], err)
		}
		body := pg.Body()
		lo := 0
		if i == firstPage {
			lo = int(off) - i*bc
		}
		hi := bc
		if end := int(off) + want - i*bc; end < hi {
			hi = end
		}
		read += copy(p[read:], body[lo:hi])
	}
	return read, nil
}

// Rewrite replaces the payload. If the new payload needs a different number
// of pages the sequence is reallocated (its header page number may change);
// callers must store the returned sequence's HeaderPage.
func (s *Sequence) Rewrite(payload []byte) (*Sequence, error) {
	ps := s.seg.PageSize()
	need := (len(payload) + bodyCap(ps) - 1) / bodyCap(ps)
	if need == len(s.pages) {
		s.total = uint64(len(payload))
		if err := s.writeAll(payload); err != nil {
			return nil, err
		}
		return s, nil
	}
	// Different shape: allocate anew, then free the old pages.
	ns, err := Create(s.seg, payload)
	if err != nil {
		return nil, err
	}
	s.freePages()
	return ns, nil
}

// Delete frees every page of the sequence.
func (s *Sequence) Delete() error {
	s.freePages()
	return nil
}

func (s *Sequence) freePages() {
	_ = s.seg.FreePage(s.headerNo)
	for _, no := range s.extra {
		_ = s.seg.FreePage(no)
	}
	for _, no := range s.pages {
		_ = s.seg.FreePage(no)
	}
}

// writeAll writes header pages and payload pages, using chained I/O for
// contiguous stretches.
func (s *Sequence) writeAll(payload []byte) error {
	ps := s.seg.PageSize()
	bc := bodyCap(ps)
	firstCap, contCap := entriesPerHeader(ps)

	// Header page(s).
	buf := make([]byte, ps)
	pg := page.Page(buf)
	pg.Init(page.TypeSeqHeader, uint32(s.seg.ID()), s.headerNo)
	if len(s.extra) > 0 {
		pg.SetNext(s.extra[0])
	}
	body := pg.Body()
	binary.BigEndian.PutUint16(body, seqMagic)
	binary.BigEndian.PutUint32(body[4:], uint32(len(s.pages)))
	binary.BigEndian.PutUint64(body[8:], s.total)
	idx := 0
	for i := 0; i < firstCap && idx < len(s.pages); i++ {
		binary.BigEndian.PutUint32(body[hdrBytes+4*i:], s.pages[idx])
		idx++
	}
	pg.SealChecksum()
	if err := s.seg.WritePage(s.headerNo, buf); err != nil {
		return fmt.Errorf("pageseq: write header: %w", err)
	}
	for h, no := range s.extra {
		pg.Init(page.TypeSeqHeader, uint32(s.seg.ID()), no)
		if h+1 < len(s.extra) {
			pg.SetNext(s.extra[h+1])
		}
		cb := pg.Body()
		for i := 0; i < contCap && idx < len(s.pages); i++ {
			binary.BigEndian.PutUint32(cb[4*i:], s.pages[idx])
			idx++
		}
		pg.SealChecksum()
		if err := s.seg.WritePage(no, buf); err != nil {
			return fmt.Errorf("pageseq: write continuation %d: %w", no, err)
		}
	}

	// Component pages, one chained write per contiguous run.
	for _, run := range s.runs() {
		start, n := run[0], run[1]
		raw := make([]byte, n*ps)
		for i := 0; i < n; i++ {
			cp := page.Page(raw[i*ps : (i+1)*ps])
			cp.Init(page.TypeSeqBody, uint32(s.seg.ID()), s.pages[start+i])
			lo := (start + i) * bc
			hi := lo + bc
			if hi > len(payload) {
				hi = len(payload)
			}
			if lo < len(payload) {
				copy(cp.Body(), payload[lo:hi])
			}
			cp.SealChecksum()
		}
		if err := s.seg.WriteRun(s.pages[start], n, raw); err != nil {
			return fmt.Errorf("pageseq: write run at %d: %w", s.pages[start], err)
		}
	}
	return nil
}
