package pageseq

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"prima/internal/storage/device"
	"prima/internal/storage/segment"
)

func newSeg(t testing.TB, blockSize int) *segment.Segment {
	t.Helper()
	dev, err := device.NewMem(blockSize)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	seg, err := segment.Create(dev, 1, 8192)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return seg
}

func pattern(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*31 + 7)
	}
	return p
}

func TestCreateReadRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, 100, 476, 477, 5000, 60000} {
		seg := newSeg(t, device.B512)
		payload := pattern(size)
		s, err := Create(seg, payload)
		if err != nil {
			t.Fatalf("Create(%d): %v", size, err)
		}
		if s.Len() != size {
			t.Fatalf("Len = %d, want %d", s.Len(), size)
		}
		got, err := s.ReadAll()
		if err != nil {
			t.Fatalf("ReadAll(%d): %v", size, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round-trip mismatch at size %d", size)
		}
	}
}

func TestOpenPersisted(t *testing.T) {
	seg := newSeg(t, device.B1K)
	payload := pattern(10000)
	s, err := Create(seg, payload)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	s2, err := Open(seg, s.HeaderPage())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s2.Len() != len(payload) || s2.Pages() != s.Pages() {
		t.Fatalf("reopened: len=%d pages=%d, want %d/%d", s2.Len(), s2.Pages(), len(payload), s.Pages())
	}
	got, err := s2.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reopened sequence payload mismatch")
	}
}

func TestOpenRejectsNonHeader(t *testing.T) {
	seg := newSeg(t, device.B1K)
	s, err := Create(seg, pattern(3000))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// A component page is not a header.
	if _, err := Open(seg, s.HeaderPage()+1); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("Open(component) = %v, want ErrBadHeader", err)
	}
}

func TestContiguousAndChainedIO(t *testing.T) {
	seg := newSeg(t, device.B512)
	payload := pattern(4000) // ~9 component pages
	s, err := Create(seg, payload)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if !s.Contiguous() {
		t.Fatal("fresh sequence on an empty segment should be contiguous")
	}
	seg.Device().ResetStats()
	if _, err := s.ReadAll(); err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	st := seg.Device().Stats()
	if st.Seeks != 1 {
		t.Fatalf("contiguous ReadAll used %d seeks, want 1 (chained I/O)", st.Seeks)
	}
	if st.BlocksRead != int64(s.Pages()) {
		t.Fatalf("blocks read = %d, want %d", st.BlocksRead, s.Pages())
	}
}

func TestScatteredSequenceStillWorks(t *testing.T) {
	seg := newSeg(t, device.B512)
	// Fragment the segment: allocate every other page.
	var blockers []uint32
	for i := 0; i < 40; i++ {
		no, err := seg.AllocatePage()
		if err != nil {
			t.Fatalf("AllocatePage: %v", err)
		}
		if i%2 == 0 {
			blockers = append(blockers, no)
		} else if err := seg.FreePage(no); err != nil {
			t.Fatalf("FreePage: %v", err)
		}
	}
	_ = blockers
	payload := pattern(6000)
	s, err := Create(seg, payload)
	if err != nil {
		t.Fatalf("Create on fragmented segment: %v", err)
	}
	got, err := s.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("scattered sequence round-trip mismatch")
	}
}

func TestReadAt(t *testing.T) {
	seg := newSeg(t, device.B512)
	payload := pattern(3000)
	s, err := Create(seg, payload)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, tc := range []struct{ off, n int }{
		{0, 10}, {100, 476}, {470, 20}, {2990, 10}, {2990, 100}, {0, 3000},
	} {
		buf := make([]byte, tc.n)
		n, err := s.ReadAt(buf, int64(tc.off))
		if err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", tc.off, tc.n, err)
		}
		want := tc.n
		if tc.off+tc.n > 3000 {
			want = 3000 - tc.off
		}
		if n != want {
			t.Fatalf("ReadAt(%d,%d) = %d bytes, want %d", tc.off, tc.n, n, want)
		}
		if !bytes.Equal(buf[:n], payload[tc.off:tc.off+n]) {
			t.Fatalf("ReadAt(%d,%d) content mismatch", tc.off, tc.n)
		}
	}
	if _, err := s.ReadAt(make([]byte, 1), 3001); !errors.Is(err, ErrRange) {
		t.Fatalf("ReadAt beyond end = %v, want ErrRange", err)
	}

	// Relative addressing touches only covering pages: a 20-byte read deep
	// inside the payload must read exactly 1 page.
	seg.Device().ResetStats()
	if _, err := s.ReadAt(make([]byte, 20), 1000); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if got := seg.Device().Stats().BlocksRead; got != 1 {
		t.Fatalf("targeted ReadAt read %d pages, want 1", got)
	}
}

func TestRewrite(t *testing.T) {
	seg := newSeg(t, device.B512)
	s, err := Create(seg, pattern(2000))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	before := seg.Allocated()

	// Same page count: in-place.
	p2 := pattern(2100) // still 5 pages of 476
	s, err = s.Rewrite(p2)
	if err != nil {
		t.Fatalf("Rewrite same-shape: %v", err)
	}
	if seg.Allocated() != before {
		t.Fatalf("in-place rewrite changed allocation %d -> %d", before, seg.Allocated())
	}
	got, _ := s.ReadAll()
	if !bytes.Equal(got, p2) {
		t.Fatal("in-place rewrite content mismatch")
	}

	// Grow: reallocated.
	p3 := pattern(20000)
	s, err = s.Rewrite(p3)
	if err != nil {
		t.Fatalf("Rewrite grow: %v", err)
	}
	got, _ = s.ReadAll()
	if !bytes.Equal(got, p3) {
		t.Fatal("grown rewrite content mismatch")
	}

	// Shrink then delete frees pages.
	s, err = s.Rewrite(pattern(100))
	if err != nil {
		t.Fatalf("Rewrite shrink: %v", err)
	}
	if err := s.Delete(); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if seg.Allocated() >= before {
		t.Fatalf("Delete left %d pages allocated (started from %d)", seg.Allocated(), before)
	}
}

func TestMultiHeaderSequence(t *testing.T) {
	// 512-byte pages hold (476-16)/4 = 115 entries in the first header.
	// 200 component pages force a continuation header.
	seg := newSeg(t, device.B512)
	payload := pattern(200 * 476)
	s, err := Create(seg, payload)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if s.Pages() != 200 {
		t.Fatalf("Pages = %d, want 200", s.Pages())
	}
	s2, err := Open(seg, s.HeaderPage())
	if err != nil {
		t.Fatalf("Open multi-header: %v", err)
	}
	got, err := s2.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-header sequence mismatch")
	}
}

// Property: Create/Open/ReadAll round-trips arbitrary payloads; ReadAt
// agrees with slicing for random ranges.
func TestSequenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seg := newSeg(t, device.B1K)
		payload := make([]byte, rng.Intn(30000))
		rng.Read(payload)
		s, err := Create(seg, payload)
		if err != nil {
			return false
		}
		s2, err := Open(seg, s.HeaderPage())
		if err != nil {
			return false
		}
		got, err := s2.ReadAll()
		if err != nil || !bytes.Equal(got, payload) {
			return false
		}
		for i := 0; i < 5 && len(payload) > 0; i++ {
			off := rng.Intn(len(payload))
			n := rng.Intn(len(payload) - off)
			buf := make([]byte, n)
			m, err := s2.ReadAt(buf, int64(off))
			if err != nil || m != n || !bytes.Equal(buf, payload[off:off+n]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
